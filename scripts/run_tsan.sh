#!/usr/bin/env bash
# ThreadSanitizer pass over the chunk-parallel compress/decompress paths.
# Configures a separate build tree with PRIMACY_SANITIZE=thread and runs the
# tests that exercise the shared thread pool with threads > 1.
# Usage: scripts/run_tsan.sh [build-dir] (default: build-tsan)
set -euo pipefail
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPRIMACY_SANITIZE=thread \
  -DPRIMACY_BUILD_BENCH=OFF \
  -DPRIMACY_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Concurrency-heavy suites: the pool itself, parallel encode/decode (groups,
# range reads), shard-parallel in-situ, the variable-parallel store, and the
# TSan-targeted stress tests (registry registration races, concurrent
# range reads sharing one reader).
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R 'ThreadPool|ParallelDecode|StreamV2|DecompressRange|InSitu|CheckpointStore|Stress|MetricsRegistry'
echo "TSan pass complete."
