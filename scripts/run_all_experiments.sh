#!/usr/bin/env bash
# Regenerates every paper table/figure and ablation into ./experiment_output/.
# Usage: scripts/run_all_experiments.sh [build-dir] (default: build)
set -euo pipefail
BUILD_DIR="${1:-build}"
OUT_DIR="experiment_output"
mkdir -p "$OUT_DIR"
for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  [ -x "$bench" ] && [ -f "$bench" ] || continue
  case "$name" in
    *.cmake|CMakeFiles|*.a) continue ;;
  esac
  echo "== $name =="
  "$bench" | tee "$OUT_DIR/$name.txt"
done
echo "All experiment outputs written to $OUT_DIR/"
