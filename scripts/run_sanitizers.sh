#!/usr/bin/env bash
# Local reproduction of CI's sanitizer matrix: one build tree per flavor
# (address, undefined, thread), each running the tier-1 suite plus the
# corruption harness and the concurrency stress tests — the same three
# named passes the CI `sanitize` job runs.
#
# --thread-safety adds the compile-time lock-discipline pass (the CI
# `thread-safety` job): a Clang build with -Wthread-safety promoted to
# errors via -DPRIMACY_THREAD_SAFETY=ON, then the tier-1 suite. It is not a
# sanitizer — no runtime instrumentation — so it lives behind a flag rather
# than in the default flavor list, and it requires clang++ on PATH.
# Usage: scripts/run_sanitizers.sh [--thread-safety] [flavor...]
#        (default flavors: address undefined thread)
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_THREAD_SAFETY=0
FLAVORS=()
for arg in "$@"; do
  if [ "$arg" = "--thread-safety" ]; then
    RUN_THREAD_SAFETY=1
  else
    FLAVORS+=("$arg")
  fi
done
if [ "${#FLAVORS[@]}" -eq 0 ] && [ "$RUN_THREAD_SAFETY" -eq 0 ]; then
  FLAVORS=(address undefined thread)
fi

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

for flavor in "${FLAVORS[@]+"${FLAVORS[@]}"}"; do
  case "$flavor" in
    address|undefined|thread) ;;
    *) echo "unknown sanitizer flavor: $flavor" >&2; exit 2 ;;
  esac
  build_dir="build-$flavor"
  echo "=== $flavor ($build_dir) ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPRIMACY_SANITIZE="$flavor" \
    -DPRIMACY_BUILD_BENCH=OFF \
    -DPRIMACY_BUILD_EXAMPLES=OFF
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -R 'CorruptionFuzz'
  ctest --test-dir "$build_dir" --output-on-failure -R 'Stress|MetricsRegistry'
done

if [ "$RUN_THREAD_SAFETY" -eq 1 ]; then
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "--thread-safety requires clang++ (the analysis is Clang-only;" \
         "on other compilers the annotations compile to no-ops)" >&2
    exit 2
  fi
  build_dir="build-thread-safety"
  echo "=== thread-safety ($build_dir) ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_C_COMPILER=clang \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_BUILD_TYPE=Release \
    -DPRIMACY_THREAD_SAFETY=ON
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
fi

DONE=("${FLAVORS[@]+"${FLAVORS[@]}"}")
if [ "$RUN_THREAD_SAFETY" -eq 1 ]; then DONE+=(thread-safety); fi
echo "sanitizer matrix complete: ${DONE[*]}"
