#!/usr/bin/env bash
# Local reproduction of CI's sanitizer matrix: one build tree per flavor
# (address, undefined, thread), each running the tier-1 suite plus the
# corruption harness and the concurrency stress tests — the same three
# named passes the CI `sanitize` job runs.
# Usage: scripts/run_sanitizers.sh [flavor...]   (default: all three)
set -euo pipefail
cd "$(dirname "$0")/.."

FLAVORS=("$@")
if [ "${#FLAVORS[@]}" -eq 0 ]; then
  FLAVORS=(address undefined thread)
fi

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

for flavor in "${FLAVORS[@]}"; do
  case "$flavor" in
    address|undefined|thread) ;;
    *) echo "unknown sanitizer flavor: $flavor" >&2; exit 2 ;;
  esac
  build_dir="build-$flavor"
  echo "=== $flavor ($build_dir) ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPRIMACY_SANITIZE="$flavor" \
    -DPRIMACY_BUILD_BENCH=OFF \
    -DPRIMACY_BUILD_EXAMPLES=OFF
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -R 'CorruptionFuzz'
  ctest --test-dir "$build_dir" --output-on-failure -R 'Stress|MetricsRegistry'
done
echo "sanitizer matrix complete: ${FLAVORS[*]}"
