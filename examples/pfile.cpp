// pfile: a small file (de)compressor over the codec registry.
//
//   ./pfile c <codec> <input> <output>   compress with a named codec
//   ./pfile d <input> <output>           decompress (codec read from frame)
//   ./pfile l                            list registered codecs
//
// Frames are self-describing (compress/frame.h), so decompression needs no
// codec argument. Codec names: deflate, deflate-fast, lzfast, bwt, fpc, fpz,
// primacy.
#include <cstdio>
#include <fstream>
#include <string>

#include "compress/frame.h"
#include "compress/registry.h"
#include "core/builtin_codecs.h"
#include "util/error.h"
#include "util/timer.h"

namespace {

primacy::Bytes ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw primacy::Error("cannot open " + path);
  const std::string raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  return primacy::BytesFromString(raw);
}

void WriteFile(const std::string& path, primacy::ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw primacy::Error("cannot write " + path);
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pfile c <codec> <input> <output>\n"
               "  pfile d <input> <output>\n"
               "  pfile l\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  primacy::RegisterBuiltinCodecs();
  try {
    if (argc < 2) return Usage();
    const std::string mode = argv[1];
    if (mode == "l") {
      for (const std::string& name :
           primacy::CodecRegistry::Global().Names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (mode == "c" && argc == 5) {
      const auto codec = primacy::CreateCodec(argv[2]);
      const primacy::Bytes input = ReadFile(argv[3]);
      primacy::WallTimer timer;
      const primacy::Bytes frame = CompressToFrame(*codec, input);
      const double seconds = timer.Seconds();
      WriteFile(argv[4], frame);
      std::printf("%zu -> %zu bytes (ratio %.3f) at %.1f MB/s\n",
                  input.size(), frame.size(),
                  static_cast<double>(input.size()) /
                      static_cast<double>(frame.size()),
                  primacy::ThroughputMBps(input.size(), seconds));
      return 0;
    }
    if (mode == "d" && argc == 4) {
      const primacy::Bytes frame = ReadFile(argv[2]);
      const primacy::ParsedFrame parsed = primacy::ParseFrame(frame);
      primacy::WallTimer timer;
      const primacy::Bytes restored = primacy::DecompressFrame(frame);
      const double seconds = timer.Seconds();
      WriteFile(argv[3], restored);
      std::printf("codec=%s, %zu -> %zu bytes at %.1f MB/s\n",
                  parsed.info.codec_name.c_str(), frame.size(),
                  restored.size(),
                  primacy::ThroughputMBps(restored.size(), seconds));
      return 0;
    }
    return Usage();
  } catch (const primacy::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
