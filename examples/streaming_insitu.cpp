// Streaming in-situ compression: a simulation loop produces field data in
// bursts; PrimacyStreamWriter compresses chunk-by-chunk as data arrives
// (bounded memory, records emitted incrementally to the staging buffer),
// and a restart reads it back one chunk at a time through
// PrimacyStreamReader.
//
//   ./streaming_insitu [dataset] [elements] [burst_elements]
#include <cstdio>
#include <string>

#include "core/streaming.h"
#include "datasets/datasets.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "flash_velx";
  const std::size_t elements =
      argc > 2 ? static_cast<std::size_t>(std::stoull(argv[2])) : 1u << 21;
  const std::size_t burst =
      argc > 3 ? static_cast<std::size_t>(std::stoull(argv[3])) : 40000;

  const std::vector<double> field =
      primacy::GenerateDatasetByName(dataset, elements);

  // The "staging buffer" the sink writes into. In a real deployment this
  // would be the transport into the I/O nodes.
  primacy::Bytes staged;
  std::size_t sink_calls = 0;

  primacy::PrimacyOptions options;
  options.index_mode = primacy::IndexMode::kReuseWhenCorrelated;
  primacy::PrimacyStreamWriter writer(
      [&](primacy::ByteSpan data) {
        primacy::AppendBytes(staged, data);
        ++sink_calls;
      },
      options);

  primacy::WallTimer timer;
  for (std::size_t offset = 0; offset < field.size(); offset += burst) {
    const std::size_t count = std::min(burst, field.size() - offset);
    writer.Append(std::span(field).subspan(offset, count));
  }
  const primacy::PrimacyStats stats = writer.Finish();
  const double write_seconds = timer.Seconds();

  std::printf("streamed %zu doubles in bursts of %zu\n", field.size(), burst);
  std::printf("  sink invocations   : %zu (incremental emission)\n",
              sink_calls);
  std::printf("  compression ratio  : %.3f\n", stats.CompressionRatio());
  std::printf("  full/delta indexes : %zu / %zu over %zu chunks\n",
              stats.indexes_emitted, stats.delta_indexes, stats.chunks);
  std::printf("  throughput         : %.1f MB/s\n",
              primacy::ThroughputMBps(stats.input_bytes, write_seconds));

  // Restart: chunk-at-a-time read with bounded memory.
  timer.Reset();
  primacy::PrimacyStreamReader reader(staged);
  primacy::Bytes restored;
  std::size_t chunks = 0;
  while (reader.NextChunk(restored)) ++chunks;
  const double read_seconds = timer.Seconds();

  const auto restored_values = primacy::FromBytes<double>(restored);
  if (restored_values != field) {
    std::printf("ERROR: restart mismatch!\n");
    return 1;
  }
  std::printf("restart: %zu chunks, %.1f MB/s, bit-exact\n", chunks,
              primacy::ThroughputMBps(restored.size(), read_seconds));
  return 0;
}
