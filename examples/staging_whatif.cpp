// staging_whatif: "will compression help on my cluster?"
//
// The paper's closing argument is that its performance model lets developers
// predict I/O gains on systems they cannot benchmark (Section III / IV-D).
// This example takes cluster parameters on the command line, calibrates the
// data-dependent model inputs from a *real* PRIMACY run on a chosen dataset,
// and prints the model's predicted write/read throughputs next to the
// event-driven simulator's, for both the null and PRIMACY configurations.
//
//   ./staging_whatif [dataset] [rho] [network_MBps] [disk_write_MBps]
//                    [disk_read_MBps]
#include <cstdio>
#include <string>

#include "compress/codec.h"
#include "core/primacy_codec.h"
#include "datasets/datasets.h"
#include "hpcsim/staging.h"
#include "model/perf_model.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "flash_velx";
  const double rho = argc > 2 ? std::stod(argv[2]) : 8.0;
  const double network = (argc > 3 ? std::stod(argv[3]) : 120.0) * 1e6;
  const double disk_write = (argc > 4 ? std::stod(argv[4]) : 30.0) * 1e6;
  const double disk_read = (argc > 5 ? std::stod(argv[5]) : 90.0) * 1e6;

  // --- Calibration on real data -------------------------------------------
  const std::vector<double> values =
      primacy::GenerateDatasetByName(dataset, 512 * 1024);
  const std::size_t raw_bytes = values.size() * sizeof(double);

  primacy::PrimacyCompressor compressor;
  primacy::PrimacyStats stats;
  primacy::WallTimer timer;
  const primacy::Bytes stream = compressor.Compress(values, &stats);
  const double compress_seconds = timer.Seconds();
  timer.Reset();
  primacy::PrimacyDecompressor decompressor;
  (void)decompressor.Decompress(stream);
  const double decompress_seconds = timer.Seconds();

  primacy::ModelInputs in;
  in.chunk_bytes = static_cast<double>(raw_bytes);
  in.rho = rho;
  in.network_bps = network;
  in.disk_write_bps = disk_write;
  in.disk_read_bps = disk_read;
  // Split measured wall time between "preconditioning" (analysis + mapping)
  // and "compression" (solver) using the 2:6 byte split as a proxy.
  const double measured_bps = static_cast<double>(raw_bytes) / compress_seconds;
  const double measured_read_bps =
      static_cast<double>(raw_bytes) / decompress_seconds;
  in = CalibrateFromMeasurements(in, stats, 4.0 * measured_bps,
                                 1.5 * measured_bps, 1.5 * measured_read_bps,
                                 4.0 * measured_read_bps);

  std::printf("Calibrated on '%s': ratio=%.3f, alpha2=%.2f, sigma_ho=%.3f, "
              "sigma_lo=%.3f\n\n",
              dataset.c_str(), stats.CompressionRatio(),
              in.alpha2, in.sigma_ho, in.sigma_lo);

  // --- Model predictions ---------------------------------------------------
  const auto base_w = BaselineWrite(in);
  const auto prim_w = PrimacyWrite(in);
  const auto base_r = BaselineRead(in);
  const auto prim_r = PrimacyRead(in);

  // --- Simulator (one I/O group, virtual time) ----------------------------
  primacy::hpcsim::ClusterConfig cluster;
  cluster.compute_nodes = static_cast<std::size_t>(rho);
  cluster.compute_per_io = static_cast<std::size_t>(rho);
  cluster.network_bps = network;
  cluster.disk_write_bps = disk_write;
  cluster.disk_read_bps = disk_read;

  const auto null_profile = primacy::hpcsim::CompressionProfile::Null(
      static_cast<double>(raw_bytes));
  primacy::hpcsim::CompressionProfile primacy_profile = null_profile;
  primacy_profile.output_bytes = static_cast<double>(stream.size());
  primacy_profile.compress_seconds = compress_seconds;
  primacy_profile.decompress_seconds = decompress_seconds;

  const auto sim_null_w = SimulateWrite(cluster, null_profile);
  const auto sim_prim_w = SimulateWrite(cluster, primacy_profile);
  const auto sim_null_r = SimulateRead(cluster, null_profile);
  const auto sim_prim_r = SimulateRead(cluster, primacy_profile);

  std::printf("%-24s %14s %14s\n", "end-to-end throughput", "model (MB/s)",
              "sim (MB/s)");
  std::printf("%-24s %14.1f %14.1f\n", "write, no compression",
              base_w.ThroughputMBps(), sim_null_w.ThroughputMBps());
  std::printf("%-24s %14.1f %14.1f\n", "write, PRIMACY",
              prim_w.ThroughputMBps(), sim_prim_w.ThroughputMBps());
  std::printf("%-24s %14.1f %14.1f\n", "read, no compression",
              base_r.ThroughputMBps(), sim_null_r.ThroughputMBps());
  std::printf("%-24s %14.1f %14.1f\n", "read, PRIMACY",
              prim_r.ThroughputMBps(), sim_prim_r.ThroughputMBps());

  const double gain =
      100.0 * (sim_prim_w.ThroughputMBps() / sim_null_w.ThroughputMBps() - 1.0);
  std::printf("\nPredicted write gain from PRIMACY on this cluster: %+.1f%%\n",
              gain);
  return 0;
}
