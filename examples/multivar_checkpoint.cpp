// Multi-variable checkpoint store: a simulation state with several named
// fields of mixed precision is packed into one self-describing checkpoint
// file; the restart reads back only the variables it needs, lazily.
//
//   ./multivar_checkpoint [elements-per-field]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "datasets/datasets.h"
#include "store/checkpoint_store.h"
#include "util/error.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const std::size_t elements =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 1u << 19;

  // A plausible fusion-simulation state: two double fields, one float field.
  const auto phi = primacy::GenerateDatasetByName("gts_phi_l", elements);
  const auto density = primacy::GenerateDatasetByName("num_plasma", elements);
  std::vector<float> diagnostics(elements / 4);
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    diagnostics[i] = static_cast<float>(phi[i * 4]);
  }
  const std::size_t raw_bytes =
      phi.size() * 8 + density.size() * 8 + diagnostics.size() * 4;

  primacy::PrimacyOptions options;
  options.index_mode = primacy::IndexMode::kReuseWhenCorrelated;

  primacy::WallTimer timer;
  primacy::CheckpointWriter writer(options);
  writer.Add("phi", std::span(phi));
  writer.Add("density", std::span(density));
  writer.Add("diagnostics", std::span(diagnostics));
  const primacy::Bytes file = writer.Finish();
  const double write_seconds = timer.Seconds();

  const auto path =
      std::filesystem::temp_directory_path() / "primacy_multivar.pck";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(file.data()),
              static_cast<std::streamsize>(file.size()));
  }

  std::printf("checkpoint: %zu variables, %.2f MB raw -> %.2f MB (%.3fx) in %.2fs\n\n",
              static_cast<std::size_t>(3), raw_bytes / 1e6, file.size() / 1e6,
              static_cast<double>(raw_bytes) / static_cast<double>(file.size()),
              write_seconds);

  const primacy::CheckpointReader reader(file);
  std::printf("%-14s %8s %12s %14s %8s\n", "variable", "width", "elements",
              "compressed", "ratio");
  for (const primacy::VariableInfo& info : reader.variables()) {
    std::printf("%-14s %8zu %12zu %14zu %8.3f\n", info.name.c_str(),
                info.element_width, info.elements, info.stream_bytes,
                info.CompressionRatio());
  }

  // Partial restart: an analysis job only needs `density`.
  timer.Reset();
  const auto restored = reader.ReadDoubles("density");
  std::printf("\npartial restore of 'density': %.1f MB/s, %s\n",
              primacy::ThroughputMBps(restored.size() * 8, timer.Seconds()),
              restored == density ? "bit-exact" : "MISMATCH");
  std::filesystem::remove(path);
  return restored == density ? 0 : 1;
}
