// primacy_inspect: dump the structure of a PRIMACY stream — header fields
// and, per chunk, the element count, index mode (full / reuse / delta),
// index size, compressed ID size, and ISOBAR mantissa stream size. Useful
// for understanding where the bytes went.
//
//   ./primacy_inspect <file>          inspect a stream written by pfile/
//                                     checkpoint tools
//   ./primacy_inspect --verify <file> validate stream integrity (v3:
//                                     checksums; v1/v2: structural decode);
//                                     exit 0 = valid, 1 = corrupt
//   ./primacy_inspect --demo [name]   generate a dataset, compress it, and
//                                     inspect the in-memory stream
//   ./primacy_inspect --metrics [file] decode the stream (or, with no file,
//                                     roundtrip a demo dataset) and dump the
//                                     telemetry registry in Prometheus text
//                                     format
//   ./primacy_inspect [--no-cache] --cache-stats [file]
//                                     decode the stream (or a demo stream)
//                                     twice through the decoded-block cache
//                                     and report per-pass hit/miss counts,
//                                     the cache snapshot, and the
//                                     primacy_cache_* metric series;
//                                     --no-cache disables the cache to show
//                                     the passthrough baseline
//   ./primacy_inspect --serve [port]  run a demo roundtrip workload in a
//                                     loop while serving the observability
//                                     endpoints (/metrics, /healthz,
//                                     /readyz, /statusz, /profilez) on
//                                     127.0.0.1:<port> (0 or omitted =
//                                     ephemeral, printed on stdout); GET
//                                     /quitquitquit stops the process —
//                                     the target CI scrapes live
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bitstream/byte_io.h"
#include "core/primacy_codec.h"
#include "core/stream_format.h"
#include "datasets/datasets.h"
#include "telemetry/exporter/observability_hub.h"
#include "telemetry/metrics.h"
#include "transport/shutdown_signal.h"
#include "util/error.h"

namespace {

primacy::Bytes ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw primacy::Error("cannot open " + path);
  const std::string raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  return primacy::BytesFromString(raw);
}

void Inspect(primacy::ByteSpan stream) {
  using namespace primacy;
  ByteReader reader(stream);
  const internal::StreamHeader header = internal::ReadStreamHeader(reader);
  const std::size_t chunks_begin = reader.Offset();

  std::printf("stream: %zu bytes\n", stream.size());
  std::printf("  format        : v%u%s\n", header.version,
              header.version >= internal::kFormatVersion2 ? " (seekable)"
                                                          : "");
  std::printf("  solver        : %s\n", header.solver_name.c_str());
  std::printf("  element width : %zu (%s precision)\n", header.width,
              header.width == 8 ? "double" : "single");
  std::printf("  linearization : %s\n",
              header.linearization == Linearization::kColumn ? "column"
                                                             : "row");
  if (header.stored) {
    std::printf("  stored fallback stream: %llu raw payload bytes\n",
                static_cast<unsigned long long>(header.total_bytes));
    return;
  }
  const bool streamed = header.total_bytes == ~std::uint64_t{0};
  if (streamed) {
    std::printf("  total bytes   : (streamed; recorded in trailer)\n");
  } else {
    std::printf("  total bytes   : %llu\n",
                static_cast<unsigned long long>(header.total_bytes));
  }

  std::printf("\n%6s %12s %8s %10s %12s %12s\n", "chunk", "elements", "index",
              "idx(B)", "IDs(B)", "mantissa(B)");
  const std::uint64_t total_elements =
      streamed ? ~std::uint64_t{0} : header.total_bytes / header.width;
  std::uint64_t decoded = 0;
  std::size_t chunk_no = 0;
  while (decoded < total_elements) {
    const std::uint64_t count = reader.GetVarint();
    if (count == 0) break;  // streamed end-of-chunks sentinel
    const std::uint8_t flag = reader.GetU8();
    std::size_t index_bytes = 0;
    const char* mode = "reuse";
    if (flag == 1) {
      index_bytes = reader.GetBlock().size();
      mode = "full";
    } else if (flag == 2) {
      index_bytes = reader.GetBlock().size();
      mode = "delta";
    } else if (flag != 0) {
      throw CorruptStreamError("inspect: bad index flag");
    }
    const std::size_t id_bytes = reader.GetBlock().size();
    const std::size_t mantissa_bytes = reader.GetBlock().size();
    std::printf("%6zu %12llu %8s %10zu %12zu %12zu\n", chunk_no++,
                static_cast<unsigned long long>(count), mode, index_bytes,
                id_bytes, mantissa_bytes);
    decoded += count;
    if (!streamed && decoded >= total_elements) break;
  }
  const ByteSpan tail = reader.GetBlock();
  std::printf("\ntail bytes: %zu\n", tail.size());
  if (streamed) {
    std::printf("trailer total: %llu bytes\n",
                static_cast<unsigned long long>(reader.GetVarint()));
  }
  if (header.version >= internal::kFormatVersion2 && !streamed) {
    const internal::ChunkDirectory directory =
        internal::ReadChunkDirectory(stream, chunks_begin, header.version);
    std::printf("directory: %zu entries, %zu bytes incl. footer (seekable%s)\n",
                directory.chunks.size(),
                stream.size() -
                    static_cast<std::size_t>(directory.directory_offset),
                directory.has_checksums ? ", checksummed" : "");
  }
}

int Verify(primacy::ByteSpan stream) {
  const primacy::StreamVerifyResult result = primacy::VerifyStream(stream);
  std::printf("version        : v%u\n", result.version);
  std::printf("verification   : %s\n", result.has_checksums
                                           ? "checksums (hash-only)"
                                           : "structural decode");
  std::printf("chunks checked : %zu\n", result.chunks_checked);
  if (result.ok) {
    std::printf("result         : OK\n");
    return 0;
  }
  std::printf("result         : CORRUPT (%s)\n", result.error.c_str());
  return 1;
}

/// Exercises the pipeline so the registry has data to show, then dumps it.
/// With a file: a full decode of that stream. Without: a demo roundtrip.
int Metrics(const char* path) {
  using namespace primacy;
  if (!telemetry::kEnabled) {
    std::fprintf(stderr,
                 "note: built with PRIMACY_TELEMETRY=OFF; all metrics "
                 "read zero\n");
  }
  // threads = 2 engages the process-wide SharedThreadPool so the
  // primacy_pool_* series (labeled pool="shared") show up in the dump.
  PrimacyOptions options;
  options.threads = 2;
  if (path != nullptr) {
    PrimacyDecompressor(options).DecompressBytes(ReadFile(path));
  } else {
    options.chunk_bytes = 256 * 1024;  // several chunks -> parallel paths
    const auto values = GenerateDatasetByName("num_plasma", 1u << 18);
    const Bytes stream = PrimacyCompressor(options).Compress(values);
    PrimacyDecompressor(options).Decompress(stream);
  }
  std::fputs(telemetry::MetricsRegistry::Global().RenderPrometheus().c_str(),
             stdout);
  return 0;
}

/// Decodes the stream twice through a cache-enabled decompressor (unless
/// use_cache is false — the passthrough baseline) and reports what the
/// cache did: per-pass hit/miss/decode counts, the shard-summed snapshot,
/// and the primacy_cache_* series from the telemetry registry.
int CacheStats(const char* path, bool use_cache) {
  using namespace primacy;
  PrimacyOptions options;
  options.cache.enabled = use_cache;
  Bytes stream;
  if (path != nullptr) {
    stream = ReadFile(path);
  } else {
    PrimacyOptions demo;
    demo.chunk_bytes = 256 * 1024;  // several chunks -> several cache keys
    const auto values = GenerateDatasetByName("num_plasma", 1u << 18);
    stream = PrimacyCompressor(demo).Compress(values);
    std::printf("demo stream: dataset 'num_plasma', %u doubles\n", 1u << 18);
  }

  const PrimacyDecompressor decompressor(options);
  std::printf("cache          : %s\n",
              decompressor.cache() != nullptr ? "enabled" : "disabled");
  const char* pass_names[2] = {"cold", "warm"};
  for (const char* pass : pass_names) {
    PrimacyDecodeStats stats;
    decompressor.DecompressBytes(stream, &stats);
    std::printf("%s pass      : %zu chunks decoded, %zu cache hits, "
                "%zu cache misses\n",
                pass, stats.chunks_decoded, stats.cache_hits,
                stats.cache_misses);
  }

  const auto& cache = decompressor.cache();
  if (cache == nullptr) {
    std::printf("no cache snapshot (decode ran uncached)\n");
    return 0;
  }
  const CacheStatsSnapshot snapshot = cache->Stats();
  if (snapshot.hits + snapshot.misses == 0) {
    std::printf("stream not cacheable (v1 or stored fallback: no chunk "
                "directory to key against)\n");
    return 0;
  }
  std::printf("cache snapshot : %zu entries, %zu bytes resident\n",
              snapshot.entries, snapshot.bytes);
  std::printf("  hits %zu, misses %zu (ratio %.2f), insertions %zu, "
              "evictions %zu, rejected %zu\n",
              snapshot.hits, snapshot.misses, snapshot.HitRatio(),
              snapshot.insertions, snapshot.evictions, snapshot.rejected);

  if (!telemetry::kEnabled) {
    std::fprintf(stderr, "note: built with PRIMACY_TELEMETRY=OFF; no "
                         "primacy_cache_* series\n");
    return 0;
  }
  std::printf("\n");
  std::istringstream render(
      telemetry::MetricsRegistry::Global().RenderPrometheus());
  for (std::string line; std::getline(render, line);) {
    if (line.find("primacy_cache_") != std::string::npos) {
      std::printf("%s\n", line.c_str());
    }
  }
  return 0;
}

/// Serves the observability endpoints over a continuously-running demo
/// roundtrip workload, so a scrape (or a person with curl) sees live
/// counters, stage histograms, and profiler samples. Stops on
/// GET /quitquitquit, SIGINT, or SIGTERM — all three run the same
/// finish-the-round-then-stop drain path.
int Serve(int port) {
  using namespace primacy;
  if (!telemetry::kEnabled) {
    std::fprintf(stderr,
                 "error: built with PRIMACY_TELEMETRY=OFF; there is no "
                 "endpoint to serve\n");
    return 2;
  }
  auto& shutdown_signal = transport::ShutdownSignal::Instance();
  std::string signal_error;
  if (!shutdown_signal.Install(&signal_error)) {
    std::fprintf(stderr, "error: signal handler install failed: %s\n",
                 signal_error.c_str());
    return 1;
  }
  telemetry::ObservabilityHubOptions hub_options;
  hub_options.http_port = port;
  hub_options.enable_quit_endpoint = true;
  hub_options.profile_interval_ns = 1'000'000;  // 1 kHz stage sampling
  if (const char* dir = std::getenv("PRIMACY_TRACE_DIR")) {
    hub_options.trace_dir = dir;  // also rotate trace segments while serving
  }
  telemetry::ObservabilityHub hub(std::move(hub_options));
  hub.Start();
  if (hub.HttpPort() < 0) {
    std::fprintf(stderr, "error: cannot bind 127.0.0.1:%d\n", port);
    return 1;
  }
  std::printf("serving on 127.0.0.1:%d — GET /metrics /healthz /readyz "
              "/statusz /profilez; GET /quitquitquit stops\n",
              hub.HttpPort());
  std::fflush(stdout);

  PrimacyOptions options;
  options.chunk_bytes = 64 * 1024;
  const auto values = GenerateDatasetByName("num_plasma", 1u << 16);
  const PrimacyCompressor compressor(options);
  const PrimacyDecompressor decompressor(options);
  std::uint64_t rounds = 0;
  while (!hub.ShutdownRequested() && !shutdown_signal.Requested()) {
    const Bytes stream = compressor.Compress(values);
    decompressor.Decompress(stream);
    ++rounds;
  }
  hub.Stop();
  std::printf("shutdown requested (%s) after %llu roundtrips\n",
              shutdown_signal.Requested() ? "signal" : "/quitquitquit",
              static_cast<unsigned long long>(rounds));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // --no-cache is a modifier for --cache-stats; strip it first.
    bool use_cache = true;
    if (argc >= 2 && std::string(argv[1]) == "--no-cache") {
      use_cache = false;
      --argc;
      ++argv;
    }
    if ((argc == 2 || argc == 3) && std::string(argv[1]) == "--cache-stats") {
      return CacheStats(argc == 3 ? argv[2] : nullptr, use_cache);
    }
    if (!use_cache) {
      std::fprintf(stderr, "error: --no-cache only applies to --cache-stats\n");
      return 2;
    }
    if (argc >= 2 && std::string(argv[1]) == "--demo") {
      const std::string dataset = argc > 2 ? argv[2] : "num_plasma";
      const auto values = primacy::GenerateDatasetByName(dataset, 1u << 19);
      primacy::PrimacyOptions options;
      options.index_mode = primacy::IndexMode::kReuseWhenCorrelated;
      options.chunk_bytes = 512 * 1024;
      const primacy::Bytes stream =
          primacy::PrimacyCompressor(options).Compress(values);
      std::printf("demo: dataset '%s', %u doubles\n\n", dataset.c_str(),
                  1u << 19);
      Inspect(stream);
      return 0;
    }
    if (argc == 3 && std::string(argv[1]) == "--verify") {
      return Verify(ReadFile(argv[2]));
    }
    if ((argc == 2 || argc == 3) && std::string(argv[1]) == "--metrics") {
      return Metrics(argc == 3 ? argv[2] : nullptr);
    }
    if ((argc == 2 || argc == 3) && std::string(argv[1]) == "--serve") {
      return Serve(argc == 3 ? std::atoi(argv[2]) : 0);
    }
    if (argc == 2) {
      const primacy::Bytes stream = ReadFile(argv[1]);
      Inspect(stream);
      return 0;
    }
    std::fprintf(stderr,
                 "usage: primacy_inspect <file> | --verify <file> | "
                 "--demo [dataset] | --metrics [file] | "
                 "[--no-cache] --cache-stats [file] | --serve [port]\n");
    return 2;
  } catch (const primacy::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
