// Checkpoint & restart pipeline: the paper's motivating workload.
//
// A simulated compute node produces a large double-precision state array
// every "timestep"; the in-situ driver compresses it shard-parallel across a
// thread pool, the shards are written to a checkpoint file, and a restart
// reads and decompresses them back. Timings for every phase are printed so
// the compression-vs-I/O trade is visible.
//
//   ./checkpoint_pipeline [dataset] [elements] [timesteps]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bitstream/byte_io.h"
#include "core/in_situ.h"
#include "datasets/datasets.h"
#include "util/error.h"
#include "util/timer.h"

namespace {

void WriteCheckpoint(const std::filesystem::path& path,
                     const primacy::InSituResult& result) {
  primacy::Bytes file;
  primacy::PutVarint(file, result.shards.size());
  for (const primacy::Bytes& shard : result.shards) {
    primacy::PutBlock(file, shard);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(file.data()),
            static_cast<std::streamsize>(file.size()));
  if (!out) throw primacy::Error("checkpoint write failed");
}

std::vector<primacy::Bytes> ReadCheckpoint(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  const std::string raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const primacy::Bytes file = primacy::BytesFromString(raw);
  primacy::ByteReader reader(file);
  const std::uint64_t count = reader.GetVarint();
  std::vector<primacy::Bytes> shards;
  shards.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    shards.push_back(primacy::ToBytes(reader.GetBlock()));
  }
  return shards;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "gts_chkp_zeon";
  const std::size_t elements =
      argc > 2 ? static_cast<std::size_t>(std::stoull(argv[2])) : 1u << 21;
  const int timesteps = argc > 3 ? std::stoi(argv[3]) : 3;

  const auto path = std::filesystem::temp_directory_path() /
                    "primacy_checkpoint.bin";
  primacy::InSituOptions options;
  options.primacy.index_mode = primacy::IndexMode::kReuseWhenCorrelated;

  std::printf("Checkpoint pipeline: dataset=%s, %zu doubles, %d timesteps\n",
              dataset.c_str(), elements, timesteps);
  std::printf("%-10s %12s %12s %12s %12s %10s\n", "timestep", "compress(s)",
              "write(s)", "read(s)", "restore(s)", "ratio");

  for (int step = 0; step < timesteps; ++step) {
    // Each timestep perturbs the seed so content evolves between steps.
    primacy::DatasetSpec spec = primacy::FindDataset(dataset);
    spec.seed += static_cast<std::uint64_t>(step);
    const std::vector<double> state = primacy::GenerateDataset(spec, elements);

    primacy::WallTimer timer;
    const primacy::InSituResult result = InSituCompress(state, options);
    const double compress_s = timer.Seconds();

    timer.Reset();
    WriteCheckpoint(path, result);
    const double write_s = timer.Seconds();

    timer.Reset();
    const std::vector<primacy::Bytes> shards = ReadCheckpoint(path);
    const double read_s = timer.Seconds();

    timer.Reset();
    const std::vector<double> restored = InSituDecompress(shards, options);
    const double restore_s = timer.Seconds();

    if (restored != state) {
      std::printf("ERROR: restart mismatch at timestep %d\n", step);
      return 1;
    }
    std::printf("%-10d %12.3f %12.3f %12.3f %12.3f %10.3f\n", step,
                compress_s, write_s, read_s, restore_s,
                result.totals.CompressionRatio());
  }
  std::filesystem::remove(path);
  std::printf("\nAll restarts verified bit-exact.\n");
  return 0;
}
