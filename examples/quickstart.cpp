// Quickstart: compress a double array with PRIMACY, inspect the per-stage
// statistics, decompress, and verify bit-exactness.
//
//   ./quickstart [dataset-name] [elements]
//
// Dataset names are the Table III profiles (gts_phi_l, num_plasma, ...).
#include <cstdio>
#include <string>

#include "core/primacy_codec.h"
#include "datasets/datasets.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "num_plasma";
  const std::size_t elements =
      argc > 2 ? static_cast<std::size_t>(std::stoull(argv[2])) : 1u << 20;

  std::printf("Generating %zu doubles of synthetic dataset '%s'...\n",
              elements, dataset.c_str());
  const std::vector<double> values =
      primacy::GenerateDatasetByName(dataset, elements);
  const std::size_t raw_bytes = values.size() * sizeof(double);

  // Compress with the default options: 3 MB chunks, deflate-class solver,
  // column linearization, a fresh ID index per chunk.
  primacy::PrimacyCompressor compressor;
  primacy::PrimacyStats stats;
  primacy::WallTimer timer;
  const primacy::Bytes stream = compressor.Compress(values, &stats);
  const double compress_seconds = timer.Seconds();

  timer.Reset();
  primacy::PrimacyDecompressor decompressor;
  const std::vector<double> restored = decompressor.Decompress(stream);
  const double decompress_seconds = timer.Seconds();

  if (restored != values) {
    std::printf("ERROR: roundtrip mismatch!\n");
    return 1;
  }

  std::printf("\nRoundtrip OK (bit-exact).\n\n");
  std::printf("  input               : %10.2f MB\n", raw_bytes / 1e6);
  std::printf("  compressed          : %10.2f MB\n", stream.size() / 1e6);
  std::printf("  compression ratio   : %10.3f\n", stats.CompressionRatio());
  std::printf("  compress throughput : %10.1f MB/s\n",
              primacy::ThroughputMBps(raw_bytes, compress_seconds));
  std::printf("  decompress throughput: %9.1f MB/s\n",
              primacy::ThroughputMBps(raw_bytes, decompress_seconds));
  std::printf("\nPer-stage breakdown:\n");
  std::printf("  chunks              : %10zu\n", stats.chunks);
  std::printf("  index metadata      : %10.2f KB\n", stats.index_bytes / 1e3);
  std::printf("  compressed ID bytes : %10.2f MB\n",
              stats.id_compressed_bytes / 1e6);
  std::printf("  mantissa stream     : %10.2f MB (%.2f MB stored raw)\n",
              stats.mantissa_stream_bytes / 1e6,
              stats.mantissa_raw_bytes / 1e6);
  std::printf("  ISOBAR compressible : %10.1f %% of mantissa columns\n",
              100.0 * stats.mean_compressible_fraction);
  std::printf("  top-byte frequency  : %10.3f -> %.3f (ID mapping gain)\n",
              stats.top_byte_frequency_before, stats.top_byte_frequency_after);
  return 0;
}
