// Extension bench: the decoded-block cache on hot range reads. A fixed-seed
// set of range reads — one per chunk, at a random offset inside it — is run
// against one compressed stream under four configurations: cache off (the
// seed read path), cold cache (every chunk a first touch), warm cache
// (repeat passes, every chunk resident), and a deliberately undersized
// cache that thrashes. Every configuration's output is hash-checked against
// the uncached decode, so the speedups reported are for byte-identical
// results.
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/builtin_codecs.h"
#include "util/checksum.h"
#include "util/timer.h"

namespace {

using namespace primacy;

constexpr std::size_t kChunkBytes = 16 * 1024;  // 2048 doubles per chunk
constexpr std::size_t kChunkElements = kChunkBytes / 8;
constexpr std::size_t kRangeElements = kChunkElements / 2;
constexpr int kWarmPasses = 5;

/// One in-chunk range per whole chunk, at a fixed-seed random offset, so a
/// pass over a fresh cache misses every chunk exactly once and a repeat
/// pass hits every chunk.
std::vector<std::uint64_t> MakeRanges(std::size_t elements) {
  std::vector<std::uint64_t> firsts;
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  for (std::size_t c = 0; (c + 1) * kChunkElements <= elements; ++c) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    firsts.push_back(c * kChunkElements + (state >> 17) % kRangeElements);
  }
  return firsts;
}

struct PassResult {
  double seconds = 0.0;
  PrimacyDecodeStats totals;
  std::uint64_t output_hash = 0;  // chained across ranges, order-sensitive
};

/// One pass over every range. The per-range hashes are chained so any
/// wrong byte in any range under any configuration changes the result.
PassResult RunPass(const PrimacyDecompressor& decompressor, ByteSpan stream,
                   const std::vector<std::uint64_t>& ranges) {
  PassResult result;
  WallTimer timer;
  for (const std::uint64_t first : ranges) {
    PrimacyDecodeStats stats;
    const Bytes out =
        decompressor.DecompressBytesRange(stream, first, kRangeElements, &stats);
    result.output_hash = Xxh64(out, result.output_hash);
    result.totals.chunks_decoded += stats.chunks_decoded;
    result.totals.cache_hits += stats.cache_hits;
    result.totals.cache_misses += stats.cache_misses;
    result.totals.output_bytes += stats.output_bytes;
  }
  result.seconds = timer.Seconds();
  return result;
}

double PassMBps(const PassResult& pass) {
  return ThroughputMBps(pass.totals.output_bytes, pass.seconds);
}

void Report(primacy::bench::BenchReport& report, const char* label,
            const PassResult& pass, const DecodedBlockCache* cache) {
  CacheStatsSnapshot snapshot;
  if (cache != nullptr) snapshot = cache->Stats();
  std::printf("%-10s %10.4fs %10.1f MB/s %8zu hits %8zu misses %8zu evict\n",
              label, pass.seconds, PassMBps(pass), pass.totals.cache_hits,
              pass.totals.cache_misses, snapshot.evictions);
  report.AddEntry(label)
      .Set("seconds", pass.seconds)
      .Set("read_mbps", PassMBps(pass))
      .Set("output_bytes", pass.totals.output_bytes)
      .Set("chunks_decoded", pass.totals.chunks_decoded)
      .Set("cache_hits", pass.totals.cache_hits)
      .Set("cache_misses", pass.totals.cache_misses)
      .Set("cache_hit_ratio", snapshot.HitRatio())
      .Set("cache_evictions", snapshot.evictions)
      .Set("cache_resident_bytes", snapshot.bytes);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  RegisterBuiltinCodecs();
  bench::PrintHeader(
      "Extension: decoded-block cache on hot range reads",
      "beyond Shah et al. — repeated partial restores from one checkpoint");

  const auto& values = bench::DatasetValues("gts_phi_l");
  PrimacyOptions compress;
  compress.chunk_bytes = kChunkBytes;
  const Bytes stream = PrimacyCompressor(compress).Compress(values);
  const std::vector<std::uint64_t> ranges = MakeRanges(values.size());
  std::printf("dataset gts_phi_l: %zu doubles, %zu chunks of %zu KiB; one "
              "%zu-element read per chunk per pass\n\n",
              values.size(), ranges.size(), kChunkBytes / 1024,
              kRangeElements);

  bench::BenchReport report("cache");

  // -- Cache off: the seed read path, run twice (no warm effect). ----------
  const PrimacyDecompressor uncached(compress);
  const PassResult off_a = RunPass(uncached, stream, ranges);
  const PassResult off = RunPass(uncached, stream, ranges);
  Report(report, "off", off, nullptr);

  // -- Cold then warm: default-capacity cache, same decompressor. ----------
  PrimacyOptions cached_options = compress;
  cached_options.cache.enabled = true;
  const PrimacyDecompressor cached(cached_options);
  const PassResult cold = RunPass(cached, stream, ranges);
  Report(report, "cold", cold, cached.cache().get());
  // Warm throughput summed over several passes (each one is fast).
  PassResult warm = RunPass(cached, stream, ranges);
  for (int i = 1; i < kWarmPasses; ++i) {
    const PassResult repeat = RunPass(cached, stream, ranges);
    warm.seconds += repeat.seconds;
    warm.totals.output_bytes += repeat.totals.output_bytes;
    warm.totals.cache_hits += repeat.totals.cache_hits;
    warm.totals.cache_misses += repeat.totals.cache_misses;
    if (repeat.output_hash != warm.output_hash) {
      std::fprintf(stderr, "FAIL: warm passes disagree\n");
      return 1;
    }
  }
  Report(report, "warm", warm, cached.cache().get());

  // -- Thrash: capacity for only 2 of the stream's chunks. -----------------
  PrimacyOptions thrash_options = compress;
  thrash_options.cache.enabled = true;
  thrash_options.cache.capacity_bytes = 2 * kChunkBytes;
  thrash_options.cache.shard_count = 1;
  const PrimacyDecompressor thrashed(thrash_options);
  RunPass(thrashed, stream, ranges);  // fill/evict churn
  const PassResult thrash = RunPass(thrashed, stream, ranges);
  Report(report, "thrash", thrash, thrashed.cache().get());

  // -- Every configuration produced byte-identical output. -----------------
  const std::array<const PassResult*, 4> passes = {&off_a, &cold, &warm,
                                                   &thrash};
  for (const PassResult* pass : passes) {
    if (pass->output_hash != off.output_hash) {
      std::fprintf(stderr, "FAIL: cached output differs from uncached\n");
      return 1;
    }
  }

  const double speedup_vs_cold =
      warm.seconds > 0.0 ? (kWarmPasses * cold.seconds) / warm.seconds : 0.0;
  const double speedup_vs_off =
      warm.seconds > 0.0 ? (kWarmPasses * off.seconds) / warm.seconds : 0.0;
  bench::PrintRule();
  std::printf("warm/cold speedup %.1fx, warm/off speedup %.1fx, outputs "
              "byte-identical across all configurations\n",
              speedup_vs_cold, speedup_vs_off);
  report.AddEntry("summary")
      .Set("warm_over_cold_speedup", speedup_vs_cold)
      .Set("warm_over_off_speedup", speedup_vs_off)
      .Set("outputs_match", true)
      .Set("chunks", ranges.size())
      .Set("range_elements", kRangeElements);
  return 0;
}
