// Section V comparison: PRIMACY vs the predictive coders fpc and fpzip-like
// fpz, on original and reorganized (permuted) data.
//
// Paper conclusions to reproduce: on original data PRIMACY wins CR against
// fpc on ~80% and fpzip on ~65% of datasets; on permuted data the predictive
// coders collapse (PRIMACY beats fpzip on 19/20 and fpc on 20/20, ~9-14% CR
// advantage), because dimensional correlation is destroyed while byte-pair
// frequency statistics are order-invariant.
#include "bench_util.h"
#include "compress/registry.h"
#include "core/builtin_codecs.h"

int main(int argc, char** argv) {
  using namespace primacy;
  bench::Init(argc, argv);
  RegisterBuiltinCodecs();
  bench::PrintHeader(
      "Section V: PRIMACY vs predictive coders (fpc, fpz)",
      "Shah et al., CLUSTER 2012, Section V (Related Work comparison)");
  std::printf("%-15s | %7s %7s %7s | %7s %7s %7s | %8s %8s %8s\n", "dataset",
              "CR", "CR", "CR", "permCR", "permCR", "permCR", "CTP", "CTP",
              "CTP");
  std::printf("%-15s | %7s %7s %7s | %7s %7s %7s | %8s %8s %8s\n", "",
              "PRIM", "fpc", "fpz", "PRIM", "fpc", "fpz", "PRIM", "fpc",
              "fpz");
  bench::PrintRule();

  const auto fpc = CreateCodec("fpc");
  const auto fpz = CreateCodec("fpz");
  bench::BenchReport report("table_predictive_comparison");
  int orig_vs_fpc = 0, orig_vs_fpz = 0, perm_vs_fpc = 0, perm_vs_fpz = 0;

  for (const DatasetSpec& spec : AllDatasets()) {
    const auto& values = bench::DatasetValues(spec.name);
    const ByteSpan raw = AsBytes(values);
    const auto permuted = PermuteElements(values, spec.seed ^ 0xF00D);
    const ByteSpan praw = AsBytes(permuted);

    const bench::PrimacyMeasurement pm = bench::MeasurePrimacy(values);
    const bench::PrimacyMeasurement pm_perm = bench::MeasurePrimacy(permuted);
    const CodecMeasurement fm = MeasureCodec(*fpc, raw);
    const CodecMeasurement fm_perm = MeasureCodec(*fpc, praw);
    const CodecMeasurement zm = MeasureCodec(*fpz, raw);
    const CodecMeasurement zm_perm = MeasureCodec(*fpz, praw);

    std::printf(
        "%-15s | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f | %8.1f %8.1f %8.1f\n",
        spec.name.c_str(), pm.CompressionRatio(), fm.CompressionRatio(),
        zm.CompressionRatio(), pm_perm.CompressionRatio(),
        fm_perm.CompressionRatio(), zm_perm.CompressionRatio(),
        pm.CompressMBps(), fm.CompressMBps(), zm.CompressMBps());

    report.AddEntry(spec.name)
        .Set("primacy_ratio", pm.CompressionRatio())
        .Set("fpc_ratio", fm.CompressionRatio())
        .Set("fpz_ratio", zm.CompressionRatio())
        .Set("primacy_ratio_permuted", pm_perm.CompressionRatio())
        .Set("fpc_ratio_permuted", fm_perm.CompressionRatio())
        .Set("fpz_ratio_permuted", zm_perm.CompressionRatio())
        .Set("primacy_compress_mbps", pm.CompressMBps())
        .Set("fpc_compress_mbps", fm.CompressMBps())
        .Set("fpz_compress_mbps", zm.CompressMBps());

    orig_vs_fpc += pm.CompressionRatio() > fm.CompressionRatio();
    orig_vs_fpz += pm.CompressionRatio() > zm.CompressionRatio();
    perm_vs_fpc += pm_perm.CompressionRatio() > fm_perm.CompressionRatio();
    perm_vs_fpz += pm_perm.CompressionRatio() > zm_perm.CompressionRatio();
  }

  bench::PrintRule();
  std::printf("PRIMACY CR wins vs fpc, original : %d/20 (paper: 16/20)\n",
              orig_vs_fpc);
  std::printf("PRIMACY CR wins vs fpz, original : %d/20 (paper: 13/20)\n",
              orig_vs_fpz);
  std::printf("PRIMACY CR wins vs fpc, permuted : %d/20 (paper: 20/20)\n",
              perm_vs_fpc);
  std::printf("PRIMACY CR wins vs fpz, permuted : %d/20 (paper: 19/20)\n",
              perm_vs_fpz);
  return 0;
}
