// Closed-loop load generator for the multi-tenant compression service:
// replays mixed compress/decompress traffic (~4 KiB requests sliced from
// the paper datasets) from several tenants, each keeping a fixed window of
// requests outstanding, and hash-verifies EVERY response against the
// output of a direct library call — throughput numbers from a service that
// returns wrong bytes are worthless.
//
// The traffic models a serving workload: each tenant owns a bounded hot
// working set of objects (at most kHotPieces 4 KiB slices of its dataset)
// replayed round-robin, so objects repeat — the pattern the service's
// tenant cache partition (decompress) and compress-result memo exist for.
// Every mode replays the exact same request sequence.
//
// Modes compared:
//   direct_dispatch   one pool task per request, fresh codec state per
//                     request, no caching — what per-request dispatch
//                     against the bare library costs.
//   service_unbatched the service with flush-on-every-push (batching
//                     disabled), isolating admission + caching from
//                     batch coalescing.
//   service_batched   the real configuration: requests coalesce into
//                     batches executed by reusable worker contexts.
//
// Emits BENCH_service.json (including per-mode cache/memo hit counts so the
// source of any speedup is visible); exits nonzero if any response failed
// verification.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/chunk_pipeline.h"
#include "service/service.h"
#include "telemetry/metrics.h"
#include "util/checksum.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace primacy::bench {
namespace {

constexpr std::size_t kRequestDoubles = 512;  // ~4 KiB per request
constexpr std::size_t kWindow = 8;            // outstanding per tenant
constexpr std::size_t kHotPieces = 128;       // hot objects per tenant

const std::vector<std::string>& TenantDatasets() {
  static const std::vector<std::string> datasets = {
      "num_plasma", "num_brain", "obs_info", "flash_velx"};
  return datasets;
}

struct Request {
  Bytes payload;
  bool decompress = false;
  std::uint64_t expected_hash = 0;
};

// Per-tenant request table: alternating compress/decompress over 4 KiB
// slices of the tenant's dataset, with expected hashes from direct calls.
struct TenantWorkload {
  std::string tenant;
  std::vector<Request> requests;
  std::size_t total_bytes = 0;
};

std::vector<TenantWorkload> BuildWorkloads(std::size_t requests_per_tenant) {
  PrimacyOptions direct;
  direct.threads = 1;
  const PrimacyCompressor compressor(direct);
  std::vector<TenantWorkload> workloads;
  for (std::size_t t = 0; t < TenantDatasets().size(); ++t) {
    const std::vector<double>& values = DatasetValues(TenantDatasets()[t]);
    const std::size_t pieces =
        std::min(values.size() / kRequestDoubles, kHotPieces);
    std::vector<Bytes> inputs;
    std::vector<Bytes> streams;
    for (std::size_t p = 0; p < pieces; ++p) {
      const auto* begin =
          reinterpret_cast<const std::byte*>(values.data() + p * kRequestDoubles);
      inputs.push_back(ToBytes(ByteSpan(begin, kRequestDoubles * 8)));
      streams.push_back(compressor.CompressBytes(inputs.back()));
    }
    TenantWorkload workload;
    workload.tenant = "tenant_" + TenantDatasets()[t];
    for (std::size_t r = 0; r < requests_per_tenant; ++r) {
      const std::size_t p = r % pieces;
      Request request;
      request.decompress = (r % 2) == 1;  // 50/50 mix
      if (request.decompress) {
        request.payload = streams[p];
        request.expected_hash = Xxh64(ByteSpan(inputs[p]));
      } else {
        request.payload = inputs[p];
        request.expected_hash = Xxh64(ByteSpan(streams[p]));
      }
      workload.total_bytes += request.payload.size();
      workload.requests.push_back(std::move(request));
    }
    workloads.push_back(std::move(workload));
  }
  return workloads;
}

struct ModeResult {
  double seconds = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t mismatches = 0;
  std::size_t payload_bytes = 0;

  double RequestsPerSec() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
  double MBps() const {
    return seconds > 0
               ? static_cast<double>(payload_bytes) / (1024.0 * 1024.0) / seconds
               : 0.0;
  }
};

// Baseline: every request is its own pool task constructing fresh codec
// state — what per-request dispatch without the service costs.
ModeResult RunDirectDispatch(const std::vector<TenantWorkload>& workloads) {
  ModeResult result;
  WallTimer timer;
  std::vector<std::thread> drivers;
  std::vector<std::uint64_t> mismatches(workloads.size(), 0);
  for (std::size_t t = 0; t < workloads.size(); ++t) {
    drivers.emplace_back([&, t] {
      ThreadPool& pool = SharedThreadPool();
      const TenantWorkload& workload = workloads[t];
      std::deque<std::pair<const Request*, std::future<Bytes>>> window;
      auto drain_one = [&] {
        auto [request, future] = std::move(window.front());
        window.pop_front();
        const Bytes response = future.get();
        if (Xxh64(ByteSpan(response)) != request->expected_hash) {
          ++mismatches[t];
        }
      };
      for (const Request& request : workload.requests) {
        window.emplace_back(&request, pool.Submit([&request]() -> Bytes {
          PrimacyOptions options;
          options.threads = 1;
          if (request.decompress) {
            return PrimacyDecompressor(options).DecompressBytes(
                request.payload);
          }
          return PrimacyCompressor(options).CompressBytes(request.payload);
        }));
        if (window.size() >= kWindow) drain_one();
      }
      while (!window.empty()) drain_one();
    });
  }
  for (auto& driver : drivers) driver.join();
  result.seconds = timer.Seconds();
  for (const TenantWorkload& workload : workloads) {
    result.requests += workload.requests.size();
    result.payload_bytes += workload.total_bytes;
  }
  for (const std::uint64_t m : mismatches) result.mismatches += m;
  return result;
}

ModeResult RunService(const std::vector<TenantWorkload>& workloads,
                      const service::BatchOptions& batch,
                      std::uint64_t* cache_hits_out = nullptr,
                      std::uint64_t* memo_hits_out = nullptr) {
  service::ServiceOptions options;
  options.batch = batch;
  options.cache_capacity_bytes = 64ull << 20;  // split across the tenants
  service::CompressionService svc(options);
  for (const TenantWorkload& workload : workloads) {
    service::TenantConfig config;
    config.name = workload.tenant;
    config.cache_share = 1.0 / static_cast<double>(workloads.size());
    config.memo_bytes = 8ull << 20;  // covers the hot working set
    svc.AddTenant(config);
  }
  ModeResult result;
  WallTimer timer;
  std::vector<std::thread> drivers;
  std::vector<std::uint64_t> mismatches(workloads.size(), 0);
  for (std::size_t t = 0; t < workloads.size(); ++t) {
    drivers.emplace_back([&, t] {
      const TenantWorkload& workload = workloads[t];
      std::deque<std::pair<const Request*, std::future<service::ServiceResponse>>>
          window;
      auto drain_one = [&] {
        auto [request, future] = std::move(window.front());
        window.pop_front();
        const service::ServiceResponse response = future.get();
        if (!response.ok() ||
            Xxh64(ByteSpan(response.payload)) != request->expected_hash) {
          ++mismatches[t];
        }
      };
      for (const Request& request : workload.requests) {
        auto future = request.decompress
                          ? svc.SubmitDecompress(workload.tenant,
                                                 request.payload)
                          : svc.SubmitCompress(workload.tenant,
                                               request.payload);
        window.emplace_back(&request, std::move(future));
        if (window.size() >= kWindow) drain_one();
      }
      while (!window.empty()) drain_one();
    });
  }
  for (auto& driver : drivers) driver.join();
  result.seconds = timer.Seconds();
  for (const TenantWorkload& workload : workloads) {
    result.requests += workload.requests.size();
    result.payload_bytes += workload.total_bytes;
    const service::TenantStatsSnapshot stats = svc.TenantStats(workload.tenant);
    if (cache_hits_out != nullptr) *cache_hits_out += stats.cache_hits;
    if (memo_hits_out != nullptr) *memo_hits_out += stats.memo_hits;
  }
  for (const std::uint64_t m : mismatches) result.mismatches += m;
  return result;
}

BenchReport::Entry& Report(BenchReport& report, const std::string& mode,
                           const ModeResult& result) {
  std::printf("  %-18s %8.0f req/s  %7.1f MB/s  %6.3f s  %s\n", mode.c_str(),
              result.RequestsPerSec(), result.MBps(), result.seconds,
              result.mismatches == 0 ? "all verified"
                                     : "VERIFICATION FAILED");
  return report.AddEntry(mode)
      .Set("requests", static_cast<std::size_t>(result.requests))
      .Set("seconds", result.seconds)
      .Set("requests_per_sec", result.RequestsPerSec())
      .Set("mb_per_sec", result.MBps())
      .Set("mismatches", static_cast<std::size_t>(result.mismatches))
      .Set("verified", result.mismatches == 0);
}

/// Per-stage duration histograms at one instant, both pipelines. Captured
/// around each mode so DeltaSince isolates that mode's distribution even
/// though the registry accumulates across the whole process.
struct StageHistograms {
  std::array<primacy::telemetry::HistogramSnapshot,
             primacy::telemetry::kStageCount>
      encode;
  std::array<primacy::telemetry::HistogramSnapshot,
             primacy::telemetry::kStageCount>
      decode;

  static StageHistograms Capture() {
    namespace tel = primacy::telemetry;
    StageHistograms snapshot;
    auto& registry = tel::MetricsRegistry::Global();
    // Bounds must match the pipeline's registration (first caller fixes
    // the buckets) — StageSecondsBounds() is that contract.
    const std::span<const double> bounds = primacy::StageSecondsBounds();
    for (std::size_t s = 0; s < tel::kStageCount; ++s) {
      const std::string label =
          "stage=\"" +
          std::string(tel::StageName(static_cast<tel::Stage>(s))) + "\"";
      snapshot.encode[s] =
          registry.GetHistogram("primacy_encode_stage_seconds", bounds, label)
              .Snapshot();
      snapshot.decode[s] =
          registry.GetHistogram("primacy_decode_stage_seconds", bounds, label)
              .Snapshot();
    }
    return snapshot;
  }
};

/// Adds p50/p95/p99 per-chunk stage latencies for every stage this mode
/// exercised (flat keys, e.g. p99_encode_solver_s) to the mode's entry.
void AddStagePercentiles(BenchReport::Entry& entry,
                         const StageHistograms& before,
                         const StageHistograms& after) {
  namespace tel = primacy::telemetry;
  const struct {
    const char* prefix;
    const std::array<tel::HistogramSnapshot, tel::kStageCount>& earlier;
    const std::array<tel::HistogramSnapshot, tel::kStageCount>& later;
  } pipelines[] = {{"encode", before.encode, after.encode},
                   {"decode", before.decode, after.decode}};
  for (const auto& pipeline : pipelines) {
    for (std::size_t s = 0; s < tel::kStageCount; ++s) {
      const tel::HistogramSnapshot delta =
          pipeline.later[s].DeltaSince(pipeline.earlier[s]);
      if (delta.count == 0) continue;
      const std::string stage(tel::StageName(static_cast<tel::Stage>(s)));
      const std::string key = std::string(pipeline.prefix) + "_" + stage;
      entry.Set("p50_" + key + "_s", delta.Quantile(0.50))
          .Set("p95_" + key + "_s", delta.Quantile(0.95))
          .Set("p99_" + key + "_s", delta.Quantile(0.99));
    }
  }
}

}  // namespace
}  // namespace primacy::bench

int main(int argc, char** argv) {
  using namespace primacy::bench;
  Init(argc, argv);
  PrintHeader("Multi-tenant service throughput (closed-loop, hash-verified)",
              "service layer; batching vs per-request dispatch");

  const std::size_t requests_per_tenant = Quick() ? 256 : 2048;
  const auto workloads = BuildWorkloads(requests_per_tenant);
  std::printf("tenants=%zu  requests/tenant=%zu  window=%zu  payload=%zu B\n",
              workloads.size(), requests_per_tenant, kWindow,
              kRequestDoubles * 8);
  PrintRule();

  BenchReport report("service");

  StageHistograms stage_mark = StageHistograms::Capture();
  const ModeResult direct = RunDirectDispatch(workloads);
  {
    const StageHistograms now = StageHistograms::Capture();
    AddStagePercentiles(Report(report, "direct_dispatch", direct),
                        stage_mark, now);
    stage_mark = now;
  }

  primacy::service::BatchOptions unbatched;
  unbatched.flush_timeout_ns = 0;  // flush on every push: no coalescing
  std::uint64_t unbatched_cache_hits = 0;
  std::uint64_t unbatched_memo_hits = 0;
  const ModeResult service_unbatched = RunService(
      workloads, unbatched, &unbatched_cache_hits, &unbatched_memo_hits);
  {
    const StageHistograms now = StageHistograms::Capture();
    AddStagePercentiles(Report(report, "service_unbatched", service_unbatched),
                        stage_mark, now);
    stage_mark = now;
  }

  primacy::service::BatchOptions batched;
  batched.flush_bytes = 32 * 1024;     // ~8 requests
  batched.flush_requests = 8;
  batched.flush_timeout_ns = 100'000;  // 100 us tail-latency bound
  std::uint64_t batched_cache_hits = 0;
  std::uint64_t batched_memo_hits = 0;
  const ModeResult service_batched =
      RunService(workloads, batched, &batched_cache_hits, &batched_memo_hits);
  AddStagePercentiles(Report(report, "service_batched", service_batched),
                      stage_mark, StageHistograms::Capture());
  std::printf("  service hit counts: unbatched cache=%llu memo=%llu | "
              "batched cache=%llu memo=%llu\n",
              static_cast<unsigned long long>(unbatched_cache_hits),
              static_cast<unsigned long long>(unbatched_memo_hits),
              static_cast<unsigned long long>(batched_cache_hits),
              static_cast<unsigned long long>(batched_memo_hits));

  const double speedup_vs_direct =
      direct.RequestsPerSec() > 0
          ? service_batched.RequestsPerSec() / direct.RequestsPerSec()
          : 0.0;
  const double speedup_vs_unbatched =
      service_unbatched.RequestsPerSec() > 0
          ? service_batched.RequestsPerSec() / service_unbatched.RequestsPerSec()
          : 0.0;
  PrintRule();
  std::printf("batched speedup: %.2fx vs direct dispatch, %.2fx vs unbatched "
              "service\n",
              speedup_vs_direct, speedup_vs_unbatched);

  const std::uint64_t total_mismatches = direct.mismatches +
                                         service_unbatched.mismatches +
                                         service_batched.mismatches;
  report.AddEntry("summary")
      .Set("speedup_batched_vs_direct", speedup_vs_direct)
      .Set("speedup_batched_vs_unbatched", speedup_vs_unbatched)
      .Set("service_unbatched_cache_hits",
           static_cast<std::size_t>(unbatched_cache_hits))
      .Set("service_unbatched_memo_hits",
           static_cast<std::size_t>(unbatched_memo_hits))
      .Set("service_batched_cache_hits",
           static_cast<std::size_t>(batched_cache_hits))
      .Set("service_batched_memo_hits",
           static_cast<std::size_t>(batched_memo_hits))
      .Set("verified", total_mismatches == 0);
  report.Write();
  if (total_mismatches != 0) {
    std::fprintf(stderr, "service_load: %llu responses failed verification\n",
                 static_cast<unsigned long long>(total_mismatches));
    return 1;
  }
  return 0;
}
