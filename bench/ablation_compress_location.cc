// Section III-A ablation: compression placement. The paper asserts that
// compressing at the compute nodes beats compressing at the I/O nodes —
// compression parallelizes over rho nodes and the network carries the
// reduced payload. This bench runs both placements (and the null case)
// through the simulator with real measured PRIMACY timings.
#include "bench_util.h"
#include "compress/registry.h"
#include "core/builtin_codecs.h"
#include "hpcsim/staging.h"

int main(int argc, char** argv) {
  using namespace primacy;
  using hpcsim::ClusterConfig;
  using hpcsim::CompressionProfile;
  bench::Init(argc, argv);
  RegisterBuiltinCodecs();

  bench::PrintHeader(
      "Ablation: compression at compute nodes vs at I/O nodes",
      "Shah et al., CLUSTER 2012, Section III-A placement argument");

  ClusterConfig config;
  config.compute_nodes = 8;
  config.compute_per_io = 8;
  config.network_bps = 120e6;
  config.disk_write_bps = 25e6;

  std::printf("%-14s %12s %14s %14s %10s\n", "dataset", "null", "compute-side",
              "io-side", "winner");
  bench::PrintRule();
  const auto codec = CreateCodec("primacy");
  bench::BenchReport report("ablation_compress_location");
  for (const char* name : {"num_comet", "flash_velx", "obs_temp"}) {
    const ByteSpan raw = bench::DatasetBytes(name);
    const CodecMeasurement m = MeasureCodec(*codec, raw);

    CompressionProfile profile;
    profile.input_bytes = static_cast<double>(raw.size());
    profile.output_bytes = static_cast<double>(m.compressed_bytes);
    profile.compress_seconds = m.compress_seconds;

    const double null_mbps =
        SimulateWrite(config,
                      CompressionProfile::Null(static_cast<double>(raw.size())))
            .ThroughputMBps();
    const double compute_mbps =
        SimulateWrite(config, profile).ThroughputMBps();
    const double io_mbps =
        SimulateWriteAtIoNode(config, profile).ThroughputMBps();
    std::printf("%-14s %12.1f %14.1f %14.1f %10s\n", name, null_mbps,
                compute_mbps, io_mbps,
                compute_mbps >= io_mbps ? "compute" : "io");
    report.AddEntry(name)
        .Set("null_mbps", null_mbps)
        .Set("compute_side_mbps", compute_mbps)
        .Set("io_side_mbps", io_mbps)
        .Set("winner", compute_mbps >= io_mbps ? "compute" : "io");
  }
  bench::PrintRule();
  std::printf(
      "Paper shape: compute-side placement wins — the I/O node's serial CPU\n"
      "becomes the bottleneck (rho chunks queue behind one compressor) and\n"
      "the network still carries the full raw payload.\n");
  return 0;
}
