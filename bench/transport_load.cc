// Cost of the process boundary: the service_load workload replayed over
// the src/transport Unix-domain-socket daemon path, against the same
// service driven in-process.
//
// Both modes run the identical multi-tenant mix (~4 KiB compress/
// decompress requests over each tenant's hot working set, a fixed window
// outstanding per tenant) against identically configured services, and
// hash-verify EVERY response against a direct library call — the daemon is
// only worth its round-trips if it returns byte-identical answers.
//
// Modes compared:
//   service_inprocess  CompressionService driven through Submit* futures —
//                      the service_load "service_batched" configuration.
//   transport_uds      the same service behind a TransportServer socket;
//                      each tenant drives its window through a pooled
//                      TransportClient (one synchronous call per in-flight
//                      slot, wire encode + checksum + two socket hops per
//                      request).
//
// Emits BENCH_transport.json with the throughput ratio and a target_met
// flag: the UDS path must hold at least half the in-process throughput for
// this 4 KiB request mix, or the boundary is eating the service.
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_util.h"
#include "service/service.h"
#include "transport/client.h"
#include "transport/server.h"
#include "util/checksum.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace primacy::bench {
namespace {

constexpr std::size_t kRequestDoubles = 512;  // ~4 KiB per request
constexpr std::size_t kWindow = 8;            // outstanding per tenant
constexpr std::size_t kHotPieces = 128;       // hot objects per tenant

const std::vector<std::string>& TenantDatasets() {
  static const std::vector<std::string> datasets = {
      "num_plasma", "num_brain", "obs_info", "flash_velx"};
  return datasets;
}

struct Request {
  Bytes payload;
  bool decompress = false;
  std::uint64_t expected_hash = 0;
};

struct TenantWorkload {
  std::string tenant;
  std::vector<Request> requests;
  std::size_t total_bytes = 0;
};

std::vector<TenantWorkload> BuildWorkloads(std::size_t requests_per_tenant) {
  PrimacyOptions direct;
  direct.threads = 1;
  const PrimacyCompressor compressor(direct);
  std::vector<TenantWorkload> workloads;
  for (std::size_t t = 0; t < TenantDatasets().size(); ++t) {
    const std::vector<double>& values = DatasetValues(TenantDatasets()[t]);
    const std::size_t pieces =
        std::min(values.size() / kRequestDoubles, kHotPieces);
    std::vector<Bytes> inputs;
    std::vector<Bytes> streams;
    for (std::size_t p = 0; p < pieces; ++p) {
      const auto* begin = reinterpret_cast<const std::byte*>(values.data() +
                                                             p * kRequestDoubles);
      inputs.push_back(ToBytes(ByteSpan(begin, kRequestDoubles * 8)));
      streams.push_back(compressor.CompressBytes(inputs.back()));
    }
    TenantWorkload workload;
    workload.tenant = "tenant_" + TenantDatasets()[t];
    for (std::size_t r = 0; r < requests_per_tenant; ++r) {
      const std::size_t p = r % pieces;
      Request request;
      request.decompress = (r % 2) == 1;  // 50/50 mix
      if (request.decompress) {
        request.payload = streams[p];
        request.expected_hash = Xxh64(ByteSpan(inputs[p]));
      } else {
        request.payload = inputs[p];
        request.expected_hash = Xxh64(ByteSpan(streams[p]));
      }
      workload.total_bytes += request.payload.size();
      workload.requests.push_back(std::move(request));
    }
    workloads.push_back(std::move(workload));
  }
  return workloads;
}

/// The service_load "service_batched" configuration, identical in both
/// modes so the only variable is the boundary.
service::ServiceOptions BenchServiceOptions(std::size_t tenant_count) {
  (void)tenant_count;
  service::ServiceOptions options;
  options.batch.flush_bytes = 32 * 1024;
  options.batch.flush_requests = 8;
  options.batch.flush_timeout_ns = 100'000;  // 100 us tail-latency bound
  options.cache_capacity_bytes = 64ull << 20;
  return options;
}

void AddBenchTenants(service::CompressionService& svc,
                     const std::vector<TenantWorkload>& workloads) {
  for (const TenantWorkload& workload : workloads) {
    service::TenantConfig config;
    config.name = workload.tenant;
    config.cache_share = 1.0 / static_cast<double>(workloads.size());
    config.memo_bytes = 8ull << 20;
    svc.AddTenant(config);
  }
}

struct ModeResult {
  double seconds = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t mismatches = 0;
  std::size_t payload_bytes = 0;

  double RequestsPerSec() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
  double MBps() const {
    return seconds > 0
               ? static_cast<double>(payload_bytes) / (1024.0 * 1024.0) / seconds
               : 0.0;
  }
  void AccumulateTotals(const std::vector<TenantWorkload>& workloads,
                        const std::vector<std::uint64_t>& mismatch_counts) {
    for (const TenantWorkload& workload : workloads) {
      requests += workload.requests.size();
      payload_bytes += workload.total_bytes;
    }
    for (const std::uint64_t m : mismatch_counts) mismatches += m;
  }
};

ModeResult RunInProcess(const std::vector<TenantWorkload>& workloads) {
  service::CompressionService svc(BenchServiceOptions(workloads.size()));
  AddBenchTenants(svc, workloads);
  ModeResult result;
  WallTimer timer;
  std::vector<std::thread> drivers;
  std::vector<std::uint64_t> mismatches(workloads.size(), 0);
  for (std::size_t t = 0; t < workloads.size(); ++t) {
    drivers.emplace_back([&, t] {
      const TenantWorkload& workload = workloads[t];
      std::deque<std::pair<const Request*, std::future<service::ServiceResponse>>>
          window;
      auto drain_one = [&] {
        auto [request, future] = std::move(window.front());
        window.pop_front();
        const service::ServiceResponse response = future.get();
        if (!response.ok() ||
            Xxh64(ByteSpan(response.payload)) != request->expected_hash) {
          ++mismatches[t];
        }
      };
      for (const Request& request : workload.requests) {
        auto future = request.decompress
                          ? svc.SubmitDecompress(workload.tenant,
                                                 request.payload)
                          : svc.SubmitCompress(workload.tenant,
                                               request.payload);
        window.emplace_back(&request, std::move(future));
        if (window.size() >= kWindow) drain_one();
      }
      while (!window.empty()) drain_one();
    });
  }
  for (auto& driver : drivers) driver.join();
  result.seconds = timer.Seconds();
  result.AccumulateTotals(workloads, mismatches);
  return result;
}

ModeResult RunOverTransport(const std::vector<TenantWorkload>& workloads,
                            std::uint64_t* server_requests,
                            std::uint64_t* server_connections) {
  service::CompressionService svc(BenchServiceOptions(workloads.size()));
  AddBenchTenants(svc, workloads);

  transport::TransportServerOptions server_options;
  server_options.socket_path =
      "/tmp/primacy_transport_load_" + std::to_string(::getpid()) + ".sock";
  server_options.max_connections = workloads.size() * kWindow + 4;
  transport::TransportServer server(svc, server_options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "transport_load: server start failed: %s\n",
                 error.c_str());
    std::exit(1);
  }

  ModeResult result;
  WallTimer timer;
  std::vector<std::thread> drivers;
  std::vector<std::uint64_t> mismatches(workloads.size(), 0);
  for (std::size_t t = 0; t < workloads.size(); ++t) {
    drivers.emplace_back([&, t] {
      const TenantWorkload& workload = workloads[t];
      // One pooled client per tenant; kWindow synchronous callers model the
      // same kWindow-outstanding closed loop as the in-process futures.
      transport::TransportClientOptions client_options;
      client_options.socket_path = server_options.socket_path;
      client_options.max_pooled_connections = kWindow;
      transport::TransportClient client(std::move(client_options));
      std::vector<std::thread> slots;
      for (std::size_t w = 0; w < kWindow; ++w) {
        slots.emplace_back([&, w] {
          std::uint64_t bad = 0;
          for (std::size_t r = w; r < workload.requests.size(); r += kWindow) {
            const Request& request = workload.requests[r];
            const transport::TransportResult response =
                request.decompress
                    ? client.Decompress(workload.tenant,
                                        ByteSpan(request.payload))
                    : client.Compress(workload.tenant,
                                      ByteSpan(request.payload));
            if (!response.ok() ||
                Xxh64(ByteSpan(response.payload)) != request.expected_hash) {
              ++bad;
            }
          }
          if (bad != 0) {
            static primacy::Mutex tally_mu;
            primacy::MutexLock lock(tally_mu);
            mismatches[t] += bad;
          }
        });
      }
      for (auto& slot : slots) slot.join();
    });
  }
  for (auto& driver : drivers) driver.join();
  result.seconds = timer.Seconds();
  result.AccumulateTotals(workloads, mismatches);
  const transport::TransportServerStats stats = server.Stats();
  if (server_requests != nullptr) *server_requests = stats.requests;
  if (server_connections != nullptr) {
    *server_connections = stats.connections_accepted;
  }
  server.Shutdown();
  return result;
}

BenchReport::Entry& Report(BenchReport& report, const std::string& mode,
                           const ModeResult& result) {
  std::printf("  %-18s %8.0f req/s  %7.1f MB/s  %6.3f s  %s\n", mode.c_str(),
              result.RequestsPerSec(), result.MBps(), result.seconds,
              result.mismatches == 0 ? "all verified"
                                     : "VERIFICATION FAILED");
  return report.AddEntry(mode)
      .Set("requests", static_cast<std::size_t>(result.requests))
      .Set("seconds", result.seconds)
      .Set("requests_per_sec", result.RequestsPerSec())
      .Set("mb_per_sec", result.MBps())
      .Set("mismatches", static_cast<std::size_t>(result.mismatches))
      .Set("verified", result.mismatches == 0);
}

}  // namespace
}  // namespace primacy::bench

int main(int argc, char** argv) {
  using namespace primacy::bench;
  Init(argc, argv);
  PrintHeader("Transport boundary throughput (UDS daemon vs in-process)",
              "src/transport; closed-loop, hash-verified");

  const std::size_t requests_per_tenant = Quick() ? 256 : 2048;
  const auto workloads = BuildWorkloads(requests_per_tenant);
  std::printf("tenants=%zu  requests/tenant=%zu  window=%zu  payload=%zu B\n",
              workloads.size(), requests_per_tenant, kWindow,
              kRequestDoubles * 8);
  PrintRule();

  BenchReport report("transport");

  const ModeResult inprocess = RunInProcess(workloads);
  Report(report, "service_inprocess", inprocess);

  std::uint64_t server_requests = 0;
  std::uint64_t server_connections = 0;
  const ModeResult transport =
      RunOverTransport(workloads, &server_requests, &server_connections);
  Report(report, "transport_uds", transport)
      .Set("server_requests", static_cast<std::size_t>(server_requests))
      .Set("server_connections", static_cast<std::size_t>(server_connections));

  const double ratio = inprocess.RequestsPerSec() > 0
                           ? transport.RequestsPerSec() / inprocess.RequestsPerSec()
                           : 0.0;
  // The boundary budget: wire framing + checksums + two socket hops must
  // not cost more than half the throughput on this ~4 KiB request mix.
  const bool target_met = ratio >= 0.5;
  PrintRule();
  std::printf("transport/in-process throughput ratio: %.2fx (target >= 0.50x"
              " — %s)\n",
              ratio, target_met ? "met" : "MISSED");

  const std::uint64_t total_mismatches =
      inprocess.mismatches + transport.mismatches;
  report.AddEntry("summary")
      .Set("throughput_ratio", ratio)
      .Set("target_ratio", 0.5)
      .Set("target_met", target_met)
      .Set("verified", total_mismatches == 0);
  report.Write();
  if (total_mismatches != 0) {
    std::fprintf(stderr,
                 "transport_load: %llu responses failed verification\n",
                 static_cast<unsigned long long>(total_mismatches));
    return 1;
  }
  return 0;
}
