// Section IV-H ablation: row vs column linearization of the ID bytes.
// Paper: column order yields 8-10% better compression ratio and ~20% higher
// compression throughput on the identification values.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace primacy;
  bench::Init(argc, argv);
  bench::PrintHeader(
      "Ablation: byte-level linearization of ID bytes (row vs column)",
      "Shah et al., CLUSTER 2012, Section IV-H");
  std::printf("%-15s %10s %10s %12s %12s %10s\n", "dataset", "rowCR",
              "colCR", "rowCTP", "colCTP", "colGain%");
  bench::PrintRule();

  PrimacyOptions row;
  row.linearization = Linearization::kRow;
  PrimacyOptions column;
  column.linearization = Linearization::kColumn;

  bench::BenchReport report("ablation_linearization");
  double id_gain_sum = 0.0;
  int col_wins = 0;
  for (const DatasetSpec& spec : AllDatasets()) {
    const auto& values = bench::DatasetValues(spec.name);
    const auto rm = bench::MeasurePrimacy(values, row);
    const auto cm = bench::MeasurePrimacy(values, column);
    // Isolate the ID-byte stream effect (the mantissa path is identical):
    // compare solver output sizes for the ID bytes alone.
    const double id_gain =
        100.0 * (static_cast<double>(rm.stats.id_compressed_bytes) /
                     static_cast<double>(cm.stats.id_compressed_bytes) -
                 1.0);
    id_gain_sum += id_gain;
    col_wins += cm.stats.id_compressed_bytes <= rm.stats.id_compressed_bytes;
    std::printf("%-15s %10.3f %10.3f %12.1f %12.1f %10.1f\n",
                spec.name.c_str(), rm.CompressionRatio(),
                cm.CompressionRatio(), rm.CompressMBps(), cm.CompressMBps(),
                id_gain);
    report.AddEntry(spec.name)
        .Set("row_ratio", rm.CompressionRatio())
        .Set("column_ratio", cm.CompressionRatio())
        .Set("row_compress_mbps", rm.CompressMBps())
        .Set("column_compress_mbps", cm.CompressMBps())
        .Set("id_size_gain_pct", id_gain);
  }

  bench::PrintRule();
  std::printf("column linearization ID-byte wins: %d/20\n", col_wins);
  std::printf("mean ID-byte size reduction      : %+.1f%% (paper: 8-10%% CR)\n",
              id_gain_sum / 20.0);
  return 0;
}
