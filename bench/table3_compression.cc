// Table III: compression ratio (original and permuted-linearization),
// compression throughput and decompression throughput — deflate-class
// solver (zlib stand-in) vs PRIMACY, over all 20 datasets.
//
// Paper conclusions to reproduce: PRIMACY wins CR on 19/20 (msg_sppm is the
// exception), wins CTP/DTP on 19/20, ~13% mean CR improvement, 3-4x mean
// throughput improvement; permutation preserves the CR advantage.
#include "bench_util.h"
#include "compress/registry.h"
#include "core/builtin_codecs.h"

int main(int argc, char** argv) {
  using namespace primacy;
  bench::Init(argc, argv);
  RegisterBuiltinCodecs();
  bench::PrintHeader(
      "Table III: zlib-class solver vs PRIMACY across 20 datasets",
      "Shah et al., CLUSTER 2012, Table III");
  std::printf("%-15s | %6s %8s | %6s %8s | %8s %9s | %8s %9s\n", "dataset",
              "CR", "CR", "LinCR", "LinCR", "CTP", "CTP", "DTP", "DTP");
  std::printf("%-15s | %6s %8s | %6s %8s | %8s %9s | %8s %9s\n", "",
              "solver", "PRIMACY", "solver", "PRIMACY", "solver", "PRIMACY",
              "solver", "PRIMACY");
  bench::PrintRule();

  const auto solver = CreateCodec("deflate");
  bench::BenchReport report("table3_compression");
  int cr_wins = 0, lin_wins = 0, ctp_wins = 0, dtp_wins = 0;
  double cr_gain_sum = 0.0, ctp_factor_sum = 0.0, dtp_factor_sum = 0.0;

  for (const DatasetSpec& spec : AllDatasets()) {
    const auto& values = bench::DatasetValues(spec.name);
    const ByteSpan raw = AsBytes(values);
    const CodecMeasurement sm = MeasureCodec(*solver, raw);
    const bench::PrimacyMeasurement pm = bench::MeasurePrimacy(values);

    // Section IV-G: user-controlled linearization — a deterministic
    // permutation of element order.
    const auto permuted = PermuteElements(values, spec.seed ^ 0xBEEF);
    const ByteSpan praw = AsBytes(permuted);
    const CodecMeasurement sm_lin = MeasureCodec(*solver, praw);
    const bench::PrimacyMeasurement pm_lin = bench::MeasurePrimacy(permuted);

    std::printf("%-15s | %6.2f %8.2f | %6.2f %8.2f | %8.1f %9.1f | %8.1f %9.1f\n",
                spec.name.c_str(), sm.CompressionRatio(),
                pm.CompressionRatio(), sm_lin.CompressionRatio(),
                pm_lin.CompressionRatio(), sm.CompressMBps(),
                pm.CompressMBps(), sm.DecompressMBps(), pm.DecompressMBps());

    report.AddEntry(spec.name)
        .Set("solver_ratio", sm.CompressionRatio())
        .Set("primacy_ratio", pm.CompressionRatio())
        .Set("solver_ratio_permuted", sm_lin.CompressionRatio())
        .Set("primacy_ratio_permuted", pm_lin.CompressionRatio())
        .Set("solver_compress_mbps", sm.CompressMBps())
        .Set("primacy_compress_mbps", pm.CompressMBps())
        .Set("solver_decompress_mbps", sm.DecompressMBps())
        .Set("primacy_decompress_mbps", pm.DecompressMBps());

    cr_wins += pm.CompressionRatio() > sm.CompressionRatio();
    lin_wins += pm_lin.CompressionRatio() > sm_lin.CompressionRatio();
    ctp_wins += pm.CompressMBps() > sm.CompressMBps();
    dtp_wins += pm.DecompressMBps() > sm.DecompressMBps();
    cr_gain_sum += pm.CompressionRatio() / sm.CompressionRatio() - 1.0;
    ctp_factor_sum += pm.CompressMBps() / sm.CompressMBps();
    dtp_factor_sum += pm.DecompressMBps() / sm.DecompressMBps();
  }

  bench::PrintRule();
  std::printf("PRIMACY CR wins          : %d/20 (paper: 19/20)\n", cr_wins);
  std::printf("PRIMACY CR wins permuted : %d/20 (paper: 19/20)\n", lin_wins);
  std::printf("PRIMACY CTP wins         : %d/20 (paper: 19/20)\n", ctp_wins);
  std::printf("PRIMACY DTP wins         : %d/20 (paper: 20/20)\n", dtp_wins);
  std::printf("mean CR improvement      : %+.1f%% (paper: ~13%%)\n",
              100.0 * cr_gain_sum / 20.0);
  std::printf("mean CTP factor          : %.2fx (paper: 3-4x)\n",
              ctp_factor_sum / 20.0);
  std::printf("mean DTP factor          : %.2fx (paper: 3-4x)\n",
              dtp_factor_sum / 20.0);
  return 0;
}
