// Model sweep: the paper offers its Section III model as a way to "predict
// algorithm performance on a variety of target systems" (Section IV-D).
// Sweep the cluster parameters (rho, network theta, disk mu_w) and print
// model vs simulator end-to-end write throughput, null vs PRIMACY, plus the
// predicted gain — the decision surface an application developer would use.
#include <array>

#include "bench_util.h"
#include "hpcsim/staging.h"
#include "model/perf_model.h"

namespace {

using namespace primacy;
using hpcsim::ClusterConfig;
using hpcsim::CompressionProfile;

struct SweepPoint {
  double rho;
  double network_mbps;
  double disk_mbps;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader(
      "Model sweep: predicted vs simulated write gain across clusters",
      "Shah et al., CLUSTER 2012, Sections III and IV-D");

  // Calibrate the data-dependent inputs once, from a real PRIMACY run.
  const auto& values = bench::DatasetValues("flash_velx");
  const auto pm = bench::MeasurePrimacy(values);
  const double chunk_bytes = static_cast<double>(pm.stats.input_bytes);
  const double measured_compress_bps = chunk_bytes / pm.compress_seconds;
  const double measured_decompress_bps = chunk_bytes / pm.decompress_seconds;

  const std::array<SweepPoint, 9> sweep = {{{2, 120, 30},
                                            {8, 120, 30},
                                            {32, 120, 30},
                                            {8, 40, 30},
                                            {8, 480, 30},
                                            {8, 120, 10},
                                            {8, 120, 120},
                                            {32, 480, 120},
                                            {2, 40, 10}}};

  std::printf("%5s %8s %8s | %9s %9s %9s %9s | %8s %8s\n", "rho", "net",
              "disk", "nullMod", "nullSim", "primMod", "primSim", "gainMod",
              "gainSim");
  bench::PrintRule();
  bench::BenchReport report("model_sweep");
  for (const SweepPoint& point : sweep) {
    ModelInputs in;
    in.chunk_bytes = chunk_bytes;
    in.rho = point.rho;
    in.network_bps = point.network_mbps * 1e6;
    in.disk_write_bps = point.disk_mbps * 1e6;
    in = CalibrateFromMeasurements(in, pm.stats, 4.0 * measured_compress_bps,
                                   1.5 * measured_compress_bps,
                                   1.5 * measured_decompress_bps,
                                   4.0 * measured_decompress_bps);
    const double null_model = BaselineWrite(in).ThroughputMBps();
    const double prim_model = PrimacyWrite(in).ThroughputMBps();

    ClusterConfig cluster;
    cluster.compute_nodes = static_cast<std::size_t>(point.rho);
    cluster.compute_per_io = static_cast<std::size_t>(point.rho);
    cluster.network_bps = in.network_bps;
    cluster.disk_write_bps = in.disk_write_bps;
    const auto null_sim =
        SimulateWrite(cluster, CompressionProfile::Null(chunk_bytes));
    CompressionProfile profile = CompressionProfile::Null(chunk_bytes);
    profile.output_bytes = static_cast<double>(pm.compressed_bytes);
    profile.compress_seconds = pm.compress_seconds;
    const auto prim_sim = SimulateWrite(cluster, profile);

    std::printf(
        "%5.0f %8.0f %8.0f | %9.1f %9.1f %9.1f %9.1f | %7.1f%% %7.1f%%\n",
        point.rho, point.network_mbps, point.disk_mbps, null_model,
        null_sim.ThroughputMBps(), prim_model, prim_sim.ThroughputMBps(),
        100.0 * (prim_model / null_model - 1.0),
        100.0 * (prim_sim.ThroughputMBps() / null_sim.ThroughputMBps() - 1.0));
    char label[64];
    std::snprintf(label, sizeof label, "rho%.0f_net%.0f_disk%.0f", point.rho,
                  point.network_mbps, point.disk_mbps);
    report.AddEntry(label)
        .Set("rho", point.rho)
        .Set("network_mbps", point.network_mbps)
        .Set("disk_mbps", point.disk_mbps)
        .Set("null_model_mbps", null_model)
        .Set("null_sim_mbps", null_sim.ThroughputMBps())
        .Set("primacy_model_mbps", prim_model)
        .Set("primacy_sim_mbps", prim_sim.ThroughputMBps())
        .Set("gain_model_pct", 100.0 * (prim_model / null_model - 1.0))
        .Set("gain_sim_pct",
             100.0 * (prim_sim.ThroughputMBps() / null_sim.ThroughputMBps() -
                      1.0));
  }

  bench::PrintRule();
  std::printf(
      "Reading the surface: compression helps when the storage path is slow\n"
      "relative to per-node compression (high rho, slow disk); it stops\n"
      "helping when the cluster is CPU-bound (fast disk + network).\n");
  return 0;
}
