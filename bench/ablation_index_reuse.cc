// Section II-F ablation: per-chunk indexing (the paper's implementation) vs
// the correlation-gated delta-index reuse the paper sketches as future work.
// Reuse should cut index metadata substantially while preserving almost all
// of the compression ratio.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace primacy;
  bench::Init(argc, argv);
  bench::PrintHeader(
      "Ablation: per-chunk index vs correlation-gated delta reuse",
      "Shah et al., CLUSTER 2012, Section II-F (future-work design)");
  std::printf("%-15s | %7s %9s %9s | %7s %9s %9s %7s | %9s\n", "dataset",
              "CR", "idx(KB)", "CTP", "CR", "idx(KB)", "CTP", "#delta",
              "CR loss%");
  std::printf("%-15s | %25s | %35s |\n", "", "per-chunk", "reuse-when-correlated");
  bench::PrintRule();

  PrimacyOptions per_chunk;
  per_chunk.chunk_bytes = 256 * 1024;  // many chunks at bench sizes
  PrimacyOptions reuse = per_chunk;
  reuse.index_mode = IndexMode::kReuseWhenCorrelated;

  bench::BenchReport report("ablation_index_reuse");
  double metadata_saving_sum = 0.0;
  double cr_loss_sum = 0.0;
  for (const DatasetSpec& spec : AllDatasets()) {
    const auto& values = bench::DatasetValues(spec.name);
    const auto a = bench::MeasurePrimacy(values, per_chunk);
    const auto b = bench::MeasurePrimacy(values, reuse);
    const double cr_loss =
        100.0 * (1.0 - b.CompressionRatio() / a.CompressionRatio());
    cr_loss_sum += cr_loss;
    if (a.stats.index_bytes > 0) {
      metadata_saving_sum +=
          100.0 * (1.0 - static_cast<double>(b.stats.index_bytes) /
                             static_cast<double>(a.stats.index_bytes));
    }
    std::printf("%-15s | %7.3f %9.2f %9.1f | %7.3f %9.2f %9.1f %7zu | %9.2f\n",
                spec.name.c_str(), a.CompressionRatio(),
                a.stats.index_bytes / 1e3, a.CompressMBps(),
                b.CompressionRatio(), b.stats.index_bytes / 1e3,
                b.CompressMBps(), b.stats.delta_indexes, cr_loss);
    report.AddEntry(spec.name)
        .Set("per_chunk_ratio", a.CompressionRatio())
        .Set("per_chunk_index_bytes", a.stats.index_bytes)
        .Set("per_chunk_compress_mbps", a.CompressMBps())
        .Set("reuse_ratio", b.CompressionRatio())
        .Set("reuse_index_bytes", b.stats.index_bytes)
        .Set("reuse_compress_mbps", b.CompressMBps())
        .Set("delta_indexes", b.stats.delta_indexes)
        .Set("cr_loss_pct", cr_loss);
  }

  bench::PrintRule();
  std::printf("mean index metadata saving: %.1f%%\n", metadata_saving_sum / 20.0);
  std::printf("mean CR loss              : %.2f%% (goal: preserve most of CR)\n",
              cr_loss_sum / 20.0);
  return 0;
}
