// Section II-B ablation: chunk-size sweep. The paper picks 3 MB chunks,
// citing studies that compressor efficiency levels off around that size
// while small chunks pay per-chunk index overhead.
#include <array>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace primacy;
  bench::Init(argc, argv);
  bench::PrintHeader("Ablation: chunk size sweep",
                     "Shah et al., CLUSTER 2012, Section II-B");
  const std::array<std::size_t, 6> chunk_sizes = {
      64 * 1024,   256 * 1024,      1024 * 1024,
      3 * 1024 * 1024, 6 * 1024 * 1024, 12 * 1024 * 1024};

  bench::BenchReport report("ablation_chunk_size");
  for (const char* name : {"gts_chkp_zeon", "num_plasma", "obs_temp"}) {
    const auto& values = bench::DatasetValues(name);
    std::printf("[%s]\n", name);
    std::printf("%12s %10s %12s %12s %12s\n", "chunk", "CR", "CTP(MB/s)",
                "DTP(MB/s)", "index(KB)");
    for (const std::size_t chunk : chunk_sizes) {
      PrimacyOptions options;
      options.chunk_bytes = chunk;
      const auto m = bench::MeasurePrimacy(values, options);
      std::printf("%9zuKB %10.3f %12.1f %12.1f %12.2f\n", chunk / 1024,
                  m.CompressionRatio(), m.CompressMBps(), m.DecompressMBps(),
                  m.stats.index_bytes / 1e3);
      report.AddEntry(name)
          .Set("chunk_bytes", chunk)
          .Set("ratio", m.CompressionRatio())
          .Set("compress_mbps", m.CompressMBps())
          .Set("decompress_mbps", m.DecompressMBps())
          .Set("index_bytes", m.stats.index_bytes);
    }
    std::printf("\n");
  }
  bench::PrintRule();
  std::printf(
      "Paper shape: ratio/throughput level off by ~3MB; tiny chunks pay\n"
      "index overhead, huge chunks stop helping (and hurt in-situ memory).\n");
  return 0;
}
