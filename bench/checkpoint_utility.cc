// Extension bench: checkpoint utility. The paper's Section I motivates
// compression with rising checkpoint frequency at scale; this bench closes
// the loop — for a sweep of system MTBFs, it derives the optimal checkpoint
// interval (Daly) and the resulting machine efficiency with and without
// PRIMACY-class compression, using real measured codec behaviour on a
// hard-to-compress dataset.
#include <array>

#include "bench_util.h"
#include "compress/registry.h"
#include "core/builtin_codecs.h"
#include "hpcsim/checkpoint_planner.h"

int main(int argc, char** argv) {
  using namespace primacy;
  using hpcsim::CheckpointPlan;
  using hpcsim::ClusterConfig;
  using hpcsim::CompressionProfile;
  bench::Init(argc, argv);
  RegisterBuiltinCodecs();

  bench::PrintHeader(
      "Extension: optimal checkpoint interval and machine efficiency",
      "Shah et al., CLUSTER 2012, Section I motivation (checkpoint & restart)");

  ClusterConfig config;
  config.compute_nodes = 8;
  config.compute_per_io = 8;
  config.network_bps = 120e6;
  config.disk_write_bps = 25e6;
  config.disk_read_bps = 80e6;

  // Calibrate compression behaviour on real data, then scale the per-node
  // state to a realistic checkpoint size.
  const ByteSpan raw = bench::DatasetBytes("gts_chkp_zeon");
  const auto codec = CreateCodec("primacy");
  const CodecMeasurement m = MeasureCodec(*codec, raw);
  const double scale = (512.0 * 1024 * 1024) / static_cast<double>(raw.size());

  const CompressionProfile null_profile =
      CompressionProfile::Null(static_cast<double>(raw.size()) * scale);
  CompressionProfile primacy_profile = null_profile;
  primacy_profile.output_bytes =
      static_cast<double>(m.compressed_bytes) * scale;
  primacy_profile.compress_seconds = m.compress_seconds * scale;
  primacy_profile.decompress_seconds = m.decompress_seconds * scale;

  std::printf("per-node state: 512 MB, measured PRIMACY ratio %.3f\n\n",
              m.CompressionRatio());
  std::printf("%10s | %12s %12s %10s | %12s %12s %10s\n", "MTBF(h)",
              "ckpt(s)", "interval(s)", "eff", "ckpt(s)", "interval(s)",
              "eff");
  std::printf("%10s | %38s | %38s\n", "", "no compression", "PRIMACY");
  bench::PrintRule();

  bench::BenchReport report("checkpoint_utility");
  const std::array<double, 5> mtbf_hours = {1, 3, 6, 24, 168};
  for (const double hours : mtbf_hours) {
    const double mtbf = hours * 3600.0;
    const CheckpointPlan raw_plan =
        PlanCheckpoints(config, null_profile, mtbf);
    const CheckpointPlan primacy_plan =
        PlanCheckpoints(config, primacy_profile, mtbf);
    std::printf("%10.0f | %12.1f %12.1f %10.4f | %12.1f %12.1f %10.4f\n",
                hours, raw_plan.checkpoint_seconds, raw_plan.daly_interval,
                raw_plan.efficiency_at_daly, primacy_plan.checkpoint_seconds,
                primacy_plan.daly_interval, primacy_plan.efficiency_at_daly);
    char label[32];
    std::snprintf(label, sizeof label, "mtbf_%.0fh", hours);
    report.AddEntry(label)
        .Set("mtbf_hours", hours)
        .Set("null_checkpoint_seconds", raw_plan.checkpoint_seconds)
        .Set("null_daly_interval_seconds", raw_plan.daly_interval)
        .Set("null_efficiency", raw_plan.efficiency_at_daly)
        .Set("primacy_checkpoint_seconds", primacy_plan.checkpoint_seconds)
        .Set("primacy_daly_interval_seconds", primacy_plan.daly_interval)
        .Set("primacy_efficiency", primacy_plan.efficiency_at_daly);
  }

  bench::PrintRule();
  std::printf(
      "Shape: shorter checkpoints shift the Daly optimum earlier and raise\n"
      "machine efficiency; the gain widens as MTBF shrinks (exascale case).\n");
  return 0;
}
