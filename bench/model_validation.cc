// Model validation: close the loop between the Section III performance
// model and the instrumented pipeline. The telemetry stage breakdown gives
// real per-stage throughputs (preconditioner = split + frequency + id_map +
// serialize, solver passes = solver + isobar; read-path analogues per
// src/telemetry/stage.h). Those rates are calibrated on one dataset, fed
// into the model as Tprec/Tcomp/Tdecomp/Tpost, and the model's predicted
// pipeline throughput is compared against the measured wall-clock value on
// held-out datasets — per-stage relative error included.
//
// The network and disk rates are set astronomically high so the comparison
// isolates the compute terms the telemetry can actually check (Eqs. 7-10 and
// their read-path mirrors); the transfer/IO terms are exercised against the
// event simulator in fig4_end_to_end and model_sweep.
#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <span>

#include "bench_util.h"
#include "model/perf_model.h"
#include "telemetry/stage.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

using namespace primacy;
using telemetry::Stage;
using telemetry::StageBreakdown;

struct PathMeasurement {
  PrimacyStats stats;
  PrimacyDecodeStats dstats;
  std::size_t compressed_bytes = 0;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
};

PathMeasurement Measure(std::span<const double> values) {
  const PrimacyOptions options;  // paper defaults: 3 MB chunks, serial
  PathMeasurement m;
  WallTimer timer;
  const Bytes stream = PrimacyCompressor(options).Compress(values, &m.stats);
  m.compress_seconds = timer.Seconds();
  m.compressed_bytes = stream.size();

  timer.Reset();
  const std::vector<double> restored =
      PrimacyDecompressor(options).Decompress(stream, &m.dstats);
  m.decompress_seconds = timer.Seconds();
  if (restored.size() != values.size() ||
      !std::equal(restored.begin(), restored.end(), values.begin())) {
    throw InternalError("model_validation: roundtrip mismatch");
  }
  return m;
}

// Stage groups matching the model's terms (see src/telemetry/stage.h).
double EncodePrecSeconds(const StageBreakdown& s) {
  return s.Seconds(Stage::kSplit) + s.Seconds(Stage::kFrequency) +
         s.Seconds(Stage::kIdMap) + s.Seconds(Stage::kSerialize);
}
double EncodeCompSeconds(const StageBreakdown& s) {
  return s.Seconds(Stage::kSolver) + s.Seconds(Stage::kIsobar);
}
double DecodeDecompSeconds(const StageBreakdown& s) {
  return s.Seconds(Stage::kSolver) + s.Seconds(Stage::kIsobar);
}
double DecodePostSeconds(const StageBreakdown& s) {
  return s.Seconds(Stage::kFrequency) + s.Seconds(Stage::kIdMap) +
         s.Seconds(Stage::kMerge) + s.Seconds(Stage::kChecksum);
}

/// Inverts the model's stage-time formulas: given the bytes the model says a
/// stage processes and the measured seconds, return the implied rate. A zero
/// measurement means "free" — an effectively infinite rate keeps the model
/// valid (Validate rejects non-positive rates).
double ImpliedRate(double work_bytes, double seconds) {
  if (!(seconds > 0.0) || work_bytes <= 0.0) return 1e15;
  return work_bytes / seconds;
}

double RelativeErrorPct(double predicted, double measured) {
  if (!(measured > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  return 100.0 * (predicted - measured) / measured;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader(
      "Model validation: telemetry-calibrated model vs measured pipeline",
      "Shah et al., CLUSTER 2012, Section III (Eqs. 3-13) closed-loop check");

  // -- Calibrate on half of num_plasma (held out from validation below). --
  const auto& cal_values = bench::DatasetValues("num_plasma");
  const std::span<const double> cal_half(cal_values.data(),
                                         cal_values.size() / 2);
  const PathMeasurement cal = Measure(cal_half);
  const bool have_stages = telemetry::kEnabled && cal.stats.stage.TotalNs() > 0;

  const double cal_bytes = static_cast<double>(cal.stats.input_bytes);
  const double cal_alpha1 = 0.25;  // 2 of 8 bytes are high-order
  const double cal_alpha2 = cal.stats.mean_compressible_fraction;
  // Model stage work per Eqs. 7-10: t_prec1 + t_prec2 = (2 - a1) C / Tprec,
  // t_comp1 + t_comp2 = (a1 + a2 (1 - a1)) C / Tcomp; read path mirrors.
  const double prec_work = (2.0 - cal_alpha1) * cal_bytes;
  const double comp_work =
      (cal_alpha1 + cal_alpha2 * (1.0 - cal_alpha1)) * cal_bytes;

  double precondition_bps, compress_bps, decompress_bps, postcondition_bps;
  if (have_stages) {
    precondition_bps =
        ImpliedRate(prec_work, EncodePrecSeconds(cal.stats.stage));
    compress_bps = ImpliedRate(comp_work, EncodeCompSeconds(cal.stats.stage));
    decompress_bps =
        ImpliedRate(comp_work, DecodeDecompSeconds(cal.dstats.stage));
    postcondition_bps =
        ImpliedRate(prec_work, DecodePostSeconds(cal.dstats.stage));
  } else {
    // PRIMACY_TELEMETRY=OFF: no stage attribution. Fold the whole measured
    // wall time into the solver term so the aggregate prediction still holds.
    precondition_bps = 1e15;
    compress_bps = ImpliedRate(comp_work, cal.compress_seconds);
    decompress_bps = ImpliedRate(comp_work, cal.decompress_seconds);
    postcondition_bps = 1e15;
  }

  std::printf("calibration (num_plasma, %zu elements): Tprec %.0f MB/s, "
              "Tcomp %.0f MB/s, Tdecomp %.0f MB/s, Tpost %.0f MB/s%s\n\n",
              cal_half.size(), precondition_bps / 1e6, compress_bps / 1e6,
              decompress_bps / 1e6, postcondition_bps / 1e6,
              have_stages ? "" : "  [no stage telemetry: aggregate only]");

  bench::BenchReport report("model_validation");
  report.AddEntry("calibration")
      .Set("dataset", "num_plasma")
      .Set("elements", cal_half.size())
      .Set("stage_telemetry", have_stages)
      .Set("byte_entropy_bits", ByteEntropyBits(bench::DatasetBytes("num_plasma")))
      .Set("precondition_bps", precondition_bps)
      .Set("compress_bps", compress_bps)
      .Set("decompress_bps", decompress_bps)
      .Set("postcondition_bps", postcondition_bps);

  std::printf("%-14s | %9s %9s %7s | %9s %9s %7s | %8s %8s\n", "dataset",
              "predW", "measW", "errW%", "predR", "measR", "errR%",
              "precErr%", "compErr%");
  bench::PrintRule();

  const std::array<const char*, 3> datasets = {"flash_velx", "obs_temp",
                                               "gts_chkp_zeon"};
  double max_abs_err = 0.0;
  for (const char* name : datasets) {
    const auto& values = bench::DatasetValues(name);
    const PathMeasurement m = Measure(values);
    const double input = static_cast<double>(m.stats.input_bytes);

    ModelInputs in;
    in.chunk_bytes = input;
    in.rho = 1.0;
    in.network_bps = 1e15;  // isolate the compute terms (see header comment)
    in.disk_write_bps = 1e15;
    in.disk_read_bps = 1e15;
    in = CalibrateFromMeasurements(in, m.stats, precondition_bps,
                                   compress_bps, decompress_bps,
                                   postcondition_bps);
    const ModelBreakdown w = PrimacyWrite(in);
    const ModelBreakdown r = PrimacyRead(in);

    const double meas_write = ThroughputMBps(m.stats.input_bytes,
                                             m.compress_seconds);
    const double meas_read = ThroughputMBps(m.stats.input_bytes,
                                            m.decompress_seconds);
    const double err_write = RelativeErrorPct(w.ThroughputMBps(), meas_write);
    const double err_read = RelativeErrorPct(r.ThroughputMBps(), meas_read);

    // Per-stage comparison: model stage seconds vs telemetry stage seconds.
    double prec_err = std::numeric_limits<double>::quiet_NaN();
    double comp_err = std::numeric_limits<double>::quiet_NaN();
    double decomp_err = std::numeric_limits<double>::quiet_NaN();
    double post_err = std::numeric_limits<double>::quiet_NaN();
    if (have_stages) {
      prec_err = RelativeErrorPct(w.t_prec1 + w.t_prec2,
                                  EncodePrecSeconds(m.stats.stage));
      comp_err = RelativeErrorPct(w.t_compress1 + w.t_compress2,
                                  EncodeCompSeconds(m.stats.stage));
      decomp_err = RelativeErrorPct(r.t_compress1 + r.t_compress2,
                                    DecodeDecompSeconds(m.dstats.stage));
      post_err = RelativeErrorPct(r.t_prec1 + r.t_prec2,
                                  DecodePostSeconds(m.dstats.stage));
    }
    for (const double e : {err_write, err_read}) {
      if (std::isfinite(e)) max_abs_err = std::max(max_abs_err, std::abs(e));
    }

    std::printf("%-14s | %9.1f %9.1f %+6.1f%% | %9.1f %9.1f %+6.1f%% | "
                "%+7.1f%% %+7.1f%%\n",
                name, w.ThroughputMBps(), meas_write, err_write,
                r.ThroughputMBps(), meas_read, err_read, prec_err, comp_err);

    report.AddEntry(name)
        .Set("predicted_write_mbps", w.ThroughputMBps())
        .Set("measured_write_mbps", meas_write)
        .Set("write_error_pct", err_write)
        .Set("predicted_read_mbps", r.ThroughputMBps())
        .Set("measured_read_mbps", meas_read)
        .Set("read_error_pct", err_read)
        .Set("precondition_error_pct", prec_err)
        .Set("compress_error_pct", comp_err)
        .Set("decompress_error_pct", decomp_err)
        .Set("postcondition_error_pct", post_err)
        // Shannon entropy of the raw dataset bytes: the data-dependence the
        // model ignores, recorded so error outliers can be read against it.
        .Set("byte_entropy_bits", ByteEntropyBits(bench::DatasetBytes(name)))
        .Set("alpha2", in.alpha2)
        .Set("sigma_ho", in.sigma_ho)
        .Set("sigma_lo", in.sigma_lo);
  }

  bench::PrintRule();
  std::printf(
      "max |end-to-end error| %.1f%%. Errors reflect how well per-stage\n"
      "rates transfer across datasets (the model assumes rates are data-\n"
      "independent; entropy differences bend the solver term).\n",
      max_abs_err);
  return 0;
}
