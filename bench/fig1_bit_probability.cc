// Figure 1: probability of the most frequent bit value at each bit position
// for four representative datasets (GTS_phi, num_plasma, obs_temp,
// msg_sweep3D). The paper's visual claim: p close to 1 in the first ~12 bit
// positions (sign + exponent), p ~ 0.5 across the deep mantissa.
#include <array>

#include "bench_util.h"
#include "util/byte_matrix.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace primacy;
  bench::Init(argc, argv);
  const std::array<const char*, 4> datasets = {"gts_phi_l", "num_plasma",
                                               "obs_temp", "msg_sweep3d"};
  bench::PrintHeader(
      "Figure 1: P(most frequent bit value) per bit position",
      "Shah et al., CLUSTER 2012, Figure 1");

  std::vector<std::vector<double>> series;
  for (const char* name : datasets) {
    const auto& values = bench::DatasetValues(name);
    const Bytes rows = DoublesToBigEndianRows(values);
    series.push_back(DominantBitProbability(rows, 8));
  }

  std::printf("%-8s %12s %12s %12s %12s\n", "bit", "GTS_phi", "num_plasma",
              "obs_temp", "msg_sweep3D");
  for (std::size_t bit = 0; bit < 64; ++bit) {
    std::printf("%-8zu %12.4f %12.4f %12.4f %12.4f\n", bit, series[0][bit],
                series[1][bit], series[2][bit], series[3][bit]);
  }

  bench::PrintRule();
  bench::BenchReport report("fig1_bit_probability");
  std::printf("Shape check (paper: exponent bits biased, mantissa bits ~0.5):\n");
  for (std::size_t s = 0; s < datasets.size(); ++s) {
    double head = 0.0, tail = 0.0;
    for (std::size_t bit = 0; bit < 16; ++bit) head += series[s][bit];
    for (std::size_t bit = 16; bit < 64; ++bit) tail += series[s][bit];
    std::printf("  %-14s mean p(bits 0-15) = %.3f, mean p(bits 16-63) = %.3f\n",
                datasets[s], head / 16.0, tail / 48.0);
    report.AddEntry(datasets[s])
        .Set("mean_p_bits_0_15", head / 16.0)
        .Set("mean_p_bits_16_63", tail / 48.0)
        .Set("p_bit0", series[s][0])
        .Set("p_bit32", series[s][32]);
  }
  return 0;
}
