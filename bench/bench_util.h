// Shared helpers for the paper-reproduction benches: dataset materialization
// at a bench-friendly size, codec measurement with warmup, table formatting,
// and the BENCH_<name>.json machine-readable report every bench emits.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "compress/codec.h"
#include "core/primacy_codec.h"
#include "datasets/datasets.h"

namespace primacy::bench {

/// Parses the shared bench flags; call first in every bench main():
///   --quick        CI smoke mode: shrink datasets to 16384 elements
///   --elements N   explicit dataset size (wins over --quick and the env)
/// Unknown flags abort with a usage message. Must run before the first
/// BenchElements()/DatasetValues() call (dataset sizing is resolved once).
void Init(int argc, char** argv);

/// True when Init saw --quick.
bool Quick();

/// Elements per dataset for bench runs. Precedence: --elements, then the
/// PRIMACY_BENCH_ELEMENTS environment variable, then 16384 under --quick,
/// then the 256 Ki default.
std::size_t BenchElements();

/// Dataset values cached per (name, elements) within a process.
const std::vector<double>& DatasetValues(const std::string& name);

/// Raw little-endian bytes of DatasetValues.
ByteSpan DatasetBytes(const std::string& name);

/// One measured PRIMACY run: stream stats plus wall-clock timings.
struct PrimacyMeasurement {
  PrimacyStats stats;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  std::size_t compressed_bytes = 0;

  double CompressionRatio() const;
  double CompressMBps() const;
  double DecompressMBps() const;
};

PrimacyMeasurement MeasurePrimacy(std::span<const double> values,
                                  const PrimacyOptions& options = {});

/// Banner + rule printers so every bench reads the same.
void PrintHeader(const std::string& title, const std::string& paper_ref);
void PrintRule(int width = 100);

/// Machine-readable bench output: accumulates labeled rows of key/value
/// fields and writes them as BENCH_<name>.json in the working directory.
/// Every file carries the bench name, a unix timestamp, the dataset size,
/// and the quick flag, so runs are comparable across machines and commits.
/// Non-finite doubles serialize as null (the file must always parse).
class BenchReport {
 public:
  /// One row (e.g. one dataset x codec measurement). Values render to JSON
  /// immediately; insertion order is preserved.
  class Entry {
   public:
    Entry& Set(const std::string& key, double value);
    Entry& Set(const std::string& key, std::size_t value);
    Entry& Set(const std::string& key, int value);
    Entry& Set(const std::string& key, bool value);
    Entry& Set(const std::string& key, const std::string& value);
    /// Distinct overload: without it a string literal binds to bool.
    Entry& Set(const std::string& key, const char* value);

   private:
    friend class BenchReport;
    std::vector<std::pair<std::string, std::string>> fields_;  // key, JSON
  };

  explicit BenchReport(std::string name);
  /// Writes the file on destruction unless Write() already ran.
  ~BenchReport();
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Adds a row; the returned reference stays valid until the next AddEntry.
  Entry& AddEntry(const std::string& label);

  /// Writes BENCH_<name>.json and prints its path. Idempotent.
  void Write();

 private:
  std::string name_;
  std::vector<Entry> entries_;
  bool written_ = false;
};

}  // namespace primacy::bench
