// Shared helpers for the paper-reproduction benches: dataset materialization
// at a bench-friendly size, codec measurement with warmup, and table
// formatting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "core/primacy_codec.h"
#include "datasets/datasets.h"

namespace primacy::bench {

/// Elements per dataset for bench runs; override with the
/// PRIMACY_BENCH_ELEMENTS environment variable.
std::size_t BenchElements();

/// Dataset values cached per (name, elements) within a process.
const std::vector<double>& DatasetValues(const std::string& name);

/// Raw little-endian bytes of DatasetValues.
ByteSpan DatasetBytes(const std::string& name);

/// One measured PRIMACY run: stream stats plus wall-clock timings.
struct PrimacyMeasurement {
  PrimacyStats stats;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  std::size_t compressed_bytes = 0;

  double CompressionRatio() const;
  double CompressMBps() const;
  double DecompressMBps() const;
};

PrimacyMeasurement MeasurePrimacy(std::span<const double> values,
                                  const PrimacyOptions& options = {});

/// Banner + rule printers so every bench reads the same.
void PrintHeader(const std::string& title, const std::string& paper_ref);
void PrintRule(int width = 100);

}  // namespace primacy::bench
