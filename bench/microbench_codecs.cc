// google-benchmark microbenchmarks: raw Compress/Decompress throughput for
// every codec in the registry over a representative hard-to-compress dataset
// buffer. These are the Tcomp/Tdecomp numbers the performance model consumes.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "compress/registry.h"
#include "core/builtin_codecs.h"

namespace {

using namespace primacy;

const char* kCodecs[] = {"deflate", "deflate-fast", "lzfast",
                         "bwt",     "fpc",          "fpz",
                         "primacy"};

void BM_Compress(benchmark::State& state) {
  RegisterBuiltinCodecs();
  const std::string codec_name = kCodecs[state.range(0)];
  const auto codec = CreateCodec(codec_name);
  const ByteSpan raw = bench::DatasetBytes("obs_info");
  std::size_t compressed_size = 0;
  for (auto _ : state) {
    const Bytes compressed = codec->Compress(raw);
    compressed_size = compressed.size();
    benchmark::DoNotOptimize(compressed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(raw.size()) *
                          state.iterations());
  state.counters["ratio"] = static_cast<double>(raw.size()) /
                            static_cast<double>(compressed_size);
  state.SetLabel(codec_name);
}

void BM_Decompress(benchmark::State& state) {
  RegisterBuiltinCodecs();
  const std::string codec_name = kCodecs[state.range(0)];
  const auto codec = CreateCodec(codec_name);
  const ByteSpan raw = bench::DatasetBytes("obs_info");
  const Bytes compressed = codec->Compress(raw);
  for (auto _ : state) {
    const Bytes restored = codec->Decompress(compressed);
    benchmark::DoNotOptimize(restored.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(raw.size()) *
                          state.iterations());
  state.SetLabel(codec_name);
}

// v2 read path: thread-pool parallel decompression of one PRIMACY stream
// (64 KiB chunks so the directory has plenty of independent decode groups).
// Arg = worker threads (1 = serial baseline).
void BM_PrimacyParallelDecompress(benchmark::State& state) {
  RegisterBuiltinCodecs();
  PrimacyOptions options;
  options.chunk_bytes = 64 * 1024;
  const std::vector<double>& values = bench::DatasetValues("obs_info");
  const Bytes stream = PrimacyCompressor(options).Compress(values);
  options.threads = static_cast<std::size_t>(state.range(0));
  const PrimacyDecompressor decompressor(options);
  PrimacyDecodeStats stats;
  for (auto _ : state) {
    const auto restored = decompressor.Decompress(stream, &stats);
    benchmark::DoNotOptimize(restored.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(values.size() * 8 * state.iterations()));
  state.counters["chunks"] = static_cast<double>(stats.chunks_decoded);
  state.counters["threads_used"] = static_cast<double>(stats.threads_used);
}

// Random-access range read through the chunk directory: 1024 elements from
// the middle of the stream, against full-stream decode cost above.
void BM_PrimacyRangeRead(benchmark::State& state) {
  RegisterBuiltinCodecs();
  PrimacyOptions options;
  options.chunk_bytes = 64 * 1024;
  const std::vector<double>& values = bench::DatasetValues("obs_info");
  const Bytes stream = PrimacyCompressor(options).Compress(values);
  const PrimacyDecompressor decompressor(options);
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  const std::size_t first = values.size() / 2 - count / 2;
  PrimacyDecodeStats stats;
  for (auto _ : state) {
    const auto range =
        decompressor.DecompressRange(stream, first, count, &stats);
    benchmark::DoNotOptimize(range.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(count * 8 * state.iterations()));
  state.counters["chunks_touched"] = static_cast<double>(stats.chunks_decoded);
}

}  // namespace

BENCHMARK(BM_Compress)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decompress)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrimacyParallelDecompress)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrimacyRangeRead)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);
