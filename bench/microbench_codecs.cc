// google-benchmark microbenchmarks: raw Compress/Decompress throughput for
// every codec in the registry over a representative hard-to-compress dataset
// buffer. These are the Tcomp/Tdecomp numbers the performance model consumes.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "compress/registry.h"
#include "core/builtin_codecs.h"

namespace {

using namespace primacy;

const char* kCodecs[] = {"deflate", "deflate-fast", "lzfast",
                         "bwt",     "fpc",          "fpz",
                         "primacy"};

void BM_Compress(benchmark::State& state) {
  RegisterBuiltinCodecs();
  const std::string codec_name = kCodecs[state.range(0)];
  const auto codec = CreateCodec(codec_name);
  const ByteSpan raw = bench::DatasetBytes("obs_info");
  std::size_t compressed_size = 0;
  for (auto _ : state) {
    const Bytes compressed = codec->Compress(raw);
    compressed_size = compressed.size();
    benchmark::DoNotOptimize(compressed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(raw.size()) *
                          state.iterations());
  state.counters["ratio"] = static_cast<double>(raw.size()) /
                            static_cast<double>(compressed_size);
  state.SetLabel(codec_name);
}

void BM_Decompress(benchmark::State& state) {
  RegisterBuiltinCodecs();
  const std::string codec_name = kCodecs[state.range(0)];
  const auto codec = CreateCodec(codec_name);
  const ByteSpan raw = bench::DatasetBytes("obs_info");
  const Bytes compressed = codec->Compress(raw);
  for (auto _ : state) {
    const Bytes restored = codec->Decompress(compressed);
    benchmark::DoNotOptimize(restored.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(raw.size()) *
                          state.iterations());
  state.SetLabel(codec_name);
}

}  // namespace

BENCHMARK(BM_Compress)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decompress)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);
