#include "bench_util.h"

#include <cstdlib>
#include <map>

#include "util/error.h"
#include "util/timer.h"

namespace primacy::bench {

std::size_t BenchElements() {
  static const std::size_t elements = [] {
    if (const char* env = std::getenv("PRIMACY_BENCH_ELEMENTS")) {
      return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
    return static_cast<std::size_t>(256) * 1024;  // 2 MB per dataset
  }();
  return elements;
}

const std::vector<double>& DatasetValues(const std::string& name) {
  static auto* cache = new std::map<std::string, std::vector<double>>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name, GenerateDatasetByName(name, BenchElements()))
             .first;
  }
  return it->second;
}

ByteSpan DatasetBytes(const std::string& name) {
  return AsBytes(DatasetValues(name));
}

double PrimacyMeasurement::CompressionRatio() const {
  return compressed_bytes == 0
             ? 0.0
             : static_cast<double>(stats.input_bytes) /
                   static_cast<double>(compressed_bytes);
}

double PrimacyMeasurement::CompressMBps() const {
  return ThroughputMBps(stats.input_bytes, compress_seconds);
}

double PrimacyMeasurement::DecompressMBps() const {
  return ThroughputMBps(stats.input_bytes, decompress_seconds);
}

PrimacyMeasurement MeasurePrimacy(std::span<const double> values,
                                  const PrimacyOptions& options) {
  const PrimacyCompressor compressor(options);
  PrimacyMeasurement m;
  WallTimer timer;
  const Bytes stream = compressor.Compress(values, &m.stats);
  m.compress_seconds = timer.Seconds();
  m.compressed_bytes = stream.size();

  const PrimacyDecompressor decompressor(options);
  timer.Reset();
  const std::vector<double> restored = decompressor.Decompress(stream);
  m.decompress_seconds = timer.Seconds();
  if (restored.size() != values.size() ||
      !std::equal(restored.begin(), restored.end(), values.begin())) {
    throw InternalError("MeasurePrimacy: roundtrip mismatch");
  }
  return m;
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Synthetic dataset size: %zu doubles (%.1f MB) per dataset; "
              "set PRIMACY_BENCH_ELEMENTS to change.\n",
              BenchElements(), BenchElements() * 8.0 / 1e6);
  PrintRule();
}

void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace primacy::bench
