#include "bench_util.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <optional>

#include "telemetry/exporter/observability_hub.h"
#include "util/error.h"
#include "util/timer.h"

namespace primacy::bench {
namespace {

struct BenchConfig {
  bool quick = false;
  std::optional<std::size_t> elements_override;
};

BenchConfig& Config() {
  static BenchConfig config;
  return config;
}

/// JSON string escaping (quotes, backslash, control characters).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonString(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

/// JSON has no inf/NaN; unmeasurable values become null so the file always
/// parses.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

void Init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      Config().quick = true;
    } else if (std::strcmp(argv[i], "--elements") == 0 && i + 1 < argc) {
      Config().elements_override =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--elements N]\n", argv[0]);
      std::exit(2);
    }
  }
  // Any bench becomes scrapeable/traceable/profilable without code changes:
  // PRIMACY_METRICS_PORT / PRIMACY_TRACE_DIR / PRIMACY_PROFILE_HZ. No-op
  // when none are set (and when telemetry is compiled out).
  telemetry::MaybeStartHubFromEnv();
}

bool Quick() { return Config().quick; }

std::size_t BenchElements() {
  static const std::size_t elements = [] {
    if (Config().elements_override.has_value()) {
      return *Config().elements_override;
    }
    if (const char* env = std::getenv("PRIMACY_BENCH_ELEMENTS")) {
      return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
    if (Config().quick) {
      return static_cast<std::size_t>(16384);  // CI smoke: 128 KB per dataset
    }
    return static_cast<std::size_t>(256) * 1024;  // 2 MB per dataset
  }();
  return elements;
}

const std::vector<double>& DatasetValues(const std::string& name) {
  static auto* cache = new std::map<std::string, std::vector<double>>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name, GenerateDatasetByName(name, BenchElements()))
             .first;
  }
  return it->second;
}

ByteSpan DatasetBytes(const std::string& name) {
  return AsBytes(DatasetValues(name));
}

double PrimacyMeasurement::CompressionRatio() const {
  return compressed_bytes == 0
             ? 0.0
             : static_cast<double>(stats.input_bytes) /
                   static_cast<double>(compressed_bytes);
}

double PrimacyMeasurement::CompressMBps() const {
  return ThroughputMBps(stats.input_bytes, compress_seconds);
}

double PrimacyMeasurement::DecompressMBps() const {
  return ThroughputMBps(stats.input_bytes, decompress_seconds);
}

PrimacyMeasurement MeasurePrimacy(std::span<const double> values,
                                  const PrimacyOptions& options) {
  const PrimacyCompressor compressor(options);
  PrimacyMeasurement m;
  WallTimer timer;
  const Bytes stream = compressor.Compress(values, &m.stats);
  m.compress_seconds = timer.Seconds();
  m.compressed_bytes = stream.size();

  const PrimacyDecompressor decompressor(options);
  timer.Reset();
  const std::vector<double> restored = decompressor.Decompress(stream);
  m.decompress_seconds = timer.Seconds();
  if (restored.size() != values.size() ||
      !std::equal(restored.begin(), restored.end(), values.begin())) {
    throw InternalError("MeasurePrimacy: roundtrip mismatch");
  }
  return m;
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Synthetic dataset size: %zu doubles (%.1f MB) per dataset; "
              "set PRIMACY_BENCH_ELEMENTS to change.\n",
              BenchElements(), BenchElements() * 8.0 / 1e6);
  PrintRule();
}

void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

BenchReport::Entry& BenchReport::Entry::Set(const std::string& key,
                                            double value) {
  fields_.emplace_back(key, JsonNumber(value));
  return *this;
}

BenchReport::Entry& BenchReport::Entry::Set(const std::string& key,
                                            std::size_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchReport::Entry& BenchReport::Entry::Set(const std::string& key,
                                            int value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchReport::Entry& BenchReport::Entry::Set(const std::string& key,
                                            bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

BenchReport::Entry& BenchReport::Entry::Set(const std::string& key,
                                            const std::string& value) {
  fields_.emplace_back(key, JsonString(value));
  return *this;
}

BenchReport::Entry& BenchReport::Entry::Set(const std::string& key,
                                            const char* value) {
  return Set(key, std::string(value));
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

BenchReport::~BenchReport() {
  try {
    Write();
  } catch (...) {
    // Destructor: swallow write failures (the console table already ran).
  }
}

BenchReport::Entry& BenchReport::AddEntry(const std::string& label) {
  entries_.emplace_back();
  entries_.back().fields_.emplace_back("label", JsonString(label));
  return entries_.back();
}

void BenchReport::Write() {
  if (written_) return;
  written_ = true;
  const std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": %s,\n", JsonString(name_).c_str());
  std::fprintf(f, "  \"unix_time\": %lld,\n",
               static_cast<long long>(std::time(nullptr)));
  std::fprintf(f, "  \"elements\": %zu,\n", BenchElements());
  std::fprintf(f, "  \"quick\": %s,\n", Quick() ? "true" : "false");
  std::fprintf(f, "  \"entries\": [");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    std::fprintf(f, "%s\n    {", i == 0 ? "" : ",");
    const auto& fields = entries_[i].fields_;
    for (std::size_t j = 0; j < fields.size(); ++j) {
      std::fprintf(f, "%s%s: %s", j == 0 ? "" : ", ",
                   JsonString(fields[j].first).c_str(),
                   fields[j].second.c_str());
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("Wrote %s\n", path.c_str());
}

}  // namespace primacy::bench
