// Figure 3: normalized frequency of 16-bit byte-sequences in (a) the
// exponent bytes and (b) the mantissa bytes, for the phi/info/temp/zeon
// datasets. The paper's claim: exponent-byte mass concentrates on a small
// sequence set (sharp spikes), mantissa-byte mass is spread across tens of
// thousands of sequences with tiny individual frequencies.
#include <algorithm>
#include <array>

#include "bench_util.h"
#include "util/byte_matrix.h"
#include "util/stats.h"

namespace {

struct HistogramSummary {
  std::size_t distinct = 0;
  double top1 = 0.0;    // normalized frequency of the most common sequence
  double top10 = 0.0;   // mass of the ten most common sequences
  double top100 = 0.0;
};

HistogramSummary Summarize(const std::vector<std::uint64_t>& histogram) {
  HistogramSummary s;
  std::uint64_t total = 0;
  for (const auto c : histogram) total += c;
  std::vector<std::uint64_t> sorted = histogram;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  s.distinct = primacy::CountDistinct(histogram);
  const auto norm = [&](std::size_t k) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < k && i < sorted.size(); ++i) sum += sorted[i];
    return total == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(total);
  };
  s.top1 = norm(1);
  s.top10 = norm(10);
  s.top100 = norm(100);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace primacy;
  bench::Init(argc, argv);
  // Figure 3's short labels map to these Table III datasets.
  const std::array<std::pair<const char*, const char*>, 4> datasets = {
      std::pair{"phi", "gts_phi_l"}, std::pair{"info", "obs_info"},
      std::pair{"temp", "obs_temp"}, std::pair{"zeon", "gts_chkp_zeon"}};

  bench::PrintHeader(
      "Figure 3: byte-sequence frequency, exponent vs mantissa byte pairs",
      "Shah et al., CLUSTER 2012, Figures 3(a) and 3(b)");

  std::printf("%-8s %-10s %10s %10s %10s %10s\n", "dataset", "pair", "distinct",
              "top1", "top10", "top100");
  bench::BenchReport report("fig3_byte_frequency");
  for (const auto& [label, name] : datasets) {
    const auto& values = bench::DatasetValues(name);
    const Bytes rows = DoublesToBigEndianRows(values);
    const auto exponent = Summarize(BytePairHistogram(rows, 8, 0));
    const auto mantissa = Summarize(BytePairHistogram(rows, 8, 4));
    std::printf("%-8s %-10s %10zu %10.4f %10.4f %10.4f\n", label,
                "exponent", exponent.distinct, exponent.top1, exponent.top10,
                exponent.top100);
    std::printf("%-8s %-10s %10zu %10.6f %10.6f %10.6f\n", label,
                "mantissa", mantissa.distinct, mantissa.top1, mantissa.top10,
                mantissa.top100);
    report.AddEntry(label)
        .Set("exponent_distinct", exponent.distinct)
        .Set("exponent_top1", exponent.top1)
        .Set("exponent_top10", exponent.top10)
        .Set("exponent_top100", exponent.top100)
        .Set("mantissa_distinct", mantissa.distinct)
        .Set("mantissa_top1", mantissa.top1)
        .Set("mantissa_top10", mantissa.top10)
        .Set("mantissa_top100", mantissa.top100);
  }

  bench::PrintRule();
  std::printf(
      "Paper shape: exponent pairs concentrate (distinct << 65536, top10\n"
      "captures most of the mass); mantissa pairs are near-uniform (distinct\n"
      "approaching the sample bound, top sequences carry ~1e-5 mass each).\n");
  return 0;
}
