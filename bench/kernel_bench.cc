// Kernel-layer bench: per-kernel GB/s for the scalar reference vs every
// ISA variant this machine can run, plus the end-to-end per-stage encode
// breakdown (StageClock) with kernels forced to scalar vs dispatched.
// Emits BENCH_kernels.json.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/frequency.h"
#include "core/id_mapper.h"
#include "kernels/kernels.h"
#include "util/byte_matrix.h"
#include "util/error.h"
#include "util/timer.h"

namespace primacy::bench {
namespace {

using kernels::Isa;
using kernels::KernelTable;

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> isas;
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    if (kernels::TableFor(isa) != nullptr) isas.push_back(isa);
  }
  return isas;
}

Isa BestIsa() { return AvailableIsas().back(); }

/// One benched kernel: `run` invokes it once through the given table;
/// `bytes` is the payload processed per invocation (input side), the
/// denominator for GB/s.
struct KernelCase {
  std::string name;
  std::size_t bytes;
  std::function<void(const KernelTable&)> run;
};

double MeasureGBps(const KernelCase& kc, const KernelTable& table) {
  // Size repetitions for a stable measurement (~128 MiB of traffic, 8 MiB
  // under --quick), then take the best of 3 passes to shed scheduler noise.
  const std::size_t target = Quick() ? (8u << 20) : (128u << 20);
  const std::size_t reps = std::max<std::size_t>(1, target / kc.bytes);
  kc.run(table);  // warmup (faults in buffers, primes caches)
  double best = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r) kc.run(table);
    const double secs = timer.Seconds();
    const double gbps = secs > 0.0
                            ? static_cast<double>(kc.bytes * reps) / secs / 1e9
                            : 0.0;
    if (gbps > best) best = gbps;
  }
  return best;
}

void RunKernelSection(BenchReport& report) {
  // Realistic payload: big-endian rows of a Table III dataset, so the high
  // bytes have the skewed exponent distribution the run-detection paths in
  // count_pairs are built for.
  const std::vector<double>& values = DatasetValues("num_plasma");
  const std::size_t n = values.size();
  const Bytes rows = DoublesToBigEndianRows(values);
  const SplitBytes split = SplitHighLow(rows, 8, 2);
  const IdIndex index =
      IdIndex::FromFrequency(AnalyzePairFrequency(split.high));
  const Bytes id_bytes = MapToIds(split.high, index, Linearization::kRow);

  // Second payload for count_pairs: num_brain's high bytes are long runs of
  // one exponent pair (the skew Fig. 1 of the paper is about), which is both
  // the run-detection fast path's target and scalar's worst case (a serial
  // read-modify-write chain on a single counter). num_plasma's high bytes
  // average ~11 distinct pairs per 16, so it shows the mixed-data floor.
  const std::vector<double>& brain = DatasetValues("num_brain");
  const std::size_t brain_n = std::min(brain.size(), n);
  const SplitBytes brain_split =
      SplitHighLow(DoublesToBigEndianRows(
                       std::vector<double>(brain.begin(),
                                           brain.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   brain_n))),
                   8, 2);

  Bytes high_buf(n * 2), low_buf(n * 6), wide_buf(n * 8), pair_buf(n * 2);
  std::vector<std::uint32_t> counts(65536, 0);
  std::vector<std::uint64_t> hist(256, 0);
  const auto table_size = static_cast<std::uint32_t>(index.size());

  const std::vector<KernelCase> cases = {
      {"split_w8_h2", n * 8,
       [&](const KernelTable& k) {
         k.split_w8_h2(rows.data(), n, high_buf.data(), low_buf.data());
       }},
      {"merge_w8_h2", n * 8,
       [&](const KernelTable& k) {
         k.merge_w8_h2(split.high.data(), split.low.data(), n,
                       wide_buf.data());
       }},
      {"row_to_col_w2", n * 2,
       [&](const KernelTable& k) {
         k.row_to_col_w2(id_bytes.data(), n, pair_buf.data());
       }},
      {"col_to_row_w2", n * 2,
       [&](const KernelTable& k) {
         k.col_to_row_w2(id_bytes.data(), n, pair_buf.data());
       }},
      {"row_to_col_w8", n * 8,
       [&](const KernelTable& k) {
         k.row_to_col_w8(rows.data(), n, wide_buf.data());
       }},
      {"col_to_row_w8", n * 8,
       [&](const KernelTable& k) {
         k.col_to_row_w8(rows.data(), n, wide_buf.data());
       }},
      {"count_pairs", brain_n * 2,
       [&](const KernelTable& k) {
         k.count_pairs(brain_split.high.data(), brain_n, counts.data());
       }},
      {"count_pairs_mixed", n * 2,
       [&](const KernelTable& k) {
         k.count_pairs(split.high.data(), n, counts.data());
       }},
      {"map_ids16", n * 2,
       [&](const KernelTable& k) {
         if (!k.map_ids16(split.high.data(), n, index.ids_table(),
                          pair_buf.data())) {
           throw InternalError("kernel_bench: map failed");
         }
       }},
      {"unmap_ids16", n * 2,
       [&](const KernelTable& k) {
         if (!k.unmap_ids16(id_bytes.data(), n, index.sequences_u32().data(),
                            table_size, pair_buf.data())) {
           throw InternalError("kernel_bench: unmap failed");
         }
       }},
      {"histogram_stride_w8", n,
       [&](const KernelTable& k) {
         k.histogram_stride(rows.data(), n, 8, hist.data());
       }},
  };

  const std::vector<Isa> isas = AvailableIsas();
  std::printf("%-22s %10s", "kernel", "MiB/call");
  for (const Isa isa : isas) std::printf(" %12s", kernels::IsaName(isa));
  std::printf(" %10s\n", "speedup");
  PrintRule();

  for (const KernelCase& kc : cases) {
    BenchReport::Entry& entry = report.AddEntry(kc.name);
    entry.Set("bytes_per_call", kc.bytes);
    double scalar_gbps = 0.0, dispatched_gbps = 0.0;
    std::printf("%-22s %10.2f", kc.name.c_str(),
                static_cast<double>(kc.bytes) / (1u << 20));
    for (const Isa isa : isas) {
      const double gbps = MeasureGBps(kc, *kernels::TableFor(isa));
      entry.Set(std::string("gbps_") + kernels::IsaName(isa), gbps);
      if (isa == Isa::kScalar) scalar_gbps = gbps;
      if (isa == BestIsa()) dispatched_gbps = gbps;
      std::printf(" %12.3f", gbps);
    }
    const double speedup =
        scalar_gbps > 0.0 ? dispatched_gbps / scalar_gbps : 0.0;
    entry.Set("dispatched_isa", kernels::IsaName(BestIsa()));
    entry.Set("speedup_dispatched_vs_scalar", speedup);
    std::printf(" %9.2fx\n", speedup);
  }
}

void RunStageSection(BenchReport& report) {
  // End-to-end encode with the same options the paper benches use; the
  // StageClock breakdown inside the chunk pipeline attributes the win to
  // the stages the kernels rewired (split, frequency, id_map, isobar).
  const std::vector<double>& values = DatasetValues("num_plasma");

  if (!kernels::ForceIsa(Isa::kScalar)) {
    throw InternalError("kernel_bench: cannot force scalar");
  }
  const PrimacyMeasurement before = MeasurePrimacy(values);
  if (!kernels::ForceIsa(BestIsa())) {
    throw InternalError("kernel_bench: cannot force best ISA");
  }
  const PrimacyMeasurement after = MeasurePrimacy(values);

  std::printf("\n%-22s %14s %14s %10s   (encode stages, %s vs scalar)\n",
              "stage", "scalar ms", "dispatched ms", "speedup",
              kernels::IsaName(BestIsa()));
  PrintRule();
  for (std::size_t s = 0; s < telemetry::kStageCount; ++s) {
    const auto stage = static_cast<telemetry::Stage>(s);
    const double b = before.stats.stage.Seconds(stage);
    const double a = after.stats.stage.Seconds(stage);
    BenchReport::Entry& entry =
        report.AddEntry(std::string("stage_") +
                        std::string(telemetry::StageName(stage)));
    entry.Set("scalar_seconds", b);
    entry.Set("dispatched_seconds", a);
    entry.Set("speedup", a > 0.0 ? b / a : 0.0);
    std::printf("%-22s %14.3f %14.3f %9.2fx\n",
                std::string(telemetry::StageName(stage)).c_str(), b * 1e3,
                a * 1e3, a > 0.0 ? b / a : 0.0);
  }

  BenchReport::Entry& totals = report.AddEntry("end_to_end");
  totals.Set("scalar_compress_mbps", before.CompressMBps());
  totals.Set("dispatched_compress_mbps", after.CompressMBps());
  totals.Set("scalar_decompress_mbps", before.DecompressMBps());
  totals.Set("dispatched_decompress_mbps", after.DecompressMBps());
  totals.Set("dispatched_isa", kernels::IsaName(BestIsa()));
  std::printf("\nend-to-end compress  %8.1f -> %8.1f MB/s\n",
              before.CompressMBps(), after.CompressMBps());
  std::printf("end-to-end decompress %7.1f -> %8.1f MB/s\n",
              before.DecompressMBps(), after.DecompressMBps());
}

int Main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Kernel layer: scalar vs dispatched SIMD",
              "runtime-dispatched byte-matrix kernels (src/kernels)");
  std::printf("active ISA at startup: %s\n\n",
              kernels::IsaName(kernels::ActiveIsa()));
  BenchReport report("kernels");
  RunKernelSection(report);
  RunStageSection(report);
  report.Write();
  return 0;
}

}  // namespace
}  // namespace primacy::bench

int main(int argc, char** argv) { return primacy::bench::Main(argc, argv); }
