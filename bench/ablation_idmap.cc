// Section II-C ablation: frequency-ranked ID assignment vs an identity-order
// assignment (sequences mapped to IDs by ascending value, ignoring
// frequency). Isolates the contribution of the probabilistic ranking: the
// paper credits it with a ~15% average gain in top-byte repeatability.
#include <algorithm>

#include "bench_util.h"
#include "core/frequency.h"
#include "core/id_mapper.h"
#include "deflate/deflate.h"
#include "util/byte_matrix.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace primacy;
  bench::Init(argc, argv);
  bench::PrintHeader(
      "Ablation: frequency-ranked vs identity ID assignment",
      "Shah et al., CLUSTER 2012, Section II-C");
  std::printf("%-15s %10s %10s %10s | %10s %10s %10s\n", "dataset", "rawTop",
              "identTop", "freqTop", "rawIDsz", "identIDsz", "freqIDsz");
  bench::PrintRule();

  const DeflateCodec solver;
  bench::BenchReport report("ablation_idmap");
  double repeatability_gain_sum = 0.0;
  for (const DatasetSpec& spec : AllDatasets()) {
    const auto& values = bench::DatasetValues(spec.name);
    const Bytes rows = DoublesToBigEndianRows(values);
    const SplitBytes split = SplitHighLow(rows, 8, 2);
    const PairFrequency freq = AnalyzePairFrequency(split.high);

    // Frequency-ranked index (PRIMACY) vs identity-order index (sequences
    // sorted ascending — still bijective, but ignores frequency).
    const IdIndex freq_index = IdIndex::FromFrequency(freq);
    std::vector<std::uint16_t> ascending = freq_index.sequences();
    std::sort(ascending.begin(), ascending.end());
    const IdIndex ident_index = IdIndex::FromSequences(ascending);

    const Bytes freq_ids =
        MapToIds(split.high, freq_index, Linearization::kColumn);
    const Bytes ident_ids =
        MapToIds(split.high, ident_index, Linearization::kColumn);
    const Bytes raw_cols = RowToColumn(split.high, 2);

    const double raw_top = TopByteFrequency(raw_cols);
    const double ident_top = TopByteFrequency(ident_ids);
    const double freq_top = TopByteFrequency(freq_ids);
    repeatability_gain_sum += freq_top - raw_top;

    const std::size_t raw_size = solver.Compress(raw_cols).size();
    const std::size_t ident_size = solver.Compress(ident_ids).size();
    const std::size_t freq_size = solver.Compress(freq_ids).size();
    std::printf("%-15s %10.3f %10.3f %10.3f | %10zu %10zu %10zu\n",
                spec.name.c_str(), raw_top, ident_top, freq_top, raw_size,
                ident_size, freq_size);
    report.AddEntry(spec.name)
        .Set("raw_top_frequency", raw_top)
        .Set("identity_top_frequency", ident_top)
        .Set("ranked_top_frequency", freq_top)
        .Set("raw_compressed_bytes", raw_size)
        .Set("identity_compressed_bytes", ident_size)
        .Set("ranked_compressed_bytes", freq_size);
  }

  bench::PrintRule();
  std::printf(
      "mean top-byte repeatability gain over raw: %+.1f%% (paper: ~15%%)\n",
      100.0 * repeatability_gain_sum / 20.0);
  return 0;
}
