// Figure 4: end-to-end write (a) and read (b) throughput in a staging
// environment for PRIMACY (P), the deflate-class solver standing in for
// zlib (Z), and the lzo-class LzFast (L) — theoretical model (T) next to
// the "empirical" value (E) from the event-driven cluster simulator fed
// with *real measured* codec timings, on num_comet / flash_velx / obs_temp.
//
// The paper's conclusions to reproduce:
//   * writes: PRIMACY gains ~27% over null; vanilla z/l gain ~8-10%;
//   * reads : PRIMACY gains ~19%; vanilla z/l *lose* ~4-7%;
//   * theoretical and empirical values agree.
#include <array>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/builtin_codecs.h"
#include "compress/registry.h"
#include "hpcsim/staging.h"
#include "model/perf_model.h"
#include "util/error.h"
#include "util/timer.h"

namespace {

using namespace primacy;
using hpcsim::ClusterConfig;
using hpcsim::CompressionProfile;

/// Jaguar-like single I/O group: rho = 8, slow shared storage relative to
/// in-memory compression (Section IV-A's staging configuration, scaled).
ClusterConfig Cluster() {
  ClusterConfig config;
  config.compute_nodes = 8;
  config.compute_per_io = 8;
  config.network_bps = 120e6;
  config.disk_write_bps = 25e6;
  config.disk_read_bps = 80e6;
  return config;
}

struct Entry {
  double write_model = 0.0, write_sim = 0.0;
  double read_model = 0.0, read_sim = 0.0;
};

constexpr std::size_t kChunksPerNode = 8;

Entry NullEntry(double chunk_bytes) {
  const ClusterConfig cluster = Cluster();
  ModelInputs in;
  in.chunk_bytes = chunk_bytes;
  in.metadata_bytes = 0;
  in.rho = 8.0;
  in.network_bps = cluster.network_bps;
  in.disk_write_bps = cluster.disk_write_bps;
  in.disk_read_bps = cluster.disk_read_bps;
  Entry e;
  e.write_model = BaselineWrite(in).ThroughputMBps();
  e.read_model = BaselineRead(in).ThroughputMBps();
  // Writes stream chunk-by-chunk (pipelined); a restart read blocks on the
  // full state, so the read path is simulated single-shot per node.
  auto write_profile = CompressionProfile::Null(chunk_bytes / kChunksPerNode);
  write_profile.chunks_per_node = kChunksPerNode;
  e.write_sim = SimulateWrite(cluster, write_profile).ThroughputMBps();
  e.read_sim = SimulateRead(cluster, CompressionProfile::Null(chunk_bytes))
                   .ThroughputMBps();
  return e;
}

/// Vanilla codec (whole-chunk compression) or PRIMACY: both measured for
/// real, then projected through the model and the simulator.
Entry CodecEntry(const std::string& codec_name, ByteSpan raw) {
  const ClusterConfig cluster = Cluster();
  const auto codec = CreateCodec(codec_name);
  const CodecMeasurement m = MeasureCodec(*codec, raw);

  // Simulator: real measured seconds, virtual cluster. Checkpoint writes are
  // split across kChunksPerNode pipelined chunks per node (compression of
  // chunk k+1 overlaps I/O of chunk k, as in a staged in-situ deployment);
  // the restart read is single-shot because the application blocks on the
  // fully reconstructed state.
  CompressionProfile write_profile;
  write_profile.chunks_per_node = kChunksPerNode;
  const double chunks = static_cast<double>(kChunksPerNode);
  write_profile.input_bytes = static_cast<double>(raw.size()) / chunks;
  write_profile.output_bytes =
      static_cast<double>(m.compressed_bytes) / chunks;
  write_profile.compress_seconds = m.compress_seconds / chunks;

  CompressionProfile read_profile;
  read_profile.input_bytes = static_cast<double>(raw.size());
  read_profile.output_bytes = static_cast<double>(m.compressed_bytes);
  read_profile.decompress_seconds = m.decompress_seconds;

  // Model: express the same measurements in Section III terms. For a vanilla
  // codec the whole chunk is "compressible" (alpha1 = 1 path folded into
  // alpha2 = 1, sigma_lo = measured ratio); for PRIMACY the calibration uses
  // the measured aggregate too — the model's alpha/sigma decomposition is
  // exercised separately in model_sweep and EndToEnd tests.
  ModelInputs in;
  in.chunk_bytes = static_cast<double>(raw.size());
  in.metadata_bytes = 0;
  in.alpha1 = 0.0;
  in.alpha2 = 1.0;
  in.sigma_lo = static_cast<double>(m.compressed_bytes) /
                static_cast<double>(raw.size());
  in.sigma_ho = 1.0;
  in.rho = 8.0;
  in.network_bps = cluster.network_bps;
  in.disk_write_bps = cluster.disk_write_bps;
  in.disk_read_bps = cluster.disk_read_bps;
  in.precondition_bps = 1e15;  // folded into the measured compress time
  in.compress_bps = SafeRateBps(raw.size(), m.compress_seconds);
  in.decompress_bps = SafeRateBps(raw.size(), m.decompress_seconds);
  in.postcondition_bps = 1e15;

  Entry e;
  e.write_model = PrimacyWrite(in).ThroughputMBps();
  e.read_model = PrimacyRead(in).ThroughputMBps();
  e.write_sim = SimulateWrite(cluster, write_profile).ThroughputMBps();
  e.read_sim = SimulateRead(cluster, read_profile).ThroughputMBps();
  return e;
}

/// Best-of-three wall time for `fn`, in seconds.
template <typename Fn>
double BestSeconds(const Fn& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

struct DecompressRow {
  std::string dataset;
  std::size_t chunks = 0;
  double serial_mbps = 0.0;
  double parallel_mbps = 0.0;
  double speedup = 0.0;
  double range_read_us = 0.0;  // latency of a 1024-element mid-stream read
};

constexpr std::size_t kDecodeThreads = 4;

/// Read-path microbenchmark over the v2 directory: serial vs thread-pool
/// decode of one stream, plus random-access range-read latency.
DecompressRow MeasureDecompress(const char* name) {
  PrimacyOptions options;
  options.chunk_bytes = 64 * 1024;  // >= 32 chunks at the default bench size
  const std::vector<double>& values = bench::DatasetValues(name);
  const Bytes stream = PrimacyCompressor(options).Compress(values);

  PrimacyOptions parallel_options = options;
  parallel_options.threads = kDecodeThreads;
  const PrimacyDecompressor serial(options);
  const PrimacyDecompressor parallel(parallel_options);

  PrimacyDecodeStats stats;
  const auto serial_out = serial.Decompress(stream, &stats);
  if (serial.Decompress(stream) != parallel.Decompress(stream) ||
      serial_out != values) {
    throw InternalError("fig4: parallel decode mismatch");
  }

  DecompressRow row;
  row.dataset = name;
  row.chunks = stats.chunks_decoded;
  const double mb = static_cast<double>(values.size()) * 8.0 / 1e6;
  row.serial_mbps = mb / BestSeconds([&] { serial.Decompress(stream); });
  row.parallel_mbps = mb / BestSeconds([&] { parallel.Decompress(stream); });
  row.speedup = row.parallel_mbps / row.serial_mbps;

  constexpr std::size_t kRangeElements = 1024;
  const std::size_t mid = values.size() / 2 - kRangeElements / 2;
  row.range_read_us =
      BestSeconds([&] { serial.DecompressRange(stream, mid, kRangeElements); }) *
      1e6;
  return row;
}

void WriteDecompressJson(const std::vector<DecompressRow>& rows) {
  std::FILE* out = std::fopen("BENCH_decompress.json", "w");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\n  \"threads\": %zu,\n  \"hardware_concurrency\": %u,\n"
               "  \"datasets\": [\n",
               kDecodeThreads, std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DecompressRow& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"chunks\": %zu, "
                 "\"serial_mbps\": %.2f, \"parallel_mbps\": %.2f, "
                 "\"speedup\": %.3f, \"range_read_us\": %.2f}%s\n",
                 r.dataset.c_str(), r.chunks, r.serial_mbps, r.parallel_mbps,
                 r.speedup, r.range_read_us,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  RegisterBuiltinCodecs();
  const std::array<const char*, 3> datasets = {"num_comet", "flash_velx",
                                               "obs_temp"};
  bench::PrintHeader(
      "Figure 4: end-to-end write/read throughput (MB/s), staging environment",
      "Shah et al., CLUSTER 2012, Figures 4(a) and 4(b); Section IV-C/IV-D");
  std::printf(
      "Columns: PT/PE = PRIMACY theoretical/empirical, ZT/ZE = deflate-class\n"
      "(zlib stand-in), LT/LE = LzFast (lzo stand-in), N = no compression.\n\n");

  // Measure each codec once per dataset, then print both tables from the
  // cached entries (the PRIMACY/zlib/lzo measurements are the slow part).
  struct Row {
    Entry null_entry, p, z, l;
  };
  std::vector<Row> measured;
  bench::BenchReport report("fig4_end_to_end");
  for (const char* name : datasets) {
    const ByteSpan raw = bench::DatasetBytes(name);
    Row row;
    row.null_entry = NullEntry(static_cast<double>(raw.size()));
    row.p = CodecEntry("primacy", raw);
    row.z = CodecEntry("deflate", raw);
    row.l = CodecEntry("lzfast", raw);
    report.AddEntry(name)
        .Set("null_write_mbps", row.null_entry.write_sim)
        .Set("null_read_mbps", row.null_entry.read_sim)
        .Set("primacy_write_model_mbps", row.p.write_model)
        .Set("primacy_write_sim_mbps", row.p.write_sim)
        .Set("primacy_read_model_mbps", row.p.read_model)
        .Set("primacy_read_sim_mbps", row.p.read_sim)
        .Set("deflate_write_sim_mbps", row.z.write_sim)
        .Set("deflate_read_sim_mbps", row.z.read_sim)
        .Set("lzfast_write_sim_mbps", row.l.write_sim)
        .Set("lzfast_read_sim_mbps", row.l.read_sim);
    measured.push_back(row);
  }

  for (const char* which : {"WRITE", "READ"}) {
    const bool write = std::string(which) == "WRITE";
    std::printf("[%s]\n", which);
    std::printf("%-12s %8s %8s %8s %8s %8s %8s %8s\n", "dataset", "N", "PT",
                "PE", "ZT", "ZE", "LT", "LE");
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      const Row& row = measured[i];
      if (write) {
        std::printf("%-12s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
                    datasets[i], row.null_entry.write_sim, row.p.write_model,
                    row.p.write_sim, row.z.write_model, row.z.write_sim,
                    row.l.write_model, row.l.write_sim);
      } else {
        std::printf("%-12s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
                    datasets[i], row.null_entry.read_sim, row.p.read_model,
                    row.p.read_sim, row.z.read_model, row.z.read_sim,
                    row.l.read_model, row.l.read_sim);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "[DECOMPRESS] stream v2 read path (64 KiB chunks); %u hardware\n"
      "threads available — the T4 speedup column scales with cores.\n",
      std::thread::hardware_concurrency());
  std::printf("%-12s %7s %10s %12s %8s %14s\n", "dataset", "chunks",
              "ser MB/s", "par MB/s(T4)", "speedup", "range us/1Ki");
  std::vector<DecompressRow> rows;
  for (const char* name : datasets) {
    rows.push_back(MeasureDecompress(name));
    const DecompressRow& r = rows.back();
    std::printf("%-12s %7zu %10.1f %12.1f %7.2fx %14.1f\n", r.dataset.c_str(),
                r.chunks, r.serial_mbps, r.parallel_mbps, r.speedup,
                r.range_read_us);
  }
  WriteDecompressJson(rows);
  std::printf("(machine-readable copy: BENCH_decompress.json)\n\n");

  bench::PrintRule();
  std::printf(
      "Expected shape (paper): PE > N on writes (avg +27%% there) and reads\n"
      "(+19%%); ZE/LE modest gains on writes, losses on reads; T tracks E.\n");
  return 0;
}
