// ISOBAR threshold ablation (paper Section II-G): sweep the analyzer's
// entropy cutoff from "compress nothing" to "compress everything" and show
// the ratio/throughput trade. The empirical default (7.8 bits) should sit
// near the knee: almost all the achievable ratio at a fraction of the CPU
// cost of compressing every mantissa byte.
#include <array>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace primacy;
  bench::Init(argc, argv);
  bench::PrintHeader(
      "Ablation: ISOBAR entropy threshold sweep",
      "Shah et al., CLUSTER 2012, Section II-G / ISOBAR (ICDE 2012)");
  const std::array<double, 6> thresholds = {0.0, 4.0, 6.0, 7.8, 7.98, 8.1};

  bench::BenchReport report("ablation_isobar");
  for (const char* name : {"num_plasma", "obs_error", "gts_chkp_zeon"}) {
    const auto& values = bench::DatasetValues(name);
    std::printf("[%s]\n", name);
    std::printf("%12s %10s %10s %12s %12s\n", "threshold", "alpha2", "CR",
                "CTP(MB/s)", "DTP(MB/s)");
    for (const double threshold : thresholds) {
      PrimacyOptions options;
      options.isobar.entropy_threshold_bits = threshold;
      options.isobar.top_frequency_threshold = 1.1;  // entropy rule only
      const auto m = bench::MeasurePrimacy(values, options);
      std::printf("%12.2f %10.2f %10.3f %12.1f %12.1f\n", threshold,
                  m.stats.mean_compressible_fraction, m.CompressionRatio(),
                  m.CompressMBps(), m.DecompressMBps());
      report.AddEntry(name)
          .Set("entropy_threshold_bits", threshold)
          .Set("compressible_fraction", m.stats.mean_compressible_fraction)
          .Set("ratio", m.CompressionRatio())
          .Set("compress_mbps", m.CompressMBps())
          .Set("decompress_mbps", m.DecompressMBps());
    }
    std::printf("\n");
  }
  bench::PrintRule();
  std::printf(
      "Shape: threshold 0 skips all mantissa bytes (fastest, lowest ratio);\n"
      "8.1 compresses everything (slowest, ratio barely better than the\n"
      "default); the 7.8 default keeps ~all ratio at much higher throughput.\n");
  return 0;
}
