// TokenBucket arithmetic: the admission math must be exact-integer so
// virtual-clock tests land deterministically on admit/reject boundaries.
#include "service/tenant.h"

#include <gtest/gtest.h>

namespace primacy::service {
namespace {

TEST(ServiceTokenBucket, UnlimitedBucketAlwaysAdmits) {
  TokenBucket bucket(/*rate=*/0, /*burst=*/0, /*now_ns=*/0);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_TRUE(bucket.TryCharge(1'000'000'000));
  EXPECT_EQ(bucket.RetryAfterNs(1'000'000'000), 0u);
}

TEST(ServiceTokenBucket, StartsFullAndChargesDown) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/500, /*now_ns=*/0);
  EXPECT_EQ(bucket.available(), 500u);
  EXPECT_TRUE(bucket.TryCharge(300));
  EXPECT_EQ(bucket.available(), 200u);
  EXPECT_FALSE(bucket.TryCharge(250));
  EXPECT_EQ(bucket.available(), 200u);  // a failed charge spends nothing
}

TEST(ServiceTokenBucket, BurstDefaultsToOneSecondOfRate) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/0, /*now_ns=*/0);
  EXPECT_EQ(bucket.burst(), 1000u);
  EXPECT_EQ(bucket.available(), 1000u);
}

// Fractional refill must carry, not truncate: at 3 bytes/sec, 333333333 ns
// earns 0.999999999 bytes — zero tokens, but the remainder is banked so the
// next nanosecond tips it over.
TEST(ServiceTokenBucket, RefillCarriesSubByteRemainders) {
  TokenBucket bucket(/*rate=*/3, /*burst=*/10, /*now_ns=*/0);
  ASSERT_TRUE(bucket.TryCharge(10));  // drain
  bucket.Refill(333'333'333);
  EXPECT_EQ(bucket.available(), 0u);
  bucket.Refill(333'333'334);
  EXPECT_EQ(bucket.available(), 1u);
}

// The determinism contract the service suite leans on: advancing by exactly
// RetryAfterNs admits; one nanosecond less still rejects.
TEST(ServiceTokenBucket, RetryAfterIsAnExactBoundary) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/500, /*now_ns=*/0);
  ASSERT_TRUE(bucket.TryCharge(500));  // drain
  const std::uint64_t retry = bucket.RetryAfterNs(100);
  EXPECT_EQ(retry, 100'000'000u);  // 100 bytes at 1000 B/s
  bucket.Refill(retry - 1);
  EXPECT_FALSE(bucket.TryCharge(100));
  bucket.Refill(retry);
  EXPECT_TRUE(bucket.TryCharge(100));
}

TEST(ServiceTokenBucket, SaturatedIdleBanksNoCredit) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/100, /*now_ns=*/0);
  // Ten seconds at a full bucket earn nothing — no carry, no overfill.
  bucket.Refill(10'000'000'000ULL);
  EXPECT_EQ(bucket.available(), 100u);
  ASSERT_TRUE(bucket.TryCharge(100));
  // Credit accrues only from the moment the bucket left saturation.
  bucket.Refill(10'000'000'000ULL + 1'000'000);  // +1 ms = 1 byte
  EXPECT_EQ(bucket.available(), 1u);
}

TEST(ServiceTokenBucket, RefillCapsAtBurst) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/100, /*now_ns=*/0);
  ASSERT_TRUE(bucket.TryCharge(100));
  bucket.Refill(5'000'000'000ULL);  // would earn 5000 bytes; caps at 100
  EXPECT_EQ(bucket.available(), 100u);
}

TEST(ServiceTokenBucket, OversizedRequestReportsTimeToFullBurst) {
  TokenBucket bucket(/*rate=*/1000, /*burst=*/500, /*now_ns=*/0);
  // A full bucket is the closest the bucket can ever get to 600 bytes.
  EXPECT_EQ(bucket.RetryAfterNs(600), 0u);
  ASSERT_TRUE(bucket.TryCharge(500));
  EXPECT_EQ(bucket.RetryAfterNs(600), 500'000'000u);  // time to refill 500
}

}  // namespace
}  // namespace primacy::service
