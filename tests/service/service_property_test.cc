// Property: for ANY interleaving of batched requests, every response is
// byte-identical to the corresponding direct library call. Batching decides
// when and where work runs — never what it produces. Inputs mix the golden
// corpus files (real committed data, including the adversarial noise file
// that takes the stored-stream fallback) with seeded random slices whose
// sizes deliberately include non-multiples of 8 (tail-byte paths).
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/primacy_codec.h"
#include "service/clock.h"
#include "service/service.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace primacy::service {
namespace {

Bytes ReadGolden(const std::string& name) {
  const std::string path = std::string(PRIMACY_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing golden file " << path;
  std::vector<char> data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  return ToBytes(ByteSpan(reinterpret_cast<const std::byte*>(data.data()),
                          data.size()));
}

// A deterministic pool of payloads: golden-corpus slices plus random data,
// with sizes that are not multiples of the element width (tail path) and a
// tiny sub-element payload.
std::vector<Bytes> BuildInputPool(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> pool;
  const Bytes input = ReadGolden("input.bin");
  const Bytes noise = ReadGolden("noise.bin");
  pool.push_back(input);
  pool.push_back(noise);  // incompressible: exercises the stored fallback
  for (const std::size_t size : {4096ul, 4097ul, 8000ul, 123ul, 5ul}) {
    Bytes payload(size);
    for (auto& b : payload) {
      b = static_cast<std::byte>(rng.NextBelow(256));
    }
    pool.push_back(std::move(payload));
  }
  // Compressible slices of varying length from the golden input.
  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t take =
        std::min<std::size_t>(input.size(), 512 + 809 * i);
    pool.push_back(ToBytes(ByteSpan(input.data(), take)));
  }
  return pool;
}

TEST(ServicePropertyTest, AnyInterleavingIsByteIdenticalToDirectCalls) {
  const std::vector<Bytes> inputs = BuildInputPool(/*seed=*/20260808);

  // Expected outputs from direct, unbatched library calls.
  PrimacyOptions direct_options;
  direct_options.threads = 1;
  const PrimacyCompressor compressor(direct_options);
  const PrimacyDecompressor decompressor(direct_options);
  std::vector<Bytes> expected_streams;
  for (const Bytes& input : inputs) {
    expected_streams.push_back(compressor.CompressBytes(input));
  }

  VirtualClock clock;
  ServiceOptions options;
  options.batch.flush_bytes = 16 * 1024;  // small: force many batch cuts
  options.batch.flush_requests = 7;       // and count cuts interleaved
  options.batch.flush_timeout_ns = 1ULL << 60;
  options.clock = &clock;
  CompressionService service(options);
  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 24;
  for (int t = 0; t < kThreads; ++t) {
    service.AddTenant({.name = "tenant" + std::to_string(t)});
  }

  struct Pending {
    std::size_t input_index;
    bool decompress;
    std::future<ServiceResponse> future;
  };
  std::vector<std::vector<Pending>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));  // per-thread deterministic request sequence
      const std::string tenant = "tenant" + std::to_string(t);
      for (int r = 0; r < kRequestsPerThread; ++r) {
        const std::size_t index = rng.NextBelow(inputs.size());
        const bool decompress = rng.NextBelow(2) == 1;
        Bytes payload = decompress ? expected_streams[index] : inputs[index];
        auto future =
            decompress ? service.SubmitDecompress(tenant, std::move(payload))
                       : service.SubmitCompress(tenant, std::move(payload));
        per_thread[static_cast<std::size_t>(t)].push_back({index, decompress, std::move(future)});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  service.Flush();  // whatever the triggers left pending

  std::size_t verified = 0;
  for (auto& pendings : per_thread) {
    for (Pending& pending : pendings) {
      ServiceResponse response = pending.future.get();
      ASSERT_TRUE(response.ok()) << response.error;
      const Bytes& expected = pending.decompress
                                  ? inputs[pending.input_index]
                                  : expected_streams[pending.input_index];
      ASSERT_EQ(response.payload, expected)
          << "input " << pending.input_index
          << (pending.decompress ? " (decompress)" : " (compress)");
      ++verified;
    }
  }
  EXPECT_EQ(verified, kThreads * kRequestsPerThread);
  // Batching actually engaged: fewer batches than requests.
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.batch.items, verified);
  EXPECT_LT(stats.batch.batches, verified);
}

// Round-trip through the service in both directions for every pool input,
// single-tenant, exercising encoder-context reuse across many batches.
TEST(ServicePropertyTest, SequentialRoundTripsStayByteIdentical) {
  const std::vector<Bytes> inputs = BuildInputPool(/*seed=*/777);
  PrimacyOptions direct_options;
  direct_options.threads = 1;
  const PrimacyCompressor compressor(direct_options);

  VirtualClock clock;
  ServiceOptions options;
  options.batch.flush_bytes = 0;
  options.batch.flush_requests = 3;
  options.batch.flush_timeout_ns = 1ULL << 60;
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "solo"});

  for (int round = 0; round < 2; ++round) {
    std::vector<std::future<ServiceResponse>> futures;
    for (const Bytes& input : inputs) {
      futures.push_back(service.SubmitCompress("solo", input));
    }
    service.Flush();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      ServiceResponse response = futures[i].get();
      ASSERT_TRUE(response.ok()) << response.error;
      ASSERT_EQ(response.payload, compressor.CompressBytes(inputs[i]))
          << "round " << round << " input " << i;
      auto restored = service.SubmitDecompress("solo", response.payload);
      service.Flush();
      ASSERT_EQ(restored.get().payload, inputs[i]);
    }
  }
}

}  // namespace
}  // namespace primacy::service
