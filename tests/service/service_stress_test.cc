// Thread-sanitizer stress target (suite name carries "Stress" so the CI
// sanitizer matrix's TSan pass picks it up): N tenant threads hammer one
// service with mixed compress/decompress while a canceller thread
// repeatedly drains one tenant and a ticker thread advances the virtual
// clock (so timeout flushes, quota refills, and blocked waiters all fire
// concurrently with submissions). No wall-clock sleeps: every thread does
// useful work every iteration and the test ends when the work counts run
// out. Responses that completed are verified byte-identical to direct
// library calls — under race conditions, corruption is the symptom TSan
// alone would miss.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/primacy_codec.h"
#include "service/clock.h"
#include "service/service.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace primacy::service {
namespace {

Bytes MakePayload(std::size_t doubles, double offset) {
  std::vector<double> values(doubles);
  for (std::size_t i = 0; i < doubles; ++i) {
    values[i] = offset + static_cast<double>(i) * 0.25;
  }
  Bytes bytes(values.size() * sizeof(double));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

TEST(ServiceStress, ConcurrentTenantsWithCancellerAndVirtualTicker) {
  constexpr int kTenantThreads = 8;
  constexpr int kRequestsPerThread = 40;
  constexpr int kPayloadVariants = 6;

  // Shared input/expected tables, built before any concurrency.
  std::vector<Bytes> inputs;
  std::vector<Bytes> streams;
  PrimacyOptions direct_options;
  direct_options.threads = 1;
  const PrimacyCompressor compressor(direct_options);
  for (int v = 0; v < kPayloadVariants; ++v) {
    inputs.push_back(MakePayload(static_cast<std::size_t>(128 + 64 * v), v * 1000.0));
    streams.push_back(compressor.CompressBytes(inputs.back()));
  }

  VirtualClock clock;
  ServiceOptions options;
  options.batch.flush_bytes = 8 * 1024;
  options.batch.flush_requests = 16;
  options.batch.flush_timeout_ns = 50'000;  // fired by the ticker thread
  options.clock = &clock;
  CompressionService service(options);
  for (int t = 0; t < kTenantThreads; ++t) {
    TenantConfig config;
    config.name = "tenant" + std::to_string(t);
    if (t % 3 == 1) {
      // A third of the tenants run quota-limited with fail-fast rejection,
      // so admission races (refill vs. charge vs. reject) stay hot.
      config.quota_bytes_per_sec = 64 * 1024 * 1024;
      config.quota_burst_bytes = 256 * 1024;
      config.on_pressure = BackpressurePolicy::kReject;
    }
    service.AddTenant(config);
  }

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> verified{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> rejected{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kTenantThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(42 + static_cast<std::uint64_t>(t));
      const std::string tenant = "tenant" + std::to_string(t);
      for (int r = 0; r < kRequestsPerThread; ++r) {
        const std::size_t v = rng.NextBelow(inputs.size());
        const bool decompress = rng.NextBelow(2) == 1;
        Bytes payload = decompress ? streams[v] : inputs[v];
        auto future =
            decompress ? service.SubmitDecompress(tenant, std::move(payload))
                       : service.SubmitCompress(tenant, std::move(payload));
        if (r % 8 == 7) service.Flush();
        ServiceResponse response = future.get();
        switch (response.status) {
          case ServiceStatus::kOk: {
            const Bytes& expected = decompress ? inputs[v] : streams[v];
            ASSERT_EQ(response.payload, expected);
            verified.fetch_add(1);
            break;
          }
          case ServiceStatus::kCancelled:
            cancelled.fetch_add(1);
            break;
          case ServiceStatus::kRejectedQuota:
          case ServiceStatus::kRejectedInflight:
            rejected.fetch_add(1);
            break;
          default:
            FAIL() << "unexpected status " << static_cast<int>(response.status)
                   << " " << response.error;
        }
      }
    });
  }

  // Canceller: drains tenant0 in a tight loop — its in-flight requests race
  // the epoch bump and must resolve either kOk (executed first) or
  // kCancelled, never corrupt or hang.
  std::thread canceller([&] {
    while (!done.load(std::memory_order_acquire)) {
      service.DrainTenant("tenant0");
    }
  });
  // Ticker: virtual time marches so timeout flushes and quota refills fire
  // while submissions are in flight.
  std::thread ticker([&] {
    while (!done.load(std::memory_order_acquire)) {
      clock.Advance(10'000);
    }
  });

  for (auto& worker : workers) worker.join();
  done.store(true, std::memory_order_release);
  canceller.join();
  ticker.join();

  // Every request resolved into exactly one of the counted outcomes.
  EXPECT_EQ(verified.load() + cancelled.load() + rejected.load(),
            static_cast<std::uint64_t>(kTenantThreads) * kRequestsPerThread);
  // The non-drained, non-quota tenants always complete, so a healthy
  // majority of requests must have verified payloads.
  EXPECT_GT(verified.load(), 0u);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.completed, verified.load());
  EXPECT_EQ(stats.cancelled, cancelled.load());
}

}  // namespace
}  // namespace primacy::service
