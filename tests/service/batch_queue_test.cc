// BatchQueue flush semantics under a VirtualClock: size, count, timeout,
// and drain triggers; exactly-once dispatch; FIFO order. No wall-clock
// sleeps anywhere — the timeout trigger fires because the test advances
// virtual time, and the test blocks (event-driven, not polling) only on
// the dispatcher having delivered a batch.
#include "service/batch_queue.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "service/clock.h"

namespace primacy::service {
namespace {

// Captures dispatched batches and lets the test block until n arrived.
class Collector {
 public:
  BatchQueue::Dispatcher dispatcher() {
    return [this](BatchQueue::Batch&& batch) {
      std::lock_guard<std::mutex> lock(mu_);
      batches_.push_back(std::move(batch));
      cv_.notify_all();
    };
  }

  void WaitForBatches(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return batches_.size() >= n; });
  }

  std::vector<BatchQueue::Batch> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(batches_);
  }

  std::size_t Count() {
    std::lock_guard<std::mutex> lock(mu_);
    return batches_.size();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<BatchQueue::Batch> batches_;
};

void NoopWork(CodecContext&) {}

constexpr std::uint64_t kNever = 1ULL << 60;  // timeout far beyond any test

TEST(ServiceBatchQueue, SizeTriggerCutsOnThePushingThread) {
  VirtualClock clock;
  Collector collector;
  BatchOptions options;
  options.flush_bytes = 100;
  options.flush_requests = 0;
  options.flush_timeout_ns = kNever;
  BatchQueue queue(options, &clock, collector.dispatcher());
  queue.Push(60, NoopWork);
  EXPECT_EQ(collector.Count(), 0u);
  EXPECT_EQ(queue.Depth(), 1u);
  queue.Push(40, NoopWork);  // crosses flush_bytes: cut before Push returns
  ASSERT_EQ(collector.Count(), 1u);
  const auto batches = collector.Take();
  EXPECT_EQ(batches[0].trigger, FlushTrigger::kSize);
  EXPECT_EQ(batches[0].bytes, 100u);
  EXPECT_EQ(batches[0].items.size(), 2u);
  EXPECT_EQ(queue.Depth(), 0u);
  EXPECT_EQ(queue.stats().size_flushes, 1u);
}

TEST(ServiceBatchQueue, CountTriggerCutsAtFlushRequests) {
  VirtualClock clock;
  Collector collector;
  BatchOptions options;
  options.flush_bytes = 0;
  options.flush_requests = 3;
  options.flush_timeout_ns = kNever;
  BatchQueue queue(options, &clock, collector.dispatcher());
  queue.Push(1, NoopWork);
  queue.Push(1, NoopWork);
  EXPECT_EQ(collector.Count(), 0u);
  queue.Push(1, NoopWork);
  ASSERT_EQ(collector.Count(), 1u);
  const auto batches = collector.Take();
  EXPECT_EQ(batches[0].trigger, FlushTrigger::kCount);
  EXPECT_EQ(batches[0].items.size(), 3u);
  EXPECT_EQ(queue.stats().count_flushes, 1u);
}

TEST(ServiceBatchQueue, TimeoutTriggerFiresWhenVirtualTimeCrossesDeadline) {
  VirtualClock clock;
  Collector collector;
  BatchOptions options;
  options.flush_bytes = 0;
  options.flush_requests = 0;
  options.flush_timeout_ns = 1000;
  BatchQueue queue(options, &clock, collector.dispatcher());
  queue.Push(10, NoopWork);  // enqueued at t=0; deadline t=1000
  clock.Advance(999);        // flusher wakes, sees 999 < 1000, re-waits
  clock.Advance(1);          // t=1000: the flusher must cut now
  collector.WaitForBatches(1);
  const auto batches = collector.Take();
  EXPECT_EQ(batches[0].trigger, FlushTrigger::kTimeout);
  EXPECT_EQ(batches[0].items.size(), 1u);
  // The cut happened at exactly the deadline — not one virtual ns later.
  EXPECT_EQ(batches[0].cut_ns, 1000u);
  EXPECT_EQ(queue.stats().timeout_flushes, 1u);
}

// The race the harness exists to pin down: a size cut and a timeout firing
// for the same pending items must dispatch them exactly once.
TEST(ServiceBatchQueue, SizeBeatsTimeoutDispatchesExactlyOnce) {
  VirtualClock clock;
  Collector collector;
  BatchOptions options;
  options.flush_bytes = 100;
  options.flush_requests = 0;
  options.flush_timeout_ns = 1000;
  BatchQueue queue(options, &clock, collector.dispatcher());
  queue.Push(60, NoopWork);
  queue.Push(40, NoopWork);  // size cut at t=0, before any timeout
  ASSERT_EQ(collector.Count(), 1u);
  // Now sail past the old deadline: the flusher wakes to an empty queue and
  // must not dispatch a second (empty or duplicate) batch.
  clock.Advance(5000);
  // Prove the flusher is alive and did not double-fire: a fresh item still
  // times out normally, as the only other batch.
  queue.Push(10, NoopWork);  // enqueued at t=5000; deadline t=6000
  clock.Advance(1000);
  collector.WaitForBatches(2);
  const auto batches = collector.Take();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].trigger, FlushTrigger::kSize);
  EXPECT_EQ(batches[1].trigger, FlushTrigger::kTimeout);
  // Exactly-once: the three items appear once each, in admission order.
  std::vector<std::uint64_t> sequences;
  for (const auto& batch : batches) {
    for (const auto& item : batch.items) sequences.push_back(item.sequence);
  }
  EXPECT_EQ(sequences, (std::vector<std::uint64_t>{0, 1, 2}));
  const auto stats = queue.stats();
  EXPECT_EQ(stats.size_flushes, 1u);
  EXPECT_EQ(stats.timeout_flushes, 1u);
  EXPECT_EQ(stats.items, 3u);
}

TEST(ServiceBatchQueue, TimeoutBeatsSizeWhenSizeNeverReached) {
  VirtualClock clock;
  Collector collector;
  BatchOptions options;
  options.flush_bytes = 1000;
  options.flush_requests = 0;
  options.flush_timeout_ns = 1000;
  BatchQueue queue(options, &clock, collector.dispatcher());
  queue.Push(60, NoopWork);  // far below flush_bytes
  clock.Advance(1000);
  collector.WaitForBatches(1);
  // The batch went out via timeout; pushing more afterwards starts a fresh
  // batch that can still size-cut.
  queue.Push(500, NoopWork);
  queue.Push(500, NoopWork);
  ASSERT_EQ(collector.Count(), 2u);
  const auto batches = collector.Take();
  EXPECT_EQ(batches[0].trigger, FlushTrigger::kTimeout);
  EXPECT_EQ(batches[1].trigger, FlushTrigger::kSize);
}

TEST(ServiceBatchQueue, ZeroTimeoutFlushesEveryPush) {
  VirtualClock clock;
  Collector collector;
  BatchOptions options;
  options.flush_bytes = 0;
  options.flush_requests = 0;
  options.flush_timeout_ns = 0;  // unbatched degenerate mode
  BatchQueue queue(options, &clock, collector.dispatcher());
  queue.Push(10, NoopWork);
  queue.Push(10, NoopWork);
  ASSERT_EQ(collector.Count(), 2u);
  const auto batches = collector.Take();
  EXPECT_EQ(batches[0].items.size(), 1u);
  EXPECT_EQ(batches[1].items.size(), 1u);
}

TEST(ServiceBatchQueue, DrainFlushesPendingAndIsNoopWhenEmpty) {
  VirtualClock clock;
  Collector collector;
  BatchOptions options;
  options.flush_timeout_ns = kNever;
  BatchQueue queue(options, &clock, collector.dispatcher());
  queue.Drain();  // empty: nothing dispatched
  EXPECT_EQ(collector.Count(), 0u);
  queue.Push(10, NoopWork);
  queue.Drain();
  ASSERT_EQ(collector.Count(), 1u);
  EXPECT_EQ(collector.Take()[0].trigger, FlushTrigger::kDrain);
}

TEST(ServiceBatchQueue, StopDrainsAndLatePushStillDispatches) {
  VirtualClock clock;
  Collector collector;
  BatchOptions options;
  options.flush_timeout_ns = kNever;
  BatchQueue queue(options, &clock, collector.dispatcher());
  queue.Push(10, NoopWork);
  queue.Stop();  // drains the pending item and joins the flusher
  ASSERT_EQ(collector.Count(), 1u);
  // A push racing (or following) Stop must not strand its item: it goes out
  // immediately as a single-item drain batch.
  queue.Push(20, NoopWork);
  ASSERT_EQ(collector.Count(), 2u);
  const auto batches = collector.Take();
  EXPECT_EQ(batches[1].trigger, FlushTrigger::kDrain);
  EXPECT_EQ(batches[1].items.size(), 1u);
  EXPECT_EQ(queue.stats().drain_flushes, 2u);
}

TEST(ServiceBatchQueue, FifoOrderAcrossBatches) {
  VirtualClock clock;
  Collector collector;
  BatchOptions options;
  options.flush_bytes = 0;
  options.flush_requests = 2;
  options.flush_timeout_ns = kNever;
  BatchQueue queue(options, &clock, collector.dispatcher());
  for (int i = 0; i < 6; ++i) queue.Push(1, NoopWork);
  ASSERT_EQ(collector.Count(), 3u);
  std::uint64_t expected = 0;
  for (const auto& batch : collector.Take()) {
    for (const auto& item : batch.items) {
      EXPECT_EQ(item.sequence, expected++);
    }
  }
  EXPECT_EQ(expected, 6u);
}

}  // namespace
}  // namespace primacy::service
