// Regression coverage for the streaming-writer format gap (ROADMAP
// "streaming writer parity") and the service's streamed-upload path built
// around it.
//
// PrimacyStreamWriter still emits format v1 only: it cannot seek back to
// plant the v2/v3 chunk directory + footer, so its output has no random
// access and no checksums. The first test pins that behavior — when parity
// lands (a footer-carrying v2/v3 streamed format), its assertions flip and
// the test must be updated alongside the feature. Until then the service
// refuses non-seekable upload sinks outright rather than silently
// degrading, and routes seekable uploads through the one-shot compressor,
// which emits full v3 streams.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/primacy_codec.h"
#include "core/stream_format.h"
#include "core/streaming.h"
#include "service/clock.h"
#include "service/service.h"
#include "util/bytes.h"
#include "util/error.h"

namespace primacy::service {
namespace {

std::vector<double> MakeValues(std::size_t count) {
  std::vector<double> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    values[i] = 1.5 + static_cast<double>(i) * 0.125;
  }
  return values;
}

// Documents the gap: even with default (v3-capable) options, the streaming
// writer downgrades to v1 — no chunk directory, no footer, no checksums,
// and the seekable decompressor refuses the stream. If this test starts
// failing because stream[4] != 1, streaming parity has landed: update the
// service's BeginUpload policy (and this test) to accept non-seekable
// sinks.
TEST(ServiceStreamedUpload, StreamWriterStillEmitsV1OnlyStreams) {
  Bytes stream;
  PrimacyOptions options;  // defaults request the current (v3) format
  PrimacyStreamWriter writer(
      [&stream](ByteSpan data) { primacy::AppendBytes(stream, data); },
      options);
  const std::vector<double> values = MakeValues(512);
  writer.Append(values);
  writer.Finish();

  ASSERT_GT(stream.size(), 5u);
  // Byte 4 is the format version (after the 4-byte magic).
  EXPECT_EQ(static_cast<std::uint8_t>(stream[4]),
            primacy::internal::kFormatVersion1)
      << "streaming writer now emits v" << static_cast<int>(stream[4])
      << " — parity landed; relax BeginUpload's non-seekable rejection";

  // Consequence of v1-with-sentinel: no random access. The one-shot
  // decompressor (and with it DecompressRange) refuses streamed streams.
  PrimacyDecompressor decompressor;
  EXPECT_THROW(decompressor.DecompressBytes(stream), CorruptStreamError);
  EXPECT_THROW(decompressor.DecompressRange(stream, 0, 16),
               CorruptStreamError);
  // The sequential reader still handles it fine — that is all v1 offers.
  PrimacyStreamReader reader{ByteSpan(stream)};
  EXPECT_EQ(reader.ReadAllDoubles(), values);
}

TEST(ServiceStreamedUpload, NonSeekableSinkIsRejectedWithClearError) {
  VirtualClock clock;
  ServiceOptions options;
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "uploader"});
  try {
    service.BeginUpload("uploader", UploadSink::kNonSeekableStream);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    // The message must say what is unsupported and why, not just "invalid".
    const std::string message = e.what();
    EXPECT_NE(message.find("non-seekable"), std::string::npos) << message;
    EXPECT_NE(message.find("v1"), std::string::npos) << message;
    EXPECT_NE(message.find("streaming writer parity"), std::string::npos)
        << message;
  }
  EXPECT_THROW(service.BeginUpload("ghost", UploadSink::kSeekableBuffer),
               InvalidArgumentError);
}

TEST(ServiceStreamedUpload, SeekableUploadProducesFullSeekableV3Stream) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch.flush_bytes = 0;
  options.batch.flush_requests = 0;
  options.batch.flush_timeout_ns = 1ULL << 60;
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "uploader"});

  const std::vector<double> values = MakeValues(2048);
  Bytes whole(values.size() * sizeof(double));
  std::memcpy(whole.data(), values.data(), whole.size());

  UploadSession session =
      service.BeginUpload("uploader", UploadSink::kSeekableBuffer);
  // Append in ragged pieces (including one that splits an element).
  std::size_t offset = 0;
  for (const std::size_t piece : {4096ul, 100ul, 8000ul}) {
    const std::size_t take = std::min(piece, whole.size() - offset);
    session.Append(ByteSpan(whole.data() + offset, take));
    offset += take;
  }
  session.Append(ByteSpan(whole.data() + offset, whole.size() - offset));
  EXPECT_EQ(session.buffered_bytes(), whole.size());

  auto future = session.Finish();
  EXPECT_THROW(session.Append(ByteSpan(whole.data(), 1)),
               InvalidArgumentError);
  service.Flush();
  ServiceResponse response = future.get();
  ASSERT_TRUE(response.ok()) << response.error;

  // Byte-identical to the direct one-shot compression of the concatenation.
  PrimacyOptions direct_options;
  direct_options.threads = 1;
  EXPECT_EQ(response.payload,
            PrimacyCompressor(direct_options).CompressBytes(whole));
  // And a genuine v3 stream: current version byte, random access works.
  EXPECT_EQ(static_cast<std::uint8_t>(response.payload[4]),
            primacy::internal::kFormatVersion3);
  PrimacyDecompressor decompressor;
  const std::vector<double> slice =
      decompressor.DecompressRange(response.payload, 100, 64);
  ASSERT_EQ(slice.size(), 64u);
  for (std::size_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(slice[i], values[100 + i]);
  }
}

}  // namespace
}  // namespace primacy::service
