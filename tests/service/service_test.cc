// CompressionService behavior under a VirtualClock: admission, batching,
// quotas, backpressure, cancellation, stats, cache partitioning. Every
// blocking wait here is resolved by a virtual-time Advance, an explicit
// Flush, or a future becoming ready — never a wall-clock sleep.
#include "service/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/primacy_codec.h"
#include "service/clock.h"
#include "telemetry/metrics.h"
#include "util/bytes.h"
#include "util/error.h"

namespace primacy::service {
namespace {

// Smooth doubles: compressible (no stored-stream fallback), so decompress
// streams carry a chunk directory and exercise the cache path.
Bytes MakePayload(std::size_t doubles, double offset = 0.0) {
  std::vector<double> values(doubles);
  for (std::size_t i = 0; i < doubles; ++i) {
    values[i] = offset + static_cast<double>(i) * 0.001;
  }
  Bytes bytes(values.size() * sizeof(double));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

// Batching must never block a test on a timeout that only virtual time can
// fire: tests either cut by count or call Flush() explicitly.
BatchOptions ManualFlushBatching() {
  BatchOptions batch;
  batch.flush_bytes = 0;
  batch.flush_requests = 0;
  batch.flush_timeout_ns = 1ULL << 60;
  return batch;
}

TEST(ServiceTest, RoundTripMatchesDirectLibraryCalls) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha"});

  const Bytes payload = MakePayload(512);
  auto compressed_future = service.SubmitCompress("alpha", payload);
  service.Flush();
  ServiceResponse compressed = compressed_future.get();
  ASSERT_TRUE(compressed.ok()) << compressed.error;

  PrimacyOptions direct_options;
  direct_options.threads = 1;
  const Bytes direct = PrimacyCompressor(direct_options).CompressBytes(payload);
  EXPECT_EQ(compressed.payload, direct);

  auto restored_future = service.SubmitDecompress("alpha", compressed.payload);
  service.Flush();
  ServiceResponse restored = restored_future.get();
  ASSERT_TRUE(restored.ok()) << restored.error;
  EXPECT_EQ(restored.payload, payload);
}

TEST(ServiceTest, CountTriggerCoalescesRequestsIntoOneBatch) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.batch.flush_requests = 4;
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha"});

  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(
        service.SubmitCompress("alpha", MakePayload(64, i * 100.0)));
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.batch.count_flushes, 1u);
  EXPECT_EQ(stats.batch.batches, 1u);
  EXPECT_EQ(stats.batch.items, 4u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST(ServiceTest, QuotaRejectReportsExactRetryAfterBoundary) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha",
                     .quota_bytes_per_sec = 1000,
                     .quota_burst_bytes = 4096,
                     .on_pressure = BackpressurePolicy::kReject});

  const Bytes payload = MakePayload(512);  // 4096 bytes: drains the bucket
  auto admitted = service.SubmitCompress("alpha", payload);

  ServiceResponse rejected = service.SubmitCompress("alpha", payload).get();
  EXPECT_EQ(rejected.status, ServiceStatus::kRejectedQuota);
  ASSERT_GT(rejected.retry_after_ns, 0u);

  // One nanosecond short of the hint: still rejected. Exactly the hint:
  // admitted. This is the determinism the integer token bucket guarantees.
  clock.Advance(rejected.retry_after_ns - 1);
  ServiceResponse still_rejected =
      service.SubmitCompress("alpha", payload).get();
  EXPECT_EQ(still_rejected.status, ServiceStatus::kRejectedQuota);
  clock.Advance(1);
  auto admitted2 = service.SubmitCompress("alpha", payload);
  service.Flush();
  EXPECT_TRUE(admitted.get().ok());
  EXPECT_TRUE(admitted2.get().ok());

  const TenantStatsSnapshot tenant = service.TenantStats("alpha");
  EXPECT_EQ(tenant.admitted_requests, 2u);
  EXPECT_EQ(tenant.rejected_quota, 2u);
  EXPECT_EQ(tenant.rejected_bytes, 2u * payload.size());
}

TEST(ServiceTest, OversizedRequestRejectsEvenUnderBlockPolicy) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha",
                     .quota_bytes_per_sec = 1000,
                     .quota_burst_bytes = 100,
                     .on_pressure = BackpressurePolicy::kBlock});
  // 4096 bytes can never fit a 100-byte burst; blocking would hang forever,
  // so the service fails fast despite the kBlock policy.
  ServiceResponse response =
      service.SubmitCompress("alpha", MakePayload(512)).get();
  EXPECT_EQ(response.status, ServiceStatus::kRejectedQuota);
}

TEST(ServiceTest, BlockPolicyUnblocksWhenVirtualTimeRefillsQuota) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha",
                     .quota_bytes_per_sec = 1000,
                     .quota_burst_bytes = 4096,
                     .on_pressure = BackpressurePolicy::kBlock});

  const Bytes payload = MakePayload(512);  // 4096 bytes
  auto first = service.SubmitCompress("alpha", payload);  // drains the bucket
  std::future<ServiceResponse> second;
  std::thread submitter([&] {
    // Blocks inside Submit until the bucket refills (or, if the advance
    // below lands first, admits immediately — both are correct).
    second = service.SubmitCompress("alpha", payload);
  });
  clock.Advance(4'096'000'000ULL);  // 4096 bytes at 1000 B/s
  submitter.join();
  service.Flush();
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
  EXPECT_EQ(service.Stats().rejected_quota, 0u);
}

TEST(ServiceTest, InflightRejectPolicyFailsFastAndRecovers) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha",
                     .max_inflight = 1,
                     .on_pressure = BackpressurePolicy::kReject});

  const Bytes payload = MakePayload(64);
  auto first = service.SubmitCompress("alpha", payload);
  ServiceResponse rejected = service.SubmitCompress("alpha", payload).get();
  EXPECT_EQ(rejected.status, ServiceStatus::kRejectedInflight);
  EXPECT_GT(rejected.retry_after_ns, 0u);
  service.Flush();
  EXPECT_TRUE(first.get().ok());
  auto third = service.SubmitCompress("alpha", payload);  // capacity is back
  service.Flush();
  EXPECT_TRUE(third.get().ok());
}

TEST(ServiceTest, BlockPolicyUnblocksWhenACompletionFreesInflight) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha",
                     .max_inflight = 1,
                     .on_pressure = BackpressurePolicy::kBlock});

  const Bytes payload = MakePayload(64);
  auto first = service.SubmitCompress("alpha", payload);
  std::future<ServiceResponse> second;
  std::thread submitter([&] {
    second = service.SubmitCompress("alpha", payload);
  });
  // Completing the first request is what frees in-flight capacity; the
  // blocked submitter wakes on the completion notification.
  service.Flush();
  submitter.join();
  service.Flush();  // the second request was queued after the first flush
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
}

TEST(ServiceTest, DrainTenantCancelsQueuedRequests) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha"});
  service.AddTenant({.name = "beta"});

  const Bytes payload = MakePayload(64);
  std::vector<std::future<ServiceResponse>> doomed;
  for (int i = 0; i < 3; ++i) {
    doomed.push_back(service.SubmitCompress("alpha", payload));
  }
  auto survivor = service.SubmitCompress("beta", payload);

  EXPECT_EQ(service.DrainTenant("alpha"), 3u);
  for (auto& future : doomed) {
    EXPECT_EQ(future.get().status, ServiceStatus::kCancelled);
  }
  // Other tenants' requests in the same batch are untouched.
  EXPECT_TRUE(survivor.get().ok());
  // The drained tenant is immediately usable again.
  auto next = service.SubmitCompress("alpha", payload);
  service.Flush();
  EXPECT_TRUE(next.get().ok());
  const TenantStatsSnapshot stats = service.TenantStats("alpha");
  EXPECT_EQ(stats.cancelled, 3u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ServiceTest, CorruptStreamResolvesAsErrorResponse) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha"});

  Bytes garbage(64, std::byte{0x5a});
  auto future = service.SubmitDecompress("alpha", std::move(garbage));
  service.Flush();
  ServiceResponse response = future.get();
  EXPECT_EQ(response.status, ServiceStatus::kError);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(service.TenantStats("alpha").failed, 1u);
}

TEST(ServiceTest, TenantValidation) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha"});
  EXPECT_THROW(service.AddTenant({.name = "alpha"}), InvalidArgumentError);
  EXPECT_THROW(service.AddTenant({.name = ""}), InvalidArgumentError);
  EXPECT_THROW(service.AddTenant({.name = "bad name"}), InvalidArgumentError);
  EXPECT_THROW(service.AddTenant({.name = "quote\"y"}), InvalidArgumentError);
  EXPECT_THROW(service.AddTenant({.name = "b", .cache_share = 1.5}),
               InvalidArgumentError);
  EXPECT_THROW(service.SubmitCompress("ghost", MakePayload(8)),
               InvalidArgumentError);
  // Cumulative cache shares cannot exceed the budget.
  service.AddTenant({.name = "c", .cache_share = 0.7});
  EXPECT_THROW(service.AddTenant({.name = "d", .cache_share = 0.4}),
               InvalidArgumentError);
}

TEST(ServiceTest, DestructorDrainsPendingRequestsToCompletion) {
  VirtualClock clock;
  const Bytes payload = MakePayload(128);
  std::future<ServiceResponse> future;
  {
    ServiceOptions options;
    options.batch = ManualFlushBatching();
    options.clock = &clock;
    CompressionService service(options);
    service.AddTenant({.name = "alpha"});
    future = service.SubmitCompress("alpha", payload);
    // No Flush: the destructor must drain the queue, not strand the item.
  }
  EXPECT_TRUE(future.get().ok());
}

TEST(ServiceTest, TenantCachePartitionServesRepeatedDecompress) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  options.cache_capacity_bytes = 8 * 1024 * 1024;
  CompressionService service(options);
  service.AddTenant({.name = "hot", .cache_share = 0.5});
  service.AddTenant({.name = "cold", .cache_share = 0.5});

  const Bytes payload = MakePayload(2048);
  auto compressed = service.SubmitCompress("hot", payload);
  service.Flush();
  const Bytes stream = compressed.get().payload;
  ASSERT_FALSE(stream.empty());

  for (int round = 0; round < 3; ++round) {
    auto future = service.SubmitDecompress("hot", stream);
    service.Flush();
    ASSERT_TRUE(future.get().ok());
  }
  const TenantStatsSnapshot hot = service.TenantStats("hot");
  EXPECT_GT(hot.cache_hits, 0u);
  // The partition is private: the other tenant's cache saw none of it.
  const TenantStatsSnapshot cold = service.TenantStats("cold");
  EXPECT_EQ(cold.cache_hits + cold.cache_misses, 0u);
}

TEST(ServiceTest, StatsCountAdmittedBytesAndBatches) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.batch.flush_requests = 2;
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha"});

  const Bytes payload = MakePayload(64);  // 512 bytes
  auto a = service.SubmitCompress("alpha", payload);
  auto b = service.SubmitCompress("alpha", payload);
  EXPECT_TRUE(a.get().ok());
  EXPECT_TRUE(b.get().ok());
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.admitted_requests, 2u);
  EXPECT_EQ(stats.admitted_bytes, 2u * payload.size());
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.batch.items, 2u);
}

TEST(ServiceTest, TelemetryExportsServiceSeries) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "telemetry_tenant"});
  auto future = service.SubmitCompress("telemetry_tenant", MakePayload(64));
  service.Flush();
  ASSERT_TRUE(future.get().ok());
#if PRIMACY_TELEMETRY_ENABLED
  const std::string rendered =
      telemetry::MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(rendered.find("primacy_service_requests_total"), std::string::npos);
  EXPECT_NE(rendered.find("tenant=\"telemetry_tenant\""), std::string::npos);
  EXPECT_NE(rendered.find("primacy_service_batch_fill_ratio"),
            std::string::npos);
#endif
}

// Delegates to a VirtualClock but flags the first no-deadline WaitUntil
// made by one watched thread — the wait a submitter blocked on in-flight
// capacity performs. (The deadline alone is not enough: the batch flusher
// also waits without a deadline while idle.) Seeing the flag proves the
// watched submitter is inside Submit, which makes destroying the service
// out from under it race-free (the destructor's documented wake-up path).
class WaitObservingClock final : public ServiceClock {
 public:
  explicit WaitObservingClock(VirtualClock* inner) : inner_(inner) {}
  std::uint64_t NowNs() const override { return inner_->NowNs(); }
  void RegisterWaiter(primacy::Mutex* mutex, primacy::CondVar* cv) override {
    inner_->RegisterWaiter(mutex, cv);
  }
  void UnregisterWaiter(primacy::CondVar* cv) override {
    inner_->UnregisterWaiter(cv);
  }
  void WaitUntil(primacy::Mutex& mu, primacy::CondVar& cv,
                 std::uint64_t deadline_ns) override PRIMACY_REQUIRES(mu) {
    if (deadline_ns == kNoDeadlineNs &&
        std::this_thread::get_id() == watched_thread.load()) {
      watched_thread_waiting.store(true, std::memory_order_release);
    }
    inner_->WaitUntil(mu, cv, deadline_ns);
  }

  std::atomic<std::thread::id> watched_thread{};
  std::atomic<bool> watched_thread_waiting{false};

 private:
  VirtualClock* inner_;
};

TEST(ServiceTest, RejectionReasonLabelSetIsPinned) {
#if PRIMACY_TELEMETRY_ENABLED
  telemetry::MetricsRegistry::Global().ResetAllForTest();
#endif
  VirtualClock virtual_clock;
  WaitObservingClock clock(&virtual_clock);
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  {
    auto service = std::make_unique<CompressionService>(options);
    service->AddTenant({.name = "alpha",
                        .quota_bytes_per_sec = 1000,
                        .quota_burst_bytes = 600,
                        .max_inflight = 1,
                        .on_pressure = BackpressurePolicy::kReject});
    service->AddTenant({.name = "blocked",
                        .max_inflight = 1,
                        .on_pressure = BackpressurePolicy::kBlock});

    const Bytes payload = MakePayload(64);  // 512 bytes, fits the burst once
    auto first = service->SubmitCompress("alpha", payload);
    EXPECT_EQ(service->SubmitCompress("alpha", payload).get().status,
              ServiceStatus::kRejectedInflight);
    service->Flush();
    EXPECT_TRUE(first.get().ok());
    // Capacity is back but the bucket is not: 88 of 600 burst bytes remain
    // and virtual time never advances, so this rejection is quota-reasoned.
    EXPECT_EQ(service->SubmitCompress("alpha", payload).get().status,
              ServiceStatus::kRejectedQuota);

    // A submitter blocked on in-flight capacity when the service shuts
    // down resolves kShuttingDown — the "draining" reason.
    auto held = service->SubmitCompress("blocked", payload);
    std::future<ServiceResponse> drained;
    std::thread submitter([&] {
      clock.watched_thread.store(std::this_thread::get_id());
      drained = service->SubmitCompress("blocked", payload);
    });
    while (!clock.watched_thread_waiting.load(std::memory_order_acquire)) {
      std::this_thread::yield();  // until the submitter is provably blocked
    }
    service.reset();  // wakes the blocked submitter: stopping wins
    submitter.join();
    EXPECT_EQ(drained.get().status, ServiceStatus::kShuttingDown);
    EXPECT_TRUE(held.get().ok());
  }
#if PRIMACY_TELEMETRY_ENABLED
  auto& registry = telemetry::MetricsRegistry::Global();
  EXPECT_EQ(registry
                .GetCounter("primacy_service_rejections_total",
                            "tenant=\"alpha\",reason=\"inflight\"")
                .Value(),
            1u);
  EXPECT_EQ(registry
                .GetCounter("primacy_service_rejections_total",
                            "tenant=\"alpha\",reason=\"quota\"")
                .Value(),
            1u);
  EXPECT_EQ(registry
                .GetCounter("primacy_service_rejections_total",
                            "tenant=\"blocked\",reason=\"draining\"")
                .Value(),
            1u);
  // The label set is closed: every reason in the exposition is one of the
  // three values dashboards alert on. Growing it is an interface change.
  const std::string rendered = registry.RenderPrometheus();
  std::size_t pos = 0;
  while ((pos = rendered.find("reason=\"", pos)) != std::string::npos) {
    pos += std::strlen("reason=\"");
    const std::size_t end = rendered.find('"', pos);
    ASSERT_NE(end, std::string::npos);
    const std::string reason = rendered.substr(pos, end - pos);
    EXPECT_TRUE(reason == "quota" || reason == "inflight" ||
                reason == "draining")
        << "unexpected rejection reason label: " << reason;
  }
#endif
}

TEST(ServiceTest, SlowRequestWatchdogCapturesSloBreaches) {
#if PRIMACY_TELEMETRY_ENABLED
  telemetry::MetricsRegistry::Global().ResetAllForTest();
#endif
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  options.slow_request_slo_ns = 1000;
  options.slow_request_log_capacity = 2;
  CompressionService service(options);
  service.AddTenant({.name = "alpha"});

  const Bytes payload = MakePayload(64);
  // Queued for five SLOs of virtual time before the flush: a breach.
  auto slow = service.SubmitCompress("alpha", payload);
  clock.Advance(5000);
  service.Flush();
  ASSERT_TRUE(slow.get().ok());
  std::vector<SlowRequestEvent> events = service.SlowRequests();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tenant, "alpha");
  EXPECT_EQ(events[0].type, "compress");
  EXPECT_EQ(events[0].status, ServiceStatus::kOk);
  EXPECT_EQ(events[0].bytes, payload.size());
  EXPECT_GE(events[0].latency_ns, 5000u);
  EXPECT_EQ(events[0].slo_ns, 1000u);

  // A request completing within the SLO is not captured.
  auto fast = service.SubmitCompress("alpha", payload);
  service.Flush();
  ASSERT_TRUE(fast.get().ok());
  EXPECT_EQ(service.SlowRequests().size(), 1u);

  // The log is bounded: three more breaches, capacity two, newest win.
  for (int i = 0; i < 3; ++i) {
    auto breach = service.SubmitDecompress("alpha", MakePayload(8));
    clock.Advance(2000);
    service.Flush();
    EXPECT_FALSE(breach.get().ok());  // raw doubles are not a stream
  }
  events = service.SlowRequests();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "decompress");
  EXPECT_EQ(events[1].type, "decompress");
  EXPECT_EQ(events[1].status, ServiceStatus::kError);

#if PRIMACY_TELEMETRY_ENABLED
  EXPECT_EQ(telemetry::MetricsRegistry::Global()
                .GetCounter("primacy_slow_requests_total",
                            "tenant=\"alpha\"")
                .Value(),
            4u);
#endif
}

TEST(ServiceTest, WatchdogDisabledByDefault) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "alpha"});
  auto future = service.SubmitCompress("alpha", MakePayload(64));
  clock.Advance(1'000'000'000);  // a full second in queue: nobody cares
  service.Flush();
  EXPECT_TRUE(future.get().ok());
  EXPECT_TRUE(service.SlowRequests().empty());
}

TEST(ServiceTest, StatusJsonRendersTenantsQueueAndSlowRequests) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  options.slow_request_slo_ns = 1000;
  CompressionService service(options);
  service.AddTenant({.name = "alpha"});
  service.AddTenant({.name = "beta", .quota_bytes_per_sec = 1000,
                     .quota_burst_bytes = 4096});

  auto slow = service.SubmitCompress("alpha", MakePayload(64));
  clock.Advance(5000);
  service.Flush();
  ASSERT_TRUE(slow.get().ok());

  const std::string json = service.StatusJson();
  EXPECT_NE(json.find("\"tenants\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"slow_requests\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"compress\""), std::string::npos);
  EXPECT_NE(json.find("\"result\": \"ok\""), std::string::npos);
  // Unlimited tenants omit the quota field; limited tenants render it.
  EXPECT_NE(json.find("\"quota_available_bytes\""), std::string::npos);
  // Structural sanity: balanced braces and brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ServiceTest, CompressMemoServesRepeatedPayloadsByteIdentical) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  TenantConfig config;
  config.name = "memoized";
  config.memo_bytes = 1 << 20;
  service.AddTenant(config);

  PrimacyOptions direct_options;
  direct_options.threads = 1;
  const Bytes payload = MakePayload(512);
  const Bytes expected = PrimacyCompressor(direct_options).CompressBytes(payload);
  for (int round = 0; round < 3; ++round) {
    auto future = service.SubmitCompress("memoized", payload);
    service.Flush();
    ServiceResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.error;
    // Hits must be byte-identical to the miss (and to the direct call) —
    // the memo may change where the stream comes from, never what it is.
    EXPECT_EQ(response.payload, expected) << "round " << round;
  }
  const TenantStatsSnapshot stats = service.TenantStats("memoized");
  EXPECT_EQ(stats.memo_hits, 2u);  // first round populated, two served
  EXPECT_GT(stats.memo_bytes_used, payload.size());
}

TEST(ServiceTest, MemoOffByDefaultAndBudgetTooSmallToFit) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  service.AddTenant({.name = "plain"});
  TenantConfig tiny;
  tiny.name = "tiny";
  tiny.memo_bytes = 16;  // smaller than any (input, stream) pair
  service.AddTenant(tiny);

  const Bytes payload = MakePayload(256);
  for (const char* tenant : {"plain", "tiny"}) {
    for (int round = 0; round < 2; ++round) {
      auto future = service.SubmitCompress(tenant, payload);
      service.Flush();
      ASSERT_TRUE(future.get().ok());
    }
    const TenantStatsSnapshot stats = service.TenantStats(tenant);
    EXPECT_EQ(stats.memo_hits, 0u) << tenant;
    EXPECT_EQ(stats.memo_bytes_used, 0u) << tenant;
  }
}

TEST(ServiceTest, MemoEvictsOldestEntryWhenOverBudget) {
  VirtualClock clock;
  ServiceOptions options;
  options.batch = ManualFlushBatching();
  options.clock = &clock;
  CompressionService service(options);
  const Bytes a = MakePayload(512, 1.0);
  const Bytes b = MakePayload(512, 2.0);
  PrimacyOptions direct_options;
  direct_options.threads = 1;
  const PrimacyCompressor direct(direct_options);
  // Budget fits exactly one entry, so inserting `b` must evict `a`.
  TenantConfig config;
  config.name = "one_slot";
  config.memo_bytes =
      a.size() + direct.CompressBytes(a).size() + 64 + 512;
  service.AddTenant(config);

  auto submit = [&](const Bytes& payload) {
    auto future = service.SubmitCompress("one_slot", payload);
    service.Flush();
    ServiceResponse response = future.get();
    EXPECT_TRUE(response.ok()) << response.error;
    return response.payload;
  };
  submit(a);                                       // populate a
  EXPECT_EQ(submit(a), direct.CompressBytes(a));   // hit
  submit(b);                                       // evicts a
  EXPECT_EQ(submit(b), direct.CompressBytes(b));   // hit on b
  EXPECT_EQ(submit(a), direct.CompressBytes(a));   // miss again: recomputed
  const TenantStatsSnapshot stats = service.TenantStats("one_slot");
  EXPECT_EQ(stats.memo_hits, 2u);
  EXPECT_LE(stats.memo_bytes_used, config.memo_bytes);
}

}  // namespace
}  // namespace primacy::service
