// VirtualClock semantics: deterministic time, race-free timed wakeups.
// Nothing in this file sleeps — every blocking wait is resolved by an
// explicit Advance or notify, which is the whole point of the clock seam.
#include "service/clock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace primacy::service {
namespace {

TEST(ServiceVirtualClock, StartsAtEpochAndAdvances) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowNs(), 100u);
  EXPECT_EQ(clock.Advance(50), 150u);
  EXPECT_EQ(clock.NowNs(), 150u);
}

TEST(ServiceVirtualClock, AdvanceToNeverMovesBackwards) {
  VirtualClock clock;
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.NowNs(), 1000u);
  clock.AdvanceTo(500);  // no-op: time is monotonic
  EXPECT_EQ(clock.NowNs(), 1000u);
}

TEST(ServiceVirtualClock, WaitUntilPastDeadlineReturnsWithoutBlocking) {
  VirtualClock clock(10);
  primacy::Mutex mu;
  primacy::CondVar cv;
  clock.RegisterWaiter(&mu, &cv);
  {
    primacy::MutexLock lock(mu);
    clock.WaitUntil(mu, cv, 10);  // deadline == now: no wait
    clock.WaitUntil(mu, cv, 5);   // deadline in the past: no wait
  }
  clock.UnregisterWaiter(&cv);
}

// A zero-length Advance is a legal no-op: time stays put and a wait whose
// deadline equals the unmoved now returns without blocking (nobody will
// ever notify, so returning IS the assertion).
TEST(ServiceVirtualClock, ZeroDurationAdvanceAndWaitAtNow) {
  VirtualClock clock(500);
  primacy::Mutex mu;
  primacy::CondVar cv;
  clock.RegisterWaiter(&mu, &cv);
  EXPECT_EQ(clock.Advance(0), 500u);
  EXPECT_EQ(clock.NowNs(), 500u);
  {
    primacy::MutexLock lock(mu);
    clock.WaitUntil(mu, cv, 500);
  }
  EXPECT_EQ(clock.NowNs(), 500u);
  clock.UnregisterWaiter(&cv);
}

// Deadlines that expired before the wait even started must return on the
// calling thread with no notify involved — if WaitUntil parked, this test
// would hang forever (there is no other thread).
TEST(ServiceVirtualClock, AlreadyPastDeadlineNeverBlocks) {
  VirtualClock clock;
  clock.AdvanceTo(10'000);
  primacy::Mutex mu;
  primacy::CondVar cv;
  clock.RegisterWaiter(&mu, &cv);
  {
    primacy::MutexLock lock(mu);
    clock.WaitUntil(mu, cv, 9'999);  // just expired
    clock.WaitUntil(mu, cv, 1);      // long expired
    clock.WaitUntil(mu, cv, 0);      // the epoch itself
  }
  EXPECT_EQ(clock.NowNs(), 10'000u);
  clock.UnregisterWaiter(&cv);
}

// Two waiters parked on the SAME virtual deadline: one Advance must wake
// both (each observes now == deadline), and the test pins a deterministic
// completion order with a gate — B re-parks on its condvar until A has
// recorded itself — so the asserted order never depends on scheduling.
TEST(ServiceVirtualClock, TwoWaitersSameDeadlineOrderingPinned) {
  VirtualClock clock;
  constexpr std::uint64_t kDeadline = 100;
  struct Waiter {
    primacy::Mutex mu;
    primacy::CondVar cv;
  };
  Waiter a;
  Waiter b;
  clock.RegisterWaiter(&a.mu, &a.cv);
  clock.RegisterWaiter(&b.mu, &b.cv);

  primacy::Mutex order_mu;
  std::vector<char> order;          // appended under order_mu
  std::uint64_t a_woke_at = 0;      // written once by A before the gate opens
  std::uint64_t b_woke_at = 0;      // written once by B after joining
  bool a_recorded = false;          // B's gate; guarded by b.mu

  std::thread ta([&] {
    primacy::MutexLock lock(a.mu);
    while (clock.NowNs() < kDeadline) {
      clock.WaitUntil(a.mu, a.cv, kDeadline);
    }
    a_woke_at = clock.NowNs();
    {
      primacy::MutexLock order_lock(order_mu);
      order.push_back('a');
    }
    {
      primacy::MutexLock gate_lock(b.mu);
      a_recorded = true;
    }
    b.cv.NotifyAll();
  });
  std::thread tb([&] {
    primacy::MutexLock lock(b.mu);
    while (clock.NowNs() < kDeadline) {
      clock.WaitUntil(b.mu, b.cv, kDeadline);
    }
    b_woke_at = clock.NowNs();
    // Gate: park (no deadline, pure notify wait) until A has recorded, so
    // the order below is pinned without busy-waiting.
    while (!a_recorded) {
      clock.WaitUntil(b.mu, b.cv, kNoDeadlineNs);
    }
    primacy::MutexLock order_lock(order_mu);
    order.push_back('b');
  });

  clock.Advance(kDeadline);
  ta.join();
  tb.join();
  EXPECT_EQ(a_woke_at, kDeadline);
  EXPECT_EQ(b_woke_at, kDeadline);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'a');
  EXPECT_EQ(order[1], 'b');
  clock.UnregisterWaiter(&a.cv);
  clock.UnregisterWaiter(&b.cv);
}

TEST(ServiceVirtualClock, AdvanceWakesWaiterExactlyAtDeadline) {
  VirtualClock clock;
  primacy::Mutex mu;
  primacy::CondVar cv;
  clock.RegisterWaiter(&mu, &cv);
  std::atomic<std::uint64_t> woken_at{0};
  std::thread waiter([&] {
    primacy::MutexLock lock(mu);
    while (clock.NowNs() < 1000) {
      clock.WaitUntil(mu, cv, 1000);
    }
    woken_at.store(clock.NowNs());
  });
  clock.Advance(999);  // below the deadline: the waiter re-waits
  clock.Advance(1);    // crosses it: the waiter must wake and exit
  waiter.join();
  EXPECT_EQ(woken_at.load(), 1000u);
  clock.UnregisterWaiter(&cv);
}

// The no-lost-wakeup property under contention: one advancing thread, many
// waiters with distinct deadlines. A single lost notify deadlocks the test
// (a waiter would never observe its deadline), so completion IS the assert.
TEST(ServiceVirtualClock, ManyWaitersAllObserveTheirDeadlines) {
  VirtualClock clock;
  constexpr std::size_t kWaiters = 8;
  constexpr std::uint64_t kStep = 100;
  struct Waiter {
    primacy::Mutex mu;
    primacy::CondVar cv;
  };
  std::vector<std::unique_ptr<Waiter>> waiters;
  for (std::size_t i = 0; i < kWaiters; ++i) {
    waiters.push_back(std::make_unique<Waiter>());
    clock.RegisterWaiter(&waiters.back()->mu, &waiters.back()->cv);
  }
  std::vector<std::uint64_t> woken_at(kWaiters, 0);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&, i] {
      const std::uint64_t deadline = (i + 1) * kStep;
      Waiter& w = *waiters[i];
      primacy::MutexLock lock(w.mu);
      while (clock.NowNs() < deadline) {
        clock.WaitUntil(w.mu, w.cv, deadline);
      }
      woken_at[i] = clock.NowNs();
    });
  }
  for (std::size_t step = 0; step < kWaiters; ++step) {
    clock.Advance(kStep);
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kWaiters; ++i) {
    EXPECT_GE(woken_at[i], (i + 1) * kStep) << "waiter " << i;
  }
  for (auto& w : waiters) clock.UnregisterWaiter(&w->cv);
}

TEST(ServiceVirtualClock, NoDeadlineWaitIgnoresTimeAndWakesOnNotify) {
  VirtualClock clock;
  primacy::Mutex mu;
  primacy::CondVar cv;
  clock.RegisterWaiter(&mu, &cv);
  bool ready = false;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    primacy::MutexLock lock(mu);
    while (!ready) {
      clock.WaitUntil(mu, cv, kNoDeadlineNs);
    }
    woke.store(true);
  });
  // Advancing wakes the waiter spuriously; its predicate loop re-waits.
  clock.Advance(1'000'000);
  {
    primacy::MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(woke.load());
  clock.UnregisterWaiter(&cv);
}

TEST(ServiceSystemClock, MonotonicAndPastDeadlineReturns) {
  SystemServiceClock& clock = SystemServiceClock::Instance();
  const std::uint64_t a = clock.NowNs();
  const std::uint64_t b = clock.NowNs();
  EXPECT_LE(a, b);
  primacy::Mutex mu;
  primacy::CondVar cv;
  primacy::MutexLock lock(mu);
  clock.WaitUntil(mu, cv, 0);  // epoch is long past: returns immediately
}

}  // namespace
}  // namespace primacy::service
