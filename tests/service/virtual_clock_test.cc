// VirtualClock semantics: deterministic time, race-free timed wakeups.
// Nothing in this file sleeps — every blocking wait is resolved by an
// explicit Advance or notify, which is the whole point of the clock seam.
#include "service/clock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace primacy::service {
namespace {

TEST(ServiceVirtualClock, StartsAtEpochAndAdvances) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowNs(), 100u);
  EXPECT_EQ(clock.Advance(50), 150u);
  EXPECT_EQ(clock.NowNs(), 150u);
}

TEST(ServiceVirtualClock, AdvanceToNeverMovesBackwards) {
  VirtualClock clock;
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.NowNs(), 1000u);
  clock.AdvanceTo(500);  // no-op: time is monotonic
  EXPECT_EQ(clock.NowNs(), 1000u);
}

TEST(ServiceVirtualClock, WaitUntilPastDeadlineReturnsWithoutBlocking) {
  VirtualClock clock(10);
  std::mutex mu;
  std::condition_variable cv;
  clock.RegisterWaiter(&mu, &cv);
  std::unique_lock<std::mutex> lock(mu);
  clock.WaitUntil(lock, cv, 10);  // deadline == now: no wait
  clock.WaitUntil(lock, cv, 5);   // deadline in the past: no wait
  lock.unlock();
  clock.UnregisterWaiter(&cv);
}

TEST(ServiceVirtualClock, AdvanceWakesWaiterExactlyAtDeadline) {
  VirtualClock clock;
  std::mutex mu;
  std::condition_variable cv;
  clock.RegisterWaiter(&mu, &cv);
  std::atomic<std::uint64_t> woken_at{0};
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lock(mu);
    while (clock.NowNs() < 1000) {
      clock.WaitUntil(lock, cv, 1000);
    }
    woken_at.store(clock.NowNs());
  });
  clock.Advance(999);  // below the deadline: the waiter re-waits
  clock.Advance(1);    // crosses it: the waiter must wake and exit
  waiter.join();
  EXPECT_EQ(woken_at.load(), 1000u);
  clock.UnregisterWaiter(&cv);
}

// The no-lost-wakeup property under contention: one advancing thread, many
// waiters with distinct deadlines. A single lost notify deadlocks the test
// (a waiter would never observe its deadline), so completion IS the assert.
TEST(ServiceVirtualClock, ManyWaitersAllObserveTheirDeadlines) {
  VirtualClock clock;
  constexpr std::size_t kWaiters = 8;
  constexpr std::uint64_t kStep = 100;
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
  };
  std::vector<std::unique_ptr<Waiter>> waiters;
  for (std::size_t i = 0; i < kWaiters; ++i) {
    waiters.push_back(std::make_unique<Waiter>());
    clock.RegisterWaiter(&waiters.back()->mu, &waiters.back()->cv);
  }
  std::vector<std::uint64_t> woken_at(kWaiters, 0);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&, i] {
      const std::uint64_t deadline = (i + 1) * kStep;
      Waiter& w = *waiters[i];
      std::unique_lock<std::mutex> lock(w.mu);
      while (clock.NowNs() < deadline) {
        clock.WaitUntil(lock, w.cv, deadline);
      }
      woken_at[i] = clock.NowNs();
    });
  }
  for (std::size_t step = 0; step < kWaiters; ++step) {
    clock.Advance(kStep);
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kWaiters; ++i) {
    EXPECT_GE(woken_at[i], (i + 1) * kStep) << "waiter " << i;
  }
  for (auto& w : waiters) clock.UnregisterWaiter(&w->cv);
}

TEST(ServiceVirtualClock, NoDeadlineWaitIgnoresTimeAndWakesOnNotify) {
  VirtualClock clock;
  std::mutex mu;
  std::condition_variable cv;
  clock.RegisterWaiter(&mu, &cv);
  bool ready = false;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lock(mu);
    while (!ready) {
      clock.WaitUntil(lock, cv, kNoDeadlineNs);
    }
    woke.store(true);
  });
  // Advancing wakes the waiter spuriously; its predicate loop re-waits.
  clock.Advance(1'000'000);
  {
    std::lock_guard<std::mutex> lock(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_TRUE(woke.load());
  clock.UnregisterWaiter(&cv);
}

TEST(ServiceSystemClock, MonotonicAndPastDeadlineReturns) {
  SystemServiceClock& clock = SystemServiceClock::Instance();
  const std::uint64_t a = clock.NowNs();
  const std::uint64_t b = clock.NowNs();
  EXPECT_LE(a, b);
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lock(mu);
  clock.WaitUntil(lock, cv, 0);  // epoch is long past: returns immediately
}

}  // namespace
}  // namespace primacy::service
