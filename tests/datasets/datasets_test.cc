#include "datasets/datasets.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/byte_matrix.h"
#include "util/error.h"
#include "util/stats.h"

namespace primacy {
namespace {

TEST(DatasetsTest, ExactlyTwentyProfilesInTableOrder) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 20u);
  EXPECT_EQ(all.front().name, "gts_chkp_zeon");
  EXPECT_EQ(all.back().name, "obs_temp");
  std::set<std::string> names;
  for (const auto& spec : all) names.insert(spec.name);
  EXPECT_EQ(names.size(), 20u) << "duplicate dataset names";
}

TEST(DatasetsTest, FindDatasetLooksUpByName) {
  EXPECT_EQ(FindDataset("num_plasma").name, "num_plasma");
  EXPECT_THROW(FindDataset("nope"), InvalidArgumentError);
}

TEST(DatasetsTest, GenerationIsDeterministic) {
  const auto a = GenerateDatasetByName("gts_phi_l", 10000);
  const auto b = GenerateDatasetByName("gts_phi_l", 10000);
  EXPECT_EQ(a, b);
}

TEST(DatasetsTest, DifferentDatasetsDiffer) {
  const auto a = GenerateDatasetByName("gts_phi_l", 1000);
  const auto b = GenerateDatasetByName("gts_phi_nl", 1000);
  EXPECT_NE(a, b);
}

TEST(DatasetsTest, DefaultElementCountHonored) {
  const auto& spec = FindDataset("obs_info");
  EXPECT_EQ(GenerateDataset(spec).size(), spec.default_elements);
  EXPECT_EQ(GenerateDataset(spec, 123).size(), 123u);
}

TEST(DatasetsTest, AllValuesAreFiniteInSmoothDatasets) {
  for (const char* name : {"msg_bt", "msg_lu", "msg_sp", "msg_sweep3d",
                           "num_brain"}) {
    for (const double v : GenerateDatasetByName(name, 20000)) {
      ASSERT_TRUE(std::isfinite(v)) << name;
    }
  }
}

class DatasetDistribution : public ::testing::TestWithParam<int> {};

TEST_P(DatasetDistribution, HighOrderPairsAreFewAndSkewed) {
  const auto& spec = AllDatasets()[static_cast<std::size_t>(GetParam())];
  const auto values = GenerateDataset(spec, 100000);
  const Bytes rows = DoublesToBigEndianRows(values);
  const auto histogram = BytePairHistogram(rows, 8, 0);
  const std::size_t distinct = CountDistinct(histogram);
  // The paper: "the majority of our data had less than 2,000 unique
  // byte-sequences from the possible 65,536".
  EXPECT_LT(distinct, 4000u) << spec.name;
  // Ramp/smooth fields can sit inside one narrow value band (few distinct
  // pairs); the bit-pattern profiles must show a real population.
  EXPECT_GE(distinct, spec.kind == DatasetKind::kBitPattern ? 3u : 1u)
      << spec.name;
}

TEST_P(DatasetDistribution, MantissaTailIsHighEntropy) {
  const auto& spec = AllDatasets()[static_cast<std::size_t>(GetParam())];
  if (spec.name == "msg_sppm") {
    GTEST_SKIP() << "sppm is intentionally easy to compress";
  }
  const auto values = GenerateDataset(spec, 50000);
  const Bytes rows = DoublesToBigEndianRows(values);
  // Last mantissa byte: essentially uniform noise for hard datasets.
  const Bytes last = ExtractColumn(rows, 8, 7);
  EXPECT_GT(ByteEntropyBits(last), 6.0) << spec.name;
}

TEST_P(DatasetDistribution, ExponentBytesLowerEntropyThanMantissa) {
  const auto& spec = AllDatasets()[static_cast<std::size_t>(GetParam())];
  const auto values = GenerateDataset(spec, 50000);
  const Bytes rows = DoublesToBigEndianRows(values);
  const Bytes exponent = ExtractColumn(rows, 8, 0);
  const Bytes deep_mantissa = ExtractColumn(rows, 8, 6);
  EXPECT_LT(ByteEntropyBits(exponent), ByteEntropyBits(deep_mantissa) + 0.5)
      << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllTwenty, DatasetDistribution,
                         ::testing::Range(0, 20),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return AllDatasets()
                               [static_cast<std::size_t>(info.param)]
                                   .name;
                         });

TEST(DatasetsTest, Figure1ShapeHolds) {
  // High-order bit positions show strong bias (p near 1), deep mantissa bits
  // are near 0.5 — Figure 1's visual claim.
  for (const char* name :
       {"gts_phi_l", "num_plasma", "obs_temp", "msg_sweep3d"}) {
    const auto values = GenerateDatasetByName(name, 50000);
    const Bytes rows = DoublesToBigEndianRows(values);
    const auto probs = DominantBitProbability(rows, 8);
    EXPECT_GT(probs[1], 0.9) << name;   // top exponent bits
    EXPECT_LT(probs[60], 0.6) << name;  // deep mantissa bits
  }
}

TEST(DatasetsTest, SppmIsEasyToCompressProfile) {
  // Table III: msg_sppm compresses ~7x with plain zlib — the easy outlier.
  // Check strong short-range value redundancy, the property that drives it.
  const auto values = GenerateDatasetByName("msg_sppm", 50000);
  std::size_t near_repeats = 0;
  for (std::size_t i = 8; i < values.size(); ++i) {
    for (std::size_t back = 1; back <= 8; ++back) {
      if (values[i] == values[i - back]) {
        ++near_repeats;
        break;
      }
    }
  }
  EXPECT_GT(near_repeats, values.size() / 2);
}

TEST(PermuteElementsTest, PermutationIsDeterministicAndComplete) {
  const auto values = GenerateDatasetByName("obs_error", 10000);
  const auto a = PermuteElements(values, 42);
  const auto b = PermuteElements(values, 42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, values);
  auto sorted_a = a;
  auto sorted_v = values;
  std::sort(sorted_a.begin(), sorted_a.end());
  std::sort(sorted_v.begin(), sorted_v.end());
  EXPECT_EQ(sorted_a, sorted_v);
}

TEST(PermuteElementsTest, DifferentSeedsGiveDifferentOrders) {
  const auto values = GenerateDatasetByName("obs_error", 1000);
  EXPECT_NE(PermuteElements(values, 1), PermuteElements(values, 2));
}

}  // namespace
}  // namespace primacy
