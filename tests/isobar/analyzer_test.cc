#include "isobar/analyzer.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

/// Builds an N x width matrix where each column has a chosen character:
/// 'c' = constant, 's' = skewed, 'r' = uniform random.
Bytes BuildMatrix(std::size_t n, const std::string& columns,
                  std::uint64_t seed) {
  Rng rng(seed);
  Bytes rows(n * columns.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      std::byte value{};
      switch (columns[c]) {
        case 'c':
          value = 9_b;
          break;
        case 's':
          value = static_cast<std::byte>(rng.NextSkewed(256, 0.5));
          break;
        case 'r':
          value = static_cast<std::byte>(rng.NextBelow(256));
          break;
      }
      rows[i * columns.size() + c] = value;
    }
  }
  return rows;
}

TEST(AnalyzerTest, ClassifiesConstantColumnCompressible) {
  const Bytes rows = BuildMatrix(10000, "crr", 1);
  const IsobarPlan plan = AnalyzeColumns(rows, 3);
  ASSERT_EQ(plan.columns.size(), 3u);
  EXPECT_TRUE(plan.columns[0].compressible);
  EXPECT_DOUBLE_EQ(plan.columns[0].entropy_bits, 0.0);
  EXPECT_DOUBLE_EQ(plan.columns[0].top_frequency, 1.0);
}

TEST(AnalyzerTest, ClassifiesRandomColumnsIncompressible) {
  const Bytes rows = BuildMatrix(20000, "rrr", 2);
  const IsobarPlan plan = AnalyzeColumns(rows, 3);
  for (const ColumnAnalysis& col : plan.columns) {
    EXPECT_FALSE(col.compressible) << "column " << col.column;
    EXPECT_GT(col.entropy_bits, 7.8);
  }
}

TEST(AnalyzerTest, ClassifiesSkewedColumnCompressible) {
  const Bytes rows = BuildMatrix(20000, "srs", 3);
  const IsobarPlan plan = AnalyzeColumns(rows, 3);
  EXPECT_TRUE(plan.columns[0].compressible);
  EXPECT_FALSE(plan.columns[1].compressible);
  EXPECT_TRUE(plan.columns[2].compressible);
  EXPECT_NEAR(plan.CompressibleFraction(), 2.0 / 3.0, 1e-12);
}

TEST(AnalyzerTest, ColumnListsPartitionAllColumns) {
  const Bytes rows = BuildMatrix(5000, "scrsrc", 4);
  const IsobarPlan plan = AnalyzeColumns(rows, 6);
  const auto comp = plan.CompressibleColumns();
  const auto raw = plan.IncompressibleColumns();
  EXPECT_EQ(comp.size() + raw.size(), 6u);
  for (const std::size_t c : comp) {
    EXPECT_TRUE(plan.columns[c].compressible);
  }
  for (const std::size_t c : raw) {
    EXPECT_FALSE(plan.columns[c].compressible);
  }
}

TEST(AnalyzerTest, EmptyMatrixYieldsIncompressibleColumns) {
  const IsobarPlan plan = AnalyzeColumns({}, 4);
  EXPECT_EQ(plan.columns.size(), 4u);
  for (const auto& col : plan.columns) EXPECT_FALSE(col.compressible);
}

TEST(AnalyzerTest, SamplingMatchesFullScanOnHomogeneousData) {
  // Sampled verdicts must agree with a full scan when the column is
  // homogeneous along its length.
  const Bytes rows = BuildMatrix(100000, "sr", 5);
  IsobarOptions sampled;
  sampled.sample_bytes = 1024;
  IsobarOptions full;
  full.sample_bytes = 100000;
  const IsobarPlan plan_sampled = AnalyzeColumns(rows, 2, sampled);
  const IsobarPlan plan_full = AnalyzeColumns(rows, 2, full);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(plan_sampled.columns[c].compressible,
              plan_full.columns[c].compressible);
  }
}

TEST(AnalyzerTest, ThresholdsAreRespected) {
  const Bytes rows = BuildMatrix(20000, "s", 6);
  IsobarOptions strict;
  strict.entropy_threshold_bits = 0.5;   // almost nothing passes
  strict.top_frequency_threshold = 1.1;  // disabled
  const IsobarPlan plan = AnalyzeColumns(rows, 1, strict);
  EXPECT_FALSE(plan.columns[0].compressible);

  IsobarOptions lax;
  lax.entropy_threshold_bits = 8.1;  // everything passes
  const IsobarPlan plan2 = AnalyzeColumns(rows, 1, lax);
  EXPECT_TRUE(plan2.columns[0].compressible);
}

TEST(AnalyzerTest, ValidatesArguments) {
  EXPECT_THROW(AnalyzeColumns(Bytes(10), 0), InvalidArgumentError);
  EXPECT_THROW(AnalyzeColumns(Bytes(10), 3), InvalidArgumentError);
  IsobarOptions bad;
  bad.sample_bytes = 0;
  EXPECT_THROW(AnalyzeColumns(Bytes(8), 2, bad), InvalidArgumentError);
}

TEST(PlanSerializationTest, RoundTripsVerdicts) {
  const Bytes rows = BuildMatrix(5000, "scrsrcrrr", 7);
  const IsobarPlan plan = AnalyzeColumns(rows, 9);
  const IsobarPlan restored = DeserializePlan(SerializePlan(plan));
  ASSERT_EQ(restored.columns.size(), plan.columns.size());
  EXPECT_EQ(restored.width, plan.width);
  for (std::size_t c = 0; c < plan.columns.size(); ++c) {
    EXPECT_EQ(restored.columns[c].compressible, plan.columns[c].compressible);
  }
}

TEST(PlanSerializationTest, RejectsInconsistentHeader) {
  Bytes bad;
  bad.push_back(2_b);   // width 2
  bad.push_back(5_b);   // 5 columns > width
  bad.push_back(0_b);
  EXPECT_THROW(DeserializePlan(bad), CorruptStreamError);
}

}  // namespace
}  // namespace primacy
