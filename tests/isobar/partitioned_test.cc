#include "isobar/partitioned_codec.h"

#include <gtest/gtest.h>

#include "deflate/deflate.h"
#include "lzfast/lzfast.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

Bytes MixedMatrix(std::size_t n, std::uint64_t seed) {
  // 6-byte elements: 2 skewed columns, 4 random (a mantissa-like profile).
  Rng rng(seed);
  Bytes rows(n * 6);
  for (std::size_t i = 0; i < n; ++i) {
    rows[i * 6 + 0] = static_cast<std::byte>(rng.NextSkewed(16, 0.5));
    rows[i * 6 + 1] = static_cast<std::byte>(rng.NextSkewed(64, 0.7));
    for (std::size_t c = 2; c < 6; ++c) {
      rows[i * 6 + c] = static_cast<std::byte>(rng.NextBelow(256));
    }
  }
  return rows;
}

TEST(IsobarPartitionedTest, RoundTripsMixedMatrix) {
  const Bytes rows = MixedMatrix(20000, 1);
  const DeflateCodec solver;
  const IsobarCompressed compressed = IsobarCompress(rows, 6, solver);
  EXPECT_EQ(IsobarDecompress(compressed.stream, solver), rows);
}

TEST(IsobarPartitionedTest, OnlyCompressibleColumnsGoThroughSolver) {
  const Bytes rows = MixedMatrix(20000, 2);
  const DeflateCodec solver;
  const IsobarCompressed compressed = IsobarCompress(rows, 6, solver);
  EXPECT_EQ(compressed.plan.CompressibleColumns().size(), 2u);
  EXPECT_EQ(compressed.raw_bytes, 4u * 20000u);
  // The solver output must actually be smaller than the 2 skewed columns.
  EXPECT_LT(compressed.compressed_bytes, 2u * 20000u);
}

TEST(IsobarPartitionedTest, BeatsWholesaleCompressionOnMixedData) {
  // The point of ISOBAR: skipping noise both shrinks nothing *and* costs
  // nothing; the partitioned stream must not be bigger than compressing
  // everything (within framing overhead).
  const Bytes rows = MixedMatrix(50000, 3);
  const DeflateCodec solver;
  const IsobarCompressed partitioned = IsobarCompress(rows, 6, solver);
  const Bytes wholesale = solver.Compress(rows);
  EXPECT_LT(partitioned.stream.size(),
            wholesale.size() + wholesale.size() / 10);
}

TEST(IsobarPartitionedTest, AllRandomMatrixStoredNearlyRaw) {
  Rng rng(4);
  Bytes rows(6 * 30000);
  for (auto& b : rows) b = static_cast<std::byte>(rng.NextBelow(256));
  const DeflateCodec solver;
  const IsobarCompressed compressed = IsobarCompress(rows, 6, solver);
  EXPECT_EQ(compressed.plan.CompressibleColumns().size(), 0u);
  EXPECT_LE(compressed.stream.size(), rows.size() + 64);
  EXPECT_EQ(IsobarDecompress(compressed.stream, solver), rows);
}

TEST(IsobarPartitionedTest, AllConstantMatrixFullyCompressed) {
  const Bytes rows(6 * 10000, 5_b);
  const DeflateCodec solver;
  const IsobarCompressed compressed = IsobarCompress(rows, 6, solver);
  EXPECT_EQ(compressed.plan.CompressibleColumns().size(), 6u);
  EXPECT_EQ(compressed.raw_bytes, 0u);
  EXPECT_LT(compressed.stream.size(), 1000u);
  EXPECT_EQ(IsobarDecompress(compressed.stream, solver), rows);
}

TEST(IsobarPartitionedTest, WorksWithDifferentSolvers) {
  const Bytes rows = MixedMatrix(10000, 5);
  const LzFastCodec solver;
  const IsobarCompressed compressed = IsobarCompress(rows, 6, solver);
  EXPECT_EQ(IsobarDecompress(compressed.stream, solver), rows);
}

TEST(IsobarPartitionedTest, ExplicitPlanIsHonored) {
  const Bytes rows = MixedMatrix(5000, 6);
  const DeflateCodec solver;
  IsobarPlan plan = AnalyzeColumns(rows, 6);
  // Force every column raw.
  for (auto& col : plan.columns) col.compressible = false;
  const IsobarCompressed compressed = IsobarCompress(rows, 6, plan, solver);
  EXPECT_EQ(compressed.raw_bytes, rows.size());
  EXPECT_EQ(IsobarDecompress(compressed.stream, solver), rows);
}

TEST(IsobarPartitionedTest, PlanWidthMismatchRejected) {
  const Bytes rows = MixedMatrix(100, 7);
  const DeflateCodec solver;
  const IsobarPlan plan = AnalyzeColumns(rows, 6);
  EXPECT_THROW(IsobarCompress(rows, 3, plan, solver), InvalidArgumentError);
}

TEST(IsobarPartitionedTest, EmptyMatrixRoundTrips) {
  const DeflateCodec solver;
  const IsobarCompressed compressed = IsobarCompress({}, 6, solver);
  EXPECT_TRUE(IsobarDecompress(compressed.stream, solver).empty());
}

TEST(IsobarPartitionedTest, CorruptStreamDetected) {
  const Bytes rows = MixedMatrix(5000, 8);
  const DeflateCodec solver;
  IsobarCompressed compressed = IsobarCompress(rows, 6, solver);
  compressed.stream.resize(compressed.stream.size() / 3);
  EXPECT_THROW(IsobarDecompress(compressed.stream, solver),
               CorruptStreamError);
}

}  // namespace
}  // namespace primacy
