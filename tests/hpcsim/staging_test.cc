#include "hpcsim/staging.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "model/perf_model.h"
#include "util/error.h"

namespace primacy::hpcsim {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig config;
  config.compute_nodes = 16;
  config.compute_per_io = 8;
  config.network_bps = 100e6;
  config.disk_write_bps = 50e6;
  config.disk_read_bps = 60e6;
  return config;
}

TEST(StagingWriteTest, NullProfileTimingIsExact) {
  // 8 nodes x 1 MB each through one 100 MB/s link then one 50 MB/s disk:
  // last transfer completes at 8 MB / 100 MB/s = 0.08 s; disk starts as data
  // lands and finishes at 0.01 (first arrival) + 8 MB / 50 MB/s = 0.17 s.
  ClusterConfig config = SmallCluster();
  config.compute_nodes = 8;
  const CompressionProfile profile = CompressionProfile::Null(1e6);
  const StagingResult result = SimulateWrite(config, profile);
  EXPECT_NEAR(result.total_seconds, 0.01 + 8e6 / 50e6, 1e-9);
  EXPECT_EQ(result.nodes.size(), 8u);
  // Transfers serialize on the shared link: completions at 0.01, 0.02, ...
  std::vector<double> transfer_times;
  for (const auto& node : result.nodes) {
    transfer_times.push_back(node.transfer_done);
  }
  std::sort(transfer_times.begin(), transfer_times.end());
  for (std::size_t i = 0; i < transfer_times.size(); ++i) {
    EXPECT_NEAR(transfer_times[i], 0.01 * static_cast<double>(i + 1), 1e-9);
  }
}

TEST(StagingWriteTest, CompressionShrinksWireAndDiskTime) {
  const ClusterConfig config = SmallCluster();
  CompressionProfile compressed = CompressionProfile::Null(1e6);
  compressed.output_bytes = 0.5e6;
  compressed.precondition_seconds = 0.001;
  compressed.compress_seconds = 0.004;
  const StagingResult null_case =
      SimulateWrite(config, CompressionProfile::Null(1e6));
  const StagingResult comp_case = SimulateWrite(config, compressed);
  EXPECT_LT(comp_case.total_seconds, null_case.total_seconds);
  EXPECT_GT(comp_case.ThroughputMBps(), null_case.ThroughputMBps());
}

TEST(StagingWriteTest, SlowCompressionCanLose) {
  const ClusterConfig config = SmallCluster();
  CompressionProfile slow = CompressionProfile::Null(1e6);
  slow.output_bytes = 0.9e6;      // barely shrinks
  slow.compress_seconds = 0.5;    // very slow
  const StagingResult null_case =
      SimulateWrite(config, CompressionProfile::Null(1e6));
  const StagingResult slow_case = SimulateWrite(config, slow);
  EXPECT_GT(slow_case.total_seconds, null_case.total_seconds);
}

TEST(StagingWriteTest, IoGroupsRunIndependently) {
  // Doubling compute nodes with proportional I/O groups leaves per-group
  // timing unchanged.
  ClusterConfig small = SmallCluster();
  small.compute_nodes = 8;
  ClusterConfig large = SmallCluster();
  large.compute_nodes = 64;
  const CompressionProfile profile = CompressionProfile::Null(2e6);
  const StagingResult a = SimulateWrite(small, profile);
  const StagingResult b = SimulateWrite(large, profile);
  EXPECT_NEAR(a.total_seconds, b.total_seconds, 1e-9);
  // Aggregate throughput scales with node count.
  EXPECT_NEAR(b.aggregate_throughput_bps / a.aggregate_throughput_bps, 8.0,
              1e-6);
}

TEST(StagingReadTest, ReadPathOrdersDiskThenNetworkThenCpu) {
  const ClusterConfig config = SmallCluster();
  CompressionProfile profile = CompressionProfile::Null(1e6);
  profile.decompress_seconds = 0.002;
  profile.postcondition_seconds = 0.001;
  const StagingResult result = SimulateRead(config, profile);
  for (const auto& node : result.nodes) {
    EXPECT_LE(node.io_done, node.transfer_done);
    EXPECT_LE(node.transfer_done, node.finished);
    EXPECT_NEAR(node.finished - node.local_done, 0.0, 1e-12);
  }
}

TEST(StagingReadTest, SmallerPayloadReadsFaster) {
  const ClusterConfig config = SmallCluster();
  CompressionProfile compressed = CompressionProfile::Null(1e6);
  compressed.output_bytes = 0.4e6;
  compressed.decompress_seconds = 0.003;
  compressed.postcondition_seconds = 0.001;
  const StagingResult null_case =
      SimulateRead(config, CompressionProfile::Null(1e6));
  const StagingResult comp_case = SimulateRead(config, compressed);
  EXPECT_GT(comp_case.ThroughputMBps(), null_case.ThroughputMBps());
}

TEST(StagingTest, UtilizationsAreSane) {
  const StagingResult result =
      SimulateWrite(SmallCluster(), CompressionProfile::Null(1e6));
  EXPECT_GT(result.network_utilization, 0.0);
  EXPECT_LE(result.network_utilization, 1.0);
  EXPECT_GT(result.disk_utilization, 0.0);
  EXPECT_LE(result.disk_utilization, 1.0);
  EXPECT_GT(result.events_processed, 0u);
}

TEST(CompressionPlacementTest, ComputeSideBeatsIoSide) {
  // Section III-A: compression parallelizes across compute nodes; at the
  // I/O node it serializes behind one CPU and the network still carries
  // the raw payload.
  ClusterConfig config = SmallCluster();
  CompressionProfile profile = CompressionProfile::Null(2e6);
  profile.output_bytes = 1.5e6;
  profile.compress_seconds = 0.02;
  const double compute_side =
      SimulateWrite(config, profile).aggregate_throughput_bps;
  const double io_side =
      SimulateWriteAtIoNode(config, profile).aggregate_throughput_bps;
  EXPECT_GT(compute_side, io_side);
}

TEST(CompressionPlacementTest, IoSideStillBeatsNullWhenCompressionIsCheap) {
  ClusterConfig config = SmallCluster();
  CompressionProfile profile = CompressionProfile::Null(2e6);
  profile.output_bytes = 1e6;
  profile.compress_seconds = 0.0005;  // nearly free compression
  const double null_case =
      SimulateWrite(config, CompressionProfile::Null(2e6))
          .aggregate_throughput_bps;
  const double io_side =
      SimulateWriteAtIoNode(config, profile).aggregate_throughput_bps;
  EXPECT_GT(io_side, null_case);
}

TEST(CompressionPlacementTest, IoSideValidatesProfile) {
  CompressionProfile profile = CompressionProfile::Null(2e6);
  profile.chunks_per_node = 0;
  EXPECT_THROW(SimulateWriteAtIoNode(SmallCluster(), profile),
               InvalidArgumentError);
}

TEST(StagingTest, InvalidConfigRejected) {
  ClusterConfig config = SmallCluster();
  config.compute_nodes = 0;
  EXPECT_THROW(SimulateWrite(config, CompressionProfile::Null(1e6)),
               InvalidArgumentError);
}

// The paper validates its analytical model against the staging environment
// (Figure 4: theoretical vs empirical bars). Here: simulator and model must
// agree within a modest band on both paths, since the simulator resolves
// contention the model only approximates.
TEST(ModelAgreementTest, WriteModelTracksSimulator) {
  ModelInputs in;
  in.chunk_bytes = 3.0 * 1024 * 1024;
  in.metadata_bytes = 3000;
  in.alpha1 = 0.25;
  in.alpha2 = 0.3;
  in.sigma_ho = 0.4;
  in.sigma_lo = 0.9;
  in.rho = 8.0;
  in.network_bps = 400e6;
  in.disk_write_bps = 150e6;
  in.precondition_bps = 700e6;
  in.compress_bps = 90e6;

  ClusterConfig config;
  config.compute_nodes = 8;
  config.compute_per_io = 8;
  config.network_bps = in.network_bps;
  config.disk_write_bps = in.disk_write_bps;

  CompressionProfile profile;
  profile.input_bytes = in.chunk_bytes;
  profile.output_bytes = PrimacyOutputBytes(in);
  profile.precondition_seconds =
      in.chunk_bytes / in.precondition_bps +
      (1.0 - in.alpha1) * in.chunk_bytes / in.precondition_bps;
  profile.compress_seconds =
      in.alpha1 * in.chunk_bytes / in.compress_bps +
      in.alpha2 * (1.0 - in.alpha1) * in.chunk_bytes / in.compress_bps;

  const double model_mbps = PrimacyWrite(in).ThroughputMBps();
  const double sim_mbps = SimulateWrite(config, profile).ThroughputMBps();
  EXPECT_NEAR(sim_mbps / model_mbps, 1.0, 0.35);
}

TEST(ModelAgreementTest, BaselineModelTracksSimulator) {
  ModelInputs in;
  in.chunk_bytes = 3.0 * 1024 * 1024;
  in.rho = 8.0;
  in.network_bps = 400e6;
  in.disk_write_bps = 150e6;

  ClusterConfig config;
  config.compute_nodes = 8;
  config.compute_per_io = 8;
  config.network_bps = in.network_bps;
  config.disk_write_bps = in.disk_write_bps;

  const double model_mbps = BaselineWrite(in).ThroughputMBps();
  const double sim_mbps =
      SimulateWrite(config, CompressionProfile::Null(in.chunk_bytes))
          .ThroughputMBps();
  // The model serializes transfer and write (Eq. 6) while the simulator
  // overlaps them, so the model is systematically pessimistic; the paper's
  // own Figure 4 shows the same one-sided gap. Require agreement within 50%
  // and the correct direction.
  EXPECT_NEAR(sim_mbps / model_mbps, 1.0, 0.5);
  EXPECT_GE(sim_mbps, model_mbps * 0.99);
}

}  // namespace
}  // namespace primacy::hpcsim
