#include "hpcsim/checkpoint_planner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace primacy::hpcsim {
namespace {

TEST(YoungIntervalTest, MatchesClosedForm) {
  // delta = 50s, M = 10000s -> sqrt(2 * 50 * 10000) = 1000s.
  EXPECT_DOUBLE_EQ(YoungInterval(50.0, 10000.0), 1000.0);
}

TEST(YoungIntervalTest, GrowsWithMtbfShrinksWithCost) {
  EXPECT_GT(YoungInterval(50.0, 40000.0), YoungInterval(50.0, 10000.0));
  EXPECT_LT(YoungInterval(10.0, 10000.0), YoungInterval(50.0, 10000.0));
}

TEST(DalyIntervalTest, CloseToYoungForSmallCosts) {
  const double young = YoungInterval(10.0, 100000.0);
  const double daly = DalyInterval(10.0, 100000.0);
  EXPECT_NEAR(daly / young, 1.0, 0.05);
}

TEST(DalyIntervalTest, BoundaryCaseReturnsMtbf) {
  EXPECT_DOUBLE_EQ(DalyInterval(500.0, 100.0), 100.0);
}

TEST(DalyIntervalTest, NeverBelowCheckpointCost) {
  EXPECT_GE(DalyInterval(90.0, 100.0), 90.0);
}

TEST(MachineEfficiencyTest, PerfectWorldApproachesOne) {
  // Tiny checkpoint cost, enormous MTBF.
  EXPECT_GT(MachineEfficiency(3600.0, 1e-3, 1e9, 1e-3), 0.999);
}

TEST(MachineEfficiencyTest, PeaksNearOptimalInterval) {
  const double delta = 50.0, mtbf = 10000.0, restart = 100.0;
  const double optimum = DalyInterval(delta, mtbf);
  const double at_optimum = MachineEfficiency(optimum, delta, mtbf, restart);
  EXPECT_GT(at_optimum, MachineEfficiency(optimum / 8.0, delta, mtbf, restart));
  EXPECT_GT(at_optimum, MachineEfficiency(optimum * 8.0, delta, mtbf, restart));
}

TEST(MachineEfficiencyTest, NeverNegative) {
  EXPECT_GE(MachineEfficiency(1e6, 50.0, 100.0, 1000.0), 0.0);
}

TEST(MachineEfficiencyTest, ValidatesArguments) {
  EXPECT_THROW(MachineEfficiency(0.0, 1.0, 1.0, 0.0), InvalidArgumentError);
  EXPECT_THROW(MachineEfficiency(1.0, 0.0, 1.0, 0.0), InvalidArgumentError);
  EXPECT_THROW(MachineEfficiency(1.0, 1.0, -1.0, 0.0), InvalidArgumentError);
  EXPECT_THROW(MachineEfficiency(1.0, 1.0, 1.0, -1.0), InvalidArgumentError);
}

TEST(PlanCheckpointsTest, CompressionImprovesEfficiency) {
  // A compressed checkpoint writes less, so it costs less, the optimal
  // interval shortens, and machine efficiency rises — the end-to-end version
  // of the paper's motivation.
  ClusterConfig config;
  config.compute_nodes = 8;
  config.compute_per_io = 8;
  config.network_bps = 120e6;
  config.disk_write_bps = 25e6;
  config.disk_read_bps = 80e6;

  const double chunk = 512.0 * 1024 * 1024;  // 512 MB state per node
  CompressionProfile raw = CompressionProfile::Null(chunk);
  CompressionProfile compressed = CompressionProfile::Null(chunk);
  compressed.output_bytes = chunk / 1.3;   // PRIMACY-class reduction
  compressed.compress_seconds = chunk / 80e6;
  compressed.decompress_seconds = chunk / 250e6;

  const double mtbf = 6.0 * 3600.0;  // 6 hours
  const CheckpointPlan raw_plan = PlanCheckpoints(config, raw, mtbf);
  const CheckpointPlan comp_plan = PlanCheckpoints(config, compressed, mtbf);

  EXPECT_LT(comp_plan.checkpoint_seconds, raw_plan.checkpoint_seconds);
  EXPECT_LT(comp_plan.daly_interval, raw_plan.daly_interval);
  EXPECT_GT(comp_plan.efficiency_at_daly, raw_plan.efficiency_at_daly);
}

TEST(PlanCheckpointsTest, PlanFieldsAreConsistent) {
  ClusterConfig config;
  config.compute_nodes = 16;
  const CheckpointPlan plan = PlanCheckpoints(
      config, CompressionProfile::Null(64.0 * 1024 * 1024), 3600.0);
  EXPECT_GT(plan.checkpoint_seconds, 0.0);
  EXPECT_GT(plan.restart_seconds, 0.0);
  EXPECT_GT(plan.young_interval, plan.checkpoint_seconds);
  EXPECT_GT(plan.efficiency_at_daly, 0.0);
  EXPECT_LE(plan.efficiency_at_daly, 1.0);
}

}  // namespace
}  // namespace primacy::hpcsim
