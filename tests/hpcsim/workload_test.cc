// Failure-injected workload simulation vs the analytic efficiency model.
#include <gtest/gtest.h>

#include "hpcsim/checkpoint_planner.h"
#include "util/error.h"

namespace primacy::hpcsim {
namespace {

TEST(WorkloadTest, NoFailuresMatchesDeterministicAccounting) {
  // MTBF enormous: wall time = work + checkpoints * delta exactly.
  const WorkloadResult result =
      SimulateFailingWorkload(1000.0, 100.0, 10.0, 50.0, 1e12, 1);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.checkpoints_written, 10u);
  EXPECT_NEAR(result.wall_seconds, 1000.0 + 10 * 10.0, 1e-9);
  EXPECT_NEAR(result.efficiency, 1000.0 / 1100.0, 1e-9);
}

TEST(WorkloadTest, FailuresExtendWallClock) {
  const WorkloadResult calm =
      SimulateFailingWorkload(10000.0, 500.0, 20.0, 100.0, 1e12, 2);
  const WorkloadResult stormy =
      SimulateFailingWorkload(10000.0, 500.0, 20.0, 100.0, 3000.0, 2);
  EXPECT_GT(stormy.failures, 0u);
  EXPECT_GT(stormy.wall_seconds, calm.wall_seconds);
  EXPECT_LT(stormy.efficiency, calm.efficiency);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  const WorkloadResult a =
      SimulateFailingWorkload(5000.0, 200.0, 15.0, 60.0, 2000.0, 7);
  const WorkloadResult b =
      SimulateFailingWorkload(5000.0, 200.0, 15.0, 60.0, 2000.0, 7);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  const WorkloadResult c =
      SimulateFailingWorkload(5000.0, 200.0, 15.0, 60.0, 2000.0, 8);
  EXPECT_NE(a.wall_seconds, c.wall_seconds);
}

TEST(WorkloadTest, AnalyticEfficiencyTracksMonteCarlo) {
  // Long horizon + many failures: the analytic first-order model must land
  // within a few points of the simulated ground truth near the optimum.
  const double delta = 30.0, mtbf = 6 * 3600.0, restart = 120.0;
  const double interval = DalyInterval(delta, mtbf);
  const double analytic = MachineEfficiency(interval, delta, mtbf, restart);
  double total_eff = 0.0;
  constexpr int kRuns = 20;
  for (int seed = 0; seed < kRuns; ++seed) {
    total_eff += SimulateFailingWorkload(200.0 * 3600.0, interval, delta,
                                         restart, mtbf,
                                         static_cast<std::uint64_t>(seed))
                     .efficiency;
  }
  const double simulated = total_eff / kRuns;
  EXPECT_NEAR(simulated, analytic, 0.05);
}

TEST(WorkloadTest, OptimalIntervalBeatsBadIntervalsInSimulation) {
  const double delta = 60.0, mtbf = 4 * 3600.0, restart = 150.0;
  const double optimum = DalyInterval(delta, mtbf);
  const auto run = [&](double interval) {
    double total = 0.0;
    for (int seed = 0; seed < 12; ++seed) {
      total += SimulateFailingWorkload(100.0 * 3600.0, interval, delta,
                                       restart, mtbf,
                                       static_cast<std::uint64_t>(seed))
                   .efficiency;
    }
    return total / 12.0;
  };
  const double at_optimum = run(optimum);
  EXPECT_GT(at_optimum, run(optimum / 10.0));
  EXPECT_GT(at_optimum, run(optimum * 10.0));
}

TEST(WorkloadTest, FasterCheckpointsRaiseSimulatedEfficiency) {
  // The compression payoff, Monte-Carlo edition.
  const double mtbf = 2 * 3600.0, restart = 100.0;
  const auto run = [&](double delta) {
    const double interval = DalyInterval(delta, mtbf);
    double total = 0.0;
    for (int seed = 0; seed < 12; ++seed) {
      total += SimulateFailingWorkload(50.0 * 3600.0, interval, delta,
                                       restart, mtbf,
                                       static_cast<std::uint64_t>(seed))
                   .efficiency;
    }
    return total / 12.0;
  };
  EXPECT_GT(run(90.0), run(180.0));  // halving checkpoint cost helps
}

TEST(WorkloadTest, ValidatesArguments) {
  EXPECT_THROW(SimulateFailingWorkload(0.0, 1.0, 1.0, 1.0, 1.0, 0),
               InvalidArgumentError);
  EXPECT_THROW(SimulateFailingWorkload(1.0, 0.0, 1.0, 1.0, 1.0, 0),
               InvalidArgumentError);
  EXPECT_THROW(SimulateFailingWorkload(1.0, 1.0, 1.0, -1.0, 1.0, 0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace primacy::hpcsim
