#include "hpcsim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"

namespace primacy::hpcsim {
namespace {

TEST(EventQueueTest, FiresInTimestampOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(3.0, [&] { order.push_back(3); });
  queue.Schedule(1.0, [&] { order.push_back(1); });
  queue.Schedule(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(queue.Run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimestampsFifoByScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  queue.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CallbacksMayScheduleFurtherEvents) {
  EventQueue queue;
  std::vector<double> times;
  queue.Schedule(1.0, [&] {
    times.push_back(queue.Now());
    queue.Schedule(2.5, [&] { times.push_back(queue.Now()); });
  });
  EXPECT_DOUBLE_EQ(queue.Run(), 2.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
  EXPECT_EQ(queue.ProcessedEvents(), 2u);
}

TEST(EventQueueTest, NowAdvancesMonotonically) {
  EventQueue queue;
  double last = -1.0;
  for (double t : {4.0, 2.0, 8.0, 2.0}) {
    queue.Schedule(t, [&, t] {
      EXPECT_GE(queue.Now(), last);
      EXPECT_DOUBLE_EQ(queue.Now(), t);
      last = queue.Now();
    });
  }
  queue.Run();
}

TEST(EventQueueTest, SchedulingIntoThePastRejected) {
  EventQueue queue;
  queue.Schedule(5.0, [&] {
    EXPECT_THROW(queue.Schedule(1.0, [] {}), InvalidArgumentError);
  });
  queue.Run();
}

TEST(EventQueueTest, EmptyRunReturnsZero) {
  EventQueue queue;
  EXPECT_DOUBLE_EQ(queue.Run(), 0.0);
  EXPECT_TRUE(queue.Empty());
}

}  // namespace
}  // namespace primacy::hpcsim
