#include "hpcsim/resources.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace primacy::hpcsim {
namespace {

TEST(FifoServerTest, ServiceTimeIsBytesOverRate) {
  FifoServer server("disk", 100.0);  // 100 bytes/s
  EXPECT_DOUBLE_EQ(server.Submit(0.0, 500.0), 5.0);
}

TEST(FifoServerTest, BackToBackJobsQueue) {
  FifoServer server("net", 100.0);
  EXPECT_DOUBLE_EQ(server.Submit(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(server.Submit(0.0, 100.0), 2.0);  // waits for the first
  EXPECT_DOUBLE_EQ(server.Submit(0.0, 100.0), 3.0);
}

TEST(FifoServerTest, IdleGapsAreRespected) {
  FifoServer server("net", 100.0);
  EXPECT_DOUBLE_EQ(server.Submit(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(server.Submit(10.0, 100.0), 11.0);  // arrives after idle
}

TEST(FifoServerTest, AccountingTracksBusyTimeAndBytes) {
  FifoServer server("disk", 50.0);
  server.Submit(0.0, 100.0);
  server.Submit(0.0, 50.0);
  EXPECT_DOUBLE_EQ(server.busy_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(server.bytes_served(), 150.0);
  EXPECT_DOUBLE_EQ(server.Utilization(6.0), 0.5);
  EXPECT_DOUBLE_EQ(server.Utilization(0.0), 0.0);
}

TEST(FifoServerTest, ZeroByteJobCompletesImmediately) {
  FifoServer server("net", 10.0);
  EXPECT_DOUBLE_EQ(server.Submit(2.0, 0.0), 2.0);
}

TEST(FifoServerTest, InvalidArgumentsRejected) {
  EXPECT_THROW(FifoServer("bad", 0.0), InvalidArgumentError);
  FifoServer server("net", 1.0);
  EXPECT_THROW(server.Submit(-1.0, 10.0), InvalidArgumentError);
  EXPECT_THROW(server.Submit(0.0, -10.0), InvalidArgumentError);
}

}  // namespace
}  // namespace primacy::hpcsim
