// Heterogeneous per-node profiles: the paper's "variable length segments
// from compute nodes" (Section I). Compressed payload sizes differ across
// nodes; the bulk-synchronous step ends with the straggler.
#include <gtest/gtest.h>

#include <vector>

#include "hpcsim/staging.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy::hpcsim {
namespace {

ClusterConfig OneGroup() {
  ClusterConfig config;
  config.compute_nodes = 8;
  config.compute_per_io = 8;
  config.network_bps = 100e6;
  config.disk_write_bps = 50e6;
  config.disk_read_bps = 60e6;
  return config;
}

TEST(HeterogeneousTest, UniformVectorMatchesScalarOverload) {
  const ClusterConfig config = OneGroup();
  const CompressionProfile profile = CompressionProfile::Null(1e6);
  const std::vector<CompressionProfile> profiles(config.compute_nodes,
                                                 profile);
  const StagingResult a = SimulateWrite(config, profile);
  const StagingResult b = SimulateWrite(config, profiles);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_DOUBLE_EQ(a.aggregate_throughput_bps, b.aggregate_throughput_bps);
}

TEST(HeterogeneousTest, StragglerSetsStepTime) {
  const ClusterConfig config = OneGroup();
  std::vector<CompressionProfile> profiles(config.compute_nodes,
                                           CompressionProfile::Null(0.5e6));
  const StagingResult balanced = SimulateWrite(config, profiles);
  // One node ships 4x the payload of the others.
  profiles[3].output_bytes = 2e6;
  const StagingResult skewed = SimulateWrite(config, profiles);
  EXPECT_GT(skewed.total_seconds, balanced.total_seconds);
  // The extra 1.5 MB must pass through the shared disk (50 MB/s), stretching
  // the step by ~0.03 s regardless of which node drains last from the FIFO.
  EXPECT_NEAR(skewed.total_seconds - balanced.total_seconds, 1.5e6 / 50e6,
              5e-3);
}

TEST(HeterogeneousTest, VariableCompressedSizesAverageOut) {
  // Per-node ratios drawn around a mean: total time should sit between the
  // best-case and worst-case uniform runs.
  const ClusterConfig config = OneGroup();
  Rng rng(7);
  std::vector<CompressionProfile> profiles;
  for (std::size_t n = 0; n < config.compute_nodes; ++n) {
    CompressionProfile profile = CompressionProfile::Null(1e6);
    profile.output_bytes = 1e6 / (1.05 + 0.4 * rng.NextDouble());
    profile.compress_seconds = 0.002;
    profiles.push_back(profile);
  }
  const StagingResult mixed = SimulateWrite(config, profiles);

  CompressionProfile best = CompressionProfile::Null(1e6);
  best.output_bytes = 1e6 / 1.45;
  best.compress_seconds = 0.002;
  CompressionProfile worst = CompressionProfile::Null(1e6);
  worst.output_bytes = 1e6 / 1.05;
  worst.compress_seconds = 0.002;
  EXPECT_GE(mixed.total_seconds, SimulateWrite(config, best).total_seconds);
  EXPECT_LE(mixed.total_seconds, SimulateWrite(config, worst).total_seconds);
}

TEST(HeterogeneousTest, ReadPathSupportsPerNodeProfiles) {
  const ClusterConfig config = OneGroup();
  std::vector<CompressionProfile> profiles(config.compute_nodes,
                                           CompressionProfile::Null(1e6));
  profiles[0].output_bytes = 0.25e6;
  profiles[0].decompress_seconds = 0.001;
  const StagingResult result = SimulateRead(config, profiles);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_EQ(result.nodes.size(), config.compute_nodes);
}

TEST(HeterogeneousTest, WrongProfileCountRejected) {
  const ClusterConfig config = OneGroup();
  const std::vector<CompressionProfile> profiles(3,
                                                 CompressionProfile::Null(1e6));
  EXPECT_THROW(SimulateWrite(config, profiles), InvalidArgumentError);
  EXPECT_THROW(SimulateRead(config, profiles), InvalidArgumentError);
}

}  // namespace
}  // namespace primacy::hpcsim
