#include "bitstream/byte_io.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

TEST(VarintTest, KnownEncodings) {
  Bytes out;
  PutVarint(out, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(static_cast<unsigned>(out[0]), 0u);

  out.clear();
  PutVarint(out, 127);
  ASSERT_EQ(out.size(), 1u);

  out.clear();
  PutVarint(out, 128);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(static_cast<unsigned>(out[0]), 0x80u);
  EXPECT_EQ(static_cast<unsigned>(out[1]), 0x01u);
}

TEST(VarintTest, RoundTripsRandomValues) {
  Rng rng(21);
  Bytes out;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    // Mix small and large magnitudes.
    const unsigned shift = static_cast<unsigned>(rng.NextBelow(64));
    const std::uint64_t value = rng.NextU64() >> shift;
    values.push_back(value);
    PutVarint(out, value);
  }
  values.push_back(std::numeric_limits<std::uint64_t>::max());
  PutVarint(out, values.back());

  ByteReader reader(out);
  for (const std::uint64_t value : values) {
    EXPECT_EQ(reader.GetVarint(), value);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VarintTest, TruncatedVarintThrows) {
  Bytes out;
  PutVarint(out, 1ULL << 40);
  out.pop_back();
  ByteReader reader(out);
  EXPECT_THROW(reader.GetVarint(), CorruptStreamError);
}

TEST(VarintTest, OverlongVarintThrows) {
  // 11 continuation bytes exceed the 64-bit budget.
  Bytes out(11, 0xff_b);
  ByteReader reader(out);
  EXPECT_THROW(reader.GetVarint(), CorruptStreamError);
}

TEST(FixedWidthTest, LittleEndianLayout) {
  Bytes out;
  PutU16(out, 0x1234);
  PutU32(out, 0xdeadbeef);
  PutU64(out, 0x0102030405060708ULL);
  ByteReader reader(out);
  EXPECT_EQ(reader.GetU16(), 0x1234u);
  EXPECT_EQ(reader.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(reader.GetU64(), 0x0102030405060708ULL);
  EXPECT_TRUE(reader.AtEnd());
  // Verify byte order of the first field.
  EXPECT_EQ(static_cast<unsigned>(out[0]), 0x34u);
  EXPECT_EQ(static_cast<unsigned>(out[1]), 0x12u);
}

TEST(BlockTest, BlocksRoundTrip) {
  Bytes out;
  PutBlock(out, BytesFromString("first"));
  PutBlock(out, Bytes{});
  PutBlock(out, BytesFromString("second block"));
  ByteReader reader(out);
  EXPECT_EQ(StringFromBytes(reader.GetBlock()), "first");
  EXPECT_TRUE(reader.GetBlock().empty());
  EXPECT_EQ(StringFromBytes(reader.GetBlock()), "second block");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BlockTest, TruncatedBlockThrows) {
  Bytes out;
  PutBlock(out, BytesFromString("content"));
  out.resize(out.size() - 2);
  ByteReader reader(out);
  EXPECT_THROW(reader.GetBlock(), CorruptStreamError);
}

TEST(ByteReaderTest, GetRawTracksOffset) {
  const Bytes data = BytesFromString("abcdef");
  ByteReader reader(data);
  EXPECT_EQ(StringFromBytes(reader.GetRaw(3)), "abc");
  EXPECT_EQ(reader.Offset(), 3u);
  EXPECT_EQ(reader.Remaining(), 3u);
  EXPECT_EQ(StringFromBytes(reader.GetRaw(3)), "def");
  EXPECT_THROW(reader.GetRaw(1), CorruptStreamError);
}

TEST(ByteReaderTest, ReadPastEndThrows) {
  ByteReader reader(ByteSpan{});
  EXPECT_THROW(reader.GetU8(), CorruptStreamError);
  EXPECT_THROW(reader.GetU32(), CorruptStreamError);
}

}  // namespace
}  // namespace primacy
