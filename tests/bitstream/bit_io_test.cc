#include "bitstream/bit_io.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

TEST(BitIoTest, SingleBitsRoundTrip) {
  BitWriter writer;
  const std::vector<int> bits{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (const int b : bits) writer.WriteBits(static_cast<std::uint64_t>(b), 1);
  const Bytes data = writer.Finish();
  BitReader reader(data);
  for (const int b : bits) {
    EXPECT_EQ(reader.ReadBits(1), static_cast<std::uint64_t>(b));
  }
}

TEST(BitIoTest, LsbFirstByteLayout) {
  BitWriter writer;
  writer.WriteBits(0b1, 1);   // first bit -> LSB of byte 0
  writer.WriteBits(0b0, 1);
  writer.WriteBits(0b11, 2);  // bits 2..3
  const Bytes data = writer.Finish();
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(static_cast<unsigned>(data[0]), 0b00001101u);
}

TEST(BitIoTest, MixedWidthValuesRoundTrip) {
  Rng rng(11);
  std::vector<std::pair<std::uint64_t, unsigned>> entries;
  BitWriter writer;
  for (int i = 0; i < 5000; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng.NextBelow(57));
    const std::uint64_t value =
        rng.NextU64() & ((width < 64) ? ((1ULL << width) - 1) : ~0ULL);
    entries.emplace_back(value, width);
    writer.WriteBits(value, width);
  }
  const Bytes data = writer.Finish();
  BitReader reader(data);
  for (const auto& [value, width] : entries) {
    EXPECT_EQ(reader.ReadBits(width), value);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BitIoTest, ZeroWidthWriteAndReadAreNoops) {
  BitWriter writer;
  writer.WriteBits(0xff, 0);
  writer.WriteBits(0b101, 3);
  const Bytes data = writer.Finish();
  BitReader reader(data);
  EXPECT_EQ(reader.ReadBits(0), 0u);
  EXPECT_EQ(reader.ReadBits(3), 0b101u);
}

TEST(BitIoTest, WidthAboveLimitRejected) {
  BitWriter writer;
  EXPECT_THROW(writer.WriteBits(0, 58), InvalidArgumentError);
  const Bytes buffer(16);  // named: BitReader only views the bytes
  BitReader reader(buffer);
  EXPECT_THROW(reader.ReadBits(58), InvalidArgumentError);
  EXPECT_THROW(reader.PeekBits(58), InvalidArgumentError);
}

TEST(BitIoTest, SkipWidthAboveLimitRejected) {
  // SkipBits shares ReadBits's 57-bit ceiling: with a full accumulator a
  // skip of 64 would otherwise hit an undefined full-width shift.
  const Bytes buffer(16);  // named: BitReader only views the bytes
  BitReader reader(buffer);
  EXPECT_THROW(reader.SkipBits(58), InvalidArgumentError);
  EXPECT_THROW(reader.SkipBits(64), InvalidArgumentError);
  reader.SkipBits(57);
  EXPECT_EQ(reader.BitsConsumed(), 57u);
}

TEST(BitIoTest, ReadPastEndThrows) {
  BitWriter writer;
  writer.WriteBits(0x3, 2);
  const Bytes data = writer.Finish();  // one padded byte
  BitReader reader(data);
  reader.ReadBits(8);
  EXPECT_THROW(reader.ReadBits(8), CorruptStreamError);
}

TEST(BitIoTest, PeekDoesNotConsume) {
  BitWriter writer;
  writer.WriteBits(0b1011, 4);
  const Bytes data = writer.Finish();
  BitReader reader(data);
  EXPECT_EQ(reader.PeekBits(4), 0b1011u);
  EXPECT_EQ(reader.PeekBits(4), 0b1011u);
  EXPECT_EQ(reader.ReadBits(4), 0b1011u);
}

TEST(BitIoTest, PeekPastEndReadsZeros) {
  BitWriter writer;
  writer.WriteBits(0b1, 1);
  const Bytes data = writer.Finish();
  BitReader reader(data);
  // Peeking beyond the single byte must not throw; missing bits are zero.
  EXPECT_EQ(reader.PeekBits(16) & 0xffu, 0b00000001u);
}

TEST(BitIoTest, AlignToByteSkipsPadding) {
  BitWriter writer;
  writer.WriteBits(0b101, 3);
  writer.AlignToByte();
  writer.WriteBits(0xAB, 8);
  const Bytes data = writer.Finish();
  ASSERT_EQ(data.size(), 2u);
  BitReader reader(data);
  EXPECT_EQ(reader.ReadBits(3), 0b101u);
  reader.AlignToByte();
  EXPECT_EQ(reader.ReadBits(8), 0xABu);
}

TEST(BitIoTest, WriteBytesRequiresAlignment) {
  BitWriter writer;
  writer.WriteBits(1, 1);
  EXPECT_THROW(writer.WriteBytes(Bytes(4)), InvalidArgumentError);
}

TEST(BitIoTest, WriteAndReadRawBytes) {
  BitWriter writer;
  writer.WriteBits(0b11, 2);
  writer.AlignToByte();
  const Bytes raw = BytesFromString("payload");
  writer.WriteBytes(raw);
  const Bytes data = writer.Finish();
  BitReader reader(data);
  EXPECT_EQ(reader.ReadBits(2), 0b11u);
  reader.AlignToByte();
  EXPECT_EQ(reader.ReadBytes(raw.size()), raw);
}

TEST(BitIoTest, BitCountTracksWrites) {
  BitWriter writer;
  writer.WriteBits(0, 5);
  writer.WriteBits(0, 11);
  EXPECT_EQ(writer.BitCount(), 16u);
}

TEST(BitIoTest, EmptyStreamAtEnd) {
  BitReader reader(ByteSpan{});
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_THROW(reader.ReadBits(1), CorruptStreamError);
}

}  // namespace
}  // namespace primacy
