// Property suite for the dispatched SIMD kernel layer: every kernel, on
// every ISA this machine can run, must be byte-identical to the scalar
// reference at every length — especially 0, 1, and the non-multiple-of-
// vector tails where the SIMD main loop hands over to scalar code.
//
// The suite is parameterized over the available ISAs via ForceIsa, so on an
// AVX2 host one ctest run covers scalar, SSE2, and AVX2; on a scalar-only
// build it degenerates to a self-check of the reference.
#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/frequency.h"
#include "core/id_mapper.h"
#include "util/byte_matrix.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy::kernels {
namespace {

// Lengths (element counts) chosen to straddle every vector width in play:
// 8/16/32-element bodies, their off-by-one neighbours, and a few large
// non-round sizes.
const std::size_t kLengths[] = {0,  1,  2,  3,   5,   7,   8,    9,   15,
                                16, 17, 31, 32,  33,  63,  64,   65,  100,
                                127, 128, 129, 255, 256, 1000, 4099};

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> isas;
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    if (TableFor(isa) != nullptr) isas.push_back(isa);
  }
  return isas;
}

/// Deterministic bytes with realistic skew: ~half the positions come from a
/// tiny alphabet (exponent-like runs exercising the run fast path), the rest
/// are uniform (mantissa-like noise exercising the mixed path).
std::vector<std::byte> TestBytes(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(size);
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint64_t r = rng.NextU64();
    if ((r & 1u) != 0) {
      out[i] = static_cast<std::byte>(0x40u + ((r >> 8) & 3u));
    } else {
      out[i] = static_cast<std::byte>(r >> 16);
    }
  }
  return out;
}

class KernelIdentityTest : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override {
    if (!ForceIsa(GetParam())) {
      GTEST_SKIP() << "ISA " << IsaName(GetParam())
                   << " unavailable on this build/CPU";
    }
    table_ = &Active();
  }
  void TearDown() override { ForceIsa(ActiveIsaBestEffortReset()); }

  static Isa ActiveIsaBestEffortReset() {
    // Leave the process on the best ISA so later suites in the same binary
    // see default dispatch behavior.
    for (Isa isa : {Isa::kAvx2, Isa::kSse2, Isa::kScalar}) {
      if (TableFor(isa) != nullptr) return isa;
    }
    return Isa::kScalar;
  }

  const KernelTable* table_ = nullptr;
};

TEST_P(KernelIdentityTest, SplitMergeW8) {
  const KernelTable& ref = ScalarTable();
  for (const std::size_t n : kLengths) {
    const auto rows = TestBytes(n * 8, 0x517eed + n);
    std::vector<std::byte> high(n * 2), low(n * 6);
    std::vector<std::byte> ref_high(n * 2), ref_low(n * 6);
    table_->split_w8_h2(rows.data(), n, high.data(), low.data());
    ref.split_w8_h2(rows.data(), n, ref_high.data(), ref_low.data());
    EXPECT_EQ(high, ref_high) << "split high, n=" << n;
    EXPECT_EQ(low, ref_low) << "split low, n=" << n;

    std::vector<std::byte> merged(n * 8), ref_merged(n * 8);
    table_->merge_w8_h2(high.data(), low.data(), n, merged.data());
    ref.merge_w8_h2(ref_high.data(), ref_low.data(), n, ref_merged.data());
    EXPECT_EQ(merged, ref_merged) << "merge, n=" << n;
    EXPECT_EQ(merged, rows) << "merge inverts split, n=" << n;
  }
}

TEST_P(KernelIdentityTest, SplitMergeW4) {
  const KernelTable& ref = ScalarTable();
  for (const std::size_t n : kLengths) {
    const auto rows = TestBytes(n * 4, 0xf10a7 + n);
    std::vector<std::byte> high(n * 2), low(n * 2);
    std::vector<std::byte> ref_high(n * 2), ref_low(n * 2);
    table_->split_w4_h2(rows.data(), n, high.data(), low.data());
    ref.split_w4_h2(rows.data(), n, ref_high.data(), ref_low.data());
    EXPECT_EQ(high, ref_high) << "split high, n=" << n;
    EXPECT_EQ(low, ref_low) << "split low, n=" << n;

    std::vector<std::byte> merged(n * 4), ref_merged(n * 4);
    table_->merge_w4_h2(high.data(), low.data(), n, merged.data());
    ref.merge_w4_h2(ref_high.data(), ref_low.data(), n, ref_merged.data());
    EXPECT_EQ(merged, ref_merged) << "merge, n=" << n;
    EXPECT_EQ(merged, rows) << "merge inverts split, n=" << n;
  }
}

TEST_P(KernelIdentityTest, TransposeAllWidths) {
  const KernelTable& ref = ScalarTable();
  struct Shape {
    std::size_t width;
    void (*KernelTable::* fwd)(const std::byte*, std::size_t, std::byte*);
    void (*KernelTable::* inv)(const std::byte*, std::size_t, std::byte*);
  };
  const Shape shapes[] = {
      {2, &KernelTable::row_to_col_w2, &KernelTable::col_to_row_w2},
      {4, &KernelTable::row_to_col_w4, &KernelTable::col_to_row_w4},
      {8, &KernelTable::row_to_col_w8, &KernelTable::col_to_row_w8},
  };
  for (const Shape& shape : shapes) {
    for (const std::size_t n : kLengths) {
      const auto rows = TestBytes(n * shape.width, 0x7a05e + n * shape.width);
      std::vector<std::byte> cols(rows.size()), ref_cols(rows.size());
      (table_->*shape.fwd)(rows.data(), n, cols.data());
      (ref.*shape.fwd)(rows.data(), n, ref_cols.data());
      EXPECT_EQ(cols, ref_cols)
          << "row_to_col w=" << shape.width << " n=" << n;

      std::vector<std::byte> back(rows.size()), ref_back(rows.size());
      (table_->*shape.inv)(cols.data(), n, back.data());
      (ref.*shape.inv)(ref_cols.data(), n, ref_back.data());
      EXPECT_EQ(back, ref_back)
          << "col_to_row w=" << shape.width << " n=" << n;
      EXPECT_EQ(back, rows)
          << "transpose round-trip w=" << shape.width << " n=" << n;
    }
  }
}

TEST_P(KernelIdentityTest, CountPairs) {
  const KernelTable& ref = ScalarTable();
  for (const std::size_t n : kLengths) {
    const auto pairs = TestBytes(n * 2, 0xc0047 + n);
    std::vector<std::uint32_t> counts(65536, 0), ref_counts(65536, 0);
    table_->count_pairs(pairs.data(), n, counts.data());
    ref.count_pairs(pairs.data(), n, ref_counts.data());
    EXPECT_EQ(counts, ref_counts) << "count_pairs, n=" << n;
  }
  // A pure run (the vector fast path end to end) and accumulation on top of
  // non-zero counts.
  std::vector<std::byte> run(2 * 333);
  for (std::size_t i = 0; i < run.size(); i += 2) {
    run[i] = std::byte{0x3f};
    run[i + 1] = std::byte{0xf0};
  }
  std::vector<std::uint32_t> counts(65536, 7), ref_counts(65536, 7);
  table_->count_pairs(run.data(), 333, counts.data());
  ref.count_pairs(run.data(), 333, ref_counts.data());
  EXPECT_EQ(counts, ref_counts);
  EXPECT_EQ(counts[0x3ff0], 7u + 333u);
}

TEST_P(KernelIdentityTest, MapUnmapIds) {
  const KernelTable& ref = ScalarTable();
  for (const std::size_t n : kLengths) {
    // Build an index covering exactly the sequences present in the input.
    const auto pairs = TestBytes(n * 2, 0x1d5 + n);
    const IdIndex index = IdIndex::FromFrequency(AnalyzePairFrequency(
        ByteSpan(pairs.data(), pairs.size())));
    const auto table_size = static_cast<std::uint32_t>(index.size());

    std::vector<std::byte> ids(n * 2), ref_ids(n * 2);
    ASSERT_TRUE(table_->map_ids16(pairs.data(), n, index.ids_table(),
                                  ids.data()));
    ASSERT_TRUE(ref.map_ids16(pairs.data(), n, index.ids_table(),
                              ref_ids.data()));
    EXPECT_EQ(ids, ref_ids) << "map, n=" << n;

    std::vector<std::byte> seqs(n * 2), ref_seqs(n * 2);
    ASSERT_TRUE(table_->unmap_ids16(ids.data(), n,
                                    index.sequences_u32().data(), table_size,
                                    seqs.data()));
    ASSERT_TRUE(ref.unmap_ids16(ref_ids.data(), n,
                                index.sequences_u32().data(), table_size,
                                ref_seqs.data()));
    EXPECT_EQ(seqs, ref_seqs) << "unmap, n=" << n;
    EXPECT_EQ(seqs, pairs) << "unmap inverts map, n=" << n;

    // In-place unmap (out == in) must match the out-of-place result.
    std::vector<std::byte> inplace = ids;
    ASSERT_TRUE(table_->unmap_ids16(inplace.data(), n,
                                    index.sequences_u32().data(), table_size,
                                    inplace.data()));
    EXPECT_EQ(inplace, seqs) << "in-place unmap, n=" << n;
  }
}

TEST_P(KernelIdentityTest, MapUnmapFailureDetection) {
  // A 40-pair buffer whose only unmapped/out-of-range entry sits at position
  // `bad`: positions inside the vector body and inside the scalar tail must
  // both be caught.
  constexpr std::size_t kN = 40;
  std::vector<std::uint16_t> mapped;
  for (std::uint16_t s = 0; s < 100; ++s) mapped.push_back(s);
  const IdIndex index = IdIndex::FromSequences(mapped);
  const auto table_size = static_cast<std::uint32_t>(index.size());

  for (const std::size_t bad : {std::size_t{0}, std::size_t{5},
                                std::size_t{17}, std::size_t{33},
                                std::size_t{39}}) {
    std::vector<std::byte> pairs(kN * 2, std::byte{0});
    for (std::size_t i = 0; i < kN; ++i) {
      pairs[2 * i] = std::byte{0};
      pairs[2 * i + 1] = static_cast<std::byte>(i % 100);
    }
    // An unmapped sequence for map (0x7b00 > 99) doubles as an
    // out-of-range ID for unmap.
    pairs[2 * bad] = std::byte{0x7b};
    std::vector<std::byte> out(kN * 2);
    EXPECT_FALSE(table_->map_ids16(pairs.data(), kN, index.ids_table(),
                                   out.data()))
        << "map missed bad entry at " << bad;
    EXPECT_FALSE(table_->unmap_ids16(pairs.data(), kN,
                                     index.sequences_u32().data(), table_size,
                                     out.data()))
        << "unmap missed bad entry at " << bad;
  }

  // Empty index: any lookup fails, including through the vector body.
  const IdIndex empty = IdIndex::FromSequences({});
  std::vector<std::byte> pairs(kN * 2, std::byte{0});
  std::vector<std::byte> out(kN * 2);
  EXPECT_FALSE(table_->map_ids16(pairs.data(), kN, empty.ids_table(),
                                 out.data()));
  EXPECT_FALSE(table_->unmap_ids16(pairs.data(), kN,
                                   empty.sequences_u32().data(), 0,
                                   out.data()));
}

TEST_P(KernelIdentityTest, HistogramStride) {
  const KernelTable& ref = ScalarTable();
  for (const std::size_t stride : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}, std::size_t{13}}) {
    for (const std::size_t count : kLengths) {
      const auto data = TestBytes(count * stride + 1, 0x415 + count * stride);
      std::vector<std::uint64_t> hist(256, 3), ref_hist(256, 3);
      table_->histogram_stride(data.data(), count, stride, hist.data());
      ref.histogram_stride(data.data(), count, stride, ref_hist.data());
      EXPECT_EQ(hist, ref_hist)
          << "histogram, count=" << count << " stride=" << stride;
    }
  }
}

TEST_P(KernelIdentityTest, PublicApiRoutesThroughForcedIsa) {
  // End-to-end sanity through the public byte_matrix / id_mapper APIs under
  // the forced ISA: same results as the scalar reference path computes.
  const std::size_t n = 1001;
  const auto rows = TestBytes(n * 8, 0xab1de);
  const SplitBytes split = SplitHighLow(ByteSpan(rows.data(), rows.size()),
                                        8, 2);
  const Bytes merged = MergeHighLow(split.high, split.low, 8, 2);
  EXPECT_TRUE(std::equal(merged.begin(), merged.end(), rows.begin()));

  const Bytes cols = RowToColumn(ByteSpan(rows.data(), rows.size()), 8);
  const Bytes back = ColumnToRow(cols, 8);
  EXPECT_TRUE(std::equal(back.begin(), back.end(), rows.begin()));

  const IdIndex index =
      IdIndex::FromFrequency(AnalyzePairFrequency(split.high));
  const Bytes ids = MapToIds(split.high, index, Linearization::kColumn);
  const Bytes seqs = MapFromIds(ids, index, Linearization::kColumn);
  EXPECT_TRUE(std::equal(seqs.begin(), seqs.end(), split.high.begin()));
}

TEST_P(KernelIdentityTest, ExactErrorsSurviveKernelPath) {
  std::vector<std::uint16_t> mapped = {0x3ff0};
  const IdIndex index = IdIndex::FromSequences(mapped);
  const std::vector<std::byte> unknown = {std::byte{0x12}, std::byte{0x34}};
  EXPECT_THROW(MapToIds(ByteSpan(unknown.data(), unknown.size()), index,
                        Linearization::kRow),
               InvalidArgumentError);
  const std::vector<std::byte> big_id = {std::byte{0x00}, std::byte{0x05}};
  EXPECT_THROW(MapFromIds(ByteSpan(big_id.data(), big_id.size()), index,
                          Linearization::kRow),
               CorruptStreamError);
}

INSTANTIATE_TEST_SUITE_P(
    AllIsas, KernelIdentityTest, ::testing::ValuesIn(AvailableIsas()),
    [](const ::testing::TestParamInfo<Isa>& param_info) {
      return std::string(IsaName(param_info.param));
    });

TEST(KernelDispatchTest, ActiveMatchesForcedIsa) {
  for (Isa isa : AvailableIsas()) {
    ASSERT_TRUE(ForceIsa(isa));
    EXPECT_EQ(ActiveIsa(), isa);
    EXPECT_EQ(&Active(), TableFor(isa));
  }
  EXPECT_FALSE(ForceIsa(static_cast<Isa>(0x7f)));
}

TEST(KernelDispatchTest, IsaNamesAreStable) {
  EXPECT_STREQ(IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(IsaName(Isa::kSse2), "sse2");
  EXPECT_STREQ(IsaName(Isa::kAvx2), "avx2");
}

}  // namespace
}  // namespace primacy::kernels
