// Regenerates the golden compatibility corpus in tests/golden/data/.
//
//   ./make_golden <output-dir>
//
// The corpus pins the on-disk shape of every supported stream version so
// future format work cannot silently break old checkpoints: the committed
// inputs are the source of truth, and golden_corpus_test.cc asserts each
// committed stream still decodes bit-identically to them. Regenerate (and
// re-commit) only when intentionally adding corpus entries — never rewrite
// history for an existing version.
#include <bit>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bitstream/byte_io.h"
#include "core/chunk_pipeline.h"
#include "core/primacy_codec.h"
#include "core/stream_format.h"
#include "datasets/datasets.h"
#include "store/checkpoint_store.h"
#include "util/rng.h"

namespace {

using namespace primacy;

PrimacyOptions GoldenOptions() {
  PrimacyOptions options;
  options.chunk_bytes = 2048;  // 256 doubles per chunk -> several chunks
  return options;
}

// Deterministic input: a smooth dataset with adversarial doubles mixed in
// and a dangling byte so the tail block is exercised.
Bytes GoldenInput() {
  std::vector<double> values = GenerateDatasetByName("num_plasma", 600);
  Rng rng(0x601d);
  const double specials[] = {0.0, -0.0, 5e-324, 1.7976931348623157e308,
                             std::bit_cast<double>(0x7ff0000000000000ull),
                             std::bit_cast<double>(0xfff0000000000000ull),
                             std::bit_cast<double>(0x7ff8000000000001ull)};
  for (int i = 0; i < 40; ++i) {
    values[rng.NextBelow(values.size())] = specials[rng.NextBelow(7)];
  }
  Bytes input = ToBytes(AsBytes(values));
  input.push_back(std::byte{0x42});  // partial trailing element
  return input;
}

Bytes GoldenNoise() {
  Rng rng(0xbad5eed);
  std::vector<double> noise(512);
  for (auto& v : noise) {
    v = std::bit_cast<double>(rng.NextU64() & 0x7fefffffffffffffull);
  }
  return ToBytes(AsBytes(noise));
}

Bytes MakeV1(ByteSpan input, const PrimacyOptions& options) {
  Bytes out;
  internal::WriteStreamHeader(out, options, input.size(), /*stored=*/false,
                              internal::kFormatVersion1);
  const auto solver = internal::ResolveSolver(options.solver);
  ChunkEncoder encoder(options, *solver);
  const std::size_t tail = input.size() % 8;
  const std::size_t chunk_bytes = options.chunk_bytes;
  for (std::size_t first = 0; first + 8 <= input.size() - tail;
       first += chunk_bytes) {
    const std::size_t count =
        std::min(chunk_bytes, input.size() - tail - first);
    encoder.EncodeChunk(input.subspan(first, count), out);
  }
  PutBlock(out, input.last(tail));
  return out;
}

Bytes MakeV2(ByteSpan input, const PrimacyOptions& options) {
  Bytes out;
  internal::WriteStreamHeader(out, options, input.size(), /*stored=*/false,
                              internal::kFormatVersion2);
  const auto solver = internal::ResolveSolver(options.solver);
  ChunkEncoder encoder(options, *solver);
  const std::size_t tail = input.size() % 8;
  const std::size_t chunk_bytes = options.chunk_bytes;
  internal::ChunkDirectory directory;
  for (std::size_t first = 0; first + 8 <= input.size() - tail;
       first += chunk_bytes) {
    const std::size_t count =
        std::min(chunk_bytes, input.size() - tail - first);
    internal::ChunkDirectoryEntry entry;
    entry.offset = out.size();
    entry.elements = count / 8;
    entry.index_flag = 1;
    encoder.EncodeChunk(input.subspan(first, count), out);
    directory.chunks.push_back(entry);
  }
  directory.tail_offset = out.size();
  PutBlock(out, input.last(tail));
  internal::AppendChunkDirectory(out, directory, internal::kFormatVersion2);
  return out;
}

void WriteFile(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) {
    std::fprintf(stderr, "make_golden: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), data.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_golden <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  const PrimacyOptions options = GoldenOptions();

  const Bytes input = GoldenInput();
  WriteFile(dir + "/input.bin", input);
  WriteFile(dir + "/stream_v1.bin", MakeV1(input, options));
  WriteFile(dir + "/stream_v2.bin", MakeV2(input, options));
  WriteFile(dir + "/stream_v3.bin",
            PrimacyCompressor(options).CompressBytes(input));

  const Bytes noise = GoldenNoise();
  WriteFile(dir + "/noise.bin", noise);
  WriteFile(dir + "/stored_v3.bin",
            PrimacyCompressor(options).CompressBytes(noise));

  CheckpointWriter writer(options);
  const std::vector<double> doubles =
      FromBytes<double>(ByteSpan(input).first(input.size() - 1));
  writer.Add("phi", std::span(doubles));
  const std::vector<double> noise_doubles = FromBytes<double>(noise);
  writer.Add("noise", std::span(noise_doubles));
  WriteFile(dir + "/checkpoint.bin", writer.Finish());
  return 0;
}
