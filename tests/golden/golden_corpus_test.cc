// Golden compatibility corpus: committed streams of every supported format
// version must keep decoding bit-identically to their committed inputs.
// A failure here means a format change broke old checkpoints — that needs a
// new format version and a reader for the old one, not a corpus update.
// (Regenerate with make_golden only when intentionally adding entries.)
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "core/primacy_codec.h"
#include "core/stream_format.h"
#include "store/checkpoint_store.h"
#include "util/error.h"

namespace primacy {
namespace {

Bytes ReadGolden(const std::string& name) {
  const std::string path = std::string(PRIMACY_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "missing golden file " << path
                  << " (regenerate with make_golden)";
    return {};
  }
  const std::string raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  return BytesFromString(raw);
}

struct GoldenStream {
  const char* file;
  const char* input;
  std::uint8_t version;
  bool stored;
};

class GoldenCorpusTest : public ::testing::TestWithParam<GoldenStream> {};

TEST_P(GoldenCorpusTest, DecodesBitIdenticallyToCommittedInput) {
  const GoldenStream& golden = GetParam();
  const Bytes stream = ReadGolden(golden.file);
  const Bytes input = ReadGolden(golden.input);
  ASSERT_FALSE(stream.empty());
  ASSERT_FALSE(input.empty());
  EXPECT_EQ(static_cast<std::uint8_t>(stream[4]), golden.version);

  const Bytes decoded = PrimacyDecompressor().DecompressBytes(stream);
  EXPECT_EQ(decoded, input) << golden.file;

  // The verifier agrees the committed stream is healthy.
  const StreamVerifyResult verdict = VerifyStream(stream);
  EXPECT_TRUE(verdict.ok) << golden.file << ": " << verdict.error;
  EXPECT_EQ(verdict.version, golden.version);
  EXPECT_EQ(verdict.has_checksums,
            golden.version >= internal::kFormatVersion3);

  if (!golden.stored && golden.version >= internal::kFormatVersion2) {
    // Range reads work against committed directories (8 whole elements in
    // from the front, spanning a chunk boundary at 256).
    const Bytes slice =
        PrimacyDecompressor().DecompressBytesRange(stream, 250, 12);
    EXPECT_EQ(slice, Bytes(input.begin() + 250 * 8,
                           input.begin() + 262 * 8));
  }
}

TEST_P(GoldenCorpusTest, CachedDecodeMatchesUncachedByteForByte) {
  // Cache-ON decode of the committed corpus must stay byte-identical to the
  // seed's uncached decode: v2+ directory streams decode through the cache
  // (second pass all hits), v1 and stored streams bypass it entirely.
  const GoldenStream& golden = GetParam();
  const Bytes stream = ReadGolden(golden.file);
  const Bytes input = ReadGolden(golden.input);
  ASSERT_FALSE(stream.empty());

  PrimacyOptions options;
  options.cache.enabled = true;
  options.cache.capacity_bytes = 4 * 1024 * 1024;
  const PrimacyDecompressor cached(options);
  ASSERT_NE(cached.cache(), nullptr);

  PrimacyDecodeStats cold;
  EXPECT_EQ(cached.DecompressBytes(stream, &cold), input) << golden.file;
  PrimacyDecodeStats warm;
  EXPECT_EQ(cached.DecompressBytes(stream, &warm), input) << golden.file;

  const bool cacheable =
      !golden.stored && golden.version >= internal::kFormatVersion2;
  if (cacheable) {
    EXPECT_GT(warm.cache_hits, 0u);
    EXPECT_EQ(warm.chunks_decoded, 0u);
    // Warm range reads agree with the seed's uncached range reads.
    PrimacyDecodeStats range_stats;
    const Bytes slice =
        cached.DecompressBytesRange(stream, 250, 12, &range_stats);
    EXPECT_EQ(slice,
              Bytes(input.begin() + 250 * 8, input.begin() + 262 * 8));
    EXPECT_EQ(range_stats.chunks_decoded, 0u);
    EXPECT_GT(range_stats.cache_hits, 0u);
  } else {
    // v1 and stored streams are never cached.
    EXPECT_EQ(cold.cache_misses, 0u);
    EXPECT_EQ(warm.cache_hits, 0u);
    EXPECT_EQ(cached.cache()->Stats().entries, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, GoldenCorpusTest,
    ::testing::Values(
        GoldenStream{"stream_v1.bin", "input.bin", 1, false},
        GoldenStream{"stream_v2.bin", "input.bin", 2, false},
        GoldenStream{"stream_v3.bin", "input.bin", 3, false},
        GoldenStream{"stored_v3.bin", "noise.bin", 3, true}),
    [](const ::testing::TestParamInfo<GoldenStream>& info) {
      std::string name = info.param.file;
      name.resize(name.size() - 4);  // drop ".bin"
      return name;
    });

TEST(GoldenCheckpointTest, CommittedCheckpointRestores) {
  const Bytes checkpoint = ReadGolden("checkpoint.bin");
  const Bytes input = ReadGolden("input.bin");
  const Bytes noise = ReadGolden("noise.bin");
  ASSERT_FALSE(checkpoint.empty());
  const CheckpointReader reader(checkpoint);
  ASSERT_EQ(reader.variables().size(), 2u);

  const auto phi = reader.ReadDoubles("phi");
  EXPECT_EQ(ToBytes(AsBytes(std::span(phi))),
            Bytes(input.begin(), input.end() - 1));
  const auto restored_noise = reader.ReadDoubles("noise");
  EXPECT_EQ(ToBytes(AsBytes(std::span(restored_noise))), noise);

  for (const auto& result : reader.VerifyAll()) {
    EXPECT_TRUE(result.stream.ok) << result.name << ": "
                                  << result.stream.error;
  }
}

}  // namespace
}  // namespace primacy
