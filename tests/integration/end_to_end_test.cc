// End-to-end staging experiments wired the same way bench/fig4_end_to_end
// is: real codec measurements calibrate the performance model and the
// cluster simulator, and the Figure-4 orderings must come out (PRIMACY
// improves writes and reads; vanilla solvers improve writes modestly and
// *hurt* reads).
#include <gtest/gtest.h>

#include "compress/codec.h"
#include "core/primacy_codec.h"
#include "datasets/datasets.h"
#include "deflate/deflate.h"
#include "hpcsim/staging.h"
#include "lzfast/lzfast.h"
#include "model/perf_model.h"

namespace primacy {
namespace {

using hpcsim::ClusterConfig;
using hpcsim::CompressionProfile;
using hpcsim::SimulateRead;
using hpcsim::SimulateWrite;

/// Jaguar-like staging parameters scaled to one I/O group. The network is
/// deliberately the bottleneck relative to compression, as on the paper's
/// testbed where compression at compute nodes pays off.
ClusterConfig TestCluster() {
  ClusterConfig config;
  config.compute_nodes = 8;
  config.compute_per_io = 8;
  // Slow shared storage relative to per-node compression speed, as on the
  // paper's testbed (Figure 4a's end-to-end write throughput sits at a few
  // MB/s per compute node).
  config.network_bps = 120e6;
  config.disk_write_bps = 25e6;
  config.disk_read_bps = 80e6;
  return config;
}

/// Builds a calibrated profile from real measured codec behaviour on the
/// dataset: virtual cluster time + real CPU throughputs. Writes are split
/// into pipelined chunks (as in bench/fig4_end_to_end and a staged in-situ
/// deployment), which also de-flakes the comparison against wall-clock
/// noise on a loaded machine.
CompressionProfile ProfileFor(const Codec& codec, ByteSpan raw) {
  const CodecMeasurement m = MeasureCodec(codec, raw);
  constexpr double kChunks = 8.0;
  CompressionProfile profile;
  profile.chunks_per_node = static_cast<std::size_t>(kChunks);
  profile.input_bytes = static_cast<double>(raw.size()) / kChunks;
  profile.output_bytes = static_cast<double>(m.compressed_bytes) / kChunks;
  profile.compress_seconds = m.compress_seconds / kChunks;
  profile.decompress_seconds = m.decompress_seconds / kChunks;
  return profile;
}

CompressionProfile NullProfile(double bytes) {
  constexpr double kChunks = 8.0;
  CompressionProfile profile =
      CompressionProfile::Null(bytes / kChunks);
  profile.chunks_per_node = static_cast<std::size_t>(kChunks);
  return profile;
}

TEST(EndToEndTest, PrimacyImprovesWriteThroughputOverNull) {
  const auto values = GenerateDatasetByName("num_plasma", 128 * 1024);
  const ByteSpan raw = AsBytes(values);
  const ClusterConfig cluster = TestCluster();
  const auto null_result =
      SimulateWrite(cluster, NullProfile(static_cast<double>(raw.size())));
  const PrimacyCodec primacy;
  const auto primacy_result = SimulateWrite(cluster, ProfileFor(primacy, raw));
  EXPECT_GT(primacy_result.ThroughputMBps(), null_result.ThroughputMBps());
}

TEST(EndToEndTest, PrimacyImprovesReadThroughputOverNull) {
  const auto values = GenerateDatasetByName("num_plasma", 128 * 1024);
  const ByteSpan raw = AsBytes(values);
  const ClusterConfig cluster = TestCluster();
  const auto null_result = SimulateRead(
      cluster, CompressionProfile::Null(static_cast<double>(raw.size())));
  const PrimacyCodec primacy;
  const auto primacy_result = SimulateRead(cluster, ProfileFor(primacy, raw));
  EXPECT_GT(primacy_result.ThroughputMBps(), null_result.ThroughputMBps());
}

TEST(EndToEndTest, PrimacyBeatsVanillaSolverOnWrites) {
  const auto values = GenerateDatasetByName("obs_temp", 128 * 1024);
  const ByteSpan raw = AsBytes(values);
  const ClusterConfig cluster = TestCluster();
  const DeflateCodec solver;
  const PrimacyCodec primacy;
  const auto solver_result = SimulateWrite(cluster, ProfileFor(solver, raw));
  const auto primacy_result = SimulateWrite(cluster, ProfileFor(primacy, raw));
  EXPECT_GT(primacy_result.ThroughputMBps(), solver_result.ThroughputMBps());
}

TEST(EndToEndTest, VanillaSolverHurtsReads) {
  // Figure 4(b): zlib/lzo vanilla decompression reduces read throughput
  // below the null case; the read path is disk+network bound and vanilla
  // decompression of the whole stream adds more CPU time than the reduced
  // payload saves.
  const auto values = GenerateDatasetByName("gts_phi_l", 128 * 1024);
  const ByteSpan raw = AsBytes(values);
  ClusterConfig cluster = TestCluster();
  // Fast read path as on Lustre reads served from OSS cache.
  cluster.disk_read_bps = 2e9;
  cluster.network_bps = 2e9;
  const auto null_result = SimulateRead(
      cluster, CompressionProfile::Null(static_cast<double>(raw.size())));
  const DeflateCodec solver;
  const auto solver_result = SimulateRead(cluster, ProfileFor(solver, raw));
  EXPECT_LT(solver_result.ThroughputMBps(), null_result.ThroughputMBps());
}

TEST(EndToEndTest, ModelPredictionsTrackSimulatorForCalibratedProfile) {
  const auto values = GenerateDatasetByName("flash_velx", 128 * 1024);
  const PrimacyCompressor compressor;
  PrimacyStats stats;
  const Bytes stream = compressor.Compress(values, &stats);

  ModelInputs in;
  in.chunk_bytes = static_cast<double>(stats.input_bytes);
  in.rho = 8.0;
  in.network_bps = 120e6;
  in.disk_write_bps = 60e6;
  in = CalibrateFromMeasurements(in, stats, 500e6, 50e6, 200e6, 700e6);

  const double model_payload = PrimacyOutputBytes(in);
  const double actual_payload = static_cast<double>(stream.size());
  // The model's payload estimate must track the real compressed size.
  EXPECT_NEAR(model_payload / actual_payload, 1.0, 0.25);
}

}  // namespace
}  // namespace primacy
