// Integration tests pinning the paper's qualitative claims on the synthetic
// dataset suite: PRIMACY's compression-ratio and throughput wins over the
// deflate-class solver (Table III), the column-linearization advantage
// (Section IV-H), and the predictive-coder comparison under permutation
// (Section V). Absolute numbers differ from the paper (different solver
// implementation, synthetic data); the *direction* of every claim must hold.
#include <gtest/gtest.h>

#include "compress/codec.h"
#include "core/primacy_codec.h"
#include "datasets/datasets.h"
#include "deflate/deflate.h"
#include "fpc/fpc_codec.h"
#include "fpzip_like/fpz_codec.h"
#include "util/byte_matrix.h"

namespace primacy {
namespace {

constexpr std::size_t kElements = 96 * 1024;  // 768 KB per dataset

double Ratio(std::size_t original, std::size_t compressed) {
  return static_cast<double>(original) / static_cast<double>(compressed);
}

class PerDataset : public ::testing::TestWithParam<int> {
 protected:
  const DatasetSpec& spec() const {
    return AllDatasets()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(PerDataset, PrimacyRoundTripsEveryDataset) {
  const auto values = GenerateDataset(spec(), kElements);
  const PrimacyCompressor compressor;
  const PrimacyDecompressor decompressor;
  EXPECT_EQ(decompressor.Decompress(compressor.Compress(values)), values);
}

INSTANTIATE_TEST_SUITE_P(AllTwenty, PerDataset, ::testing::Range(0, 20),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return AllDatasets()
                               [static_cast<std::size_t>(info.param)]
                                   .name;
                         });

TEST(TableThreeClaims, PrimacyBeatsSolverRatioOnAlmostAllDatasets) {
  const DeflateCodec solver;
  const PrimacyCompressor primacy;
  int wins = 0;
  for (const DatasetSpec& spec : AllDatasets()) {
    const auto values = GenerateDataset(spec, kElements);
    const ByteSpan raw = AsBytes(values);
    const double solver_ratio = Ratio(raw.size(), solver.Compress(raw).size());
    const double primacy_ratio =
        Ratio(raw.size(), primacy.Compress(values).size());
    wins += (primacy_ratio > solver_ratio);
  }
  // Paper: 19 of 20 (msg_sppm is the exception).
  EXPECT_GE(wins, 16) << "PRIMACY should out-compress the vanilla solver on "
                         "nearly every dataset";
}

TEST(TableThreeClaims, PrimacyCompressesFasterOnHardDatasets) {
  // The throughput win comes from ISOBAR skipping incompressible mantissa
  // bytes; check a clearly hard dataset end to end.
  const auto values = GenerateDatasetByName("gts_chkp_zeon", kElements);
  const ByteSpan raw = AsBytes(values);
  const DeflateCodec solver;
  const PrimacyCodec primacy;
  const CodecMeasurement vanilla = MeasureCodec(solver, raw);
  const CodecMeasurement precond = MeasureCodec(primacy, raw);
  EXPECT_GT(precond.CompressMBps(), vanilla.CompressMBps());
  EXPECT_GT(precond.DecompressMBps(), vanilla.DecompressMBps());
}

TEST(LinearizationClaims, ColumnBeatsRowOnIdBytes) {
  // Section IV-H: column linearization gains ~8-10% compression ratio.
  int column_wins = 0;
  int datasets = 0;
  for (const DatasetSpec& spec : AllDatasets()) {
    const auto values = GenerateDataset(spec, kElements / 2);
    PrimacyOptions row;
    row.linearization = Linearization::kRow;
    PrimacyOptions column;
    column.linearization = Linearization::kColumn;
    const std::size_t row_size =
        PrimacyCompressor(row).Compress(values).size();
    const std::size_t column_size =
        PrimacyCompressor(column).Compress(values).size();
    column_wins += (column_size <= row_size);
    ++datasets;
  }
  EXPECT_GE(column_wins, datasets * 3 / 4);
}

TEST(SectionVClaims, PredictiveCodersDegradeUnderPermutation) {
  // fpc/fpz rely on sequential correlation; PRIMACY's frequency statistics
  // are order-invariant. Permuting elements must hurt the predictive coders
  // far more than PRIMACY (Section V's reorganized-data experiment).
  const auto values = GenerateDatasetByName("msg_bt", kElements);
  const auto permuted = PermuteElements(values, 7);
  const ByteSpan raw = AsBytes(values);
  const ByteSpan raw_permuted = AsBytes(permuted);

  const FpcCodec fpc;
  const double fpc_ratio = Ratio(raw.size(), fpc.Compress(raw).size());
  const double fpc_permuted =
      Ratio(raw.size(), fpc.Compress(raw_permuted).size());

  const PrimacyCodec primacy;
  const double primacy_ratio =
      Ratio(raw.size(), primacy.Compress(raw).size());
  const double primacy_permuted =
      Ratio(raw.size(), primacy.Compress(raw_permuted).size());

  // Relative degradation must be much worse for the predictive coder.
  const double fpc_loss = fpc_ratio / fpc_permuted;
  const double primacy_loss = primacy_ratio / primacy_permuted;
  EXPECT_GT(fpc_loss, primacy_loss);
  // And on permuted data PRIMACY should win outright.
  EXPECT_GT(primacy_permuted, fpc_permuted * 0.95);
}

TEST(SectionVClaims, PredictiveCodersWinOnSmoothSequentialData) {
  // Fairness check the paper concedes: on smooth dimensionally-correlated
  // data the predictive coders are competitive or better.
  const auto values = GenerateDatasetByName("num_brain", kElements);
  const ByteSpan raw = AsBytes(values);
  const FpcCodec fpc;
  const PrimacyCodec primacy;
  const double fpc_ratio = Ratio(raw.size(), fpc.Compress(raw).size());
  const double primacy_ratio =
      Ratio(raw.size(), primacy.Compress(raw).size());
  EXPECT_GT(fpc_ratio, primacy_ratio * 0.8);
}

TEST(SectionIIClaims, RepeatabilityGainAveragesDoubleDigits) {
  // Section II-C: "increased the repeatability of the most frequently
  // occurring data byte by approximately 15% over the 20 datasets".
  double total_gain = 0.0;
  for (const DatasetSpec& spec : AllDatasets()) {
    const auto values = GenerateDataset(spec, kElements / 2);
    PrimacyStats stats;
    PrimacyCompressor().Compress(values, &stats);
    total_gain +=
        stats.top_byte_frequency_after - stats.top_byte_frequency_before;
  }
  const double mean_gain = total_gain / 20.0;
  EXPECT_GT(mean_gain, 0.05);
}

TEST(SppmException, EasyDataGainsLittleOrRegresses) {
  // msg_sppm: index overhead makes PRIMACY slightly worse (Table III).
  const auto values = GenerateDatasetByName("msg_sppm", kElements);
  const ByteSpan raw = AsBytes(values);
  const DeflateCodec solver;
  const PrimacyCompressor primacy;
  const double solver_ratio = Ratio(raw.size(), solver.Compress(raw).size());
  const double primacy_ratio =
      Ratio(raw.size(), primacy.Compress(values).size());
  // PRIMACY must not *meaningfully* beat the solver here; a big win would
  // mean the easy-to-compress profile is wrong.
  EXPECT_LT(primacy_ratio, solver_ratio * 1.1);
}

}  // namespace
}  // namespace primacy
