// Optimality properties of the package-merge construction, checked against
// a reference unconstrained Huffman cost computed with a priority queue.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "huffman/huffman.h"
#include "util/rng.h"

namespace primacy {
namespace {

/// Total encoded cost (sum over symbols of freq * length).
std::uint64_t Cost(std::span<const std::uint64_t> freq,
                   std::span<const std::uint8_t> lengths) {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    total += freq[s] * lengths[s];
  }
  return total;
}

/// Reference: unconstrained Huffman cost = sum of all internal-node weights
/// produced by the classic two-smallest merge.
std::uint64_t ReferenceHuffmanCost(std::span<const std::uint64_t> freq) {
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>> heap;
  for (const std::uint64_t f : freq) {
    if (f != 0) heap.push(f);
  }
  if (heap.size() < 2) return heap.size();  // degenerate: 1 bit per symbol
  std::uint64_t cost = 0;
  while (heap.size() > 1) {
    const std::uint64_t a = heap.top();
    heap.pop();
    const std::uint64_t b = heap.top();
    heap.pop();
    cost += a + b;
    heap.push(a + b);
  }
  return cost;
}

TEST(PackageMergeOptimalityTest, MatchesUnconstrainedHuffmanWhenDepthFits) {
  // Frequencies within a 2x band keep the optimal depth near log2(n), far
  // below the 15-bit cap, so the constrained optimum equals the Huffman
  // optimum exactly.
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint64_t> freq(256);
    for (auto& f : freq) f = 100 + rng.NextBelow(100);
    const auto lengths = BuildCodeLengths(freq);
    EXPECT_EQ(Cost(freq, lengths), ReferenceHuffmanCost(freq))
        << "trial " << trial;
  }
}

TEST(PackageMergeOptimalityTest, ConstrainedCostNeverBelowUnconstrained) {
  // With wildly skewed frequencies the 15-bit cap may bind; the constrained
  // cost must then be >= the unconstrained optimum (and still decodable,
  // which BuildCodeLengths' Kraft check enforces).
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> freq(64);
    std::uint64_t value = 1;
    for (auto& f : freq) {
      f = value;
      value = value * 2 > 1000000 ? 1 : value * 2;  // exponential bands
    }
    // Shuffle so symbol order is not depth order.
    for (std::size_t i = freq.size(); i > 1; --i) {
      std::swap(freq[i - 1], freq[rng.NextBelow(i)]);
    }
    const auto lengths = BuildCodeLengths(freq);
    EXPECT_GE(Cost(freq, lengths), ReferenceHuffmanCost(freq));
  }
}

TEST(PackageMergeOptimalityTest, CostMonotoneInLengthBudget) {
  // A tighter cap can only cost more.
  Rng rng(44);
  std::vector<std::uint64_t> freq(200);
  for (auto& f : freq) f = 1 + rng.NextSkewed(100000, 0.999);
  std::uint64_t previous = ~std::uint64_t{0};
  for (unsigned cap : {8u, 10u, 12u, 15u}) {
    const auto lengths = BuildCodeLengths(freq, cap);
    const std::uint64_t cost = Cost(freq, lengths);
    EXPECT_LE(cost, previous) << "cap " << cap;
    previous = cost;
  }
}

}  // namespace
}  // namespace primacy
