#include "huffman/huffman.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace primacy {
namespace {

double KraftSum(std::span<const std::uint8_t> lengths) {
  double sum = 0.0;
  for (const std::uint8_t len : lengths) {
    if (len != 0) sum += std::pow(2.0, -static_cast<double>(len));
  }
  return sum;
}

TEST(BuildCodeLengthsTest, EmptyAlphabetGivesAllZeros) {
  const std::vector<std::uint64_t> freq(10, 0);
  const auto lengths = BuildCodeLengths(freq);
  for (const auto len : lengths) EXPECT_EQ(len, 0);
}

TEST(BuildCodeLengthsTest, SingleSymbolGetsLengthOne) {
  std::vector<std::uint64_t> freq(10, 0);
  freq[4] = 99;
  const auto lengths = BuildCodeLengths(freq);
  EXPECT_EQ(lengths[4], 1);
  EXPECT_EQ(std::accumulate(lengths.begin(), lengths.end(), 0), 1);
}

TEST(BuildCodeLengthsTest, TwoSymbolsGetOneBitEach) {
  const std::vector<std::uint64_t> freq{5, 100};
  const auto lengths = BuildCodeLengths(freq);
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[1], 1);
}

TEST(BuildCodeLengthsTest, KraftEqualityHolds) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> freq(256);
    for (auto& f : freq) f = rng.NextBelow(1000);
    const auto lengths = BuildCodeLengths(freq);
    std::size_t active = 0;
    for (const auto f : freq) active += (f != 0);
    if (active < 2) continue;
    EXPECT_NEAR(KraftSum(lengths), 1.0, 1e-12);
  }
}

TEST(BuildCodeLengthsTest, RespectsMaxLength) {
  // Fibonacci-like frequencies force deep unconstrained Huffman trees.
  std::vector<std::uint64_t> freq(30);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freq) {
    f = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  for (unsigned max_len : {5u, 8u, 15u}) {
    const auto lengths = BuildCodeLengths(freq, max_len);
    for (const auto len : lengths) EXPECT_LE(len, max_len);
    EXPECT_NEAR(KraftSum(lengths), 1.0, 1e-12);
  }
}

TEST(BuildCodeLengthsTest, MoreFrequentSymbolsGetShorterOrEqualCodes) {
  const std::vector<std::uint64_t> freq{1000, 500, 100, 10, 1};
  const auto lengths = BuildCodeLengths(freq);
  for (std::size_t i = 0; i + 1 < freq.size(); ++i) {
    EXPECT_LE(lengths[i], lengths[i + 1]);
  }
}

TEST(BuildCodeLengthsTest, CostIsWithinOneBitOfEntropy) {
  // Optimality sanity: average code length <= H + 1 (Huffman bound).
  Rng rng(2);
  std::vector<std::uint64_t> freq(256);
  Bytes sample(100000);
  for (auto& byte : sample) {
    byte = static_cast<std::byte>(rng.NextSkewed(256, 0.95));
  }
  for (const auto byte : sample) ++freq[static_cast<std::size_t>(byte)];
  const auto lengths = BuildCodeLengths(freq);
  double total_bits = 0.0;
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < 256; ++s) {
    total_bits += static_cast<double>(freq[s]) * lengths[s];
    total += freq[s];
  }
  const double avg_len = total_bits / static_cast<double>(total);
  const double entropy = ByteEntropyBits(sample);
  EXPECT_LE(avg_len, entropy + 1.0);
  EXPECT_GE(avg_len, entropy);  // Shannon lower bound
}

TEST(BuildCodeLengthsTest, AlphabetTooLargeForMaxLengthThrows) {
  const std::vector<std::uint64_t> freq(5, 1);  // 5 symbols, max length 2
  EXPECT_THROW(BuildCodeLengths(freq, 2), InvalidArgumentError);
  EXPECT_THROW(BuildCodeLengths(freq, 0), InvalidArgumentError);
  EXPECT_THROW(BuildCodeLengths(freq, 16), InvalidArgumentError);
}

TEST(HuffmanDecoderTest, OversizedWireAlphabetRejected) {
  // Table entries hold u16 symbols; a 2^16+1 length vector off the wire
  // must be rejected rather than decoded with truncated symbol ids.
  std::vector<std::uint8_t> lengths(65537, 0);
  lengths[0] = 1;
  lengths[1] = 1;
  EXPECT_THROW(HuffmanDecoder{lengths}, CorruptStreamError);
}

TEST(HuffmanRoundTripTest, EncodesAndDecodesSkewedStream) {
  Rng rng(3);
  std::vector<std::uint64_t> freq(64, 0);
  std::vector<std::size_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    symbols.push_back(rng.NextSkewed(64, 0.8));
    ++freq[symbols.back()];
  }
  const auto lengths = BuildCodeLengths(freq);
  const HuffmanEncoder encoder(lengths);
  BitWriter writer;
  for (const auto s : symbols) encoder.Encode(writer, s);
  const Bytes data = writer.Finish();

  const HuffmanDecoder decoder(lengths);
  BitReader reader(data);
  for (const auto s : symbols) EXPECT_EQ(decoder.Decode(reader), s);
}

TEST(HuffmanRoundTripTest, DegenerateSingleSymbolStream) {
  std::vector<std::uint64_t> freq(10, 0);
  freq[7] = 5;
  const auto lengths = BuildCodeLengths(freq);
  const HuffmanEncoder encoder(lengths);
  BitWriter writer;
  for (int i = 0; i < 5; ++i) encoder.Encode(writer, 7);
  const Bytes data = writer.Finish();
  const HuffmanDecoder decoder(lengths);
  BitReader reader(data);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(decoder.Decode(reader), 7u);
}

TEST(HuffmanRoundTripTest, FullByteAlphabet) {
  Rng rng(4);
  std::vector<std::uint64_t> freq(256, 1);  // every symbol present
  const auto lengths = BuildCodeLengths(freq);
  const HuffmanEncoder encoder(lengths);
  const HuffmanDecoder decoder(lengths);
  BitWriter writer;
  std::vector<std::size_t> symbols;
  for (int i = 0; i < 4096; ++i) {
    symbols.push_back(rng.NextBelow(256));
    encoder.Encode(writer, symbols.back());
  }
  const Bytes data = writer.Finish();
  BitReader reader(data);
  for (const auto s : symbols) EXPECT_EQ(decoder.Decode(reader), s);
}

TEST(HuffmanDecoderTest, EmptyCodeRejected) {
  // Decoder lengths arrive off the wire, so malformed ones are stream
  // corruption, not caller error.
  const std::vector<std::uint8_t> lengths(8, 0);
  EXPECT_THROW(HuffmanDecoder decoder(lengths), CorruptStreamError);
}

TEST(HuffmanDecoderTest, OversubscribedLengthsRejected) {
  // Three symbols of length 1 oversubscribe.
  const std::vector<std::uint8_t> lengths{1, 1, 1};
  EXPECT_THROW(HuffmanDecoder decoder(lengths), CorruptStreamError);
  EXPECT_THROW(HuffmanEncoder encoder(lengths), InvalidArgumentError);
}

TEST(HuffmanDecoderTest, IncompleteCodeInvalidWindowThrows) {
  // Lengths {2, 2}: windows starting with the two missing 2-bit codes are
  // invalid and must be rejected, not silently decoded.
  const std::vector<std::uint8_t> lengths{2, 2};
  const HuffmanDecoder decoder(lengths);
  // Codes assigned canonically: symbol0 = 00, symbol1 = 01 (MSB-first).
  // An all-ones byte cannot start with either code.
  const Bytes data{0xff_b};
  BitReader reader(data);
  EXPECT_THROW(decoder.Decode(reader), CorruptStreamError);
}

TEST(CodeLengthSerializationTest, RoundTripsTypicalVectors) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> freq(286, 0);
    for (int i = 0; i < 5000; ++i) ++freq[rng.NextSkewed(286, 0.9)];
    const auto lengths = BuildCodeLengths(freq);
    const Bytes serialized = SerializeCodeLengths(lengths);
    EXPECT_EQ(DeserializeCodeLengths(serialized, lengths.size()), lengths);
  }
}

TEST(CodeLengthSerializationTest, SizeMismatchThrows) {
  const std::vector<std::uint8_t> lengths{1, 1};
  const Bytes serialized = SerializeCodeLengths(lengths);
  EXPECT_THROW(DeserializeCodeLengths(serialized, 3), CorruptStreamError);
}

TEST(CodeLengthSerializationTest, CompactForRunHeavyVectors) {
  std::vector<std::uint8_t> lengths(286, 0);
  lengths[0] = 1;
  lengths[285] = 1;
  const Bytes serialized = SerializeCodeLengths(lengths);
  EXPECT_LT(serialized.size(), 20u);
}

}  // namespace
}  // namespace primacy
