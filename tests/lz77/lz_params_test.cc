// Parameterized sweep over LzParams: every knob combination must parse
// losslessly, and stronger settings must not produce worse parses.
#include <gtest/gtest.h>

#include <tuple>

#include "lz77/lz77.h"
#include "util/rng.h"

namespace primacy {
namespace {

Bytes MixedData(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out;
  const Bytes phrase = BytesFromString("repeated segment content ");
  while (out.size() < n) {
    if (rng.NextBool(0.6)) {
      AppendBytes(out, phrase);
    } else {
      for (int i = 0; i < 16; ++i) {
        out.push_back(static_cast<std::byte>(rng.NextBelow(256)));
      }
    }
  }
  out.resize(n);
  return out;
}

std::size_t ParseCost(const std::vector<LzToken>& tokens) {
  // Rough coded size proxy: 1 byte per literal, 3 per match.
  std::size_t cost = 0;
  for (const LzToken& token : tokens) cost += token.IsLiteral() ? 1 : 3;
  return cost;
}

class LzParamSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(LzParamSweep, RoundTripsUnderAllKnobs) {
  const auto [chain_exp, nice, lazy] = GetParam();
  LzParams params;
  params.max_chain = 1u << chain_exp;
  params.nice_length = static_cast<std::size_t>(nice);
  params.lazy = lazy;
  const Bytes data = MixedData(60000, 99);
  const auto tokens = LzParse(data, params);
  EXPECT_EQ(LzExpand(tokens, data.size()), data);
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, LzParamSweep,
    ::testing::Combine(::testing::Values(0, 3, 7, 10),
                       ::testing::Values(8, 64, 258),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, int, bool>>& info) {
      return "chain" + std::to_string(1 << std::get<0>(info.param)) +
             "_nice" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_lazy" : "_greedy");
    });

TEST(LzParamQualityTest, DeeperChainsNeverParseWorse) {
  const Bytes data = MixedData(200000, 7);
  LzParams shallow = LzParams::Fast();
  LzParams deep = LzParams::Thorough();
  const std::size_t shallow_cost = ParseCost(LzParse(data, shallow));
  const std::size_t deep_cost = ParseCost(LzParse(data, deep));
  EXPECT_LE(deep_cost, shallow_cost + shallow_cost / 50);
}

}  // namespace
}  // namespace primacy
