#include "lz77/lz77.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

Bytes RepetitiveData(std::size_t n, std::uint64_t seed) {
  // Mixture of repeated phrases and noise, the typical LZ-friendly profile.
  Rng rng(seed);
  const Bytes phrase = BytesFromString("the quick brown fox jumps over ");
  Bytes out;
  while (out.size() < n) {
    if (rng.NextBool(0.7)) {
      AppendBytes(out, phrase);
    } else {
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::byte>(rng.NextBelow(256)));
      }
    }
  }
  out.resize(n);
  return out;
}

class LzParseRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(LzParseRoundTrip, ExpandReproducesInput) {
  const auto [size, preset] = GetParam();
  const LzParams params = preset == 0   ? LzParams::Fast()
                          : preset == 1 ? LzParams::Default()
                                        : LzParams::Thorough();
  const Bytes data = RepetitiveData(size, size + static_cast<std::size_t>(preset));
  const auto tokens = LzParse(data, params);
  EXPECT_EQ(LzExpand(tokens, data.size()), data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndPresets, LzParseRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 257, 4096, 100000),
                       ::testing::Values(0, 1, 2)));

TEST(LzParseTest, EmptyInputYieldsNoTokens) {
  EXPECT_TRUE(LzParse({}, LzParams::Default()).empty());
  EXPECT_TRUE(LzExpand({}, 0).empty());
}

TEST(LzParseTest, ShortInputsAreAllLiterals) {
  const Bytes data = BytesFromString("ab");
  const auto tokens = LzParse(data, LzParams::Default());
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].IsLiteral());
  EXPECT_TRUE(tokens[1].IsLiteral());
}

TEST(LzParseTest, AllSameByteCompressesToFewTokens) {
  const Bytes data(10000, 7_b);
  const auto tokens = LzParse(data, LzParams::Default());
  // First literal, then overlapping distance-1 matches of max length.
  EXPECT_LT(tokens.size(), data.size() / 100);
  EXPECT_EQ(LzExpand(tokens, data.size()), data);
}

TEST(LzParseTest, FindsOverlappingRunMatches) {
  const Bytes data(600, 42_b);
  const auto tokens = LzParse(data, LzParams::Default());
  bool found_overlap = false;
  for (const auto& token : tokens) {
    if (!token.IsLiteral() && token.distance < token.length) {
      found_overlap = true;
    }
  }
  EXPECT_TRUE(found_overlap);
}

TEST(LzParseTest, RepeatedPhraseBecomesMatch) {
  Bytes data = BytesFromString("abcdefghij");
  AppendBytes(data, BytesFromString("abcdefghij"));
  const auto tokens = LzParse(data, LzParams::Default());
  bool has_match_of_ten = false;
  for (const auto& token : tokens) {
    if (!token.IsLiteral() && token.length == 10 && token.distance == 10) {
      has_match_of_ten = true;
    }
  }
  EXPECT_TRUE(has_match_of_ten);
  EXPECT_EQ(LzExpand(tokens, data.size()), data);
}

TEST(LzParseTest, IncompressibleDataRoundTrips) {
  Rng rng(9);
  Bytes data(50000);
  for (auto& b : data) b = static_cast<std::byte>(rng.NextBelow(256));
  const auto tokens = LzParse(data, LzParams::Default());
  EXPECT_EQ(LzExpand(tokens, data.size()), data);
}

TEST(LzParseTest, MatchesNeverCrossWindowBound) {
  // 40 KiB of structure: early phrases must not be referenced from beyond
  // the 32 KiB window.
  const Bytes data = RepetitiveData(80000, 17);
  const auto tokens = LzParse(data, LzParams::Thorough());
  std::size_t pos = 0;
  for (const auto& token : tokens) {
    if (!token.IsLiteral()) {
      EXPECT_LE(token.distance, kLzWindowSize);
      EXPECT_LE(token.distance, pos);
      EXPECT_GE(token.length, kLzMinMatch);
      EXPECT_LE(token.length, kLzMaxMatch);
      pos += token.length;
    } else {
      ++pos;
    }
  }
  EXPECT_EQ(pos, data.size());
}

TEST(LzExpandTest, RejectsBadDistance) {
  const std::vector<LzToken> tokens{
      LzToken{'a', 0, 0},
      LzToken{0, 5, 9},  // distance 9 > produced output (1)
  };
  EXPECT_THROW(LzExpand(tokens, 6), CorruptStreamError);
}

TEST(LzExpandTest, RejectsBadLength) {
  const std::vector<LzToken> tokens{
      LzToken{'a', 0, 0},
      LzToken{0, 2, 1},  // below kLzMinMatch
  };
  EXPECT_THROW(LzExpand(tokens, 3), CorruptStreamError);
}

TEST(LzExpandTest, RejectsSizeMismatch) {
  const std::vector<LzToken> tokens{LzToken{'a', 0, 0}};
  EXPECT_THROW(LzExpand(tokens, 2), CorruptStreamError);
}

TEST(LzParseTest, FastPresetStillCorrectOnPathologicalInput) {
  // Alternating two-byte pattern defeats 3-byte hashing sometimes; ensure
  // correctness regardless of match quality.
  Bytes data(30000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = (i % 2 == 0) ? 1_b : 2_b;
  }
  const auto tokens = LzParse(data, LzParams::Fast());
  EXPECT_EQ(LzExpand(tokens, data.size()), data);
}

}  // namespace
}  // namespace primacy
