// TSan-targeted stress over the decoded-block cache: many caller threads
// hammer one shared DecodedBlockCache — through concurrent DecompressRange
// calls with a capacity small enough to force eviction churn, through raw
// mixed lookup/insert/Clear traffic, and through concurrent full decodes.
// Run under PRIMACY_SANITIZE=thread (the sanitizer matrix's named stress
// pass) these catch races between shard mutation, LRU splicing, pin
// refcounting, and eviction that single-threaded functional tests cannot.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "cache/block_cache.h"
#include "core/primacy_codec.h"
#include "datasets/datasets.h"
#include "util/rng.h"

namespace primacy {
namespace {

constexpr std::size_t kChunkElements = 8192;  // 64 KiB chunks of doubles
constexpr std::size_t kChunks = 5;
constexpr std::size_t kElements = kChunks * kChunkElements;
constexpr std::size_t kCallerThreads = 8;
constexpr std::size_t kRangesPerThread = 12;

PrimacyOptions SmallChunks() {
  PrimacyOptions options;
  options.chunk_bytes = kChunkElements * 8;
  return options;
}

std::vector<double> Slice(const std::vector<double>& values, std::size_t first,
                          std::size_t count) {
  return std::vector<double>(
      values.begin() + static_cast<std::ptrdiff_t>(first),
      values.begin() + static_cast<std::ptrdiff_t>(first + count));
}

class CacheStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    values_ = GenerateDatasetByName("obs_temp", kElements);
    stream_ = PrimacyCompressor(SmallChunks()).Compress(values_);
  }

  std::vector<double> values_;
  Bytes stream_;
};

TEST_F(CacheStressTest, RangeReadStressConcurrentCallersSharedCacheChurn) {
  // Capacity holds ~2 of the 5 decoded chunks, so concurrent callers evict
  // each other's entries continuously while other callers hold pins.
  PrimacyOptions options = SmallChunks();
  options.threads = 2;
  options.cache.enabled = true;
  options.cache.capacity_bytes = 2 * kChunkElements * 8;
  options.cache.shard_count = 2;
  const PrimacyDecompressor decompressor(options);
  ASSERT_NE(decompressor.cache(), nullptr);

  std::vector<std::thread> callers;
  std::vector<std::string> failures(kCallerThreads);
  callers.reserve(kCallerThreads);
  for (std::size_t t = 0; t < kCallerThreads; ++t) {
    callers.emplace_back([this, &decompressor, &failures, t] {
      Rng rng(200 + t);
      for (std::size_t i = 0; i < kRangesPerThread; ++i) {
        const std::size_t first = rng.NextBelow(kElements);
        const std::size_t count = rng.NextBelow(kElements - first + 1);
        PrimacyDecodeStats stats;
        const auto range =
            decompressor.DecompressRange(stream_, first, count, &stats);
        if (range != Slice(values_, first, count)) {
          failures[t] = "range mismatch at first=" + std::to_string(first) +
                        " count=" + std::to_string(count);
          return;
        }
        if (stats.output_bytes != count * sizeof(double)) {
          failures[t] = "stats mismatch at first=" + std::to_string(first);
          return;
        }
      }
    });
  }
  for (auto& caller : callers) caller.join();
  for (std::size_t t = 0; t < kCallerThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "caller thread " << t;
  }
  // Churn really happened: the cache is far too small for the working set.
  EXPECT_GT(decompressor.cache()->Stats().evictions, 0u);
}

TEST_F(CacheStressTest, RawCacheStressMixedLookupInsertClear) {
  // Raw shard traffic with data integrity: every entry is filled with a
  // byte derived from its key, so a lookup that returns the wrong entry's
  // bytes (or bytes freed by a racing eviction) is caught immediately.
  CacheOptions options;
  options.enabled = true;
  options.capacity_bytes = 64 * 1024;  // small: constant eviction
  options.shard_count = 4;
  DecodedBlockCache cache(options);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 400;
  constexpr std::size_t kKeySpace = 64;
  constexpr std::size_t kEntryBytes = 1024;

  std::vector<std::thread> workers;
  std::vector<std::string> failures(kThreads);
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &failures, t] {
      Rng rng(300 + t);
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t stream_id = 1 + rng.NextBelow(2);
        const std::uint64_t chunk = rng.NextBelow(kKeySpace);
        const auto fill = static_cast<std::byte>(
            (stream_id * 131 + chunk * 17) & 0xff);
        const std::size_t op = rng.NextBelow(10);
        if (op < 5) {
          const auto handle = cache.Lookup(stream_id, chunk);
          if (handle) {
            const ByteSpan data = handle.data();
            if (data.size() != kEntryBytes || data[0] != fill ||
                data[data.size() - 1] != fill) {
              failures[t] = "corrupt entry for chunk " + std::to_string(chunk);
              return;
            }
          }
        } else if (op < 9) {
          cache.Insert(stream_id, chunk, Bytes(kEntryBytes, fill));
        } else {
          cache.Clear();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "worker thread " << t;
  }
  const CacheStatsSnapshot stats = cache.Stats();
  EXPECT_GT(stats.insertions, 0u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST_F(CacheStressTest, FullDecodeStressConcurrentDecodersSharedCache) {
  // Several caller threads run chunk-parallel full decodes against one
  // shared cache instance: the first fills, the rest race hits against
  // concurrent inserts of the same keys.
  PrimacyOptions options = SmallChunks();
  options.threads = 2;
  options.block_cache = MakeBlockCache([] {
    CacheOptions cache;
    cache.enabled = true;
    cache.capacity_bytes = 16 * 1024 * 1024;
    cache.shard_count = 4;
    return cache;
  }());
  const PrimacyDecompressor decompressor(options);

  constexpr std::size_t kDecoders = 6;
  std::vector<std::thread> callers;
  // int, not bool: vector<bool> packs bits, so writes to distinct elements
  // from different threads would themselves race.
  std::vector<int> ok(kDecoders, 0);
  callers.reserve(kDecoders);
  for (std::size_t t = 0; t < kDecoders; ++t) {
    callers.emplace_back([this, &decompressor, &ok, t] {
      for (int round = 0; round < 3; ++round) {
        PrimacyDecodeStats stats;
        if (decompressor.Decompress(stream_, &stats) != values_) return;
        if (stats.cache_hits + stats.chunks_decoded < kChunks) return;
      }
      ok[t] = 1;
    });
  }
  for (auto& caller : callers) caller.join();
  for (std::size_t t = 0; t < kDecoders; ++t) {
    EXPECT_TRUE(ok[t]) << "caller thread " << t;
  }
  // Across 18 decodes of a 5-chunk stream most chunks must have been hits.
  EXPECT_GT(options.block_cache->Stats().hits, 0u);
}

}  // namespace
}  // namespace primacy
