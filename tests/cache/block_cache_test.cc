// DecodedBlockCache semantics: hit/miss accounting, LRU eviction ordering,
// byte-budget enforcement, capacity-zero passthrough, and pinned-entry
// eviction deferral (the invariant that makes concurrent readers safe).
#include "cache/block_cache.h"

#include <gtest/gtest.h>

#include <utility>

namespace primacy {
namespace {

Bytes Filled(std::size_t n, unsigned char v) {
  return Bytes(n, static_cast<std::byte>(v));
}

CacheOptions SingleShard(std::size_t capacity) {
  CacheOptions options;
  options.enabled = true;
  options.capacity_bytes = capacity;
  options.shard_count = 1;  // deterministic LRU order for the tests
  return options;
}

TEST(BlockCacheTest, MissThenInsertThenHit) {
  DecodedBlockCache cache(SingleShard(1024));
  EXPECT_FALSE(cache.Lookup(1, 0));
  EXPECT_TRUE(cache.Insert(1, 0, Filled(100, 0xab)));
  const auto handle = cache.Lookup(1, 0);
  ASSERT_TRUE(handle);
  ASSERT_EQ(handle.data().size(), 100u);
  EXPECT_EQ(handle.data()[0], static_cast<std::byte>(0xab));

  const CacheStatsSnapshot stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 100u);
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 0.5);
}

TEST(BlockCacheTest, KeysAreStreamAndChunkScoped) {
  DecodedBlockCache cache(SingleShard(1024));
  ASSERT_TRUE(cache.Insert(1, 0, Filled(10, 1)));
  EXPECT_FALSE(cache.Lookup(1, 1));  // same stream, other chunk
  EXPECT_FALSE(cache.Lookup(2, 0));  // other stream, same chunk
  EXPECT_TRUE(cache.Lookup(1, 0));
}

TEST(BlockCacheTest, LruEvictionDropsLeastRecentlyUsed) {
  // Four 256-byte entries fill the 1024-byte budget exactly.
  DecodedBlockCache cache(SingleShard(1024));
  for (std::uint64_t c = 0; c < 4; ++c) {
    ASSERT_TRUE(cache.Insert(1, c, Filled(256, static_cast<unsigned char>(c))));
  }
  // Touch chunk 0 so chunk 1 becomes the LRU entry.
  EXPECT_TRUE(cache.Lookup(1, 0));
  ASSERT_TRUE(cache.Insert(1, 4, Filled(256, 4)));

  EXPECT_TRUE(cache.Contains(1, 0));
  EXPECT_FALSE(cache.Contains(1, 1));  // evicted as least recently used
  EXPECT_TRUE(cache.Contains(1, 2));
  EXPECT_TRUE(cache.Contains(1, 3));
  EXPECT_TRUE(cache.Contains(1, 4));
  const CacheStatsSnapshot stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.bytes, 1024u);
}

TEST(BlockCacheTest, CapacityZeroIsPassthrough) {
  DecodedBlockCache cache(SingleShard(0));
  EXPECT_FALSE(cache.Insert(1, 0, Filled(1, 0)));
  EXPECT_FALSE(cache.Lookup(1, 0));
  const CacheStatsSnapshot stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(BlockCacheTest, MakeBlockCacheHonorsDisablingKnobs) {
  CacheOptions options;
  EXPECT_EQ(MakeBlockCache(options), nullptr);  // enabled defaults to false
  options.enabled = true;
  options.capacity_bytes = 0;
  EXPECT_EQ(MakeBlockCache(options), nullptr);
  options.capacity_bytes = 1024;
  EXPECT_NE(MakeBlockCache(options), nullptr);
}

TEST(BlockCacheTest, ShardCountZeroClampsToOne) {
  CacheOptions options = SingleShard(1024);
  options.shard_count = 0;
  const DecodedBlockCache cache(options);
  EXPECT_EQ(cache.options().shard_count, 1u);
}

TEST(BlockCacheTest, EntryLargerThanShardBudgetRejected) {
  // 1024 bytes over 4 shards = 256 bytes per shard.
  CacheOptions options = SingleShard(1024);
  options.shard_count = 4;
  DecodedBlockCache cache(options);
  EXPECT_FALSE(cache.Insert(1, 0, Filled(512, 0)));
  EXPECT_TRUE(cache.Insert(1, 0, Filled(256, 0)));
  EXPECT_EQ(cache.Stats().rejected, 1u);
}

TEST(BlockCacheTest, DuplicateKeyKeepsFirstEntry) {
  DecodedBlockCache cache(SingleShard(1024));
  ASSERT_TRUE(cache.Insert(1, 0, Filled(10, 0xaa)));
  EXPECT_FALSE(cache.Insert(1, 0, Filled(10, 0xbb)));
  const auto handle = cache.Lookup(1, 0);
  ASSERT_TRUE(handle);
  EXPECT_EQ(handle.data()[0], static_cast<std::byte>(0xaa));
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(BlockCacheTest, PinnedEntriesDeferEviction) {
  // Budget fits two entries; pin both, then overflow the shard.
  DecodedBlockCache cache(SingleShard(512));
  ASSERT_TRUE(cache.Insert(1, 0, Filled(256, 0)));
  ASSERT_TRUE(cache.Insert(1, 1, Filled(256, 1)));
  auto pin0 = cache.Lookup(1, 0);
  auto pin1 = cache.Lookup(1, 1);
  ASSERT_TRUE(pin0);
  ASSERT_TRUE(pin1);

  // Every resident entry is pinned: the insert must overshoot the budget
  // rather than evict (or block) — eviction defers until the pins drop.
  ASSERT_TRUE(cache.Insert(1, 2, Filled(256, 2)));
  CacheStatsSnapshot stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes, 768u);
  // The pinned views stay valid through the overshoot.
  EXPECT_EQ(pin0.data()[0], static_cast<std::byte>(0));
  EXPECT_EQ(pin1.data()[0], static_cast<std::byte>(1));

  // Release one pin: the next insert may evict the released entry (and any
  // unpinned neighbors) but never the still-pinned one.
  pin0 = DecodedBlockCache::Handle();
  ASSERT_TRUE(cache.Insert(1, 3, Filled(256, 3)));
  EXPECT_TRUE(cache.Contains(1, 1));
  EXPECT_FALSE(cache.Contains(1, 0));
  EXPECT_EQ(pin1.data()[0], static_cast<std::byte>(1));
  stats = cache.Stats();
  EXPECT_GE(stats.evictions, 1u);
}

TEST(BlockCacheTest, ClearDropsUnpinnedKeepsPinned) {
  DecodedBlockCache cache(SingleShard(1024));
  ASSERT_TRUE(cache.Insert(1, 0, Filled(100, 0)));
  ASSERT_TRUE(cache.Insert(1, 1, Filled(100, 1)));
  const auto pinned = cache.Lookup(1, 0);
  ASSERT_TRUE(pinned);
  cache.Clear();
  EXPECT_TRUE(cache.Contains(1, 0));
  EXPECT_FALSE(cache.Contains(1, 1));
  EXPECT_EQ(pinned.data().size(), 100u);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(BlockCacheTest, MovedHandleTransfersThePin) {
  DecodedBlockCache cache(SingleShard(1024));
  ASSERT_TRUE(cache.Insert(1, 0, Filled(100, 7)));
  auto a = cache.Lookup(1, 0);
  ASSERT_TRUE(a);
  DecodedBlockCache::Handle b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — testing moved-from state
  ASSERT_TRUE(b);
  EXPECT_EQ(b.data()[0], static_cast<std::byte>(7));
}

TEST(BlockCacheTest, MultiShardSpreadsEntries) {
  CacheOptions options;
  options.enabled = true;
  options.capacity_bytes = 64 * 1024;
  options.shard_count = 8;
  DecodedBlockCache cache(options);
  for (std::uint64_t c = 0; c < 64; ++c) {
    ASSERT_TRUE(cache.Insert(42, c, Filled(64, static_cast<unsigned char>(c))));
  }
  EXPECT_EQ(cache.Stats().entries, 64u);
  for (std::uint64_t c = 0; c < 64; ++c) {
    const auto handle = cache.Lookup(42, c);
    ASSERT_TRUE(handle) << "chunk " << c;
    EXPECT_EQ(handle.data()[0], static_cast<std::byte>(c));
  }
}

}  // namespace
}  // namespace primacy
