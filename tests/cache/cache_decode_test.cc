// Decoded-block cache wired through the decode paths: warm range reads skip
// chunk decodes, cache-off stays byte-identical, an explicit cache instance
// is shared across decompressors, index-chain streams stay correct when
// cache hits punch gaps into the chain, and adjacent-chunk prefetch lands.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/primacy_codec.h"
#include "datasets/datasets.h"
#include "util/rng.h"

namespace primacy {
namespace {

constexpr std::size_t kChunkElements = 8192;  // 64 KiB chunks of doubles
constexpr std::size_t kChunks = 5;
constexpr std::size_t kElements = kChunks * kChunkElements;

PrimacyOptions SmallChunks() {
  PrimacyOptions options;
  options.chunk_bytes = kChunkElements * 8;
  return options;
}

PrimacyOptions Cached(std::size_t prefetch_chunks = 0) {
  PrimacyOptions options = SmallChunks();
  options.cache.enabled = true;
  options.cache.capacity_bytes = 16 * 1024 * 1024;
  options.cache.shard_count = 1;  // deterministic byte accounting
  options.cache.prefetch_chunks = prefetch_chunks;
  return options;
}

std::vector<double> Slice(const std::vector<double>& values, std::size_t first,
                          std::size_t count) {
  return std::vector<double>(
      values.begin() + static_cast<std::ptrdiff_t>(first),
      values.begin() + static_cast<std::ptrdiff_t>(first + count));
}

class CacheDecodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    values_ = GenerateDatasetByName("obs_temp", kElements);
    stream_ = PrimacyCompressor(SmallChunks()).Compress(values_);
  }

  std::vector<double> values_;
  Bytes stream_;
};

TEST_F(CacheDecodeTest, WarmRangeReadServesFromCache) {
  const PrimacyDecompressor decompressor(Cached());
  ASSERT_NE(decompressor.cache(), nullptr);

  // A range spanning chunks 1 and 2.
  const std::size_t first = kChunkElements + 10;
  const std::size_t count = kChunkElements;
  PrimacyDecodeStats cold;
  const auto cold_values =
      decompressor.DecompressRange(stream_, first, count, &cold);
  EXPECT_EQ(cold_values, Slice(values_, first, count));
  EXPECT_EQ(cold.chunks_decoded, 2u);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 2u);

  PrimacyDecodeStats warm;
  const auto warm_values =
      decompressor.DecompressRange(stream_, first, count, &warm);
  EXPECT_EQ(warm_values, cold_values);
  EXPECT_EQ(warm.chunks_decoded, 0u);  // both chunks served from cache
  EXPECT_EQ(warm.cache_hits, 2u);
  EXPECT_EQ(warm.cache_misses, 0u);

  const CacheStatsSnapshot stats = decompressor.cache()->Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 2u * kChunkElements * 8);
}

TEST_F(CacheDecodeTest, CacheOffIsByteIdenticalWithZeroCacheStats) {
  const PrimacyDecompressor cached(Cached());
  const PrimacyDecompressor uncached(SmallChunks());
  EXPECT_EQ(uncached.cache(), nullptr);

  Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    const std::size_t first = rng.NextBelow(kElements);
    const std::size_t count = rng.NextBelow(kElements - first + 1);
    PrimacyDecodeStats plain;
    const auto expected = uncached.DecompressRange(stream_, first, count, &plain);
    EXPECT_EQ(plain.cache_hits, 0u);
    EXPECT_EQ(plain.cache_misses, 0u);
    EXPECT_EQ(plain.prefetch_issued, 0u);
    EXPECT_EQ(cached.DecompressRange(stream_, first, count), expected)
        << "first=" << first << " count=" << count;
  }
}

TEST_F(CacheDecodeTest, CapacityZeroYieldsNoCache) {
  PrimacyOptions options = Cached();
  options.cache.capacity_bytes = 0;
  const PrimacyDecompressor decompressor(options);
  EXPECT_EQ(decompressor.cache(), nullptr);
  PrimacyDecodeStats stats;
  EXPECT_EQ(decompressor.DecompressRange(stream_, 10, 100, &stats),
            Slice(values_, 10, 100));
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

TEST_F(CacheDecodeTest, ExplicitCacheInstanceSharedAcrossDecompressors) {
  PrimacyOptions options = SmallChunks();
  options.block_cache = MakeBlockCache(Cached().cache);
  ASSERT_NE(options.block_cache, nullptr);

  const PrimacyDecompressor a(options);
  const PrimacyDecompressor b(options);
  EXPECT_EQ(a.cache(), options.block_cache);
  EXPECT_EQ(a.cache(), b.cache());

  PrimacyDecodeStats cold;
  a.DecompressRange(stream_, 0, kChunkElements, &cold);
  EXPECT_EQ(cold.cache_misses, 1u);
  // The second decompressor hits what the first one filled.
  PrimacyDecodeStats warm;
  const auto warm_values = b.DecompressRange(stream_, 0, kChunkElements, &warm);
  EXPECT_EQ(warm_values, Slice(values_, 0, kChunkElements));
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.chunks_decoded, 0u);
}

TEST_F(CacheDecodeTest, FullDecodeWarmsSubsequentRangeReads) {
  PrimacyOptions options = Cached();
  options.threads = 2;  // exercise the parallel seekable decode with a cache
  const PrimacyDecompressor decompressor(options);

  PrimacyDecodeStats full;
  EXPECT_EQ(decompressor.Decompress(stream_, &full), values_);
  EXPECT_EQ(full.chunks_decoded, kChunks);
  EXPECT_EQ(full.cache_misses, kChunks);

  PrimacyDecodeStats warm;
  const auto range =
      decompressor.DecompressRange(stream_, 3 * kChunkElements, 50, &warm);
  EXPECT_EQ(range, Slice(values_, 3 * kChunkElements, 50));
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.chunks_decoded, 0u);

  // A second full decode is served entirely from cache.
  PrimacyDecodeStats second;
  EXPECT_EQ(decompressor.Decompress(stream_, &second), values_);
  EXPECT_EQ(second.cache_hits, kChunks);
  EXPECT_EQ(second.chunks_decoded, 0u);
}

TEST_F(CacheDecodeTest, WarmSinglePrecisionRangeRead) {
  // Smooth low-entropy floats: a raw cast of the Gaussian dataset is
  // incompressible in single precision and would take the stored fallback,
  // which is (by design) never cached.
  std::vector<float> floats(kElements);
  for (std::size_t i = 0; i < kElements; ++i) {
    floats[i] = static_cast<float>(i % 997) / 997.0f;
  }
  PrimacyOptions compress = SmallChunks();
  compress.precision = Precision::kSingle;
  compress.chunk_bytes = kChunkElements * 4;
  PrimacyStats cstats;
  const Bytes stream = PrimacyCompressor(compress).Compress(floats, &cstats);
  ASSERT_EQ(cstats.chunks, kChunks) << "stream took the stored fallback";

  PrimacyOptions decode = Cached();
  const PrimacyDecompressor decompressor(decode);
  const std::size_t first = kChunkElements + 5;
  PrimacyDecodeStats cold;
  const auto cold_values =
      decompressor.DecompressRangeSingle(stream, first, 100, &cold);
  EXPECT_EQ(cold_values,
            std::vector<float>(floats.begin() + static_cast<std::ptrdiff_t>(first),
                               floats.begin() + static_cast<std::ptrdiff_t>(first + 100)));
  EXPECT_EQ(cold.cache_misses, 1u);
  PrimacyDecodeStats warm;
  EXPECT_EQ(decompressor.DecompressRangeSingle(stream, first, 100, &warm),
            cold_values);
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.chunks_decoded, 0u);
}

TEST_F(CacheDecodeTest, IndexChainStreamsStayCorrectAcrossCacheHitGaps) {
  // Build data whose chunks share one base pattern plus a few per-chunk
  // novel values, so kReuseWhenCorrelated emits flag-0/flag-2 chains: a
  // cache hit then leaves the decoder's index state behind the chunk a
  // later miss needs, forcing the chain re-prime path.
  std::vector<double> chained(kElements);
  const std::vector<double> base =
      GenerateDatasetByName("obs_temp", kChunkElements);
  for (std::size_t c = 0; c < kChunks; ++c) {
    for (std::size_t i = 0; i < kChunkElements; ++i) {
      chained[c * kChunkElements + i] = base[i];
    }
    // A handful of values with exponents the base never produces, so later
    // chunks extend the index (flag 2) instead of reusing it verbatim.
    for (std::size_t i = 0; i < 4; ++i) {
      chained[c * kChunkElements + 17 * (i + 1)] =
          1.0e30 * static_cast<double>(c * 4 + i + 1);
    }
  }
  PrimacyOptions compress = SmallChunks();
  compress.index_mode = IndexMode::kReuseWhenCorrelated;
  PrimacyStats cstats;
  const Bytes stream = PrimacyCompressor(compress).Compress(chained, &cstats);
  ASSERT_EQ(cstats.chunks, kChunks);
  // The test only means something if chains actually formed.
  ASSERT_LT(cstats.indexes_emitted, cstats.chunks);

  const PrimacyDecompressor cached(Cached());
  const PrimacyDecompressor uncached(SmallChunks());
  Rng rng(42);
  for (int i = 0; i < 48; ++i) {
    const std::size_t first = rng.NextBelow(kElements);
    const std::size_t count = rng.NextBelow(kElements - first + 1);
    const auto expected = uncached.DecompressRange(stream, first, count);
    EXPECT_EQ(cached.DecompressRange(stream, first, count), expected)
        << "first=" << first << " count=" << count;
  }
  // And the fully-warm stream still decodes end to end.
  EXPECT_EQ(cached.Decompress(stream), chained);
}

TEST_F(CacheDecodeTest, PrefetchFillsAdjacentChunks) {
  const PrimacyDecompressor decompressor(Cached(/*prefetch_chunks=*/2));
  ASSERT_NE(decompressor.cache(), nullptr);

  PrimacyDecodeStats cold;
  decompressor.DecompressRange(stream_, 0, 100, &cold);
  EXPECT_EQ(cold.cache_misses, 1u);
  EXPECT_EQ(cold.prefetch_issued, 2u);  // chunks 1 and 2

  // Prefetch is best effort on the shared pool; poll its landing.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (decompressor.cache()->Stats().insertions < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(decompressor.cache()->Stats().insertions, 3u)
      << "prefetch tasks did not land";

  PrimacyDecodeStats warm;
  const auto range = decompressor.DecompressRange(
      stream_, kChunkElements + 3, kChunkElements, &warm);
  EXPECT_EQ(range, Slice(values_, kChunkElements + 3, kChunkElements));
  EXPECT_EQ(warm.cache_hits, 2u);  // prefetched chunks 1 and 2
  EXPECT_EQ(warm.chunks_decoded, 0u);
  EXPECT_EQ(warm.prefetch_issued, 2u);  // chunks 3 and 4 queue next
}

}  // namespace
}  // namespace primacy
