#include "util/timer.h"

#include <chrono>
#include <limits>
#include <thread>

#include <gtest/gtest.h>

namespace primacy {
namespace {

TEST(WallTimerTest, ElapsedIsNonNegativeAndMonotone) {
  const WallTimer timer;
  const std::uint64_t first = timer.ElapsedNs();
  const std::uint64_t second = timer.ElapsedNs();
  EXPECT_GE(timer.Seconds(), 0.0);
  EXPECT_GE(second, first);
}

TEST(WallTimerTest, MeasuresASleep) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Sleeps may overshoot but never undershoot the requested duration.
  EXPECT_GE(timer.ElapsedNs(), 5'000'000u);
  EXPECT_GE(timer.Seconds(), 0.005);
}

TEST(WallTimerTest, ResetRestartsTheClock) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Reset();
  EXPECT_LT(timer.Seconds(), 0.005);
}

TEST(ThroughputMBpsTest, ZeroBytesIsZeroRegardlessOfTime) {
  EXPECT_EQ(ThroughputMBps(0, 1.0), 0.0);
  EXPECT_EQ(ThroughputMBps(0, 0.0), 0.0);
}

TEST(ThroughputMBpsTest, NonPositiveOrNanSecondsIsZeroNotInf) {
  EXPECT_EQ(ThroughputMBps(1'000'000, 0.0), 0.0);
  EXPECT_EQ(ThroughputMBps(1'000'000, -1.0), 0.0);
  EXPECT_EQ(ThroughputMBps(1'000'000,
                           std::numeric_limits<double>::quiet_NaN()),
            0.0);
}

TEST(ThroughputMBpsTest, DecimalMegabytes) {
  EXPECT_DOUBLE_EQ(ThroughputMBps(2'000'000, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(ThroughputMBps(500'000, 0.5), 1.0);
}

TEST(SafeRateBpsTest, ZeroBytesIsZero) {
  EXPECT_EQ(SafeRateBps(0, 0.0), 0.0);
  EXPECT_EQ(SafeRateBps(0, 5.0), 0.0);
}

TEST(SafeRateBpsTest, ClampsDegenerateTimesToOneNanosecond) {
  EXPECT_DOUBLE_EQ(SafeRateBps(100, 0.0), 100.0 / 1e-9);
  EXPECT_DOUBLE_EQ(SafeRateBps(100, -3.0), 100.0 / 1e-9);
  EXPECT_DOUBLE_EQ(
      SafeRateBps(100, std::numeric_limits<double>::quiet_NaN()),
      100.0 / 1e-9);
}

TEST(SafeRateBpsTest, NormalRatesPassThrough) {
  EXPECT_DOUBLE_EQ(SafeRateBps(100, 2.0), 50.0);
  EXPECT_DOUBLE_EQ(SafeRateBps(1'000'000, 0.25), 4'000'000.0);
}

}  // namespace
}  // namespace primacy
