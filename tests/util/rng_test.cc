#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"

namespace primacy {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  // Must not be stuck at zero (the one invalid xoshiro state).
  std::uint64_t ored = 0;
  for (int i = 0; i < 16; ++i) ored |= rng.NextU64();
  EXPECT_NE(ored, 0u);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.NextBelow(0), InvalidArgumentError);
}

TEST(RngTest, NextBelowCoversSmallRangeUniformly) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(8)];
  for (const int count : counts) {
    EXPECT_NEAR(count, kDraws / 8, kDraws / 80);  // within 10% of expected
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespected) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-5.0, 3.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 3.0);
  }
  EXPECT_THROW(rng.NextDouble(1.0, 1.0), InvalidArgumentError);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(123);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, SkewedDistributionIsMonotoneDecreasing) {
  Rng rng(5);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextSkewed(16, 0.7)];
  // Strong decay: each rank should be clearly less popular than rank 0.
  for (std::size_t k = 4; k < counts.size(); ++k) {
    EXPECT_LT(counts[k], counts[0]);
  }
  EXPECT_GT(counts[0], counts[1]);
}

TEST(RngTest, SkewedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.NextSkewed(5, 0.5), 5u);
}

TEST(RngTest, SkewedValidatesArguments) {
  Rng rng(5);
  EXPECT_THROW(rng.NextSkewed(0, 0.5), InvalidArgumentError);
  EXPECT_THROW(rng.NextSkewed(5, 0.0), InvalidArgumentError);
  EXPECT_THROW(rng.NextSkewed(5, 1.0), InvalidArgumentError);
}

TEST(RngTest, NextBoolProbabilityRoughlyRespected) {
  Rng rng(77);
  int trues = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) trues += rng.NextBool(0.25);
  EXPECT_NEAR(trues, kDraws / 4, kDraws / 50);
}

}  // namespace
}  // namespace primacy
