#include "util/bytes.h"

#include <gtest/gtest.h>

namespace primacy {
namespace {

TEST(BytesTest, StringRoundTrip) {
  const std::string text = "hello, primacy";
  EXPECT_EQ(StringFromBytes(BytesFromString(text)), text);
}

TEST(BytesTest, FromBytesReassemblesValues) {
  const std::vector<std::uint32_t> values{1u, 0xdeadbeefu, 42u};
  const ByteSpan raw = AsBytes(values);
  EXPECT_EQ(raw.size(), 12u);
  EXPECT_EQ(FromBytes<std::uint32_t>(raw), values);
}

TEST(BytesTest, AppendBytesConcatenates) {
  Bytes dst = BytesFromString("ab");
  AppendBytes(dst, BytesFromString("cd"));
  EXPECT_EQ(StringFromBytes(dst), "abcd");
}

TEST(BytesTest, ByteLiteralProducesByte) {
  EXPECT_EQ(static_cast<unsigned>(0xab_b), 0xabu);
}

TEST(BytesTest, ToBytesCopies) {
  const Bytes original = BytesFromString("xyz");
  Bytes copy = ToBytes(original);
  copy[0] = 0_b;
  EXPECT_EQ(StringFromBytes(original), "xyz");
}

}  // namespace
}  // namespace primacy
