#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "telemetry/metrics.h"
#include "util/error.h"

namespace primacy {
namespace {

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
  EXPECT_EQ(pool.name(), "pool");
}

TEST(ThreadPoolTest, RejectsNamesThatCannotBePrometheusLabelValues) {
  EXPECT_THROW(ThreadPool(1, ""), InvalidArgumentError);
  EXPECT_THROW(ThreadPool(1, "has space"), InvalidArgumentError);
  EXPECT_THROW(ThreadPool(1, "quote\"injection"), InvalidArgumentError);
  EXPECT_NO_THROW(ThreadPool(1, "insitu-shard_0.reader"));
}

TEST(ThreadPoolTest, PerPoolMetricsAreKeyedByName) {
  if (!telemetry::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  auto& registry = telemetry::MetricsRegistry::Global();
  const auto tasks_for = [&](const std::string& pool) {
    return registry
        .GetCounter("primacy_pool_tasks_total", "pool=\"" + pool + "\"")
        .Value();
  };
  const std::uint64_t alpha_before = tasks_for("label_alpha");
  const std::uint64_t beta_before = tasks_for("label_beta");
  {
    ThreadPool alpha(2, "label_alpha");
    ThreadPool beta(2, "label_beta");
    for (int i = 0; i < 5; ++i) alpha.Submit([] {}).get();
    for (int i = 0; i < 3; ++i) beta.Submit([] {}).get();
  }
  EXPECT_EQ(tasks_for("label_alpha") - alpha_before, 5u);
  EXPECT_EQ(tasks_for("label_beta") - beta_before, 3u);
  // Distinct pools with the same name share one series by design.
  SharedThreadPool();  // ensure the shared pool's series is registered
  const std::string rendered = registry.RenderPrometheus();
  EXPECT_NE(rendered.find("primacy_pool_tasks_total{pool=\"label_alpha\"}"),
            std::string::npos);
  EXPECT_NE(rendered.find("primacy_pool_tasks_total{pool=\"shared\"}"),
            std::string::npos);
}

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(10,
                       [](std::size_t i) {
                         if (i == 3) throw std::runtime_error("bad index");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForSlotsCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  std::vector<std::atomic<int>> slot_hits(4);  // pool threads + caller
  pool.ParallelForSlots(hits.size(), 0, [&](std::size_t slot, std::size_t i) {
    ASSERT_LT(slot, 4u);
    ++slot_hits[slot];
    ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  int covered = 0;
  for (const auto& s : slot_hits) covered += s.load();
  EXPECT_EQ(covered, 500);
}

TEST(ThreadPoolTest, ParallelForSlotsBoundsSlotsByMaxAndCount) {
  ThreadPool pool(4);
  // max_slots = 2: no slot id past 1 even with 4 workers available.
  pool.ParallelForSlots(100, 2, [&](std::size_t slot, std::size_t) {
    ASSERT_LT(slot, 2u);
  });
  // count = 3 < slots: no slot id past 2.
  pool.ParallelForSlots(3, 0, [&](std::size_t slot, std::size_t) {
    ASSERT_LT(slot, 3u);
  });
  pool.ParallelForSlots(0, 0, [](std::size_t, std::size_t) {
    FAIL() << "must not be called";
  });
}

TEST(ThreadPoolTest, ParallelForSlotsPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelForSlots(10, 0,
                                     [](std::size_t, std::size_t i) {
                                       if (i == 3) {
                                         throw std::runtime_error("bad index");
                                       }
                                     }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForSlotsOnSharedPoolDoesNotDeadlock) {
  // Outer and inner loops share one pool; the caller's help-loop must drain
  // queued subtasks instead of blocking on them.
  ThreadPool& pool = SharedThreadPool();
  std::atomic<int> total{0};
  pool.ParallelForSlots(8, 0, [&](std::size_t, std::size_t) {
    pool.ParallelForSlots(16, 0,
                          [&](std::size_t, std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, SharedPoolIsAProcessSingleton) {
  EXPECT_EQ(&SharedThreadPool(), &SharedThreadPool());
  EXPECT_GE(SharedThreadPool().num_threads(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace primacy
