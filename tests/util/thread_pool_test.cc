#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace primacy {
namespace {

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(10,
                       [](std::size_t i) {
                         if (i == 3) throw std::runtime_error("bad index");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace primacy
