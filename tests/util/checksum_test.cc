// XXH64 known-answer vectors (from the reference xxHash implementation) and
// streaming/one-shot equivalence.
#include "util/checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/bytes.h"
#include "util/rng.h"

namespace primacy {
namespace {

std::uint64_t HashString(const std::string& s, std::uint64_t seed = 0) {
  return Xxh64(BytesFromString(s), seed);
}

TEST(Xxh64Test, ReferenceVectors) {
  // Vectors produced by the canonical xxHash library (XXH64).
  EXPECT_EQ(HashString(""), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(HashString("", 1), 0xD5AFBA1336A3BE4Bull);
  EXPECT_EQ(HashString("a"), 0xD24EC4F1A98C6E5Bull);
  EXPECT_EQ(HashString("abc"), 0x44BC2CF5AD770999ull);
  EXPECT_EQ(HashString("Nobody inspects the spammish repetition"),
            0xFBCEA83C8A378BF1ull);
  EXPECT_EQ(HashString("Nobody inspects the spammish repetition", 123),
            0xA8BA45551F24B7AEull);
  // > 32 bytes engages the 4-accumulator stripe loop.
  EXPECT_EQ(HashString("The quick brown fox jumps over the lazy dog"),
            0x0B242D361FDA71BCull);
}

TEST(Xxh64Test, StreamingMatchesOneShotAtEverySplit) {
  Rng rng(42);
  Bytes data(257);
  for (auto& b : data) b = static_cast<std::byte>(rng.NextU64() & 0xff);
  const std::uint64_t expected = Xxh64(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Xxh64State state;
    state.Update(ByteSpan(data).first(split));
    state.Update(ByteSpan(data).subspan(split));
    EXPECT_EQ(state.Digest(), expected) << "split at " << split;
    EXPECT_EQ(state.total_bytes(), data.size());
  }
}

TEST(Xxh64Test, StreamingManySmallUpdates) {
  Rng rng(7);
  Bytes data(1031);
  for (auto& b : data) b = static_cast<std::byte>(rng.NextU64() & 0xff);
  Xxh64State state;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.NextU64() % 7, data.size() - offset);
    state.Update(ByteSpan(data).subspan(offset, n));
    offset += n;
  }
  EXPECT_EQ(state.Digest(), Xxh64(data));
}

TEST(Xxh64Test, DigestIsIdempotent) {
  Xxh64State state;
  state.Update(BytesFromString("hello"));
  const std::uint64_t first = state.Digest();
  EXPECT_EQ(state.Digest(), first);
  state.Update(BytesFromString(" world"));
  EXPECT_EQ(state.Digest(), HashString("hello world"));
}

TEST(Xxh64Test, SingleBitChangesDigest) {
  Rng rng(99);
  Bytes data(64);
  for (auto& b : data) b = static_cast<std::byte>(rng.NextU64() & 0xff);
  const std::uint64_t base = Xxh64(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = data;
      flipped[byte] ^= static_cast<std::byte>(1u << bit);
      EXPECT_NE(Xxh64(flipped), base)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Xxh64Test, SeedChangesDigest) {
  const Bytes data = BytesFromString("seeded");
  EXPECT_NE(Xxh64(data, 0), Xxh64(data, 1));
}

}  // namespace
}  // namespace primacy
