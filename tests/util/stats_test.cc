#include "util/stats.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "util/byte_matrix.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

TEST(ByteHistogramTest, CountsEveryByte) {
  const Bytes data{0_b, 1_b, 1_b, 255_b, 255_b, 255_b};
  const auto histogram = ByteHistogram(data);
  EXPECT_EQ(histogram[0], 1u);
  EXPECT_EQ(histogram[1], 2u);
  EXPECT_EQ(histogram[255], 3u);
  EXPECT_EQ(histogram[7], 0u);
}

TEST(EntropyTest, ConstantDataHasZeroEntropy) {
  const Bytes data(1024, 42_b);
  EXPECT_DOUBLE_EQ(ByteEntropyBits(data), 0.0);
}

TEST(EntropyTest, UniformBytesApproachEightBits) {
  Bytes data(256 * 64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i % 256);
  }
  EXPECT_DOUBLE_EQ(ByteEntropyBits(data), 8.0);
}

TEST(EntropyTest, TwoValueDataHasOneBit) {
  Bytes data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = (i % 2 == 0) ? 0_b : 1_b;
  }
  EXPECT_NEAR(ByteEntropyBits(data), 1.0, 1e-9);
}

TEST(EntropyTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(ByteEntropyBits({}), 0.0);
}

TEST(TopByteFrequencyTest, MatchesConstruction) {
  Bytes data(100, 9_b);
  for (std::size_t i = 0; i < 25; ++i) data[i] = static_cast<std::byte>(i);
  // 9 appears 75 times (indices 25..99) plus once at index 9 = 76.
  EXPECT_NEAR(TopByteFrequency(data), 0.76, 1e-12);
  EXPECT_DOUBLE_EQ(TopByteFrequency({}), 0.0);
}

TEST(DominantBitProbabilityTest, AlwaysAtLeastHalf) {
  Rng rng(3);
  Bytes data(8 * 500);
  for (auto& b : data) b = static_cast<std::byte>(rng.NextBelow(256));
  for (const double p : DominantBitProbability(data, 8)) {
    EXPECT_GE(p, 0.5);
    EXPECT_LE(p, 1.0);
  }
}

TEST(DominantBitProbabilityTest, DetectsFixedBits) {
  // Doubles in [1, 2): fixed sign/exponent bits, uniformly random mantissa
  // (constructed at the bit level so even the LSB is unbiased).
  std::vector<double> values(20000);
  Rng rng(4);
  for (auto& v : values) {
    const std::uint64_t mantissa = rng.NextU64() >> 12;
    v = std::bit_cast<double>((0x3ffULL << 52) | mantissa);
  }
  const Bytes rows = DoublesToBigEndianRows(values);
  const auto probs = DominantBitProbability(rows, 8);
  ASSERT_EQ(probs.size(), 64u);
  // Sign and all 11 exponent bits are identical across [1, 2).
  for (std::size_t bit = 0; bit < 12; ++bit) {
    EXPECT_DOUBLE_EQ(probs[bit], 1.0) << "bit " << bit;
  }
  // Mantissa bits are essentially random (4 sigma at n=20000 is ~0.014).
  for (std::size_t bit = 12; bit < 64; ++bit) {
    EXPECT_LT(probs[bit], 0.52) << "bit " << bit;
  }
}

TEST(DominantBitProbabilityTest, ValidatesWidth) {
  EXPECT_THROW(DominantBitProbability(Bytes(10), 0), InvalidArgumentError);
  EXPECT_THROW(DominantBitProbability(Bytes(10), 3), InvalidArgumentError);
}

TEST(BytePairHistogramTest, CountsPairs) {
  // One element, width 4, bytes [0x12 0x34 0x56 0x78].
  const Bytes rows{0x12_b, 0x34_b, 0x56_b, 0x78_b};
  const auto histogram = BytePairHistogram(rows, 4, 0);
  EXPECT_EQ(histogram[0x1234], 1u);
  EXPECT_EQ(CountDistinct(histogram), 1u);
  const auto mantissa = BytePairHistogram(rows, 4, 2);
  EXPECT_EQ(mantissa[0x5678], 1u);
}

TEST(BytePairHistogramTest, ValidatesColumnRange) {
  EXPECT_THROW(BytePairHistogram(Bytes(8), 8, 7), InvalidArgumentError);
  EXPECT_THROW(BytePairHistogram(Bytes(8), 1, 0), InvalidArgumentError);
}

TEST(PearsonCorrelationTest, PerfectAndInverseCorrelation) {
  const std::vector<std::uint64_t> a{1, 2, 3, 4, 5};
  const std::vector<std::uint64_t> b{2, 4, 6, 8, 10};
  const std::vector<std::uint64_t> c{5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, ConstantVectorYieldsZero) {
  const std::vector<std::uint64_t> a{3, 3, 3};
  const std::vector<std::uint64_t> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(PearsonCorrelationTest, SizeMismatchThrows) {
  const std::vector<std::uint64_t> a{1, 2};
  const std::vector<std::uint64_t> b{1, 2, 3};
  EXPECT_THROW(PearsonCorrelation(a, b), InvalidArgumentError);
}

TEST(MeanTest, BasicAndEmpty) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Mean(values), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

}  // namespace
}  // namespace primacy
