#include "util/byte_matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

Bytes RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.NextBelow(256));
  return out;
}

TEST(SplitHighLowTest, SplitsExpectedColumns) {
  // Two elements of width 4: [0 1 2 3] [4 5 6 7], high width 2.
  Bytes data(8);
  for (std::size_t i = 0; i < 8; ++i) data[i] = static_cast<std::byte>(i);
  const SplitBytes split = SplitHighLow(data, 4, 2);
  ASSERT_EQ(split.high.size(), 4u);
  ASSERT_EQ(split.low.size(), 4u);
  EXPECT_EQ(split.high, (Bytes{0_b, 1_b, 4_b, 5_b}));
  EXPECT_EQ(split.low, (Bytes{2_b, 3_b, 6_b, 7_b}));
}

TEST(SplitHighLowTest, MergeInvertsSplit) {
  const Bytes data = RandomBytes(8 * 257, 1);
  for (std::size_t high_width : {0u, 1u, 2u, 4u, 7u, 8u}) {
    const SplitBytes split = SplitHighLow(data, 8, high_width);
    EXPECT_EQ(MergeHighLow(split.high, split.low, 8, high_width), data)
        << "high_width=" << high_width;
  }
}

TEST(SplitHighLowTest, RejectsBadArguments) {
  const Bytes data = RandomBytes(16, 2);
  EXPECT_THROW(SplitHighLow(data, 0, 0), InvalidArgumentError);
  EXPECT_THROW(SplitHighLow(data, 5, 2), InvalidArgumentError);  // 16 % 5 != 0
  EXPECT_THROW(SplitHighLow(data, 8, 9), InvalidArgumentError);
}

TEST(MergeHighLowTest, RejectsInconsistentCounts) {
  const Bytes high = RandomBytes(4, 3);  // 2 elements at width 2
  const Bytes low = RandomBytes(18, 4);  // 3 elements at width 6
  EXPECT_THROW(MergeHighLow(high, low, 8, 2), InvalidArgumentError);
}

TEST(LinearizationTest, RowToColumnSmallExample) {
  // Rows: [a b c] [d e f] -> Columns: [a d] [b e] [c f]
  const Bytes rows{10_b, 11_b, 12_b, 20_b, 21_b, 22_b};
  const Bytes expected{10_b, 20_b, 11_b, 21_b, 12_b, 22_b};
  EXPECT_EQ(RowToColumn(rows, 3), expected);
}

TEST(LinearizationTest, ColumnToRowInvertsRowToColumn) {
  for (std::size_t width : {1u, 2u, 3u, 8u}) {
    const Bytes rows = RandomBytes(width * 1000, width);
    EXPECT_EQ(ColumnToRow(RowToColumn(rows, width), width), rows);
  }
}

TEST(LinearizationTest, EmptyInputAllowed) {
  EXPECT_TRUE(RowToColumn({}, 8).empty());
  EXPECT_TRUE(ColumnToRow({}, 8).empty());
}

TEST(ExtractColumnTest, PullsSingleColumn) {
  const Bytes rows{1_b, 2_b, 3_b, 4_b, 5_b, 6_b};
  EXPECT_EQ(ExtractColumn(rows, 2, 0), (Bytes{1_b, 3_b, 5_b}));
  EXPECT_EQ(ExtractColumn(rows, 2, 1), (Bytes{2_b, 4_b, 6_b}));
  EXPECT_THROW(ExtractColumn(rows, 2, 2), InvalidArgumentError);
}

TEST(DoubleConversionTest, BigEndianRowsPutExponentFirst) {
  // 1.0 = 0x3FF0000000000000: byte 0 must be 0x3F, byte 1 0xF0.
  const std::vector<double> values{1.0};
  const Bytes rows = DoublesToBigEndianRows(values);
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows[0], 0x3f_b);
  EXPECT_EQ(rows[1], 0xf0_b);
  for (std::size_t i = 2; i < 8; ++i) EXPECT_EQ(rows[i], 0x00_b);
}

TEST(DoubleConversionTest, RoundTripsArbitraryDoubles) {
  Rng rng(9);
  std::vector<double> values(4096);
  for (auto& v : values) {
    v = rng.NextGaussian() * std::pow(10.0, rng.NextDouble(-30, 30));
  }
  values[0] = 0.0;
  values[1] = -0.0;
  values[2] = std::numeric_limits<double>::infinity();
  values[3] = -std::numeric_limits<double>::infinity();
  values[4] = std::numeric_limits<double>::denorm_min();
  values[5] = std::numeric_limits<double>::max();

  const Bytes rows = DoublesToBigEndianRows(values);
  const std::vector<double> restored = BigEndianRowsToDoubles(rows);
  ASSERT_EQ(restored.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(restored[i]),
              std::bit_cast<std::uint64_t>(values[i]))
        << "index " << i;
  }
}

TEST(DoubleConversionTest, NaNPayloadPreservedBitExactly) {
  const auto nan_bits = std::uint64_t{0x7ff8dead0000beefULL};
  const std::vector<double> values{std::bit_cast<double>(nan_bits)};
  const auto restored =
      BigEndianRowsToDoubles(DoublesToBigEndianRows(values));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(restored[0]), nan_bits);
}

TEST(DoubleConversionTest, RejectsUnalignedInput) {
  EXPECT_THROW(BigEndianRowsToDoubles(Bytes(7)), InvalidArgumentError);
}

}  // namespace
}  // namespace primacy
