#include "store/checkpoint_store.h"

#include <gtest/gtest.h>

#include "datasets/datasets.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

std::vector<float> Floats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n);
  for (auto& v : out) {
    v = static_cast<float>(rng.NextGaussian());
  }
  return out;
}

TEST(CheckpointStoreTest, MultiVariableRoundTrip) {
  const auto phi = GenerateDatasetByName("gts_phi_l", 30000);
  const auto temp = GenerateDatasetByName("obs_temp", 20000);
  const auto vel = Floats(15000, 1);

  CheckpointWriter writer;
  writer.Add("phi", std::span(phi));
  writer.Add("temp", std::span(temp));
  writer.Add("velocity_x", std::span(vel));
  const Bytes file = writer.Finish();

  const CheckpointReader reader(file);
  ASSERT_EQ(reader.variables().size(), 3u);
  EXPECT_EQ(reader.ReadDoubles("phi"), phi);
  EXPECT_EQ(reader.ReadDoubles("temp"), temp);
  EXPECT_EQ(reader.ReadFloats("velocity_x"), vel);
}

TEST(CheckpointStoreTest, FooterMetadataIsAccurate) {
  const auto phi = GenerateDatasetByName("num_plasma", 25000);
  CheckpointWriter writer;
  writer.Add("phi", std::span(phi));
  const Bytes file = writer.Finish();
  const CheckpointReader reader(file);
  const VariableInfo& info = reader.Find("phi");
  EXPECT_EQ(info.elements, phi.size());
  EXPECT_EQ(info.element_width, 8u);
  EXPECT_GT(info.CompressionRatio(), 1.0);
}

TEST(CheckpointStoreTest, PerVariableOptionsHonored) {
  const auto data = GenerateDatasetByName("obs_info", 20000);
  PrimacyOptions fast;
  fast.solver = "lzfast";
  CheckpointWriter writer;
  writer.Add("default", std::span(data));
  writer.Add("fast", std::span(data), fast);
  const Bytes file = writer.Finish();
  const CheckpointReader reader(file);
  // Solver is embedded per stream, so both restore through one reader.
  EXPECT_EQ(reader.ReadDoubles("default"), data);
  EXPECT_EQ(reader.ReadDoubles("fast"), data);
  // The lzfast stream should be larger (weaker solver) on this dataset.
  EXPECT_GE(reader.Find("fast").stream_bytes,
            reader.Find("default").stream_bytes);
}

TEST(CheckpointStoreTest, EmptyCheckpointRoundTrips) {
  CheckpointWriter writer;
  const Bytes file = writer.Finish();
  const CheckpointReader reader(file);
  EXPECT_TRUE(reader.variables().empty());
}

TEST(CheckpointStoreTest, EmptyVariableAllowed) {
  CheckpointWriter writer;
  writer.Add("nothing", std::span<const double>{});
  const Bytes file = writer.Finish();
  EXPECT_TRUE(CheckpointReader(file).ReadDoubles("nothing").empty());
}

TEST(CheckpointStoreTest, DuplicateNameRejected) {
  const std::vector<double> data(10, 1.0);
  CheckpointWriter writer;
  writer.Add("x", std::span(data));
  EXPECT_THROW(writer.Add("x", std::span(data)), InvalidArgumentError);
  EXPECT_THROW(writer.Add("", std::span(data)), InvalidArgumentError);
}

TEST(CheckpointStoreTest, AddAfterFinishRejected) {
  const std::vector<double> data(10, 1.0);
  CheckpointWriter writer;
  writer.Finish();
  EXPECT_THROW(writer.Add("x", std::span(data)), InvalidArgumentError);
  EXPECT_THROW(writer.Finish(), InvalidArgumentError);
}

TEST(CheckpointStoreTest, UnknownVariableRejected) {
  CheckpointWriter writer;
  const Bytes file = writer.Finish();
  EXPECT_THROW(CheckpointReader(file).ReadDoubles("ghost"),
               InvalidArgumentError);
}

TEST(CheckpointStoreTest, PrecisionMismatchRejected) {
  const std::vector<double> doubles(10, 1.0);
  CheckpointWriter writer;
  writer.Add("d", std::span(doubles));
  const Bytes file = writer.Finish();
  const CheckpointReader reader(file);
  EXPECT_THROW(reader.ReadFloats("d"), InvalidArgumentError);
}

TEST(CheckpointStoreTest, CorruptFooterDetected) {
  const auto data = GenerateDatasetByName("obs_info", 5000);
  CheckpointWriter writer;
  writer.Add("x", std::span(data));
  Bytes file = writer.Finish();
  file[file.size() - 1] = 0_b;  // break the footer magic
  EXPECT_THROW(CheckpointReader reader(file), CorruptStreamError);
}

TEST(CheckpointStoreTest, TruncationDetected) {
  const auto data = GenerateDatasetByName("obs_info", 5000);
  CheckpointWriter writer;
  writer.Add("x", std::span(data));
  Bytes file = writer.Finish();
  file.resize(file.size() / 2);
  EXPECT_THROW(CheckpointReader reader(file), CorruptStreamError);
}

TEST(CheckpointStoreTest, RangeReadsRestorePartialVariables) {
  const auto phi = GenerateDatasetByName("gts_phi_l", 40000);
  const auto vel = Floats(30000, 2);
  PrimacyOptions small;
  small.chunk_bytes = 64 * 1024;  // 8192 doubles / 16384 floats per chunk
  CheckpointWriter writer(small);
  writer.Add("phi", std::span(phi));
  writer.Add("velocity_x", std::span(vel));
  const Bytes file = writer.Finish();
  const CheckpointReader reader(file);

  PrimacyDecodeStats stats;
  const auto phi_slice = reader.ReadDoublesRange("phi", 10000, 5000, &stats);
  EXPECT_EQ(phi_slice,
            std::vector<double>(phi.begin() + 10000, phi.begin() + 15000));
  EXPECT_EQ(stats.chunks_decoded, 1u);  // [10000, 15000) sits in chunk 1
  EXPECT_TRUE(stats.used_directory);

  const auto vel_slice = reader.ReadFloatsRange("velocity_x", 100, 200);
  EXPECT_EQ(vel_slice,
            std::vector<float>(vel.begin() + 100, vel.begin() + 300));

  EXPECT_THROW(reader.ReadDoublesRange("phi", 40000, 1),
               InvalidArgumentError);
  EXPECT_THROW(reader.ReadFloatsRange("phi", 0, 1), InvalidArgumentError);
}

TEST(CheckpointStoreTest, ReadAllRawRestoresEveryVariableInParallel) {
  const auto phi = GenerateDatasetByName("gts_phi_l", 30000);
  const auto temp = GenerateDatasetByName("obs_temp", 20000);
  const auto vel = Floats(15000, 1);
  CheckpointWriter writer;
  writer.Add("phi", std::span(phi));
  writer.Add("temp", std::span(temp));
  writer.Add("velocity_x", std::span(vel));
  const Bytes file = writer.Finish();

  PrimacyOptions decode;
  decode.threads = 4;
  const CheckpointReader reader(file, decode);
  PrimacyDecodeStats stats;
  const std::vector<Bytes> raw = reader.ReadAllRaw(&stats);
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(FromBytes<double>(raw[0]), phi);
  EXPECT_EQ(FromBytes<double>(raw[1]), temp);
  EXPECT_EQ(FromBytes<float>(raw[2]), vel);
  EXPECT_EQ(stats.output_bytes,
            phi.size() * 8 + temp.size() * 8 + vel.size() * 4);
}

TEST(CheckpointStoreTest, ThreadedReaderMatchesSerialReader) {
  const auto phi = GenerateDatasetByName("num_plasma", 60000);
  PrimacyOptions small;
  small.chunk_bytes = 32 * 1024;
  CheckpointWriter writer(small);
  writer.Add("phi", std::span(phi));
  const Bytes file = writer.Finish();

  PrimacyOptions threaded;
  threaded.threads = 4;
  EXPECT_EQ(CheckpointReader(file, threaded).ReadDoubles("phi"),
            CheckpointReader(file).ReadDoubles("phi"));
}

TEST(CheckpointStoreTest, DefaultReaderHasNoCache) {
  const auto data = GenerateDatasetByName("obs_info", 10000);
  CheckpointWriter writer;
  writer.Add("x", std::span(data));
  const Bytes file = writer.Finish();
  const CheckpointReader reader(file);
  EXPECT_EQ(reader.cache(), nullptr);
  PrimacyDecodeStats stats;
  EXPECT_EQ(reader.ReadDoubles("x", &stats), data);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

TEST(CheckpointStoreTest, CachedReaderServesWarmRangeReads) {
  const auto phi = GenerateDatasetByName("gts_phi_l", 40000);
  PrimacyOptions small;
  small.chunk_bytes = 64 * 1024;  // 8192 doubles per chunk
  CheckpointWriter writer(small);
  writer.Add("phi", std::span(phi));
  const Bytes file = writer.Finish();

  PrimacyOptions decode;
  decode.cache.enabled = true;
  decode.cache.capacity_bytes = 8 * 1024 * 1024;
  const CheckpointReader reader(file, decode);
  ASSERT_NE(reader.cache(), nullptr);

  PrimacyDecodeStats cold;
  const auto first = reader.ReadDoublesRange("phi", 10000, 5000, &cold);
  EXPECT_EQ(first,
            std::vector<double>(phi.begin() + 10000, phi.begin() + 15000));
  EXPECT_EQ(cold.chunks_decoded, 1u);
  EXPECT_EQ(cold.cache_misses, 1u);

  // A range spanning chunks 0 and 1: chunk 0 is cold (decoded), chunk 1 is
  // already resident from the first read.
  PrimacyDecodeStats warm;
  const auto second = reader.ReadDoublesRange("phi", 7000, 2000, &warm);
  EXPECT_EQ(second,
            std::vector<double>(phi.begin() + 7000, phi.begin() + 9000));
  EXPECT_EQ(warm.chunks_decoded, 1u);  // chunk 0
  EXPECT_EQ(warm.cache_hits, 1u);      // chunk 1

  PrimacyDecodeStats third;
  const auto again = reader.ReadDoublesRange("phi", 10000, 5000, &third);
  EXPECT_EQ(again, first);
  EXPECT_EQ(third.chunks_decoded, 0u);
  EXPECT_EQ(third.cache_hits, 1u);
}

TEST(CheckpointStoreTest, FullReadWarmsRangeReadsThroughSharedCache) {
  const auto phi = GenerateDatasetByName("num_plasma", 40000);
  PrimacyOptions small;
  small.chunk_bytes = 64 * 1024;
  CheckpointWriter writer(small);
  writer.Add("phi", std::span(phi));
  const Bytes file = writer.Finish();

  PrimacyOptions decode;
  decode.threads = 2;
  decode.cache.enabled = true;
  decode.cache.capacity_bytes = 8 * 1024 * 1024;
  const CheckpointReader reader(file, decode);

  // ReadAllRaw decodes through the serial twin; it must share the same
  // cache instance, so a later range read is already warm.
  PrimacyDecodeStats full;
  const std::vector<Bytes> raw = reader.ReadAllRaw(&full);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(FromBytes<double>(raw[0]), phi);
  EXPECT_GT(full.cache_misses, 0u);

  PrimacyDecodeStats warm;
  const auto slice = reader.ReadDoublesRange("phi", 20000, 1000, &warm);
  EXPECT_EQ(slice,
            std::vector<double>(phi.begin() + 20000, phi.begin() + 21000));
  EXPECT_EQ(warm.chunks_decoded, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
}

TEST(CheckpointStoreTest, LazyDecompression) {
  // Reading one variable must not require decompressing the others; this is
  // observable through timing only indirectly, so assert the structural
  // property instead: extents are disjoint and within the body.
  const auto a = GenerateDatasetByName("gts_phi_l", 40000);
  const auto b = GenerateDatasetByName("obs_temp", 40000);
  CheckpointWriter writer;
  writer.Add("a", std::span(a));
  writer.Add("b", std::span(b));
  const Bytes file = writer.Finish();
  const CheckpointReader reader(file);
  const VariableInfo& va = reader.Find("a");
  const VariableInfo& vb = reader.Find("b");
  EXPECT_EQ(va.stream_offset + va.stream_bytes, vb.stream_offset);
  EXPECT_EQ(reader.ReadDoubles("b"), b);  // read out of order
  EXPECT_EQ(reader.ReadDoubles("a"), a);
}

}  // namespace
}  // namespace primacy
