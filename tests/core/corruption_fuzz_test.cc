// Deterministic corruption harness: a structured mutation engine (bit
// flips, byte stomps, swaps, truncations, insertions, deletions, and
// length-field / footer tampering, all seeded from util::Rng) drives every
// decode surface with 10k mutated streams. The contract under test: a
// mutated stream either decodes cleanly or fails with a *typed* error
// (CorruptStreamError / InvalidArgumentError, or an allocation failure from
// a hostile size field) — never a crash, hang, or undefined behavior. And
// for v3 (checksummed) streams, "decodes cleanly" additionally implies the
// output is bit-identical to the original payload.
#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "bitstream/byte_io.h"
#include "core/chunk_pipeline.h"
#include "core/primacy_codec.h"
#include "core/stream_format.h"
#include "core/streaming.h"
#include "datasets/datasets.h"
#include "store/checkpoint_store.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

// ---------------------------------------------------------------------------
// Mutation engine

enum class Mutation {
  kBitFlip,
  kByteStomp,
  kByteSwap,
  kTruncate,
  kAppendGarbage,
  kInsertWindow,
  kDeleteWindow,
  kZeroWindow,
  kLengthFieldTamper,  // overwrite a run with 0xFF: varints balloon
  kFooterTamper,       // mutate within the trailing 32 bytes
  kCount,
};

Bytes Mutate(const Bytes& base, Rng& rng) {
  Bytes out = base;
  const auto kind = static_cast<Mutation>(
      rng.NextBelow(static_cast<std::uint64_t>(Mutation::kCount)));
  const auto pos = [&](std::size_t size) {
    return static_cast<std::size_t>(rng.NextBelow(size));
  };
  switch (kind) {
    case Mutation::kBitFlip:
      out[pos(out.size())] ^=
          static_cast<std::byte>(1u << rng.NextBelow(8));
      break;
    case Mutation::kByteStomp:
      out[pos(out.size())] = static_cast<std::byte>(rng.NextU64() & 0xff);
      break;
    case Mutation::kByteSwap: {
      const std::size_t a = pos(out.size());
      const std::size_t b = pos(out.size());
      std::swap(out[a], out[b]);
      break;
    }
    case Mutation::kTruncate:
      out.resize(pos(out.size()));
      break;
    case Mutation::kAppendGarbage: {
      const std::size_t n = 1 + pos(64);
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(static_cast<std::byte>(rng.NextU64() & 0xff));
      }
      break;
    }
    case Mutation::kInsertWindow: {
      const std::size_t n = 1 + pos(16);
      Bytes window(n);
      for (auto& b : window) {
        b = static_cast<std::byte>(rng.NextU64() & 0xff);
      }
      const std::size_t at = pos(out.size() + 1);
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                 window.begin(), window.end());
      break;
    }
    case Mutation::kDeleteWindow: {
      const std::size_t at = pos(out.size());
      const std::size_t n = 1 + pos(std::min<std::size_t>(16, out.size() - at));
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(at),
                out.begin() + static_cast<std::ptrdiff_t>(at + n));
      break;
    }
    case Mutation::kZeroWindow: {
      const std::size_t at = pos(out.size());
      const std::size_t n = 1 + pos(std::min<std::size_t>(32, out.size() - at));
      std::memset(out.data() + at, 0, n);
      break;
    }
    case Mutation::kLengthFieldTamper: {
      // 0xFF runs read back as maximal varint groups — the classic
      // "length field claims more than the buffer holds" shape.
      const std::size_t at = pos(out.size());
      const std::size_t n = 1 + pos(std::min<std::size_t>(9, out.size() - at));
      std::memset(out.data() + at, 0xff, n);
      break;
    }
    case Mutation::kFooterTamper: {
      const std::size_t window = std::min<std::size_t>(32, out.size());
      const std::size_t at = out.size() - window + pos(window);
      out[at] ^= static_cast<std::byte>(1 + (rng.NextU64() & 0xfe));
      break;
    }
    case Mutation::kCount:
      break;  // unreachable
  }
  return out;
}

// Runs `fn` and classifies the outcome. Anything but a clean return or a
// typed decode error (or an allocation failure provoked by a hostile size
// field) fails the test.
template <typename Fn>
bool DecodesCleanly(Fn&& fn, const std::string& context) {
  try {
    fn();
    return true;
  } catch (const CorruptStreamError&) {
  } catch (const InvalidArgumentError&) {
  } catch (const std::bad_alloc&) {
  } catch (const std::length_error&) {
  } catch (const std::exception& e) {
    ADD_FAILURE() << context << ": unexpected exception type: " << e.what();
  }
  return false;
}

struct Corpus {
  std::string name;
  Bytes stream;
  Bytes payload;  // the exact bytes a clean decode must reproduce
  bool checksummed = false;
};

std::vector<double> SpecialValues(std::size_t n, Rng& rng) {
  std::vector<double> values = GenerateDatasetByName("num_plasma", n);
  // Sprinkle in the adversarial doubles a checkpoint can legally hold.
  const double specials[] = {0.0, -0.0, 1e308, -1e308, 5e-324,
                             std::bit_cast<double>(0x7ff0000000000000ull),
                             std::bit_cast<double>(0xfff0000000000000ull),
                             std::bit_cast<double>(0x7ff8000000000001ull)};
  for (std::size_t i = 0; i < n / 16; ++i) {
    values[rng.NextBelow(n)] = specials[rng.NextBelow(8)];
  }
  return values;
}

// Hand-assembled v1 (see stream_v2_test.cc): header + records + tail.
Bytes MakeV1(std::span<const double> values, const PrimacyOptions& options) {
  Bytes out;
  internal::WriteStreamHeader(out, options, values.size() * 8,
                              /*stored=*/false, internal::kFormatVersion1);
  const auto solver = internal::ResolveSolver(options.solver);
  ChunkEncoder encoder(options, *solver);
  const ByteSpan body = AsBytes(values);
  const std::size_t chunk_elements = options.chunk_bytes / 8;
  for (std::size_t first = 0; first < values.size();
       first += chunk_elements) {
    const std::size_t count = std::min(chunk_elements, values.size() - first);
    encoder.EncodeChunk(body.subspan(first * 8, count * 8), out);
  }
  PutBlock(out, ByteSpan{});
  return out;
}

Bytes MakeV2(std::span<const double> values, const PrimacyOptions& options) {
  Bytes out;
  internal::WriteStreamHeader(out, options, values.size() * 8,
                              /*stored=*/false, internal::kFormatVersion2);
  const auto solver = internal::ResolveSolver(options.solver);
  ChunkEncoder encoder(options, *solver);
  const ByteSpan body = AsBytes(values);
  const std::size_t chunk_elements = options.chunk_bytes / 8;
  internal::ChunkDirectory directory;
  for (std::size_t first = 0; first < values.size();
       first += chunk_elements) {
    const std::size_t count = std::min(chunk_elements, values.size() - first);
    internal::ChunkDirectoryEntry entry;
    entry.offset = out.size();
    entry.elements = count;
    entry.index_flag = 1;
    encoder.EncodeChunk(body.subspan(first * 8, count * 8), out);
    directory.chunks.push_back(entry);
  }
  directory.tail_offset = out.size();
  PutBlock(out, ByteSpan{});
  internal::AppendChunkDirectory(out, directory, internal::kFormatVersion2);
  return out;
}

class CorruptionFuzzTest : public ::testing::Test {
 protected:
  static PrimacyOptions Options() {
    PrimacyOptions options;
    options.chunk_bytes = 4096;  // several chunks from a small payload
    return options;
  }

  static Bytes PayloadOf(std::span<const double> values) {
    return ToBytes(AsBytes(values));
  }
};

// One-shot streams of every version plus the stored fallback: 8500 seeded
// mutations through DecompressBytes (and, sampled, DecompressRange and
// VerifyStream).
TEST_F(CorruptionFuzzTest, MutatedStreamsFailCleanlyAcrossVersions) {
  Rng seed_rng(0x5eed);
  const auto values = SpecialValues(1536, seed_rng);

  std::vector<Corpus> corpora;
  corpora.push_back({"v1", MakeV1(values, Options()),
                     PayloadOf(values), false});
  corpora.push_back({"v2", MakeV2(values, Options()),
                     PayloadOf(values), false});
  corpora.push_back({"v3", PrimacyCompressor(Options()).Compress(values),
                     PayloadOf(values), true});
  {
    // Incompressible input: the stored fallback (v3 with a trailing
    // whole-stream checksum).
    Rng rng(3);
    std::vector<double> noise(1024);
    for (auto& v : noise) {
      v = std::bit_cast<double>(rng.NextU64() & 0x7fefffffffffffffull);
    }
    corpora.push_back({"stored", PrimacyCompressor().Compress(noise),
                       PayloadOf(noise), true});
  }
  {
    // Streamed v1 (unknown-length trailer shape).
    Bytes collected;
    PrimacyStreamWriter writer(
        [&](ByteSpan data) { AppendBytes(collected, data); }, Options());
    writer.Append(std::span(values));
    writer.Finish();
    corpora.push_back({"streamed", std::move(collected),
                       PayloadOf(values), false});
  }

  const PrimacyDecompressor decompressor(Options());
  constexpr std::size_t kMutationsPerCorpus = 1700;  // x5 corpora = 8500
  for (const Corpus& corpus : corpora) {
    Rng rng(Xxh64(BytesFromString(corpus.name), 2026));
    for (std::size_t i = 0; i < kMutationsPerCorpus; ++i) {
      const Bytes mutated = Mutate(corpus.stream, rng);
      const std::string context =
          corpus.name + " mutation " + std::to_string(i);
      Bytes decoded;
      const bool clean = DecodesCleanly(
          [&] {
            if (corpus.name == "streamed") {
              PrimacyStreamReader reader(mutated);
              while (reader.NextChunk(decoded)) {
              }
            } else {
              decoded = decompressor.DecompressBytes(mutated);
            }
          },
          context);
      if (clean && corpus.checksummed) {
        // The acceptance bar for v3: damage is either detected or the
        // mutation was semantically a no-op — silent wrong output is not an
        // outcome. (Non-payload bytes like the version-independent footer
        // fields can absorb some mutations; the payload must survive.)
        EXPECT_EQ(decoded, corpus.payload) << context;
      }
      // Sampled extra surfaces: range reads and the never-throwing verifier.
      if (i % 5 == 0) {
        DecodesCleanly(
            [&] {
              decompressor.DecompressBytesRange(
                  mutated, rng.NextBelow(2048), rng.NextBelow(512));
            },
            context + " (range)");
        const StreamVerifyResult verdict = VerifyStream(mutated);
        if (!verdict.ok) {
          EXPECT_FALSE(verdict.error.empty()) << context;
        }
      }
    }
  }
}

// Checkpoint containers: 1500 seeded mutations through the footer parser,
// bulk restore, and VerifyAll (which must never throw).
TEST_F(CorruptionFuzzTest, MutatedCheckpointsFailCleanly) {
  Rng seed_rng(0xc0ffee);
  CheckpointWriter writer(Options());
  const std::vector<double> temperature = SpecialValues(800, seed_rng);
  const std::vector<double> pressure = SpecialValues(500, seed_rng);
  writer.Add("temperature", std::span(temperature));
  writer.Add("pressure", std::span(pressure));
  const Bytes checkpoint = writer.Finish();

  Rng rng(0xdecaf);
  for (std::size_t i = 0; i < 1500; ++i) {
    const Bytes mutated = Mutate(checkpoint, rng);
    const std::string context = "checkpoint mutation " + std::to_string(i);
    DecodesCleanly(
        [&] {
          const CheckpointReader reader(mutated, Options());
          reader.ReadAllRaw();
          for (const auto& result : reader.VerifyAll()) {
            if (!result.stream.ok) {
              EXPECT_FALSE(result.stream.error.empty()) << context;
            }
          }
        },
        context);
  }
}

// The engine itself is deterministic: the same seed must produce the same
// mutation sequence, or "10k seeded mutations" is not a reproducible claim.
TEST_F(CorruptionFuzzTest, MutationEngineIsDeterministic) {
  const auto values = GenerateDatasetByName("obs_temp", 512);
  const Bytes stream = PrimacyCompressor(Options()).Compress(values);
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(Mutate(stream, a), Mutate(stream, b)) << "iteration " << i;
  }
}

}  // namespace
}  // namespace primacy
