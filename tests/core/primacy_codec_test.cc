#include "core/primacy_codec.h"

#include <gtest/gtest.h>

#include <bit>
#include <limits>
#include <tuple>

#include "datasets/datasets.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

std::vector<double> SmallDataset(const std::string& name, std::size_t n) {
  return GenerateDatasetByName(name, n);
}

TEST(PrimacyCodecTest, RoundTripsDatasetValuesBitExactly) {
  const auto values = SmallDataset("gts_phi_l", 100000);
  const PrimacyCompressor compressor;
  const PrimacyDecompressor decompressor;
  const Bytes stream = compressor.Compress(values);
  const auto restored = decompressor.Decompress(stream);
  ASSERT_EQ(restored.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(restored[i]),
              std::bit_cast<std::uint64_t>(values[i]))
        << "element " << i;
  }
}

class PrimacyOptionSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, Linearization, IndexMode>> {};

TEST_P(PrimacyOptionSweep, RoundTripsUnderAllOptionCombinations) {
  const auto& [solver, linearization, index_mode] = GetParam();
  PrimacyOptions options;
  options.solver = solver;
  options.linearization = linearization;
  options.index_mode = index_mode;
  options.chunk_bytes = 64 * 1024;  // several chunks at this input size
  const auto values = SmallDataset("obs_temp", 40000);
  const PrimacyCompressor compressor(options);
  const PrimacyDecompressor decompressor(options);
  const auto restored = decompressor.Decompress(compressor.Compress(values));
  EXPECT_EQ(restored, values);
}

INSTANTIATE_TEST_SUITE_P(
    Options, PrimacyOptionSweep,
    ::testing::Combine(::testing::Values("deflate", "lzfast", "bwt"),
                       ::testing::Values(Linearization::kRow,
                                         Linearization::kColumn),
                       ::testing::Values(IndexMode::kPerChunk,
                                         IndexMode::kReuseWhenCorrelated)),
    [](const auto& info) {
      return std::get<0>(info.param) +
             std::string(std::get<1>(info.param) == Linearization::kRow
                             ? "_row"
                             : "_col") +
             (std::get<2>(info.param) == IndexMode::kPerChunk ? "_perchunk"
                                                              : "_reuse");
    });

TEST(PrimacyCodecTest, StatsAccountForAllStages) {
  const auto values = SmallDataset("num_plasma", 200000);
  PrimacyOptions options;
  options.chunk_bytes = 256 * 1024;
  const PrimacyCompressor compressor(options);
  PrimacyStats stats;
  const Bytes stream = compressor.Compress(values, &stats);
  EXPECT_EQ(stats.input_bytes, values.size() * 8);
  EXPECT_EQ(stats.output_bytes, stream.size());
  EXPECT_EQ(stats.chunks, (values.size() * 8 + 256 * 1024 - 1) / (256 * 1024));
  EXPECT_EQ(stats.indexes_emitted, stats.chunks);
  EXPECT_GT(stats.index_bytes, 0u);
  EXPECT_GT(stats.id_compressed_bytes, 0u);
  EXPECT_GT(stats.mantissa_stream_bytes, 0u);
  EXPECT_GT(stats.CompressionRatio(), 1.0);
}

TEST(PrimacyCodecTest, IdMappingRaisesRepeatability) {
  // Section II-C: ~15% average gain in top-byte frequency.
  const auto values = SmallDataset("gts_chkp_zeon", 200000);
  const PrimacyCompressor compressor;
  PrimacyStats stats;
  compressor.Compress(values, &stats);
  EXPECT_GT(stats.top_byte_frequency_after,
            stats.top_byte_frequency_before + 0.05);
}

TEST(PrimacyCodecTest, IndexReuseEmitsFewerIndexes) {
  // Statistically stationary data: consecutive chunks correlate, so the
  // reuse policy should emit far fewer indexes than chunks.
  const auto values = SmallDataset("obs_temp", 300000);
  PrimacyOptions reuse;
  reuse.chunk_bytes = 128 * 1024;
  reuse.index_mode = IndexMode::kReuseWhenCorrelated;
  PrimacyStats stats;
  const PrimacyCompressor compressor(reuse);
  const Bytes stream = compressor.Compress(values, &stats);
  EXPECT_GT(stats.chunks, 10u);
  EXPECT_LT(stats.indexes_emitted, stats.chunks);
  // And the stream still decodes.
  const PrimacyDecompressor decompressor(reuse);
  EXPECT_EQ(decompressor.Decompress(stream), values);
}

TEST(PrimacyCodecTest, SolverNameEmbeddedInStream) {
  PrimacyOptions options;
  options.solver = "lzfast";
  const PrimacyCompressor compressor(options);
  const auto values = SmallDataset("obs_info", 5000);
  const Bytes stream = compressor.Compress(values);
  // A default decompressor (deflate options) must still decode it.
  const PrimacyDecompressor decompressor;
  EXPECT_EQ(decompressor.Decompress(stream), values);
}

TEST(PrimacyCodecTest, UnknownSolverRejected) {
  PrimacyOptions options;
  options.solver = "not-a-codec";
  EXPECT_THROW(PrimacyCompressor compressor(options), InvalidArgumentError);
}

TEST(PrimacyCodecTest, TinyChunkSizeRejected) {
  PrimacyOptions options;
  options.chunk_bytes = 4;
  EXPECT_THROW(PrimacyCompressor compressor(options), InvalidArgumentError);
}

TEST(PrimacyCodecTest, EmptyInputRoundTrips) {
  const PrimacyCompressor compressor;
  const PrimacyDecompressor decompressor;
  const Bytes stream = compressor.Compress(std::span<const double>{});
  EXPECT_TRUE(decompressor.Decompress(stream).empty());
}

TEST(PrimacyCodecTest, SingleElementRoundTrips) {
  const std::vector<double> values{3.14159};
  const PrimacyCompressor compressor;
  const PrimacyDecompressor decompressor;
  EXPECT_EQ(decompressor.Decompress(compressor.Compress(values)), values);
}

TEST(PrimacyCodecTest, SpecialValuesSurvive) {
  std::vector<double> values(1000, 1.0);
  values[0] = 0.0;
  values[1] = -0.0;
  values[2] = std::numeric_limits<double>::infinity();
  values[3] = -std::numeric_limits<double>::infinity();
  values[4] = std::numeric_limits<double>::quiet_NaN();
  values[5] = std::numeric_limits<double>::denorm_min();
  const PrimacyCompressor compressor;
  const PrimacyDecompressor decompressor;
  const auto restored = decompressor.Decompress(compressor.Compress(values));
  ASSERT_EQ(restored.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(restored[i]),
              std::bit_cast<std::uint64_t>(values[i]));
  }
}

TEST(PrimacyCodecTest, NonMultipleOfEightTailPreserved) {
  // Through the byte-level Codec interface.
  const PrimacyCodec codec;
  Bytes data(8 * 1000 + 5);
  Rng rng(9);
  for (auto& b : data) b = static_cast<std::byte>(rng.NextBelow(256));
  EXPECT_EQ(codec.Decompress(codec.Compress(data)), data);
}

TEST(PrimacyCodecTest, CorruptMagicRejected) {
  const PrimacyCompressor compressor;
  const PrimacyDecompressor decompressor;
  Bytes stream = compressor.Compress(SmallDataset("obs_info", 1000));
  stream[0] = 0xff_b;
  EXPECT_THROW(decompressor.Decompress(stream), CorruptStreamError);
}

TEST(PrimacyCodecTest, TruncatedStreamRejected) {
  const PrimacyCompressor compressor;
  const PrimacyDecompressor decompressor;
  Bytes stream = compressor.Compress(SmallDataset("obs_info", 50000));
  stream.resize(stream.size() / 2);
  EXPECT_THROW(decompressor.Decompress(stream), CorruptStreamError);
}

TEST(PrimacyCodecTest, ChunkBoundariesDoNotLeakState) {
  // Identical data compressed as one chunk vs many chunks must decode
  // identically (chunks are self-contained except for index reuse).
  const auto values = SmallDataset("flash_velx", 60000);
  PrimacyOptions one;
  one.chunk_bytes = 8 * 60000;
  PrimacyOptions many;
  many.chunk_bytes = 32 * 1024;
  const auto a =
      PrimacyDecompressor(one).Decompress(PrimacyCompressor(one).Compress(values));
  const auto b = PrimacyDecompressor(many).Decompress(
      PrimacyCompressor(many).Compress(values));
  EXPECT_EQ(a, values);
  EXPECT_EQ(b, values);
}

}  // namespace
}  // namespace primacy
