// Property-based round-trip coverage: randomized element counts (0, 1, and
// counts straddling chunk boundaries), adversarial doubles (NaN, ±Inf,
// denormals, -0.0), and every codec registry entry as the solver — all
// seeded and reproducible. The property: Compress then Decompress is the
// identity on the input bits, whatever the shape of the input.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "compress/registry.h"
#include "core/builtin_codecs.h"
#include "core/primacy_codec.h"
#include "datasets/datasets.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

// Bitwise comparison: NaNs compare unequal under operator==, so the
// round-trip property must be stated on the representation, not the value.
bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      return false;
    }
  }
  return true;
}

double SpecialDouble(Rng& rng) {
  switch (rng.NextBelow(10)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return std::bit_cast<double>(0x7ff0000000000000ull);   // +inf
    case 3: return std::bit_cast<double>(0xfff0000000000000ull);   // -inf
    case 4: return std::bit_cast<double>(0x7ff8000000000000ull);   // qNaN
    case 5: return std::bit_cast<double>(0x7ff0000000000001ull);   // sNaN
    case 6: return 5e-324;                                         // min denormal
    case 7: return std::bit_cast<double>(0x000fffffffffffffull);   // max denormal
    case 8: return 1.7976931348623157e308;                         // max finite
    default: return -4.9406564584124654e-324;
  }
}

std::vector<double> RandomInput(Rng& rng, std::size_t count) {
  std::vector<double> values(count);
  for (auto& v : values) {
    if (rng.NextBelow(8) == 0) {
      v = SpecialDouble(rng);
    } else {
      // Smooth-ish values interleaved with raw bit noise: both the
      // high-correlation path the ID mapper likes and the stored fallback.
      v = rng.NextBelow(2) == 0
              ? 1.0 + static_cast<double>(rng.NextU64() % 100000) * 1e-5
              : std::bit_cast<double>(rng.NextU64());
    }
  }
  return values;
}

TEST(RoundTripPropertyTest, EdgeElementCountsRoundTrip) {
  // chunk_bytes = 1024 -> 128 doubles per chunk; counts probe empty input,
  // single element, exact chunk multiples, and off-by-one straddles.
  PrimacyOptions options;
  options.chunk_bytes = 1024;
  const PrimacyCompressor compressor(options);
  const PrimacyDecompressor decompressor(options);
  Rng rng(0xabcdef);
  for (const std::size_t count :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{127},
        std::size_t{128}, std::size_t{129}, std::size_t{255}, std::size_t{256},
        std::size_t{257}, std::size_t{1000}}) {
    const auto values = RandomInput(rng, count);
    const Bytes stream = compressor.Compress(values);
    EXPECT_TRUE(BitIdentical(decompressor.Decompress(stream), values))
        << "count " << count;
  }
}

TEST(RoundTripPropertyTest, RandomCountsAndShapesRoundTrip) {
  Rng rng(20260806);
  PrimacyOptions options;
  options.chunk_bytes = 2048;
  const PrimacyCompressor compressor(options);
  const PrimacyDecompressor decompressor(options);
  for (int iteration = 0; iteration < 40; ++iteration) {
    const std::size_t count = rng.NextBelow(3000);
    const auto values = RandomInput(rng, count);
    const Bytes stream = compressor.Compress(values);
    EXPECT_TRUE(BitIdentical(decompressor.Decompress(stream), values))
        << "iteration " << iteration << " count " << count;
  }
}

TEST(RoundTripPropertyTest, DanglingTailBytesRoundTrip) {
  // Raw-byte interface: sizes that are not a multiple of the element width
  // store the remainder in the tail block.
  PrimacyOptions options;
  options.chunk_bytes = 1024;
  const PrimacyCompressor compressor(options);
  const PrimacyDecompressor decompressor(options);
  Rng rng(77);
  for (const std::size_t extra : {1, 3, 7}) {
    const auto values = RandomInput(rng, 300);
    Bytes input = ToBytes(AsBytes(std::span(values)));
    for (std::size_t i = 0; i < extra; ++i) {
      input.push_back(static_cast<std::byte>(rng.NextU64() & 0xff));
    }
    const Bytes stream = compressor.CompressBytes(input);
    EXPECT_EQ(decompressor.DecompressBytes(stream), input)
        << "extra " << extra;
  }
}

TEST(RoundTripPropertyTest, EveryRegisteredSolverRoundTrips) {
  RegisterBuiltinCodecs();
  const auto names = CodecRegistry::Global().Names();
  ASSERT_FALSE(names.empty());
  Rng rng(0x50f7);
  const auto values = RandomInput(rng, 700);
  for (const std::string& name : names) {
    if (name == "primacy") continue;  // not a solver for itself
    PrimacyOptions options;
    options.chunk_bytes = 2048;
    options.solver = name;
    const Bytes stream = PrimacyCompressor(options).Compress(values);
    EXPECT_TRUE(
        BitIdentical(PrimacyDecompressor(options).Decompress(stream), values))
        << "solver " << name;
  }
}

TEST(RoundTripPropertyTest, ReuseWhenCorrelatedWithSpecialsRoundTrips) {
  // The delta-index path under adversarial values: correlated smooth chunks
  // with specials sprinkled in.
  PrimacyOptions options;
  options.chunk_bytes = 2048;
  options.index_mode = IndexMode::kReuseWhenCorrelated;
  Rng rng(0xfeed);
  auto values = GenerateDatasetByName("gts_phi_l", 4000);
  for (std::size_t i = 0; i < values.size() / 20; ++i) {
    values[rng.NextBelow(values.size())] = SpecialDouble(rng);
  }
  const Bytes stream = PrimacyCompressor(options).Compress(values);
  EXPECT_TRUE(
      BitIdentical(PrimacyDecompressor(options).Decompress(stream), values));
}

TEST(RoundTripPropertyTest, SinglePrecisionSpecialsRoundTrip) {
  PrimacyOptions options;
  options.precision = Precision::kSingle;
  options.chunk_bytes = 1024;
  Rng rng(0xf10a7);
  std::vector<float> values(1500);
  for (auto& v : values) {
    switch (rng.NextBelow(6)) {
      case 0: v = std::bit_cast<float>(0x7f800000u); break;   // +inf
      case 1: v = std::bit_cast<float>(0x7fc00000u); break;   // qNaN
      case 2: v = -0.0f; break;
      case 3: v = std::bit_cast<float>(0x00000001u); break;   // denormal
      default:
        v = static_cast<float>(rng.NextBelow(1000)) * 0.25f;
    }
  }
  const Bytes stream = PrimacyCompressor(options).Compress(values);
  const auto restored = PrimacyDecompressor(options).DecompressSingle(stream);
  ASSERT_EQ(restored.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(restored[i]),
              std::bit_cast<std::uint32_t>(values[i]))
        << "element " << i;
  }
}

}  // namespace
}  // namespace primacy
