// Stream format v3: per-chunk checksums, the header/tail and directory
// checksums, the verify_checksums decode knob, and verification on every
// decode path (serial full decode, parallel directory decode, range reads,
// the streaming reader, and VerifyStream).
#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <vector>

#include "bitstream/byte_io.h"
#include "core/in_situ.h"
#include "core/primacy_codec.h"
#include "core/stream_format.h"
#include "core/streaming.h"
#include "datasets/datasets.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

PrimacyOptions SmallChunks(std::size_t chunk_bytes = 64 * 1024) {
  PrimacyOptions options;
  options.chunk_bytes = chunk_bytes;
  return options;
}

struct ParsedStream {
  internal::StreamHeader header;
  std::size_t chunks_begin = 0;
  internal::ChunkDirectory directory;
};

ParsedStream Parse(ByteSpan stream) {
  ByteReader reader(stream);
  ParsedStream parsed;
  parsed.header = internal::ReadStreamHeader(reader);
  parsed.chunks_begin = reader.Offset();
  parsed.directory = internal::ReadChunkDirectory(stream, parsed.chunks_begin,
                                                  parsed.header.version);
  return parsed;
}

TEST(StreamV3Test, DirectoryCarriesChecksumsThatMatchTheRecordBytes) {
  const auto values = GenerateDatasetByName("obs_temp", 30000);
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  const ParsedStream parsed = Parse(stream);
  ASSERT_EQ(parsed.header.version, internal::kFormatVersion3);
  ASSERT_TRUE(parsed.directory.has_checksums);
  ASSERT_EQ(parsed.directory.chunks.size(), (30000u + 8191) / 8192);
  for (std::size_t c = 0; c < parsed.directory.chunks.size(); ++c) {
    const auto& entry = parsed.directory.chunks[c];
    const std::uint64_t end = c + 1 < parsed.directory.chunks.size()
                                  ? parsed.directory.chunks[c + 1].offset
                                  : parsed.directory.tail_offset;
    const ByteSpan record = ByteSpan(stream).subspan(
        static_cast<std::size_t>(entry.offset),
        static_cast<std::size_t>(end - entry.offset));
    EXPECT_EQ(Xxh64(record), entry.checksum) << "chunk " << c;
  }
  EXPECT_EQ(internal::ComputeHeaderTailChecksum(stream, parsed.directory,
                                                parsed.chunks_begin),
            parsed.directory.header_tail_checksum);
}

TEST(StreamV3Test, EverySingleBitFlipInChunkRecordsIsDetected) {
  // The acceptance-criterion proof: flip EVERY bit of every chunk record and
  // require CorruptStreamError from the (verifying) decoder. A small stream
  // keeps this exhaustive sweep fast — the checksum check fires before any
  // decode work.
  const auto values = GenerateDatasetByName("num_plasma", 768);
  const Bytes stream = PrimacyCompressor(SmallChunks(2048)).Compress(values);
  const ParsedStream parsed = Parse(stream);
  ASSERT_GE(parsed.directory.chunks.size(), 2u);
  const auto first_record =
      static_cast<std::size_t>(parsed.directory.chunks.front().offset);
  const auto records_end =
      static_cast<std::size_t>(parsed.directory.tail_offset);
  ASSERT_LT(first_record, records_end);

  const PrimacyDecompressor decompressor;
  Bytes mutated = stream;
  std::size_t flips = 0;
  for (std::size_t byte = first_record; byte < records_end; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      const std::byte mask{static_cast<unsigned char>(1u << bit)};
      mutated[byte] ^= mask;
      // Hash-only verification catches every flip...
      EXPECT_FALSE(VerifyStream(mutated).ok)
          << "undetected flip at byte " << byte << " bit " << bit;
      // ...and the decoding path throws for a sampled subset (the full
      // product would redundantly re-decode healthy chunks tens of
      // thousands of times).
      if (flips % 41 == 0) {
        EXPECT_THROW(decompressor.Decompress(mutated), CorruptStreamError)
            << "undetected flip at byte " << byte << " bit " << bit;
      }
      ++flips;
      mutated[byte] ^= mask;  // restore
    }
  }
  // The restore discipline held: the stream still decodes.
  EXPECT_EQ(decompressor.Decompress(mutated), values);
}

TEST(StreamV3Test, HeaderAndTailFlipsAreDetected) {
  // Append a partial element so the stream has a non-empty tail block, then
  // flip bits in the regions the header/tail checksum covers. (num_plasma:
  // obs_temp at this size lands in the stored fallback, which has no
  // directory to carry the header/tail checksum.)
  const auto values = GenerateDatasetByName("num_plasma", 1024);
  Bytes input = ToBytes(AsBytes(std::span(values)));
  input.push_back(0x5a_b);  // dangling tail byte
  const Bytes stream =
      PrimacyCompressor(SmallChunks(4096)).CompressBytes(input);
  const ParsedStream parsed = Parse(stream);
  const PrimacyDecompressor decompressor;

  // A tail-block byte (skip its varint length prefix).
  Bytes mutated = stream;
  const auto tail_last =
      static_cast<std::size_t>(parsed.directory.directory_offset) - 1;
  mutated[tail_last] ^= 0x10_b;
  EXPECT_THROW(decompressor.DecompressBytes(mutated), CorruptStreamError);

  // A header byte past the magic/version/flags prelude: the solver-name
  // length would reframe the header. Flip inside the solver name.
  mutated = stream;
  mutated[8] ^= 0x20_b;
  EXPECT_THROW(decompressor.DecompressBytes(mutated), CorruptStreamError);
}

TEST(StreamV3Test, DirectoryChecksumGuardsTheDirectoryItself) {
  const auto values = GenerateDatasetByName("obs_temp", 20000);
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  const ParsedStream parsed = Parse(stream);
  const auto directory_begin =
      static_cast<std::size_t>(parsed.directory.directory_offset);
  // Directory payload spans [directory_begin, size - 20). Flipping any bit
  // must trip the footer checksum even with verification disabled — the
  // directory drives every bounds computation.
  PrimacyOptions no_verify;
  no_verify.verify_checksums = false;
  const PrimacyDecompressor decompressor(no_verify);
  Bytes mutated = stream;
  for (std::size_t byte = directory_begin; byte < stream.size() - 20;
       ++byte) {
    mutated[byte] ^= 0x01_b;
    EXPECT_THROW(decompressor.Decompress(mutated), CorruptStreamError)
        << "undetected directory flip at byte " << byte;
    mutated[byte] ^= 0x01_b;
  }
}

TEST(StreamV3Test, VerifyChecksumsKnobControlsChunkVerification) {
  const auto values = GenerateDatasetByName("gts_phi_l", 40000);
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  const std::size_t chunks = (40000 + 8191) / 8192;

  PrimacyDecodeStats stats;
  PrimacyDecompressor(SmallChunks()).Decompress(stream, &stats);
  EXPECT_EQ(stats.chunks_verified, chunks) << "default verifies every chunk";

  PrimacyOptions off = SmallChunks();
  off.verify_checksums = false;
  PrimacyDecodeStats off_stats;
  const auto restored = PrimacyDecompressor(off).Decompress(stream, &off_stats);
  EXPECT_EQ(restored, values);
  EXPECT_EQ(off_stats.chunks_verified, 0u);
}

TEST(StreamV3Test, ParallelDecodeVerifiesEveryChunk) {
  const auto values = GenerateDatasetByName("obs_temp", 65536);
  PrimacyOptions options = SmallChunks();
  options.threads = 0;  // hardware concurrency
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  PrimacyDecodeStats stats;
  const auto restored = PrimacyDecompressor(options).Decompress(stream, &stats);
  EXPECT_EQ(restored, values);
  EXPECT_EQ(stats.chunks_verified, 65536 / 8192);
  EXPECT_GT(stats.threads_used, 1u);

  // A flipped record bit is detected from worker threads too.
  const ParsedStream parsed = Parse(stream);
  Bytes mutated = stream;
  mutated[static_cast<std::size_t>(parsed.directory.chunks[3].offset) + 9] ^=
      0x04_b;
  EXPECT_THROW(PrimacyDecompressor(options).Decompress(mutated),
               CorruptStreamError);
}

TEST(StreamV3Test, RangeReadsVerifyOnlyTouchedChunks) {
  const auto values = GenerateDatasetByName("obs_temp", 40000);  // 5 chunks
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  PrimacyDecodeStats stats;
  const PrimacyDecompressor decompressor;
  const auto slice = decompressor.DecompressRange(stream, 10000, 5000, &stats);
  EXPECT_EQ(slice, std::vector<double>(values.begin() + 10000,
                                       values.begin() + 15000));
  EXPECT_EQ(stats.chunks_decoded, 1u);
  EXPECT_EQ(stats.chunks_verified, 1u);

  // Corrupt chunk 3's record: ranges inside chunk 1 still read cleanly,
  // ranges touching chunk 3 throw.
  const ParsedStream parsed = Parse(stream);
  Bytes mutated = stream;
  mutated[static_cast<std::size_t>(parsed.directory.chunks[3].offset) + 17] ^=
      0x80_b;
  EXPECT_EQ(decompressor.DecompressRange(mutated, 10000, 100),
            std::vector<double>(values.begin() + 10000,
                                values.begin() + 10100));
  EXPECT_THROW(decompressor.DecompressRange(mutated, 3 * 8192 + 10, 10),
               CorruptStreamError);
}

TEST(StreamV3Test, ChunkErrorsCarryChunkIndexAndByteOffset) {
  const auto values = GenerateDatasetByName("obs_temp", 30000);
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  const ParsedStream parsed = Parse(stream);
  Bytes mutated = stream;
  const std::uint64_t offset = parsed.directory.chunks[2].offset;
  mutated[static_cast<std::size_t>(offset) + 5] ^= 0x01_b;
  try {
    PrimacyDecompressor().Decompress(mutated);
    FAIL() << "corrupt chunk decoded";
  } catch (const CorruptStreamError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("chunk 2"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(offset)), std::string::npos) << what;
  }
}

TEST(StreamV3Test, StoredStreamsCarryATrailingChecksum) {
  Rng rng(11);
  std::vector<double> values(2048);
  for (auto& v : values) {
    v = std::bit_cast<double>(rng.NextU64() & 0x7fefffffffffffffull);
  }
  PrimacyStats stats;
  const Bytes stream = PrimacyCompressor().Compress(values, &stats);
  ASSERT_EQ(stats.chunks, 0u) << "input unexpectedly compressed";

  const auto restored = PrimacyDecompressor().Decompress(stream);
  EXPECT_EQ(restored, values);

  // Flip a payload bit: a verifying decode throws, a non-verifying decode
  // returns the (corrupt) bytes.
  Bytes mutated = stream;
  mutated[stream.size() / 2] ^= 0x08_b;
  EXPECT_THROW(PrimacyDecompressor().Decompress(mutated), CorruptStreamError);
  PrimacyOptions off;
  off.verify_checksums = false;
  EXPECT_NO_THROW(PrimacyDecompressor(off).Decompress(mutated));
}

TEST(StreamV3Test, StreamReaderVerifiesOneShotV3Streams) {
  const auto values = GenerateDatasetByName("num_plasma", 20000);
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  {
    PrimacyStreamReader reader(stream);
    EXPECT_EQ(reader.ReadAllDoubles(), values);
  }
  const ParsedStream parsed = Parse(stream);
  Bytes mutated = stream;
  mutated[static_cast<std::size_t>(parsed.directory.chunks[1].offset) + 3] ^=
      0x40_b;
  {
    PrimacyStreamReader reader(mutated);
    EXPECT_THROW(reader.ReadAllDoubles(), CorruptStreamError);
  }
  {
    // Verification off: the reader no longer checks record hashes (the
    // decode itself may or may not survive the damage; use a bit the
    // checksum catches but whose record still parses — the ISOBAR stream
    // payload tends to, so just assert no checksum-mismatch message).
    PrimacyStreamReader reader(mutated, /*verify_checksums=*/false);
    try {
      reader.ReadAllDoubles();
    } catch (const CorruptStreamError& e) {
      EXPECT_EQ(std::string(e.what()).find("checksum"), std::string::npos)
          << e.what();
    }
  }
}

TEST(StreamV3Test, InSituRoundTripAggregatesVerifiedChunks) {
  const auto values = GenerateDatasetByName("obs_temp", 50000);
  InSituOptions options;
  options.primacy.chunk_bytes = 64 * 1024;
  options.shard_elements = 16384;  // 2 chunks per shard, 4 shards
  const InSituResult compressed = InSituCompress(values, options);
  const InSituDecodeResult decoded =
      InSituDecompressWithStats(compressed.shards, options);
  EXPECT_EQ(decoded.values, values);
  EXPECT_EQ(decoded.totals.chunks_verified, decoded.totals.chunks_decoded);
  EXPECT_GT(decoded.totals.chunks_verified, 0u);
}

TEST(StreamV3Test, VerifyStreamReportsHealthWithoutThrowing) {
  const auto values = GenerateDatasetByName("obs_temp", 30000);
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);

  StreamVerifyResult ok = VerifyStream(stream);
  EXPECT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.version, internal::kFormatVersion3);
  EXPECT_TRUE(ok.has_checksums);
  EXPECT_EQ(ok.chunks_checked, (30000u + 8191) / 8192);

  Bytes mutated = stream;
  mutated[stream.size() / 3] ^= 0x02_b;
  const StreamVerifyResult bad = VerifyStream(mutated);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());

  // Garbage input: still no throw.
  const StreamVerifyResult garbage = VerifyStream(BytesFromString("nonsense"));
  EXPECT_FALSE(garbage.ok);

  // v1 (streamed) falls back to a structural decode.
  Bytes collected;
  PrimacyStreamWriter writer(
      [&](ByteSpan data) { AppendBytes(collected, data); }, SmallChunks());
  writer.Append(std::span(values));
  writer.Finish();
  const StreamVerifyResult v1 = VerifyStream(collected);
  EXPECT_TRUE(v1.ok) << v1.error;
  EXPECT_EQ(v1.version, internal::kFormatVersion1);
  EXPECT_FALSE(v1.has_checksums);
  EXPECT_GT(v1.chunks_checked, 0u);
}

}  // namespace
}  // namespace primacy
