// Legacy stream formats: v1/v2 compatibility round-trips, directory layout,
// and corruption detection shared across versions. (v3-specific checksum
// behavior lives in stream_v3_test.cc.)
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <span>

#include "bitstream/byte_io.h"
#include "core/chunk_pipeline.h"
#include "core/primacy_codec.h"
#include "core/stream_format.h"
#include "core/streaming.h"
#include "datasets/datasets.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

PrimacyOptions SmallChunks() {
  PrimacyOptions options;
  options.chunk_bytes = 64 * 1024;
  return options;
}

// Hand-assembles a one-shot v1 stream (header + chunk records + tail, no
// directory), the way a pre-v2 writer laid it out.
Bytes MakeV1Stream(std::span<const double> values,
                   const PrimacyOptions& options) {
  Bytes out;
  internal::WriteStreamHeader(out, options, values.size() * 8,
                              /*stored=*/false, internal::kFormatVersion1);
  const auto solver = internal::ResolveSolver(options.solver);
  ChunkEncoder encoder(options, *solver);
  const ByteSpan body = AsBytes(values);
  const std::size_t chunk_elements = options.chunk_bytes / 8;
  for (std::size_t first = 0; first < values.size();
       first += chunk_elements) {
    const std::size_t count = std::min(chunk_elements, values.size() - first);
    encoder.EncodeChunk(body.subspan(first * 8, count * 8), out);
  }
  PutBlock(out, ByteSpan{});  // empty tail
  return out;
}

// Hand-assembles a one-shot v2 stream (v1 payload + checksum-free directory
// and 12-byte footer), the way a pre-v3 writer laid it out.
Bytes MakeV2Stream(std::span<const double> values,
                   const PrimacyOptions& options) {
  Bytes out;
  internal::WriteStreamHeader(out, options, values.size() * 8,
                              /*stored=*/false, internal::kFormatVersion2);
  const auto solver = internal::ResolveSolver(options.solver);
  ChunkEncoder encoder(options, *solver);
  const ByteSpan body = AsBytes(values);
  const std::size_t chunk_elements = options.chunk_bytes / 8;
  internal::ChunkDirectory directory;
  for (std::size_t first = 0; first < values.size();
       first += chunk_elements) {
    const std::size_t count = std::min(chunk_elements, values.size() - first);
    internal::ChunkDirectoryEntry entry;
    entry.offset = out.size();
    entry.elements = count;
    entry.index_flag = 1;  // kPerChunk: every record carries a full index
    encoder.EncodeChunk(body.subspan(first * 8, count * 8), out);
    directory.chunks.push_back(entry);
  }
  directory.tail_offset = out.size();
  PutBlock(out, ByteSpan{});  // empty tail
  internal::AppendChunkDirectory(out, directory, internal::kFormatVersion2);
  return out;
}

TEST(StreamV2Test, OneShotStreamsAreVersion3WithDirectoryFooter) {
  const auto values = GenerateDatasetByName("obs_temp", 40000);
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  ASSERT_GT(stream.size(), 25u);
  EXPECT_EQ(static_cast<std::uint8_t>(stream[4]), internal::kFormatVersion3);
  // Footer ends with the directory magic "PRD3".
  std::uint32_t magic = 0;
  std::memcpy(&magic, stream.data() + stream.size() - 4, 4);
  EXPECT_EQ(magic, 0x33445250u);
}

TEST(StreamV2Test, V2RoundTripUsesDirectory) {
  const auto values = GenerateDatasetByName("gts_phi_l", 50000);
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  PrimacyDecodeStats stats;
  const auto restored =
      PrimacyDecompressor(SmallChunks()).Decompress(stream, &stats);
  EXPECT_EQ(restored, values);
  EXPECT_TRUE(stats.used_directory);
  // 50000 doubles at 8192 elements per chunk.
  EXPECT_EQ(stats.chunks_decoded, (50000 + 8191) / 8192);
  EXPECT_EQ(stats.output_bytes, values.size() * 8);
}

TEST(StreamV2Test, V1StreamsStillDecode) {
  const auto values = GenerateDatasetByName("obs_temp", 30000);
  const Bytes v1 = MakeV1Stream(values, SmallChunks());
  EXPECT_EQ(static_cast<std::uint8_t>(v1[4]), internal::kFormatVersion1);
  PrimacyDecodeStats stats;
  const auto restored = PrimacyDecompressor().Decompress(v1, &stats);
  EXPECT_EQ(restored, values);
  EXPECT_FALSE(stats.used_directory);
  EXPECT_EQ(stats.chunks_decoded, (30000 + 8191) / 8192);
}

TEST(StreamV2Test, V2StreamsStillDecode) {
  const auto values = GenerateDatasetByName("gts_phi_l", 30000);
  const Bytes v2 = MakeV2Stream(values, SmallChunks());
  EXPECT_EQ(static_cast<std::uint8_t>(v2[4]), internal::kFormatVersion2);
  PrimacyDecodeStats stats;
  const auto restored = PrimacyDecompressor().Decompress(v2, &stats);
  EXPECT_EQ(restored, values);
  EXPECT_TRUE(stats.used_directory);
  EXPECT_EQ(stats.chunks_decoded, (30000 + 8191) / 8192);
  EXPECT_EQ(stats.chunks_verified, 0u) << "v2 carries no checksums";
  // Range reads work off the checksum-free directory too.
  const auto slice = PrimacyDecompressor().DecompressRange(v2, 9000, 100);
  EXPECT_EQ(slice, std::vector<double>(values.begin() + 9000,
                                       values.begin() + 9100));
}

TEST(StreamV2Test, V1V2AndV3PayloadsMatchByteForByte) {
  // v2/v3 = v1 payload + directory: stripping the directory must leave
  // exactly the v1 record bytes (only the version byte differs).
  const auto values = GenerateDatasetByName("num_plasma", 25000);
  const Bytes v1 = MakeV1Stream(values, SmallChunks());
  const Bytes v2 = MakeV2Stream(values, SmallChunks());
  const Bytes v3 = PrimacyCompressor(SmallChunks()).Compress(values);
  ASSERT_GT(v2.size(), v1.size());
  ASSERT_GT(v3.size(), v2.size()) << "v3 adds checksums to the directory";
  EXPECT_TRUE(std::equal(v1.begin() + 5, v1.end(), v2.begin() + 5));
  EXPECT_TRUE(std::equal(v1.begin() + 5, v1.end(), v3.begin() + 5));
}

TEST(StreamV2Test, TruncatedDirectoryThrows) {
  const auto values = GenerateDatasetByName("obs_temp", 20000);
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  const PrimacyDecompressor decompressor;
  for (const std::size_t drop : {std::size_t{1}, std::size_t{4},
                                 std::size_t{12}, std::size_t{20}}) {
    Bytes truncated(stream.begin(),
                    stream.end() - static_cast<std::ptrdiff_t>(drop));
    EXPECT_THROW(decompressor.Decompress(truncated), CorruptStreamError)
        << "dropped " << drop << " bytes";
  }
}

TEST(StreamV2Test, CorruptFooterChunkCountThrows) {
  const auto values = GenerateDatasetByName("obs_temp", 20000);
  Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  // The footer's u32 chunk count sits 8 bytes from the end.
  stream[stream.size() - 8] ^= 0xff_b;
  EXPECT_THROW(PrimacyDecompressor().Decompress(stream), CorruptStreamError);
}

TEST(StreamV2Test, CorruptDirectoryPayloadThrows) {
  const auto values = GenerateDatasetByName("obs_temp", 20000);
  Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  // Locate the directory payload via its footer and zero its leading varint
  // (the chunk count): detected by the v3 directory checksum.
  std::uint32_t payload_bytes = 0;
  std::memcpy(&payload_bytes, stream.data() + stream.size() - 12, 4);
  ASSERT_LT(payload_bytes, stream.size());
  stream[stream.size() - 20 - payload_bytes] = 0_b;
  EXPECT_THROW(PrimacyDecompressor().Decompress(stream), CorruptStreamError);
}

TEST(StreamV2Test, CorruptFooterMagicThrows) {
  const auto values = GenerateDatasetByName("obs_temp", 20000);
  Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  stream[stream.size() - 1] ^= 0x01_b;
  EXPECT_THROW(PrimacyDecompressor().Decompress(stream), CorruptStreamError);
}

TEST(StreamV2Test, StoredFallbackHasNoDirectoryAndStillRangeReads) {
  // Incompressible input triggers the whole-stream stored fallback, which
  // carries no directory (the raw payload is already seekable).
  Rng rng(7);
  std::vector<double> values(4096);
  for (auto& v : values) {
    // Mask to finite positives so equality compares are NaN-free.
    v = std::bit_cast<double>(rng.NextU64() & 0x7fefffffffffffffull);
  }
  PrimacyStats stats;
  const Bytes stream = PrimacyCompressor().Compress(values, &stats);
  ASSERT_EQ(stats.chunks, 0u) << "input unexpectedly compressed";
  PrimacyDecodeStats decode_stats;
  const auto restored = PrimacyDecompressor().Decompress(stream, &decode_stats);
  EXPECT_EQ(restored, values);
  EXPECT_FALSE(decode_stats.used_directory);
  const auto slice =
      PrimacyDecompressor().DecompressRange(stream, 100, 50, &decode_stats);
  EXPECT_EQ(slice, std::vector<double>(values.begin() + 100,
                                       values.begin() + 150));
  EXPECT_EQ(decode_stats.chunks_decoded, 0u);
}

TEST(StreamV2Test, StreamingWriterStaysVersion1) {
  std::vector<double> values = GenerateDatasetByName("obs_temp", 20000);
  Bytes collected;
  PrimacyStreamWriter writer(
      [&](ByteSpan data) { AppendBytes(collected, data); }, SmallChunks());
  writer.Append(std::span(values));
  writer.Finish();
  ASSERT_GT(collected.size(), 5u);
  EXPECT_EQ(static_cast<std::uint8_t>(collected[4]),
            internal::kFormatVersion1);
  PrimacyStreamReader reader(collected);
  EXPECT_EQ(reader.ReadAllDoubles(), values);
}

TEST(StreamV2Test, DirectoryEntriesDescribeEveryChunk) {
  const auto values = GenerateDatasetByName("gts_phi_l", 50000);
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  ByteReader reader(stream);
  const internal::StreamHeader header = internal::ReadStreamHeader(reader);
  ASSERT_EQ(header.version, internal::kFormatVersion3);
  const internal::ChunkDirectory directory =
      internal::ReadChunkDirectory(stream, reader.Offset(), header.version);
  ASSERT_EQ(directory.chunks.size(), (50000u + 8191) / 8192);
  std::uint64_t elements = 0;
  for (const auto& entry : directory.chunks) {
    EXPECT_EQ(entry.index_flag, 1) << "kPerChunk emits a full index per chunk";
    elements += entry.elements;
  }
  EXPECT_EQ(elements, values.size());
  EXPECT_LT(directory.tail_offset, directory.directory_offset);
}

}  // namespace
}  // namespace primacy
