// Random-access range reads over the v2 chunk directory: correctness at
// chunk boundaries, covering-chunk accounting, and index-chain resolution
// under IndexMode::kReuseWhenCorrelated.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "bitstream/byte_io.h"
#include "core/chunk_pipeline.h"
#include "core/primacy_codec.h"
#include "core/stream_format.h"
#include "core/streaming.h"
#include "datasets/datasets.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

constexpr std::size_t kChunkElements = 8192;  // 64 KiB chunks of doubles

PrimacyOptions SmallChunks() {
  PrimacyOptions options;
  options.chunk_bytes = kChunkElements * 8;
  return options;
}

std::vector<double> Slice(const std::vector<double>& values, std::size_t first,
                          std::size_t count) {
  return std::vector<double>(
      values.begin() + static_cast<std::ptrdiff_t>(first),
      values.begin() + static_cast<std::ptrdiff_t>(first + count));
}

class DecompressRangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    values_ = GenerateDatasetByName("obs_temp", 40000);  // 5 chunks
    stream_ = PrimacyCompressor(SmallChunks()).Compress(values_);
  }

  std::vector<double> values_;
  Bytes stream_;
  PrimacyDecompressor decompressor_;
};

TEST_F(DecompressRangeTest, FullRangeMatchesDecompress) {
  PrimacyDecodeStats stats;
  const auto range =
      decompressor_.DecompressRange(stream_, 0, values_.size(), &stats);
  EXPECT_EQ(range, values_);
  EXPECT_EQ(stats.chunks_decoded, 5u);
  EXPECT_TRUE(stats.used_directory);
}

TEST_F(DecompressRangeTest, MidChunkStartTouchesOnlyCoveringChunk) {
  // [10000, 15000) sits strictly inside chunk 1 ([8192, 16384)).
  PrimacyDecodeStats stats;
  const auto range = decompressor_.DecompressRange(stream_, 10000, 5000, &stats);
  EXPECT_EQ(range, Slice(values_, 10000, 5000));
  EXPECT_EQ(stats.chunks_decoded, 1u);
  EXPECT_EQ(stats.index_loads, 0u);  // kPerChunk: no chain to resolve
}

TEST_F(DecompressRangeTest, CrossChunkBoundaryTouchesBothChunks) {
  PrimacyDecodeStats stats;
  const auto range = decompressor_.DecompressRange(
      stream_, kChunkElements - 100, 200, &stats);
  EXPECT_EQ(range, Slice(values_, kChunkElements - 100, 200));
  EXPECT_EQ(stats.chunks_decoded, 2u);
}

TEST_F(DecompressRangeTest, ExactChunkExtent) {
  PrimacyDecodeStats stats;
  const auto range = decompressor_.DecompressRange(
      stream_, kChunkElements, kChunkElements, &stats);
  EXPECT_EQ(range, Slice(values_, kChunkElements, kChunkElements));
  EXPECT_EQ(stats.chunks_decoded, 1u);
}

TEST_F(DecompressRangeTest, TailPartialChunk) {
  // The last chunk holds 40000 - 4 * 8192 = 7232 elements; read its tail.
  PrimacyDecodeStats stats;
  const auto range =
      decompressor_.DecompressRange(stream_, values_.size() - 7, 7, &stats);
  EXPECT_EQ(range, Slice(values_, values_.size() - 7, 7));
  EXPECT_EQ(stats.chunks_decoded, 1u);
}

TEST_F(DecompressRangeTest, SingleElementReads) {
  for (const std::size_t i :
       {std::size_t{0}, kChunkElements - 1, kChunkElements,
        std::size_t{20000}, values_.size() - 1}) {
    PrimacyDecodeStats stats;
    const auto one = decompressor_.DecompressRange(stream_, i, 1, &stats);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], values_[i]) << "element " << i;
    EXPECT_EQ(stats.chunks_decoded, 1u);
  }
}

TEST_F(DecompressRangeTest, EmptyRangeIsValidAnywhere) {
  for (const std::size_t at :
       {std::size_t{0}, std::size_t{12345}, values_.size()}) {
    PrimacyDecodeStats stats;
    EXPECT_TRUE(decompressor_.DecompressRange(stream_, at, 0, &stats).empty());
    EXPECT_EQ(stats.chunks_decoded, 0u);
  }
}

TEST_F(DecompressRangeTest, OutOfBoundsThrows) {
  EXPECT_THROW(decompressor_.DecompressRange(stream_, values_.size() + 1, 0),
               InvalidArgumentError);
  EXPECT_THROW(decompressor_.DecompressRange(stream_, 0, values_.size() + 1),
               InvalidArgumentError);
  EXPECT_THROW(
      decompressor_.DecompressRange(stream_, values_.size() - 1, 2),
      InvalidArgumentError);
}

TEST_F(DecompressRangeTest, WidthMismatchThrows) {
  EXPECT_THROW(decompressor_.DecompressRangeSingle(stream_, 0, 1),
               InvalidArgumentError);
}

TEST_F(DecompressRangeTest, BytesRangeMatchesTypedRange) {
  const Bytes raw = decompressor_.DecompressBytesRange(stream_, 9000, 1000);
  EXPECT_EQ(FromBytes<double>(raw), Slice(values_, 9000, 1000));
}

TEST_F(DecompressRangeTest, ExtremeBoundsDoNotWrap) {
  // first/count near the uint64 edge must fail the bounds check, not wrap
  // into an in-bounds-looking product.
  const std::uint64_t huge = ~std::uint64_t{0};
  EXPECT_THROW(decompressor_.DecompressRange(stream_, huge, 1),
               InvalidArgumentError);
  EXPECT_THROW(decompressor_.DecompressRange(stream_, 1, huge),
               InvalidArgumentError);
  EXPECT_THROW(decompressor_.DecompressRange(stream_, huge, huge),
               InvalidArgumentError);
}

TEST_F(DecompressRangeTest, CorruptedChunkInsideRangeThrows) {
  // Damage chunk 2's record. Ranges confined to other chunks still decode;
  // any range whose covering set includes chunk 2 throws CorruptStreamError.
  ByteReader reader(stream_);
  const internal::StreamHeader header = internal::ReadStreamHeader(reader);
  const internal::ChunkDirectory directory =
      internal::ReadChunkDirectory(stream_, reader.Offset(), header.version);
  Bytes mutated = stream_;
  mutated[static_cast<std::size_t>(directory.chunks[2].offset) + 11] ^= 0x01_b;

  EXPECT_EQ(decompressor_.DecompressRange(mutated, 0, 100),
            Slice(values_, 0, 100));
  EXPECT_THROW(
      decompressor_.DecompressRange(mutated, 2 * kChunkElements + 5, 10),
      CorruptStreamError);
  // A range straddling chunks 1-2 dies on the corrupt member too.
  EXPECT_THROW(
      decompressor_.DecompressRange(mutated, 2 * kChunkElements - 5, 10),
      CorruptStreamError);
}

TEST(DecompressRangeV1Test, OneShotV1WithoutDirectoryRejected) {
  // A one-shot v1 stream parses fine but has no directory to seek with: the
  // contract is a typed InvalidArgumentError, not a parse failure.
  const auto values = GenerateDatasetByName("obs_temp", 10000);
  Bytes v1;
  internal::WriteStreamHeader(v1, SmallChunks(), values.size() * 8,
                              /*stored=*/false, internal::kFormatVersion1);
  const auto solver = internal::ResolveSolver(SmallChunks().solver);
  ChunkEncoder encoder(SmallChunks(), *solver);
  const ByteSpan body = AsBytes(std::span(values));
  for (std::size_t first = 0; first < values.size();
       first += kChunkElements) {
    const std::size_t count =
        std::min(kChunkElements, values.size() - first);
    encoder.EncodeChunk(body.subspan(first * 8, count * 8), v1);
  }
  PutBlock(v1, ByteSpan{});
  EXPECT_THROW(PrimacyDecompressor().DecompressRange(v1, 0, 1),
               InvalidArgumentError);
  // Sanity: the same stream decodes sequentially.
  EXPECT_EQ(PrimacyDecompressor().Decompress(v1), values);
}

TEST(DecompressRangeV1Test, V1StreamRejected) {
  // Streamed output is v1 by construction; finish it and retarget the
  // one-shot reader at an equivalent v1 buffer via the streaming round trip.
  const auto values = GenerateDatasetByName("obs_temp", 10000);
  Bytes collected;
  PrimacyStreamWriter writer(
      [&](ByteSpan data) { AppendBytes(collected, data); }, SmallChunks());
  writer.Append(std::span(values));
  writer.Finish();
  // Streamed streams are rejected for range reads (no directory, and no
  // total up front) — as CorruptStreamError from the sentinel total.
  EXPECT_THROW(PrimacyDecompressor().DecompressRange(collected, 0, 1),
               CorruptStreamError);
}

TEST(DecompressRangeChainTest, ReuseWhenCorrelatedResolvesIndexChain) {
  PrimacyOptions options = SmallChunks();
  options.index_mode = IndexMode::kReuseWhenCorrelated;
  // A smooth dataset keeps chunk frequency vectors correlated, so most
  // chunks reuse (flag 0) or delta-extend (flag 2) the first full index.
  const auto values = GenerateDatasetByName("gts_phi_l", 65536);  // 8 chunks
  const Bytes stream = PrimacyCompressor(options).Compress(values);

  ByteReader reader(stream);
  const internal::StreamHeader header = internal::ReadStreamHeader(reader);
  const internal::ChunkDirectory directory =
      internal::ReadChunkDirectory(stream, reader.Offset(), header.version);
  ASSERT_EQ(directory.chunks.size(), 8u);
  bool any_reused = false;
  for (const auto& entry : directory.chunks) {
    any_reused = any_reused || entry.index_flag != 1;
  }
  ASSERT_TRUE(any_reused) << "dataset unexpectedly produced per-chunk indexes";

  const PrimacyDecompressor decompressor(options);
  // Read from the last chunk only: the decoder must replay the index chain
  // (index blocks only) without decoding the earlier chunks.
  const std::size_t last = directory.chunks.size() - 1;
  std::size_t base = last;
  while (directory.chunks[base].index_flag != 1) --base;
  std::size_t expected_loads = directory.chunks[last].index_flag == 1 ? 0 : 1;
  for (std::size_t c = base + 1; c < last; ++c) {
    expected_loads += directory.chunks[c].index_flag == 2;
  }

  PrimacyDecodeStats stats;
  const auto range = decompressor.DecompressRange(
      stream, last * kChunkElements, 100, &stats);
  EXPECT_EQ(range, Slice(values, last * kChunkElements, 100));
  EXPECT_EQ(stats.chunks_decoded, 1u);
  EXPECT_EQ(stats.index_loads, expected_loads);

  // Every start offset must round-trip, whatever its chain shape.
  for (std::size_t c = 0; c < directory.chunks.size(); ++c) {
    const std::size_t first = c * kChunkElements + 17;
    const auto slice = decompressor.DecompressRange(stream, first, 64);
    EXPECT_EQ(slice, Slice(values, first, 64)) << "chunk " << c;
  }
}

TEST(DecompressRangeFloatTest, SinglePrecisionRangeRoundTrips) {
  PrimacyOptions options;
  options.precision = Precision::kSingle;
  options.chunk_bytes = 16 * 1024;  // 4096 floats per chunk
  const auto doubles = GenerateDatasetByName("num_plasma", 20000);
  std::vector<float> values(doubles.size());
  for (std::size_t i = 0; i < doubles.size(); ++i) {
    values[i] = static_cast<float>(doubles[i]);
  }
  const Bytes stream = PrimacyCompressor(options).Compress(values);
  PrimacyDecodeStats stats;
  const auto range =
      PrimacyDecompressor(options).DecompressRangeSingle(stream, 5000, 3000,
                                                         &stats);
  EXPECT_EQ(range, std::vector<float>(values.begin() + 5000,
                                      values.begin() + 8000));
  EXPECT_EQ(stats.chunks_decoded, 1u);  // [5000, 8000) sits in chunk 1
  EXPECT_THROW(PrimacyDecompressor(options).DecompressRange(stream, 0, 1),
               InvalidArgumentError);
}

}  // namespace
}  // namespace primacy
