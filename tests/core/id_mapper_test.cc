#include "core/id_mapper.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace primacy {
namespace {

Bytes HighBytes(std::span<const std::uint16_t> sequences) {
  Bytes out(sequences.size() * 2);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    out[i * 2] = static_cast<std::byte>(sequences[i] >> 8);
    out[i * 2 + 1] = static_cast<std::byte>(sequences[i] & 0xff);
  }
  return out;
}

IdIndex IndexOf(std::span<const std::uint16_t> sequences) {
  return IdIndex::FromFrequency(AnalyzePairFrequency(HighBytes(sequences)));
}

TEST(IdMapperTest, MostFrequentPairBecomesZeroBytes) {
  const std::vector<std::uint16_t> sequences{0x4142, 0x4142, 0x4142, 0x5152};
  const IdIndex index = IndexOf(sequences);
  const Bytes ids =
      MapToIds(HighBytes(sequences), index, Linearization::kRow);
  // ID 0 -> bytes 00 00, ID 1 -> 00 01.
  const Bytes expected{0_b, 0_b, 0_b, 0_b, 0_b, 0_b, 0_b, 1_b};
  EXPECT_EQ(ids, expected);
}

TEST(IdMapperTest, ColumnLinearizationTransposes) {
  const std::vector<std::uint16_t> sequences{0x4142, 0x4142, 0x5152};
  const IdIndex index = IndexOf(sequences);
  const Bytes ids =
      MapToIds(HighBytes(sequences), index, Linearization::kColumn);
  // Row form: 00 00 / 00 00 / 00 01; transposed: 00 00 00 | 00 00 01.
  const Bytes expected{0_b, 0_b, 0_b, 0_b, 0_b, 1_b};
  EXPECT_EQ(ids, expected);
}

class IdMapperRoundTrip : public ::testing::TestWithParam<Linearization> {};

TEST_P(IdMapperRoundTrip, MapFromIdsInverts) {
  Rng rng(3);
  std::vector<std::uint16_t> sequences(40000);
  for (auto& s : sequences) {
    s = static_cast<std::uint16_t>(16000 + rng.NextSkewed(2000, 0.995));
  }
  const IdIndex index = IndexOf(sequences);
  const Bytes high = HighBytes(sequences);
  const Bytes ids = MapToIds(high, index, GetParam());
  EXPECT_EQ(MapFromIds(ids, index, GetParam()), high);
}

INSTANTIATE_TEST_SUITE_P(BothLinearizations, IdMapperRoundTrip,
                         ::testing::Values(Linearization::kRow,
                                           Linearization::kColumn),
                         [](const ::testing::TestParamInfo<Linearization>& i) {
                           return i.param == Linearization::kRow ? "row"
                                                                 : "column";
                         });

TEST(IdMapperTest, MappingRaisesTopByteFrequency) {
  // The paper's Section II-C claim: frequency-ranked IDs concentrate mass on
  // the zero byte, raising byte-level repeatability.
  Rng rng(4);
  std::vector<std::uint16_t> sequences(100000);
  for (auto& s : sequences) {
    // Spread sequences over scattered byte values so the raw top-byte
    // frequency is low.
    s = static_cast<std::uint16_t>(rng.NextSkewed(1200, 0.995) * 53 + 1000);
  }
  const IdIndex index = IndexOf(sequences);
  const Bytes high = HighBytes(sequences);
  const Bytes ids = MapToIds(high, index, Linearization::kColumn);
  EXPECT_GT(TopByteFrequency(ids), TopByteFrequency(high) + 0.10);
}

TEST(IdMapperTest, UnmappedSequenceThrows) {
  const std::vector<std::uint16_t> sequences{0x0001};
  const IdIndex index = IndexOf(sequences);
  const std::vector<std::uint16_t> other{0x0002};
  EXPECT_THROW(MapToIds(HighBytes(other), index, Linearization::kRow),
               InvalidArgumentError);
}

TEST(IdMapperTest, IdBeyondIndexRejectedOnDecode) {
  const std::vector<std::uint16_t> sequences{0x0a0b};
  const IdIndex index = IndexOf(sequences);
  const Bytes bogus{0_b, 5_b};  // ID 5, index only has ID 0
  EXPECT_THROW(MapFromIds(bogus, index, Linearization::kRow),
               CorruptStreamError);
}

TEST(IdMapperTest, OddSizeRejected) {
  const std::vector<std::uint16_t> sequences{0x0a0b};
  const IdIndex index = IndexOf(sequences);
  EXPECT_THROW(MapToIds(Bytes(3), index, Linearization::kRow),
               InvalidArgumentError);
  EXPECT_THROW(MapFromIds(Bytes(3), index, Linearization::kRow),
               CorruptStreamError);
}

TEST(IdMapperTest, EmptyInputAllowed) {
  const std::vector<std::uint16_t> sequences{0x0a0b};
  const IdIndex index = IndexOf(sequences);
  EXPECT_TRUE(MapToIds({}, index, Linearization::kColumn).empty());
  EXPECT_TRUE(MapFromIds({}, index, Linearization::kColumn).empty());
}

}  // namespace
}  // namespace primacy
