#include "core/in_situ.h"

#include <gtest/gtest.h>

#include "datasets/datasets.h"
#include "util/error.h"

namespace primacy {
namespace {

TEST(InSituTest, ShardedRoundTripMatchesInput) {
  const auto values = GenerateDatasetByName("num_comet", 150000);
  InSituOptions options;
  options.shard_elements = 20000;
  options.threads = 4;
  options.primacy.chunk_bytes = 64 * 1024;
  const InSituResult result = InSituCompress(values, options);
  EXPECT_EQ(result.shards.size(), 8u);  // ceil(150000 / 20000)
  EXPECT_EQ(InSituDecompress(result.shards, options), values);
}

TEST(InSituTest, TotalsAggregateAcrossShards) {
  const auto values = GenerateDatasetByName("obs_error", 100000);
  InSituOptions options;
  options.shard_elements = 25000;
  options.threads = 2;
  const InSituResult result = InSituCompress(values, options);
  EXPECT_EQ(result.totals.input_bytes, values.size() * 8);
  EXPECT_EQ(result.totals.output_bytes, result.TotalCompressedBytes());
  EXPECT_GT(result.totals.chunks, 0u);
}

TEST(InSituTest, ShardOutputIndependentOfThreadCount) {
  const auto values = GenerateDatasetByName("obs_spitzer", 80000);
  InSituOptions one;
  one.shard_elements = 10000;
  one.threads = 1;
  InSituOptions many = one;
  many.threads = 8;
  const InSituResult a = InSituCompress(values, one);
  const InSituResult b = InSituCompress(values, many);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i], b.shards[i]) << "shard " << i;
  }
}

TEST(InSituTest, EmptyInputYieldsNoShards) {
  const InSituResult result = InSituCompress(std::span<const double>{});
  EXPECT_TRUE(result.shards.empty());
  EXPECT_TRUE(InSituDecompress(result.shards).empty());
}

TEST(InSituTest, ZeroShardElementsRejected) {
  InSituOptions options;
  options.shard_elements = 0;
  const std::vector<double> values(10, 1.0);
  EXPECT_THROW(InSituCompress(values, options), InvalidArgumentError);
}

TEST(InSituTest, CompressionActuallyReduces) {
  const auto values = GenerateDatasetByName("num_plasma", 200000);
  const InSituResult result = InSituCompress(values);
  EXPECT_LT(result.TotalCompressedBytes(), values.size() * 8);
  EXPECT_GT(result.totals.CompressionRatio(), 1.0);
}

}  // namespace
}  // namespace primacy
