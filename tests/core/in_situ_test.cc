#include "core/in_situ.h"

#include <gtest/gtest.h>

#include "datasets/datasets.h"
#include "util/error.h"

namespace primacy {
namespace {

TEST(InSituTest, ShardedRoundTripMatchesInput) {
  const auto values = GenerateDatasetByName("num_comet", 150000);
  InSituOptions options;
  options.shard_elements = 20000;
  options.threads = 4;
  options.primacy.chunk_bytes = 64 * 1024;
  const InSituResult result = InSituCompress(values, options);
  EXPECT_EQ(result.shards.size(), 8u);  // ceil(150000 / 20000)
  EXPECT_EQ(InSituDecompress(result.shards, options), values);
}

TEST(InSituTest, TotalsAggregateAcrossShards) {
  const auto values = GenerateDatasetByName("obs_error", 100000);
  InSituOptions options;
  options.shard_elements = 25000;
  options.threads = 2;
  const InSituResult result = InSituCompress(values, options);
  EXPECT_EQ(result.totals.input_bytes, values.size() * 8);
  EXPECT_EQ(result.totals.output_bytes, result.TotalCompressedBytes());
  EXPECT_GT(result.totals.chunks, 0u);
}

TEST(InSituTest, ShardOutputIndependentOfThreadCount) {
  const auto values = GenerateDatasetByName("obs_spitzer", 80000);
  InSituOptions one;
  one.shard_elements = 10000;
  one.threads = 1;
  InSituOptions many = one;
  many.threads = 8;
  const InSituResult a = InSituCompress(values, one);
  const InSituResult b = InSituCompress(values, many);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i], b.shards[i]) << "shard " << i;
  }
}

TEST(InSituTest, EmptyInputYieldsNoShards) {
  const InSituResult result = InSituCompress(std::span<const double>{});
  EXPECT_TRUE(result.shards.empty());
  EXPECT_TRUE(InSituDecompress(result.shards).empty());
}

TEST(InSituTest, ZeroShardElementsRejected) {
  InSituOptions options;
  options.shard_elements = 0;
  const std::vector<double> values(10, 1.0);
  EXPECT_THROW(InSituCompress(values, options), InvalidArgumentError);
}

TEST(InSituTest, DecompressWithStatsAggregatesAcrossShards) {
  const auto values = GenerateDatasetByName("obs_error", 100000);
  InSituOptions options;
  options.shard_elements = 25000;
  options.threads = 4;
  options.primacy.chunk_bytes = 64 * 1024;
  const InSituResult result = InSituCompress(values, options);
  const InSituDecodeResult decoded =
      InSituDecompressWithStats(result.shards, options);
  EXPECT_EQ(decoded.values, values);
  EXPECT_EQ(decoded.totals.chunks_decoded, result.totals.chunks);
  EXPECT_EQ(decoded.totals.output_bytes, values.size() * 8);
  EXPECT_TRUE(decoded.totals.used_directory);
}

TEST(InSituTest, RangeRestoreTouchesOnlyCoveringShards) {
  const auto values = GenerateDatasetByName("num_comet", 150000);
  InSituOptions options;
  options.shard_elements = 20000;
  options.threads = 4;
  options.primacy.chunk_bytes = 64 * 1024;  // 8192 elements per chunk
  const InSituResult result = InSituCompress(values, options);

  // [30000, 45000) overlaps shards 1 and 2 only; within them, only the
  // covering chunks decode.
  const InSituDecodeResult partial =
      InSituDecompressRange(result.shards, 30000, 15000, options);
  EXPECT_EQ(partial.values,
            std::vector<double>(values.begin() + 30000,
                                values.begin() + 45000));
  // Shard 1 local [10000, 20000) -> chunks 1..2 of 8192 elements; shard 2
  // local [0, 5000) -> chunk 0. Three covering chunks in total.
  EXPECT_EQ(partial.totals.chunks_decoded, 3u);

  // Whole-array range restore matches the full restore.
  const InSituDecodeResult all =
      InSituDecompressRange(result.shards, 0, values.size(), options);
  EXPECT_EQ(all.values, values);

  // Empty range, boundary positions, bounds checks.
  EXPECT_TRUE(
      InSituDecompressRange(result.shards, values.size(), 0, options)
          .values.empty());
  EXPECT_THROW(
      InSituDecompressRange(result.shards, values.size(), 1, options),
      InvalidArgumentError);
}

TEST(InSituTest, CompressionActuallyReduces) {
  const auto values = GenerateDatasetByName("num_plasma", 200000);
  const InSituResult result = InSituCompress(values);
  EXPECT_LT(result.TotalCompressedBytes(), values.size() * 8);
  EXPECT_GT(result.totals.CompressionRatio(), 1.0);
}

}  // namespace
}  // namespace primacy
