#include "core/streaming.h"

#include <gtest/gtest.h>

#include "datasets/datasets.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

/// Collects sink output into one buffer.
struct Collector {
  Bytes stream;
  PrimacyStreamWriter::Sink AsSink() {
    return [this](ByteSpan data) { AppendBytes(stream, data); };
  }
};

PrimacyOptions SmallChunks() {
  PrimacyOptions options;
  options.chunk_bytes = 64 * 1024;
  return options;
}

TEST(StreamingTest, BatchedAppendsRoundTrip) {
  const auto values = GenerateDatasetByName("obs_info", 100000);
  Collector collector;
  PrimacyStreamWriter writer(collector.AsSink(), SmallChunks());
  // Feed in uneven batches.
  std::size_t offset = 0;
  Rng rng(1);
  while (offset < values.size()) {
    const std::size_t batch =
        std::min<std::size_t>(1 + rng.NextBelow(20000), values.size() - offset);
    writer.Append(std::span(values).subspan(offset, batch));
    offset += batch;
  }
  writer.Finish();

  PrimacyStreamReader reader(collector.stream);
  EXPECT_EQ(reader.ReadAllDoubles(), values);
}

TEST(StreamingTest, StatsMatchOneShotCompressor) {
  const auto values = GenerateDatasetByName("num_plasma", 80000);
  Collector collector;
  PrimacyStreamWriter writer(collector.AsSink(), SmallChunks());
  writer.Append(std::span(values));
  const PrimacyStats streaming_stats = writer.Finish();

  PrimacyStats oneshot_stats;
  PrimacyCompressor(SmallChunks()).Compress(values, &oneshot_stats);
  EXPECT_EQ(streaming_stats.chunks, oneshot_stats.chunks);
  EXPECT_EQ(streaming_stats.id_compressed_bytes,
            oneshot_stats.id_compressed_bytes);
  EXPECT_EQ(streaming_stats.input_bytes, oneshot_stats.input_bytes);
  // Stream sizes differ only by the trailer/header shape plus the one-shot
  // v2 chunk directory (~a dozen bytes per chunk + a 12-byte footer), which
  // the v1 streamed format does not carry.
  EXPECT_NEAR(static_cast<double>(streaming_stats.output_bytes),
              static_cast<double>(oneshot_stats.output_bytes),
              32.0 + 16.0 * static_cast<double>(oneshot_stats.chunks) + 12.0);
}

TEST(StreamingTest, ChunksEmittedIncrementally) {
  const auto values = GenerateDatasetByName("obs_temp", 64 * 1024);
  std::size_t sink_calls = 0;
  std::size_t bytes_before_finish = 0;
  PrimacyStreamWriter writer(
      [&](ByteSpan data) {
        ++sink_calls;
        bytes_before_finish += data.size();
      },
      SmallChunks());
  // 8192 elements per 64 KiB chunk: each append of 16384 yields records.
  for (std::size_t offset = 0; offset < values.size(); offset += 16384) {
    writer.Append(std::span(values).subspan(offset, 16384));
  }
  const std::size_t calls_before_finish = sink_calls;
  writer.Finish();
  EXPECT_GE(calls_before_finish, 4u);  // header + several record batches
}

TEST(StreamingTest, ReaderBoundsMemoryByChunk) {
  const auto values = GenerateDatasetByName("flash_velx", 100000);
  Collector collector;
  PrimacyStreamWriter writer(collector.AsSink(), SmallChunks());
  writer.Append(std::span(values));
  writer.Finish();

  PrimacyStreamReader reader(collector.stream);
  EXPECT_EQ(reader.element_width(), 8u);
  Bytes restored;
  std::size_t chunks = 0;
  Bytes chunk;
  while (reader.NextChunk(chunk)) {
    ++chunks;
    // Each NextChunk call appends at most one chunk's worth of bytes.
    EXPECT_LE(chunk.size(), 64u * 1024u);
    AppendBytes(restored, chunk);
    chunk.clear();
  }
  AppendBytes(restored, chunk);  // tail from the final call
  EXPECT_GT(chunks, 10u);
  EXPECT_EQ(FromBytes<double>(restored), values);
}

TEST(StreamingTest, ReaderAlsoReadsOneShotStreams) {
  const auto values = GenerateDatasetByName("gts_phi_l", 50000);
  const Bytes stream = PrimacyCompressor(SmallChunks()).Compress(values);
  PrimacyStreamReader reader(stream);
  EXPECT_EQ(reader.ReadAllDoubles(), values);
}

TEST(StreamingTest, OneShotDecompressorRejectsStreamedStream) {
  Collector collector;
  PrimacyStreamWriter writer(collector.AsSink(), SmallChunks());
  const std::vector<double> hundred(100, 1.0);
  writer.Append(std::span(hundred));
  writer.Finish();
  const PrimacyDecompressor decompressor;
  EXPECT_THROW(decompressor.DecompressBytes(collector.stream),
               CorruptStreamError);
}

TEST(StreamingTest, TailBytesSurviveStreaming) {
  Collector collector;
  PrimacyStreamWriter writer(collector.AsSink(), SmallChunks());
  Bytes raw(8 * 5000 + 3);
  Rng rng(2);
  for (auto& b : raw) b = static_cast<std::byte>(rng.NextBelow(256));
  writer.AppendBytes(raw);
  writer.Finish();

  PrimacyStreamReader reader(collector.stream);
  Bytes restored;
  while (reader.NextChunk(restored)) {
  }
  EXPECT_EQ(restored, raw);
}

TEST(StreamingTest, EmptyStreamRoundTrips) {
  Collector collector;
  PrimacyStreamWriter writer(collector.AsSink(), SmallChunks());
  writer.Finish();
  PrimacyStreamReader reader(collector.stream);
  Bytes restored;
  EXPECT_FALSE(reader.NextChunk(restored));
  EXPECT_TRUE(restored.empty());
}

TEST(StreamingTest, AppendAfterFinishRejected) {
  Collector collector;
  PrimacyStreamWriter writer(collector.AsSink(), SmallChunks());
  writer.Finish();
  const std::vector<double> one(1, 1.0);
  EXPECT_THROW(writer.Append(std::span(one)), InvalidArgumentError);
  EXPECT_THROW(writer.Finish(), InvalidArgumentError);
}

TEST(StreamingTest, NullSinkRejected) {
  EXPECT_THROW(PrimacyStreamWriter writer({}, SmallChunks()),
               InvalidArgumentError);
}

TEST(StreamingTest, IndexReuseWorksAcrossStreamedChunks) {
  PrimacyOptions options = SmallChunks();
  options.index_mode = IndexMode::kReuseWhenCorrelated;
  const auto values = GenerateDatasetByName("obs_temp", 200000);
  Collector collector;
  PrimacyStreamWriter writer(collector.AsSink(), options);
  for (std::size_t offset = 0; offset < values.size(); offset += 30000) {
    const std::size_t batch = std::min<std::size_t>(30000, values.size() - offset);
    writer.Append(std::span(values).subspan(offset, batch));
  }
  const PrimacyStats stats = writer.Finish();
  EXPECT_GT(stats.delta_indexes + (stats.chunks - stats.indexes_emitted -
                                   stats.delta_indexes),
            0u);
  PrimacyStreamReader reader(collector.stream);
  EXPECT_EQ(reader.ReadAllDoubles(), values);
}

TEST(StreamingTest, SinglePrecisionStreamsRoundTrip) {
  PrimacyOptions options = SmallChunks();
  options.precision = Precision::kSingle;
  std::vector<float> values(60000);
  Rng rng(3);
  for (auto& v : values) {
    v = static_cast<float>(1.0 + rng.NextGaussian() * 0.1);
  }
  Collector collector;
  PrimacyStreamWriter writer(collector.AsSink(), options);
  writer.Append(std::span(values));
  writer.Finish();

  PrimacyStreamReader reader(collector.stream);
  EXPECT_EQ(reader.element_width(), 4u);
  Bytes restored;
  while (reader.NextChunk(restored)) {
  }
  EXPECT_EQ(FromBytes<float>(restored), values);
}

TEST(StreamingTest, TruncatedStreamedStreamDetected) {
  Collector collector;
  PrimacyStreamWriter writer(collector.AsSink(), SmallChunks());
  const auto values = GenerateDatasetByName("obs_info", 50000);
  writer.Append(std::span(values));
  writer.Finish();
  Bytes truncated = collector.stream;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(
      {
        PrimacyStreamReader reader(truncated);
        Bytes out;
        while (reader.NextChunk(out)) {
        }
      },
      CorruptStreamError);
}

}  // namespace
}  // namespace primacy
