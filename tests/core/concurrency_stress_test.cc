// TSan-targeted stress over the decode paths that share state across
// threads. A PrimacyDecompressor is const and stateless between calls, so
// many caller threads may issue DecompressRange against one decompressor and
// one stream concurrently — each call planning chunk groups from the shared
// directory and fanning decode work onto the process-wide SharedThreadPool.
// Run under PRIMACY_SANITIZE=thread these tests catch races in the range
// planner, the pool's queue, and the per-pool telemetry counters that the
// functional range/parallel-decode tests (single caller thread) cannot.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "core/primacy_codec.h"
#include "datasets/datasets.h"
#include "util/rng.h"

namespace primacy {
namespace {

constexpr std::size_t kChunkElements = 8192;  // 64 KiB chunks of doubles
constexpr std::size_t kElements = 5 * kChunkElements;
constexpr std::size_t kCallerThreads = 8;
constexpr std::size_t kRangesPerThread = 12;

PrimacyOptions SmallChunks(std::size_t threads) {
  PrimacyOptions options;
  options.chunk_bytes = kChunkElements * 8;
  options.threads = threads;
  return options;
}

std::vector<double> Slice(const std::vector<double>& values, std::size_t first,
                          std::size_t count) {
  return std::vector<double>(
      values.begin() + static_cast<std::ptrdiff_t>(first),
      values.begin() + static_cast<std::ptrdiff_t>(first + count));
}

class DecodeConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    values_ = GenerateDatasetByName("obs_temp", kElements);
    stream_ = PrimacyCompressor(SmallChunks(1)).Compress(values_);
  }

  std::vector<double> values_;
  Bytes stream_;
};

TEST_F(DecodeConcurrencyStressTest,
       DecompressRangeStressSharedReaderConcurrentCallers) {
  // threads = 2 so ranges spanning several chunks also fan decode work onto
  // the shared pool from inside each caller thread (nested parallelism).
  const PrimacyDecompressor decompressor(SmallChunks(2));
  std::vector<std::thread> callers;
  std::vector<std::string> failures(kCallerThreads);
  callers.reserve(kCallerThreads);
  for (std::size_t t = 0; t < kCallerThreads; ++t) {
    callers.emplace_back([this, &decompressor, &failures, t] {
      Rng rng(100 + t);
      for (std::size_t i = 0; i < kRangesPerThread; ++i) {
        const std::size_t first = rng.NextBelow(kElements);
        const std::size_t count = rng.NextBelow(kElements - first + 1);
        PrimacyDecodeStats stats;
        const auto range =
            decompressor.DecompressRange(stream_, first, count, &stats);
        if (range != Slice(values_, first, count)) {
          failures[t] = "range mismatch at first=" + std::to_string(first) +
                        " count=" + std::to_string(count);
          return;
        }
        if (stats.output_bytes != count * sizeof(double)) {
          failures[t] = "stats mismatch at first=" + std::to_string(first);
          return;
        }
      }
    });
  }
  for (auto& caller : callers) caller.join();
  for (std::size_t t = 0; t < kCallerThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "caller thread " << t;
  }
}

TEST_F(DecodeConcurrencyStressTest,
       ParallelDecodeStressConcurrentFullDecodes) {
  // Several caller threads each run a chunk-parallel full decode (and one a
  // checksum-only verify), all multiplexed onto the one SharedThreadPool.
  const PrimacyDecompressor decompressor(SmallChunks(4));
  constexpr std::size_t kDecoders = 4;
  std::vector<std::thread> callers;
  // int, not bool: vector<bool> packs bits, so writes to distinct elements
  // from different threads would themselves race.
  std::vector<int> ok(kDecoders + 1, 0);
  callers.reserve(kDecoders + 1);
  for (std::size_t t = 0; t < kDecoders; ++t) {
    callers.emplace_back([this, &decompressor, &ok, t] {
      PrimacyDecodeStats stats;
      const auto decoded = decompressor.Decompress(stream_, &stats);
      ok[t] = decoded == values_ && stats.chunks_decoded == 5 &&
              stats.used_directory;
    });
  }
  callers.emplace_back([this, &ok] {
    for (int i = 0; i < 3; ++i) {
      const StreamVerifyResult result = VerifyStream(stream_);
      if (!result.ok) return;
    }
    ok[kDecoders] = true;
  });
  for (auto& caller : callers) caller.join();
  for (std::size_t t = 0; t < ok.size(); ++t) {
    EXPECT_TRUE(ok[t]) << "caller thread " << t;
  }
}

}  // namespace
}  // namespace primacy
