// Direct tests of the shared chunk pipeline plus the chunk-parallel
// compression path built on it.
#include "core/chunk_pipeline.h"

#include <gtest/gtest.h>

#include "datasets/datasets.h"
#include "deflate/deflate.h"
#include "util/error.h"

namespace primacy {
namespace {

Bytes NativeBytes(const std::vector<double>& values) {
  return ToBytes(AsBytes(values));
}

TEST(ChunkPipelineTest, SingleChunkRoundTrip) {
  const auto values = GenerateDatasetByName("obs_info", 10000);
  const PrimacyOptions options;
  const DeflateCodec solver;
  ChunkEncoder encoder(options, solver);
  Bytes record;
  const ChunkRecordStats stats =
      encoder.EncodeChunk(NativeBytes(values), record);
  EXPECT_EQ(stats.elements, values.size());
  EXPECT_EQ(stats.record_bytes, record.size());
  EXPECT_TRUE(stats.emitted_full_index);

  ChunkDecoder decoder(solver, options.linearization, 8);
  ByteReader reader(record);
  const std::uint64_t count = reader.GetVarint();
  Bytes restored;
  decoder.DecodeChunk(reader, count, restored);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored, NativeBytes(values));
}

TEST(ChunkPipelineTest, EmptyChunkRejected) {
  const PrimacyOptions options;
  const DeflateCodec solver;
  ChunkEncoder encoder(options, solver);
  Bytes record;
  EXPECT_THROW(encoder.EncodeChunk({}, record), InvalidArgumentError);
  EXPECT_THROW(encoder.EncodeChunk(Bytes(12), record), InvalidArgumentError);
}

TEST(ChunkPipelineTest, ResetDropsIndexState) {
  PrimacyOptions options;
  options.index_mode = IndexMode::kReuseWhenCorrelated;
  const DeflateCodec solver;
  ChunkEncoder encoder(options, solver);
  const auto values = GenerateDatasetByName("obs_temp", 20000);
  const Bytes chunk = NativeBytes(values);
  Bytes first_record, second_record, third_record;
  const auto first = encoder.EncodeChunk(chunk, first_record);
  const auto second = encoder.EncodeChunk(chunk, second_record);
  EXPECT_TRUE(first.emitted_full_index);
  EXPECT_FALSE(second.emitted_full_index);  // identical chunk: pure reuse
  encoder.Reset();
  const auto third = encoder.EncodeChunk(chunk, third_record);
  EXPECT_TRUE(third.emitted_full_index);
}

TEST(ChunkPipelineTest, DecoderRejectsZeroCount) {
  const DeflateCodec solver;
  ChunkDecoder decoder(solver, Linearization::kColumn, 8);
  Bytes out;
  ByteReader reader(Bytes(4));
  EXPECT_THROW(decoder.DecodeChunk(reader, 0, out), CorruptStreamError);
}

TEST(ChunkPipelineTest, DecoderRejectsBadWidth) {
  const DeflateCodec solver;
  EXPECT_THROW(ChunkDecoder(solver, Linearization::kColumn, 5),
               InvalidArgumentError);
}

TEST(ParallelCompressionTest, OutputIdenticalToSerial) {
  const auto values = GenerateDatasetByName("flash_velx", 200000);
  PrimacyOptions serial;
  serial.chunk_bytes = 64 * 1024;
  serial.threads = 1;
  PrimacyOptions parallel = serial;
  parallel.threads = 4;
  PrimacyStats serial_stats, parallel_stats;
  const Bytes a = PrimacyCompressor(serial).Compress(values, &serial_stats);
  const Bytes b =
      PrimacyCompressor(parallel).Compress(values, &parallel_stats);
  EXPECT_EQ(a, b);
  EXPECT_EQ(serial_stats.chunks, parallel_stats.chunks);
  EXPECT_EQ(serial_stats.id_compressed_bytes,
            parallel_stats.id_compressed_bytes);
}

TEST(ParallelCompressionTest, ParallelStreamDecodes) {
  const auto values = GenerateDatasetByName("num_plasma", 150000);
  PrimacyOptions options;
  options.chunk_bytes = 32 * 1024;
  options.threads = 0;  // hardware concurrency
  const Bytes stream = PrimacyCompressor(options).Compress(values);
  EXPECT_EQ(PrimacyDecompressor().Decompress(stream), values);
}

TEST(ParallelCompressionTest, ReuseModeStaysSerialButCorrect) {
  // threads is ignored under kReuseWhenCorrelated (serial dependency);
  // the result must still decode and reuse indexes.
  PrimacyOptions options;
  options.chunk_bytes = 64 * 1024;
  options.threads = 8;
  options.index_mode = IndexMode::kReuseWhenCorrelated;
  const auto values = GenerateDatasetByName("obs_temp", 150000);
  PrimacyStats stats;
  const Bytes stream = PrimacyCompressor(options).Compress(values, &stats);
  EXPECT_LT(stats.indexes_emitted, stats.chunks);
  EXPECT_EQ(PrimacyDecompressor().Decompress(stream), values);
}

}  // namespace
}  // namespace primacy
