// In-situ driver edge cases not covered by in_situ_test.cc: interaction with
// options (solver, precision restrictions), shard boundaries, and stats
// aggregation invariants.
#include "core/in_situ.h"

#include <gtest/gtest.h>

#include "datasets/datasets.h"
#include "util/error.h"

namespace primacy {
namespace {

TEST(InSituEdgeTest, ShardSizeLargerThanInputGivesSingleShard) {
  const auto values = GenerateDatasetByName("obs_info", 5000);
  InSituOptions options;
  options.shard_elements = 1 << 20;
  const InSituResult result = InSituCompress(values, options);
  EXPECT_EQ(result.shards.size(), 1u);
  EXPECT_EQ(InSituDecompress(result.shards, options), values);
}

TEST(InSituEdgeTest, ExactShardBoundary) {
  const auto values = GenerateDatasetByName("obs_info", 40000);
  InSituOptions options;
  options.shard_elements = 10000;  // divides exactly
  const InSituResult result = InSituCompress(values, options);
  EXPECT_EQ(result.shards.size(), 4u);
  EXPECT_EQ(InSituDecompress(result.shards, options), values);
}

TEST(InSituEdgeTest, AlternativeSolverPropagates) {
  const auto values = GenerateDatasetByName("num_plasma", 30000);
  InSituOptions options;
  options.primacy.solver = "lzfast";
  options.shard_elements = 8000;
  const InSituResult result = InSituCompress(values, options);
  // Solver name is embedded per shard; a default-option decompressor works.
  EXPECT_EQ(InSituDecompress(result.shards, InSituOptions{}), values);
}

TEST(InSituEdgeTest, StatsSumToWholeInput) {
  const auto values = GenerateDatasetByName("flash_gamc", 50000);
  InSituOptions options;
  options.shard_elements = 12000;
  const InSituResult result = InSituCompress(values, options);
  std::size_t summed = 0;
  for (const Bytes& shard : result.shards) summed += shard.size();
  EXPECT_EQ(summed, result.totals.output_bytes);
  EXPECT_EQ(result.totals.input_bytes, values.size() * 8);
}

TEST(InSituEdgeTest, ChunkSizeSmallerThanShardProducesMultipleChunks) {
  const auto values = GenerateDatasetByName("obs_temp", 60000);
  InSituOptions options;
  options.shard_elements = 30000;      // 2 shards
  options.primacy.chunk_bytes = 32 * 1024;  // 4096 elements/chunk
  const InSituResult result = InSituCompress(values, options);
  EXPECT_EQ(result.shards.size(), 2u);
  EXPECT_GT(result.totals.chunks, 10u);
  EXPECT_EQ(InSituDecompress(result.shards, options), values);
}

TEST(InSituEdgeTest, DecompressWithMissingShardFailsLoudly) {
  const auto values = GenerateDatasetByName("obs_info", 30000);
  InSituOptions options;
  options.shard_elements = 10000;
  InSituResult result = InSituCompress(values, options);
  result.shards[1].resize(result.shards[1].size() / 2);  // corrupt a shard
  EXPECT_THROW(InSituDecompress(result.shards, options), CorruptStreamError);
}

}  // namespace
}  // namespace primacy
