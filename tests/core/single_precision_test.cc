// Single-precision support (paper Section IV-B: the mapping scheme
// generalizes across floating-point precisions).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "core/primacy_codec.h"
#include "datasets/datasets.h"
#include "util/byte_matrix.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

std::vector<float> FloatDataset(const std::string& name, std::size_t n) {
  const auto doubles = GenerateDatasetByName(name, n);
  std::vector<float> out(doubles.size());
  for (std::size_t i = 0; i < doubles.size(); ++i) {
    out[i] = static_cast<float>(doubles[i]);
  }
  return out;
}

PrimacyOptions SingleOptions() {
  PrimacyOptions options;
  options.precision = Precision::kSingle;
  return options;
}

TEST(FloatConversionTest, BigEndianRowsPutExponentFirst) {
  // 1.0f = 0x3F800000.
  const std::vector<float> values{1.0f};
  const Bytes rows = FloatsToBigEndianRows(values);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], 0x3f_b);
  EXPECT_EQ(rows[1], 0x80_b);
  EXPECT_EQ(rows[2], 0x00_b);
  EXPECT_EQ(rows[3], 0x00_b);
}

TEST(FloatConversionTest, RoundTripsSpecials) {
  std::vector<float> values{0.0f,
                            -0.0f,
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::denorm_min()};
  const auto restored = BigEndianRowsToFloats(FloatsToBigEndianRows(values));
  ASSERT_EQ(restored.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(restored[i]),
              std::bit_cast<std::uint32_t>(values[i]));
  }
}

TEST(ReverseElementBytesTest, IsAnInvolution) {
  Rng rng(1);
  for (const std::size_t width : {1u, 2u, 4u, 8u, 16u}) {
    Bytes data(width * 100);
    for (auto& b : data) b = static_cast<std::byte>(rng.NextBelow(256));
    EXPECT_EQ(ReverseElementBytes(ReverseElementBytes(data, width), width),
              data);
  }
}

TEST(ReverseElementBytesTest, MatchesDoubleConversionOnLittleEndianHost) {
  const std::vector<double> values{1.5, -2.25, 1e300};
  const ByteSpan native = AsBytes(values);
  EXPECT_EQ(ReverseElementBytes(native, 8), DoublesToBigEndianRows(values));
}

TEST(SinglePrecisionTest, RoundTripsFloatDatasetBitExactly) {
  const auto values = FloatDataset("gts_phi_l", 100000);
  const PrimacyCompressor compressor(SingleOptions());
  const PrimacyDecompressor decompressor(SingleOptions());
  const Bytes stream = compressor.Compress(values);
  const auto restored = decompressor.DecompressSingle(stream);
  ASSERT_EQ(restored.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(restored[i]),
              std::bit_cast<std::uint32_t>(values[i]));
  }
}

TEST(SinglePrecisionTest, CompressesFloatData) {
  // Float: the 2 high-order bytes cover sign + exponent + 7 mantissa bits —
  // half the element. The mapping should again beat the vanilla solver.
  const auto values = FloatDataset("num_plasma", 200000);
  PrimacyStats stats;
  const PrimacyCompressor compressor(SingleOptions());
  compressor.Compress(values, &stats);
  EXPECT_GT(stats.CompressionRatio(), 1.1);
  EXPECT_GT(stats.top_byte_frequency_after,
            stats.top_byte_frequency_before);
}

TEST(SinglePrecisionTest, PrecisionMismatchRejected) {
  const std::vector<double> doubles(10, 1.0);
  const std::vector<float> floats(10, 1.0f);
  const PrimacyCompressor single(SingleOptions());
  const PrimacyCompressor dbl;
  EXPECT_THROW(single.Compress(std::span<const double>(doubles)),
               InvalidArgumentError);
  EXPECT_THROW(dbl.Compress(std::span<const float>(floats)),
               InvalidArgumentError);
}

TEST(SinglePrecisionTest, WidthIsSelfDescribing) {
  // A default (double-options) decompressor reads a single-precision stream:
  // the element width comes from the stream header.
  const auto values = FloatDataset("obs_info", 20000);
  const PrimacyCompressor compressor(SingleOptions());
  const Bytes stream = compressor.Compress(values);
  const PrimacyDecompressor decompressor;  // double-default options
  const auto restored = decompressor.DecompressSingle(stream);
  EXPECT_EQ(restored, values);
}

TEST(SinglePrecisionTest, FloatTailBytesPreserved) {
  const PrimacyCompressor compressor(SingleOptions());
  const PrimacyDecompressor decompressor(SingleOptions());
  Bytes data(4 * 1000 + 3);
  Rng rng(5);
  for (auto& b : data) b = static_cast<std::byte>(rng.NextBelow(256));
  EXPECT_EQ(decompressor.DecompressBytes(compressor.CompressBytes(data)),
            data);
}

TEST(SinglePrecisionTest, ChunkingWorksAtFloatWidth) {
  PrimacyOptions options = SingleOptions();
  options.chunk_bytes = 16 * 1024;
  const auto values = FloatDataset("flash_velx", 50000);
  const PrimacyCompressor compressor(options);
  const PrimacyDecompressor decompressor(options);
  EXPECT_EQ(decompressor.DecompressSingle(compressor.Compress(values)),
            values);
}

TEST(SinglePrecisionTest, BadWidthInStreamRejected) {
  const auto values = FloatDataset("obs_info", 1000);
  const PrimacyCompressor compressor(SingleOptions());
  Bytes stream = compressor.Compress(values);
  // Byte 6 is the element width (magic 4 + version 1 + linearization 1).
  ASSERT_EQ(static_cast<unsigned>(stream[6]), 4u);
  stream[6] = std::byte{5};
  const PrimacyDecompressor decompressor;
  EXPECT_THROW(decompressor.DecompressBytes(stream), CorruptStreamError);
}

}  // namespace
}  // namespace primacy
