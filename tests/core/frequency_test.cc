#include "core/frequency.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

Bytes HighBytesFromSequences(std::span<const std::uint16_t> sequences) {
  Bytes out(sequences.size() * 2);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    out[i * 2] = static_cast<std::byte>(sequences[i] >> 8);
    out[i * 2 + 1] = static_cast<std::byte>(sequences[i] & 0xff);
  }
  return out;
}

TEST(PairFrequencyTest, CountsBigEndianPairs) {
  const std::vector<std::uint16_t> sequences{0x3f80, 0x3f80, 0x4000};
  const PairFrequency freq =
      AnalyzePairFrequency(HighBytesFromSequences(sequences));
  EXPECT_EQ(freq.counts[0x3f80], 2u);
  EXPECT_EQ(freq.counts[0x4000], 1u);
  EXPECT_EQ(freq.DistinctSequences(), 2u);
}

TEST(PairFrequencyTest, OddByteCountRejected) {
  EXPECT_THROW(AnalyzePairFrequency(Bytes(3)), InvalidArgumentError);
}

TEST(IdIndexTest, MostFrequentSequenceGetsIdZero) {
  // 0x4000 x3, 0x3f80 x2, 0x1234 x1.
  const std::vector<std::uint16_t> sequences{0x4000, 0x4000, 0x4000,
                                             0x3f80, 0x3f80, 0x1234};
  const IdIndex index = IdIndex::FromFrequency(
      AnalyzePairFrequency(HighBytesFromSequences(sequences)));
  ASSERT_EQ(index.size(), 3u);
  EXPECT_EQ(index.IdOf(0x4000), 0u);
  EXPECT_EQ(index.IdOf(0x3f80), 1u);
  EXPECT_EQ(index.IdOf(0x1234), 2u);
  EXPECT_EQ(index.SequenceOf(0), 0x4000);
}

TEST(IdIndexTest, TiesBrokenByAscendingSequence) {
  const std::vector<std::uint16_t> sequences{0x0500, 0x0300, 0x0400};
  const IdIndex index = IdIndex::FromFrequency(
      AnalyzePairFrequency(HighBytesFromSequences(sequences)));
  EXPECT_EQ(index.IdOf(0x0300), 0u);
  EXPECT_EQ(index.IdOf(0x0400), 1u);
  EXPECT_EQ(index.IdOf(0x0500), 2u);
}

TEST(IdIndexTest, AbsentSequenceIsUnmapped) {
  const std::vector<std::uint16_t> sequences{0x1111};
  const IdIndex index = IdIndex::FromFrequency(
      AnalyzePairFrequency(HighBytesFromSequences(sequences)));
  EXPECT_EQ(index.IdOf(0x2222), IdIndex::kUnmapped);
}

TEST(IdIndexTest, MappingIsBijective) {
  Rng rng(1);
  std::vector<std::uint16_t> sequences(50000);
  for (auto& s : sequences) {
    s = static_cast<std::uint16_t>(rng.NextSkewed(1500, 0.99));
  }
  const IdIndex index = IdIndex::FromFrequency(
      AnalyzePairFrequency(HighBytesFromSequences(sequences)));
  for (std::size_t id = 0; id < index.size(); ++id) {
    EXPECT_EQ(index.IdOf(index.SequenceOf(id)), id);
  }
}

TEST(IdIndexTest, SerializationRoundTrips) {
  Rng rng(2);
  std::vector<std::uint16_t> sequences(10000);
  for (auto& s : sequences) {
    s = static_cast<std::uint16_t>(rng.NextSkewed(800, 0.98) * 37);
  }
  const IdIndex index = IdIndex::FromFrequency(
      AnalyzePairFrequency(HighBytesFromSequences(sequences)));
  const IdIndex restored = DeserializeIndex(SerializeIndex(index));
  ASSERT_EQ(restored.size(), index.size());
  for (std::size_t id = 0; id < index.size(); ++id) {
    EXPECT_EQ(restored.SequenceOf(id), index.SequenceOf(id));
  }
}

TEST(IdIndexTest, DuplicateSequencesInSerializedIndexRejected) {
  const std::vector<std::uint16_t> duplicated{7, 7};
  EXPECT_THROW(IdIndex::FromSequences(duplicated), CorruptStreamError);
}

TEST(IdIndexTest, TruncatedSerializationRejected) {
  const std::vector<std::uint16_t> sequences{0x0102, 0x0304};
  const IdIndex index = IdIndex::FromFrequency(
      AnalyzePairFrequency(HighBytesFromSequences(sequences)));
  Bytes data = SerializeIndex(index);
  data.pop_back();
  EXPECT_THROW(DeserializeIndex(data), CorruptStreamError);
}

TEST(IdIndexTest, EmptyFrequencyGivesEmptyIndex) {
  const IdIndex index =
      IdIndex::FromFrequency(AnalyzePairFrequency({}));
  EXPECT_EQ(index.size(), 0u);
}

}  // namespace
}  // namespace primacy
