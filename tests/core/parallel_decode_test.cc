// Thread-pool parallel decompression: byte-identical to serial decode, for
// both kPerChunk (fully parallel) and kReuseWhenCorrelated (group-parallel)
// streams, at several thread counts.
#include <gtest/gtest.h>

#include <bit>
#include <span>
#include <vector>

#include "core/primacy_codec.h"
#include "datasets/datasets.h"
#include "util/rng.h"

namespace primacy {
namespace {

PrimacyOptions ManyChunks(std::size_t threads) {
  PrimacyOptions options;
  options.chunk_bytes = 8 * 1024;  // 1024 doubles per chunk
  options.threads = threads;
  return options;
}

TEST(ParallelDecodeTest, ParallelMatchesSerialAtSeveralThreadCounts) {
  const auto values = GenerateDatasetByName("gts_phi_l", 40000);  // 40 chunks
  const Bytes stream = PrimacyCompressor(ManyChunks(1)).Compress(values);

  PrimacyDecodeStats serial_stats;
  const auto serial =
      PrimacyDecompressor(ManyChunks(1)).Decompress(stream, &serial_stats);
  ASSERT_EQ(serial.size(), values.size());
  EXPECT_EQ(serial_stats.threads_used, 1u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{0}}) {
    PrimacyDecodeStats stats;
    const auto parallel =
        PrimacyDecompressor(ManyChunks(threads)).Decompress(stream, &stats);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(parallel[i]),
                std::bit_cast<std::uint64_t>(serial[i]))
          << "threads=" << threads << " element " << i;
    }
    EXPECT_GT(stats.threads_used, 1u) << "threads=" << threads;
    EXPECT_EQ(stats.chunks_decoded, 40u);
    EXPECT_TRUE(stats.used_directory);
  }
}

TEST(ParallelDecodeTest, ParallelCompressionOutputIsByteIdenticalToSerial) {
  const auto values = GenerateDatasetByName("obs_temp", 30000);
  const Bytes serial = PrimacyCompressor(ManyChunks(1)).Compress(values);
  const Bytes parallel = PrimacyCompressor(ManyChunks(4)).Compress(values);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDecodeTest, GroupParallelDecodeOfCorrelatedStream) {
  // kReuseWhenCorrelated chains chunks onto shared indexes; parallel decode
  // must split at full-index boundaries only and still match serial exactly.
  PrimacyOptions write_options = ManyChunks(1);
  write_options.index_mode = IndexMode::kReuseWhenCorrelated;
  const auto values = GenerateDatasetByName("num_plasma", 30000);
  const Bytes stream = PrimacyCompressor(write_options).Compress(values);

  const auto serial = PrimacyDecompressor(ManyChunks(1)).Decompress(stream);
  const auto parallel = PrimacyDecompressor(ManyChunks(4)).Decompress(stream);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, values);
}

TEST(ParallelDecodeTest, SinglePrecisionParallelDecode) {
  PrimacyOptions options;
  options.precision = Precision::kSingle;
  options.chunk_bytes = 4 * 1024;
  options.threads = 4;
  Rng rng(11);
  std::vector<float> values(30000);
  for (auto& v : values) v = static_cast<float>(rng.NextGaussian());
  const Bytes stream = PrimacyCompressor(options).Compress(values);
  const auto serial = PrimacyDecompressor().DecompressSingle(stream);
  const auto parallel =
      PrimacyDecompressor(options).DecompressSingle(stream);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, values);
}

TEST(ParallelDecodeTest, TinyStreamsDecodeOnOneThread) {
  // Fewer groups than threads: the decoder must quietly stay serial.
  const std::vector<double> values{1.0, 2.0, 3.0};
  const Bytes stream = PrimacyCompressor().Compress(values);
  PrimacyDecodeStats stats;
  const auto restored =
      PrimacyDecompressor(ManyChunks(8)).Decompress(stream, &stats);
  EXPECT_EQ(restored, values);
  EXPECT_EQ(stats.threads_used, 1u);
}

}  // namespace
}  // namespace primacy
