// Wire-protocol unit tests: golden byte-exact frames (the corpus that
// freezes protocol version 1), encode/decode roundtrips, and the negative
// sweeps — every truncation and every byte corruption of a valid frame
// must be rejected, and version skew must be diagnosed with the request id
// intact (the server needs it to address the error frame).
#include "transport/wire.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "bitstream/byte_io.h"
#include "util/bytes.h"
#include "util/checksum.h"

namespace primacy::transport {
namespace {

std::string ToHex(ByteSpan bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::byte b : bytes) {
    const auto v = static_cast<unsigned>(b);
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0xF]);
  }
  return out;
}

Bytes FromHex(const std::string& hex) {
  Bytes out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::byte>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

RequestFrame GoldenRequest() {
  RequestFrame req;
  req.request_id = 0x1122334455667788ull;
  req.op = Op::kDecompressRange;
  req.tenant = "plasma";
  req.first_element = 300;
  req.element_count = 7;
  req.payload = {std::byte{0xDE}, std::byte{0xAD}, std::byte{0xBE},
                 std::byte{0xEF}};
  return req;
}

// ---------------------------------------------------------------------------
// Golden corpus. These hex strings ARE protocol version 1: if one of these
// expectations fails, the change is a wire format break — bump
// kProtocolVersion rather than editing the constants.

TEST(TransportWireGolden, RequestFrameBytesArePinned) {
  EXPECT_EQ(ToHex(EncodeRequestFrame(GoldenRequest())),
            "50524d5701000188776655443322110206706c61736d6100ac020704deadbeef"
            "a98487a48c897639");
}

TEST(TransportWireGolden, PingFrameBytesArePinned) {
  RequestFrame ping;
  ping.request_id = 1;
  ping.op = Op::kPing;
  EXPECT_EQ(ToHex(EncodeRequestFrame(ping)),
            "50524d5701000101000000000000000300000000009d011f2d8eb737aa");
}

TEST(TransportWireGolden, ResponseFrameBytesArePinned) {
  ResponseFrame resp;
  resp.request_id = 0x1122334455667788ull;
  resp.op = Op::kDecompressRange;
  resp.payload = {std::byte{0x01}, std::byte{0x02}, std::byte{0x03}};
  EXPECT_EQ(ToHex(EncodeResponseFrame(resp)),
            "50524d57010002887766554433221102030102037958f4f7346ce813");
}

TEST(TransportWireGolden, ErrorFrameBytesArePinned) {
  ErrorFrame err;
  err.request_id = 42;
  err.op = Op::kCompress;
  err.status = WireStatus::kRejectedQuota;
  err.retry_after_ns = 2'500'000'000ull;
  err.message = "quota";
  EXPECT_EQ(ToHex(EncodeErrorFrame(err)),
            "50524d570100032a00000000000000000100f90295000000000571756f7461"
            "7bf0907fb84b5708");
}

TEST(TransportWireGolden, GoldenFrameStartsWithMagicAndVersion) {
  const Bytes frame = EncodeRequestFrame(GoldenRequest());
  ByteReader reader{ByteSpan(frame)};
  EXPECT_EQ(reader.GetU32(), kWireMagic);
  EXPECT_EQ(reader.GetU16(), kProtocolVersion);
}

// ---------------------------------------------------------------------------
// Roundtrips.

TEST(TransportWire, RequestRoundtrips) {
  const RequestFrame req = GoldenRequest();
  const Bytes frame = EncodeRequestFrame(req);
  const DecodedFrame decoded = DecodeFrame(ByteSpan(frame));
  ASSERT_EQ(decoded.kind, FrameKind::kRequest);
  EXPECT_EQ(decoded.request.request_id, req.request_id);
  EXPECT_EQ(decoded.request.op, req.op);
  EXPECT_EQ(decoded.request.tenant, req.tenant);
  EXPECT_EQ(decoded.request.first_element, req.first_element);
  EXPECT_EQ(decoded.request.element_count, req.element_count);
  EXPECT_EQ(decoded.request.payload, req.payload);
}

TEST(TransportWire, ResponseRoundtrips) {
  ResponseFrame resp;
  resp.request_id = 7;
  resp.op = Op::kCompress;
  resp.payload = BytesFromString("compressed bytes");
  const DecodedFrame decoded =
      DecodeFrame(ByteSpan(EncodeResponseFrame(resp)));
  ASSERT_EQ(decoded.kind, FrameKind::kResponse);
  EXPECT_EQ(decoded.response.request_id, 7u);
  EXPECT_EQ(decoded.response.op, Op::kCompress);
  EXPECT_EQ(decoded.response.payload, resp.payload);
}

TEST(TransportWire, ErrorRoundtrips) {
  ErrorFrame err;
  err.request_id = 9;
  err.op = Op::kDecompress;
  err.status = WireStatus::kShuttingDown;
  err.retry_after_ns = 123;
  err.message = "draining";
  const DecodedFrame decoded = DecodeFrame(ByteSpan(EncodeErrorFrame(err)));
  ASSERT_EQ(decoded.kind, FrameKind::kError);
  EXPECT_EQ(decoded.error.request_id, 9u);
  EXPECT_EQ(decoded.error.status, WireStatus::kShuttingDown);
  EXPECT_EQ(decoded.error.retry_after_ns, 123u);
  EXPECT_EQ(decoded.error.message, "draining");
}

TEST(TransportWire, EmptyPayloadRequestRoundtrips) {
  RequestFrame req;
  req.request_id = 0;
  req.op = Op::kPing;
  const DecodedFrame decoded = DecodeFrame(ByteSpan(EncodeRequestFrame(req)));
  ASSERT_EQ(decoded.kind, FrameKind::kRequest);
  EXPECT_TRUE(decoded.request.payload.empty());
  EXPECT_TRUE(decoded.request.tenant.empty());
}

// ---------------------------------------------------------------------------
// Negative sweeps.

TEST(TransportWireNegative, EveryTruncationIsRejected) {
  const Bytes frame = EncodeRequestFrame(GoldenRequest());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_THROW(DecodeFrame(ByteSpan(frame.data(), len)), WireFormatError)
        << "prefix of " << len << " bytes decoded without error";
  }
}

TEST(TransportWireNegative, EveryByteCorruptionIsRejected) {
  const Bytes frame = EncodeRequestFrame(GoldenRequest());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    Bytes corrupt = frame;
    corrupt[i] ^= std::byte{0x40};
    // The trailing XXH64 covers every preceding byte, so any single-byte
    // change — header, body, or the checksum itself — must be caught.
    EXPECT_THROW(DecodeFrame(ByteSpan(corrupt)), WireFormatError)
        << "flip at offset " << i << " decoded without error";
  }
}

/// A frame from a future protocol version, hand-built against the frozen
/// prefix: magic, version, kind, request id, arbitrary body, trailing
/// XXH64. The decoder must surface the peer version AND the request id so
/// the server can answer with an addressed kVersionSkew error frame.
TEST(TransportWireNegative, VersionSkewCarriesPeerVersionAndRequestId) {
  Bytes frame;
  PutU32(frame, kWireMagic);
  PutU16(frame, kProtocolVersion + 1);
  PutU8(frame, 1);  // kRequest
  PutU64(frame, 0xABCDull);
  PutU8(frame, 99);  // future-version body the decoder cannot know
  PutU64(frame, Xxh64(ByteSpan(frame)));
  try {
    DecodeFrame(ByteSpan(frame));
    FAIL() << "version skew was not diagnosed";
  } catch (const VersionSkewError& e) {
    EXPECT_EQ(e.peer_version(), kProtocolVersion + 1);
    EXPECT_EQ(e.request_id(), 0xABCDull);
  }
}

TEST(TransportWireNegative, BadMagicIsRejectedBeforeVersion) {
  // Wrong magic + wrong version: magic must win (a non-PRIMACY peer is not
  // a version-skewed PRIMACY peer).
  Bytes frame;
  PutU32(frame, 0xDEADBEEFu);
  PutU16(frame, kProtocolVersion + 7);
  PutU8(frame, 1);
  PutU64(frame, 1);
  PutU64(frame, Xxh64(ByteSpan(frame)));
  EXPECT_THROW(
      {
        try {
          DecodeFrame(ByteSpan(frame));
        } catch (const VersionSkewError&) {
          FAIL() << "bad magic misdiagnosed as version skew";
        }
      },
      WireFormatError);
}

TEST(TransportWireNegative, UnknownFrameKindIsRejected) {
  Bytes frame;
  PutU32(frame, kWireMagic);
  PutU16(frame, kProtocolVersion);
  PutU8(frame, 9);  // no such kind
  PutU64(frame, 1);
  PutU64(frame, Xxh64(ByteSpan(frame)));
  EXPECT_THROW(DecodeFrame(ByteSpan(frame)), WireFormatError);
}

TEST(TransportWireNegative, UnknownOpIsRejected) {
  Bytes frame;
  PutU32(frame, kWireMagic);
  PutU16(frame, kProtocolVersion);
  PutU8(frame, 2);  // kResponse
  PutU64(frame, 1);
  PutU8(frame, 250);  // no such op
  PutBlock(frame, ByteSpan());
  PutU64(frame, Xxh64(ByteSpan(frame)));
  EXPECT_THROW(DecodeFrame(ByteSpan(frame)), WireFormatError);
}

TEST(TransportWireNegative, TrailingGarbageIsRejected) {
  RequestFrame ping;
  ping.request_id = 5;
  ping.op = Op::kPing;
  Bytes frame = EncodeRequestFrame(ping);
  // Splice extra bytes between body and checksum, then fix the checksum so
  // only the trailing-garbage check can reject it.
  frame.resize(frame.size() - 8);
  PutU8(frame, 0);
  PutU64(frame, Xxh64(ByteSpan(frame)));
  EXPECT_THROW(DecodeFrame(ByteSpan(frame)), WireFormatError);
}

TEST(TransportWireNegative, StatusNamesCoverTransportBlock) {
  EXPECT_STREQ(WireStatusName(WireStatus::kBadFrame), "bad_frame");
  EXPECT_STREQ(WireStatusName(WireStatus::kVersionSkew), "version_skew");
  EXPECT_STREQ(WireStatusName(WireStatus::kTooManyConnections),
               "too_many_connections");
  EXPECT_STREQ(WireStatusName(WireStatus::kUnknownOp), "unknown_op");
}

TEST(TransportWire, HexHelperRoundtrips) {
  const Bytes frame = EncodeRequestFrame(GoldenRequest());
  EXPECT_EQ(FromHex(ToHex(ByteSpan(frame))), frame);
}

}  // namespace
}  // namespace primacy::transport
