// TransportServer integration tests over real Unix-domain sockets: client
// byte-identity with direct library calls, pipelined multi-in-flight
// requests, connection limits, protocol-violation handling over a live
// connection, and graceful drain delivering in-flight replies.
//
// Raw-frame tests speak to the server through the transport/socket_io.h
// helpers (never raw syscalls — the transport-containment rule's point is
// that nobody outside src/transport needs them, this suite included).
#include "transport/server.h"

#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bitstream/byte_io.h"
#include "core/primacy_codec.h"
#include "service/service.h"
#include "transport/client.h"
#include "transport/socket_io.h"
#include "transport/wire.h"
#include "util/bytes.h"
#include "util/checksum.h"

namespace primacy::transport {
namespace {

std::string TestSocketPath(const char* tag) {
  static int counter = 0;
  return "/tmp/primacy_tsrv_" + std::to_string(::getpid()) + "_" + tag + "_" +
         std::to_string(counter++) + ".sock";
}

service::ServiceOptions DefaultServiceOptions() {
  service::ServiceOptions options;
  // Flush every request immediately: these tests exercise the transport,
  // not the batching triggers.
  options.batch.flush_timeout_ns = 0;
  return options;
}

service::TenantConfig UnlimitedTenant(const std::string& name = "default") {
  service::TenantConfig config;
  config.name = name;
  return config;
}

/// Deterministic pseudo-random payload (values pattern the codec sees as
/// double-ish data, plus raw byte noise).
Bytes TestPayload(std::size_t size, std::uint64_t seed) {
  Bytes payload(size);
  std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 1;
  for (std::size_t i = 0; i < size; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    payload[i] = static_cast<std::byte>(state >> 56);
  }
  return payload;
}

class ServerFixture {
 public:
  explicit ServerFixture(TransportServerOptions options = {},
                         service::ServiceOptions service_options =
                             DefaultServiceOptions())
      : service_(std::move(service_options)) {
    service_.AddTenant(UnlimitedTenant());
    options.socket_path = TestSocketPath("fx");
    server_ = std::make_unique<TransportServer>(service_, options);
    std::string error;
    if (!server_->Start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
    }
  }

  ~ServerFixture() { server_->Shutdown(); }

  const std::string& socket_path() const {
    return server_->options().socket_path;
  }
  service::CompressionService& service() { return service_; }
  TransportServer& server() { return *server_; }

  TransportClient MakeClient(TransportClientOptions options = {}) {
    options.socket_path = socket_path();
    return TransportClient(std::move(options));
  }

 private:
  service::CompressionService service_;
  std::unique_ptr<TransportServer> server_;
};

/// Raw framed connection for protocol-level tests.
class RawConnection {
 public:
  explicit RawConnection(const std::string& path)
      : clock_(service::SystemServiceClock::Instance()) {
    std::string error;
    const int fd = ConnectUnixSocket(
        path, IoDeadline::After(clock_, 5'000'000'000ull), &error);
    EXPECT_GE(fd, 0) << error;
    fd_.Reset(fd);
  }

  IoStatus Send(const Bytes& frame) {
    return SendFrame(fd_.get(), ByteSpan(frame),
                     IoDeadline::After(clock_, 5'000'000'000ull));
  }

  IoStatus Recv(Bytes* frame) {
    return RecvFrame(fd_.get(), frame, kMaxFrameBytes, clock_,
                     30'000'000'000ull, 30'000'000'000ull);
  }

  int fd() const { return fd_.get(); }

 private:
  service::SystemServiceClock& clock_;
  UniqueFd fd_;
};

Bytes PingFrame(std::uint64_t id) {
  RequestFrame req;
  req.request_id = id;
  req.op = Op::kPing;
  req.payload = TestPayload(16, id);
  return EncodeRequestFrame(req);
}

// ---------------------------------------------------------------------------

TEST(TransportServer, PingEchoesPayload) {
  ServerFixture fx;
  TransportClient client = fx.MakeClient();
  const Bytes payload = TestPayload(64, 1);
  const TransportResult result = client.Ping(ByteSpan(payload));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.payload, payload);
  EXPECT_EQ(result.attempts, 1u);
}

TEST(TransportServer, CompressMatchesDirectLibraryByteForByte) {
  ServerFixture fx;
  TransportClient client = fx.MakeClient();
  const Bytes payload = TestPayload(8192, 2);

  const TransportResult result = client.Compress("default", ByteSpan(payload));
  ASSERT_TRUE(result.ok()) << result.error;

  // The service pins codec parallelism to 1; mirror that for the direct
  // reference stream.
  PrimacyOptions codec = fx.service().options().codec;
  const Bytes direct = PrimacyCompressor(codec).CompressBytes(
      ByteSpan(payload));
  EXPECT_EQ(result.payload, direct)
      << "stream through the daemon differs from a direct CompressBytes";

  const TransportResult restored =
      client.Decompress("default", ByteSpan(result.payload));
  ASSERT_TRUE(restored.ok()) << restored.error;
  EXPECT_EQ(restored.payload, payload);
}

TEST(TransportServer, DecompressRangeMatchesDirectRange) {
  ServerFixture fx;
  TransportClient client = fx.MakeClient();
  const Bytes payload = TestPayload(4096, 3);

  const TransportResult stream = client.Compress("default", ByteSpan(payload));
  ASSERT_TRUE(stream.ok()) << stream.error;

  PrimacyOptions codec = fx.service().options().codec;
  const Bytes direct = PrimacyDecompressor(codec).DecompressBytesRange(
      ByteSpan(stream.payload), 100, 57);
  const TransportResult range =
      client.DecompressRange("default", ByteSpan(stream.payload), 100, 57);
  ASSERT_TRUE(range.ok()) << range.error;
  EXPECT_EQ(range.payload, direct);
}

TEST(TransportServer, StatsReturnsServiceStatusJson) {
  ServerFixture fx;
  TransportClient client = fx.MakeClient();
  ASSERT_TRUE(client.Ping().ok());
  const TransportResult stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.error;
  const std::string json = StringFromBytes(ByteSpan(stats.payload));
  EXPECT_NE(json.find("\"tenants\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"default\""), std::string::npos) << json;
}

TEST(TransportServer, UnknownTenantGetsErrorFrameAndConnectionSurvives) {
  ServerFixture fx;
  TransportClient client = fx.MakeClient();
  const TransportResult bad =
      client.Compress("no_such_tenant", ByteSpan(TestPayload(32, 4)));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status, WireStatus::kError);
  EXPECT_NE(bad.error.find("no_such_tenant"), std::string::npos) << bad.error;
  // The error was request-scoped: the same client (and pooled connection)
  // keeps working.
  EXPECT_TRUE(client.Ping().ok());
}

/// Property test: random payloads of many sizes, routed through the daemon,
/// must be byte-identical to the direct library on both directions.
TEST(TransportServerProperty, ClientThroughDaemonEqualsDirectService) {
  ServerFixture fx;
  TransportClient client = fx.MakeClient();
  PrimacyOptions codec = fx.service().options().codec;
  PrimacyCompressor compressor(codec);
  PrimacyDecompressor decompressor(codec);

  const std::size_t sizes[] = {0, 1, 7, 64, 333, 1024, 4096, 20000};
  std::uint64_t seed = 1;
  for (const std::size_t size : sizes) {
    const Bytes payload = TestPayload(size, ++seed);
    const TransportResult compressed =
        client.Compress("default", ByteSpan(payload));
    ASSERT_TRUE(compressed.ok()) << size << ": " << compressed.error;
    EXPECT_EQ(compressed.payload, compressor.CompressBytes(ByteSpan(payload)))
        << "compress mismatch at size " << size;

    const TransportResult restored =
        client.Decompress("default", ByteSpan(compressed.payload));
    ASSERT_TRUE(restored.ok()) << size << ": " << restored.error;
    EXPECT_EQ(restored.payload,
              decompressor.DecompressBytes(ByteSpan(compressed.payload)))
        << "decompress mismatch at size " << size;
    EXPECT_EQ(restored.payload, payload);
  }
}

// ---------------------------------------------------------------------------
// Pipelining: many in-flight ids on one connection.

TEST(TransportServerPipeline, ManyInFlightRequestsOnOneConnection) {
  ServerFixture fx;
  RawConnection conn(fx.socket_path());

  constexpr std::uint64_t kInFlight = 16;
  for (std::uint64_t id = 1; id <= kInFlight; ++id) {
    ASSERT_EQ(conn.Send(PingFrame(id)), IoStatus::kOk) << "send " << id;
  }
  // Replies come back in arrival order (an implementation detail the
  // protocol does not promise — ids are authoritative — but one this test
  // may rely on for determinism).
  for (std::uint64_t id = 1; id <= kInFlight; ++id) {
    Bytes frame;
    ASSERT_EQ(conn.Recv(&frame), IoStatus::kOk) << "recv " << id;
    const DecodedFrame decoded = DecodeFrame(ByteSpan(frame));
    ASSERT_EQ(decoded.kind, FrameKind::kResponse);
    EXPECT_EQ(decoded.response.request_id, id);
    EXPECT_EQ(decoded.response.payload, TestPayload(16, id));
  }
}

TEST(TransportServerPipeline, InterleavedOpsKeepTheirIds) {
  ServerFixture fx;
  RawConnection conn(fx.socket_path());
  const Bytes payload = TestPayload(2048, 11);

  RequestFrame compress;
  compress.request_id = 101;
  compress.op = Op::kCompress;
  compress.tenant = "default";
  compress.payload = payload;
  ASSERT_EQ(conn.Send(EncodeRequestFrame(compress)), IoStatus::kOk);
  ASSERT_EQ(conn.Send(PingFrame(102)), IoStatus::kOk);

  Bytes first, second;
  ASSERT_EQ(conn.Recv(&first), IoStatus::kOk);
  ASSERT_EQ(conn.Recv(&second), IoStatus::kOk);
  const DecodedFrame a = DecodeFrame(ByteSpan(first));
  const DecodedFrame b = DecodeFrame(ByteSpan(second));
  ASSERT_EQ(a.kind, FrameKind::kResponse);
  ASSERT_EQ(b.kind, FrameKind::kResponse);
  EXPECT_EQ(a.response.request_id, 101u);
  EXPECT_EQ(a.response.op, Op::kCompress);
  EXPECT_EQ(b.response.request_id, 102u);
  EXPECT_EQ(b.response.op, Op::kPing);
}

// ---------------------------------------------------------------------------
// Protocol violations over a live socket.

TEST(TransportServerViolation, VersionSkewAnsweredWithAddressedErrorFrame) {
  ServerFixture fx;
  RawConnection conn(fx.socket_path());

  Bytes skewed;
  PutU32(skewed, kWireMagic);
  PutU16(skewed, kProtocolVersion + 1);
  PutU8(skewed, 1);  // kRequest
  PutU64(skewed, 0xFEEDull);
  PutU8(skewed, 42);  // future-version body
  PutU64(skewed, Xxh64(ByteSpan(skewed)));
  ASSERT_EQ(conn.Send(skewed), IoStatus::kOk);

  Bytes reply;
  ASSERT_EQ(conn.Recv(&reply), IoStatus::kOk);
  const DecodedFrame decoded = DecodeFrame(ByteSpan(reply));
  ASSERT_EQ(decoded.kind, FrameKind::kError);
  EXPECT_EQ(decoded.error.status, WireStatus::kVersionSkew);
  EXPECT_EQ(decoded.error.request_id, 0xFEEDull)
      << "the frozen prefix exists so this id can be echoed";
  // A version-skewed peer cannot be spoken to further: expect close.
  Bytes next;
  EXPECT_EQ(conn.Recv(&next), IoStatus::kEof);
}

TEST(TransportServerViolation, CorruptFrameAnsweredWithBadFrameThenClose) {
  ServerFixture fx;
  RawConnection conn(fx.socket_path());

  Bytes garbage = TestPayload(64, 21);
  ASSERT_EQ(conn.Send(garbage), IoStatus::kOk);

  Bytes reply;
  ASSERT_EQ(conn.Recv(&reply), IoStatus::kOk);
  const DecodedFrame decoded = DecodeFrame(ByteSpan(reply));
  ASSERT_EQ(decoded.kind, FrameKind::kError);
  EXPECT_EQ(decoded.error.status, WireStatus::kBadFrame);
  Bytes next;
  EXPECT_EQ(conn.Recv(&next), IoStatus::kEof);
}

// ---------------------------------------------------------------------------
// Limits and drain.

TEST(TransportServerLimit, ExcessConnectionRefusedWithRetryAfter) {
  TransportServerOptions options;
  options.max_connections = 1;
  options.reject_retry_after_ns = 77'000'000ull;
  ServerFixture fx(options);

  RawConnection first(fx.socket_path());
  ASSERT_EQ(first.Send(PingFrame(1)), IoStatus::kOk);
  Bytes pong;
  ASSERT_EQ(first.Recv(&pong), IoStatus::kOk);

  RawConnection second(fx.socket_path());
  Bytes refusal;
  ASSERT_EQ(second.Recv(&refusal), IoStatus::kOk);
  const DecodedFrame decoded = DecodeFrame(ByteSpan(refusal));
  ASSERT_EQ(decoded.kind, FrameKind::kError);
  EXPECT_EQ(decoded.error.status, WireStatus::kTooManyConnections);
  EXPECT_EQ(decoded.error.retry_after_ns, 77'000'000ull);
  Bytes next;
  EXPECT_EQ(second.Recv(&next), IoStatus::kEof);

  // The established connection is unaffected.
  ASSERT_EQ(first.Send(PingFrame(2)), IoStatus::kOk);
  ASSERT_EQ(first.Recv(&pong), IoStatus::kOk);
  EXPECT_EQ(fx.server().Stats().connections_rejected, 1u);
}

TEST(TransportServerDrain, ShutdownDeliversInFlightReplies) {
  ServerFixture fx;
  RawConnection conn(fx.socket_path());

  RequestFrame compress;
  compress.request_id = 7;
  compress.op = Op::kCompress;
  compress.tenant = "default";
  compress.payload = TestPayload(16384, 31);
  ASSERT_EQ(conn.Send(EncodeRequestFrame(compress)), IoStatus::kOk);

  // Wait until the request has been decoded and submitted (the requests
  // counter increments at dispatch), so Shutdown finds it in flight.
  while (fx.server().Stats().requests < 1) std::this_thread::yield();
  fx.server().Shutdown();

  // The drain contract: the queued reply was flushed before the close.
  Bytes reply;
  ASSERT_EQ(conn.Recv(&reply), IoStatus::kOk);
  const DecodedFrame decoded = DecodeFrame(ByteSpan(reply));
  ASSERT_EQ(decoded.kind, FrameKind::kResponse);
  EXPECT_EQ(decoded.response.request_id, 7u);
  PrimacyOptions codec = fx.service().options().codec;
  EXPECT_EQ(decoded.response.payload,
            PrimacyCompressor(codec).CompressBytes(
                ByteSpan(compress.payload)));
  Bytes next;
  EXPECT_EQ(conn.Recv(&next), IoStatus::kEof);
}

TEST(TransportServerDrain, ShutdownIsIdempotentAndRebindable) {
  service::CompressionService service(DefaultServiceOptions());
  service.AddTenant(UnlimitedTenant());
  TransportServerOptions options;
  options.socket_path = TestSocketPath("rebind");
  {
    TransportServer server(service, options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    server.Shutdown();
    server.Shutdown();  // idempotent
  }
  // The socket path was unlinked, so a fresh server can bind it.
  TransportServer second(service, options);
  std::string error;
  ASSERT_TRUE(second.Start(&error)) << error;
  TransportClientOptions client_options;
  client_options.socket_path = options.socket_path;
  TransportClient client(std::move(client_options));
  EXPECT_TRUE(client.Ping().ok());
  second.Shutdown();
}

TEST(TransportServer, StatsCountersTrackTraffic) {
  ServerFixture fx;
  TransportClient client = fx.MakeClient();
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Compress("default", ByteSpan(TestPayload(256, 5))).ok());
  const TransportServerStats stats = fx.server().Stats();
  EXPECT_GE(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.errors, 0u);
}

}  // namespace
}  // namespace primacy::transport
