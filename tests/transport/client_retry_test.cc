// TransportClient retry/backoff discipline, pinned deterministically.
//
// Every timed wait the client takes goes through the ServiceClock seam, so
// a RecordingClock can satisfy each backoff instantly while logging its
// exact duration — the whole suite runs with zero wall-clock sleeps, and
// the backoff schedule (exponential growth, cap, jitter bounds, the
// retry_after floor) is asserted as a concrete sequence of nanosecond
// values rather than observed timing.
#include "transport/client.h"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/clock.h"
#include "service/service.h"
#include "transport/server.h"
#include "transport/socket_io.h"
#include "transport/wire.h"
#include "util/bytes.h"

namespace primacy::transport {
namespace {

/// Satisfies every timed wait instantly by advancing its own time to the
/// deadline, recording the wait length. Single-threaded use only (the
/// client call under test runs on the test thread).
class RecordingClock final : public service::ServiceClock {
 public:
  std::uint64_t NowNs() const override {
    return now_ns_.load(std::memory_order_acquire);
  }

  void WaitUntil(primacy::Mutex& mu, primacy::CondVar& cv,
                 std::uint64_t deadline_ns) override PRIMACY_REQUIRES(mu) {
    (void)mu;
    (void)cv;
    if (deadline_ns == service::kNoDeadlineNs) return;
    const std::uint64_t now = now_ns_.load(std::memory_order_acquire);
    waits_ns.push_back(deadline_ns > now ? deadline_ns - now : 0);
    if (deadline_ns > now) {
      now_ns_.store(deadline_ns, std::memory_order_release);
    }
  }

  std::vector<std::uint64_t> waits_ns;

 private:
  std::atomic<std::uint64_t> now_ns_{0};
};

std::string MissingSocketPath() {
  return "/tmp/primacy_retry_nowhere_" + std::to_string(::getpid()) + ".sock";
}

TransportClientOptions BaseOptions(RecordingClock& clock,
                                   const std::string& path) {
  TransportClientOptions options;
  options.socket_path = path;
  options.clock = &clock;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff_ns = 1'000'000;  // 1 ms
  options.retry.backoff_multiplier = 2.0;
  options.retry.max_backoff_ns = 1'000'000'000;
  options.retry.jitter_fraction = 0.0;
  return options;
}

// ---------------------------------------------------------------------------

TEST(TransportRetry, ConnectFailureBackoffIsPinnedWithoutJitter) {
  RecordingClock clock;
  TransportClient client(BaseOptions(clock, MissingSocketPath()));

  const TransportResult result = client.Ping();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.attempts, 4u);
  // Three waits between four attempts: 1ms, 2ms, 4ms — exactly.
  ASSERT_EQ(clock.waits_ns,
            (std::vector<std::uint64_t>{1'000'000, 2'000'000, 4'000'000}));
  EXPECT_EQ(client.ClientStats().retries, 3u);
}

TEST(TransportRetry, BackoffIsCappedAtMaxBackoff) {
  RecordingClock clock;
  TransportClientOptions options = BaseOptions(clock, MissingSocketPath());
  options.retry.backoff_multiplier = 10.0;
  options.retry.max_backoff_ns = 4'000'000;  // 4 ms cap
  TransportClient client(std::move(options));

  const TransportResult result = client.Ping();
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(clock.waits_ns,
            (std::vector<std::uint64_t>{1'000'000, 4'000'000, 4'000'000}));
}

TEST(TransportRetry, JitterStaysWithinFractionAndIsDeterministic) {
  RecordingClock clock_a;
  TransportClientOptions options = BaseOptions(clock_a, MissingSocketPath());
  options.retry.jitter_fraction = 0.25;
  TransportClientOptions options_copy = options;
  TransportClient client_a(std::move(options_copy));
  EXPECT_FALSE(client_a.Ping().ok());

  ASSERT_EQ(clock_a.waits_ns.size(), 3u);
  const std::uint64_t bases[] = {1'000'000, 2'000'000, 4'000'000};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(clock_a.waits_ns[i], bases[i]) << "wait " << i;
    EXPECT_LT(clock_a.waits_ns[i], bases[i] + bases[i] / 4) << "wait " << i;
  }

  // Same seed, same schedule: the jitter stream is deterministic state, not
  // a global RNG.
  RecordingClock clock_b;
  options.clock = &clock_b;
  TransportClient client_b(std::move(options));
  EXPECT_FALSE(client_b.Ping().ok());
  EXPECT_EQ(clock_a.waits_ns, clock_b.waits_ns);
}

TEST(TransportRetry, SingleAttemptPolicyNeverWaits) {
  RecordingClock clock;
  TransportClientOptions options = BaseOptions(clock, MissingSocketPath());
  options.retry.max_attempts = 1;
  TransportClient client(std::move(options));
  const TransportResult result = client.Ping();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_TRUE(clock.waits_ns.empty());
}

// ---------------------------------------------------------------------------
// Idempotency discipline against a half-open peer: a fake server that reads
// the request and closes the connection without replying, making every
// attempt an ambiguous transport failure *after* bytes were sent.

class ReadThenCloseServer {
 public:
  ReadThenCloseServer() {
    path_ = "/tmp/primacy_retry_rtc_" + std::to_string(::getpid()) + "_" +
            std::to_string(++instance_counter_) + ".sock";
    std::string error;
    const int fd = ListenUnixSocket(path_, 8, &error);
    EXPECT_GE(fd, 0) << error;
    listen_fd_.Reset(fd);
    EXPECT_TRUE(wake_.Open(&error)) << error;
    thread_ = std::thread([this] { Serve(); });
  }

  ~ReadThenCloseServer() {
    wake_.Wake();
    if (thread_.joinable()) thread_.join();
  }

  const std::string& path() const { return path_; }
  std::uint64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void Serve() {
    auto& clock = service::SystemServiceClock::Instance();
    for (;;) {
      int conn = -1;
      if (AcceptWithWake(listen_fd_.get(), wake_.read_fd(), &conn) !=
          IoStatus::kOk) {
        return;
      }
      UniqueFd conn_fd(conn);
      connections_.fetch_add(1, std::memory_order_relaxed);
      Bytes frame;
      // Read the full request so the client has definitely "sent", then
      // close without a reply (the UniqueFd destructor).
      RecvFrame(conn_fd.get(), &frame, kMaxFrameBytes, clock,
                5'000'000'000ull, 5'000'000'000ull, wake_.read_fd());
    }
  }

  static inline std::atomic<int> instance_counter_{0};
  std::string path_;
  UniqueFd listen_fd_;
  WakePipe wake_;
  std::atomic<std::uint64_t> connections_{0};
  std::thread thread_;
};

TEST(TransportRetry, CompressIsNotRetriedAfterAmbiguousFailure) {
  ReadThenCloseServer server;
  RecordingClock clock;
  TransportClient client(BaseOptions(clock, server.path()));

  const Bytes payload = BytesFromString("do not compress twice");
  const TransportResult result = client.Compress("default", ByteSpan(payload));
  EXPECT_FALSE(result.ok());
  // The request may have executed server-side; a non-idempotent op must
  // surface the failure instead of re-submitting.
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_TRUE(clock.waits_ns.empty());
  EXPECT_EQ(server.connections(), 1u);
}

TEST(TransportRetry, DecompressIsRetriedAfterAmbiguousFailure) {
  ReadThenCloseServer server;
  RecordingClock clock;
  TransportClient client(BaseOptions(clock, server.path()));

  const Bytes stream = BytesFromString("idempotent: safe to resend");
  const TransportResult result =
      client.Decompress("default", ByteSpan(stream));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.attempts, 4u);
  EXPECT_EQ(clock.waits_ns.size(), 3u);
  EXPECT_EQ(server.connections(), 4u);
}

// ---------------------------------------------------------------------------
// Server-asserted rejections through a real daemon.

TEST(TransportRetry, RetryAfterHintFloorsTheBackoff) {
  service::ServiceOptions service_options;
  service_options.batch.flush_timeout_ns = 0;
  service::CompressionService service(std::move(service_options));
  service::TenantConfig tenant;
  tenant.name = "throttled";
  tenant.quota_bytes_per_sec = 100;  // refilling 50 bytes takes 500 ms
  tenant.quota_burst_bytes = 100;
  service.AddTenant(tenant);

  TransportServerOptions server_options;
  server_options.socket_path = "/tmp/primacy_retry_quota_" +
                               std::to_string(::getpid()) + ".sock";
  TransportServer server(service, server_options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Drain the burst with an admitted request so the one under test is
  // rejected with a real refill hint rather than an empty bucket edge case.
  {
    RecordingClock drain_clock;
    TransportClientOptions drain_options =
        BaseOptions(drain_clock, server_options.socket_path);
    drain_options.retry.max_attempts = 1;
    TransportClient drain_client(std::move(drain_options));
    const Bytes burst(100, std::byte{0x11});
    ASSERT_TRUE(drain_client.Compress("throttled", ByteSpan(burst)).ok());
  }

  RecordingClock clock;
  TransportClientOptions options =
      BaseOptions(clock, server_options.socket_path);
  options.retry.max_attempts = 3;
  TransportClient client(std::move(options));

  const Bytes payload(50, std::byte{0x55});
  // A kRejectedQuota error frame asserts the request was NOT executed, so
  // even the non-idempotent Compress is safe to retry — and each wait must
  // be floored by the server's hint (~500 ms to refill 50 bytes at
  // 100 B/s), far above the 1–2 ms computed backoff. The retries are
  // wall-instant (RecordingClock satisfies waits without sleeping), so the
  // bucket stays drained across attempts.
  const TransportResult result =
      client.Compress("throttled", ByteSpan(payload));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, WireStatus::kRejectedQuota);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_GT(result.retry_after_ns, 0u);
  ASSERT_EQ(clock.waits_ns.size(), 2u);
  for (const std::uint64_t wait : clock.waits_ns) {
    EXPECT_GE(wait, 100'000'000ull) << "backoff not floored by retry_after";
    EXPECT_LE(wait, 500'000'000ull);
  }
  server.Shutdown();
}

TEST(TransportRetry, RequestScopedErrorIsNotRetried) {
  service::ServiceOptions service_options;
  service_options.batch.flush_timeout_ns = 0;
  service::CompressionService service(std::move(service_options));
  service.AddTenant({.name = "default"});

  TransportServerOptions server_options;
  server_options.socket_path = "/tmp/primacy_retry_err_" +
                               std::to_string(::getpid()) + ".sock";
  TransportServer server(service, server_options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  RecordingClock clock;
  TransportClient client(BaseOptions(clock, server_options.socket_path));
  // Unknown tenant: a definitive kError frame — retrying cannot help.
  const TransportResult result =
      client.Decompress("ghost", ByteSpan(Bytes(8, std::byte{1})));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, WireStatus::kError);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_TRUE(clock.waits_ns.empty());
  server.Shutdown();
}

}  // namespace
}  // namespace primacy::transport
