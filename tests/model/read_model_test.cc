// Exact-value tests of the read-path model equations (the write path is
// pinned in perf_model_test.cc; Section III-C says reads follow the inverse
// order of operations, so each term must mirror its write counterpart).
#include <gtest/gtest.h>

#include "model/perf_model.h"

namespace primacy {
namespace {

ModelInputs Inputs() {
  ModelInputs in;
  in.chunk_bytes = 1e7;
  in.metadata_bytes = 1000;
  in.alpha1 = 0.25;
  in.alpha2 = 0.4;
  in.sigma_ho = 0.3;
  in.sigma_lo = 0.8;
  in.rho = 4.0;
  in.network_bps = 200e6;
  in.disk_write_bps = 100e6;
  in.disk_read_bps = 150e6;
  in.precondition_bps = 500e6;
  in.compress_bps = 100e6;
  in.decompress_bps = 300e6;
  in.postcondition_bps = 900e6;
  return in;
}

double Payload(const ModelInputs& in) {
  const double fraction = in.alpha1 * in.sigma_ho +
                          in.alpha2 * (1.0 - in.alpha1) * in.sigma_lo +
                          (1.0 - in.alpha2) * (1.0 - in.alpha1);
  return fraction * in.chunk_bytes + in.metadata_bytes;
}

TEST(ReadModelExactTest, BaselineReadTerms) {
  const ModelInputs in = Inputs();
  const ModelBreakdown out = BaselineRead(in);
  EXPECT_DOUBLE_EQ(out.t_io, in.rho * in.chunk_bytes / in.disk_read_bps);
  EXPECT_DOUBLE_EQ(out.t_transfer,
                   (1.0 + in.rho) * in.chunk_bytes / in.network_bps);
  EXPECT_DOUBLE_EQ(out.t_total, out.t_io + out.t_transfer);
  EXPECT_DOUBLE_EQ(out.throughput_bps,
                   in.rho * in.chunk_bytes / out.t_total);
}

TEST(ReadModelExactTest, PrimacyReadTerms) {
  const ModelInputs in = Inputs();
  const ModelBreakdown out = PrimacyRead(in);
  const double payload = Payload(in);
  EXPECT_DOUBLE_EQ(out.t_io, in.rho * payload / in.disk_read_bps);
  EXPECT_DOUBLE_EQ(out.t_transfer,
                   (1.0 + in.rho) * payload / in.network_bps);
  EXPECT_DOUBLE_EQ(out.t_compress1,
                   in.alpha1 * in.chunk_bytes / in.decompress_bps);
  EXPECT_DOUBLE_EQ(out.t_compress2, in.alpha2 * (1.0 - in.alpha1) *
                                        in.chunk_bytes / in.decompress_bps);
  EXPECT_DOUBLE_EQ(out.t_prec1, in.chunk_bytes / in.postcondition_bps);
  EXPECT_DOUBLE_EQ(out.t_prec2,
                   (1.0 - in.alpha1) * in.chunk_bytes / in.postcondition_bps);
  EXPECT_DOUBLE_EQ(out.t_total, out.t_io + out.t_transfer + out.t_compress1 +
                                    out.t_compress2 + out.t_prec1 +
                                    out.t_prec2);
}

TEST(ReadModelExactTest, PayloadMatchesPrimacyOutputBytes) {
  const ModelInputs in = Inputs();
  EXPECT_DOUBLE_EQ(PrimacyOutputBytes(in), Payload(in));
}

TEST(ReadModelExactTest, ReadAndWriteSharePayload) {
  // The bytes on disk are the same whichever direction they move.
  const ModelInputs in = Inputs();
  const double write_io = PrimacyWrite(in).t_io;
  const double read_io = PrimacyRead(in).t_io;
  EXPECT_DOUBLE_EQ(write_io * in.disk_write_bps,
                   read_io * in.disk_read_bps);
}

TEST(ReadModelExactTest, PerfectCompressorBoundsThroughput) {
  // sigma -> 0 and infinite CPU: read throughput approaches the metadata-
  // limited ceiling, far above the baseline.
  ModelInputs in = Inputs();
  in.sigma_ho = 0.0;
  in.sigma_lo = 0.0;
  in.alpha2 = 1.0;
  in.decompress_bps = 1e15;
  in.postcondition_bps = 1e15;
  EXPECT_GT(PrimacyRead(in).throughput_bps,
            5.0 * BaselineRead(in).throughput_bps);
}

}  // namespace
}  // namespace primacy
