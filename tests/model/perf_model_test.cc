#include "model/perf_model.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace primacy {
namespace {

ModelInputs Typical() {
  ModelInputs in;
  in.chunk_bytes = 3.0 * 1024 * 1024;
  in.metadata_bytes = 4096;
  in.alpha1 = 0.25;
  in.alpha2 = 0.3;
  in.sigma_ho = 0.4;
  in.sigma_lo = 0.9;
  in.rho = 8.0;
  in.network_bps = 500e6;
  in.disk_write_bps = 180e6;
  in.disk_read_bps = 220e6;
  in.precondition_bps = 600e6;
  in.compress_bps = 80e6;
  in.decompress_bps = 250e6;
  in.postcondition_bps = 800e6;
  return in;
}

TEST(BaselineWriteTest, MatchesEquationsFourThroughSix) {
  const ModelInputs in = Typical();
  const ModelBreakdown out = BaselineWrite(in);
  const double c = in.chunk_bytes;
  EXPECT_DOUBLE_EQ(out.t_transfer, 9.0 * c / 500e6);          // Eq. 4
  EXPECT_DOUBLE_EQ(out.t_io, 8.0 * c / 180e6);                // Eq. 5
  EXPECT_DOUBLE_EQ(out.t_total, out.t_transfer + out.t_io);   // Eq. 6
  EXPECT_DOUBLE_EQ(out.throughput_bps, 8.0 * c / out.t_total);  // Eq. 3
  EXPECT_DOUBLE_EQ(out.t_prec1, 0.0);
  EXPECT_DOUBLE_EQ(out.t_compress1, 0.0);
}

TEST(PrimacyWriteTest, MatchesEquationsSevenThroughThirteen) {
  const ModelInputs in = Typical();
  const ModelBreakdown out = PrimacyWrite(in);
  const double c = in.chunk_bytes;
  EXPECT_DOUBLE_EQ(out.t_prec1, c / in.precondition_bps);               // Eq. 7
  EXPECT_DOUBLE_EQ(out.t_prec2, 0.75 * c / in.precondition_bps);        // Eq. 8
  EXPECT_DOUBLE_EQ(out.t_compress1, 0.25 * c / in.compress_bps);        // Eq. 9
  EXPECT_DOUBLE_EQ(out.t_compress2, 0.3 * 0.75 * c / in.compress_bps);  // Eq.10
  const double fraction = 0.25 * 0.4 + 0.3 * 0.75 * 0.9 + 0.7 * 0.75;
  const double payload = fraction * c + in.metadata_bytes;
  EXPECT_DOUBLE_EQ(out.t_transfer, 9.0 * payload / in.network_bps);
  EXPECT_DOUBLE_EQ(out.t_io, 8.0 * payload / in.disk_write_bps);
  EXPECT_DOUBLE_EQ(out.t_total,
                   out.t_prec1 + out.t_prec2 + out.t_compress1 +
                       out.t_compress2 + out.t_transfer + out.t_io);
  EXPECT_DOUBLE_EQ(out.throughput_bps, 8.0 * c / out.t_total);
}

TEST(PrimacyWriteTest, LiteralEq11ShrinksRawShare) {
  ModelInputs in = Typical();
  const double corrected = PrimacyOutputBytes(in);
  in.literal_eq11 = true;
  const double literal = PrimacyOutputBytes(in);
  // sigma_lo < 1 means the published form underestimates the payload.
  EXPECT_LT(literal, corrected);
}

TEST(PrimacyWriteTest, BeatsBaselineWhenCompressionIsGoodAndCheap) {
  ModelInputs in = Typical();
  in.sigma_ho = 0.2;
  in.alpha2 = 0.5;
  in.sigma_lo = 0.5;
  in.compress_bps = 300e6;  // fast solver
  EXPECT_GT(PrimacyWrite(in).throughput_bps,
            BaselineWrite(in).throughput_bps);
}

TEST(PrimacyWriteTest, LosesToBaselineWhenCompressionIsSlowAndPoor) {
  ModelInputs in = Typical();
  in.sigma_ho = 0.98;
  in.alpha2 = 0.05;
  in.sigma_lo = 0.99;
  in.compress_bps = 10e6;  // pathologically slow solver
  EXPECT_LT(PrimacyWrite(in).throughput_bps,
            BaselineWrite(in).throughput_bps);
}

TEST(ReadModelTest, ReadMirrorsWriteStructure) {
  const ModelInputs in = Typical();
  const ModelBreakdown read = PrimacyRead(in);
  EXPECT_GT(read.t_io, 0.0);
  EXPECT_GT(read.t_transfer, 0.0);
  EXPECT_GT(read.t_compress1, 0.0);  // decompression share
  EXPECT_GT(read.throughput_bps, 0.0);
  const ModelBreakdown base = BaselineRead(in);
  EXPECT_DOUBLE_EQ(base.t_io, 8.0 * in.chunk_bytes / in.disk_read_bps);
}

TEST(ReadModelTest, FastDecompressionMakesPrimacyReadsWin) {
  ModelInputs in = Typical();
  in.sigma_ho = 0.25;
  in.alpha2 = 0.4;
  in.sigma_lo = 0.6;
  in.decompress_bps = 400e6;
  in.postcondition_bps = 1200e6;
  EXPECT_GT(PrimacyRead(in).throughput_bps, BaselineRead(in).throughput_bps);
}

TEST(ModelTest, ThroughputScalesWithNetworkWhenNetworkBound) {
  ModelInputs in = Typical();
  in.disk_write_bps = 1e12;  // effectively infinite disk
  const double tau1 = BaselineWrite(in).throughput_bps;
  in.network_bps *= 2.0;
  const double tau2 = BaselineWrite(in).throughput_bps;
  // Not exactly 2.0: the disk term is tiny but non-zero.
  EXPECT_NEAR(tau2 / tau1, 2.0, 1e-2);
}

TEST(ModelTest, RhoIncreasesContention) {
  ModelInputs low = Typical();
  low.rho = 2.0;
  ModelInputs high = Typical();
  high.rho = 32.0;
  // Per-node effective bandwidth drops as rho grows: throughput per raw byte
  // saturates, total time grows superlinearly.
  const double per_node_low =
      BaselineWrite(low).throughput_bps / low.rho;
  const double per_node_high =
      BaselineWrite(high).throughput_bps / high.rho;
  EXPECT_GT(per_node_low, per_node_high);
}

TEST(ModelTest, ValidationRejectsBadInputs) {
  ModelInputs in = Typical();
  in.alpha1 = 1.5;
  EXPECT_THROW(PrimacyWrite(in), InvalidArgumentError);
  in = Typical();
  in.network_bps = 0.0;
  EXPECT_THROW(BaselineWrite(in), InvalidArgumentError);
  in = Typical();
  in.chunk_bytes = 0.0;
  EXPECT_THROW(BaselineWrite(in), InvalidArgumentError);
}

TEST(CalibrationTest, FillsDataDependentFields) {
  PrimacyStats stats;
  stats.input_bytes = 8'000'000;
  stats.chunks = 4;
  stats.index_bytes = 8000;
  stats.id_compressed_bytes = 600'000;   // of 2,000,000 high-order bytes
  stats.mantissa_stream_bytes = 5'200'000;
  stats.mantissa_raw_bytes = 4'000'000;
  stats.mean_compressible_fraction = 1.0 / 3.0;

  const ModelInputs in = CalibrateFromMeasurements(
      ModelInputs{}, stats, 600e6, 80e6, 250e6, 800e6);
  EXPECT_DOUBLE_EQ(in.alpha1, 0.25);
  EXPECT_NEAR(in.alpha2, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(in.sigma_ho, 600'000.0 / 2'000'000.0, 1e-12);
  // Compressible low bytes: (1/3) * 6,000,000 = 2,000,000; compressed to
  // 5,200,000 - 4,000,000 = 1,200,000.
  EXPECT_NEAR(in.sigma_lo, 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(in.metadata_bytes, 2000.0);
  EXPECT_DOUBLE_EQ(in.compress_bps, 80e6);
}

TEST(CalibrationTest, EmptyStatsRejected) {
  EXPECT_THROW(CalibrateFromMeasurements(ModelInputs{}, PrimacyStats{}, 1e6,
                                         1e6, 1e6, 1e6),
               InvalidArgumentError);
}

}  // namespace
}  // namespace primacy
