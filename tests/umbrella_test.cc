// The umbrella header must compile standalone and expose the whole API.
#include "primacy.h"

#include <gtest/gtest.h>

namespace primacy {
namespace {

TEST(UmbrellaHeaderTest, CoreTypesAreVisible) {
  const PrimacyCompressor compressor;
  const std::vector<double> values{1.0, 2.0, 3.0};
  const Bytes stream = compressor.Compress(values);
  EXPECT_EQ(PrimacyDecompressor().Decompress(stream), values);
  EXPECT_GE(AllDatasets().size(), 20u);
  RegisterBuiltinCodecs();
  EXPECT_TRUE(CodecRegistry::Global().Contains("primacy"));
  hpcsim::ClusterConfig config;
  (void)config;
  ModelInputs inputs;
  (void)BaselineWrite(inputs);
}

}  // namespace
}  // namespace primacy
