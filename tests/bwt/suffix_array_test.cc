#include "bwt/suffix_array.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace primacy {
namespace {

/// Reference check: suffix i (with virtual sentinel) is lexicographically
/// smaller than suffix j.
bool SuffixLess(ByteSpan text, std::size_t i, std::size_t j) {
  const std::size_t n = text.size();
  while (i < n && j < n) {
    if (text[i] != text[j]) return text[i] < text[j];
    ++i;
    ++j;
  }
  return i > j;  // shorter suffix (closer to the sentinel) sorts first
}

void CheckSuffixArray(ByteSpan text) {
  const auto sa = BuildSuffixArray(text);
  ASSERT_EQ(sa.size(), text.size() + 1);
  EXPECT_EQ(sa[0], static_cast<std::int32_t>(text.size()));
  // Permutation of [0, n].
  std::vector<std::int32_t> sorted(sa.begin(), sa.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<std::int32_t>(i));
  }
  // Sorted order.
  for (std::size_t k = 0; k + 1 < sa.size(); ++k) {
    EXPECT_TRUE(SuffixLess(text, static_cast<std::size_t>(sa[k]),
                           static_cast<std::size_t>(sa[k + 1])))
        << "rows " << k << " and " << k + 1;
  }
}

TEST(SuffixArrayTest, EmptyString) {
  const auto sa = BuildSuffixArray({});
  ASSERT_EQ(sa.size(), 1u);
  EXPECT_EQ(sa[0], 0);
}

TEST(SuffixArrayTest, KnownExample) {
  // "banana": suffix order with sentinel: $, a$, ana$, anana$, banana$,
  // na$, nana$ -> SA = [6, 5, 3, 1, 0, 4, 2].
  const Bytes text = BytesFromString("banana");
  const auto sa = BuildSuffixArray(text);
  const std::vector<std::int32_t> expected{6, 5, 3, 1, 0, 4, 2};
  EXPECT_EQ(sa, expected);
}

TEST(SuffixArrayTest, SingleByte) { CheckSuffixArray(BytesFromString("x")); }

TEST(SuffixArrayTest, AllEqualBytes) {
  CheckSuffixArray(Bytes(257, 7_b));
}

TEST(SuffixArrayTest, AlternatingPattern) {
  Bytes text(300);
  for (std::size_t i = 0; i < text.size(); ++i) {
    text[i] = (i % 2 == 0) ? 1_b : 2_b;
  }
  CheckSuffixArray(text);
}

class SuffixArrayRandom : public ::testing::TestWithParam<int> {};

TEST_P(SuffixArrayRandom, MatchesReferenceOrder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 1 + rng.NextBelow(2000);
  const std::size_t alphabet = 1 + rng.NextBelow(255);
  Bytes text(n);
  for (auto& b : text) b = static_cast<std::byte>(rng.NextBelow(alphabet));
  CheckSuffixArray(text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuffixArrayRandom, ::testing::Range(0, 12));

}  // namespace
}  // namespace primacy
