#include "bwt/transform.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

TEST(BwtTest, KnownExample) {
  // banana with sentinel-suffix construction: rows sorted as
  // $banana, a$banan, ana$ban, anana$b, banana$, na$bana, nana$ba
  // last column: a n n b $ a a -> with sentinel elided at row 4.
  const Bytes text = BytesFromString("banana");
  const BwtResult result = BwtForward(text);
  EXPECT_EQ(StringFromBytes(result.last_column), "annbaa");
  EXPECT_EQ(result.primary_index, 4u);
}

TEST(BwtTest, InverseRecoversKnownExample) {
  const Bytes text = BytesFromString("banana");
  const BwtResult result = BwtForward(text);
  EXPECT_EQ(BwtInverse(result.last_column, result.primary_index), text);
}

TEST(BwtTest, EmptyInput) {
  const BwtResult result = BwtForward({});
  EXPECT_TRUE(result.last_column.empty());
  EXPECT_TRUE(BwtInverse({}, 0).empty());
}

TEST(BwtTest, GroupsRepeatedContexts) {
  // BWT of a periodic string concentrates identical symbols into runs.
  Bytes text;
  for (int i = 0; i < 200; ++i) AppendBytes(text, BytesFromString("abc"));
  const BwtResult result = BwtForward(text);
  // Count symbol alternations; grouped output has very few.
  std::size_t switches = 0;
  for (std::size_t i = 1; i < result.last_column.size(); ++i) {
    switches += (result.last_column[i] != result.last_column[i - 1]);
  }
  EXPECT_LT(switches, 10u);
}

TEST(BwtTest, PrimaryIndexOutOfRangeRejected) {
  const Bytes column = BytesFromString("abc");
  EXPECT_THROW(BwtInverse(column, 4), CorruptStreamError);
}

TEST(BwtTest, WrongPrimaryIndexDoesNotCrash) {
  const Bytes text = BytesFromString("mississippi river basin");
  const BwtResult result = BwtForward(text);
  for (std::size_t wrong = 0; wrong <= text.size(); ++wrong) {
    if (wrong == result.primary_index) continue;
    try {
      const Bytes decoded = BwtInverse(result.last_column, wrong);
      EXPECT_NE(decoded, text);
    } catch (const CorruptStreamError&) {
      // Detecting the inconsistency is equally acceptable.
    }
  }
}

class BwtRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BwtRoundTrip, InverseRecoversRandomInputs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const std::size_t n = 1 + rng.NextBelow(5000);
  const std::size_t alphabet = 1 + rng.NextBelow(255);
  Bytes text(n);
  for (auto& b : text) b = static_cast<std::byte>(rng.NextBelow(alphabet));
  const BwtResult result = BwtForward(text);
  EXPECT_EQ(BwtInverse(result.last_column, result.primary_index), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BwtRoundTrip, ::testing::Range(0, 10));

TEST(MtfTest, KnownSequence) {
  // Input: 1 1 0 -> ranks: 1 (1 is at position 1), 0 (now front), 1 (0 moved
  // to position 1).
  const Bytes data{1_b, 1_b, 0_b};
  const Bytes ranks = MtfEncode(data);
  EXPECT_EQ(ranks, (Bytes{1_b, 0_b, 1_b}));
  EXPECT_EQ(MtfDecode(ranks), data);
}

TEST(MtfTest, RunsBecomeZeros) {
  const Bytes data(100, 42_b);
  const Bytes ranks = MtfEncode(data);
  EXPECT_EQ(static_cast<unsigned>(ranks[0]), 42u);
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    EXPECT_EQ(ranks[i], 0_b);
  }
}

TEST(MtfTest, RoundTripsRandomData) {
  Rng rng(77);
  Bytes data(20000);
  for (auto& b : data) b = static_cast<std::byte>(rng.NextBelow(256));
  EXPECT_EQ(MtfDecode(MtfEncode(data)), data);
}

TEST(MtfTest, EmptyInput) {
  EXPECT_TRUE(MtfEncode({}).empty());
  EXPECT_TRUE(MtfDecode({}).empty());
}

TEST(ZrleTest, EncodesZeroRunsCompactly) {
  Bytes ranks(1000, 0_b);
  const auto symbols = ZrleEncode(ranks);
  // Bijective base-2 of 1000 needs ~10 digits.
  EXPECT_LE(symbols.size(), 12u);
  EXPECT_EQ(ZrleDecode(symbols), ranks);
}

TEST(ZrleTest, RoundTripsExhaustiveRunLengths) {
  for (std::size_t run = 0; run <= 70; ++run) {
    Bytes ranks(run, 0_b);
    ranks.push_back(5_b);
    const auto symbols = ZrleEncode(ranks);
    EXPECT_EQ(ZrleDecode(symbols), ranks) << "run=" << run;
  }
}

TEST(ZrleTest, NonZeroValuesShiftedByOne) {
  const Bytes ranks{3_b, 255_b};
  const auto symbols = ZrleEncode(ranks);
  ASSERT_EQ(symbols.size(), 2u);
  EXPECT_EQ(symbols[0], 4u);
  EXPECT_EQ(symbols[1], 256u);
}

TEST(ZrleTest, RoundTripsMixedData) {
  Rng rng(88);
  Bytes ranks(30000);
  for (auto& b : ranks) {
    // MTF output profile: mostly zeros.
    b = rng.NextBool(0.8) ? 0_b
                          : static_cast<std::byte>(1 + rng.NextBelow(255));
  }
  EXPECT_EQ(ZrleDecode(ZrleEncode(ranks)), ranks);
}

TEST(ZrleTest, RejectsOutOfRangeSymbol) {
  const std::vector<std::uint16_t> symbols{257};
  EXPECT_THROW(ZrleDecode(symbols), CorruptStreamError);
}

}  // namespace
}  // namespace primacy
