// ObservabilityHub: the continuous observability pipeline. Every periodic
// behavior (trace flush, segment rotation, profiler sampling) is driven
// through a VirtualClock, so this suite runs with zero wall-clock sleeps —
// a test Advances time and waits on the hub's tick counter. Endpoint
// dispatch is exercised socket-free through HandleRequest; one test opens
// the real HTTP socket to prove a live scrape works end to end.
#include "telemetry/exporter/observability_hub.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "service/clock.h"
#include "telemetry/metrics.h"
#include "telemetry/stage_stack.h"
#include "telemetry/trace.h"

namespace primacy::telemetry {
namespace {

#if !PRIMACY_TELEMETRY_ENABLED

TEST(ExporterOffBuildTest, HubIsAnInertStub) {
  ObservabilityHubOptions options;
  options.http_port = 0;
  options.enable_quit_endpoint = true;
  ObservabilityHub hub(options);
  hub.Start();
  EXPECT_EQ(hub.HttpPort(), -1);  // the endpoint is absent, not just empty
  const HttpResponse response = hub.HandleRequest("/metrics");
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(response.body, "telemetry disabled\n");
  EXPECT_EQ(hub.GetStats().ticks, 0u);
  EXPECT_FALSE(hub.ShutdownRequested());
  EXPECT_TRUE(hub.RenderCollapsedStacks().empty());
  hub.Stop();
  EXPECT_EQ(MaybeStartHubFromEnv(), nullptr);
}

#else

class ExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetAllForTest();
    ClearTraceBuffers();
  }

  static std::string TraceDir(const std::string& name) {
    return ::testing::TempDir() + "exporter_test_" + name;
  }

  static std::string ReadFileOrEmpty(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  static bool FileExists(const std::string& path) {
    return std::ifstream(path).good();
  }
};

TEST_F(ExporterTest, TicksAreDrivenByTheVirtualClockOnly) {
  service::VirtualClock clock;
  ObservabilityHubOptions options;
  options.clock = &clock;
  options.trace_dir = TraceDir("ticks");
  options.trace_flush_interval_ns = 1'000'000;
  ObservabilityHub hub(options);
  hub.Start();
  EXPECT_EQ(hub.GetStats().ticks, 0u);  // no advance, no ticks

  // Advance-then-wait per period: the next deadline is recomputed from the
  // clock at pass time, so two un-waited Advances would coalesce into one
  // pass. This lock-step is the determinism contract the suite relies on.
  clock.Advance(1'000'000);
  hub.WaitForTicks(1);
  clock.Advance(1'000'000);
  hub.WaitForTicks(2);
  clock.Advance(1'000'000);
  hub.WaitForTicks(3);
  const ObservabilityHubStats stats = hub.GetStats();
  EXPECT_EQ(stats.ticks, 3u);  // exactly one pass per crossed deadline
  EXPECT_EQ(stats.trace_flushes, 3u);
  hub.Stop();
}

TEST_F(ExporterTest, TraceFlushWritesRotatingSegments) {
  service::VirtualClock clock;
  ObservabilityHubOptions options;
  options.clock = &clock;
  options.trace_dir = TraceDir("rotate");
  options.trace_basename = "seg";
  options.trace_segment_bytes = 512;  // force rotation every flush
  options.trace_max_segments = 2;
  options.trace_flush_interval_ns = 1'000'000;
  ObservabilityHub hub(options);
  hub.Start();

  // Three flush rounds, each with enough spans to exceed the segment cap.
  for (std::uint64_t round = 1; round <= 3; ++round) {
    for (std::uint64_t i = 0; i < 16; ++i) {
      TraceSpan span("exporter_test.rotate", "round", round);
    }
    clock.Advance(1'000'000);
    hub.WaitForTicks(round);
  }

  const ObservabilityHubStats stats = hub.GetStats();
  EXPECT_EQ(stats.trace_flushes, 3u);
  EXPECT_EQ(stats.trace_events_written, 48u);
  EXPECT_EQ(stats.trace_segments_opened, 3u);
  // Segment 0 was pruned (trace_max_segments = 2); 1 and 2 remain, each a
  // complete chrome://tracing JSON document.
  const std::string dir = TraceDir("rotate");
  EXPECT_FALSE(FileExists(dir + "/seg.0.json"));
  for (int i = 1; i <= 2; ++i) {
    const std::string body =
        ReadFileOrEmpty(dir + "/seg." + std::to_string(i) + ".json");
    ASSERT_FALSE(body.empty()) << "segment " << i;
    EXPECT_EQ(body.front(), '{');
    EXPECT_NE(body.find("exporter_test.rotate"), std::string::npos);
    EXPECT_NE(body.find("\"ph\": \"X\""), std::string::npos);
  }
  // Satellite invariant: the nominal pipeline never drops spans.
  EXPECT_EQ(TraceDroppedSpans(), 0u);
  hub.Stop();
}

TEST_F(ExporterTest, StopFlushesBufferedSpansWithoutAnAdvance) {
  service::VirtualClock clock;
  ObservabilityHubOptions options;
  options.clock = &clock;
  options.trace_dir = TraceDir("final_flush");
  options.trace_flush_interval_ns = 1'000'000'000;  // never due in-test
  ObservabilityHub hub(options);
  hub.Start();
  { TraceSpan span("exporter_test.final"); }
  hub.Stop();  // the shutdown flush must capture the buffered span
  const std::string body =
      ReadFileOrEmpty(TraceDir("final_flush") + "/primacy_trace.0.json");
  EXPECT_NE(body.find("exporter_test.final"), std::string::npos);
}

TEST_F(ExporterTest, ProfilerAttributesSamplesToLiveStageStacks) {
  service::VirtualClock clock;
  ObservabilityHubOptions options;
  options.clock = &clock;
  options.profile_interval_ns = 1'000'000;
  ObservabilityHub hub(options);
  hub.Start();

  // A worker parks inside solver (under a split scope) while the clock
  // advances through five sampling deadlines.
  std::mutex mu;
  std::condition_variable cv;
  bool scoped = false;
  bool done = false;
  std::thread worker([&] {
    StageScope outer(Stage::kSplit);
    StageScope inner(Stage::kSolver);
    std::unique_lock<std::mutex> lock(mu);
    scoped = true;
    cv.notify_all();
    cv.wait(lock, [&] { return done; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return scoped; });
  }
  for (std::uint64_t i = 1; i <= 5; ++i) {
    clock.Advance(1'000'000);
    hub.WaitForTicks(i);
  }

  const ObservabilityHubStats stats = hub.GetStats();
  EXPECT_EQ(stats.profile_passes, 5u);
  EXPECT_GE(stats.profile_samples, 5u);  // worker sampled on every pass
  EXPECT_GE(MetricsRegistry::Global()
                .GetCounter("primacy_profile_samples_total",
                            "stage=\"solver\"")
                .Value(),
            5u);
  // The collapsed dump attributes the worker's samples to the full stack.
  EXPECT_NE(hub.RenderCollapsedStacks().find("split;solver 5"),
            std::string::npos);
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  }
  worker.join();
  hub.Stop();
}

TEST_F(ExporterTest, HandleRequestDispatchesEveryEndpoint) {
  MetricsRegistry::Global().GetCounter("primacy_exporter_probe_total")
      .Increment();
  ObservabilityHub hub;
  hub.Start();

  const HttpResponse metrics = hub.HandleRequest("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics.body.find("primacy_exporter_probe_total 1"),
            std::string::npos);

  EXPECT_EQ(hub.HandleRequest("/healthz").body, "ok\n");
  EXPECT_EQ(hub.HandleRequest("/readyz").status, 200);
  EXPECT_EQ(hub.HandleRequest("/profilez").status, 200);
  EXPECT_EQ(hub.HandleRequest("/nope").status, 404);

  const HttpResponse statusz = hub.HandleRequest("/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_EQ(statusz.content_type, "application/json");
  EXPECT_NE(statusz.body.find("\"hub\""), std::string::npos);
  EXPECT_NE(statusz.body.find("\"trace_dropped_spans\": 0"),
            std::string::npos);
  hub.Stop();
}

TEST_F(ExporterTest, ReadyCheckGatesReadyz) {
  ObservabilityHub hub;
  bool ready = false;
  hub.SetReadyCheck([&ready] { return ready; });
  hub.Start();
  EXPECT_EQ(hub.HandleRequest("/readyz").status, 503);
  ready = true;
  EXPECT_EQ(hub.HandleRequest("/readyz").status, 200);
  hub.Stop();
}

TEST_F(ExporterTest, StatusSourcesRenderUnderTheirNames) {
  ObservabilityHub hub;
  hub.AddStatusSource("service", [] { return std::string("{\"depth\": 3}"); });
  hub.AddStatusSource("empty", [] { return std::string(); });
  hub.Start();
  const std::string body = hub.HandleRequest("/statusz").body;
  EXPECT_NE(body.find("\"service\": {\"depth\": 3}"), std::string::npos);
  EXPECT_NE(body.find("\"empty\": null"), std::string::npos);
  hub.Stop();
}

TEST_F(ExporterTest, QuitEndpointRequiresOptIn) {
  ObservabilityHub hub;  // default: quit endpoint disabled
  hub.Start();
  EXPECT_EQ(hub.HandleRequest("/quitquitquit").status, 404);
  EXPECT_FALSE(hub.ShutdownRequested());
  hub.Stop();

  ObservabilityHubOptions options;
  options.enable_quit_endpoint = true;
  ObservabilityHub quittable(options);
  quittable.Start();
  EXPECT_EQ(quittable.HandleRequest("/quitquitquit").status, 200);
  EXPECT_TRUE(quittable.ShutdownRequested());
  quittable.WaitForShutdownRequest();  // must not block once latched
  quittable.Stop();
}

/// Minimal HTTP/1.0 client for the one live-socket test.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, (const sockaddr*)&addr, sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(ExporterTest, LiveHttpScrapeServesMetrics) {
  MetricsRegistry::Global().GetCounter("primacy_exporter_scrape_total")
      .Increment();
  ObservabilityHubOptions options;
  options.http_port = 0;  // kernel-assigned ephemeral port
  ObservabilityHub hub(options);
  hub.Start();
  ASSERT_GT(hub.HttpPort(), 0);

  const std::string metrics = HttpGet(hub.HttpPort(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE primacy_exporter_scrape_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("primacy_exporter_scrape_total 1"),
            std::string::npos);
  EXPECT_NE(HttpGet(hub.HttpPort(), "/healthz").find("ok"),
            std::string::npos);
  EXPECT_NE(HttpGet(hub.HttpPort(), "/unknown").find("HTTP/1.0 404"),
            std::string::npos);
  hub.Stop();
  EXPECT_EQ(hub.HttpPort(), -1);
}

#endif  // PRIMACY_TELEMETRY_ENABLED

}  // namespace
}  // namespace primacy::telemetry
