// Exporter under contention, for the sanitizer matrix (TSan in
// particular): producer threads hammer the trace rings and stage stacks
// while scraper threads call every endpoint and the main thread advances a
// VirtualClock through flush and sample deadlines. No wall-clock sleeps;
// everything is bounded iteration counts, so the test is fast in every
// sanitizer mode.
#include "telemetry/exporter/observability_hub.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/clock.h"
#include "telemetry/metrics.h"
#include "telemetry/stage_stack.h"
#include "telemetry/trace.h"

namespace primacy::telemetry {
namespace {

#if PRIMACY_TELEMETRY_ENABLED

TEST(ExporterStressTest, ConcurrentProducersScrapersAndClockAdvances) {
  MetricsRegistry::Global().ResetAllForTest();
  ClearTraceBuffers();

  service::VirtualClock clock;
  ObservabilityHubOptions options;
  options.clock = &clock;
  options.trace_dir = ::testing::TempDir() + "exporter_stress";
  options.trace_segment_bytes = 4096;
  options.trace_max_segments = 3;
  options.trace_flush_interval_ns = 1'000'000;
  options.profile_interval_ns = 500'000;
  ObservabilityHub hub(options);
  hub.AddStatusSource("stress", [] { return std::string("{\"on\": true}"); });
  hub.Start();

  constexpr int kProducers = 4;
  constexpr int kScrapers = 2;
  constexpr int kProducerIters = 2000;
  constexpr int kScraperIters = 150;
  constexpr int kClockSteps = 200;

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kScrapers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([p] {
      for (int i = 0; i < kProducerIters; ++i) {
        StageScope scope(static_cast<Stage>(i % kStageCount));
        TraceSpan span("stress.producer", "p",
                       static_cast<std::uint64_t>(p));
        scope.Switch(static_cast<Stage>((i + 1) % kStageCount));
      }
    });
  }
  for (int s = 0; s < kScrapers; ++s) {
    threads.emplace_back([&hub, &failed] {
      const char* paths[] = {"/metrics", "/statusz", "/profilez", "/healthz",
                             "/readyz"};
      for (int i = 0; i < kScraperIters; ++i) {
        const HttpResponse response = hub.HandleRequest(paths[i % 5]);
        if (response.status != 200) failed.store(true);
      }
    });
  }
  for (int i = 0; i < kClockSteps; ++i) {
    clock.Advance(500'000);
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());

  // One deterministic final pass so the post-conditions don't depend on
  // how the racing advances interleaved with the exporter thread.
  const std::uint64_t ticks_so_far = hub.GetStats().ticks;
  clock.Advance(2'000'000);
  hub.WaitForTicks(ticks_so_far + 1);

  const ObservabilityHubStats stats = hub.GetStats();
  EXPECT_GE(stats.ticks, 1u);
  EXPECT_GE(stats.trace_flushes, 1u);
  hub.Stop();
  // The rings are sized for this volume: the stress run must not have
  // dropped spans (the same invariant the nominal suite pins).
  EXPECT_EQ(TraceDroppedSpans(), 0u);
}

#endif  // PRIMACY_TELEMETRY_ENABLED

}  // namespace
}  // namespace primacy::telemetry
