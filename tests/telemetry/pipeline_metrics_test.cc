// End-to-end checks that the pipeline's telemetry agrees with itself: the
// PrimacyStats/PrimacyDecodeStats stage breakdowns must match the registry's
// per-stage counter family exactly, and serial vs parallel decode must
// produce identical data-dependent stats and metric deltas (only timing and
// threads_used may differ).
#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "core/primacy_codec.h"
#include "datasets/datasets.h"
#include "telemetry/metrics.h"
#include "telemetry/stage.h"

namespace primacy {
namespace {

using telemetry::kStageCount;
using telemetry::MetricsRegistry;
using telemetry::StageName;

std::uint64_t CounterValue(const char* name, std::string labels = {}) {
  return MetricsRegistry::Global().GetCounter(name, labels).Value();
}

std::array<std::uint64_t, kStageCount> StageCounters(const char* family) {
  std::array<std::uint64_t, kStageCount> values{};
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const std::string label =
        "stage=\"" +
        std::string(StageName(static_cast<telemetry::Stage>(s))) + "\"";
    values[s] = CounterValue(family, label);
  }
  return values;
}

std::vector<double> TestValues() {
  return GenerateDatasetByName("num_plasma", 1u << 16);
}

PrimacyOptions SmallChunkOptions() {
  PrimacyOptions options;
  options.chunk_bytes = 64 * 1024;  // 8 chunks at 1<<16 doubles
  return options;
}

TEST(PipelineMetricsTest, EncodeStageStatsMatchRegistryExactly) {
  const std::vector<double> values = TestValues();
  const auto before = StageCounters("primacy_encode_stage_ns_total");
  const std::uint64_t chunks_before =
      CounterValue("primacy_encode_chunks_total");
  const std::uint64_t input_before =
      CounterValue("primacy_encode_input_bytes_total");

  PrimacyStats stats;
  PrimacyCompressor(SmallChunkOptions()).Compress(values, &stats);

  const auto after = StageCounters("primacy_encode_stage_ns_total");
  if (!telemetry::kEnabled) {
    EXPECT_EQ(stats.stage.TotalNs(), 0u);
    EXPECT_EQ(after, before);
    return;
  }
  // Every lap the encoder charged to its stats was also published, and
  // nothing else ran in between.
  for (std::size_t s = 0; s < kStageCount; ++s) {
    EXPECT_EQ(after[s] - before[s], stats.stage.ns[s])
        << "stage " << StageName(static_cast<telemetry::Stage>(s));
  }
  EXPECT_GT(stats.stage.TotalNs(), 0u);
  EXPECT_EQ(CounterValue("primacy_encode_chunks_total") - chunks_before,
            stats.chunks);
  EXPECT_EQ(CounterValue("primacy_encode_input_bytes_total") - input_before,
            stats.input_bytes);
}

TEST(PipelineMetricsTest, DecodeStageStatsMatchRegistryExactly) {
  const std::vector<double> values = TestValues();
  const Bytes stream = PrimacyCompressor(SmallChunkOptions()).Compress(values);

  const auto before = StageCounters("primacy_decode_stage_ns_total");
  PrimacyDecodeStats stats;
  const std::vector<double> restored =
      PrimacyDecompressor(SmallChunkOptions()).Decompress(stream, &stats);
  const auto after = StageCounters("primacy_decode_stage_ns_total");

  ASSERT_EQ(restored, values);
  if (!telemetry::kEnabled) {
    EXPECT_EQ(stats.stage.TotalNs(), 0u);
    EXPECT_EQ(after, before);
    return;
  }
  for (std::size_t s = 0; s < kStageCount; ++s) {
    EXPECT_EQ(after[s] - before[s], stats.stage.ns[s])
        << "stage " << StageName(static_cast<telemetry::Stage>(s));
  }
  EXPECT_GT(stats.stage.TotalNs(), 0u);
}

TEST(PipelineMetricsTest, SerialAndParallelDecodeIdenticalStatsAndMetrics) {
  const std::vector<double> values = TestValues();
  const Bytes stream = PrimacyCompressor(SmallChunkOptions()).Compress(values);

  PrimacyOptions serial_options = SmallChunkOptions();
  serial_options.threads = 1;
  PrimacyOptions parallel_options = SmallChunkOptions();
  parallel_options.threads = 4;

  const std::uint64_t chunks0 = CounterValue("primacy_decode_chunks_total");
  const std::uint64_t bytes0 =
      CounterValue("primacy_decode_output_bytes_total");
  PrimacyDecodeStats serial_stats;
  const auto serial_out =
      PrimacyDecompressor(serial_options).Decompress(stream, &serial_stats);
  const std::uint64_t chunks1 = CounterValue("primacy_decode_chunks_total");
  const std::uint64_t bytes1 =
      CounterValue("primacy_decode_output_bytes_total");
  PrimacyDecodeStats parallel_stats;
  const auto parallel_out =
      PrimacyDecompressor(parallel_options)
          .Decompress(stream, &parallel_stats);
  const std::uint64_t chunks2 = CounterValue("primacy_decode_chunks_total");
  const std::uint64_t bytes2 =
      CounterValue("primacy_decode_output_bytes_total");

  EXPECT_EQ(serial_out, parallel_out);
  EXPECT_EQ(serial_out, values);

  // Data-dependent stats are mode-independent.
  EXPECT_EQ(serial_stats.chunks_decoded, parallel_stats.chunks_decoded);
  EXPECT_EQ(serial_stats.output_bytes, parallel_stats.output_bytes);
  EXPECT_EQ(serial_stats.used_directory, parallel_stats.used_directory);
  EXPECT_EQ(serial_stats.chunks_verified, parallel_stats.chunks_verified);
  EXPECT_GT(serial_stats.chunks_decoded, 1u);

  // Both runs publish identical metric deltas (timing counters aside).
  EXPECT_EQ(chunks1 - chunks0, chunks2 - chunks1);
  EXPECT_EQ(bytes1 - bytes0, bytes2 - bytes1);
  if (telemetry::kEnabled) {
    EXPECT_EQ(chunks1 - chunks0, serial_stats.chunks_decoded);
    EXPECT_EQ(bytes1 - bytes0, serial_stats.output_bytes);
    // Both modes run the same decode stages; the heavy ones must register
    // time in each (exact ns differ — they are timings, not byte counts).
    for (const telemetry::Stage s :
         {telemetry::Stage::kSolver, telemetry::Stage::kIsobar,
          telemetry::Stage::kMerge}) {
      EXPECT_GT(serial_stats.stage[s], 0u) << StageName(s);
      EXPECT_GT(parallel_stats.stage[s], 0u) << StageName(s);
    }
    // Encode-only stages stay untouched on the decode path.
    EXPECT_EQ(serial_stats.stage[telemetry::Stage::kSplit], 0u);
    EXPECT_EQ(parallel_stats.stage[telemetry::Stage::kSplit], 0u);
  }
}

TEST(PipelineMetricsTest, StatsMeansSurviveStreamingAccumulation) {
  // AccumulateChunkStats/FinalizeChunkStatMeans: the mean fields reported
  // for a multi-chunk stream must be averages, not sums.
  const std::vector<double> values = TestValues();
  PrimacyStats stats;
  PrimacyCompressor(SmallChunkOptions()).Compress(values, &stats);
  EXPECT_GT(stats.chunks, 1u);
  EXPECT_GE(stats.mean_compressible_fraction, 0.0);
  EXPECT_LE(stats.mean_compressible_fraction, 1.0);
  EXPECT_GE(stats.top_byte_frequency_before, 0.0);
  EXPECT_LE(stats.top_byte_frequency_before, 1.0);
  EXPECT_GE(stats.top_byte_frequency_after, 0.0);
  EXPECT_LE(stats.top_byte_frequency_after, 1.0);
}

}  // namespace
}  // namespace primacy
