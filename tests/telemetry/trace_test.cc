#include "telemetry/trace.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

namespace primacy::telemetry {
namespace {

#if !PRIMACY_TELEMETRY_ENABLED

TEST(TraceTest, StubsRecordNothing) {
  SetTracingEnabled(true);
  { TraceSpan span("stub.span"); }
  EXPECT_TRUE(SnapshotTraceEvents().empty());
  EXPECT_EQ(RenderChromeTrace(), "{\"traceEvents\": []}\n");
}

#else

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTracingEnabled(true);
    ClearTraceBuffers();
  }
  void TearDown() override {
    SetTracingEnabled(false);
    ClearTraceBuffers();
  }
};

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  SetTracingEnabled(false);
  { TraceSpan span("trace_test.disabled"); }
  EXPECT_TRUE(SnapshotTraceEvents().empty());
}

TEST_F(TraceTest, NestedSpansRecordContainment) {
  {
    TraceSpan outer("trace_test.outer", "arg", 7);
    { TraceSpan inner("trace_test.inner"); }
  }
  const std::vector<TraceEvent> events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete innermost-first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "trace_test.inner");
  EXPECT_STREQ(outer.name, "trace_test.outer");
  EXPECT_STREQ(outer.arg_name, "arg");
  EXPECT_EQ(outer.arg_value, 7u);
  EXPECT_EQ(inner.arg_name, nullptr);
  // Containment: the inner span starts no earlier and ends no later.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  EXPECT_EQ(inner.tid, outer.tid);
}

TEST_F(TraceTest, RingKeepsNewestEventsOnOverflow) {
  for (std::size_t i = 0; i < kTraceRingCapacity + 100; ++i) {
    TraceSpan span("trace_test.overflow", "i", i);
  }
  const std::vector<TraceEvent> events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), kTraceRingCapacity);
  // Oldest-first per thread; the first 100 spans were evicted.
  EXPECT_EQ(events.front().arg_value, 100u);
  EXPECT_EQ(events.back().arg_value, kTraceRingCapacity + 99);
}

TEST_F(TraceTest, ChromeTraceJsonHasCompleteEvents) {
  { TraceSpan span("trace_test.render", "bytes", 123); }
  const std::string json = RenderChromeTrace();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.find('{'), json.rfind("{\"traceEvents\""));
  EXPECT_NE(json.find("\"name\": \"trace_test.render\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // complete event
  EXPECT_NE(json.find("\"bytes\": 123"), std::string::npos);
  // Balanced braces — a cheap structural sanity check on the exporter.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, ClearTraceBuffersDropsEverything) {
  { TraceSpan span("trace_test.cleared"); }
  ASSERT_FALSE(SnapshotTraceEvents().empty());
  ClearTraceBuffers();
  EXPECT_TRUE(SnapshotTraceEvents().empty());
}

TEST_F(TraceTest, DrainConsumesEachEventExactlyOnce) {
  { TraceSpan span("trace_test.drain_a"); }
  { TraceSpan span("trace_test.drain_b"); }
  const std::vector<TraceEvent> first = DrainTraceEvents();
  ASSERT_EQ(first.size(), 2u);
  // A second drain with no new spans yields nothing — the exporter's
  // periodic flush never re-writes events into a later segment.
  EXPECT_TRUE(DrainTraceEvents().empty());
  { TraceSpan span("trace_test.drain_c"); }
  const std::vector<TraceEvent> second = DrainTraceEvents();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_STREQ(second[0].name, "trace_test.drain_c");
  // Nominal operation — the rings were never overrun — drops nothing.
  EXPECT_EQ(TraceDroppedSpans(), 0u);
}

TEST_F(TraceTest, OverwrittenUnconsumedEventsCountAsDropped) {
  // Fill the ring one full lap past capacity without draining: the lapped
  // events were never consumed, so they are drops, not silent evictions.
  for (std::size_t i = 0; i < kTraceRingCapacity + 100; ++i) {
    TraceSpan span("trace_test.drop", "i", i);
  }
  const std::vector<TraceEvent> events = DrainTraceEvents();
  EXPECT_EQ(events.size(), kTraceRingCapacity);
  EXPECT_EQ(TraceDroppedSpans(), 100u);
  // Draining resumes the no-drop regime.
  { TraceSpan span("trace_test.after_drop"); }
  EXPECT_EQ(DrainTraceEvents().size(), 1u);
  EXPECT_EQ(TraceDroppedSpans(), 100u);  // cumulative, not re-counted
}

#endif  // PRIMACY_TELEMETRY_ENABLED

}  // namespace
}  // namespace primacy::telemetry
