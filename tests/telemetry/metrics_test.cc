#include "telemetry/metrics.h"

#include <array>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace primacy::telemetry {
namespace {

#if !PRIMACY_TELEMETRY_ENABLED

// The stub half has no behaviour to test beyond compiling and reading zero.
TEST(MetricsTest, StubsReadZero) {
  Counter counter;
  counter.Increment(5);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_TRUE(MetricsRegistry::Global().RenderPrometheus().empty());
}

#else

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().ResetAllForTest(); }
};

TEST_F(MetricsTest, CounterStartsAtZeroAndIncrements) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST_F(MetricsTest, ConcurrentCounterIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncrements = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kIncrements);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);  // gauges may go negative
}

TEST_F(MetricsTest, HistogramBucketBoundariesAreInclusive) {
  const std::array<double, 3> bounds = {1.0, 10.0, 100.0};
  Histogram histogram{std::span<const double>(bounds)};
  // Prometheus semantics: bucket i counts observations <= bounds[i].
  histogram.Observe(1.0);    // lands in le=1
  histogram.Observe(1.5);    // le=10
  histogram.Observe(10.0);   // le=10 (boundary inclusive)
  histogram.Observe(100.5);  // +Inf only
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 113.0);
  EXPECT_EQ(histogram.CumulativeCount(0), 1u);  // <= 1
  EXPECT_EQ(histogram.CumulativeCount(1), 3u);  // <= 10
  EXPECT_EQ(histogram.CumulativeCount(2), 3u);  // <= 100
  EXPECT_EQ(histogram.CumulativeCount(3), 4u);  // +Inf
}

TEST_F(MetricsTest, ConcurrentHistogramObservationsCountExactly) {
  const std::array<double, 2> bounds = {10.0, 1000.0};
  Histogram histogram{std::span<const double>(bounds)};
  constexpr int kThreads = 4;
  constexpr std::uint64_t kObservations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (std::uint64_t i = 0; i < kObservations; ++i) {
        histogram.Observe(static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.Count(), kThreads * kObservations);
  EXPECT_EQ(histogram.CumulativeCount(2), kThreads * kObservations);
}

TEST_F(MetricsTest, RegistryReturnsStableSeriesIdentity) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("metrics_test_series", "stage=\"x\"");
  Counter& b = registry.GetCounter("metrics_test_series", "stage=\"x\"");
  Counter& c = registry.GetCounter("metrics_test_series", "stage=\"y\"");
  EXPECT_EQ(&a, &b);   // same name + labels: one series
  EXPECT_NE(&a, &c);   // different labels: distinct series
  a.Increment(5);
  EXPECT_EQ(b.Value(), 5u);
  EXPECT_EQ(c.Value(), 0u);
}

TEST_F(MetricsTest, RenderPrometheusEmitsAllSeries) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("metrics_test_render_total", "stage=\"split\"")
      .Increment(3);
  registry.GetGauge("metrics_test_render_gauge").Set(-7);
  const std::array<double, 2> bounds = {1.0, 2.0};
  Histogram& histogram = registry.GetHistogram(
      "metrics_test_render_hist", std::span<const double>(bounds));
  histogram.Observe(1.5);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE metrics_test_render_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("metrics_test_render_total{stage=\"split\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("metrics_test_render_gauge -7"), std::string::npos);
  EXPECT_NE(text.find("metrics_test_render_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("metrics_test_render_hist_count 1"), std::string::npos);
}

TEST_F(MetricsTest, ResetAllForTestZeroesButKeepsRegistrations) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("metrics_test_reset_total");
  counter.Increment(9);
  registry.ResetAllForTest();
  EXPECT_EQ(counter.Value(), 0u);
  // The cached reference is still the live series.
  counter.Increment();
  EXPECT_EQ(registry.GetCounter("metrics_test_reset_total").Value(), 1u);
}

#endif  // PRIMACY_TELEMETRY_ENABLED

}  // namespace
}  // namespace primacy::telemetry
