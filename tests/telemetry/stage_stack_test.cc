// Per-thread live stage stacks (the sampling profiler's data source):
// scopes push/pop/switch, samples see the innermost frame, disabled
// sampling records nothing, and deep nesting clamps instead of corrupting.
#include "telemetry/stage_stack.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>

namespace primacy::telemetry {
namespace {

#if !PRIMACY_TELEMETRY_ENABLED

TEST(StageStackTest, StubsRecordNothing) {
  SetStageSamplingEnabled(true);
  EXPECT_FALSE(StageSamplingEnabled());
  StageScope scope(Stage::kSolver);
  scope.Switch(Stage::kMerge);
  EXPECT_TRUE(SampleStageStacks().empty());
}

#else

class StageStackTest : public ::testing::Test {
 protected:
  void SetUp() override { SetStageSamplingEnabled(true); }
  void TearDown() override { SetStageSamplingEnabled(false); }

  /// This thread's sample, or nullopt if its stack is empty. Other test
  /// threads in the binary never hold live scopes, so at most one sample
  /// belongs to us; filtering by depth keeps the lookup robust anyway.
  static std::vector<StageStackSample> LiveSamples() {
    std::vector<StageStackSample> live;
    for (const StageStackSample& sample : SampleStageStacks()) {
      if (sample.depth > 0) live.push_back(sample);
    }
    return live;
  }
};

TEST_F(StageStackTest, DisabledSamplingRecordsNothing) {
  SetStageSamplingEnabled(false);
  StageScope scope(Stage::kSolver);
  EXPECT_TRUE(LiveSamples().empty());
}

TEST_F(StageStackTest, ScopePushesAndPops) {
  EXPECT_TRUE(LiveSamples().empty());
  {
    StageScope scope(Stage::kIdMap);
    const std::vector<StageStackSample> live = LiveSamples();
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].depth, 1u);
    EXPECT_EQ(live[0].Top(), Stage::kIdMap);
  }
  EXPECT_TRUE(LiveSamples().empty());
}

TEST_F(StageStackTest, ScopesNestBottomFirst) {
  StageScope outer(Stage::kSplit);
  StageScope inner(Stage::kSolver);
  const std::vector<StageStackSample> live = LiveSamples();
  ASSERT_EQ(live.size(), 1u);
  ASSERT_EQ(live[0].depth, 2u);
  EXPECT_EQ(live[0].frames[0], Stage::kSplit);
  EXPECT_EQ(live[0].frames[1], Stage::kSolver);
  EXPECT_EQ(live[0].Top(), Stage::kSolver);
}

TEST_F(StageStackTest, SwitchRetargetsInnermostFrame) {
  StageScope outer(Stage::kSplit);
  StageScope inner(Stage::kFrequency);
  inner.Switch(Stage::kIsobar);
  const std::vector<StageStackSample> live = LiveSamples();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].frames[0], Stage::kSplit);  // outer frame untouched
  EXPECT_EQ(live[0].Top(), Stage::kIsobar);
}

TEST_F(StageStackTest, DeepNestingClampsToRecordedDepth) {
  // kStageStackDepth + 2 nested scopes: the overflow frames are not
  // recorded, and unwinding restores a consistent stack.
  {
    StageScope s0(Stage::kSplit);
    StageScope s1(Stage::kFrequency);
    StageScope s2(Stage::kIdMap);
    StageScope s3(Stage::kSolver);
    StageScope s4(Stage::kIsobar);
    StageScope s5(Stage::kChecksum);
    StageScope s6(Stage::kMerge);
    StageScope s7(Stage::kSerialize);
    StageScope s8(Stage::kSolver);  // beyond the recorded window
    StageScope s9(Stage::kMerge);
    const std::vector<StageStackSample> live = LiveSamples();
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].depth, kStageStackDepth);
    EXPECT_EQ(live[0].Top(), Stage::kSerialize);
  }
  {
    StageScope again(Stage::kFrequency);
    const std::vector<StageStackSample> live = LiveSamples();
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].depth, 1u);
    EXPECT_EQ(live[0].Top(), Stage::kFrequency);
  }
}

TEST_F(StageStackTest, SamplesSeeOtherThreadsWithDistinctTids) {
  StageScope mine(Stage::kSplit);
  std::mutex mu;
  std::condition_variable cv;
  bool scoped = false;
  bool done = false;
  std::thread worker([&] {
    StageScope theirs(Stage::kSolver);
    std::unique_lock<std::mutex> lock(mu);
    scoped = true;
    cv.notify_all();
    cv.wait(lock, [&] { return done; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return scoped; });
  }
  const std::vector<StageStackSample> live = LiveSamples();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_NE(live[0].tid, live[1].tid);
  const bool solver_seen = live[0].Top() == Stage::kSolver ||
                           live[1].Top() == Stage::kSolver;
  const bool split_seen = live[0].Top() == Stage::kSplit ||
                          live[1].Top() == Stage::kSplit;
  EXPECT_TRUE(solver_seen);
  EXPECT_TRUE(split_seen);
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  }
  worker.join();
}

TEST_F(StageStackTest, StageNamesCoverTheTaxonomy) {
  EXPECT_EQ(StageName(Stage::kSplit), "split");
  EXPECT_EQ(StageName(Stage::kSolver), "solver");
  EXPECT_EQ(StageName(Stage::kSerialize), "serialize");
}

#endif  // PRIMACY_TELEMETRY_ENABLED

}  // namespace
}  // namespace primacy::telemetry
