// TSan-targeted stress over MetricsRegistry's concurrency contract:
// registration (Get*) takes a mutex and may race with other registrations,
// updates go through relaxed atomics, and RenderPrometheus snapshots the
// registry while both are in flight. Run under PRIMACY_SANITIZE=thread this
// catches lock-order and iterator-invalidation bugs the functional metrics
// tests cannot see.
#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

namespace primacy::telemetry {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kIters = 400;

TEST(MetricsRegistryStressTest, ConcurrentRegistrationUpdatesAndRender) {
  auto& registry = MetricsRegistry::Global();
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads + 2);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &bounds, t] {
      const std::string label = "worker=\"" + std::to_string(t) + "\"";
      for (std::size_t i = 0; i < kIters; ++i) {
        // Same series from every thread: registration races on first touch,
        // relaxed increments thereafter.
        registry.GetCounter("stress_shared_total").Increment();
        // Distinct series per thread under one family: concurrent inserts
        // into the registry map.
        registry.GetCounter("stress_labeled_total", label).Increment();
        registry.GetGauge("stress_depth", label).Add(t % 2 == 0 ? 1 : -1);
        registry
            .GetHistogram("stress_latency_seconds", bounds, label)
            .Observe(static_cast<double>(i % 128));
      }
    });
  }
  // Two renderers snapshot the registry while the workers mutate it.
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < 50; ++i) {
        const std::string text = registry.RenderPrometheus();
        (void)text;
      }
    });
  }
  for (auto& worker : workers) worker.join();

  if constexpr (kEnabled) {
    EXPECT_GE(registry.GetCounter("stress_shared_total").Value(),
              kThreads * kIters);
    for (std::size_t t = 0; t < kThreads; ++t) {
      const std::string label = "worker=\"" + std::to_string(t) + "\"";
      EXPECT_GE(registry.GetCounter("stress_labeled_total", label).Value(),
                kIters);
      EXPECT_EQ(
          registry.GetHistogram("stress_latency_seconds", bounds, label)
              .Count(),
          kIters);
    }
  }
}

TEST(MetricsRegistryStressTest, ConcurrentResolveReturnsOneInstance) {
  auto& registry = MetricsRegistry::Global();
  std::vector<Counter*> resolved(kThreads, nullptr);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &resolved, t] {
      resolved[t] =
          &registry.GetCounter("stress_resolve_total", "shard=\"x\"");
    });
  }
  for (auto& worker : workers) worker.join();
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(resolved[t], resolved[0])
        << "racing registrations must converge on one metric object";
  }
}

}  // namespace
}  // namespace primacy::telemetry
