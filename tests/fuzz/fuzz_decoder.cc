// libFuzzer entry point for every PRIMACY decode surface. Build with
// -DPRIMACY_FUZZ=ON (clang only) and run:
//
//   ./build/fuzz/fuzz_decoder fuzz-corpus tests/golden/data -max_total_time=30
//
// The golden corpus doubles as the seed corpus: valid v1/v2/v3, stored, and
// checkpoint bytes give the fuzzer real structure to mutate. The contract
// mirrors the CTest corruption harness: typed decode errors
// (CorruptStreamError/InvalidArgumentError) and allocation failures are
// expected outcomes; any other escape — crash, hang, sanitizer report,
// uncaught exception type — is a finding.
#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>

#include "core/primacy_codec.h"
#include "core/streaming.h"
#include "store/checkpoint_store.h"
#include "util/bytes.h"
#include "util/error.h"

namespace {

using namespace primacy;

template <typename Fn>
void Expecting(Fn&& fn) {
  try {
    fn();
  } catch (const CorruptStreamError&) {
  } catch (const InvalidArgumentError&) {
  } catch (const std::bad_alloc&) {
  } catch (const std::length_error&) {
  }
  // Anything else propagates and libFuzzer records the input as a crash.
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const ByteSpan stream(reinterpret_cast<const std::byte*>(data), size);
  const PrimacyDecompressor decompressor;

  Expecting([&] { decompressor.DecompressBytes(stream); });
  Expecting([&] {
    // Range geometry derived from the input so the fuzzer can steer it.
    const std::uint64_t first = size > 0 ? data[0] * 7u : 0;
    const std::uint64_t count = size > 1 ? data[1] * 3u : 1;
    decompressor.DecompressBytesRange(stream, first, count);
  });
  Expecting([&] {
    PrimacyStreamReader reader(stream);
    Bytes sink;
    while (reader.NextChunk(sink)) {
      sink.clear();  // bound memory: structure, not content, is under test
    }
  });
  Expecting([&] {
    const CheckpointReader reader(stream);
    reader.ReadAllRaw();
    reader.VerifyAll();
  });
  // Never throws by contract — outside Expecting on purpose.
  VerifyStream(stream);
  return 0;
}
