#include <gtest/gtest.h>

#include "compress/frame.h"
#include "compress/registry.h"
#include "core/builtin_codecs.h"
#include "deflate/deflate.h"
#include "util/error.h"

namespace primacy {
namespace {

TEST(RegistryTest, BuiltinCodecsAreRegistered) {
  RegisterBuiltinCodecs();
  for (const char* name :
       {"deflate", "deflate-fast", "lzfast", "bwt", "fpc", "fpz"}) {
    EXPECT_TRUE(CodecRegistry::Global().Contains(name)) << name;
    const auto codec = CreateCodec(name);
    EXPECT_EQ(codec->name(), name);
  }
}

TEST(RegistryTest, RegisterBuiltinCodecsIsIdempotent) {
  RegisterBuiltinCodecs();
  RegisterBuiltinCodecs();
  SUCCEED();
}

TEST(RegistryTest, UnknownCodecThrows) {
  EXPECT_THROW(CreateCodec("no-such-codec"), InvalidArgumentError);
}

TEST(RegistryTest, DuplicateRegistrationThrows) {
  RegisterBuiltinCodecs();
  EXPECT_THROW(CodecRegistry::Global().Register(
                   "deflate", [] { return std::make_unique<DeflateCodec>(); }),
               InvalidArgumentError);
}

TEST(RegistryTest, NamesAreSorted) {
  RegisterBuiltinCodecs();
  const auto names = CodecRegistry::Global().Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_GE(names.size(), 6u);
}

TEST(FrameTest, RoundTripsThroughRegistry) {
  RegisterBuiltinCodecs();
  const DeflateCodec codec;
  const Bytes input = BytesFromString(
      "frame me frame me frame me frame me frame me frame me");
  const Bytes frame = CompressToFrame(codec, input);
  EXPECT_EQ(DecompressFrame(frame), input);
}

TEST(FrameTest, ParseExposesMetadata) {
  const DeflateCodec codec;
  const Bytes input(5000, std::byte{3});
  const Bytes frame = CompressToFrame(codec, input);
  const ParsedFrame parsed = ParseFrame(frame);
  EXPECT_EQ(parsed.info.codec_name, "deflate");
  EXPECT_EQ(parsed.info.original_bytes, input.size());
  EXPECT_EQ(parsed.info.payload_bytes, parsed.payload.size());
}

TEST(FrameTest, BadMagicRejected) {
  Bytes garbage(16, std::byte{0x77});
  EXPECT_THROW(ParseFrame(garbage), CorruptStreamError);
}

TEST(FrameTest, WrongVersionRejected) {
  const DeflateCodec codec;
  Bytes frame = CompressToFrame(codec, BytesFromString("x"));
  frame[4] = std::byte{99};  // version byte follows the 4-byte magic
  EXPECT_THROW(ParseFrame(frame), CorruptStreamError);
}

TEST(FrameTest, SizeLieDetected) {
  RegisterBuiltinCodecs();
  const DeflateCodec codec;
  const Bytes input = BytesFromString("truthful content");
  const Bytes payload = codec.Compress(input);
  const Bytes frame = WrapFrame("deflate", input.size() + 1, payload);
  EXPECT_THROW(DecompressFrame(frame), CorruptStreamError);
}

}  // namespace
}  // namespace primacy
