#include "fpc/fpc_codec.h"

#include <gtest/gtest.h>

#include <cmath>

#include "codec_test_util.h"
#include "deflate/deflate.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

Bytes DoubleBytes(const std::vector<double>& values) {
  return ToBytes(AsBytes(values));
}

TEST(FpcTest, ConstantStreamCompressesToHeadersOnly) {
  const std::vector<double> values(10000, 42.5);
  const FpcCodec codec;
  const Bytes compressed = codec.Compress(DoubleBytes(values));
  // After warmup the FCM prediction is exact: residual 0 bytes, only the
  // packed 4-bit headers remain (~0.5 bytes per value).
  EXPECT_LT(compressed.size(), values.size());
  EXPECT_EQ(codec.Decompress(compressed), DoubleBytes(values));
}

TEST(FpcTest, LinearRampIsPredictedByDfcm) {
  // Constant stride: DFCM's delta table predicts exactly after warmup.
  std::vector<double> values(20000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 + static_cast<double>(i) * 1e-8;
  }
  const FpcCodec codec;
  const Bytes raw = DoubleBytes(values);
  const Bytes compressed = codec.Compress(raw);
  EXPECT_LT(compressed.size(), raw.size() / 4);
  EXPECT_EQ(codec.Decompress(compressed), raw);
}

TEST(FpcTest, PermutationDestroysPrediction) {
  std::vector<double> values(50000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 + static_cast<double>(i) * 1e-8;
  }
  // Shuffle deterministically.
  Rng rng(7);
  for (std::size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1], values[rng.NextBelow(i)]);
  }
  const FpcCodec codec;
  const Bytes raw = DoubleBytes(values);
  const Bytes ordered_size_probe = codec.Compress(raw);
  // Permuted ramp: deltas are large and erratic; far worse than ordered.
  std::vector<double> ordered(values);
  std::sort(ordered.begin(), ordered.end());
  const Bytes ordered_compressed = codec.Compress(DoubleBytes(ordered));
  EXPECT_GT(ordered_size_probe.size(), ordered_compressed.size() * 2);
}

TEST(FpcTest, TableBitsSweepRoundTrips) {
  const Bytes data = testing::AllInputGenerators()[5].make(100000, 9);
  for (const unsigned bits : {4u, 8u, 16u, 20u}) {
    const FpcCodec codec(bits);
    EXPECT_EQ(codec.Decompress(codec.Compress(data)), data) << bits;
  }
}

TEST(FpcTest, InvalidTableBitsRejected) {
  EXPECT_THROW(FpcCodec codec(3), InvalidArgumentError);
  EXPECT_THROW(FpcCodec codec(25), InvalidArgumentError);
}

TEST(FpcTest, LargerTablesNeverHurtMuchOnMixedStreams) {
  // More context capacity should generally help (or tie) on data with many
  // recurring contexts.
  Rng rng(11);
  std::vector<double> values(100000);
  double x = 1.0;
  for (auto& v : values) {
    x = 0.999 * x + 0.001 + rng.NextGaussian() * 1e-6;
    v = x;
  }
  const Bytes raw = DoubleBytes(values);
  const std::size_t small = FpcCodec(6).Compress(raw).size();
  const std::size_t large = FpcCodec(20).Compress(raw).size();
  EXPECT_LE(large, small + small / 10);
}

TEST(FpcTest, NonAlignedTailStoredVerbatim) {
  Bytes data = DoubleBytes(std::vector<double>(100, 3.25));
  data.push_back(0xAB_b);
  data.push_back(0xCD_b);
  const FpcCodec codec;
  const Bytes restored = codec.Decompress(codec.Compress(data));
  EXPECT_EQ(restored, data);
}

TEST(FpcTest, BadTableBitsInStreamRejected) {
  const FpcCodec codec;
  Bytes compressed = codec.Compress(DoubleBytes({1.0, 2.0, 3.0}));
  // Byte layout: varint(24) = 1 byte, then table_bits.
  compressed[1] = std::byte{99};
  EXPECT_THROW(codec.Decompress(compressed), CorruptStreamError);
}

TEST(FpcTest, TrailingGarbageRejected) {
  const FpcCodec codec;
  Bytes compressed = codec.Compress(DoubleBytes({1.0, 2.0, 3.0, 4.0}));
  compressed.push_back(0_b);
  EXPECT_THROW(codec.Decompress(compressed), CorruptStreamError);
}

TEST(FpcTest, ThroughputIsOrdersAboveDeflateClass) {
  // FPC's selling point: hundreds of MB/s. Compare relative to the
  // deflate-class codec on the same buffer so the assertion holds under
  // sanitizer/debug slowdowns too.
  const Bytes data = testing::AllInputGenerators()[6].make(2000000, 12);
  const FpcCodec fpc;
  const DeflateCodec deflate;
  const CodecMeasurement fm = MeasureCodec(fpc, data);
  const CodecMeasurement dm = MeasureCodec(deflate, data);
  EXPECT_GT(fm.CompressMBps(), 3.0 * dm.CompressMBps());
}

}  // namespace
}  // namespace primacy
