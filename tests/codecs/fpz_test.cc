#include "fpzip_like/fpz_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "codec_test_util.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

Bytes DoubleBytes(const std::vector<double>& values) {
  return ToBytes(AsBytes(values));
}

/// Smooth 2-D field: f(x, y) = sin-ish surface plus small noise; row-major.
std::vector<double> SmoothField2D(std::size_t nx, std::size_t ny,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> field(nx * ny);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      field[y * nx + x] =
          std::sin(0.01 * static_cast<double>(x)) *
              std::cos(0.02 * static_cast<double>(y)) +
          rng.NextGaussian() * 1e-9;
    }
  }
  return field;
}

TEST(FpzTest, Grid1DSmoothSeriesCompresses) {
  Rng rng(1);
  std::vector<double> values(50000);
  double x = 1.0;
  for (auto& v : values) {
    x += rng.NextGaussian() * 1e-9;
    v = x;
  }
  const FpzCodec codec;
  const Bytes raw = DoubleBytes(values);
  const Bytes compressed = codec.Compress(raw);
  EXPECT_LT(compressed.size(), raw.size() / 2);
  EXPECT_EQ(codec.Decompress(compressed), raw);
}

TEST(FpzTest, Grid2DBeatsGrid1DOnPlanarField) {
  // A field varying along y as well as x: the 2-D Lorenzo predictor sees the
  // north/northwest neighbours and should beat the 1-D stream predictor.
  const std::size_t nx = 256, ny = 128;
  const auto field = SmoothField2D(nx, ny, 2);
  const Bytes raw = DoubleBytes(field);
  const auto codec_1d = FpzCodec::Grid1D();
  const auto codec_2d = FpzCodec::Grid2D(nx);
  const Bytes c1 = codec_1d.Compress(raw);
  const Bytes c2 = codec_2d.Compress(raw);
  EXPECT_LE(c2.size(), c1.size());
  EXPECT_EQ(codec_2d.Decompress(c2), raw);
}

TEST(FpzTest, Grid3DRoundTripsVolumes) {
  const std::size_t nx = 16, ny = 16, nz = 12;
  Rng rng(3);
  std::vector<double> volume(nx * ny * nz);
  for (std::size_t i = 0; i < volume.size(); ++i) {
    volume[i] = static_cast<double>(i % 97) + rng.NextDouble() * 1e-6;
  }
  const auto codec = FpzCodec::Grid3D(nx, ny);
  const Bytes raw = DoubleBytes(volume);
  EXPECT_EQ(codec.Decompress(codec.Compress(raw)), raw);
}

TEST(FpzTest, GridShorterThanOneRowRoundTrips) {
  const auto codec = FpzCodec::Grid2D(1000);  // row longer than the stream
  const Bytes raw = DoubleBytes(std::vector<double>(10, 1.25));
  EXPECT_EQ(codec.Decompress(codec.Compress(raw)), raw);
}

TEST(FpzTest, EntropyStageExploitsRepetitiveResiduals) {
  // Exact arithmetic ramp: residuals are identical every step, so the
  // entropy stage (standing in for fpzip's range coder) must collapse them.
  std::vector<double> values(50000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  const FpzCodec codec;
  const Bytes raw = DoubleBytes(values);
  const Bytes compressed = codec.Compress(raw);
  EXPECT_LT(compressed.size(), raw.size() / 6);
  EXPECT_EQ(codec.Decompress(compressed), raw);
}

TEST(FpzTest, OrderMattersUnlikeFrequencyMethods) {
  Rng rng(4);
  std::vector<double> values(40000);
  double x = 1.0;
  for (auto& v : values) {
    x += 1e-8 + rng.NextGaussian() * 1e-10;
    v = x;
  }
  const FpzCodec codec;
  const std::size_t ordered = codec.Compress(DoubleBytes(values)).size();
  auto shuffled = values;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBelow(i)]);
  }
  const std::size_t permuted = codec.Compress(DoubleBytes(shuffled)).size();
  EXPECT_GT(permuted, ordered + ordered / 4);
}

TEST(FpzTest, ZeroExtentInStreamRejected) {
  const FpzCodec codec;
  // A compressible ramp so the stream is NOT the stored fallback.
  std::vector<double> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  Bytes compressed = codec.Compress(DoubleBytes(values));
  // Layout: varint(8000) = 2 bytes, dims = 1 byte, then varint nx; zeroing
  // the first nx byte terminates the varint at value 0.
  ASSERT_EQ(static_cast<unsigned>(compressed[2]), 1u);  // dims
  compressed[3] = 0_b;
  EXPECT_THROW(codec.Decompress(compressed), CorruptStreamError);
}

TEST(FpzTest, BadDimsRejected) {
  const FpzCodec codec;
  std::vector<double> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  Bytes compressed = codec.Compress(DoubleBytes(values));
  compressed[2] = std::byte{7};  // dims byte after the 2-byte size varint
  EXPECT_THROW(codec.Decompress(compressed), CorruptStreamError);
}

TEST(FpzTest, HeaderResidualConsistencyEnforced) {
  const FpzCodec codec;
  Bytes compressed = codec.Compress(DoubleBytes(
      std::vector<double>{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5}));
  // Truncating the stream must be detected (either block framing or the
  // residual-consumption check).
  compressed.resize(compressed.size() - 3);
  EXPECT_THROW(codec.Decompress(compressed), CorruptStreamError);
}

}  // namespace
}  // namespace primacy
