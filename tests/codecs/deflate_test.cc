#include "deflate/deflate.h"

#include <gtest/gtest.h>

#include "codec_test_util.h"
#include "util/error.h"
#include "util/stats.h"

namespace primacy {
namespace {

using testing::AllInputGenerators;

TEST(DeflateTest, CompressesRepeatedPhrasesWell) {
  const DeflateCodec codec;
  const Bytes input = AllInputGenerators()[4].make(200000, 1);
  const Bytes compressed = codec.Compress(input);
  // Heavily repetitive text: at least 5x.
  EXPECT_LT(compressed.size(), input.size() / 5);
}

TEST(DeflateTest, CompressesSkewedBytesNearEntropy) {
  const DeflateCodec codec;
  const Bytes input = AllInputGenerators()[3].make(200000, 2);
  const double entropy = ByteEntropyBits(input);
  const Bytes compressed = codec.Compress(input);
  const double bits_per_byte =
      8.0 * static_cast<double>(compressed.size()) /
      static_cast<double>(input.size());
  // Within 15% of the order-0 entropy (LZ matches can beat it).
  EXPECT_LT(bits_per_byte, entropy * 1.15 + 0.2);
}

TEST(DeflateTest, RandomDataFallsBackToStored) {
  const DeflateCodec codec;
  const Bytes input = AllInputGenerators()[2].make(100000, 3);
  const Bytes compressed = codec.Compress(input);
  EXPECT_LE(compressed.size(), input.size() + 16);
  EXPECT_EQ(codec.Decompress(compressed), input);
}

TEST(DeflateTest, FastPresetIsFasterButNoSmaller) {
  const DeflateCodec standard;
  const DeflateFastCodec fast;
  const Bytes input = AllInputGenerators()[4].make(500000, 4);
  const Bytes small = standard.Compress(input);
  const Bytes quick = fast.Compress(input);
  // The thorough parse should essentially never lose to the fast one; allow
  // a 2% slack since lazy matching is a heuristic, not a guarantee.
  EXPECT_LE(small.size(), quick.size() + quick.size() / 50);
  EXPECT_EQ(fast.Decompress(quick), input);
}

TEST(DeflateTest, MultiBlockStreamsRoundTrip) {
  // Force multiple Huffman blocks (> 2^16 tokens of mostly literals).
  const Bytes input = AllInputGenerators()[2].make(300000, 5);
  const DeflateCodec codec;
  EXPECT_EQ(codec.Decompress(codec.Compress(input)), input);
}

TEST(DeflateTest, StatisticsShiftAcrossBlocksHandled) {
  // First half noise, second half zeros: per-block codes must adapt.
  Bytes input = AllInputGenerators()[2].make(150000, 6);
  AppendBytes(input, Bytes(150000, 0_b));
  const DeflateCodec codec;
  const Bytes compressed = codec.Compress(input);
  EXPECT_EQ(codec.Decompress(compressed), input);
  // The zero half must compress to almost nothing.
  EXPECT_LT(compressed.size(), 160000u);
}

TEST(DeflateTest, BadBlockTypeRejected) {
  const DeflateCodec codec;
  Bytes stream;
  stream.push_back(5_b);   // varint original_size = 5
  stream.push_back(9_b);   // invalid block type
  EXPECT_THROW(codec.Decompress(stream), CorruptStreamError);
}

TEST(DeflateTest, DistanceBeyondOutputRejected) {
  // Hand-craft: original size 4 but the first token is a match — no output
  // yet, so any distance is invalid. Easiest via corrupting a real stream is
  // flaky; instead check the empty-output+match path through a stored-size
  // lie: declared size smaller than actual expansion.
  const DeflateCodec codec;
  const Bytes input(1000, 1_b);
  Bytes compressed = codec.Compress(input);
  // Shrink the declared original size (first varint byte(s)).
  // 1000 encodes as 0xE8 0x07; rewrite to 10 (0x0A) and pad to keep parsing.
  ASSERT_EQ(static_cast<unsigned>(compressed[0]), 0xE8u);
  ASSERT_EQ(static_cast<unsigned>(compressed[1]), 0x07u);
  Bytes lied;
  lied.push_back(0x0a_b);
  AppendBytes(lied, ByteSpan(compressed).subspan(2));
  EXPECT_THROW(codec.Decompress(lied), CorruptStreamError);
}

TEST(DeflateTest, EmptyInputProducesDecodableStream) {
  const DeflateCodec codec;
  const Bytes compressed = codec.Compress({});
  EXPECT_LE(compressed.size(), 2u);
  EXPECT_TRUE(codec.Decompress(compressed).empty());
}

}  // namespace
}  // namespace primacy
