// Shared fixtures for the cross-codec roundtrip suite: the list of codecs
// under test and a family of adversarial input generators.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "util/bytes.h"
#include "util/byte_matrix.h"
#include "util/rng.h"

namespace primacy::testing {

struct CodecFactory {
  std::string label;
  std::function<std::unique_ptr<Codec>()> make;
};

/// Every codec in the library; defined in codec_roundtrip_test.cc and kept in
/// sync as codecs are added.
std::vector<CodecFactory> AllCodecFactories();

struct InputGenerator {
  std::string label;
  std::function<Bytes(std::size_t, std::uint64_t)> make;
};

inline std::vector<InputGenerator> AllInputGenerators() {
  return {
      {"zeros", [](std::size_t n, std::uint64_t) { return Bytes(n, std::byte{0}); }},
      {"constant_aa",
       [](std::size_t n, std::uint64_t) { return Bytes(n, std::byte{0xaa}); }},
      {"random",
       [](std::size_t n, std::uint64_t seed) {
         Rng rng(seed);
         Bytes out(n);
         for (auto& b : out) b = static_cast<std::byte>(rng.NextBelow(256));
         return out;
       }},
      {"skewed_bytes",
       [](std::size_t n, std::uint64_t seed) {
         Rng rng(seed);
         Bytes out(n);
         for (auto& b : out) {
           b = static_cast<std::byte>(rng.NextSkewed(256, 0.85));
         }
         return out;
       }},
      {"repeated_phrases",
       [](std::size_t n, std::uint64_t seed) {
         Rng rng(seed);
         const Bytes phrase = BytesFromString("scientific floating point ");
         Bytes out;
         while (out.size() < n) {
           if (rng.NextBool(0.8)) {
             AppendBytes(out, phrase);
           } else {
             out.push_back(static_cast<std::byte>(rng.NextBelow(256)));
           }
         }
         out.resize(n);
         return out;
       }},
      {"smooth_doubles",
       [](std::size_t n, std::uint64_t seed) {
         // Slowly-varying time series, the predictive coders' home turf.
         Rng rng(seed);
         std::vector<double> values(n / 8 + 1);
         double x = 1.0;
         for (auto& v : values) {
           x += rng.NextGaussian() * 1e-3;
           v = x;
         }
         Bytes out = DoublesToBigEndianRows(values);
         out.resize(n);
         return out;
       }},
      {"noisy_doubles",
       [](std::size_t n, std::uint64_t seed) {
         Rng rng(seed);
         std::vector<double> values(n / 8 + 1);
         for (auto& v : values) {
           v = rng.NextGaussian() * 1e6;
         }
         Bytes out = DoublesToBigEndianRows(values);
         out.resize(n);
         return out;
       }},
      {"ascending_bytes",
       [](std::size_t n, std::uint64_t) {
         Bytes out(n);
         for (std::size_t i = 0; i < n; ++i) {
           out[i] = static_cast<std::byte>(i & 0xff);
         }
         return out;
       }},
  };
}

}  // namespace primacy::testing
