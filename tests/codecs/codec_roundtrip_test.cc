// Cross-codec property suite: every codec must losslessly roundtrip every
// input family at every size, reject corrupted streams with
// CorruptStreamError (never return garbage), and never expand pathological
// inputs unreasonably.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "bwt/bwt_codec.h"
#include "core/primacy_codec.h"
#include "codec_test_util.h"
#include "compress/codec.h"
#include "deflate/deflate.h"
#include "fpc/fpc_codec.h"
#include "fpzip_like/fpz_codec.h"
#include "lzfast/lzfast.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy::testing {

std::vector<CodecFactory> AllCodecFactories() {
  return {
      {"deflate", [] { return std::make_unique<DeflateCodec>(); }},
      {"deflate-fast", [] { return std::make_unique<DeflateFastCodec>(); }},
      {"lzfast", [] { return std::make_unique<LzFastCodec>(); }},
      {"bwt", [] { return std::make_unique<BwtCodec>(); }},
      {"fpc", [] { return std::make_unique<FpcCodec>(); }},
      {"fpz", [] { return std::make_unique<FpzCodec>(); }},
      {"primacy", [] { return std::make_unique<PrimacyCodec>(); }},
  };
}

namespace {

class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {
 protected:
  std::unique_ptr<Codec> MakeCodec() const {
    return AllCodecFactories()[static_cast<std::size_t>(
                                   std::get<0>(GetParam()))]
        .make();
  }
  Bytes MakeInput() const {
    // Copy, not reference: AllInputGenerators() returns a temporary.
    const auto generator =
        AllInputGenerators()[static_cast<std::size_t>(std::get<1>(GetParam()))];
    return generator.make(std::get<2>(GetParam()), 1234);
  }
};

TEST_P(CodecRoundTrip, DecompressInvertsCompress) {
  const auto codec = MakeCodec();
  const Bytes input = MakeInput();
  const Bytes compressed = codec->Compress(input);
  EXPECT_EQ(codec->Decompress(compressed), input);
}

TEST_P(CodecRoundTrip, NeverExpandsBeyondSmallOverhead) {
  const auto codec = MakeCodec();
  const Bytes input = MakeInput();
  const Bytes compressed = codec->Compress(input);
  EXPECT_LE(compressed.size(), input.size() + 64);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllInputs, CodecRoundTrip,
    ::testing::Combine(::testing::Range(0, 7), ::testing::Range(0, 8),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{7}, std::size_t{8},
                                         std::size_t{65},
                                         std::size_t{4096},
                                         std::size_t{100000})),
    [](const ::testing::TestParamInfo<std::tuple<int, int, std::size_t>>&
           info) {
      const auto codecs = AllCodecFactories();
      const auto generators = AllInputGenerators();
      std::string name =
          codecs[static_cast<std::size_t>(std::get<0>(info.param))].label +
          "_" +
          generators[static_cast<std::size_t>(std::get<1>(info.param))]
              .label +
          "_" + std::to_string(std::get<2>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

class CodecCorruption : public ::testing::TestWithParam<int> {};

TEST_P(CodecCorruption, TruncationIsDetected) {
  const auto codec =
      AllCodecFactories()[static_cast<std::size_t>(GetParam())].make();
  const Bytes input = AllInputGenerators()[4].make(20000, 7);  // phrases
  Bytes compressed = codec->Compress(input);
  ASSERT_GT(compressed.size(), 8u);
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(
      {
        const Bytes restored = codec->Decompress(compressed);
        // Some truncations can still parse; they must at least not
        // silently return the wrong content.
        ASSERT_NE(restored, input);
      },
      CorruptStreamError);
}

TEST_P(CodecCorruption, EmptyStreamRejected) {
  const auto codec =
      AllCodecFactories()[static_cast<std::size_t>(GetParam())].make();
  EXPECT_THROW(codec->Decompress(Bytes{}), CorruptStreamError);
}

TEST_P(CodecCorruption, RandomFlipsNeverReturnWrongData) {
  const auto codec =
      AllCodecFactories()[static_cast<std::size_t>(GetParam())].make();
  const Bytes input = AllInputGenerators()[3].make(30000, 99);  // skewed
  const Bytes compressed = codec->Compress(input);
  Rng rng(555);
  for (int trial = 0; trial < 25; ++trial) {
    Bytes corrupted = compressed;
    const std::size_t pos = rng.NextBelow(corrupted.size());
    corrupted[pos] ^= static_cast<std::byte>(1 + rng.NextBelow(255));
    try {
      const Bytes restored = codec->Decompress(corrupted);
      // A flip in entropy-coded payload bits may legitimately decode to
      // different bytes of the same length; what must never happen is a
      // crash or an out-of-contract result type. If sizes differ the codec
      // should have thrown.
      EXPECT_EQ(restored.size(), input.size());
    } catch (const Error&) {
      // Detected corruption: the expected outcome.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecCorruption, ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name =
                               AllCodecFactories()
                                   [static_cast<std::size_t>(info.param)]
                                       .label;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(CodecMeasurementTest, RatioAndThroughputFormulas) {
  CodecMeasurement m;
  m.original_bytes = 2000000;
  m.compressed_bytes = 1000000;
  m.compress_seconds = 0.5;
  m.decompress_seconds = 0.25;
  EXPECT_DOUBLE_EQ(m.CompressionRatio(), 2.0);
  EXPECT_DOUBLE_EQ(m.CompressMBps(), 4.0);
  EXPECT_DOUBLE_EQ(m.DecompressMBps(), 8.0);
}

TEST(MeasureCodecTest, ProducesConsistentMeasurement) {
  const DeflateCodec codec;
  const Bytes input = AllInputGenerators()[4].make(100000, 3);
  const CodecMeasurement m = MeasureCodec(codec, input);
  EXPECT_EQ(m.original_bytes, input.size());
  EXPECT_GT(m.compressed_bytes, 0u);
  EXPECT_GT(m.CompressionRatio(), 1.0);  // phrases compress
  EXPECT_GE(m.compress_seconds, 0.0);
}

}  // namespace
}  // namespace primacy::testing
