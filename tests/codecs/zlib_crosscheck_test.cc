// Cross-validation against the real zlib: our from-scratch deflate-class
// codec stands in for zlib throughout the reproduction, so its compression
// ratio must track zlib's on representative data (DESIGN.md substitution
// table). We require agreement within a generous band, not equality.
#include <gtest/gtest.h>
#include <zlib.h>

#include "codec_test_util.h"
#include "deflate/deflate.h"
#include "util/error.h"

namespace primacy {
namespace {

std::size_t ZlibCompressedSize(ByteSpan data, int level) {
  uLongf bound = compressBound(static_cast<uLong>(data.size()));
  std::vector<Bytef> out(bound);
  const int rc =
      compress2(out.data(), &bound, reinterpret_cast<const Bytef*>(data.data()),
                static_cast<uLong>(data.size()), level);
  if (rc != Z_OK) throw InternalError("zlib compress2 failed");
  return bound;
}

class ZlibCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(ZlibCrossCheck, RatioWithinBandOfZlib) {
  // Copy, not reference: AllInputGenerators() returns a temporary.
  const auto generator =
      testing::AllInputGenerators()[static_cast<std::size_t>(GetParam())];
  const Bytes input = generator.make(300000, 42);
  if (input.empty()) GTEST_SKIP();

  const std::size_t zlib_size = ZlibCompressedSize(input, 6);
  const DeflateCodec codec;
  const std::size_t our_size = codec.Compress(input).size();

  const double zlib_ratio = static_cast<double>(input.size()) /
                            static_cast<double>(zlib_size);
  const double our_ratio = static_cast<double>(input.size()) /
                           static_cast<double>(our_size);
  // Our codec must land within [0.7, 1.5]x of zlib's ratio: same compressor
  // class, different container overheads and parse heuristics.
  EXPECT_GT(our_ratio, 0.7 * zlib_ratio)
      << "input=" << generator.label << " zlib=" << zlib_size
      << " ours=" << our_size;
  EXPECT_LT(our_ratio, 1.5 * zlib_ratio + 0.5)
      << "input=" << generator.label;
}

INSTANTIATE_TEST_SUITE_P(AllInputs, ZlibCrossCheck, ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return testing::AllInputGenerators()
                               [static_cast<std::size_t>(info.param)]
                                   .label;
                         });

}  // namespace
}  // namespace primacy
