#include "lzfast/lzfast.h"

#include <gtest/gtest.h>

#include "codec_test_util.h"
#include "deflate/deflate.h"
#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

TEST(LzFastTest, LongLiteralRunsUseExtendedLengths) {
  // > 15 literals forces the 255-run extension path.
  Rng rng(1);
  Bytes data(1000);
  for (auto& b : data) b = static_cast<std::byte>(rng.NextBelow(256));
  const LzFastCodec codec;
  EXPECT_EQ(codec.Decompress(codec.Compress(data)), data);
}

TEST(LzFastTest, LongMatchesUseExtendedLengths) {
  // A single byte repeated: one literal + one enormous overlapping match,
  // whose length needs many extension bytes.
  const Bytes data(100000, 9_b);
  const LzFastCodec codec;
  const Bytes compressed = codec.Compress(data);
  EXPECT_LT(compressed.size(), 500u);
  EXPECT_EQ(codec.Decompress(compressed), data);
}

TEST(LzFastTest, OverlappingMatchReplicates) {
  Bytes data = BytesFromString("abab");
  for (int i = 0; i < 10; ++i) AppendBytes(data, BytesFromString("abab"));
  const LzFastCodec codec;
  EXPECT_EQ(codec.Decompress(codec.Compress(data)), data);
}

TEST(LzFastTest, MatchBeyond64KWindowNotUsed) {
  // The same phrase 100 KB apart: beyond the 16-bit distance limit, so the
  // encoder must re-emit it as literals or nearer matches — correctness is
  // what matters.
  Bytes data = BytesFromString("unique-phrase-here");
  AppendBytes(data, testing::AllInputGenerators()[2].make(100000, 3));
  AppendBytes(data, BytesFromString("unique-phrase-here"));
  const LzFastCodec codec;
  EXPECT_EQ(codec.Decompress(codec.Compress(data)), data);
}

TEST(LzFastTest, IncompressibleInputFallsBackToStored) {
  const Bytes data = testing::AllInputGenerators()[2].make(50000, 4);
  const LzFastCodec codec;
  const Bytes compressed = codec.Compress(data);
  EXPECT_LE(compressed.size(), data.size() + 16);
  EXPECT_EQ(codec.Decompress(compressed), data);
}

TEST(LzFastTest, IsSubstantiallyFasterThanDeflateClass) {
  // The whole point of the lzo class. Compare on compressible data.
  const Bytes data = testing::AllInputGenerators()[4].make(2000000, 5);
  const LzFastCodec fast;
  const DeflateCodec slow;
  const CodecMeasurement fm = MeasureCodec(fast, data);
  const CodecMeasurement sm = MeasureCodec(slow, data);
  EXPECT_GT(fm.CompressMBps(), sm.CompressMBps());
  // And with a weaker ratio (it has no entropy stage).
  EXPECT_LE(fm.CompressionRatio(), sm.CompressionRatio() * 1.05);
}

TEST(LzFastTest, UnknownModeByteRejected) {
  Bytes stream;
  stream.push_back(8_b);  // varint size 8
  stream.push_back(7_b);  // invalid mode
  const LzFastCodec codec;
  EXPECT_THROW(codec.Decompress(stream), CorruptStreamError);
}

TEST(LzFastTest, LiteralOverrunRejected) {
  // Declared size 1 but a sequence with 5 literals.
  Bytes stream;
  stream.push_back(1_b);                           // original_size = 1
  stream.push_back(1_b);                           // mode lz
  stream.push_back(static_cast<std::byte>(5 << 4)); // 5 literals, match code 0
  for (int i = 0; i < 5; ++i) stream.push_back(0_b);
  const LzFastCodec codec;
  EXPECT_THROW(codec.Decompress(stream), CorruptStreamError);
}

TEST(LzFastTest, ZeroDistanceRejected) {
  Bytes stream;
  stream.push_back(10_b);  // original_size = 10
  stream.push_back(1_b);   // mode lz
  stream.push_back(static_cast<std::byte>((1 << 4) | 0));  // 1 literal, match 4
  stream.push_back(65_b);  // the literal
  stream.push_back(0_b);   // distance low byte = 0
  stream.push_back(0_b);   // distance high byte = 0
  const LzFastCodec codec;
  EXPECT_THROW(codec.Decompress(stream), CorruptStreamError);
}

TEST(LzFastTest, StoredModeTrailingBytesRejected) {
  const LzFastCodec codec;
  const Bytes data = testing::AllInputGenerators()[2].make(1000, 6);
  Bytes compressed = codec.Compress(data);  // stored (random data)
  compressed.push_back(0_b);
  EXPECT_THROW(codec.Decompress(compressed), CorruptStreamError);
}

}  // namespace
}  // namespace primacy
