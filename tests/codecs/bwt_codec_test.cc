#include "bwt/bwt_codec.h"

#include <gtest/gtest.h>

#include "codec_test_util.h"
#include "deflate/deflate.h"
#include "util/error.h"

namespace primacy {
namespace {

TEST(BwtCodecTest, MultiBlockStreamsRoundTrip) {
  // Input spanning several 128 KiB blocks.
  const Bytes data = testing::AllInputGenerators()[4].make(400000, 1);
  const BwtCodec codec;
  EXPECT_EQ(codec.Decompress(codec.Compress(data)), data);
}

TEST(BwtCodecTest, CustomBlockSizeRoundTrips) {
  const Bytes data = testing::AllInputGenerators()[4].make(100000, 2);
  for (const std::size_t block : {1024u, 4096u, 1u << 16}) {
    const BwtCodec codec(block);
    EXPECT_EQ(codec.Decompress(codec.Compress(data)), data)
        << "block=" << block;
  }
}

TEST(BwtCodecTest, TinyBlockSizeRejected) {
  EXPECT_THROW(BwtCodec codec(4), InvalidArgumentError);
}

TEST(BwtCodecTest, BeatsDeflateOnTextLikeData) {
  // The block-sorting class should out-compress LZ+Huffman on structured
  // repetitive data (its classic advantage).
  const Bytes data = testing::AllInputGenerators()[4].make(300000, 3);
  const BwtCodec bwt;
  const DeflateCodec deflate;
  EXPECT_LT(bwt.Compress(data).size(), deflate.Compress(data).size());
}

TEST(BwtCodecTest, IsSlowerThanDeflateClass) {
  // The trade the paper rejects bzlib2 for (Section IV-C): better ratio,
  // throughput unsuitable for in-situ use.
  const Bytes data = testing::AllInputGenerators()[4].make(500000, 4);
  const BwtCodec bwt;
  const DeflateCodec deflate;
  const CodecMeasurement bm = MeasureCodec(bwt, data);
  const CodecMeasurement dm = MeasureCodec(deflate, data);
  EXPECT_LT(bm.CompressMBps(), dm.CompressMBps());
}

TEST(BwtCodecTest, RandomDataFallsBackToStored) {
  const Bytes data = testing::AllInputGenerators()[2].make(100000, 5);
  const BwtCodec codec;
  const Bytes compressed = codec.Compress(data);
  EXPECT_LE(compressed.size(), data.size() + 16);
  EXPECT_EQ(codec.Decompress(compressed), data);
}

TEST(BwtCodecTest, BlockLengthLieRejected) {
  const Bytes data = testing::AllInputGenerators()[4].make(50000, 6);
  const BwtCodec codec;
  Bytes compressed = codec.Compress(data);
  // The first varint after [size, mode] is the first block's length; bump it.
  // size 50000 encodes as 3 varint bytes, mode 1 byte => offset 4.
  ASSERT_GT(compressed.size(), 5u);
  compressed[4] = static_cast<std::byte>(
      static_cast<std::uint8_t>(compressed[4]) ^ 0x01);
  EXPECT_THROW(codec.Decompress(compressed), CorruptStreamError);
}

TEST(BwtCodecTest, UnknownModeRejected) {
  Bytes stream;
  stream.push_back(4_b);
  stream.push_back(9_b);
  const BwtCodec codec;
  EXPECT_THROW(codec.Decompress(stream), CorruptStreamError);
}

TEST(BwtCodecTest, HighlyStructuredDataCompressesExtremely) {
  Bytes data;
  for (int i = 0; i < 20000; ++i) {
    AppendBytes(data, BytesFromString("abracadabra"));
  }
  const BwtCodec codec;
  const Bytes compressed = codec.Compress(data);
  EXPECT_LT(compressed.size(), data.size() / 50);
  EXPECT_EQ(codec.Decompress(compressed), data);
}

}  // namespace
}  // namespace primacy
