#include "transport/server.h"

#include <unistd.h>

#include <array>
#include <deque>
#include <exception>
#include <future>
#include <string>
#include <utility>

#include "telemetry/metrics.h"
#include "util/error.h"

namespace primacy::transport {
namespace {

constexpr std::array<double, 9> kLatencySecondsBounds = {
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0};

std::string OpLabel(Op op) {
  return std::string("op=\"") + OpName(op) + "\"";
}

std::string KindLabel(const char* kind) {
  return std::string("kind=\"") + kind + "\"";
}

void CountError(const char* kind) {
  telemetry::MetricsRegistry::Global()
      .GetCounter("primacy_transport_errors_total", KindLabel(kind))
      .Increment();
}

}  // namespace

/// Per-connection state. The reader and writer threads share the reply
/// queue; everything mutable is under `mu` except the fds (fixed after
/// construction) and `done` (the writer's last store, read by the reaper).
struct TransportServer::Connection {
  explicit Connection(int conn_fd) : fd(conn_fd) {}

  /// One reply-to-be, queued in arrival order. Either `frame` is already
  /// encoded (`ready`, used for Ping/Stats and error frames) or `future`
  /// holds the service's pending answer.
  struct PendingReply {
    bool ready = false;
    Bytes frame;
    std::uint64_t request_id = 0;
    Op op = Op::kPing;
    std::uint64_t start_ns = 0;
    std::future<service::ServiceResponse> future;
  };

  UniqueFd fd;
  /// Interrupts the reader's idle poll (server drain or writer failure).
  WakePipe stop;
  std::atomic<bool> done{false};

  primacy::Mutex mu;
  // Pairs with `mu`: signaled on every queue transition (push, pop,
  // reader_done, dead) for both the writer and a cap-paused reader.
  primacy::CondVar cv;
  std::deque<PendingReply> queue PRIMACY_GUARDED_BY(mu);
  bool reader_done PRIMACY_GUARDED_BY(mu) = false;
  bool dead PRIMACY_GUARDED_BY(mu) = false;

  std::thread reader;
  std::thread writer;
};

TransportServer::TransportServer(service::CompressionService& service,
                                 TransportServerOptions options)
    : service_(service), options_(std::move(options)) {
  clock_ = options_.clock != nullptr ? options_.clock
                                     : service_.options().clock;
  if (clock_ == nullptr) clock_ = &service::SystemServiceClock::Instance();
}

TransportServer::~TransportServer() { Shutdown(); }

bool TransportServer::Start(std::string* error) {
  if (started_.exchange(true)) {
    if (error) *error = "TransportServer::Start called twice";
    return false;
  }
  if (!accept_wake_.Open(error)) return false;
  const int fd = ListenUnixSocket(options_.socket_path, 128, error);
  if (fd < 0) return false;
  listen_fd_.Reset(fd);
  primacy::MutexLock lock(mu_);
  accept_thread_ = std::thread(&TransportServer::AcceptLoop, this);
  return true;
}

void TransportServer::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) return;
  // Stop accepting first: wake the accept loop and join it so no new
  // connection can appear while we drain the existing ones.
  accept_wake_.Wake();
  std::thread accept_thread;
  {
    primacy::MutexLock lock(mu_);
    accept_thread = std::move(accept_thread_);
  }
  if (accept_thread.joinable()) accept_thread.join();
  // Drain: wake every reader (no new requests), let writers flush every
  // queued reply, then join and close.
  ReapConnections(/*all=*/true);
  listen_fd_.Reset();
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
}

TransportServerStats TransportServer::Stats() const {
  TransportServerStats stats;
  stats.connections_accepted = connections_accepted_.load();
  stats.connections_rejected = connections_rejected_.load();
  stats.connections_active = connections_active_.load();
  stats.requests = requests_.load();
  stats.errors = errors_.load();
  return stats;
}

void TransportServer::AcceptLoop() {
  auto& reg = telemetry::MetricsRegistry::Global();
  for (;;) {
    int raw_fd = -1;
    const IoStatus status =
        AcceptWithWake(listen_fd_.get(), accept_wake_.read_fd(), &raw_fd);
    if (status == IoStatus::kStopped) break;
    if (status != IoStatus::kOk) {
      if (stopping_.load(std::memory_order_acquire)) break;
      errors_.fetch_add(1);
      CountError("accept");
      break;  // The listen socket is gone; spinning would burn a core.
    }
    UniqueFd conn_fd(raw_fd);
    if (stopping_.load(std::memory_order_acquire)) break;
    ReapConnections(/*all=*/false);
    if (connections_active_.load() >= options_.max_connections) {
      connections_rejected_.fetch_add(1);
      reg.GetCounter("primacy_transport_connections_rejected_total")
          .Increment();
      ErrorFrame reject;
      reject.status = WireStatus::kTooManyConnections;
      reject.retry_after_ns = options_.reject_retry_after_ns;
      reject.message = "connection limit (" +
                       std::to_string(options_.max_connections) + ") reached";
      // Best-effort courtesy reply; the close is the real answer.
      SendFrame(conn_fd.get(), EncodeErrorFrame(reject),
                IoDeadline::After(*clock_, options_.write_deadline_ns));
      continue;
    }
    auto conn = std::make_unique<Connection>(conn_fd.Release());
    std::string wake_error;
    if (!conn->stop.Open(&wake_error)) {
      errors_.fetch_add(1);
      CountError("wake_pipe");
      continue;
    }
    connections_accepted_.fetch_add(1);
    connections_active_.fetch_add(1);
    reg.GetCounter("primacy_transport_connections_total").Increment();
    reg.GetGauge("primacy_transport_connections_active").Add(1);
    Connection& ref = *conn;
    ref.reader = std::thread(&TransportServer::ReaderLoop, this,
                             std::ref(ref));
    ref.writer = std::thread(&TransportServer::WriterLoop, this,
                             std::ref(ref));
    primacy::MutexLock lock(mu_);
    connections_.push_back(std::move(conn));
  }
}

void TransportServer::ReaderLoop(Connection& conn) {
  auto& reg = telemetry::MetricsRegistry::Global();
  for (;;) {
    {
      primacy::MutexLock lock(conn.mu);
      // Pipeline cap: pausing here stops draining the socket, so kernel
      // buffers fill and the client feels backpressure.
      while (conn.queue.size() >= options_.max_pipelined_requests &&
             !conn.dead) {
        conn.cv.Wait(conn.mu);
      }
      if (conn.dead) break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    Bytes frame;
    const IoStatus status =
        RecvFrame(conn.fd.get(), &frame, kMaxFrameBytes, *clock_,
                  service::kNoDeadlineNs, options_.frame_read_deadline_ns,
                  conn.stop.read_fd());
    if (status == IoStatus::kOk) {
      reg.GetCounter("primacy_transport_bytes_read_total")
          .Increment(frame.size() + 4);
      if (!HandleFrame(conn, ByteSpan(frame))) break;
      continue;
    }
    if (status == IoStatus::kEof || status == IoStatus::kStopped) break;
    errors_.fetch_add(1);
    if (status == IoStatus::kTimeout) {
      CountError("read_timeout");
      ErrorFrame err;
      err.status = WireStatus::kBadFrame;
      err.message = "frame read deadline exceeded";
      EnqueueReady(conn, EncodeErrorFrame(err));
    } else if (status == IoStatus::kMalformed) {
      CountError("malformed_frame");
      ErrorFrame err;
      err.status = WireStatus::kBadFrame;
      err.message = "malformed frame (bad length prefix or torn frame)";
      EnqueueReady(conn, EncodeErrorFrame(err));
    } else {
      CountError("read");
    }
    break;
  }
  {
    primacy::MutexLock lock(conn.mu);
    conn.reader_done = true;
  }
  conn.cv.NotifyAll();
}

bool TransportServer::HandleFrame(Connection& conn, ByteSpan frame) {
  auto& reg = telemetry::MetricsRegistry::Global();
  DecodedFrame decoded;
  try {
    decoded = DecodeFrame(frame);
  } catch (const VersionSkewError& e) {
    errors_.fetch_add(1);
    CountError("version_skew");
    ErrorFrame err;
    err.request_id = e.request_id();
    err.status = WireStatus::kVersionSkew;
    err.message = e.what();
    EnqueueReady(conn, EncodeErrorFrame(err));
    return false;  // Nothing after a skewed frame can be trusted.
  } catch (const WireFormatError& e) {
    errors_.fetch_add(1);
    CountError("bad_frame");
    ErrorFrame err;
    err.status = WireStatus::kBadFrame;
    err.message = e.what();
    EnqueueReady(conn, EncodeErrorFrame(err));
    return false;
  }
  if (decoded.kind != FrameKind::kRequest) {
    errors_.fetch_add(1);
    CountError("bad_frame");
    ErrorFrame err;
    err.status = WireStatus::kBadFrame;
    err.message = "expected a request frame";
    EnqueueReady(conn, EncodeErrorFrame(err));
    return false;
  }
  RequestFrame& req = decoded.request;
  requests_.fetch_add(1);
  reg.GetCounter("primacy_transport_requests_total", OpLabel(req.op))
      .Increment();
  const std::uint64_t start_ns = clock_->NowNs();
  switch (req.op) {
    case Op::kPing: {
      ResponseFrame resp;
      resp.request_id = req.request_id;
      resp.op = Op::kPing;
      resp.payload = std::move(req.payload);  // echo for RTT checks
      reg.GetHistogram("primacy_transport_request_seconds",
                       kLatencySecondsBounds, OpLabel(req.op))
          .Observe(static_cast<double>(clock_->NowNs() - start_ns) * 1e-9);
      EnqueueReady(conn, EncodeResponseFrame(resp));
      return true;
    }
    case Op::kStats: {
      ResponseFrame resp;
      resp.request_id = req.request_id;
      resp.op = Op::kStats;
      resp.payload = BytesFromString(service_.StatusJson());
      reg.GetHistogram("primacy_transport_request_seconds",
                       kLatencySecondsBounds, OpLabel(req.op))
          .Observe(static_cast<double>(clock_->NowNs() - start_ns) * 1e-9);
      EnqueueReady(conn, EncodeResponseFrame(resp));
      return true;
    }
    case Op::kCompress:
    case Op::kDecompress:
    case Op::kDecompressRange: {
      Connection::PendingReply pending;
      pending.request_id = req.request_id;
      pending.op = req.op;
      pending.start_ns = start_ns;
      try {
        if (req.op == Op::kCompress) {
          pending.future =
              service_.SubmitCompress(req.tenant, std::move(req.payload));
        } else if (req.op == Op::kDecompress) {
          pending.future =
              service_.SubmitDecompress(req.tenant, std::move(req.payload));
        } else {
          pending.future = service_.SubmitDecompressRange(
              req.tenant, std::move(req.payload), req.first_element,
              req.element_count);
        }
      } catch (const Error& e) {
        // Unknown tenant / bad argument: the connection survives, the
        // request gets an error frame.
        errors_.fetch_add(1);
        CountError("submit");
        ErrorFrame err;
        err.request_id = req.request_id;
        err.op = req.op;
        err.status = WireStatus::kError;
        err.message = e.what();
        EnqueueReady(conn, EncodeErrorFrame(err));
        return true;
      }
      primacy::MutexLock lock(conn.mu);
      if (!conn.dead) {
        conn.queue.push_back(std::move(pending));
        conn.cv.NotifyAll();
      }
      return true;
    }
  }
  // Unreachable: DecodeFrame validated the op.
  errors_.fetch_add(1);
  CountError("unknown_op");
  ErrorFrame err;
  err.request_id = req.request_id;
  err.status = WireStatus::kUnknownOp;
  err.message = "unhandled op";
  EnqueueReady(conn, EncodeErrorFrame(err));
  return false;
}

void TransportServer::EnqueueReady(Connection& conn, Bytes frame) {
  Connection::PendingReply reply;
  reply.ready = true;
  reply.frame = std::move(frame);
  primacy::MutexLock lock(conn.mu);
  if (conn.dead) return;
  conn.queue.push_back(std::move(reply));
  conn.cv.NotifyAll();
}

void TransportServer::WriterLoop(Connection& conn) {
  auto& reg = telemetry::MetricsRegistry::Global();
  for (;;) {
    Connection::PendingReply reply;
    {
      primacy::MutexLock lock(conn.mu);
      while (conn.queue.empty() && !conn.reader_done) {
        conn.cv.Wait(conn.mu);
      }
      if (conn.queue.empty()) break;  // reader finished and queue drained
      reply = std::move(conn.queue.front());
      conn.queue.pop_front();
    }
    conn.cv.NotifyAll();  // free a pipeline slot for a paused reader
    Bytes encoded;
    if (reply.ready) {
      encoded = std::move(reply.frame);
    } else {
      service::ServiceResponse response;
      try {
        response = reply.future.get();
      } catch (const std::exception& e) {
        response.status = service::ServiceStatus::kError;
        response.error = e.what();
      }
      reg.GetHistogram("primacy_transport_request_seconds",
                       kLatencySecondsBounds, OpLabel(reply.op))
          .Observe(static_cast<double>(clock_->NowNs() - reply.start_ns) *
                   1e-9);
      if (response.status == service::ServiceStatus::kOk) {
        ResponseFrame resp;
        resp.request_id = reply.request_id;
        resp.op = reply.op;
        resp.payload = std::move(response.payload);
        encoded = EncodeResponseFrame(resp);
      } else {
        CountError(WireStatusName(FromServiceStatus(response.status)));
        ErrorFrame err;
        err.request_id = reply.request_id;
        err.op = reply.op;
        err.status = FromServiceStatus(response.status);
        err.retry_after_ns = response.retry_after_ns;
        err.message = response.error;
        encoded = EncodeErrorFrame(err);
      }
    }
    const IoStatus status =
        SendFrame(conn.fd.get(), ByteSpan(encoded),
                  IoDeadline::After(*clock_, options_.write_deadline_ns));
    if (status != IoStatus::kOk) {
      errors_.fetch_add(1);
      CountError(status == IoStatus::kTimeout ? "write_timeout" : "write");
      {
        primacy::MutexLock lock(conn.mu);
        conn.dead = true;
        conn.queue.clear();  // pending futures are dropped, not delivered
      }
      conn.cv.NotifyAll();
      conn.stop.Wake();  // kick the reader out of its poll
      break;
    }
    reg.GetCounter("primacy_transport_bytes_written_total")
        .Increment(encoded.size() + 4);
  }
  // Wait for the reader before declaring the connection reapable: `done`
  // means both threads are past touching the fd.
  {
    primacy::MutexLock lock(conn.mu);
    while (!conn.reader_done) {
      conn.stop.Wake();
      conn.cv.Wait(conn.mu);
    }
  }
  // Close now rather than at reap time so the peer observes EOF the moment
  // the conversation is over (e.g. right after a protocol-violation error
  // frame), not whenever the next accept happens to trigger a reap.
  conn.fd.Reset();
  connections_active_.fetch_sub(1);
  reg.GetGauge("primacy_transport_connections_active").Add(-1);
  conn.done.store(true, std::memory_order_release);
}

void TransportServer::ReapConnections(bool all) {
  std::vector<std::unique_ptr<Connection>> reaped;
  {
    primacy::MutexLock lock(mu_);
    if (all) {
      reaped.swap(connections_);
    } else {
      auto keep = connections_.begin();
      for (auto& conn : connections_) {
        if (conn->done.load(std::memory_order_acquire)) {
          reaped.push_back(std::move(conn));
        } else {
          *keep++ = std::move(conn);
        }
      }
      connections_.erase(keep, connections_.end());
    }
  }
  for (auto& conn : reaped) {
    if (all) conn->stop.Wake();
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
}

}  // namespace primacy::transport
