#include "transport/shutdown_signal.h"

#include <csignal>
#include <poll.h>
#include <unistd.h>

#include <atomic>

#include "transport/socket_io.h"

namespace primacy::transport {
namespace {

// Handler-visible state. Plain statics (not members) because a signal
// handler can only touch async-signal-safe globals; the write fd is stored
// in an atomic int so the handler never races Install.
std::atomic<bool> g_requested{false};
std::atomic<int> g_wake_write_fd{-1};

extern "C" void HandleShutdownSignal(int /*signum*/) {
  g_requested.store(true, std::memory_order_release);
  const int fd = g_wake_write_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 's';
    // write() is async-signal-safe; a full pipe already holds a wake.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

// Leaked: signal handlers reference the pipe for process lifetime.
WakePipe* g_pipe = nullptr;

}  // namespace

ShutdownSignal& ShutdownSignal::Instance() {
  static ShutdownSignal instance;
  return instance;
}

bool ShutdownSignal::Install(std::string* error) {
  if (g_pipe != nullptr) return true;
  auto pipe = new WakePipe();
  if (!pipe->Open(error)) {
    delete pipe;
    return false;
  }
  g_wake_write_fd.store(pipe->write_fd(), std::memory_order_release);
  g_pipe = pipe;
  struct sigaction action {};
  action.sa_handler = &HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: unrelated blocking syscalls resume; loops notice the
  // shutdown through the pipe (poll) or Requested(), not through EINTR.
  action.sa_flags = SA_RESTART;
  if (::sigaction(SIGINT, &action, nullptr) != 0 ||
      ::sigaction(SIGTERM, &action, nullptr) != 0) {
    if (error) *error = "sigaction failed";
    return false;
  }
  return true;
}

bool ShutdownSignal::Requested() const {
  return g_requested.load(std::memory_order_acquire);
}

int ShutdownSignal::wake_fd() const {
  return g_pipe != nullptr ? g_pipe->read_fd() : -1;
}

bool ShutdownSignal::WaitRequested(std::uint64_t timeout_ns) {
  if (Requested() || g_pipe == nullptr) return Requested();
  struct pollfd entry {};
  entry.fd = g_pipe->read_fd();
  entry.events = POLLIN;
  const int timeout_ms =
      static_cast<int>(timeout_ns / 1'000'000ull > 1'000'000ull
                           ? 1'000'000ull
                           : timeout_ns / 1'000'000ull);
  // The wake byte is deliberately left in the pipe: Requested() is the
  // source of truth and other pollers of wake_fd() should also wake.
  (void)::poll(&entry, 1, timeout_ms);
  return Requested();
}

void ShutdownSignal::Trigger() { HandleShutdownSignal(0); }

}  // namespace primacy::transport
