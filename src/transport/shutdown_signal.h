// Graceful-termination seam: SIGINT/SIGTERM via the self-pipe trick.
//
// A process that serves requests must not die mid-request when the operator
// presses Ctrl-C. ShutdownSignal installs handlers for SIGINT and SIGTERM
// that do only async-signal-safe work — set an atomic flag and write one
// byte into a WakePipe — so the serving loop can observe the request either
// by polling Requested() between work items or by including wake_fd() in a
// poll() set, and then run the same drain path it uses for programmatic
// shutdown (`/quitquitquit` funnels into that path too; see primacyd).
//
// Signal dispositions are process-global state, hence the singleton. A
// second signal while draining keeps the flag set (idempotent); the default
// disposition is NOT restored, so a wedged drain requires SIGKILL — that is
// deliberate, a third of the way through a batch is the worst moment for
// default termination.
#pragma once

#include <cstdint>
#include <string>

namespace primacy::transport {

class ShutdownSignal {
 public:
  /// Process-wide instance.
  static ShutdownSignal& Instance();

  ShutdownSignal(const ShutdownSignal&) = delete;
  ShutdownSignal& operator=(const ShutdownSignal&) = delete;

  /// Installs the SIGINT/SIGTERM handlers. Idempotent; returns false with
  /// `*error` set if the pipe or sigaction fails.
  bool Install(std::string* error);

  /// True once any handled signal has been delivered (or Trigger called).
  bool Requested() const;

  /// Readable when a shutdown has been requested; -1 before Install.
  /// Include in poll() sets alongside other wake sources.
  int wake_fd() const;

  /// Blocks up to `timeout_ns` for a shutdown request; returns Requested().
  /// The serving tools' drain loops call this in slices so they can
  /// interleave other stop conditions (e.g. the observability hub's
  /// /quitquitquit latch) without raw poll() at the call site.
  bool WaitRequested(std::uint64_t timeout_ns);

  /// Programmatic trigger sharing the signal path (used by tests and by
  /// shutdown endpoints that want identical drain behavior).
  void Trigger();

 private:
  ShutdownSignal() = default;
};

}  // namespace primacy::transport
