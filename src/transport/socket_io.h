// Robust socket I/O shared by the transport subsystem and the telemetry
// HTTP exporter.
//
// This is the only place in the tree (together with the rest of
// src/transport/) allowed to name raw socket syscalls — the
// `transport-containment` lint rule enforces it. Everything else works in
// terms of these helpers, which fold in the paper cuts that naive
// `::send`/`::recv` loops get wrong: EINTR retry, short-transfer
// resumption, per-operation deadlines, and cooperative interruption via a
// wake pipe.
//
// All fds created here are non-blocking and close-on-exec; the helpers
// poll() for readiness in bounded slices and re-check the deadline against
// a ServiceClock between slices. Deadlines are therefore *evaluated* on the
// clock seam (a VirtualClock test can expire one deterministically) while
// the underlying readiness wait remains event-driven — a helper blocked on
// a socket wakes the instant bytes or a wake byte arrive, never by
// sleeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "service/clock.h"
#include "util/bytes.h"

namespace primacy::transport {

/// RAII file descriptor (closes on destruction; move-only).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) Reset(other.Release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current fd (if any) and adopts `fd`.
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Self-pipe used to interrupt blocking waits (accept loops, frame reads)
/// from another thread or from an async signal handler. Wake() is
/// async-signal-safe.
class WakePipe {
 public:
  WakePipe() = default;
  ~WakePipe() { Close(); }
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  /// Creates the pipe (both ends non-blocking, close-on-exec).
  bool Open(std::string* error);
  /// Makes read_fd() readable. Safe from signal handlers; a full pipe is
  /// fine (the wake is already pending).
  void Wake();
  /// Consumes any pending wake bytes so the pipe can be reused.
  void Drain();
  void Close();

  int read_fd() const { return read_fd_; }
  /// Exposed for async signal handlers that must write() directly.
  int write_fd() const { return write_fd_; }
  bool valid() const { return read_fd_ >= 0; }

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

/// Outcome of a robust I/O operation.
enum class IoStatus {
  kOk = 0,
  /// Peer closed cleanly at an operation boundary.
  kEof,
  /// The deadline expired before the operation completed.
  kTimeout,
  /// The wake pipe fired before the operation completed.
  kStopped,
  /// The peer violated framing (oversized length prefix, EOF mid-frame).
  kMalformed,
  /// errno-level failure (reset, broken pipe, ...).
  kError,
};

const char* IoStatusName(IoStatus status);

/// A deadline evaluated against a ServiceClock. A default-constructed (or
/// None()) deadline never expires. `clock == nullptr` also means "never".
struct IoDeadline {
  service::ServiceClock* clock = nullptr;
  std::uint64_t deadline_ns = service::kNoDeadlineNs;

  static IoDeadline None() { return IoDeadline{}; }
  /// Deadline `budget_ns` from now on `clock`; kNoDeadlineNs means never.
  static IoDeadline After(service::ServiceClock& clock,
                          std::uint64_t budget_ns);
  bool Never() const {
    return clock == nullptr || deadline_ns == service::kNoDeadlineNs;
  }
  bool Expired() const {
    return !Never() && clock->NowNs() >= deadline_ns;
  }
};

/// Binds + listens on a Unix domain socket at `path` (unlinking any stale
/// socket first). Returns the listening fd, or -1 with `*error` set.
int ListenUnixSocket(const std::string& path, int backlog, std::string* error);

/// Connects to the Unix domain socket at `path`. Returns the connected fd,
/// or -1 with `*error` set.
int ConnectUnixSocket(const std::string& path, const IoDeadline& deadline,
                      std::string* error);

/// Loopback TCP listener (IPv4 127.0.0.1). `port` 0 picks an ephemeral
/// port; the bound port is returned via `*bound_port`.
int ListenTcpLoopback(int port, int* bound_port, std::string* error);

/// Waits for a connection on `listen_fd` or a byte on `wake_fd` (pass -1
/// for no wake). Returns kOk with `*conn_fd` set (non-blocking,
/// close-on-exec), kStopped if the wake pipe fired first, kError otherwise.
IoStatus AcceptWithWake(int listen_fd, int wake_fd, int* conn_fd);

/// Writes all of `data`, retrying EINTR and short writes, polling for
/// POLLOUT between attempts. Returns kOk, kTimeout, kStopped, or kError.
IoStatus SendAll(int fd, ByteSpan data, const IoDeadline& deadline,
                 int wake_fd = -1);

/// Reads exactly `out.size()` bytes. `*received` (optional) reports how
/// many bytes landed regardless of outcome; kEof means the peer closed
/// before the first byte, kMalformed that it closed mid-read.
IoStatus RecvExact(int fd, MutableByteSpan out, const IoDeadline& deadline,
                   int wake_fd = -1, std::size_t* received = nullptr);

/// Reads at least one byte, at most `out.size()`, into `out`. Returns kOk
/// with `*received` > 0, or kEof / kTimeout / kStopped / kError.
IoStatus RecvSome(int fd, MutableByteSpan out, std::size_t* received,
                  const IoDeadline& deadline, int wake_fd = -1);

/// Sends a u32 little-endian length prefix followed by `frame`.
IoStatus SendFrame(int fd, ByteSpan frame, const IoDeadline& deadline,
                   int wake_fd = -1);

/// Receives one length-prefixed frame into `*frame`. Waits up to
/// `first_byte_budget_ns` (kNoDeadlineNs = indefinitely, wake-
/// interruptible — an idle server connection is not an error) for the
/// first byte, then applies `frame_budget_ns` on `clock` to the remainder,
/// so a peer that starts a frame must finish it within the budget
/// (slow-loris guard). A length prefix above `max_frame_bytes` yields
/// kMalformed without allocating. kEof = peer closed between frames
/// (clean).
IoStatus RecvFrame(int fd, Bytes* frame, std::uint32_t max_frame_bytes,
                   service::ServiceClock& clock,
                   std::uint64_t first_byte_budget_ns,
                   std::uint64_t frame_budget_ns, int wake_fd = -1);

}  // namespace primacy::transport
