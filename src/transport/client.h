// TransportClient: the in-process library side of the PRIMACY daemon
// boundary.
//
// Synchronous request/response over pooled Unix-domain-socket connections.
// Each call checks a connection out of the pool (connecting if none is
// idle), sends one request frame, waits for the matching reply, and
// returns the connection for reuse. Calls are thread-safe: concurrent
// callers use distinct connections.
//
// Retry discipline (the part worth reading twice):
//  - Exponential backoff with deterministic jitter between attempts, waited
//    on the ServiceClock seam — under a VirtualClock, tests advance time
//    explicitly and nothing wall-sleeps.
//  - A server error frame with kRejectedQuota / kRejectedInflight /
//    kTooManyConnections is the server *asserting the request was not
//    executed*, so it is retryable for every op, and the frame's
//    `retry_after_ns` is honored as a floor under the computed backoff.
//  - A transport-level failure (connect refused, send/recv error, timeout,
//    torn frame) is ambiguous: the request may have executed. It is
//    retried only for idempotent ops (Decompress, DecompressRange, Ping,
//    Stats) — or for any op when the failure happened before a single
//    request byte was sent. Compress after a partial exchange is NOT
//    retried; the caller decides.
//  - kShuttingDown, kBadFrame, kVersionSkew, kCancelled, and kError are
//    never retried.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/clock.h"
#include "transport/socket_io.h"
#include "transport/wire.h"
#include "util/bytes.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace primacy::transport {

struct RetryPolicy {
  /// Total tries including the first; 1 disables retries.
  std::size_t max_attempts = 4;
  std::uint64_t initial_backoff_ns = 1'000'000;  // 1 ms
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_ns = 1'000'000'000;  // 1 s
  /// Each wait is base * (1 + jitter_fraction * u) with u in [0, 1) drawn
  /// from a SplitMix64 stream seeded below — deterministic for tests, no
  /// global RNG state. 0 disables jitter.
  double jitter_fraction = 0.25;
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;
};

struct TransportClientOptions {
  std::string socket_path;
  /// Idle connections kept for reuse; beyond this, returns close instead.
  std::size_t max_pooled_connections = 4;
  std::uint64_t connect_timeout_ns = 5'000'000'000ull;
  /// Budget for a reply to start arriving and for the frame to complete.
  std::uint64_t read_deadline_ns = 60'000'000'000ull;
  std::uint64_t write_deadline_ns = 30'000'000'000ull;
  RetryPolicy retry;
  /// Time source for deadlines and backoff waits; null = system clock.
  service::ServiceClock* clock = nullptr;
};

/// Outcome of one logical call (after any retries).
struct TransportResult {
  WireStatus status = WireStatus::kError;
  /// Response payload; meaningful when ok().
  Bytes payload;
  /// Server hint from the final error frame (0 if none).
  std::uint64_t retry_after_ns = 0;
  std::string error;
  /// Attempts consumed, 1 = no retry.
  std::uint32_t attempts = 1;

  bool ok() const { return status == WireStatus::kOk; }
};

struct TransportClientStats {
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t connects = 0;
};

class TransportClient {
 public:
  explicit TransportClient(TransportClientOptions options);
  ~TransportClient();

  TransportClient(const TransportClient&) = delete;
  TransportClient& operator=(const TransportClient&) = delete;

  TransportResult Compress(std::string_view tenant, ByteSpan payload);
  TransportResult Decompress(std::string_view tenant, ByteSpan stream);
  /// Decodes elements [first_element, first_element + element_count) of a
  /// PRIMACY stream without materializing the rest.
  TransportResult DecompressRange(std::string_view tenant, ByteSpan stream,
                                  std::uint64_t first_element,
                                  std::uint64_t element_count);
  /// Liveness probe; the payload (if any) is echoed back.
  TransportResult Ping(ByteSpan payload = {});
  /// Returns the daemon's service StatusJson() as the payload.
  TransportResult Stats();

  TransportClientStats ClientStats() const;
  const TransportClientOptions& options() const { return options_; }

 private:
  struct AttemptOutcome {
    TransportResult result;
    /// Failed below the protocol (connect/send/recv/decode), as opposed to
    /// a well-formed error frame.
    bool transport_failure = false;
    /// At least one request byte may have reached the server.
    bool sent = false;
  };

  TransportResult Execute(Op op, std::string_view tenant, ByteSpan payload,
                          std::uint64_t first_element,
                          std::uint64_t element_count);
  AttemptOutcome ExecuteOnce(Op op, std::string_view tenant, ByteSpan payload,
                             std::uint64_t first_element,
                             std::uint64_t element_count);
  /// Pops an idle pooled fd or opens a new connection (-1 on failure).
  int CheckoutConnection(std::string* error);
  void ReturnConnection(int fd);
  /// Blocks `wait_ns` on the clock seam (VirtualClock-deterministic).
  void SleepNs(std::uint64_t wait_ns);
  /// Next jitter draw in [0, 1).
  double NextJitter();

  const TransportClientOptions options_;
  service::ServiceClock* clock_;  // never null after construction
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> connects_{0};

  mutable primacy::Mutex mu_;
  // Pairs with mu_: woken by VirtualClock::Advance during backoff waits
  // (never signaled otherwise — backoff has no early-exit path).
  primacy::CondVar cv_;
  std::vector<int> pool_ PRIMACY_GUARDED_BY(mu_);
  std::uint64_t jitter_state_ PRIMACY_GUARDED_BY(mu_);
};

}  // namespace primacy::transport
