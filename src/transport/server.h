// TransportServer: the Unix-domain-socket front door of a PRIMACY daemon.
//
// One accept loop plus two threads per connection (reader and writer)
// bridge the wire protocol (transport/wire.h) onto the in-process
// CompressionService:
//
//   reader:  RecvFrame -> DecodeFrame -> SubmitCompress/Decompress/Range
//            (futures), or answers Ping/Stats inline; pushes replies-to-be
//            onto the connection's queue. Requests are *pipelined*: the
//            reader keeps decoding while earlier requests are still in
//            flight, so one connection can have many outstanding ids.
//   writer:  pops the queue in arrival order, waits for each future,
//            encodes the response or error frame, SendAll with the write
//            deadline. Replies carry request ids, so in-order writing is an
//            implementation detail, not a protocol promise.
//
// Backpressure and limits: at most `max_connections` concurrent
// connections (excess get a kTooManyConnections error frame and a close);
// at most `max_pipelined_requests` queued replies per connection (the
// reader pauses, which stops draining the socket and lets the kernel
// buffers push back on the client). Per-connection deadlines bound how
// long a *started* frame may take to arrive and how long a reply write may
// stall; idle connections are never timed out.
//
// Graceful drain (Shutdown, also run by the destructor): stop accepting,
// wake every reader (no new requests), let writers flush every queued
// reply — in-flight service work completes and is delivered — then join
// and close. Service admission itself answers kShuttingDown during a
// service-level drain; the transport maps that status straight onto the
// wire.
//
// All blocking runs on the ServiceClock seam: socket deadlines are
// evaluated against the clock (see socket_io.h), queue handoffs use
// primacy::Mutex/CondVar, and nothing sleeps.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/clock.h"
#include "service/service.h"
#include "transport/socket_io.h"
#include "transport/wire.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace primacy::transport {

struct TransportServerOptions {
  /// Filesystem path of the Unix domain socket (created on Start, unlinked
  /// on Shutdown). Must fit in sockaddr_un (~107 bytes).
  std::string socket_path;
  /// Concurrent connection cap; excess connections are refused with a
  /// kTooManyConnections error frame carrying `reject_retry_after_ns`.
  std::size_t max_connections = 64;
  /// Queued-but-unwritten replies per connection before the reader pauses.
  std::size_t max_pipelined_requests = 128;
  /// Budget for the remainder of a frame once its first byte arrived
  /// (slow-loris guard). kNoDeadlineNs disables.
  std::uint64_t frame_read_deadline_ns = 30'000'000'000ull;
  /// Budget for writing one reply frame. kNoDeadlineNs disables.
  std::uint64_t write_deadline_ns = 30'000'000'000ull;
  /// Hint returned with kTooManyConnections rejections.
  std::uint64_t reject_retry_after_ns = 50'000'000ull;
  /// Time source for deadlines; null uses the service's clock (and the
  /// system clock if the service also defaulted).
  service::ServiceClock* clock = nullptr;
};

/// Monotonic counters since Start (approximate under concurrency: each is
/// individually atomic).
struct TransportServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
};

class TransportServer {
 public:
  /// The service must outlive the server.
  TransportServer(service::CompressionService& service,
                  TransportServerOptions options);
  ~TransportServer();

  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;

  /// Binds the socket and starts accepting. Returns false with `*error`
  /// set on failure; at most one successful Start per instance.
  bool Start(std::string* error);

  /// Graceful drain: stop accepting -> finish in-flight -> close.
  /// Idempotent and safe to call concurrently with serving.
  void Shutdown();

  TransportServerStats Stats() const;
  const TransportServerOptions& options() const { return options_; }

 private:
  struct Connection;

  void AcceptLoop();
  void ReaderLoop(Connection& conn);
  void WriterLoop(Connection& conn);
  /// Decodes and dispatches one frame; returns false when the connection
  /// should stop reading (protocol violation or fatal submit error).
  bool HandleFrame(Connection& conn, ByteSpan frame);
  void EnqueueReady(Connection& conn, Bytes frame);
  /// Reaps finished connections (joins their threads). Called from the
  /// accept loop and Shutdown.
  void ReapConnections(bool all) PRIMACY_EXCLUDES(mu_);

  service::CompressionService& service_;
  const TransportServerOptions options_;
  service::ServiceClock* clock_;  // never null after construction

  UniqueFd listen_fd_;
  WakePipe accept_wake_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};

  mutable primacy::Mutex mu_;
  std::vector<std::unique_ptr<Connection>> connections_ PRIMACY_GUARDED_BY(mu_);
  std::thread accept_thread_ PRIMACY_GUARDED_BY(mu_);
};

}  // namespace primacy::transport
