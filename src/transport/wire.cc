#include "transport/wire.h"

#include <string>

#include "bitstream/byte_io.h"
#include "util/checksum.h"
#include "util/error.h"

namespace primacy::transport {
namespace {

/// Bytes in the frozen header prefix: magic(4) + version(2) + kind(1) +
/// request id(8).
constexpr std::size_t kHeaderBytes = 15;
/// Trailing XXH64 checksum. Like the header, its position is frozen across
/// protocol versions so integrity can be checked before interpreting a
/// frame from any peer.
constexpr std::size_t kChecksumBytes = 8;

ByteSpan StringSpan(const std::string& text) {
  return AsBytes(std::span<const char>(text.data(), text.size()));
}

/// Writes the frozen header prefix shared by every frame kind.
void AppendFrameHeader(Bytes& out, FrameKind kind, std::uint64_t request_id) {
  PutU32(out, kWireMagic);
  PutU16(out, kProtocolVersion);
  PutU8(out, static_cast<std::uint8_t>(kind));
  PutU64(out, request_id);
}

/// Appends the trailing XXH64 over everything already in `out`.
void AppendFrameChecksum(Bytes& out) {
  PutU64(out, Xxh64(ByteSpan(out)));
}

/// Reads the frozen header prefix; validates magic then version. Returns
/// {kind byte, request id} — kind is validated by the caller so version
/// skew (which must surface the request id) is diagnosed first.
struct FrameHeader {
  std::uint8_t kind = 0;
  std::uint64_t request_id = 0;
};

FrameHeader ParseFrameHeader(ByteReader& reader) {
  const std::uint32_t magic = reader.GetU32();
  const std::uint16_t version = reader.GetU16();
  FrameHeader header;
  header.kind = reader.GetU8();
  header.request_id = reader.GetU64();
  if (magic != kWireMagic) {
    throw WireFormatError("transport frame: bad magic");
  }
  if (version != kProtocolVersion) {
    throw VersionSkewError(
        "transport frame: protocol version " + std::to_string(version) +
            " not supported (this build speaks " +
            std::to_string(kProtocolVersion) + ")",
        version, header.request_id);
  }
  return header;
}

Op CheckedOp(std::uint8_t raw) {
  switch (static_cast<Op>(raw)) {
    case Op::kCompress:
    case Op::kDecompress:
    case Op::kDecompressRange:
    case Op::kPing:
    case Op::kStats:
      return static_cast<Op>(raw);
  }
  throw WireFormatError("transport frame: unknown op " + std::to_string(raw));
}

WireStatus CheckedStatus(std::uint8_t raw) {
  switch (static_cast<WireStatus>(raw)) {
    case WireStatus::kOk:
    case WireStatus::kRejectedQuota:
    case WireStatus::kRejectedInflight:
    case WireStatus::kCancelled:
    case WireStatus::kError:
    case WireStatus::kShuttingDown:
    case WireStatus::kBadFrame:
    case WireStatus::kVersionSkew:
    case WireStatus::kTooManyConnections:
    case WireStatus::kUnknownOp:
      return static_cast<WireStatus>(raw);
  }
  throw WireFormatError("transport frame: unknown status " +
                        std::to_string(raw));
}

}  // namespace

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kRejectedQuota:
      return "rejected_quota";
    case WireStatus::kRejectedInflight:
      return "rejected_inflight";
    case WireStatus::kCancelled:
      return "cancelled";
    case WireStatus::kError:
      return "error";
    case WireStatus::kShuttingDown:
      return "shutting_down";
    case WireStatus::kBadFrame:
      return "bad_frame";
    case WireStatus::kVersionSkew:
      return "version_skew";
    case WireStatus::kTooManyConnections:
      return "too_many_connections";
    case WireStatus::kUnknownOp:
      return "unknown_op";
  }
  return "unknown";
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kCompress:
      return "compress";
    case Op::kDecompress:
      return "decompress";
    case Op::kDecompressRange:
      return "decompress_range";
    case Op::kPing:
      return "ping";
    case Op::kStats:
      return "stats";
  }
  return "unknown";
}

WireStatus FromServiceStatus(service::ServiceStatus status) {
  switch (status) {
    case service::ServiceStatus::kOk:
      return WireStatus::kOk;
    case service::ServiceStatus::kRejectedQuota:
      return WireStatus::kRejectedQuota;
    case service::ServiceStatus::kRejectedInflight:
      return WireStatus::kRejectedInflight;
    case service::ServiceStatus::kCancelled:
      return WireStatus::kCancelled;
    case service::ServiceStatus::kError:
      return WireStatus::kError;
    case service::ServiceStatus::kShuttingDown:
      return WireStatus::kShuttingDown;
  }
  return WireStatus::kError;
}

Bytes EncodeRequestFrame(const RequestFrame& frame) {
  Bytes out;
  AppendFrameHeader(out, FrameKind::kRequest, frame.request_id);
  PutU8(out, static_cast<std::uint8_t>(frame.op));
  PutBlock(out, StringSpan(frame.tenant));
  PutBlock(out, ByteSpan(frame.options));
  PutVarint(out, frame.first_element);
  PutVarint(out, frame.element_count);
  PutBlock(out, ByteSpan(frame.payload));
  AppendFrameChecksum(out);
  return out;
}

Bytes EncodeResponseFrame(const ResponseFrame& frame) {
  Bytes out;
  AppendFrameHeader(out, FrameKind::kResponse, frame.request_id);
  PutU8(out, static_cast<std::uint8_t>(frame.op));
  PutBlock(out, ByteSpan(frame.payload));
  AppendFrameChecksum(out);
  return out;
}

Bytes EncodeErrorFrame(const ErrorFrame& frame) {
  Bytes out;
  AppendFrameHeader(out, FrameKind::kError, frame.request_id);
  PutU8(out, static_cast<std::uint8_t>(frame.op));
  PutU8(out, static_cast<std::uint8_t>(frame.status));
  PutU64(out, frame.retry_after_ns);
  PutBlock(out, StringSpan(frame.message));
  AppendFrameChecksum(out);
  return out;
}

DecodedFrame DecodeFrame(ByteSpan frame) {
  if (frame.size() < kHeaderBytes + kChecksumBytes) {
    throw WireFormatError("transport frame: truncated (" +
                          std::to_string(frame.size()) + " bytes)");
  }
  if (frame.size() > kMaxFrameBytes) {
    throw WireFormatError("transport frame: oversized (" +
                          std::to_string(frame.size()) + " bytes)");
  }
  // Integrity first: a frame whose checksum does not match is never
  // interpreted, whatever its claimed version.
  const std::size_t body_size = frame.size() - kChecksumBytes;
  ByteReader tail(frame.subspan(body_size));
  const std::uint64_t expected = tail.GetU64();
  const std::uint64_t computed = Xxh64(frame.first(body_size));
  if (expected != computed) {
    throw WireFormatError("transport frame: checksum mismatch");
  }
  ByteReader reader(frame.first(body_size));
  try {
    const FrameHeader header = ParseFrameHeader(reader);
    DecodedFrame decoded;
    switch (static_cast<FrameKind>(header.kind)) {
      case FrameKind::kRequest: {
        decoded.kind = FrameKind::kRequest;
        RequestFrame& req = decoded.request;
        req.request_id = header.request_id;
        req.op = CheckedOp(reader.GetU8());
        req.tenant = StringFromBytes(reader.GetBlock());
        req.options = ToBytes(reader.GetBlock());
        req.first_element = reader.GetVarint();
        req.element_count = reader.GetVarint();
        req.payload = ToBytes(reader.GetBlock());
        break;
      }
      case FrameKind::kResponse: {
        decoded.kind = FrameKind::kResponse;
        ResponseFrame& resp = decoded.response;
        resp.request_id = header.request_id;
        resp.op = CheckedOp(reader.GetU8());
        resp.payload = ToBytes(reader.GetBlock());
        break;
      }
      case FrameKind::kError: {
        decoded.kind = FrameKind::kError;
        ErrorFrame& err = decoded.error;
        err.request_id = header.request_id;
        err.op = CheckedOp(reader.GetU8());
        err.status = CheckedStatus(reader.GetU8());
        err.retry_after_ns = reader.GetU64();
        err.message = StringFromBytes(reader.GetBlock());
        break;
      }
      default:
        throw WireFormatError("transport frame: unknown kind " +
                              std::to_string(header.kind));
    }
    if (!reader.AtEnd()) {
      throw WireFormatError("transport frame: " +
                            std::to_string(reader.Remaining()) +
                            " trailing bytes after body");
    }
    return decoded;
  } catch (const WireFormatError&) {
    throw;
  } catch (const CorruptStreamError& e) {
    // ByteReader truncation inside the body: re-brand with wire context so
    // DecodeFrame's contract (WireFormatError or VersionSkewError only)
    // holds.
    throw WireFormatError(std::string("transport frame: ") + e.what());
  }
}

}  // namespace primacy::transport
