#include "transport/socket_io.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <netinet/in.h>

#include <cerrno>
#include <cstring>

#include "bitstream/byte_io.h"

namespace primacy::transport {
namespace {

// Upper bound on a single poll() slice. Deadlines are re-checked against
// the ServiceClock between slices, so a VirtualClock expiry is observed
// within one slice even though poll itself waits in wall time.
constexpr int kPollSliceMs = 100;

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool SetNonBlockingCloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  const int fd_flags = ::fcntl(fd, F_GETFD, 0);
  return fd_flags >= 0 && ::fcntl(fd, F_SETFD, fd_flags | FD_CLOEXEC) >= 0;
}

/// Waits until `fd` is ready for `events` (POLLIN/POLLOUT), the deadline
/// expires, or the wake pipe fires. POLLERR/POLLHUP count as ready: the
/// next send/recv surfaces the real condition.
IoStatus PollFor(int fd, short events, const IoDeadline& deadline,
                 int wake_fd) {
  for (;;) {
    if (deadline.Expired()) return IoStatus::kTimeout;
    int timeout_ms = -1;
    if (!deadline.Never()) {
      const std::uint64_t now = deadline.clock->NowNs();
      const std::uint64_t remaining =
          deadline.deadline_ns > now ? deadline.deadline_ns - now : 0;
      const std::uint64_t remaining_ms = remaining / 1000000u + 1;
      timeout_ms = remaining_ms < static_cast<std::uint64_t>(kPollSliceMs)
                       ? static_cast<int>(remaining_ms)
                       : kPollSliceMs;
    }
    pollfd fds[2];
    fds[0].fd = fd;
    fds[0].events = events;
    fds[0].revents = 0;
    nfds_t nfds = 1;
    if (wake_fd >= 0) {
      fds[1].fd = wake_fd;
      fds[1].events = POLLIN;
      fds[1].revents = 0;
      nfds = 2;
    }
    const int rc = ::poll(fds, nfds, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (wake_fd >= 0 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP))) {
      return IoStatus::kStopped;
    }
    if (rc > 0 && (fds[0].revents & (events | POLLERR | POLLHUP))) {
      return IoStatus::kOk;
    }
    // rc == 0: slice elapsed; loop re-checks the deadline on the clock.
  }
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool WakePipe::Open(std::string* error) {
  int fds[2];
  if (::pipe(fds) != 0) {
    if (error) *error = ErrnoMessage("pipe");
    return false;
  }
  if (!SetNonBlockingCloexec(fds[0]) || !SetNonBlockingCloexec(fds[1])) {
    if (error) *error = ErrnoMessage("fcntl");
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  Close();
  read_fd_ = fds[0];
  write_fd_ = fds[1];
  return true;
}

void WakePipe::Wake() {
  if (write_fd_ < 0) return;
  const char byte = 'w';
  // A full pipe (EAGAIN) already holds a pending wake; nothing to do.
  [[maybe_unused]] const ssize_t n = ::write(write_fd_, &byte, 1);
}

void WakePipe::Drain() {
  if (read_fd_ < 0) return;
  char buffer[64];
  while (::read(read_fd_, buffer, sizeof buffer) > 0) {
  }
}

void WakePipe::Close() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0) ::close(write_fd_);
  read_fd_ = -1;
  write_fd_ = -1;
}

const char* IoStatusName(IoStatus status) {
  switch (status) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kEof:
      return "eof";
    case IoStatus::kTimeout:
      return "timeout";
    case IoStatus::kStopped:
      return "stopped";
    case IoStatus::kMalformed:
      return "malformed";
    case IoStatus::kError:
      return "error";
  }
  return "unknown";
}

IoDeadline IoDeadline::After(service::ServiceClock& clock,
                             std::uint64_t budget_ns) {
  if (budget_ns == service::kNoDeadlineNs) return IoDeadline{};
  IoDeadline deadline;
  deadline.clock = &clock;
  const std::uint64_t now = clock.NowNs();
  // Saturate instead of wrapping when the budget is near the max.
  deadline.deadline_ns = now > service::kNoDeadlineNs - budget_ns
                             ? service::kNoDeadlineNs - 1
                             : now + budget_ns;
  return deadline;
}

int ListenUnixSocket(const std::string& path, int backlog,
                     std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    if (error) {
      *error = "socket path empty or longer than " +
               std::to_string(sizeof(addr.sun_path) - 1) + " bytes: " + path;
    }
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid() || !SetNonBlockingCloexec(fd.get())) {
    if (error) *error = ErrnoMessage("socket");
    return -1;
  }
  // The caller owns the path; a stale socket left by a crashed daemon is
  // replaced rather than failing startup.
  ::unlink(path.c_str());
  if (::bind(fd.get(), (const sockaddr*)&addr, sizeof addr) != 0) {
    if (error) *error = ErrnoMessage("bind");
    return -1;
  }
  if (::listen(fd.get(), backlog) != 0) {
    if (error) *error = ErrnoMessage("listen");
    return -1;
  }
  return fd.Release();
}

int ConnectUnixSocket(const std::string& path, const IoDeadline& deadline,
                      std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path empty or too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid() || !SetNonBlockingCloexec(fd.get())) {
    if (error) *error = ErrnoMessage("socket");
    return -1;
  }
  if (::connect(fd.get(), (const sockaddr*)&addr, sizeof addr) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      if (error) *error = ErrnoMessage("connect");
      return -1;
    }
    const IoStatus ready = PollFor(fd.get(), POLLOUT, deadline, -1);
    if (ready != IoStatus::kOk) {
      if (error) {
        *error = std::string("connect: ") + IoStatusName(ready);
      }
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      if (error) {
        *error = std::string("connect: ") +
                 std::strerror(so_error != 0 ? so_error : errno);
      }
      return -1;
    }
  }
  return fd.Release();
}

int ListenTcpLoopback(int port, int* bound_port, std::string* error) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid() || !SetNonBlockingCloexec(fd.get())) {
    if (error) *error = ErrnoMessage("socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  socklen_t addr_len = sizeof addr;
  if (::bind(fd.get(), (const sockaddr*)&addr, sizeof addr) != 0 ||
      ::listen(fd.get(), 16) != 0 ||
      ::getsockname(fd.get(), (sockaddr*)&addr, &addr_len) != 0) {
    if (error) *error = ErrnoMessage("bind/listen");
    return -1;
  }
  if (bound_port) *bound_port = ntohs(addr.sin_port);
  return fd.Release();
}

IoStatus AcceptWithWake(int listen_fd, int wake_fd, int* conn_fd) {
  for (;;) {
    const IoStatus ready =
        PollFor(listen_fd, POLLIN, IoDeadline::None(), wake_fd);
    if (ready != IoStatus::kOk) return ready;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn >= 0) {
      if (!SetNonBlockingCloexec(conn)) {
        ::close(conn);
        return IoStatus::kError;
      }
      *conn_fd = conn;
      return IoStatus::kOk;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      continue;  // Raced with a disconnect or a signal; wait again.
    }
    return IoStatus::kError;
  }
}

IoStatus SendAll(int fd, ByteSpan data, const IoDeadline& deadline,
                 int wake_fd) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const IoStatus ready = PollFor(fd, POLLOUT, deadline, wake_fd);
      if (ready != IoStatus::kOk) return ready;
      continue;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus RecvExact(int fd, MutableByteSpan out, const IoDeadline& deadline,
                   int wake_fd, std::size_t* received) {
  std::size_t got = 0;
  if (received) *received = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd, out.data() + got, out.size() - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      if (received) *received = got;
      continue;
    }
    if (n == 0) {
      // Clean close before the first byte is a boundary EOF; mid-read it
      // means the peer tore a frame.
      return got == 0 ? IoStatus::kEof : IoStatus::kMalformed;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const IoStatus ready = PollFor(fd, POLLIN, deadline, wake_fd);
      if (ready != IoStatus::kOk) return ready;
      continue;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus RecvSome(int fd, MutableByteSpan out, std::size_t* received,
                  const IoDeadline& deadline, int wake_fd) {
  *received = 0;
  if (out.empty()) return IoStatus::kOk;
  for (;;) {
    const ssize_t n = ::recv(fd, out.data(), out.size(), 0);
    if (n > 0) {
      *received = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const IoStatus ready = PollFor(fd, POLLIN, deadline, wake_fd);
      if (ready != IoStatus::kOk) return ready;
      continue;
    }
    return IoStatus::kError;
  }
}

IoStatus SendFrame(int fd, ByteSpan frame, const IoDeadline& deadline,
                   int wake_fd) {
  Bytes prefixed;
  prefixed.reserve(frame.size() + 4);
  PutU32(prefixed, static_cast<std::uint32_t>(frame.size()));
  AppendBytes(prefixed, frame);
  // One buffer, one SendAll: the length prefix and body cannot be torn by
  // a partial write between two calls.
  return SendAll(fd, ByteSpan(prefixed), deadline, wake_fd);
}

IoStatus RecvFrame(int fd, Bytes* frame, std::uint32_t max_frame_bytes,
                   service::ServiceClock& clock,
                   std::uint64_t first_byte_budget_ns,
                   std::uint64_t frame_budget_ns, int wake_fd) {
  // Idle wait: a pooled server-side connection may sit quiet indefinitely;
  // a client waiting for its reply bounds this phase too.
  const IoStatus ready = PollFor(
      fd, POLLIN, IoDeadline::After(clock, first_byte_budget_ns), wake_fd);
  if (ready != IoStatus::kOk) return ready;
  // From the first byte on, the peer must deliver the whole frame within
  // the budget.
  const IoDeadline deadline = IoDeadline::After(clock, frame_budget_ns);
  Bytes prefix(4);
  std::size_t got = 0;
  const IoStatus head =
      RecvExact(fd, MutableByteSpan(prefix), deadline, wake_fd, &got);
  if (head != IoStatus::kOk) return head;
  ByteReader reader{ByteSpan(prefix)};
  const std::uint32_t length = reader.GetU32();
  if (length == 0 || length > max_frame_bytes) return IoStatus::kMalformed;
  frame->resize(length);
  const IoStatus body =
      RecvExact(fd, MutableByteSpan(*frame), deadline, wake_fd, &got);
  if (body == IoStatus::kEof) return IoStatus::kMalformed;
  return body;
}

}  // namespace primacy::transport
