// Versioned, length-prefixed wire protocol for the PRIMACY daemon boundary.
//
// A frame on the socket is a u32 little-endian length followed by that many
// frame bytes. The frame body is built from the same Put*/Get* vocabulary as
// the codec containers (bitstream/byte_io.h) and is checksummed with XXH64 so
// a torn or corrupted frame is detected before any payload is interpreted:
//
//   [u32 magic 'PRMW'][u16 protocol version][u8 kind][u64 request id]
//   [kind-specific body][u64 XXH64 of all preceding frame bytes]
//
// The four header fields are the *frozen prefix*: their layout is identical
// in every protocol version, so a server that receives a frame from a newer
// client can still recover the request id and answer with a kVersionSkew
// error frame instead of hanging up silently. Everything after the header
// may change between versions.
//
// Request bodies carry an op code, tenant name, an opaque options blob
// (reserved — decoded but currently unused, so older servers tolerate newer
// clients that populate it), an element range (meaningful for
// kDecompressRange, zero otherwise), and the payload. Error frames carry the
// compression service's status codes plus `retry_after_ns` so clients can
// implement informed backoff (docs/TRANSPORT.md has the full tables).
//
// Encoding never fails; decoding throws WireFormatError (a CorruptStreamError
// subclass: truncation, bad magic, checksum mismatch, trailing garbage) or
// VersionSkewError (valid frozen prefix, unsupported version).
#pragma once

#include <cstdint>
#include <string>

#include "service/service.h"
#include "util/bytes.h"
#include "util/error.h"

namespace primacy::transport {

/// First four frame bytes, little-endian "PRMW" (PRimacy MiddleWare).
inline constexpr std::uint32_t kWireMagic = 0x574D5250u;

/// Current protocol version. Bump on any layout change past the frozen
/// header prefix; decode rejects every other value with VersionSkewError.
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Upper bound on a single frame (length prefix excluded). Frames are
/// rejected before allocation when the length prefix exceeds this, so a
/// corrupt length cannot make the server allocate gigabytes.
inline constexpr std::uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;

/// Frame discriminator (header `kind` byte).
enum class FrameKind : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
};

/// Operation selector carried by request frames and echoed by replies.
enum class Op : std::uint8_t {
  kCompress = 0,
  kDecompress = 1,
  kDecompressRange = 2,
  kPing = 3,
  kStats = 4,
};

/// Wire status codes. The first block mirrors service::ServiceStatus
/// one-to-one; the second block is transport-layer conditions that have no
/// in-process equivalent. Values are pinned — they are wire format.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kRejectedQuota = 1,
  kRejectedInflight = 2,
  kCancelled = 3,
  kError = 4,
  kShuttingDown = 5,
  // Transport-layer statuses.
  kBadFrame = 32,
  kVersionSkew = 33,
  kTooManyConnections = 34,
  kUnknownOp = 35,
};

/// Human-readable status name ("ok", "rejected_quota", ...). Unknown values
/// map to "unknown".
const char* WireStatusName(WireStatus status);

/// Op name ("compress", "decompress", "decompress_range", "ping", "stats").
const char* OpName(Op op);

/// service::ServiceStatus -> wire status (bijective on the service block).
WireStatus FromServiceStatus(service::ServiceStatus status);

/// Decode failure: bad magic, truncation, checksum mismatch, unknown kind
/// or op, trailing garbage. The peer's frame cannot be trusted.
class WireFormatError : public CorruptStreamError {
 public:
  explicit WireFormatError(const std::string& message)
      : CorruptStreamError(message) {}
};

/// The frozen prefix parsed but the protocol version is unsupported. Carries
/// the request id so servers can answer with a kVersionSkew error frame.
class VersionSkewError : public WireFormatError {
 public:
  VersionSkewError(const std::string& message, std::uint16_t peer_version,
                   std::uint64_t request_id)
      : WireFormatError(message),
        peer_version_(peer_version),
        request_id_(request_id) {}

  std::uint16_t peer_version() const { return peer_version_; }
  std::uint64_t request_id() const { return request_id_; }

 private:
  std::uint16_t peer_version_;
  std::uint64_t request_id_;
};

/// Client -> server.
struct RequestFrame {
  std::uint64_t request_id = 0;
  Op op = Op::kPing;
  std::string tenant;
  /// Opaque forward-compatibility blob; empty today.
  Bytes options;
  /// Element range for kDecompressRange; zero for every other op.
  std::uint64_t first_element = 0;
  std::uint64_t element_count = 0;
  Bytes payload;
};

/// Server -> client success reply.
struct ResponseFrame {
  std::uint64_t request_id = 0;
  Op op = Op::kPing;
  Bytes payload;
};

/// Server -> client failure reply. `retry_after_ns` is nonzero when the
/// server asserts the request was not executed and suggests a wait.
struct ErrorFrame {
  std::uint64_t request_id = 0;
  Op op = Op::kPing;
  WireStatus status = WireStatus::kError;
  std::uint64_t retry_after_ns = 0;
  std::string message;
};

/// A decoded frame: `kind` selects which member is populated.
struct DecodedFrame {
  FrameKind kind = FrameKind::kRequest;
  RequestFrame request;
  ResponseFrame response;
  ErrorFrame error;
};

/// Encoders produce a complete frame body (header..checksum) with no length
/// prefix; framing (the u32 length) is applied by the socket layer.
Bytes EncodeRequestFrame(const RequestFrame& frame);
Bytes EncodeResponseFrame(const ResponseFrame& frame);
Bytes EncodeErrorFrame(const ErrorFrame& frame);

/// Decodes one complete frame body (length prefix already stripped).
/// Verifies magic, version, checksum, and exact consumption; throws
/// WireFormatError / VersionSkewError on any violation.
DecodedFrame DecodeFrame(ByteSpan frame);

}  // namespace primacy::transport
