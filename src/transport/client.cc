#include "transport/client.h"

#include <algorithm>
#include <utility>

#include "telemetry/metrics.h"

namespace primacy::transport {
namespace {

bool IsIdempotent(Op op) {
  switch (op) {
    case Op::kCompress:
      // Compressing twice is semantically harmless but charges quota and
      // occupies in-flight slots twice; after an ambiguous failure the
      // caller, not the client, decides.
      return false;
    case Op::kDecompress:
    case Op::kDecompressRange:
    case Op::kPing:
    case Op::kStats:
      return true;
  }
  return false;
}

/// Error-frame statuses where the server asserts the request was not
/// admitted — safe to retry regardless of op.
bool IsRetryableStatus(WireStatus status) {
  switch (status) {
    case WireStatus::kRejectedQuota:
    case WireStatus::kRejectedInflight:
    case WireStatus::kTooManyConnections:
      return true;
    default:
      return false;
  }
}

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

TransportClient::TransportClient(TransportClientOptions options)
    : options_(std::move(options)),
      jitter_state_(options_.retry.jitter_seed) {
  clock_ = options_.clock != nullptr ? options_.clock
                                     : &service::SystemServiceClock::Instance();
  clock_->RegisterWaiter(&mu_, &cv_);
}

TransportClient::~TransportClient() {
  clock_->UnregisterWaiter(&cv_);
  primacy::MutexLock lock(mu_);
  for (const int fd : pool_) {
    UniqueFd closer(fd);  // closes on scope exit
  }
  pool_.clear();
}

TransportResult TransportClient::Compress(std::string_view tenant,
                                          ByteSpan payload) {
  return Execute(Op::kCompress, tenant, payload, 0, 0);
}

TransportResult TransportClient::Decompress(std::string_view tenant,
                                            ByteSpan stream) {
  return Execute(Op::kDecompress, tenant, stream, 0, 0);
}

TransportResult TransportClient::DecompressRange(std::string_view tenant,
                                                 ByteSpan stream,
                                                 std::uint64_t first_element,
                                                 std::uint64_t element_count) {
  return Execute(Op::kDecompressRange, tenant, stream, first_element,
                 element_count);
}

TransportResult TransportClient::Ping(ByteSpan payload) {
  return Execute(Op::kPing, {}, payload, 0, 0);
}

TransportResult TransportClient::Stats() {
  return Execute(Op::kStats, {}, {}, 0, 0);
}

TransportClientStats TransportClient::ClientStats() const {
  TransportClientStats stats;
  stats.requests = requests_.load();
  stats.retries = retries_.load();
  stats.connects = connects_.load();
  return stats;
}

TransportResult TransportClient::Execute(Op op, std::string_view tenant,
                                         ByteSpan payload,
                                         std::uint64_t first_element,
                                         std::uint64_t element_count) {
  requests_.fetch_add(1);
  const RetryPolicy& retry = options_.retry;
  const std::size_t max_attempts = std::max<std::size_t>(1, retry.max_attempts);
  std::uint64_t backoff_ns = retry.initial_backoff_ns;
  for (std::size_t attempt = 1;; ++attempt) {
    AttemptOutcome outcome =
        ExecuteOnce(op, tenant, payload, first_element, element_count);
    outcome.result.attempts = static_cast<std::uint32_t>(attempt);
    if (outcome.result.ok() || attempt >= max_attempts) {
      return outcome.result;
    }
    const bool retryable =
        outcome.transport_failure
            ? (!outcome.sent || IsIdempotent(op))
            : IsRetryableStatus(outcome.result.status);
    if (!retryable) return outcome.result;
    retries_.fetch_add(1);
    telemetry::MetricsRegistry::Global()
        .GetCounter("primacy_transport_retries_total",
                    std::string("op=\"") + OpName(op) + "\"")
        .Increment();
    // Jittered exponential backoff, floored by the server's explicit hint.
    std::uint64_t wait_ns = backoff_ns;
    if (retry.jitter_fraction > 0.0) {
      wait_ns = static_cast<std::uint64_t>(
          static_cast<double>(wait_ns) *
          (1.0 + retry.jitter_fraction * NextJitter()));
    }
    wait_ns = std::min(wait_ns, retry.max_backoff_ns);
    wait_ns = std::max(wait_ns, outcome.result.retry_after_ns);
    SleepNs(wait_ns);
    const double next =
        static_cast<double>(backoff_ns) * retry.backoff_multiplier;
    backoff_ns = next >= static_cast<double>(retry.max_backoff_ns)
                     ? retry.max_backoff_ns
                     : static_cast<std::uint64_t>(next);
  }
}

TransportClient::AttemptOutcome TransportClient::ExecuteOnce(
    Op op, std::string_view tenant, ByteSpan payload,
    std::uint64_t first_element, std::uint64_t element_count) {
  AttemptOutcome outcome;
  std::string error;
  UniqueFd fd(CheckoutConnection(&error));
  if (!fd.valid()) {
    outcome.transport_failure = true;
    outcome.result.status = WireStatus::kError;
    outcome.result.error = "connect: " + error;
    return outcome;
  }
  RequestFrame request;
  request.request_id = next_request_id_.fetch_add(1);
  request.op = op;
  request.tenant.assign(tenant);
  request.first_element = first_element;
  request.element_count = element_count;
  request.payload = ToBytes(payload);
  const Bytes encoded = EncodeRequestFrame(request);
  outcome.sent = true;  // conservative: a partial send still counts
  const IoStatus send_status =
      SendFrame(fd.get(), ByteSpan(encoded),
                IoDeadline::After(*clock_, options_.write_deadline_ns));
  if (send_status != IoStatus::kOk) {
    outcome.transport_failure = true;
    outcome.result.status = WireStatus::kError;
    outcome.result.error =
        std::string("send: ") + IoStatusName(send_status);
    return outcome;  // fd closes: a half-written frame poisons the stream
  }
  Bytes reply;
  const IoStatus recv_status =
      RecvFrame(fd.get(), &reply, kMaxFrameBytes, *clock_,
                options_.read_deadline_ns, options_.read_deadline_ns);
  if (recv_status != IoStatus::kOk) {
    outcome.transport_failure = true;
    outcome.result.status = WireStatus::kError;
    outcome.result.error =
        std::string("recv: ") + IoStatusName(recv_status);
    return outcome;
  }
  DecodedFrame decoded;
  try {
    decoded = DecodeFrame(ByteSpan(reply));
  } catch (const WireFormatError& e) {
    outcome.transport_failure = true;
    outcome.result.status = WireStatus::kError;
    outcome.result.error = e.what();
    return outcome;
  }
  if (decoded.kind == FrameKind::kResponse) {
    if (decoded.response.request_id != request.request_id) {
      outcome.transport_failure = true;
      outcome.result.status = WireStatus::kError;
      outcome.result.error = "response for unexpected request id";
      return outcome;  // stream out of sync; drop the connection
    }
    outcome.result.status = WireStatus::kOk;
    outcome.result.payload = std::move(decoded.response.payload);
    ReturnConnection(fd.Release());
    return outcome;
  }
  if (decoded.kind == FrameKind::kError) {
    const ErrorFrame& err = decoded.error;
    // id 0 = connection-scoped error (bad frame, version skew, limits).
    if (err.request_id != 0 && err.request_id != request.request_id) {
      outcome.transport_failure = true;
      outcome.result.status = WireStatus::kError;
      outcome.result.error = "error frame for unexpected request id";
      return outcome;
    }
    outcome.result.status = err.status;
    outcome.result.retry_after_ns = err.retry_after_ns;
    outcome.result.error = err.message;
    // The server closes after connection-scoped errors; only per-request
    // rejections leave the stream reusable.
    if (IsRetryableStatus(err.status) ||
        err.status == WireStatus::kShuttingDown ||
        err.status == WireStatus::kError ||
        err.status == WireStatus::kCancelled) {
      ReturnConnection(fd.Release());
    }
    return outcome;
  }
  outcome.transport_failure = true;
  outcome.result.status = WireStatus::kError;
  outcome.result.error = "unexpected request frame from server";
  return outcome;
}

int TransportClient::CheckoutConnection(std::string* error) {
  {
    primacy::MutexLock lock(mu_);
    if (!pool_.empty()) {
      const int fd = pool_.back();
      pool_.pop_back();
      return fd;
    }
  }
  connects_.fetch_add(1);
  return ConnectUnixSocket(options_.socket_path,
                           IoDeadline::After(*clock_,
                                             options_.connect_timeout_ns),
                           error);
}

void TransportClient::ReturnConnection(int fd) {
  if (fd < 0) return;
  primacy::MutexLock lock(mu_);
  if (pool_.size() < options_.max_pooled_connections) {
    pool_.push_back(fd);
    return;
  }
  UniqueFd closer(fd);  // pool full: close
}

void TransportClient::SleepNs(std::uint64_t wait_ns) {
  if (wait_ns == 0) return;
  primacy::MutexLock lock(mu_);
  const std::uint64_t now = clock_->NowNs();
  const std::uint64_t deadline =
      now > service::kNoDeadlineNs - wait_ns ? service::kNoDeadlineNs - 1
                                             : now + wait_ns;
  while (clock_->NowNs() < deadline) {
    clock_->WaitUntil(mu_, cv_, deadline);
  }
}

double TransportClient::NextJitter() {
  primacy::MutexLock lock(mu_);
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(SplitMix64(jitter_state_) >> 11) * 0x1.0p-53;
}

}  // namespace primacy::transport
