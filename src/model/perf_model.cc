#include "model/perf_model.h"

#include "util/error.h"

namespace primacy {
namespace {

void Validate(const ModelInputs& in) {
  if (in.chunk_bytes <= 0 || in.rho <= 0) {
    throw InvalidArgumentError("model: chunk_bytes and rho must be positive");
  }
  if (in.alpha1 < 0 || in.alpha1 > 1 || in.alpha2 < 0 || in.alpha2 > 1) {
    throw InvalidArgumentError("model: alpha out of [0,1]");
  }
  if (in.sigma_ho < 0 || in.sigma_lo < 0) {
    throw InvalidArgumentError("model: sigma must be non-negative");
  }
  for (const double rate :
       {in.network_bps, in.disk_write_bps, in.disk_read_bps,
        in.precondition_bps, in.compress_bps, in.decompress_bps,
        in.postcondition_bps}) {
    if (rate <= 0) {
      throw InvalidArgumentError("model: throughputs must be positive");
    }
  }
}

/// Fraction of C that crosses the network / hits the disk under PRIMACY.
double CompressedFraction(const ModelInputs& in) {
  const double compressed_share =
      in.alpha1 * in.sigma_ho + in.alpha2 * (1.0 - in.alpha1) * in.sigma_lo;
  const double raw_factor = in.literal_eq11 ? in.sigma_lo : 1.0;
  const double raw_share =
      (1.0 - in.alpha2) * (1.0 - in.alpha1) * raw_factor;
  return compressed_share + raw_share;
}

}  // namespace

double PrimacyOutputBytes(const ModelInputs& in) {
  Validate(in);
  return CompressedFraction(in) * in.chunk_bytes + in.metadata_bytes;
}

ModelBreakdown BaselineWrite(const ModelInputs& in) {
  Validate(in);
  ModelBreakdown out;
  const double c = in.chunk_bytes;
  // Eq. 4: network contention scales with the compute-to-I/O ratio.
  out.t_transfer = (1.0 + in.rho) * c / in.network_bps;
  // Eq. 5.
  out.t_io = in.rho * c / in.disk_write_bps;
  // Eq. 6.
  out.t_total = out.t_transfer + out.t_io;
  // Eq. 3.
  out.throughput_bps = in.rho * c / out.t_total;
  return out;
}

ModelBreakdown PrimacyWrite(const ModelInputs& in) {
  Validate(in);
  ModelBreakdown out;
  const double c = in.chunk_bytes;
  // Eqs. 7-8: preconditioning the whole chunk, then ISOBAR analysis of the
  // lower-order part.
  out.t_prec1 = c / in.precondition_bps;
  out.t_prec2 = (1.0 - in.alpha1) * c / in.precondition_bps;
  // Eqs. 9-10: solver time on the two compressible shares.
  out.t_compress1 = in.alpha1 * c / in.compress_bps;
  out.t_compress2 = in.alpha2 * (1.0 - in.alpha1) * c / in.compress_bps;
  // Eqs. 11-12 (plus metadata): the reduced payload crosses the network and
  // lands on disk.
  const double payload = CompressedFraction(in) * c + in.metadata_bytes;
  out.t_transfer = (1.0 + in.rho) * payload / in.network_bps;
  out.t_io = in.rho * payload / in.disk_write_bps;
  // Eq. 13.
  out.t_total = out.t_prec1 + out.t_prec2 + out.t_compress1 +
                out.t_compress2 + out.t_transfer + out.t_io;
  out.throughput_bps = in.rho * c / out.t_total;
  return out;
}

ModelBreakdown BaselineRead(const ModelInputs& in) {
  Validate(in);
  ModelBreakdown out;
  const double c = in.chunk_bytes;
  out.t_io = in.rho * c / in.disk_read_bps;
  out.t_transfer = (1.0 + in.rho) * c / in.network_bps;
  out.t_total = out.t_io + out.t_transfer;
  out.throughput_bps = in.rho * c / out.t_total;
  return out;
}

ModelBreakdown PrimacyRead(const ModelInputs& in) {
  Validate(in);
  ModelBreakdown out;
  const double c = in.chunk_bytes;
  const double payload = CompressedFraction(in) * c + in.metadata_bytes;
  // Inverse order: disk read, network transfer, decompression of the two
  // compressed shares, inverse preconditioning.
  out.t_io = in.rho * payload / in.disk_read_bps;
  out.t_transfer = (1.0 + in.rho) * payload / in.network_bps;
  out.t_compress1 = in.alpha1 * c / in.decompress_bps;
  out.t_compress2 = in.alpha2 * (1.0 - in.alpha1) * c / in.decompress_bps;
  out.t_prec1 = c / in.postcondition_bps;
  out.t_prec2 = (1.0 - in.alpha1) * c / in.postcondition_bps;
  out.t_total = out.t_io + out.t_transfer + out.t_compress1 +
                out.t_compress2 + out.t_prec1 + out.t_prec2;
  out.throughput_bps = in.rho * c / out.t_total;
  return out;
}

ModelInputs CalibrateFromMeasurements(ModelInputs base,
                                      const PrimacyStats& stats,
                                      double precondition_bps,
                                      double compress_bps,
                                      double decompress_bps,
                                      double postcondition_bps) {
  if (stats.input_bytes == 0) {
    throw InvalidArgumentError("CalibrateFromMeasurements: empty stats");
  }
  const auto input = static_cast<double>(stats.input_bytes);
  // The ID-mapped high-order share is 2 of 8 bytes.
  base.alpha1 = 0.25;
  base.alpha2 = stats.mean_compressible_fraction;
  const double high_bytes = input * base.alpha1;
  const double low_bytes = input - high_bytes;
  base.sigma_ho =
      static_cast<double>(stats.id_compressed_bytes) / high_bytes;
  const double low_compressed_bytes =
      static_cast<double>(stats.mantissa_stream_bytes) -
      static_cast<double>(stats.mantissa_raw_bytes);
  const double low_compressible_input = base.alpha2 * low_bytes;
  base.sigma_lo = low_compressible_input > 0
                      ? low_compressed_bytes / low_compressible_input
                      : 1.0;
  base.metadata_bytes =
      stats.chunks == 0 ? 0.0
                        : static_cast<double>(stats.index_bytes) /
                              static_cast<double>(stats.chunks);
  base.precondition_bps = precondition_bps;
  base.compress_bps = compress_bps;
  base.decompress_bps = decompress_bps;
  base.postcondition_bps = postcondition_bps;
  return base;
}

}  // namespace primacy
