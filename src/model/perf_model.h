// The paper's analytical performance model (Section III, Eqs. 3–13): end-to-
// end write/read time and aggregate throughput for a bulk-synchronous
// staging environment, with and without PRIMACY at the compute nodes.
//
// Symbols follow Tables I and II. Throughputs are bytes/second; sizes are
// bytes. Compression ratios sigma are *compressed/original* fractions (< 1
// means the data shrank), exactly as Table I defines them.
//
// Eq. 11/12 note: the published equations multiply the incompressible
// fraction (1-alpha2)(1-alpha1) by sigma_lo, which double-counts the
// compression of bytes that are explicitly *not* compressed; we treat that
// as an erratum and use a factor of 1 for the raw fraction by default.
// `literal_eq11` switches to the published form for comparison.
#pragma once

#include "compress/codec.h"
#include "core/primacy_codec.h"

namespace primacy {

/// Table I inputs.
struct ModelInputs {
  double chunk_bytes = 3.0 * 1024 * 1024;  // C
  double metadata_bytes = 4096;            // delta
  double alpha1 = 0.25;  // fraction of the chunk handled by the ID mapper
  double alpha2 = 0.3;   // compressible fraction of the lower-order bytes
  double sigma_ho = 0.4; // compressed/original on the high-order bytes
  double sigma_lo = 0.9; // compressed/original on the compressible low bytes
  double rho = 8.0;      // compute : I/O node ratio
  double network_bps = 500e6;     // theta
  double disk_write_bps = 180e6;  // mu_w
  double disk_read_bps = 220e6;   // mu_r (read-path analogue of mu_w)
  double precondition_bps = 600e6;   // Tprec
  double compress_bps = 80e6;        // Tcomp
  double decompress_bps = 250e6;     // Tdecomp (read path)
  double postcondition_bps = 800e6;  // inverse preconditioner (read path)
  bool literal_eq11 = false;
};

/// Table II outputs. Unused stages are zero (e.g. the base case never
/// preconditions).
struct ModelBreakdown {
  double t_prec1 = 0.0;
  double t_prec2 = 0.0;
  double t_compress1 = 0.0;
  double t_compress2 = 0.0;
  double t_transfer = 0.0;
  double t_io = 0.0;      // t_write on the write path, t_read on reads
  double t_total = 0.0;
  double throughput_bps = 0.0;  // tau = rho * C / t_total

  double ThroughputMBps() const { return throughput_bps / 1e6; }
};

/// Bytes leaving a compute node per chunk under PRIMACY (compressed payload
/// + metadata), as a fraction of C it is the model's effective sigma.
double PrimacyOutputBytes(const ModelInputs& in);

/// Base case (Eqs. 4–6): raw data through the I/O nodes to disk.
ModelBreakdown BaselineWrite(const ModelInputs& in);

/// PRIMACY at the compute nodes (Eqs. 7–13).
ModelBreakdown PrimacyWrite(const ModelInputs& in);

/// Read paths: inverse order of operations (Section III-C's closing remark).
ModelBreakdown BaselineRead(const ModelInputs& in);
ModelBreakdown PrimacyRead(const ModelInputs& in);

/// Calibration: fills the data-dependent inputs (alpha*, sigma*, T*) from a
/// measured PRIMACY run and solver measurement on the same data.
ModelInputs CalibrateFromMeasurements(ModelInputs base,
                                      const PrimacyStats& stats,
                                      double precondition_bps,
                                      double compress_bps,
                                      double decompress_bps,
                                      double postcondition_bps);

}  // namespace primacy
