#include "datasets/datasets.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace primacy {
namespace {

DatasetSpec Bits(std::string name, std::uint64_t seed,
                 std::size_t unique_exponents, double decay,
                 std::size_t noise_bytes, std::size_t codebook,
                 double repeat = 0.0) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.kind = DatasetKind::kBitPattern;
  spec.seed = seed;
  spec.unique_exponents = unique_exponents;
  spec.exponent_decay = decay;
  spec.noise_mantissa_bytes = noise_bytes;
  spec.mantissa_codebook = codebook;
  spec.repeat_probability = repeat;
  return spec;
}

DatasetSpec Ramp(std::string name, std::uint64_t seed, double slope_sigma,
                 double jitter_sigma, std::size_t mean_segment) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.kind = DatasetKind::kRamp;
  spec.seed = seed;
  spec.slope_sigma = slope_sigma;
  spec.jitter_sigma = jitter_sigma;
  spec.mean_segment = mean_segment;
  return spec;
}

DatasetSpec Smooth(std::string name, std::uint64_t seed, double ar,
                   double sigma, double repeat = 0.0) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.kind = DatasetKind::kSmooth;
  spec.seed = seed;
  spec.ar_coefficient = ar;
  spec.step_sigma = sigma;
  spec.repeat_probability = repeat;
  return spec;
}

/// Profiles are tuned so the *relative* Table III behaviours hold: gts_* and
/// obs_temp/num_control nearly incompressible for a vanilla byte coder;
/// num_plasma and obs_error moderately compressible; msg_sppm easy to
/// compress; msg_*/num_brain smooth enough for predictive coders.
std::vector<DatasetSpec> BuildAllDatasets() {
  return {
      Bits("gts_chkp_zeon", 101, 1200, 0.995, 6, 32),
      Bits("gts_chkp_zion", 102, 1100, 0.995, 6, 32),
      Bits("gts_phi_l", 103, 900, 0.993, 6, 32),
      Bits("gts_phi_nl", 104, 950, 0.993, 6, 32),
      Bits("flash_gamc", 105, 300, 0.970, 5, 24),
      Bits("flash_velx", 106, 700, 0.985, 6, 32),
      Bits("flash_vely", 107, 700, 0.985, 6, 32),
      Ramp("msg_bt", 108, 1e-7, 3e-12, 64),
      Smooth("msg_lu", 109, 0.9, 2e-2),
      Ramp("msg_sp", 110, 3e-7, 1e-11, 48),
      Bits("msg_sppm", 111, 40, 0.80, 2, 8, 0.85),
      Smooth("msg_sweep3d", 112, 0.95, 1e-2),
      Ramp("num_brain", 113, 5e-8, 1e-12, 96),
      Bits("num_comet", 114, 500, 0.990, 5, 24),
      Bits("num_control", 115, 1800, 0.998, 6, 48),
      Bits("num_plasma", 116, 150, 0.900, 4, 12),
      Bits("obs_error", 117, 250, 0.930, 4, 16),
      Bits("obs_info", 118, 600, 0.980, 5, 24),
      Bits("obs_spitzer", 119, 400, 0.960, 5, 20),
      Bits("obs_temp", 120, 1500, 0.996, 6, 40),
  };
}

/// Builds the dataset's private codebook of high-order byte pairs: values
/// clustered in a realistic exponent band (|x| roughly 1e-6..1e+8) with a
/// handful of sign/exponent combinations, mirroring Figure 3(a)'s
/// concentrated spikes.
std::vector<std::uint16_t> BuildExponentCodebook(const DatasetSpec& spec,
                                                 Rng& rng) {
  std::vector<std::uint16_t> codebook;
  codebook.reserve(spec.unique_exponents);
  // Base biased exponent near 1023 (values around 1.0); spread over a band.
  while (codebook.size() < spec.unique_exponents) {
    const bool negative = rng.NextBool(0.3);
    // Stay below the biased-exponent 1024 boundary so the top exponent bit
    // is constant, matching the strong per-bit regularity real scientific
    // data shows in the first two bytes (Figure 1).
    const std::uint64_t exponent = 978 + rng.NextBelow(45);  // |x| <= ~2
    const std::uint64_t mantissa_top = rng.NextBelow(16);  // top 4 mantissa bits
    const auto pattern = static_cast<std::uint16_t>(
        ((negative ? 1u : 0u) << 15) |
        (static_cast<std::uint32_t>(exponent) << 4) |
        static_cast<std::uint32_t>(mantissa_top));
    codebook.push_back(pattern);
  }
  // Duplicates across draws are fine: they merely reduce the effective
  // unique count slightly, as in real data.
  return codebook;
}

std::vector<double> GenerateBitPattern(const DatasetSpec& spec,
                                       std::size_t elements) {
  Rng rng(spec.seed);
  const auto codebook = BuildExponentCodebook(spec, rng);

  // Structured mantissa bytes draw from a small per-dataset byte codebook.
  std::vector<std::uint8_t> mantissa_codebook(spec.mantissa_codebook);
  for (auto& value : mantissa_codebook) {
    value = static_cast<std::uint8_t>(rng.NextBelow(256));
  }

  std::vector<double> values(elements);
  for (std::size_t i = 0; i < elements; ++i) {
    if (spec.repeat_probability > 0.0 && i > 0 &&
        rng.NextBool(spec.repeat_probability)) {
      // Repeat a recent value (short-range exact redundancy, as in sPPM's
      // piecewise-constant fields).
      const std::size_t back = 1 + rng.NextBelow(std::min<std::size_t>(i, 8));
      values[i] = values[i - back];
      continue;
    }
    const std::uint16_t high =
        codebook[rng.NextSkewed(codebook.size(), spec.exponent_decay)];
    std::uint64_t bits = static_cast<std::uint64_t>(high) << 48;
    const std::size_t structured =
        6 - std::min<std::size_t>(6, spec.noise_mantissa_bytes);
    for (std::size_t b = 0; b < 6; ++b) {
      // Byte position from the high end of the remaining 48 bits.
      const std::uint64_t byte_value =
          b < structured
              ? mantissa_codebook[rng.NextSkewed(mantissa_codebook.size(),
                                                 0.7)]
              : rng.NextBelow(256);
      bits |= byte_value << (8 * (5 - b));
    }
    values[i] = std::bit_cast<double>(bits);
  }
  return values;
}

std::vector<double> GenerateSmooth(const DatasetSpec& spec,
                                   std::size_t elements) {
  Rng rng(spec.seed);
  std::vector<double> values(elements);
  double x = 1.0 + rng.NextDouble();
  for (std::size_t i = 0; i < elements; ++i) {
    if (spec.repeat_probability > 0.0 && i > 0 &&
        rng.NextBool(spec.repeat_probability)) {
      values[i] = values[i - 1];
      continue;
    }
    x = spec.ar_coefficient * x +
        (1.0 - spec.ar_coefficient) * 1.0 +  // mean reversion to 1.0
        rng.NextGaussian() * spec.step_sigma;
    values[i] = x;
  }
  return values;
}

std::vector<double> GenerateRamp(const DatasetSpec& spec,
                                 std::size_t elements) {
  Rng rng(spec.seed);
  std::vector<double> values(elements);
  double x = 1.0 + rng.NextDouble();
  double slope = rng.NextGaussian() * spec.slope_sigma;
  for (std::size_t i = 0; i < elements; ++i) {
    // Geometric segment ends: a new slope starts with probability
    // 1/mean_segment per step.
    if (spec.mean_segment > 0 &&
        rng.NextBool(1.0 / static_cast<double>(spec.mean_segment))) {
      slope = rng.NextGaussian() * spec.slope_sigma;
    }
    x += slope + rng.NextGaussian() * spec.jitter_sigma;
    // Keep the field bounded so exponents stay in a realistic band.
    if (x > 2.0 || x < 0.5) slope = -slope;
    values[i] = x;
  }
  return values;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const auto* datasets = new std::vector<DatasetSpec>(BuildAllDatasets());
  return *datasets;
}

const DatasetSpec& FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name) return spec;
  }
  throw InvalidArgumentError("FindDataset: unknown dataset " + name);
}

std::vector<double> GenerateDataset(const DatasetSpec& spec,
                                    std::size_t elements) {
  if (elements == 0) elements = spec.default_elements;
  switch (spec.kind) {
    case DatasetKind::kBitPattern:
      return GenerateBitPattern(spec, elements);
    case DatasetKind::kSmooth:
      return GenerateSmooth(spec, elements);
    case DatasetKind::kRamp:
      return GenerateRamp(spec, elements);
  }
  throw InternalError("GenerateDataset: bad kind");
}

std::vector<double> GenerateDatasetByName(const std::string& name,
                                          std::size_t elements) {
  return GenerateDataset(FindDataset(name), elements);
}

std::vector<double> PermuteElements(std::vector<double> values,
                                    std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = rng.NextBelow(i);
    std::swap(values[i - 1], values[j]);
  }
  return values;
}

}  // namespace primacy
