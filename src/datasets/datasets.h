// Synthetic stand-ins for the paper's 20 proprietary scientific datasets.
//
// The originals (GTS fusion checkpoints, FLASH astrophysics, NPB `msg_*`
// traces, numeric simulations `num_*`, satellite observations `obs_*`) are
// not redistributable; what PRIMACY's behaviour depends on is their
// *distributional* shape, which these generators reproduce (and the Figure
// 1 / Figure 3 benches verify):
//
//  * a small, heavily skewed set of distinct high-order (sign+exponent)
//    byte pairs — typically well under 2,000 of the 65,536 possible;
//  * near-uniform noise in the low-order mantissa bytes (with a controllable
//    number of structured high-mantissa bytes);
//  * optional temporal smoothness (AR(1)) that predictive coders exploit;
//  * optional exact-repeat structure (msg_sppm's easy-to-compress profile).
//
// Every generator is deterministic in (dataset seed, element count).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace primacy {

enum class DatasetKind {
  kBitPattern,  // direct construction of exponent/mantissa byte populations
  kSmooth,      // AR(1) time series (predictive-coder friendly)
  kRamp,        // piecewise-linear ramps: near-constant deltas that context
                // predictors (FCM/DFCM) learn exactly but byte-level LZ
                // cannot exploit — the profile where fpc/fpzip win
};

/// Generator profile for one synthetic dataset.
struct DatasetSpec {
  std::string name;
  DatasetKind kind = DatasetKind::kBitPattern;
  std::uint64_t seed = 0;

  // kBitPattern parameters.
  std::size_t unique_exponents = 1000;  // distinct high-order byte pairs
  double exponent_decay = 0.99;         // frequency skew across those pairs
  std::size_t noise_mantissa_bytes = 6; // low-order bytes that are pure noise
  std::size_t mantissa_codebook = 32;   // distinct values for structured bytes

  // kSmooth parameters.
  double ar_coefficient = 0.99;
  double step_sigma = 1e-3;

  // kRamp parameters.
  double slope_sigma = 1e-6;        // scale of per-segment slopes
  double jitter_sigma = 1e-9;       // per-step deviation from the exact ramp
  std::size_t mean_segment = 64;    // mean elements per constant-slope segment

  // Shared.
  double repeat_probability = 0.0;  // chance of exactly repeating a recent value
  std::size_t default_elements = 1 << 19;  // 512 Ki doubles = 4 MiB
};

/// The 20 dataset profiles of Table III, in the paper's row order.
const std::vector<DatasetSpec>& AllDatasets();

/// Lookup by Table III name (e.g. "num_plasma"); throws InvalidArgumentError
/// if unknown.
const DatasetSpec& FindDataset(const std::string& name);

/// Generates `elements` doubles (0 = the spec's default count).
std::vector<double> GenerateDataset(const DatasetSpec& spec,
                                    std::size_t elements = 0);
std::vector<double> GenerateDatasetByName(const std::string& name,
                                          std::size_t elements = 0);

/// Deterministic Fisher–Yates permutation of the element order — the paper's
/// Section IV-G "user-controlled linearization" experiment.
std::vector<double> PermuteElements(std::vector<double> values,
                                    std::uint64_t seed);

}  // namespace primacy
