// Umbrella header: the full public API of the PRIMACY library.
//
//   #include "primacy.h"
//   primacy::PrimacyCompressor compressor;
//   primacy::Bytes stream = compressor.Compress(my_doubles);
//
// Layered contents:
//   core preconditioner  — core/primacy_codec.h, core/streaming.h,
//                          core/in_situ.h
//   read-path cache      — cache/block_cache.h
//   solver codecs        — deflate/, lzfast/, bwt/ (byte-level classes) and
//                          fpc/, fpzip_like/ (predictive comparators),
//                          registry in compress/
//   ISOBAR               — isobar/
//   evaluation substrate — datasets/, model/, hpcsim/
#pragma once

#include "cache/block_cache.h"     // IWYU pragma: export
#include "compress/codec.h"        // IWYU pragma: export
#include "compress/frame.h"        // IWYU pragma: export
#include "compress/registry.h"     // IWYU pragma: export
#include "core/builtin_codecs.h"   // IWYU pragma: export
#include "core/in_situ.h"          // IWYU pragma: export
#include "core/primacy_codec.h"    // IWYU pragma: export
#include "core/streaming.h"        // IWYU pragma: export
#include "datasets/datasets.h"     // IWYU pragma: export
#include "hpcsim/checkpoint_planner.h"  // IWYU pragma: export
#include "hpcsim/staging.h"        // IWYU pragma: export
#include "isobar/analyzer.h"       // IWYU pragma: export
#include "isobar/partitioned_codec.h"  // IWYU pragma: export
#include "model/perf_model.h"      // IWYU pragma: export
#include "store/checkpoint_store.h"  // IWYU pragma: export
#include "util/bytes.h"            // IWYU pragma: export
#include "util/error.h"            // IWYU pragma: export
