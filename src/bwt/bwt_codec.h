// Block-sorting codec (bzip2 class): BWT + MTF + zero-run coding + canonical
// Huffman, applied per block. High compression ratio, low throughput — the
// paper's Section IV-C uses this class to argue bzlib2 is unsuitable for
// in-situ processing; our benches reproduce that trade-off.
//
// Container format:
//   varint original_size, u8 mode (0 = stored, 1 = bwt)
//   bwt mode: per block —
//     varint block_length (input bytes covered)
//     varint primary_index
//     varint zrle_symbol_count
//     block(serialized Huffman code lengths, 257-symbol alphabet)
//     block(bit-packed symbol stream)
#pragma once

#include "compress/codec.h"

namespace primacy {

class BwtCodec final : public Codec {
 public:
  /// `block_size` trades ratio for suffix-sort time; default mirrors a small
  /// bzip2 block and keeps sorting inexpensive.
  explicit BwtCodec(std::size_t block_size = 128 * 1024);

  std::string_view name() const override { return "bwt"; }
  Bytes Compress(ByteSpan data) const override;
  Bytes Decompress(ByteSpan data) const override;

 private:
  std::size_t block_size_;
};

}  // namespace primacy
