// The reversible transforms of the block-sorting pipeline:
// Burrows–Wheeler transform, move-to-front coding, and bzip2-style
// zero-run-length (RUNA/RUNB) coding.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace primacy {

/// Result of the forward BWT: the permuted last column (same length as the
/// input) and the row index where the virtual sentinel fell.
struct BwtResult {
  Bytes last_column;
  std::size_t primary_index = 0;
};

/// Forward Burrows–Wheeler transform (sentinel-suffix construction).
BwtResult BwtForward(ByteSpan text);

/// Inverse transform. Throws CorruptStreamError when `primary_index` is out
/// of range for the given column.
Bytes BwtInverse(ByteSpan last_column, std::size_t primary_index);

/// Move-to-front coding over the 256-byte alphabet; output[i] is the rank of
/// input byte i in the recency list.
Bytes MtfEncode(ByteSpan data);
Bytes MtfDecode(ByteSpan ranks);

/// bzip2-style zero-run coding of MTF ranks into a 257-symbol alphabet:
/// symbols 0 (RUNA) and 1 (RUNB) spell zero-run lengths in bijective base 2;
/// a non-zero rank r becomes symbol r + 1.
std::vector<std::uint16_t> ZrleEncode(ByteSpan ranks);
Bytes ZrleDecode(std::span<const std::uint16_t> symbols);

inline constexpr std::size_t kZrleAlphabet = 257;

}  // namespace primacy
