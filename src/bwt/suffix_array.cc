#include "bwt/suffix_array.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace primacy {

std::vector<std::int32_t> BuildSuffixArray(ByteSpan text) {
  if (text.size() > static_cast<std::size_t>(1) << 30) {
    throw InvalidArgumentError("BuildSuffixArray: input too large");
  }
  const auto n = static_cast<std::int32_t>(text.size()) + 1;  // + sentinel
  std::vector<std::int32_t> sa(n), rank(n), next_rank(n);
  std::iota(sa.begin(), sa.end(), 0);
  for (std::int32_t i = 0; i + 1 < n; ++i) {
    rank[i] = static_cast<std::int32_t>(text[static_cast<std::size_t>(i)]) + 1;
  }
  rank[n - 1] = 0;  // sentinel: unique smallest

  for (std::int32_t k = 1;; k <<= 1) {
    const auto key = [&](std::int32_t i) {
      return std::pair<std::int32_t, std::int32_t>(
          rank[i], i + k < n ? rank[i + k] : -1);
    };
    std::sort(sa.begin(), sa.end(),
              [&](std::int32_t a, std::int32_t b) { return key(a) < key(b); });
    next_rank[sa[0]] = 0;
    for (std::int32_t i = 1; i < n; ++i) {
      next_rank[sa[i]] =
          next_rank[sa[i - 1]] + (key(sa[i - 1]) < key(sa[i]) ? 1 : 0);
    }
    rank.swap(next_rank);
    if (rank[sa[n - 1]] == n - 1) break;  // all ranks distinct
  }
  PRIMACY_CHECK(sa[0] == n - 1);
  return sa;
}

}  // namespace primacy
