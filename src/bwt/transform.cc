#include "bwt/transform.h"

#include <array>
#include <numeric>

#include "bwt/suffix_array.h"
#include "util/error.h"

namespace primacy {

BwtResult BwtForward(ByteSpan text) {
  const auto sa = BuildSuffixArray(text);
  BwtResult result;
  result.last_column.reserve(text.size());
  for (std::size_t row = 0; row < sa.size(); ++row) {
    const auto suffix = static_cast<std::size_t>(sa[row]);
    if (suffix == 0) {
      // The character before suffix 0 is the sentinel; record its row and
      // emit nothing.
      result.primary_index = row;
      continue;
    }
    result.last_column.push_back(text[suffix - 1]);
  }
  PRIMACY_CHECK(result.last_column.size() == text.size());
  return result;
}

Bytes BwtInverse(ByteSpan last_column, std::size_t primary_index) {
  const std::size_t n = last_column.size();
  if (primary_index > n) {
    throw CorruptStreamError("BwtInverse: primary index out of range");
  }
  if (n == 0) return {};

  // Conceptually re-insert the sentinel at row `primary_index` to obtain the
  // full (n+1)-row last column L'. LF(i) = C[L'[i]] + rank(i), where the
  // sentinel is the smallest symbol. Row 0 of the sorted matrix is the
  // rotation beginning with the sentinel, whose last character is the final
  // character of the text; walking LF from row 0 yields the text backwards.
  const std::size_t rows = n + 1;

  // occ_before[i]: occurrences of symbol L'[i] strictly before row i.
  // C[c]: rows whose last column symbol is smaller than c (sentinel counts 1).
  std::vector<std::uint32_t> occ_before(rows);
  std::array<std::uint32_t, 256> counts{};
  const auto symbol_at = [&](std::size_t row) -> int {
    if (row == primary_index) return -1;  // sentinel
    const std::size_t idx = row < primary_index ? row : row - 1;
    return static_cast<int>(last_column[idx]);
  };
  for (std::size_t row = 0; row < rows; ++row) {
    const int symbol = symbol_at(row);
    if (symbol < 0) {
      occ_before[row] = 0;
      continue;
    }
    occ_before[row] = counts[static_cast<std::size_t>(symbol)]++;
  }
  std::array<std::uint32_t, 257> c_table{};
  c_table[0] = 1;  // the sentinel occupies row 0 of the first column
  for (std::size_t symbol = 0; symbol < 256; ++symbol) {
    c_table[symbol + 1] = c_table[symbol] + counts[symbol];
  }

  Bytes text(n);
  std::size_t row = 0;
  for (std::size_t k = n; k-- > 0;) {
    const int symbol = symbol_at(row);
    if (symbol < 0) {
      throw CorruptStreamError("BwtInverse: walked into the sentinel early");
    }
    text[k] = static_cast<std::byte>(symbol);
    row = c_table[static_cast<std::size_t>(symbol)] + occ_before[row];
  }
  return text;
}

Bytes MtfEncode(ByteSpan data) {
  std::array<std::uint8_t, 256> order;
  std::iota(order.begin(), order.end(), 0);
  Bytes out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto value = static_cast<std::uint8_t>(data[i]);
    std::size_t rank = 0;
    while (order[rank] != value) ++rank;
    out[i] = static_cast<std::byte>(rank);
    // Move to front.
    for (std::size_t j = rank; j > 0; --j) order[j] = order[j - 1];
    order[0] = value;
  }
  return out;
}

Bytes MtfDecode(ByteSpan ranks) {
  std::array<std::uint8_t, 256> order;
  std::iota(order.begin(), order.end(), 0);
  Bytes out(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const auto rank = static_cast<std::size_t>(ranks[i]);
    const std::uint8_t value = order[rank];
    out[i] = static_cast<std::byte>(value);
    for (std::size_t j = rank; j > 0; --j) order[j] = order[j - 1];
    order[0] = value;
  }
  return out;
}

std::vector<std::uint16_t> ZrleEncode(ByteSpan ranks) {
  std::vector<std::uint16_t> symbols;
  symbols.reserve(ranks.size() / 2 + 16);
  std::size_t zero_run = 0;
  const auto flush_run = [&] {
    // Bijective base-2: digits RUNA (=1) and RUNB (=2).
    std::size_t run = zero_run;
    while (run > 0) {
      if (run & 1) {
        symbols.push_back(0);  // RUNA
        run = (run - 1) / 2;
      } else {
        symbols.push_back(1);  // RUNB
        run = (run - 2) / 2;
      }
    }
    zero_run = 0;
  };
  for (const std::byte rank : ranks) {
    if (rank == std::byte{0}) {
      ++zero_run;
      continue;
    }
    flush_run();
    symbols.push_back(
        static_cast<std::uint16_t>(static_cast<std::uint16_t>(rank) + 1));
  }
  flush_run();
  return symbols;
}

Bytes ZrleDecode(std::span<const std::uint16_t> symbols) {
  Bytes out;
  std::size_t run = 0;
  std::size_t base = 1;
  const auto flush_run = [&] {
    out.insert(out.end(), run, std::byte{0});
    run = 0;
    base = 1;
  };
  for (const std::uint16_t symbol : symbols) {
    if (symbol == 0) {
      run += base;
      base *= 2;
      continue;
    }
    if (symbol == 1) {
      run += 2 * base;
      base *= 2;
      continue;
    }
    flush_run();
    if (symbol >= kZrleAlphabet) {
      throw CorruptStreamError("ZrleDecode: symbol out of range");
    }
    out.push_back(static_cast<std::byte>(symbol - 1));
  }
  flush_run();
  return out;
}

}  // namespace primacy
