#include "bwt/bwt_codec.h"

#include <algorithm>
#include <vector>

#include "bitstream/bit_io.h"
#include "bitstream/byte_io.h"
#include "bwt/transform.h"
#include "huffman/huffman.h"
#include "util/error.h"

namespace primacy {
namespace {
constexpr std::uint8_t kModeStored = 0;
constexpr std::uint8_t kModeBwt = 1;
}  // namespace

BwtCodec::BwtCodec(std::size_t block_size) : block_size_(block_size) {
  if (block_size_ < 16) {
    throw InvalidArgumentError("BwtCodec: block size too small");
  }
}

Bytes BwtCodec::Compress(ByteSpan data) const {
  Bytes out;
  PutVarint(out, data.size());
  out.push_back(static_cast<std::byte>(kModeBwt));

  for (std::size_t begin = 0; begin < data.size(); begin += block_size_) {
    const std::size_t length = std::min(block_size_, data.size() - begin);
    const ByteSpan block = data.subspan(begin, length);

    const BwtResult bwt = BwtForward(block);
    const Bytes ranks = MtfEncode(bwt.last_column);
    const std::vector<std::uint16_t> symbols = ZrleEncode(ranks);

    std::vector<std::uint64_t> freq(kZrleAlphabet, 0);
    for (const std::uint16_t s : symbols) ++freq[s];
    const auto lengths = BuildCodeLengths(freq);

    BitWriter writer;
    if (!symbols.empty()) {
      const HuffmanEncoder encoder(lengths);
      for (const std::uint16_t s : symbols) encoder.Encode(writer, s);
    }

    PutVarint(out, length);
    PutVarint(out, bwt.primary_index);
    PutVarint(out, symbols.size());
    PutBlock(out, SerializeCodeLengths(lengths));
    PutBlock(out, writer.Finish());
  }

  if (out.size() > data.size() + 16) {
    Bytes stored;
    PutVarint(stored, data.size());
    stored.push_back(static_cast<std::byte>(kModeStored));
    AppendBytes(stored, data);
    return stored;
  }
  return out;
}

Bytes BwtCodec::Decompress(ByteSpan data) const {
  ByteReader reader(data);
  const std::uint64_t original_size = reader.GetVarint();
  const std::uint8_t mode = reader.GetU8();
  if (mode == kModeStored) {
    const ByteSpan raw = reader.GetRaw(original_size);
    return ToBytes(raw);
  }
  if (mode != kModeBwt) throw CorruptStreamError("bwt: unknown mode");

  Bytes out;
  out.reserve(std::min<std::uint64_t>(original_size, 1u << 26));
  while (out.size() < original_size) {
    const std::uint64_t block_length = reader.GetVarint();
    const std::uint64_t primary_index = reader.GetVarint();
    const std::uint64_t symbol_count = reader.GetVarint();
    const ByteSpan length_bytes = reader.GetBlock();
    const ByteSpan payload = reader.GetBlock();
    if (symbol_count > 8 * payload.size()) {
      throw CorruptStreamError("bwt: symbol count exceeds payload bits");
    }
    if (block_length > original_size) {
      throw CorruptStreamError("bwt: block length exceeds stream size");
    }

    const auto lengths = DeserializeCodeLengths(length_bytes, kZrleAlphabet);
    std::vector<std::uint16_t> symbols;
    symbols.reserve(symbol_count);
    if (symbol_count > 0) {
      const HuffmanDecoder decoder(lengths);
      BitReader bits(payload);
      for (std::uint64_t i = 0; i < symbol_count; ++i) {
        symbols.push_back(static_cast<std::uint16_t>(decoder.Decode(bits)));
      }
    }
    const Bytes ranks = ZrleDecode(symbols);
    if (ranks.size() != block_length) {
      throw CorruptStreamError("bwt: block length mismatch after ZRLE");
    }
    const Bytes block = BwtInverse(MtfDecode(ranks), primary_index);
    if (out.size() + block.size() > original_size) {
      throw CorruptStreamError("bwt: output overrun");
    }
    AppendBytes(out, block);
  }
  if (out.size() != original_size) {
    throw CorruptStreamError("bwt: size mismatch");
  }
  return out;
}

}  // namespace primacy
