// Suffix array construction by prefix doubling (Manber–Myers, O(n log^2 n)
// with std::sort). Block sizes in the BWT codec are capped well below a
// megabyte, where this is comfortably fast and trivially auditable.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace primacy {

/// Returns the suffix array of `text` *plus a virtual sentinel* that is
/// strictly smaller than every byte: the result has text.size() + 1 entries
/// and result[0] == text.size() (the sentinel suffix) always.
std::vector<std::int32_t> BuildSuffixArray(ByteSpan text);

}  // namespace primacy
