// Portable scalar kernel implementations. This header is internal to
// src/kernels: scalar.cc builds the reference table from it, and the SIMD
// translation units reuse the same functions for their vector-remainder
// tails, which is what makes every variant byte-identical to the reference
// at every length by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "kernels/kernels.h"

namespace primacy::kernels::scalar {

inline void SplitW8H2(const std::byte* rows, std::size_t n, std::byte* high,
                      std::byte* low) {
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(high + i * 2, rows + i * 8, 2);
    std::memcpy(low + i * 6, rows + i * 8 + 2, 6);
  }
}

inline void MergeW8H2(const std::byte* high, const std::byte* low,
                      std::size_t n, std::byte* rows) {
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(rows + i * 8, high + i * 2, 2);
    std::memcpy(rows + i * 8 + 2, low + i * 6, 6);
  }
}

inline void SplitW4H2(const std::byte* rows, std::size_t n, std::byte* high,
                      std::byte* low) {
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(high + i * 2, rows + i * 4, 2);
    std::memcpy(low + i * 2, rows + i * 4 + 2, 2);
  }
}

inline void MergeW4H2(const std::byte* high, const std::byte* low,
                      std::size_t n, std::byte* rows) {
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(rows + i * 4, high + i * 2, 2);
    std::memcpy(rows + i * 4 + 2, low + i * 2, 2);
  }
}

template <std::size_t W>
inline void RowToColW(const std::byte* rows, std::size_t n, std::byte* out) {
  for (std::size_t c = 0; c < W; ++c) {
    std::byte* dst = out + c * n;
    for (std::size_t i = 0; i < n; ++i) dst[i] = rows[i * W + c];
  }
}

template <std::size_t W>
inline void ColToRowW(const std::byte* cols, std::size_t n, std::byte* out) {
  for (std::size_t c = 0; c < W; ++c) {
    const std::byte* src = cols + c * n;
    for (std::size_t i = 0; i < n; ++i) out[i * W + c] = src[i];
  }
}

inline void CountPairs(const std::byte* pairs, std::size_t n_pairs,
                       std::uint32_t* counts) {
  for (std::size_t i = 0; i < n_pairs; ++i) {
    const auto hi = static_cast<std::uint32_t>(pairs[2 * i]);
    const auto lo = static_cast<std::uint32_t>(pairs[2 * i + 1]);
    ++counts[(hi << 8) | lo];
  }
}

inline bool MapIds16(const std::byte* pairs, std::size_t n_pairs,
                     const std::uint32_t* ids, std::byte* out) {
  for (std::size_t i = 0; i < n_pairs; ++i) {
    const auto sequence = (static_cast<std::uint32_t>(pairs[2 * i]) << 8) |
                          static_cast<std::uint32_t>(pairs[2 * i + 1]);
    const std::uint32_t id = ids[sequence];
    if (id == kUnmapped16) return false;
    out[2 * i] = static_cast<std::byte>(id >> 8);
    out[2 * i + 1] = static_cast<std::byte>(id & 0xff);
  }
  return true;
}

inline bool UnmapIds16(const std::byte* ids_bytes, std::size_t n_pairs,
                       const std::uint32_t* sequences,
                       std::uint32_t table_size, std::byte* out) {
  for (std::size_t i = 0; i < n_pairs; ++i) {
    const auto id = (static_cast<std::uint32_t>(ids_bytes[2 * i]) << 8) |
                    static_cast<std::uint32_t>(ids_bytes[2 * i + 1]);
    if (id >= table_size) return false;
    const std::uint32_t sequence = sequences[id];
    out[2 * i] = static_cast<std::byte>(sequence >> 8);
    out[2 * i + 1] = static_cast<std::byte>(sequence & 0xff);
  }
  return true;
}

inline void HistogramStride(const std::byte* p, std::size_t count,
                            std::size_t stride_bytes, std::uint64_t* hist) {
  for (std::size_t k = 0; k < count; ++k) {
    ++hist[static_cast<std::size_t>(p[k * stride_bytes])];
  }
}

}  // namespace primacy::kernels::scalar
