// Runtime ISA dispatch: pick the best kernel table the CPU supports, once,
// honoring the PRIMACY_FORCE_ISA environment override, and export the
// selection as the telemetry gauge primacy_kernel_isa{isa="..."}.
#include "kernels/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "kernels/tables.h"
#include "telemetry/metrics.h"

namespace primacy::kernels {
namespace {

struct Selection {
  const KernelTable* table;
  Isa isa;
};

#if PRIMACY_SIMD_ENABLED
/// CPUID probe, callable even from static initializers (where libgcc's own
/// feature-table constructor may not have run yet).
bool CpuHasAvx2() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") != 0;
}
#endif

/// Best ISA this CPU can run (independent of any override).
Isa BestSupportedIsa() {
#if PRIMACY_SIMD_ENABLED
  if (CpuHasAvx2()) return Isa::kAvx2;
  return Isa::kSse2;  // baseline of every x86-64 CPU
#else
  return Isa::kScalar;
#endif
}

bool ParseIsaName(const char* name, Isa& out) {
  if (std::strcmp(name, "scalar") == 0) {
    out = Isa::kScalar;
    return true;
  }
  if (std::strcmp(name, "sse2") == 0) {
    out = Isa::kSse2;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    out = Isa::kAvx2;
    return true;
  }
  return false;
}

void PublishIsaGauge(Isa active) {
  auto& registry = telemetry::MetricsRegistry::Global();
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    std::string labels = std::string("isa=\"") + IsaName(isa) + "\"";
    registry.GetGauge("primacy_kernel_isa", labels).Set(isa == active ? 1 : 0);
  }
}

Selection Resolve() {
  Isa isa = BestSupportedIsa();
  if (const char* forced = std::getenv("PRIMACY_FORCE_ISA")) {
    Isa wanted;
    if (!ParseIsaName(forced, wanted)) {
      std::fprintf(stderr,
                   "primacy: ignoring unknown PRIMACY_FORCE_ISA=%s "
                   "(want scalar|sse2|avx2)\n",
                   forced);
    } else if (TableFor(wanted) == nullptr) {
      std::fprintf(stderr,
                   "primacy: PRIMACY_FORCE_ISA=%s unavailable on this "
                   "build/CPU, using %s\n",
                   forced, IsaName(isa));
    } else {
      isa = wanted;
    }
  }
  PublishIsaGauge(isa);
  return Selection{TableFor(isa), isa};
}

std::atomic<const Selection*> g_active{nullptr};

const Selection& ActiveSelection() {
  const Selection* sel = g_active.load(std::memory_order_acquire);
  if (sel == nullptr) {
    static const Selection resolved = Resolve();
    g_active.store(&resolved, std::memory_order_release);
    sel = &resolved;
  }
  return *sel;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &ScalarTable();
#if PRIMACY_SIMD_ENABLED
    case Isa::kSse2:
      return detail::Sse2Table();
    case Isa::kAvx2:
      return CpuHasAvx2() ? detail::Avx2Table() : nullptr;
#else
    case Isa::kSse2:
    case Isa::kAvx2:
      break;
#endif
  }
  return nullptr;
}

const KernelTable& Active() { return *ActiveSelection().table; }

Isa ActiveIsa() { return ActiveSelection().isa; }

bool ForceIsa(Isa isa) {
  const KernelTable* table = TableFor(isa);
  if (table == nullptr) return false;
  ActiveSelection();  // make sure first-use resolution has happened
  static Selection forced;
  forced = Selection{table, isa};
  g_active.store(&forced, std::memory_order_release);
  PublishIsaGauge(isa);
  return true;
}

}  // namespace primacy::kernels
