// Internal: per-ISA table accessors wired into dispatch.cc. The SIMD
// translation units (sse2.cc, avx2.cc) define these; when PRIMACY_SIMD is
// OFF (or the target is not x86-64) they are compiled out and dispatch.cc
// never references them.
#pragma once

#include "kernels/kernels.h"

#ifndef PRIMACY_SIMD_ENABLED
#define PRIMACY_SIMD_ENABLED 0
#endif

namespace primacy::kernels::detail {

#if PRIMACY_SIMD_ENABLED
const KernelTable* Sse2Table();
const KernelTable* Avx2Table();
#endif

}  // namespace primacy::kernels::detail
