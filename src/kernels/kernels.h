// Runtime-dispatched SIMD kernel layer for the byte-matrix hot paths.
//
// Every PRIMACY transform stage — high/low byte split, row<->column
// transpose, 16-bit pair-frequency counting, ID map/unmap, and the ISOBAR
// column histograms — reduces to one of the narrow kernels below. Each
// kernel has a portable scalar implementation (the semantic reference) plus
// SSE2/AVX2 variants selected once at startup from CPUID; callers go through
// the function-pointer table returned by Active() and never name an ISA.
//
// Contract shared by every variant of a kernel:
//   * byte-identical output to the scalar reference at every length,
//     including 0, 1, and non-multiple-of-vector tails (the vector body
//     hands the tail to the same scalar code the reference uses);
//   * no allocation, no exceptions — lookup kernels report a bad value by
//     returning false and the caller re-derives the precise error;
//   * in-place operation is allowed where noted (unmap/map may have
//     out == in; each block is fully loaded before it is stored).
//
// Dispatch:
//   * Active() resolves once: best ISA the CPU supports, clamped by the
//     PRIMACY_FORCE_ISA=scalar|sse2|avx2 environment override (forcing an
//     unsupported ISA falls back to the best supported one);
//   * builds with -DPRIMACY_SIMD=OFF (or non-x86-64 targets) compile the
//     intrinsics out entirely and Active() is always the scalar table;
//   * the selected ISA is exported as the telemetry gauge
//     primacy_kernel_isa{isa="..."} so `primacy_inspect --metrics` shows
//     what actually ran;
//   * ForceIsa() swaps the active table at runtime for benches and tests.
//
// Intrinsics headers are confined to src/kernels/ (enforced by the
// primacy_lint simd-containment rule); this API is raw pointers + lengths so
// the layer stays the seam a later GPU backend can slot into.
#pragma once

#include <cstddef>
#include <cstdint>

namespace primacy::kernels {

enum class Isa : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Stable lowercase name ("scalar", "sse2", "avx2").
const char* IsaName(Isa isa);

/// ID value marking "sequence never occurred" in a map table (mirrors
/// IdIndex::kUnmapped; duplicated here so the layer stays dependency-free).
inline constexpr std::uint32_t kUnmapped16 = 0xffffffffu;

/// The kernel dispatch table. All lengths are element counts, not bytes;
/// `n` rows of width W occupy n*W contiguous bytes in row linearization.
struct KernelTable {
  // --- High/low split (width 8 and 4, high width 2: the PRIMACY shapes).
  // split: rows (n x W) -> high (n x 2) + low (n x (W-2)), row-linearized.
  // merge is the exact inverse.
  void (*split_w8_h2)(const std::byte* rows, std::size_t n, std::byte* high,
                      std::byte* low);
  void (*merge_w8_h2)(const std::byte* high, const std::byte* low,
                      std::size_t n, std::byte* rows);
  void (*split_w4_h2)(const std::byte* rows, std::size_t n, std::byte* high,
                      std::byte* low);
  void (*merge_w4_h2)(const std::byte* high, const std::byte* low,
                      std::size_t n, std::byte* rows);

  // --- Row<->column transpose of an n x W byte matrix.
  // row_to_col: out[c * n + i] = rows[i * W + c]; col_to_row inverts.
  void (*row_to_col_w2)(const std::byte* rows, std::size_t n, std::byte* out);
  void (*col_to_row_w2)(const std::byte* cols, std::size_t n, std::byte* out);
  void (*row_to_col_w4)(const std::byte* rows, std::size_t n, std::byte* out);
  void (*col_to_row_w4)(const std::byte* cols, std::size_t n, std::byte* out);
  void (*row_to_col_w8)(const std::byte* rows, std::size_t n, std::byte* out);
  void (*col_to_row_w8)(const std::byte* cols, std::size_t n, std::byte* out);

  // --- 16-bit pair-frequency counting.
  // counts[(pairs[2i] << 8) | pairs[2i+1]] += 1 for i in [0, n_pairs).
  // counts has 65536 entries and is NOT zeroed here.
  void (*count_pairs)(const std::byte* pairs, std::size_t n_pairs,
                      std::uint32_t* counts);

  // --- ID mapping (encode): big-endian sequence -> big-endian ID through
  // ids[65536]; entries equal to kUnmapped16 abort with false (out is
  // unspecified then). out may alias pairs.
  bool (*map_ids16)(const std::byte* pairs, std::size_t n_pairs,
                    const std::uint32_t* ids, std::byte* out);

  // --- ID unmapping (decode): big-endian ID -> big-endian sequence through
  // sequences[table_size] (u32-widened); an ID >= table_size aborts with
  // false. out may alias ids_bytes.
  bool (*unmap_ids16)(const std::byte* ids_bytes, std::size_t n_pairs,
                      const std::uint32_t* sequences, std::uint32_t table_size,
                      std::byte* out);

  // --- ISOBAR column histogram accumulate:
  // hist[p[k * stride_bytes]] += 1 for k in [0, count); hist has 256
  // entries and is NOT zeroed here. stride_bytes >= 1.
  void (*histogram_stride)(const std::byte* p, std::size_t count,
                           std::size_t stride_bytes, std::uint64_t* hist);
};

/// The portable scalar reference table (always available).
const KernelTable& ScalarTable();

/// Table for one ISA, or nullptr when that variant is compiled out or the
/// CPU lacks the instructions. Scalar never returns nullptr.
const KernelTable* TableFor(Isa isa);

/// The dispatched table (CPUID + PRIMACY_FORCE_ISA, resolved on first call).
const KernelTable& Active();

/// ISA backing Active().
Isa ActiveIsa();

/// Test/bench hook: swap the active table. Returns false (and changes
/// nothing) when the ISA is compiled out or unsupported by this CPU. Not
/// synchronized against concurrent kernel calls — call from single-threaded
/// setup only.
bool ForceIsa(Isa isa);

}  // namespace primacy::kernels
