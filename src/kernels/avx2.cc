// AVX2 kernel variants. Compiled with -mavx2 for this translation unit only;
// dispatch.cc guarantees these run only after __builtin_cpu_supports("avx2").
//
// The transposes are radix-2 networks: one pass of DeInterleave64 separates
// even/odd byte columns of a 64-byte block, and width-4/8 transposes are 2/3
// such passes held in registers across a 32-row tile. Every kernel hands its
// sub-vector remainder to the scalar reference (scalar_impl.h), so outputs
// are byte-identical to scalar at every length.
#include "kernels/tables.h"

#if PRIMACY_SIMD_ENABLED

#include <immintrin.h>

#include <cstring>

#include "kernels/histogram_unrolled.h"
#include "kernels/scalar_impl.h"

namespace primacy::kernels {
namespace {

inline __m256i Load(const std::byte* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void Store(std::byte* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}
inline __m128i Load128(const std::byte* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline void Store128(std::byte* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

/// 64 consecutive bytes (a ++ b) -> 32 even-index bytes and 32 odd-index
/// bytes, in order. The packus lane fix is the 0xD8 qword permute.
inline void DeInterleave64(__m256i a, __m256i b, __m256i& even, __m256i& odd) {
  const __m256i mask = _mm256_set1_epi16(0x00ff);
  even = _mm256_permute4x64_epi64(
      _mm256_packus_epi16(_mm256_and_si256(a, mask), _mm256_and_si256(b, mask)),
      0xD8);
  odd = _mm256_permute4x64_epi64(
      _mm256_packus_epi16(_mm256_srli_epi16(a, 8), _mm256_srli_epi16(b, 8)),
      0xD8);
}

/// Inverse of DeInterleave64: 32 evens + 32 odds -> 64 interleaved bytes.
inline void Interleave64(__m256i even, __m256i odd, __m256i& out0,
                         __m256i& out1) {
  const __m256i lo = _mm256_unpacklo_epi8(even, odd);
  const __m256i hi = _mm256_unpackhi_epi8(even, odd);
  out0 = _mm256_permute2x128_si256(lo, hi, 0x20);
  out1 = _mm256_permute2x128_si256(lo, hi, 0x31);
}

void RowToColW2(const std::byte* rows, std::size_t n, std::byte* out) {
  // Two passes (all evens, then all odds) rather than one combined pass:
  // each pass runs one load stream against one store stream, which the
  // hardware prefetchers like much better than one load + two distant
  // store streams — measured faster despite reading the input twice.
  // 128-bit registers on purpose: pack stays in-lane, so no cross-lane
  // permute fix-up is needed, and that fix-up made the 256-bit version
  // measurably slower than this one.
  const __m128i mask = _mm_set1_epi16(0x00ff);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + 2 * i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + 2 * i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_packus_epi16(_mm_and_si128(a, mask),
                                      _mm_and_si128(b, mask)));
  }
  for (; i < n; ++i) out[i] = rows[2 * i];
  i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + 2 * i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + 2 * i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + n + i),
                     _mm_packus_epi16(_mm_srli_epi16(a, 8),
                                      _mm_srli_epi16(b, 8)));
  }
  for (; i < n; ++i) out[n + i] = rows[2 * i + 1];
}

void ColToRowW2(const std::byte* cols, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i r0, r1;
    Interleave64(Load(cols + i), Load(cols + n + i), r0, r1);
    Store(out + 2 * i, r0);
    Store(out + 2 * i + 32, r1);
  }
  for (; i < n; ++i) {
    out[2 * i] = cols[i];
    out[2 * i + 1] = cols[n + i];
  }
}

void RowToColW4(const std::byte* rows, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const std::byte* p = rows + 4 * i;
    __m256i e0, o0, e1, o1;
    DeInterleave64(Load(p), Load(p + 32), e0, o0);
    DeInterleave64(Load(p + 64), Load(p + 96), e1, o1);
    __m256i c0, c1, c2, c3;
    DeInterleave64(e0, e1, c0, c2);
    DeInterleave64(o0, o1, c1, c3);
    Store(out + i, c0);
    Store(out + n + i, c1);
    Store(out + 2 * n + i, c2);
    Store(out + 3 * n + i, c3);
  }
  for (; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) out[c * n + i] = rows[4 * i + c];
  }
}

void ColToRowW4(const std::byte* cols, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i c0 = Load(cols + i);
    const __m256i c1 = Load(cols + n + i);
    const __m256i c2 = Load(cols + 2 * n + i);
    const __m256i c3 = Load(cols + 3 * n + i);
    __m256i e0, e1, o0, o1;
    Interleave64(c0, c2, e0, e1);
    Interleave64(c1, c3, o0, o1);
    __m256i r0, r1, r2, r3;
    Interleave64(e0, o0, r0, r1);
    Interleave64(e1, o1, r2, r3);
    std::byte* q = out + 4 * i;
    Store(q, r0);
    Store(q + 32, r1);
    Store(q + 64, r2);
    Store(q + 96, r3);
  }
  for (; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) out[4 * i + c] = cols[c * n + i];
  }
}

void RowToColW8(const std::byte* rows, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const std::byte* p = rows + 8 * i;
    __m256i e[4], o[4];
    for (std::size_t k = 0; k < 4; ++k) {
      DeInterleave64(Load(p + 64 * k), Load(p + 64 * k + 32), e[k], o[k]);
    }
    __m256i ee0, eo0, ee1, eo1, oe0, oo0, oe1, oo1;
    DeInterleave64(e[0], e[1], ee0, eo0);
    DeInterleave64(e[2], e[3], ee1, eo1);
    DeInterleave64(o[0], o[1], oe0, oo0);
    DeInterleave64(o[2], o[3], oe1, oo1);
    __m256i c[8];
    DeInterleave64(ee0, ee1, c[0], c[4]);
    DeInterleave64(eo0, eo1, c[2], c[6]);
    DeInterleave64(oe0, oe1, c[1], c[5]);
    DeInterleave64(oo0, oo1, c[3], c[7]);
    for (std::size_t col = 0; col < 8; ++col) Store(out + col * n + i, c[col]);
  }
  for (; i < n; ++i) {
    for (std::size_t c = 0; c < 8; ++c) out[c * n + i] = rows[8 * i + c];
  }
}

void ColToRowW8(const std::byte* cols, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i c[8];
    for (std::size_t col = 0; col < 8; ++col) c[col] = Load(cols + col * n + i);
    __m256i x[8];
    Interleave64(c[0], c[4], x[0], x[1]);
    Interleave64(c[2], c[6], x[2], x[3]);
    Interleave64(c[1], c[5], x[4], x[5]);
    Interleave64(c[3], c[7], x[6], x[7]);
    __m256i y[4], z[4];
    Interleave64(x[0], x[2], y[0], y[1]);
    Interleave64(x[1], x[3], y[2], y[3]);
    Interleave64(x[4], x[6], z[0], z[1]);
    Interleave64(x[5], x[7], z[2], z[3]);
    std::byte* q = out + 8 * i;
    for (std::size_t k = 0; k < 4; ++k) {
      __m256i r0, r1;
      Interleave64(y[k], z[k], r0, r1);
      Store(q + 64 * k, r0);
      Store(q + 64 * k + 32, r1);
    }
  }
  for (; i < n; ++i) {
    for (std::size_t c = 0; c < 8; ++c) out[8 * i + c] = cols[c * n + i];
  }
}

void SplitW8H2(const std::byte* rows, std::size_t n, std::byte* high,
               std::byte* low) {
  // Per 4-row tile: group [high(4) low(12)] per lane, then compact the two
  // high dwords to the front so one 8-byte and one 16+8-byte store finish
  // the tile.
  const __m256i group = _mm256_setr_epi8(
      0, 1, 8, 9, 2, 3, 4, 5, 6, 7, 10, 11, 12, 13, 14, 15,  //
      0, 1, 8, 9, 2, 3, 4, 5, 6, 7, 10, 11, 12, 13, 14, 15);
  const __m256i compact = _mm256_setr_epi32(0, 4, 1, 2, 3, 5, 6, 7);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_permutevar8x32_epi32(
        _mm256_shuffle_epi8(Load(rows + 8 * i), group), compact);
    const __m128i x0 = _mm256_castsi256_si128(v);
    const __m128i x1 = _mm256_extracti128_si256(v, 1);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(high + 2 * i), x0);
    Store128(low + 6 * i, _mm_alignr_epi8(x1, x0, 8));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(low + 6 * i + 16),
                     _mm_srli_si128(x1, 8));
  }
  scalar::SplitW8H2(rows + 8 * i, n - i, high + 2 * i, low + 6 * i);
}

void MergeW8H2(const std::byte* high, const std::byte* low, std::size_t n,
               std::byte* rows) {
  // Per 4-row tile: an 8-byte high load + a 32-byte low load (24 used), the
  // low halves routed to their lane, then one blend shuffle per source.
  const __m256i low_route = _mm256_setr_epi32(0, 1, 2, 0, 3, 4, 5, 0);
  const __m256i high_pick = _mm256_setr_epi8(
      0, 1, -1, -1, -1, -1, -1, -1, 2, 3, -1, -1, -1, -1, -1, -1,  //
      4, 5, -1, -1, -1, -1, -1, -1, 6, 7, -1, -1, -1, -1, -1, -1);
  const __m256i low_pick = _mm256_setr_epi8(
      -1, -1, 0, 1, 2, 3, 4, 5, -1, -1, 6, 7, 8, 9, 10, 11,  //
      -1, -1, 0, 1, 2, 3, 4, 5, -1, -1, 6, 7, 8, 9, 10, 11);
  std::size_t i = 0;
  // The 32-byte low load needs 6 rows of low bytes ahead; the last tiles go
  // scalar.
  for (; i + 6 <= n; i += 4) {
    const __m128i xh =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(high + 2 * i));
    const __m256i h = _mm256_set_m128i(xh, xh);
    const __m256i l = _mm256_permutevar8x32_epi32(Load(low + 6 * i), low_route);
    Store(rows + 8 * i, _mm256_or_si256(_mm256_shuffle_epi8(h, high_pick),
                                        _mm256_shuffle_epi8(l, low_pick)));
  }
  scalar::MergeW8H2(high + 2 * i, low + 6 * i, n - i, rows + 8 * i);
}

void SplitW4H2(const std::byte* rows, std::size_t n, std::byte* high,
               std::byte* low) {
  // Per 8-row tile: [high(8) low(8)] per lane, qword permute gathers the
  // 16 high bytes and 16 low bytes into two 16-byte stores.
  const __m256i group = _mm256_setr_epi8(
      0, 1, 4, 5, 8, 9, 12, 13, 2, 3, 6, 7, 10, 11, 14, 15,  //
      0, 1, 4, 5, 8, 9, 12, 13, 2, 3, 6, 7, 10, 11, 14, 15);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_permute4x64_epi64(
        _mm256_shuffle_epi8(Load(rows + 4 * i), group), 0xD8);
    Store128(high + 2 * i, _mm256_castsi256_si128(v));
    Store128(low + 2 * i, _mm256_extracti128_si256(v, 1));
  }
  scalar::SplitW4H2(rows + 4 * i, n - i, high + 2 * i, low + 2 * i);
}

void MergeW4H2(const std::byte* high, const std::byte* low, std::size_t n,
               std::byte* rows) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = Load128(high + 2 * i);
    const __m128i l = Load128(low + 2 * i);
    Store128(rows + 4 * i, _mm_unpacklo_epi16(h, l));
    Store128(rows + 4 * i + 16, _mm_unpackhi_epi16(h, l));
  }
  scalar::MergeW4H2(high + 2 * i, low + 2 * i, n - i, rows + 4 * i);
}

void CountPairs(const std::byte* pairs, std::size_t n_pairs,
                std::uint32_t* counts) {
  // High-byte pairs are exponent bytes: long runs of one value dominate
  // real chunks. A 16-pair block that is all one value costs a single
  // compare + one counter add; mixed blocks fall back to the scalar loop.
  std::size_t i = 0;
  for (; i + 16 <= n_pairs; i += 16) {
    const __m256i v = Load(pairs + 2 * i);
    const __m256i first = _mm256_broadcastw_epi16(_mm256_castsi256_si128(v));
    const int eq = _mm256_movemask_epi8(_mm256_cmpeq_epi16(v, first));
    if (eq == -1) {
      const auto hi = static_cast<std::uint32_t>(pairs[2 * i]);
      const auto lo = static_cast<std::uint32_t>(pairs[2 * i + 1]);
      counts[(hi << 8) | lo] += 16;
    } else {
      scalar::CountPairs(pairs + 2 * i, 16, counts);
    }
  }
  scalar::CountPairs(pairs + 2 * i, n_pairs - i, counts);
}

/// Loads 8 big-endian u16 values as zero-extended u32 lane indices.
inline __m256i LoadIndicesBe16(const std::byte* p) {
  const __m128i raw = Load128(p);
  const __m128i native =
      _mm_or_si128(_mm_slli_epi16(raw, 8), _mm_srli_epi16(raw, 8));
  return _mm256_cvtepu16_epi32(native);
}

/// Packs the low u16 of each u32 lane back to 8 big-endian u16 values.
inline __m128i PackBe16(__m256i values) {
  const __m256i be = _mm256_shuffle_epi8(
      values, _mm256_setr_epi8(1, 0, 5, 4, 9, 8, 13, 12, -1, -1, -1, -1, -1,
                               -1, -1, -1, 1, 0, 5, 4, 9, 8, 13, 12, -1, -1,
                               -1, -1, -1, -1, -1, -1));
  return _mm_unpacklo_epi64(_mm256_castsi256_si128(be),
                            _mm256_extracti128_si256(be, 1));
}

bool MapIds16(const std::byte* pairs, std::size_t n_pairs,
              const std::uint32_t* ids, std::byte* out) {
  std::size_t i = 0;
  for (; i + 8 <= n_pairs; i += 8) {
    const __m256i idx = LoadIndicesBe16(pairs + 2 * i);
    const __m256i g = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(ids), idx, 4);
    if (_mm256_movemask_epi8(
            _mm256_cmpeq_epi32(g, _mm256_set1_epi32(-1))) != 0) {
      return false;
    }
    Store128(out + 2 * i, PackBe16(g));
  }
  return scalar::MapIds16(pairs + 2 * i, n_pairs - i, ids, out + 2 * i);
}

bool UnmapIds16(const std::byte* ids_bytes, std::size_t n_pairs,
                const std::uint32_t* sequences, std::uint32_t table_size,
                std::byte* out) {
  // limit = table_size - 1 wraps to -1 for an empty table, which correctly
  // flags every index (all >= 0) as out of range.
  const __m256i limit =
      _mm256_set1_epi32(static_cast<std::int32_t>(table_size) - 1);
  std::size_t i = 0;
  for (; i + 8 <= n_pairs; i += 8) {
    const __m256i idx = LoadIndicesBe16(ids_bytes + 2 * i);
    if (_mm256_movemask_epi8(_mm256_cmpgt_epi32(idx, limit)) != 0) {
      return false;
    }
    const __m256i g = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(sequences), idx, 4);
    Store128(out + 2 * i, PackBe16(g));
  }
  return scalar::UnmapIds16(ids_bytes + 2 * i, n_pairs - i, sequences,
                            table_size, out + 2 * i);
}

void HistogramStride(const std::byte* p, std::size_t count,
                     std::size_t stride_bytes, std::uint64_t* hist) {
  detail::HistogramStrideUnrolled(p, count, stride_bytes, hist);
}

constexpr KernelTable kAvx2Table = {
    SplitW8H2,  MergeW8H2,  SplitW4H2,  MergeW4H2,  RowToColW2,
    ColToRowW2, RowToColW4, ColToRowW4, RowToColW8, ColToRowW8,
    CountPairs, MapIds16,   UnmapIds16, HistogramStride,
};

}  // namespace

namespace detail {
const KernelTable* Avx2Table() { return &kAvx2Table; }
}  // namespace detail

}  // namespace primacy::kernels

#endif  // PRIMACY_SIMD_ENABLED
