// SSE2 kernel variants. SSE2 is part of the x86-64 baseline, so this table
// is selectable on every x86-64 CPU; it exists both as the fallback for
// pre-AVX2 hardware and as a second point on the dispatch curve for the
// kernel bench. No SSSE3+ instructions (no pshufb) — the byte routing is
// done with pack/unpack/shift networks only.
//
// The transposes share the radix-2 structure of the AVX2 versions at half
// the tile height (16 rows), and without lanes the pack/unpack primitives
// need no permute fix-up.
#include "kernels/tables.h"

#if PRIMACY_SIMD_ENABLED

#include <emmintrin.h>

#include <cstring>

#include "kernels/histogram_unrolled.h"
#include "kernels/scalar_impl.h"

namespace primacy::kernels {
namespace {

inline __m128i Load(const std::byte* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline void Store(std::byte* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}
inline void Store8(std::byte* p, __m128i v) {
  _mm_storel_epi64(reinterpret_cast<__m128i*>(p), v);
}

/// 32 consecutive bytes (a ++ b) -> 16 even-index and 16 odd-index bytes.
/// packus saturation is exact here: every word is masked/shifted to <= 255.
inline void DeInterleave32(__m128i a, __m128i b, __m128i& even, __m128i& odd) {
  const __m128i mask = _mm_set1_epi16(0x00ff);
  even = _mm_packus_epi16(_mm_and_si128(a, mask), _mm_and_si128(b, mask));
  odd = _mm_packus_epi16(_mm_srli_epi16(a, 8), _mm_srli_epi16(b, 8));
}

/// Inverse of DeInterleave32.
inline void Interleave32(__m128i even, __m128i odd, __m128i& out0,
                         __m128i& out1) {
  out0 = _mm_unpacklo_epi8(even, odd);
  out1 = _mm_unpackhi_epi8(even, odd);
}

void RowToColW2(const std::byte* rows, std::size_t n, std::byte* out) {
  // Two passes for the same prefetch-friendliness reason as the AVX2
  // version: one load stream against one store stream per pass.
  const __m128i mask = _mm_set1_epi16(0x00ff);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a = Load(rows + 2 * i);
    const __m128i b = Load(rows + 2 * i + 16);
    Store(out + i, _mm_packus_epi16(_mm_and_si128(a, mask),
                                    _mm_and_si128(b, mask)));
  }
  for (; i < n; ++i) out[i] = rows[2 * i];
  i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a = Load(rows + 2 * i);
    const __m128i b = Load(rows + 2 * i + 16);
    Store(out + n + i, _mm_packus_epi16(_mm_srli_epi16(a, 8),
                                        _mm_srli_epi16(b, 8)));
  }
  for (; i < n; ++i) out[n + i] = rows[2 * i + 1];
}

void ColToRowW2(const std::byte* cols, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i r0, r1;
    Interleave32(Load(cols + i), Load(cols + n + i), r0, r1);
    Store(out + 2 * i, r0);
    Store(out + 2 * i + 16, r1);
  }
  for (; i < n; ++i) {
    out[2 * i] = cols[i];
    out[2 * i + 1] = cols[n + i];
  }
}

void RowToColW4(const std::byte* rows, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const std::byte* p = rows + 4 * i;
    __m128i e0, o0, e1, o1;
    DeInterleave32(Load(p), Load(p + 16), e0, o0);
    DeInterleave32(Load(p + 32), Load(p + 48), e1, o1);
    __m128i c0, c1, c2, c3;
    DeInterleave32(e0, e1, c0, c2);
    DeInterleave32(o0, o1, c1, c3);
    Store(out + i, c0);
    Store(out + n + i, c1);
    Store(out + 2 * n + i, c2);
    Store(out + 3 * n + i, c3);
  }
  for (; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) out[c * n + i] = rows[4 * i + c];
  }
}

void ColToRowW4(const std::byte* cols, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i c0 = Load(cols + i);
    const __m128i c1 = Load(cols + n + i);
    const __m128i c2 = Load(cols + 2 * n + i);
    const __m128i c3 = Load(cols + 3 * n + i);
    __m128i e0, e1, o0, o1;
    Interleave32(c0, c2, e0, e1);
    Interleave32(c1, c3, o0, o1);
    __m128i r0, r1, r2, r3;
    Interleave32(e0, o0, r0, r1);
    Interleave32(e1, o1, r2, r3);
    std::byte* q = out + 4 * i;
    Store(q, r0);
    Store(q + 16, r1);
    Store(q + 32, r2);
    Store(q + 48, r3);
  }
  for (; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) out[4 * i + c] = cols[c * n + i];
  }
}

void RowToColW8(const std::byte* rows, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const std::byte* p = rows + 8 * i;
    __m128i e[4], o[4];
    for (std::size_t k = 0; k < 4; ++k) {
      DeInterleave32(Load(p + 32 * k), Load(p + 32 * k + 16), e[k], o[k]);
    }
    __m128i ee0, eo0, ee1, eo1, oe0, oo0, oe1, oo1;
    DeInterleave32(e[0], e[1], ee0, eo0);
    DeInterleave32(e[2], e[3], ee1, eo1);
    DeInterleave32(o[0], o[1], oe0, oo0);
    DeInterleave32(o[2], o[3], oe1, oo1);
    __m128i c[8];
    DeInterleave32(ee0, ee1, c[0], c[4]);
    DeInterleave32(eo0, eo1, c[2], c[6]);
    DeInterleave32(oe0, oe1, c[1], c[5]);
    DeInterleave32(oo0, oo1, c[3], c[7]);
    for (std::size_t col = 0; col < 8; ++col) Store(out + col * n + i, c[col]);
  }
  for (; i < n; ++i) {
    for (std::size_t c = 0; c < 8; ++c) out[c * n + i] = rows[8 * i + c];
  }
}

void ColToRowW8(const std::byte* cols, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i c[8];
    for (std::size_t col = 0; col < 8; ++col) c[col] = Load(cols + col * n + i);
    __m128i x[8];
    Interleave32(c[0], c[4], x[0], x[1]);
    Interleave32(c[2], c[6], x[2], x[3]);
    Interleave32(c[1], c[5], x[4], x[5]);
    Interleave32(c[3], c[7], x[6], x[7]);
    __m128i y[4], z[4];
    Interleave32(x[0], x[2], y[0], y[1]);
    Interleave32(x[1], x[3], y[2], y[3]);
    Interleave32(x[4], x[6], z[0], z[1]);
    Interleave32(x[5], x[7], z[2], z[3]);
    std::byte* q = out + 8 * i;
    for (std::size_t k = 0; k < 4; ++k) {
      __m128i r0, r1;
      Interleave32(y[k], z[k], r0, r1);
      Store(q + 32 * k, r0);
      Store(q + 32 * k + 16, r1);
    }
  }
  for (; i < n; ++i) {
    for (std::size_t c = 0; c < 8; ++c) out[8 * i + c] = cols[c * n + i];
  }
}

void SplitW8H2(const std::byte* rows, std::size_t n, std::byte* high,
               std::byte* low) {
  // Per 2-row tile. Highs: dword+word shuffles compact bytes {0,1,8,9} to
  // the front for one 4-byte store. Lows: two byte-shifts and two 8-byte
  // stores; the second store writes two zero bytes past its 6 payload
  // bytes, which the next tile (or the >= 2-row scalar tail) overwrites.
  std::size_t i = 0;
  if (n >= 4) {
    for (; i + 4 <= n; i += 2) {
      const __m128i v = Load(rows + 8 * i);
      const __m128i t = _mm_shuffle_epi32(v, _MM_SHUFFLE(3, 3, 2, 0));
      const __m128i u = _mm_shufflelo_epi16(t, _MM_SHUFFLE(3, 3, 2, 0));
      std::uint32_t h4 = static_cast<std::uint32_t>(_mm_cvtsi128_si32(u));
      std::memcpy(high + 2 * i, &h4, 4);
      Store8(low + 6 * i, _mm_srli_si128(v, 2));
      Store8(low + 6 * i + 6, _mm_srli_si128(v, 10));
    }
  }
  scalar::SplitW8H2(rows + 8 * i, n - i, high + 2 * i, low + 6 * i);
}

void MergeW8H2(const std::byte* high, const std::byte* low, std::size_t n,
               std::byte* rows) {
  // Per 2-row tile: one 16-byte low load covers both rows' low bytes (the
  // bound keeps it in range); each row is (lows << 2) | highs, 8-byte store.
  std::size_t i = 0;
  for (; i + 3 <= n; i += 2) {
    const __m128i l = Load(low + 6 * i);
    std::uint32_t h4;
    std::memcpy(&h4, high + 2 * i, 4);
    const __m128i r0 =
        _mm_or_si128(_mm_slli_si128(l, 2),
                     _mm_cvtsi32_si128(static_cast<int>(h4 & 0xffffu)));
    const __m128i r1 =
        _mm_or_si128(_mm_slli_si128(_mm_srli_si128(l, 6), 2),
                     _mm_cvtsi32_si128(static_cast<int>(h4 >> 16)));
    Store8(rows + 8 * i, r0);
    Store8(rows + 8 * i + 8, r1);
  }
  scalar::MergeW8H2(high + 2 * i, low + 6 * i, n - i, rows + 8 * i);
}

void SplitW4H2(const std::byte* rows, std::size_t n, std::byte* high,
               std::byte* low) {
  // Per 4-row tile: word shuffles sort [h l h l ...] into [h h l l ...],
  // then the dword shuffle finishes [hhhh llll]; two 8-byte stores.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i v = Load(rows + 4 * i);
    v = _mm_shufflelo_epi16(v, _MM_SHUFFLE(3, 1, 2, 0));
    v = _mm_shufflehi_epi16(v, _MM_SHUFFLE(3, 1, 2, 0));
    v = _mm_shuffle_epi32(v, _MM_SHUFFLE(3, 1, 2, 0));
    Store8(high + 2 * i, v);
    Store8(low + 2 * i, _mm_unpackhi_epi64(v, v));
  }
  scalar::SplitW4H2(rows + 4 * i, n - i, high + 2 * i, low + 2 * i);
}

void MergeW4H2(const std::byte* high, const std::byte* low, std::size_t n,
               std::byte* rows) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = Load(high + 2 * i);
    const __m128i l = Load(low + 2 * i);
    Store(rows + 4 * i, _mm_unpacklo_epi16(h, l));
    Store(rows + 4 * i + 16, _mm_unpackhi_epi16(h, l));
  }
  scalar::MergeW4H2(high + 2 * i, low + 2 * i, n - i, rows + 4 * i);
}

void CountPairs(const std::byte* pairs, std::size_t n_pairs,
                std::uint32_t* counts) {
  // Same run-detection fast path as AVX2 at 8 pairs per block.
  std::size_t i = 0;
  for (; i + 8 <= n_pairs; i += 8) {
    const __m128i v = Load(pairs + 2 * i);
    std::uint16_t first16;
    std::memcpy(&first16, pairs + 2 * i, 2);
    const __m128i first = _mm_set1_epi16(static_cast<short>(first16));
    if (_mm_movemask_epi8(_mm_cmpeq_epi16(v, first)) == 0xffff) {
      const auto hi = static_cast<std::uint32_t>(pairs[2 * i]);
      const auto lo = static_cast<std::uint32_t>(pairs[2 * i + 1]);
      counts[(hi << 8) | lo] += 8;
    } else {
      scalar::CountPairs(pairs + 2 * i, 8, counts);
    }
  }
  scalar::CountPairs(pairs + 2 * i, n_pairs - i, counts);
}

bool MapIds16(const std::byte* pairs, std::size_t n_pairs,
              const std::uint32_t* ids, std::byte* out) {
  // SSE2 has no gather; a 4-way unrolled scalar loop keeps four lookups in
  // flight, which is the practical win on this table-bound kernel.
  std::size_t i = 0;
  for (; i + 4 <= n_pairs; i += 4) {
    std::uint32_t id[4];
    bool ok = true;
    for (std::size_t k = 0; k < 4; ++k) {
      const auto seq =
          (static_cast<std::uint32_t>(pairs[2 * (i + k)]) << 8) |
          static_cast<std::uint32_t>(pairs[2 * (i + k) + 1]);
      id[k] = ids[seq];
      ok = ok && id[k] != kUnmapped16;
    }
    if (!ok) return false;
    for (std::size_t k = 0; k < 4; ++k) {
      out[2 * (i + k)] = static_cast<std::byte>(id[k] >> 8);
      out[2 * (i + k) + 1] = static_cast<std::byte>(id[k] & 0xff);
    }
  }
  return scalar::MapIds16(pairs + 2 * i, n_pairs - i, ids, out + 2 * i);
}

bool UnmapIds16(const std::byte* ids_bytes, std::size_t n_pairs,
                const std::uint32_t* sequences, std::uint32_t table_size,
                std::byte* out) {
  std::size_t i = 0;
  for (; i + 4 <= n_pairs; i += 4) {
    std::uint32_t seq[4];
    for (std::size_t k = 0; k < 4; ++k) {
      const auto id =
          (static_cast<std::uint32_t>(ids_bytes[2 * (i + k)]) << 8) |
          static_cast<std::uint32_t>(ids_bytes[2 * (i + k) + 1]);
      if (id >= table_size) return false;
      seq[k] = sequences[id];
    }
    for (std::size_t k = 0; k < 4; ++k) {
      out[2 * (i + k)] = static_cast<std::byte>(seq[k] >> 8);
      out[2 * (i + k) + 1] = static_cast<std::byte>(seq[k] & 0xff);
    }
  }
  return scalar::UnmapIds16(ids_bytes + 2 * i, n_pairs - i, sequences,
                            table_size, out + 2 * i);
}

void HistogramStride(const std::byte* p, std::size_t count,
                     std::size_t stride_bytes, std::uint64_t* hist) {
  detail::HistogramStrideUnrolled(p, count, stride_bytes, hist);
}

constexpr KernelTable kSse2Table = {
    SplitW8H2,  MergeW8H2,  SplitW4H2,  MergeW4H2,  RowToColW2,
    ColToRowW2, RowToColW4, ColToRowW4, RowToColW8, ColToRowW8,
    CountPairs, MapIds16,   UnmapIds16, HistogramStride,
};

}  // namespace

namespace detail {
const KernelTable* Sse2Table() { return &kSse2Table; }
}  // namespace detail

}  // namespace primacy::kernels

#endif  // PRIMACY_SIMD_ENABLED
