// Dependency-broken histogram accumulate shared by the SIMD kernel tables.
//
// A byte histogram does not vectorize (the increments scatter), but the
// scalar loop's real cost on the skewed columns ISOBAR samples is the
// store-to-load forwarding stall when consecutive samples hit the same
// bucket. Four interleaved sub-histograms (8 KiB, L1-resident) break that
// dependency chain; the 256-entry merge is amortized over the sample count.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/scalar_impl.h"

namespace primacy::kernels::detail {

inline void HistogramStrideUnrolled(const std::byte* p, std::size_t count,
                                    std::size_t stride_bytes,
                                    std::uint64_t* hist) {
  if (count < 64) {  // not worth the 256-entry merge
    scalar::HistogramStride(p, count, stride_bytes, hist);
    return;
  }
  std::uint64_t sub[4][256] = {};
  const std::size_t main = count & ~static_cast<std::size_t>(3);
  for (std::size_t k = 0; k < main; k += 4) {
    ++sub[0][static_cast<std::size_t>(p[k * stride_bytes])];
    ++sub[1][static_cast<std::size_t>(p[(k + 1) * stride_bytes])];
    ++sub[2][static_cast<std::size_t>(p[(k + 2) * stride_bytes])];
    ++sub[3][static_cast<std::size_t>(p[(k + 3) * stride_bytes])];
  }
  scalar::HistogramStride(p + main * stride_bytes, count - main, stride_bytes,
                          hist);
  for (std::size_t b = 0; b < 256; ++b) {
    hist[b] += sub[0][b] + sub[1][b] + sub[2][b] + sub[3][b];
  }
}

}  // namespace primacy::kernels::detail
