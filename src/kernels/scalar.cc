#include "kernels/kernels.h"
#include "kernels/scalar_impl.h"

namespace primacy::kernels {

const KernelTable& ScalarTable() {
  static constexpr KernelTable kTable = {
      scalar::SplitW8H2,    scalar::MergeW8H2,    scalar::SplitW4H2,
      scalar::MergeW4H2,    scalar::RowToColW<2>, scalar::ColToRowW<2>,
      scalar::RowToColW<4>, scalar::ColToRowW<4>, scalar::RowToColW<8>,
      scalar::ColToRowW<8>, scalar::CountPairs,   scalar::MapIds16,
      scalar::UnmapIds16,   scalar::HistogramStride,
  };
  return kTable;
}

}  // namespace primacy::kernels
