// Byte-granular framed serialization: LEB128 varints plus length-prefixed
// blocks. Used by every container format in the library (codec frames,
// PRIMACY chunk records, ISOBAR plans).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace primacy {

/// Appends an unsigned LEB128 varint to `out`.
void PutVarint(Bytes& out, std::uint64_t value);

/// Appends a little-endian fixed-width integer.
void PutU8(Bytes& out, std::uint8_t value);
void PutU16(Bytes& out, std::uint16_t value);
void PutU32(Bytes& out, std::uint32_t value);
void PutU64(Bytes& out, std::uint64_t value);

/// Appends a varint length prefix followed by the block contents.
void PutBlock(Bytes& out, ByteSpan block);

/// Sequential reader over a framed byte buffer; all methods throw
/// CorruptStreamError on truncation.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  std::uint64_t GetVarint();
  std::uint8_t GetU8();
  std::uint16_t GetU16();
  std::uint32_t GetU32();
  std::uint64_t GetU64();

  /// Reads a varint length prefix then returns a view of that many bytes.
  ByteSpan GetBlock();

  /// Returns a view of exactly `count` raw bytes.
  ByteSpan GetRaw(std::size_t count);

  std::size_t Remaining() const { return data_.size() - offset_; }
  bool AtEnd() const { return offset_ == data_.size(); }
  std::size_t Offset() const { return offset_; }

 private:
  [[noreturn]] void ThrowTruncated(const std::string& what) const;

  ByteSpan data_;
  std::size_t offset_ = 0;
};

}  // namespace primacy
