#include "bitstream/bit_io.h"

#include "util/error.h"

namespace primacy {

void BitWriter::WriteBits(std::uint64_t value, unsigned count) {
  if (count > 57) throw InvalidArgumentError("BitWriter: count > 57");
  value &= (1ULL << count) - 1;  // count <= 57, so the shift cannot overflow
  accumulator_ |= value << pending_bits_;
  pending_bits_ += count;
  bit_count_ += count;
  FlushFullBytes();
}

void BitWriter::FlushFullBytes() {
  while (pending_bits_ >= 8) {
    buffer_.push_back(static_cast<std::byte>(accumulator_ & 0xff));
    accumulator_ >>= 8;
    pending_bits_ -= 8;
  }
}

void BitWriter::AlignToByte() {
  const unsigned remainder = pending_bits_ % 8;
  if (remainder != 0) WriteBits(0, 8 - remainder);
}

void BitWriter::WriteBytes(ByteSpan data) {
  if (pending_bits_ != 0) {
    throw InvalidArgumentError("BitWriter::WriteBytes: not byte-aligned");
  }
  AppendBytes(buffer_, data);
  bit_count_ += 8 * static_cast<std::uint64_t>(data.size());
}

Bytes BitWriter::Finish() {
  AlignToByte();
  return std::move(buffer_);
}

void BitReader::Refill() {
  while (available_bits_ <= 56 && next_byte_ < data_.size()) {
    accumulator_ |= static_cast<std::uint64_t>(data_[next_byte_++])
                    << available_bits_;
    available_bits_ += 8;
  }
}

std::uint64_t BitReader::ReadBits(unsigned count) {
  if (count > 57) throw InvalidArgumentError("BitReader: count > 57");
  Refill();
  if (available_bits_ < count) {
    throw CorruptStreamError("BitReader: stream exhausted");
  }
  const std::uint64_t value = accumulator_ & ((1ULL << count) - 1);
  accumulator_ >>= count;
  available_bits_ -= count;
  bits_consumed_ += count;
  return value;
}

std::uint64_t BitReader::PeekBits(unsigned count) {
  if (count > 57) throw InvalidArgumentError("BitReader: count > 57");
  Refill();
  return accumulator_ & ((1ULL << count) - 1);
}

void BitReader::SkipBits(unsigned count) {
  // Same ceiling as ReadBits: without it a count >= 64 reaches the
  // accumulator shift below, which is undefined for a 64-bit operand.
  if (count > 57) throw InvalidArgumentError("BitReader: count > 57");
  Refill();
  if (available_bits_ < count) {
    throw CorruptStreamError("BitReader::SkipBits: stream exhausted");
  }
  accumulator_ >>= count;
  available_bits_ -= count;
  bits_consumed_ += count;
}

void BitReader::AlignToByte() {
  const unsigned remainder = bits_consumed_ % 8;
  if (remainder != 0) SkipBits(8 - static_cast<unsigned>(remainder));
}

Bytes BitReader::ReadBytes(std::size_t count) {
  if (bits_consumed_ % 8 != 0) {
    throw InvalidArgumentError("BitReader::ReadBytes: not byte-aligned");
  }
  // The accumulator may hold already-buffered whole bytes; read through it.
  Bytes out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<std::byte>(ReadBits(8)));
  }
  return out;
}

bool BitReader::AtEnd() const {
  const std::uint64_t total_bits = 8 * static_cast<std::uint64_t>(data_.size());
  // All bytes pulled into the accumulator and fewer than 8 buffered bits left
  // means only final-byte padding can remain.
  return next_byte_ == data_.size() && available_bits_ < 8 &&
         bits_consumed_ + available_bits_ == total_bits;
}

}  // namespace primacy
