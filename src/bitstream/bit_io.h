// LSB-first bit-granular serialization used by the Huffman-coded codecs.
//
// Bit order contract: the first bit written is the least significant bit of
// the first output byte (deflate convention). WriteBits emits the low `count`
// bits of `value` LSB-first; Huffman codes are therefore stored bit-reversed
// by the encoder so the decoder can peek a machine word and index a table.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace primacy {

class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `count` (<= 57) bits of `value`, LSB first.
  void WriteBits(std::uint64_t value, unsigned count);

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte();

  /// Appends raw bytes; the writer must be byte-aligned.
  void WriteBytes(ByteSpan data);

  /// Number of bits written so far.
  std::uint64_t BitCount() const { return bit_count_; }

  /// Flushes any partial byte (zero-padded) and returns the buffer.
  Bytes Finish();

 private:
  void FlushFullBytes();

  Bytes buffer_;
  std::uint64_t accumulator_ = 0;  // pending bits, LSB-first
  unsigned pending_bits_ = 0;
  std::uint64_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  /// Reads `count` (<= 57) bits, LSB first. Throws CorruptStreamError when
  /// the stream is exhausted.
  std::uint64_t ReadBits(unsigned count);

  /// Returns up to 57 upcoming bits without consuming them; missing bits past
  /// the end of the stream read as zero (standard deflate-style peeking).
  std::uint64_t PeekBits(unsigned count);

  /// Consumes `count` (<= 57) bits previously observed via PeekBits.
  void SkipBits(unsigned count);

  /// Discards bits up to the next byte boundary.
  void AlignToByte();

  /// Reads raw bytes; the reader must be byte-aligned.
  Bytes ReadBytes(std::size_t count);

  /// Total bits consumed.
  std::uint64_t BitsConsumed() const { return bits_consumed_; }

  /// True when every payload bit has been consumed (trailing padding bits in
  /// the final partial byte are allowed).
  bool AtEnd() const;

 private:
  void Refill();

  ByteSpan data_;
  std::size_t next_byte_ = 0;      // next unread byte in data_
  std::uint64_t accumulator_ = 0;  // buffered bits, LSB-first
  unsigned available_bits_ = 0;
  std::uint64_t bits_consumed_ = 0;
};

}  // namespace primacy
