#include "bitstream/byte_io.h"

#include "util/error.h"

namespace primacy {

void PutVarint(Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

void PutU8(Bytes& out, std::uint8_t value) {
  out.push_back(static_cast<std::byte>(value));
}

void PutU16(Bytes& out, std::uint16_t value) {
  PutU8(out, static_cast<std::uint8_t>(value & 0xff));
  PutU8(out, static_cast<std::uint8_t>(value >> 8));
}

void PutU32(Bytes& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    PutU8(out, static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
  }
}

void PutU64(Bytes& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    PutU8(out, static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
  }
}

void PutBlock(Bytes& out, ByteSpan block) {
  PutVarint(out, block.size());
  AppendBytes(out, block);
}

void ByteReader::ThrowTruncated(const std::string& what) const {
  throw CorruptStreamError("ByteReader: truncated stream while reading " +
                           what);
}

std::uint64_t ByteReader::GetVarint() {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    if (offset_ >= data_.size()) ThrowTruncated("varint");
    if (shift >= 64) throw CorruptStreamError("ByteReader: varint overflow");
    const auto byte = static_cast<std::uint8_t>(data_[offset_++]);
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::uint8_t ByteReader::GetU8() {
  if (offset_ >= data_.size()) ThrowTruncated("u8");
  return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint16_t ByteReader::GetU16() {
  const auto lo = GetU8();
  const auto hi = GetU8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::GetU32() {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(GetU8()) << (8 * i);
  }
  return value;
}

std::uint64_t ByteReader::GetU64() {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(GetU8()) << (8 * i);
  }
  return value;
}

ByteSpan ByteReader::GetBlock() {
  const std::uint64_t size = GetVarint();
  return GetRaw(size);
}

ByteSpan ByteReader::GetRaw(std::size_t count) {
  if (count > Remaining()) ThrowTruncated("raw block");
  const ByteSpan view = data_.subspan(offset_, count);
  offset_ += count;
  return view;
}

}  // namespace primacy
