// LZ77 parsing: hash-chain match finder with optional one-step lazy
// evaluation, in the zlib mold. Produces a token stream consumed by the
// Deflate codec's entropy stage.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace primacy {

/// One parsed token: either a literal byte (length == 0) or a back-reference
/// of `length` bytes at `distance` back from the current position.
struct LzToken {
  std::uint8_t literal = 0;
  std::uint16_t length = 0;    // 0 = literal; otherwise in [kMinMatch, kMaxMatch]
  std::uint16_t distance = 0;  // in [1, window], valid when length != 0

  bool IsLiteral() const { return length == 0; }
};

inline constexpr std::size_t kLzMinMatch = 3;
inline constexpr std::size_t kLzMaxMatch = 258;
inline constexpr std::size_t kLzWindowBits = 15;
inline constexpr std::size_t kLzWindowSize = 1u << kLzWindowBits;  // 32 KiB

/// Tuning knobs, loosely mirroring zlib's level presets.
struct LzParams {
  std::size_t max_chain = 128;   // hash-chain probes per position
  std::size_t nice_length = 128; // stop probing once a match this long found
  bool lazy = true;              // one-step lazy matching

  /// Fast preset (zlib level ~1) and default preset (~6).
  static LzParams Fast() { return {8, 16, false}; }
  static LzParams Default() { return {128, 128, true}; }
  static LzParams Thorough() { return {1024, kLzMaxMatch, true}; }
};

/// Parses `data` into tokens. The concatenated expansion of the returned
/// tokens reproduces `data` exactly (property-tested).
std::vector<LzToken> LzParse(ByteSpan data, const LzParams& params);

/// Expands a token stream back into bytes (reference decoder used by tests
/// and by the Deflate decompressor).
Bytes LzExpand(std::span<const LzToken> tokens, std::size_t expected_size);

}  // namespace primacy
