#include "lz77/lz77.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/error.h"

namespace primacy {
namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::uint32_t kNoPos = 0xffffffffu;

/// Multiplicative hash over the next 3 bytes.
std::uint32_t HashAt(const std::byte* p) {
  const std::uint32_t v = (static_cast<std::uint32_t>(p[0]) << 16) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          static_cast<std::uint32_t>(p[2]);
  return (v * 0x9E3779B1u) >> (32 - kHashBits);
}

/// Length of the common prefix of a and b, up to `limit`.
std::size_t MatchLength(const std::byte* a, const std::byte* b,
                        std::size_t limit) {
  std::size_t len = 0;
  while (len + 8 <= limit) {
    std::uint64_t wa, wb;
    std::memcpy(&wa, a + len, 8);
    std::memcpy(&wb, b + len, 8);
    if (wa != wb) {
      return len + static_cast<std::size_t>(
                       std::countr_zero(wa ^ wb)) / 8;
    }
    len += 8;
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

/// Hash-chain dictionary over the sliding window.
class MatchFinder {
 public:
  // prev_ is indexed by pos & (kLzWindowSize - 1); fixed power-of-two size.
  explicit MatchFinder(ByteSpan data)
      : data_(data), head_(kHashSize, kNoPos), prev_(kLzWindowSize, kNoPos) {}

  /// Inserts position `pos` into the dictionary.
  void Insert(std::size_t pos) {
    if (pos + kLzMinMatch > data_.size()) return;
    const std::uint32_t h = HashAt(data_.data() + pos);
    prev_[pos & (prev_.size() - 1)] = head_[h];
    head_[h] = static_cast<std::uint32_t>(pos);
  }

  struct Match {
    std::size_t length = 0;
    std::size_t distance = 0;
  };

  /// Best match at `pos` subject to the chain budget.
  Match FindBest(std::size_t pos, const LzParams& params) const {
    Match best;
    if (pos + kLzMinMatch > data_.size()) return best;
    const std::size_t limit =
        std::min(kLzMaxMatch, data_.size() - pos);
    const std::byte* const cur = data_.data() + pos;
    std::uint32_t candidate = head_[HashAt(cur)];
    std::size_t probes = params.max_chain;
    while (candidate != kNoPos && probes-- > 0) {
      const std::size_t cpos = candidate;
      if (cpos >= pos || pos - cpos > kLzWindowSize) break;
      // Quick reject: check the byte just past the current best.
      if (best.length == 0 ||
          data_[cpos + best.length] == cur[best.length]) {
        const std::size_t len =
            MatchLength(data_.data() + cpos, cur, limit);
        if (len > best.length) {
          best.length = len;
          best.distance = pos - cpos;
          if (len >= params.nice_length || len == limit) break;
        }
      }
      candidate = prev_[cpos & (prev_.size() - 1)];
    }
    if (best.length < kLzMinMatch) return Match{};
    return best;
  }

 private:
  ByteSpan data_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> prev_;
};

}  // namespace

std::vector<LzToken> LzParse(ByteSpan data, const LzParams& params) {
  std::vector<LzToken> tokens;
  if (data.empty()) return tokens;
  tokens.reserve(data.size() / 4);

  MatchFinder finder(data);

  std::size_t pos = 0;
  while (pos < data.size()) {
    MatchFinder::Match match = finder.FindBest(pos, params);
    if (params.lazy && match.length >= kLzMinMatch &&
        match.length < params.nice_length && pos + 1 < data.size()) {
      // One-step lazy matching: if the next position holds a strictly longer
      // match, emit a literal here instead.
      finder.Insert(pos);
      const MatchFinder::Match next = finder.FindBest(pos + 1, params);
      if (next.length > match.length) {
        tokens.push_back(
            LzToken{static_cast<std::uint8_t>(data[pos]), 0, 0});
        ++pos;
        continue;
      }
      // Keep the current match; pos was already inserted.
      tokens.push_back(LzToken{0, static_cast<std::uint16_t>(match.length),
                               static_cast<std::uint16_t>(match.distance)});
      for (std::size_t i = 1; i < match.length; ++i) {
        finder.Insert(pos + i);
      }
      pos += match.length;
      continue;
    }
    if (match.length >= kLzMinMatch) {
      tokens.push_back(LzToken{0, static_cast<std::uint16_t>(match.length),
                               static_cast<std::uint16_t>(match.distance)});
      for (std::size_t i = 0; i < match.length; ++i) finder.Insert(pos + i);
      pos += match.length;
    } else {
      tokens.push_back(LzToken{static_cast<std::uint8_t>(data[pos]), 0, 0});
      finder.Insert(pos);
      ++pos;
    }
  }
  return tokens;
}

Bytes LzExpand(std::span<const LzToken> tokens, std::size_t expected_size) {
  Bytes out;
  out.reserve(expected_size);
  for (const LzToken& token : tokens) {
    if (token.IsLiteral()) {
      out.push_back(static_cast<std::byte>(token.literal));
      continue;
    }
    if (token.distance == 0 || token.distance > out.size()) {
      throw CorruptStreamError("LzExpand: distance exceeds produced output");
    }
    if (token.length < kLzMinMatch || token.length > kLzMaxMatch) {
      throw CorruptStreamError("LzExpand: bad match length");
    }
    // Byte-by-byte copy: overlapping matches (distance < length) replicate.
    std::size_t src = out.size() - token.distance;
    for (std::size_t i = 0; i < token.length; ++i) {
      out.push_back(out[src + i]);
    }
  }
  if (out.size() != expected_size) {
    throw CorruptStreamError("LzExpand: size mismatch");
  }
  return out;
}

}  // namespace primacy
