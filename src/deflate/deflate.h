// Deflate-class codec: LZ77 parsing + dynamic canonical Huffman coding of
// literal/length and distance symbols, using deflate's standard extra-bit
// tables. This is the library's zlib stand-in — the byte-level entropy-based
// "solver" the PRIMACY preconditioner targets (paper Sections II-C/II-E).
//
// The container format is our own (not RFC 1950/1951 compatible):
//   varint original_size, then blocks:
//     u8 block_type (0 = stored, 1 = huffman)
//     stored : varint byte_count, raw bytes
//     huffman: varint token_count,
//              block(serialized litlen code lengths),
//              block(serialized distance code lengths),
//              block(bit-packed token stream)
#pragma once

#include "compress/codec.h"
#include "lz77/lz77.h"

namespace primacy {

class DeflateCodec final : public Codec {
 public:
  explicit DeflateCodec(LzParams params = LzParams::Default())
      : params_(params) {}

  std::string_view name() const override { return "deflate"; }
  Bytes Compress(ByteSpan data) const override;
  Bytes Decompress(ByteSpan data) const override;

 private:
  LzParams params_;
};

/// "deflate-fast": weaker parse, higher throughput (zlib level-1 analogue).
class DeflateFastCodec final : public Codec {
 public:
  std::string_view name() const override { return "deflate-fast"; }
  Bytes Compress(ByteSpan data) const override;
  Bytes Decompress(ByteSpan data) const override;
};

}  // namespace primacy
