#include "deflate/deflate.h"

#include <algorithm>
#include <array>
#include <optional>
#include <vector>

#include "bitstream/bit_io.h"
#include "bitstream/byte_io.h"
#include "huffman/huffman.h"
#include "util/error.h"

namespace primacy {
namespace {

// Deflate's standard length/distance code tables (RFC 1951 section 3.2.5).
constexpr std::size_t kNumLengthCodes = 29;
constexpr std::array<std::uint16_t, kNumLengthCodes> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<std::uint8_t, kNumLengthCodes> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

constexpr std::size_t kNumDistCodes = 30;
constexpr std::array<std::uint32_t, kNumDistCodes> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<std::uint8_t, kNumDistCodes> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5,  6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// Literal/length alphabet: 256 literals + 29 length codes.
constexpr std::size_t kLitLenAlphabet = 256 + kNumLengthCodes;

constexpr std::uint8_t kBlockStored = 0;
constexpr std::uint8_t kBlockHuffman = 1;

/// Tokens per Huffman block: large enough to amortize table headers, small
/// enough that statistics stay locally adaptive.
constexpr std::size_t kTokensPerBlock = 1u << 16;

std::size_t LengthCodeFor(std::size_t length) {
  PRIMACY_CHECK(length >= kLzMinMatch && length <= kLzMaxMatch);
  // Linear scan is fine: called through a small cached table below.
  for (std::size_t code = kNumLengthCodes; code-- > 0;) {
    if (length >= kLengthBase[code]) return code;
  }
  throw InternalError("deflate: unreachable length code");
}

std::size_t DistCodeFor(std::size_t distance) {
  PRIMACY_CHECK(distance >= 1 && distance <= kLzWindowSize);
  for (std::size_t code = kNumDistCodes; code-- > 0;) {
    if (distance >= kDistBase[code]) return code;
  }
  throw InternalError("deflate: unreachable distance code");
}

/// Precomputed length->code table (length in [3,258]).
const std::array<std::uint8_t, kLzMaxMatch + 1>& LengthCodeTable() {
  static const auto table = [] {
    std::array<std::uint8_t, kLzMaxMatch + 1> t{};
    for (std::size_t len = kLzMinMatch; len <= kLzMaxMatch; ++len) {
      t[len] = static_cast<std::uint8_t>(LengthCodeFor(len));
    }
    return t;
  }();
  return table;
}

void EncodeBlock(Bytes& out, std::span<const LzToken> tokens) {
  // Gather symbol statistics.
  std::vector<std::uint64_t> litlen_freq(kLitLenAlphabet, 0);
  std::vector<std::uint64_t> dist_freq(kNumDistCodes, 0);
  const auto& len_code = LengthCodeTable();
  for (const LzToken& token : tokens) {
    if (token.IsLiteral()) {
      ++litlen_freq[token.literal];
    } else {
      ++litlen_freq[256 + len_code[token.length]];
      ++dist_freq[DistCodeFor(token.distance)];
    }
  }

  const auto litlen_lengths = BuildCodeLengths(litlen_freq);
  const auto dist_lengths = BuildCodeLengths(dist_freq);
  const HuffmanEncoder litlen_encoder(litlen_lengths);

  BitWriter writer;
  const bool has_dist =
      std::any_of(dist_freq.begin(), dist_freq.end(),
                  [](std::uint64_t f) { return f != 0; });
  // A distance encoder only exists when the block contains matches.
  std::optional<HuffmanEncoder> dist_encoder;
  if (has_dist) dist_encoder.emplace(dist_lengths);

  for (const LzToken& token : tokens) {
    if (token.IsLiteral()) {
      litlen_encoder.Encode(writer, token.literal);
      continue;
    }
    const std::size_t lcode = len_code[token.length];
    litlen_encoder.Encode(writer, 256 + lcode);
    writer.WriteBits(token.length - kLengthBase[lcode], kLengthExtra[lcode]);
    const std::size_t dcode = DistCodeFor(token.distance);
    dist_encoder->Encode(writer, dcode);
    writer.WriteBits(token.distance - kDistBase[dcode], kDistExtra[dcode]);
  }

  PutU8(out, kBlockHuffman);
  PutVarint(out, tokens.size());
  PutBlock(out, SerializeCodeLengths(litlen_lengths));
  PutBlock(out, SerializeCodeLengths(dist_lengths));
  PutBlock(out, writer.Finish());
}

Bytes CompressImpl(ByteSpan data, const LzParams& params) {
  Bytes out;
  PutVarint(out, data.size());
  if (data.empty()) return out;

  const std::vector<LzToken> tokens = LzParse(data, params);
  for (std::size_t begin = 0; begin < tokens.size();
       begin += kTokensPerBlock) {
    const std::size_t count =
        std::min(kTokensPerBlock, tokens.size() - begin);
    EncodeBlock(out, std::span(tokens).subspan(begin, count));
  }

  // Whole-stream stored fallback: never expand beyond input + small header.
  if (out.size() > data.size() + 16) {
    Bytes stored;
    PutVarint(stored, data.size());
    PutU8(stored, kBlockStored);
    PutVarint(stored, data.size());
    AppendBytes(stored, data);
    return stored;
  }
  return out;
}

Bytes DecompressImpl(ByteSpan data) {
  ByteReader reader(data);
  const std::uint64_t original_size = reader.GetVarint();
  Bytes out;
  out.reserve(std::min<std::uint64_t>(original_size, 1u << 26));
  std::vector<LzToken> tokens;

  while (out.size() < original_size) {
    if (reader.AtEnd()) {
      throw CorruptStreamError("deflate: stream ended before payload");
    }
    const std::uint8_t type = reader.GetU8();
    if (type == kBlockStored) {
      const std::uint64_t count = reader.GetVarint();
      const ByteSpan raw = reader.GetRaw(count);
      AppendBytes(out, raw);
      continue;
    }
    if (type != kBlockHuffman) {
      throw CorruptStreamError("deflate: unknown block type");
    }
    const std::uint64_t token_count = reader.GetVarint();
    const auto litlen_lengths =
        DeserializeCodeLengths(reader.GetBlock(), kLitLenAlphabet);
    const auto dist_lengths =
        DeserializeCodeLengths(reader.GetBlock(), kNumDistCodes);
    const ByteSpan payload = reader.GetBlock();
    // Every token costs at least one bit; a corrupt count must not drive an
    // unbounded decode loop off zero-padded peeks.
    if (token_count > 8 * payload.size()) {
      throw CorruptStreamError("deflate: token count exceeds payload bits");
    }

    const HuffmanDecoder litlen_decoder(litlen_lengths);
    const bool has_dist =
        std::any_of(dist_lengths.begin(), dist_lengths.end(),
                    [](std::uint8_t l) { return l != 0; });
    std::optional<HuffmanDecoder> dist_decoder;
    if (has_dist) dist_decoder.emplace(dist_lengths);

    BitReader bits(payload);
    for (std::uint64_t i = 0; i < token_count; ++i) {
      const std::size_t symbol = litlen_decoder.Decode(bits);
      if (symbol < 256) {
        if (out.size() >= original_size) {
          throw CorruptStreamError("deflate: output overrun");
        }
        out.push_back(static_cast<std::byte>(symbol));
        continue;
      }
      const std::size_t lcode = symbol - 256;
      if (lcode >= kNumLengthCodes) {
        throw CorruptStreamError("deflate: bad length symbol");
      }
      const std::size_t length =
          kLengthBase[lcode] + bits.ReadBits(kLengthExtra[lcode]);
      if (!dist_decoder) {
        throw CorruptStreamError("deflate: match without distance table");
      }
      const std::size_t dcode = dist_decoder->Decode(bits);
      const std::size_t distance =
          kDistBase[dcode] + bits.ReadBits(kDistExtra[dcode]);
      if (distance == 0 || distance > out.size()) {
        throw CorruptStreamError("deflate: distance exceeds output");
      }
      if (out.size() + length > original_size) {
        throw CorruptStreamError("deflate: output overrun");
      }
      const std::size_t src = out.size() - distance;
      for (std::size_t j = 0; j < length; ++j) out.push_back(out[src + j]);
    }
  }
  if (out.size() != original_size) {
    throw CorruptStreamError("deflate: size mismatch");
  }
  return out;
}

}  // namespace

Bytes DeflateCodec::Compress(ByteSpan data) const {
  return CompressImpl(data, params_);
}

Bytes DeflateCodec::Decompress(ByteSpan data) const {
  return DecompressImpl(data);
}

Bytes DeflateFastCodec::Compress(ByteSpan data) const {
  return CompressImpl(data, LzParams::Fast());
}

Bytes DeflateFastCodec::Decompress(ByteSpan data) const {
  return DecompressImpl(data);
}

}  // namespace primacy
