#include "util/checksum.h"

#include <bit>
#include <cstring>

namespace primacy {
namespace {

constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kP3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kP4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kP5 = 0x27D4EB2F165667C5ULL;

std::uint64_t ReadU64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian hosts only, like the rest of the wire formats
}

std::uint32_t ReadU32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t Round(std::uint64_t acc, std::uint64_t lane) {
  return std::rotl(acc + lane * kP2, 31) * kP1;
}

std::uint64_t MergeRound(std::uint64_t acc, std::uint64_t lane) {
  return (acc ^ Round(0, lane)) * kP1 + kP4;
}

/// Folds the post-stripe state plus any remaining (< 32) bytes into the
/// final hash. `acc` is the converged accumulator, `total` the full input
/// length.
std::uint64_t Finalize(std::uint64_t acc, const std::byte* p,
                       std::size_t remaining, std::uint64_t total) {
  acc += total;
  while (remaining >= 8) {
    acc ^= Round(0, ReadU64(p));
    acc = std::rotl(acc, 27) * kP1 + kP4;
    p += 8;
    remaining -= 8;
  }
  if (remaining >= 4) {
    acc ^= static_cast<std::uint64_t>(ReadU32(p)) * kP1;
    acc = std::rotl(acc, 23) * kP2 + kP3;
    p += 4;
    remaining -= 4;
  }
  while (remaining > 0) {
    acc ^= static_cast<std::uint64_t>(*p) * kP5;
    acc = std::rotl(acc, 11) * kP1;
    ++p;
    --remaining;
  }
  acc ^= acc >> 33;
  acc *= kP2;
  acc ^= acc >> 29;
  acc *= kP3;
  acc ^= acc >> 32;
  return acc;
}

std::uint64_t Converge(const std::uint64_t acc[4]) {
  std::uint64_t h = std::rotl(acc[0], 1) + std::rotl(acc[1], 7) +
                    std::rotl(acc[2], 12) + std::rotl(acc[3], 18);
  h = MergeRound(h, acc[0]);
  h = MergeRound(h, acc[1]);
  h = MergeRound(h, acc[2]);
  h = MergeRound(h, acc[3]);
  return h;
}

}  // namespace

std::uint64_t Xxh64(ByteSpan data, std::uint64_t seed) {
  const std::byte* p = data.data();
  std::size_t remaining = data.size();
  std::uint64_t h;
  if (remaining >= 32) {
    std::uint64_t acc[4] = {seed + kP1 + kP2, seed + kP2, seed, seed - kP1};
    do {
      acc[0] = Round(acc[0], ReadU64(p));
      acc[1] = Round(acc[1], ReadU64(p + 8));
      acc[2] = Round(acc[2], ReadU64(p + 16));
      acc[3] = Round(acc[3], ReadU64(p + 24));
      p += 32;
      remaining -= 32;
    } while (remaining >= 32);
    h = Converge(acc);
  } else {
    h = seed + kP5;
  }
  return Finalize(h, p, remaining, data.size());
}

Xxh64State::Xxh64State(std::uint64_t seed)
    : acc_{seed + kP1 + kP2, seed + kP2, seed, seed - kP1} {}

void Xxh64State::Update(ByteSpan data) {
  const std::byte* p = data.data();
  std::size_t remaining = data.size();
  total_ += remaining;
  if (buffered_ > 0) {
    const std::size_t take = std::min(remaining, 32 - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    remaining -= take;
    if (buffered_ < 32) return;
    acc_[0] = Round(acc_[0], ReadU64(buffer_));
    acc_[1] = Round(acc_[1], ReadU64(buffer_ + 8));
    acc_[2] = Round(acc_[2], ReadU64(buffer_ + 16));
    acc_[3] = Round(acc_[3], ReadU64(buffer_ + 24));
    buffered_ = 0;
  }
  while (remaining >= 32) {
    acc_[0] = Round(acc_[0], ReadU64(p));
    acc_[1] = Round(acc_[1], ReadU64(p + 8));
    acc_[2] = Round(acc_[2], ReadU64(p + 16));
    acc_[3] = Round(acc_[3], ReadU64(p + 24));
    p += 32;
    remaining -= 32;
  }
  if (remaining > 0) {
    std::memcpy(buffer_, p, remaining);
    buffered_ = remaining;
  }
}

std::uint64_t Xxh64State::Digest() const {
  // The seed is recoverable from acc_[2] (it stays `seed` until the first
  // full stripe), so short inputs hash identically to the one-shot path.
  std::uint64_t h =
      total_ >= 32 ? Converge(acc_) : acc_[2] + kP5;
  return Finalize(h, buffer_, buffered_, total_);
}

}  // namespace primacy
