#include "util/byte_matrix.h"

#include <bit>
#include <cstring>
#include <version>

#include "kernels/kernels.h"
#include "util/error.h"

#if defined(__cpp_lib_byteswap) && __cpp_lib_byteswap >= 202110L
#define PRIMACY_BSWAP64(x) std::byteswap(x)
#define PRIMACY_BSWAP32(x) std::byteswap(x)
#else
#define PRIMACY_BSWAP64(x) __builtin_bswap64(x)
#define PRIMACY_BSWAP32(x) __builtin_bswap32(x)
#endif

namespace primacy {

namespace {

void RequireMultiple(std::size_t size, std::size_t width, const char* what) {
  if (width == 0) throw InvalidArgumentError("byte_matrix: width must be > 0");
  if (size % width != 0) {
    throw InvalidArgumentError(std::string("byte_matrix: ") + what +
                               " size is not a multiple of the element width");
  }
}

/// Host bits of one element <-> big-endian byte significance. On the
/// little-endian hosts we run on this is a byteswap; a big-endian host
/// would memcpy straight through.
inline std::uint64_t ToBigEndian64(std::uint64_t bits) {
  if constexpr (std::endian::native == std::endian::big) return bits;
  return PRIMACY_BSWAP64(bits);
}
inline std::uint32_t ToBigEndian32(std::uint32_t bits) {
  if constexpr (std::endian::native == std::endian::big) return bits;
  return PRIMACY_BSWAP32(bits);
}

}  // namespace

SplitBytes SplitHighLow(ByteSpan data, std::size_t width,
                        std::size_t high_width) {
  RequireMultiple(data.size(), width, "input");
  if (high_width > width) {
    throw InvalidArgumentError("SplitHighLow: high_width exceeds width");
  }
  const std::size_t n = data.size() / width;
  const std::size_t low_width = width - high_width;
  SplitBytes out;
  out.high.resize(n * high_width);
  out.low.resize(n * low_width);
  // high_width 2 over widths 8 and 4 are the PRIMACY shapes (doubles and
  // floats); anything else is a generic slow path kept for API completeness.
  if (width == 8 && high_width == 2) {
    kernels::Active().split_w8_h2(data.data(), n, out.high.data(),
                                  out.low.data());
    return out;
  }
  if (width == 4 && high_width == 2) {
    kernels::Active().split_w4_h2(data.data(), n, out.high.data(),
                                  out.low.data());
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (high_width > 0) {
      std::memcpy(out.high.data() + i * high_width, data.data() + i * width,
                  high_width);
    }
    if (low_width > 0) {
      std::memcpy(out.low.data() + i * low_width,
                  data.data() + i * width + high_width, low_width);
    }
  }
  return out;
}

Bytes MergeHighLow(ByteSpan high, ByteSpan low, std::size_t width,
                   std::size_t high_width) {
  if (high_width > width) {
    throw InvalidArgumentError("MergeHighLow: high_width exceeds width");
  }
  const std::size_t low_width = width - high_width;
  if (high_width > 0) RequireMultiple(high.size(), high_width, "high");
  if (low_width > 0) RequireMultiple(low.size(), low_width, "low");
  const std::size_t n =
      high_width > 0 ? high.size() / high_width : low.size() / low_width;
  if ((high_width > 0 && n != high.size() / high_width) ||
      (low_width > 0 && n != low.size() / low_width)) {
    throw InvalidArgumentError("MergeHighLow: inconsistent element counts");
  }
  Bytes out(n * width);
  if (width == 8 && high_width == 2) {
    kernels::Active().merge_w8_h2(high.data(), low.data(), n, out.data());
    return out;
  }
  if (width == 4 && high_width == 2) {
    kernels::Active().merge_w4_h2(high.data(), low.data(), n, out.data());
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (high_width > 0) {
      std::memcpy(out.data() + i * width, high.data() + i * high_width,
                  high_width);
    }
    if (low_width > 0) {
      std::memcpy(out.data() + i * width + high_width,
                  low.data() + i * low_width, low_width);
    }
  }
  return out;
}

Bytes RowToColumn(ByteSpan rows, std::size_t width) {
  RequireMultiple(rows.size(), width, "input");
  const std::size_t n = rows.size() / width;
  Bytes out(rows.size());
  const kernels::KernelTable& k = kernels::Active();
  switch (width) {
    case 2:
      k.row_to_col_w2(rows.data(), n, out.data());
      return out;
    case 4:
      k.row_to_col_w4(rows.data(), n, out.data());
      return out;
    case 8:
      k.row_to_col_w8(rows.data(), n, out.data());
      return out;
    default:
      break;
  }
  for (std::size_t col = 0; col < width; ++col) {
    std::byte* dst = out.data() + col * n;
    for (std::size_t i = 0; i < n; ++i) dst[i] = rows[i * width + col];
  }
  return out;
}

Bytes ColumnToRow(ByteSpan columns, std::size_t width) {
  RequireMultiple(columns.size(), width, "input");
  const std::size_t n = columns.size() / width;
  Bytes out(columns.size());
  const kernels::KernelTable& k = kernels::Active();
  switch (width) {
    case 2:
      k.col_to_row_w2(columns.data(), n, out.data());
      return out;
    case 4:
      k.col_to_row_w4(columns.data(), n, out.data());
      return out;
    case 8:
      k.col_to_row_w8(columns.data(), n, out.data());
      return out;
    default:
      break;
  }
  for (std::size_t col = 0; col < width; ++col) {
    const std::byte* src = columns.data() + col * n;
    for (std::size_t i = 0; i < n; ++i) out[i * width + col] = src[i];
  }
  return out;
}

Bytes ExtractColumn(ByteSpan rows, std::size_t width, std::size_t column) {
  RequireMultiple(rows.size(), width, "input");
  if (column >= width) {
    throw InvalidArgumentError("ExtractColumn: column out of range");
  }
  const std::size_t n = rows.size() / width;
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = rows[i * width + column];
  return out;
}

Bytes DoublesToBigEndianRows(std::span<const double> values) {
  Bytes out(values.size() * 8);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto be = ToBigEndian64(std::bit_cast<std::uint64_t>(values[i]));
    std::memcpy(out.data() + i * 8, &be, 8);
  }
  return out;
}

Bytes FloatsToBigEndianRows(std::span<const float> values) {
  Bytes out(values.size() * 4);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto be = ToBigEndian32(std::bit_cast<std::uint32_t>(values[i]));
    std::memcpy(out.data() + i * 4, &be, 4);
  }
  return out;
}

std::vector<float> BigEndianRowsToFloats(ByteSpan rows) {
  RequireMultiple(rows.size(), 4, "input");
  std::vector<float> out(rows.size() / 4);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint32_t be = 0;
    std::memcpy(&be, rows.data() + i * 4, 4);
    out[i] = std::bit_cast<float>(ToBigEndian32(be));
  }
  return out;
}

Bytes ReverseElementBytes(ByteSpan data, std::size_t width) {
  RequireMultiple(data.size(), width, "input");
  Bytes out(data.size());
  const std::size_t n = data.size() / width;
  if (width == 8) {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t bits;
      std::memcpy(&bits, data.data() + i * 8, 8);
      bits = PRIMACY_BSWAP64(bits);
      std::memcpy(out.data() + i * 8, &bits, 8);
    }
    return out;
  }
  if (width == 4) {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t bits;
      std::memcpy(&bits, data.data() + i * 4, 4);
      bits = PRIMACY_BSWAP32(bits);
      std::memcpy(out.data() + i * 4, &bits, 4);
    }
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < width; ++b) {
      out[i * width + b] = data[i * width + (width - 1 - b)];
    }
  }
  return out;
}

std::vector<double> BigEndianRowsToDoubles(ByteSpan rows) {
  RequireMultiple(rows.size(), 8, "input");
  std::vector<double> out(rows.size() / 8);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t be = 0;
    std::memcpy(&be, rows.data() + i * 8, 8);
    out[i] = std::bit_cast<double>(ToBigEndian64(be));
  }
  return out;
}

}  // namespace primacy
