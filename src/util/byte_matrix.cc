#include "util/byte_matrix.h"

#include <bit>
#include <cstring>

#include "util/error.h"

namespace primacy {

namespace {
void RequireMultiple(std::size_t size, std::size_t width, const char* what) {
  if (width == 0) throw InvalidArgumentError("byte_matrix: width must be > 0");
  if (size % width != 0) {
    throw InvalidArgumentError(std::string("byte_matrix: ") + what +
                               " size is not a multiple of the element width");
  }
}
}  // namespace

SplitBytes SplitHighLow(ByteSpan data, std::size_t width,
                        std::size_t high_width) {
  RequireMultiple(data.size(), width, "input");
  if (high_width > width) {
    throw InvalidArgumentError("SplitHighLow: high_width exceeds width");
  }
  const std::size_t n = data.size() / width;
  const std::size_t low_width = width - high_width;
  SplitBytes out;
  out.high.resize(n * high_width);
  out.low.resize(n * low_width);
  for (std::size_t i = 0; i < n; ++i) {
    if (high_width > 0) {
      std::memcpy(out.high.data() + i * high_width, data.data() + i * width,
                  high_width);
    }
    if (low_width > 0) {
      std::memcpy(out.low.data() + i * low_width,
                  data.data() + i * width + high_width, low_width);
    }
  }
  return out;
}

Bytes MergeHighLow(ByteSpan high, ByteSpan low, std::size_t width,
                   std::size_t high_width) {
  if (high_width > width) {
    throw InvalidArgumentError("MergeHighLow: high_width exceeds width");
  }
  const std::size_t low_width = width - high_width;
  if (high_width > 0) RequireMultiple(high.size(), high_width, "high");
  if (low_width > 0) RequireMultiple(low.size(), low_width, "low");
  const std::size_t n =
      high_width > 0 ? high.size() / high_width : low.size() / low_width;
  if ((high_width > 0 && n != high.size() / high_width) ||
      (low_width > 0 && n != low.size() / low_width)) {
    throw InvalidArgumentError("MergeHighLow: inconsistent element counts");
  }
  Bytes out(n * width);
  for (std::size_t i = 0; i < n; ++i) {
    if (high_width > 0) {
      std::memcpy(out.data() + i * width, high.data() + i * high_width,
                  high_width);
    }
    if (low_width > 0) {
      std::memcpy(out.data() + i * width + high_width,
                  low.data() + i * low_width, low_width);
    }
  }
  return out;
}

Bytes RowToColumn(ByteSpan rows, std::size_t width) {
  RequireMultiple(rows.size(), width, "input");
  const std::size_t n = rows.size() / width;
  Bytes out(rows.size());
  for (std::size_t col = 0; col < width; ++col) {
    std::byte* dst = out.data() + col * n;
    for (std::size_t i = 0; i < n; ++i) dst[i] = rows[i * width + col];
  }
  return out;
}

Bytes ColumnToRow(ByteSpan columns, std::size_t width) {
  RequireMultiple(columns.size(), width, "input");
  const std::size_t n = columns.size() / width;
  Bytes out(columns.size());
  for (std::size_t col = 0; col < width; ++col) {
    const std::byte* src = columns.data() + col * n;
    for (std::size_t i = 0; i < n; ++i) out[i * width + col] = src[i];
  }
  return out;
}

Bytes ExtractColumn(ByteSpan rows, std::size_t width, std::size_t column) {
  RequireMultiple(rows.size(), width, "input");
  if (column >= width) {
    throw InvalidArgumentError("ExtractColumn: column out of range");
  }
  const std::size_t n = rows.size() / width;
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = rows[i * width + column];
  return out;
}

Bytes DoublesToBigEndianRows(std::span<const double> values) {
  Bytes out(values.size() * 8);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto bits = std::bit_cast<std::uint64_t>(values[i]);
    for (std::size_t b = 0; b < 8; ++b) {
      out[i * 8 + b] = static_cast<std::byte>((bits >> (56 - 8 * b)) & 0xff);
    }
  }
  return out;
}

Bytes FloatsToBigEndianRows(std::span<const float> values) {
  Bytes out(values.size() * 4);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto bits = std::bit_cast<std::uint32_t>(values[i]);
    for (std::size_t b = 0; b < 4; ++b) {
      out[i * 4 + b] = static_cast<std::byte>((bits >> (24 - 8 * b)) & 0xff);
    }
  }
  return out;
}

std::vector<float> BigEndianRowsToFloats(ByteSpan rows) {
  RequireMultiple(rows.size(), 4, "input");
  std::vector<float> out(rows.size() / 4);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint32_t bits = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      bits = (bits << 8) | static_cast<std::uint32_t>(rows[i * 4 + b]);
    }
    out[i] = std::bit_cast<float>(bits);
  }
  return out;
}

Bytes ReverseElementBytes(ByteSpan data, std::size_t width) {
  RequireMultiple(data.size(), width, "input");
  Bytes out(data.size());
  const std::size_t n = data.size() / width;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < width; ++b) {
      out[i * width + b] = data[i * width + (width - 1 - b)];
    }
  }
  return out;
}

std::vector<double> BigEndianRowsToDoubles(ByteSpan rows) {
  RequireMultiple(rows.size(), 8, "input");
  std::vector<double> out(rows.size() / 8);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t bits = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      bits = (bits << 8) | static_cast<std::uint64_t>(rows[i * 8 + b]);
    }
    out[i] = std::bit_cast<double>(bits);
  }
  return out;
}

}  // namespace primacy
