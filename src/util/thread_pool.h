// Fixed-size worker pool used by the in-situ compression driver.
//
// The paper runs PRIMACY on every compute node of a bulk-synchronous
// application; within one node we parallelize across chunks. The pool is a
// classic condition-variable work queue — no lock-free cleverness, because
// each task (compressing a 3 MB chunk) is orders of magnitude larger than
// queue overhead.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace primacy {

namespace internal {
struct PoolMetrics;  // per-pool-name telemetry series (thread_pool.cc)
}  // namespace internal

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (minimum 1). `name` labels this pool's telemetry series
  /// (`primacy_pool_*{pool="<name>"}`) so nested in-situ pools stay
  /// distinguishable; it must match [A-Za-z0-9_.-]+. Pools sharing a name
  /// share series.
  explicit ThreadPool(std::size_t num_threads = 0,
                      std::string_view name = "pool");

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Telemetry label for this pool's `primacy_pool_*` series.
  const std::string& name() const { return name_; }

  /// Schedules `fn` and returns a future for its result. Exceptions thrown by
  /// the task are delivered through the future.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Rethrows the first task exception encountered.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  /// Runs fn(slot, i) for i in [0, count) across at most `max_slots`
  /// concurrent slots (0 = one per pool worker, plus the caller). Slot ids
  /// are dense in [0, effective_slots), so callers can keep per-slot state
  /// (a solver/encoder instance per worker) without locking: a slot never
  /// runs two iterations concurrently. Slot 0 executes on the calling
  /// thread, and while waiting for the remaining slots the caller helps
  /// drain the pool's queue — so nested ParallelForSlots calls through a
  /// shared pool cannot deadlock even when every worker is blocked in an
  /// outer wait. Iterations are claimed from an atomic counter (dynamic
  /// load balancing). Rethrows the first exception encountered.
  void ParallelForSlots(std::size_t count, std::size_t max_slots,
                        const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop() PRIMACY_EXCLUDES(mutex_);

  /// Queues one type-erased task, wrapping it with telemetry accounting
  /// (queue depth, enqueue-to-start wait, run time) when compiled in.
  void Enqueue(std::function<void()> task) PRIMACY_EXCLUDES(mutex_);

  /// Pops and runs one queued task on the calling thread; false if the
  /// queue was empty.
  bool RunOneTask() PRIMACY_EXCLUDES(mutex_);

  std::string name_;
  internal::PoolMetrics* metrics_ = nullptr;  // per-name, process-lifetime
  std::vector<std::thread> workers_;
  mutable primacy::Mutex mutex_;
  // Paired with mutex_: workers park here until a task arrives or shutdown.
  primacy::CondVar cv_;
  std::queue<std::function<void()>> tasks_ PRIMACY_GUARDED_BY(mutex_);
  bool stopping_ PRIMACY_GUARDED_BY(mutex_) = false;
};

/// Process-wide pool, lazily built with hardware-concurrency workers on
/// first use and intentionally never destroyed (worker shutdown during
/// static destruction would race other teardown). Compress/Decompress
/// calls share it instead of constructing a pool per call; per-call
/// concurrency is bounded by ParallelForSlots's max_slots.
ThreadPool& SharedThreadPool();

}  // namespace primacy
