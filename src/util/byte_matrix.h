// Row/column views over the N x W byte matrix of a chunk of fixed-width
// elements (W = 8 for doubles), plus the high/low split and the row<->column
// linearization transforms PRIMACY depends on (paper Sections II-B, II-D).
//
// All transforms are expressed on flat byte buffers:
//  * row linearization   : element 0 bytes, element 1 bytes, ... (memory order)
//  * column linearization: byte-column 0 of every element, then column 1, ...
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace primacy {

/// Splits row-linearized `data` (N elements of `width` bytes each, big-endian
/// byte significance: byte 0 is the most significant) into the leading
/// `high_width` byte-columns and the remaining columns.
///
/// Outputs are row-linearized: `high` holds N * high_width bytes laid out as
/// [elem0 high bytes][elem1 high bytes]..., `low` likewise.
struct SplitBytes {
  Bytes high;
  Bytes low;
};
SplitBytes SplitHighLow(ByteSpan data, std::size_t width,
                        std::size_t high_width);

/// Inverse of SplitHighLow.
Bytes MergeHighLow(ByteSpan high, ByteSpan low, std::size_t width,
                   std::size_t high_width);

/// Transpose a row-linearized N x width matrix into column linearization
/// (and back: the transform with swapped arguments is its own inverse).
Bytes RowToColumn(ByteSpan rows, std::size_t width);
Bytes ColumnToRow(ByteSpan columns, std::size_t width);

/// Extract a single byte-column (0 = first byte of each element) from a
/// row-linearized matrix.
Bytes ExtractColumn(ByteSpan rows, std::size_t width, std::size_t column);

/// Converts native doubles to a row-linearized byte matrix in *big-endian
/// byte significance* order: byte 0 of each row is the sign/exponent byte.
/// This matches the paper's "first 2 bytes hold the exponent" framing
/// regardless of host endianness.
Bytes DoublesToBigEndianRows(std::span<const double> values);

/// Inverse of DoublesToBigEndianRows.
std::vector<double> BigEndianRowsToDoubles(ByteSpan rows);

/// Single-precision counterparts (width 4; byte 0 carries sign + most of the
/// exponent).
Bytes FloatsToBigEndianRows(std::span<const float> values);
std::vector<float> BigEndianRowsToFloats(ByteSpan rows);

/// Generic element-wise byte reversal for a packed array of fixed-width
/// elements: converts a little-endian native layout into big-endian byte
/// significance (and back — it is an involution). Width 8 matches
/// DoublesToBigEndianRows; width 4 serves single-precision floats.
Bytes ReverseElementBytes(ByteSpan data, std::size_t width);

}  // namespace primacy
