#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace primacy {

std::array<std::uint64_t, 256> ByteHistogram(ByteSpan data) {
  std::array<std::uint64_t, 256> histogram{};
  for (const std::byte b : data) ++histogram[static_cast<std::size_t>(b)];
  return histogram;
}

double HistogramEntropyBits(const std::array<std::uint64_t, 256>& histogram) {
  std::uint64_t total = 0;
  for (const std::uint64_t count : histogram) total += count;
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (const std::uint64_t count : histogram) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double ByteEntropyBits(ByteSpan data) {
  return HistogramEntropyBits(ByteHistogram(data));
}

double TopByteFrequency(ByteSpan data) {
  if (data.empty()) return 0.0;
  const auto histogram = ByteHistogram(data);
  const std::uint64_t top = *std::max_element(histogram.begin(), histogram.end());
  return static_cast<double>(top) / static_cast<double>(data.size());
}

std::vector<double> DominantBitProbability(ByteSpan rows, std::size_t width) {
  if (width == 0) throw InvalidArgumentError("DominantBitProbability: width 0");
  if (rows.size() % width != 0) {
    throw InvalidArgumentError(
        "DominantBitProbability: size not a multiple of width");
  }
  const std::size_t n = rows.size() / width;
  std::vector<std::uint64_t> ones(width * 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < width; ++b) {
      const auto value = static_cast<unsigned>(rows[i * width + b]);
      for (std::size_t bit = 0; bit < 8; ++bit) {
        ones[b * 8 + bit] += (value >> (7 - bit)) & 1u;
      }
    }
  }
  std::vector<double> out(width * 8, 0.5);
  if (n == 0) return out;
  for (std::size_t pos = 0; pos < out.size(); ++pos) {
    const double p1 =
        static_cast<double>(ones[pos]) / static_cast<double>(n);
    out[pos] = std::max(p1, 1.0 - p1);
  }
  return out;
}

std::vector<std::uint64_t> BytePairHistogram(ByteSpan rows, std::size_t width,
                                             std::size_t first) {
  if (width < 2 || first + 1 >= width) {
    throw InvalidArgumentError("BytePairHistogram: bad column range");
  }
  if (rows.size() % width != 0) {
    throw InvalidArgumentError(
        "BytePairHistogram: size not a multiple of width");
  }
  std::vector<std::uint64_t> histogram(65536, 0);
  const std::size_t n = rows.size() / width;
  for (std::size_t i = 0; i < n; ++i) {
    const auto hi = static_cast<std::uint32_t>(rows[i * width + first]);
    const auto lo = static_cast<std::uint32_t>(rows[i * width + first + 1]);
    ++histogram[(hi << 8) | lo];
  }
  return histogram;
}

std::size_t CountDistinct(std::span<const std::uint64_t> histogram) {
  std::size_t distinct = 0;
  for (const std::uint64_t count : histogram) {
    if (count != 0) ++distinct;
  }
  return distinct;
}

double PearsonCorrelation(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b) {
  if (a.size() != b.size()) {
    throw InvalidArgumentError("PearsonCorrelation: size mismatch");
  }
  if (a.empty()) return 0.0;
  const auto n = static_cast<double>(a.size());
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mean_a += static_cast<double>(a[i]);
    mean_b += static_cast<double>(b[i]);
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = static_cast<double>(a[i]) - mean_a;
    const double db = static_cast<double>(b[i]) - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace primacy
