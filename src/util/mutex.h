// Annotated mutex / condition-variable shims over the std types.
//
// These exist so Clang Thread Safety Analysis can see locking: std::mutex
// itself carries no capability attributes, so `GUARDED_BY(std_mu)` would
// never be checkable. primacy::Mutex is a zero-overhead wrapper (one
// std::mutex member, all methods inline) that is a TSA capability;
// primacy::MutexLock is the annotated scoped lock; primacy::CondVar waits on
// a primacy::Mutex while keeping the analysis informed that the lock is
// released during the wait and re-held after.
//
// Usage rules (enforced by the `mutex-annotation-coverage` lint rule):
//  - Long-lived class members use primacy::Mutex / primacy::CondVar, never
//    raw std::mutex / std::condition_variable (function-local statics used
//    purely as leaked-singleton construction guards are exempt).
//  - Every CondVar member's declaration names, in a comment on the preceding
//    lines, which Mutex it pairs with.
#ifndef PRIMACY_UTIL_MUTEX_H_
#define PRIMACY_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace primacy {

class CondVar;

// A std::mutex that is a Clang TSA capability.
class PRIMACY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PRIMACY_ACQUIRE() { mu_.lock(); }
  void Unlock() PRIMACY_RELEASE() { mu_.unlock(); }
  bool TryLock() PRIMACY_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Documentation/analysis seam: callers use this where a runtime "is the
  // lock held?" assertion would go. std::mutex cannot check ownership, so
  // this is a no-op at runtime, but it tells the analysis the capability is
  // held from here on.
  void AssertHeld() const PRIMACY_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scoped lock holding a primacy::Mutex for the enclosing scope.
class PRIMACY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PRIMACY_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PRIMACY_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable paired with primacy::Mutex. Wait/WaitUntil require the
// mutex held; the analysis understands the lock is released for the duration
// of the wait and re-held on return (the std::unique_lock adopt/release
// dance below never actually unlocks outside the wait itself).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks until notified, and re-acquires `mu`
  // before returning. Callers are responsible for the usual predicate loop:
  // spurious wakeups are possible.
  void Wait(Mutex& mu) PRIMACY_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // As Wait, but also returns once `deadline` passes. Returns true if the
  // wait timed out, false if it was (possibly spuriously) notified.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      PRIMACY_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace primacy

#endif  // PRIMACY_UTIL_MUTEX_H_
