// Portable wrappers for Clang Thread Safety Analysis attributes.
//
// The macros expand to `__attribute__((...))` under Clang and to nothing
// elsewhere, so annotated code compiles identically under GCC/MSVC while
// Clang builds (the `PRIMACY_THREAD_SAFETY=ON` flavor, and the thread-safety
// CI job) prove lock discipline at compile time with
// `-Wthread-safety -Wthread-safety-beta` promoted to errors.
//
// Conventions (see docs/STATIC_ANALYSIS.md "Lock discipline"):
//  - Every mutex-protected member is declared with
//    `PRIMACY_GUARDED_BY(mu_)` next to the mutex that guards it.
//  - Internal helpers that assume a lock is already held are annotated
//    `PRIMACY_REQUIRES(mu_)` instead of relying on naming conventions
//    ("...Locked") alone.
//  - Functions that must NOT be called with a lock held (because they
//    acquire it themselves, or call out under no lock) use
//    `PRIMACY_EXCLUDES(mu_)`.
//  - Attributes live on the first declaration only (the header); out-of-line
//    definitions do not repeat them. On virtual overrides the attribute is
//    placed after `override`.
#ifndef PRIMACY_UTIL_THREAD_ANNOTATIONS_H_
#define PRIMACY_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define PRIMACY_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PRIMACY_THREAD_ANNOTATION(x)
#endif

// Marks a class as a capability (lockable). The string names the capability
// kind in diagnostics, e.g. PRIMACY_CAPABILITY("mutex").
#define PRIMACY_CAPABILITY(x) PRIMACY_THREAD_ANNOTATION(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (e.g. primacy::MutexLock).
#define PRIMACY_SCOPED_CAPABILITY PRIMACY_THREAD_ANNOTATION(scoped_lockable)

// Declares that a data member is protected by the given capability: reads
// require the capability held (shared or exclusive), writes require it
// exclusively.
#define PRIMACY_GUARDED_BY(x) PRIMACY_THREAD_ANNOTATION(guarded_by(x))

// Like PRIMACY_GUARDED_BY, but for pointer members whose *pointee* is
// protected by the capability (the pointer itself may be read freely).
#define PRIMACY_PT_GUARDED_BY(x) PRIMACY_THREAD_ANNOTATION(pt_guarded_by(x))

// Documents required acquisition order between capabilities.
#define PRIMACY_ACQUIRED_BEFORE(...) \
  PRIMACY_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PRIMACY_ACQUIRED_AFTER(...) \
  PRIMACY_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// The calling thread must hold the given capabilities on entry, and still
// holds them on exit. (Temporarily releasing and re-acquiring inside the
// function is legal.)
#define PRIMACY_REQUIRES(...) \
  PRIMACY_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// The function acquires the capability and holds it on exit.
#define PRIMACY_ACQUIRE(...) \
  PRIMACY_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// The function releases the capability (which must be held on entry).
#define PRIMACY_RELEASE(...) \
  PRIMACY_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// The function tries to acquire the capability; the first argument is the
// return value on success.
#define PRIMACY_TRY_ACQUIRE(...) \
  PRIMACY_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// The calling thread must NOT hold the given capabilities (typically because
// the function acquires them itself; guards against self-deadlock).
#define PRIMACY_EXCLUDES(...) \
  PRIMACY_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Tells the analysis to assume the capability is held (runtime-checked
// assertion seam, e.g. Mutex::AssertHeld).
#define PRIMACY_ASSERT_CAPABILITY(x) \
  PRIMACY_THREAD_ANNOTATION(assert_capability(x))

// The function returns a reference to the given capability.
#define PRIMACY_RETURN_CAPABILITY(x) \
  PRIMACY_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables analysis for one function. Every use must carry a
// comment explaining why the analysis cannot express the pattern.
#define PRIMACY_NO_THREAD_SAFETY_ANALYSIS \
  PRIMACY_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PRIMACY_UTIL_THREAD_ANNOTATIONS_H_
