// Statistical utilities shared by the ISOBAR analyzer, the dataset
// characterization benches (Figures 1 and 3), and tests.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace primacy {

/// 256-bin byte-value histogram.
std::array<std::uint64_t, 256> ByteHistogram(ByteSpan data);

/// Shannon entropy in bits/byte of a byte histogram (0 for empty input).
double HistogramEntropyBits(const std::array<std::uint64_t, 256>& histogram);

/// Shannon entropy in bits/byte of raw data.
double ByteEntropyBits(ByteSpan data);

/// Fraction of `data` occupied by its single most frequent byte value
/// (0 for empty input). This is the paper's "repeatability of the most
/// frequently occurring data byte" metric (Section II-C).
double TopByteFrequency(ByteSpan data);

/// Figure 1 metric: for each bit position b of a `width`-byte element
/// (bit 0 = MSB of byte 0), the probability of the *more frequent* bit value
/// at that position; always in [0.5, 1].
std::vector<double> DominantBitProbability(ByteSpan rows, std::size_t width);

/// Histogram over the 65,536 possible 16-bit byte-sequences formed by byte
/// columns `first` and `first + 1` of a row-linearized `width`-byte matrix
/// (paper Figure 3).
std::vector<std::uint64_t> BytePairHistogram(ByteSpan rows, std::size_t width,
                                             std::size_t first);

/// Number of non-zero bins in a histogram.
std::size_t CountDistinct(std::span<const std::uint64_t> histogram);

/// Pearson correlation of two equally-sized frequency vectors; returns 0 when
/// either vector is constant. Used by the index-reuse heuristic
/// (paper Section II-F future work).
double PearsonCorrelation(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b);

/// Arithmetic mean of a series (0 for empty input).
double Mean(std::span<const double> values);

}  // namespace primacy
