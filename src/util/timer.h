// Lightweight wall-clock timing used by the benchmark harnesses and by the
// throughput calibration pass that feeds the performance model.
#pragma once

#include <chrono>

namespace primacy {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Throughput in MB/s (decimal megabytes, as in the paper's tables).
inline double ThroughputMBps(std::size_t bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / 1.0e6 / seconds;
}

}  // namespace primacy
