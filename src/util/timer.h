// Lightweight wall-clock timing used by the benchmark harnesses, the
// telemetry stage clocks, and the throughput calibration pass that feeds
// the performance model.
#pragma once

#include <chrono>
#include <cstdint>

namespace primacy {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset(). Never negative
  /// (the clock is monotonic; a zero-duration read yields 0.0).
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed nanoseconds, clamped to >= 0.
  std::uint64_t ElapsedNs() const {
    const auto delta = Clock::now() - start_;
    if (delta.count() <= 0) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Throughput in MB/s (decimal megabytes, as in the paper's tables).
/// Edge cases: zero bytes report 0 regardless of elapsed time, and a
/// zero/negative/NaN elapsed time reports 0 rather than inf/NaN — 0 means
/// "unmeasurable", and keeps the value JSON-serializable.
inline double ThroughputMBps(std::size_t bytes, double seconds) {
  if (bytes == 0) return 0.0;
  if (!(seconds > 0.0)) return 0.0;  // also catches NaN
  return static_cast<double>(bytes) / 1.0e6 / seconds;
}

/// Rate in bytes/second with the elapsed time clamped to >= 1 ns, for
/// calibration paths (performance-model inputs) that must never divide by
/// zero or feed a zero/infinite rate downstream. Zero bytes still rate 0.
inline double SafeRateBps(std::size_t bytes, double seconds) {
  if (bytes == 0) return 0.0;
  if (!(seconds > 1e-9)) seconds = 1e-9;  // also catches NaN and negatives
  return static_cast<double>(bytes) / seconds;
}

}  // namespace primacy
