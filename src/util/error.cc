#include "util/error.h"

#include <sstream>

namespace primacy {

void ThrowCheckFailure(const char* expr, const char* file, int line) {
  std::ostringstream oss;
  oss << "PRIMACY_CHECK failed: " << expr << " at " << file << ":" << line;
  throw InternalError(oss.str());
}

}  // namespace primacy
