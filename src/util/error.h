// Error hierarchy for the PRIMACY library.
//
// Recoverable failures (corrupt stream, bad argument) throw exceptions from
// this hierarchy; internal invariant violations use PRIMACY_CHECK which
// throws InternalError with the failing expression.
#pragma once

#include <stdexcept>
#include <string>

namespace primacy {

/// Base class for all PRIMACY errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// A caller supplied an argument outside the documented domain.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& message) : Error(message) {}
};

/// A compressed stream failed validation during decode (truncated buffer,
/// bad magic, inconsistent sizes, corrupt entropy stream...).
class CorruptStreamError : public Error {
 public:
  explicit CorruptStreamError(const std::string& message) : Error(message) {}
};

/// An internal invariant did not hold; indicates a library bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& message) : Error(message) {}
};

[[noreturn]] void ThrowCheckFailure(const char* expr, const char* file,
                                    int line);

}  // namespace primacy

/// Invariant check that stays on in release builds: codec correctness bugs
/// must never silently corrupt scientific data.
#define PRIMACY_CHECK(expr)                                   \
  do {                                                        \
    if (!(expr)) {                                            \
      ::primacy::ThrowCheckFailure(#expr, __FILE__, __LINE__); \
    }                                                         \
  } while (false)
