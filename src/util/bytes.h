// Core byte-buffer vocabulary types shared by every PRIMACY module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace primacy {

/// Owning byte buffer. All codec inputs/outputs are expressed in terms of
/// Bytes / ByteSpan so modules never depend on each other's containers.
using Bytes = std::vector<std::byte>;

/// Non-owning read-only view over raw bytes.
using ByteSpan = std::span<const std::byte>;

/// Non-owning mutable view over raw bytes.
using MutableByteSpan = std::span<std::byte>;

/// Reinterpret a span of trivially-copyable values as raw bytes.
template <typename T>
ByteSpan AsBytes(std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::as_bytes(values);
}

/// Convenience overload for vectors.
template <typename T>
ByteSpan AsBytes(const std::vector<T>& values) {
  return std::as_bytes(std::span<const T>(values));
}

inline Bytes ToBytes(ByteSpan view) { return Bytes(view.begin(), view.end()); }

/// Copy raw bytes into a vector of trivially-copyable values. The byte count
/// must be an exact multiple of sizeof(T).
template <typename T>
std::vector<T> FromBytes(ByteSpan raw) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> out(raw.size() / sizeof(T));
  if (!out.empty()) {
    std::memcpy(out.data(), raw.data(), out.size() * sizeof(T));
  }
  return out;
}

/// Build a Bytes buffer from a string literal (test convenience).
inline Bytes BytesFromString(const std::string& text) {
  Bytes out(text.size());
  // Empty-input guard: memcpy requires non-null pointers even for size 0.
  if (!text.empty()) std::memcpy(out.data(), text.data(), text.size());
  return out;
}

inline std::string StringFromBytes(ByteSpan raw) {
  if (raw.empty()) return std::string();
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

/// Append `src` to `dst`.
inline void AppendBytes(Bytes& dst, ByteSpan src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

constexpr std::byte operator""_b(unsigned long long v) {
  return static_cast<std::byte>(v);
}

}  // namespace primacy
