#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace primacy {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // All-zero state is the one invalid configuration for xoshiro.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  if (bound == 0) throw InvalidArgumentError("Rng::NextBelow: bound must be > 0");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  if (!(lo < hi)) throw InvalidArgumentError("Rng::NextDouble: lo must be < hi");
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::uint64_t Rng::NextSkewed(std::uint64_t n, double decay) {
  if (n == 0) throw InvalidArgumentError("Rng::NextSkewed: n must be > 0");
  if (!(decay > 0.0 && decay < 1.0)) {
    throw InvalidArgumentError("Rng::NextSkewed: decay must be in (0, 1)");
  }
  // Sample a truncated geometric distribution via inverse transform:
  // P(k) proportional to decay^k for k in [0, n).
  const double u = NextDouble();
  const double total = 1.0 - std::pow(decay, static_cast<double>(n));
  const double k =
      std::log(1.0 - u * total) / std::log(decay);
  auto idx = static_cast<std::uint64_t>(k);
  return idx >= n ? n - 1 : idx;
}

}  // namespace primacy
