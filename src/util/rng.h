// Deterministic, seedable pseudo-random number generation.
//
// Dataset generators and property tests need reproducible streams that are
// identical across platforms and standard-library implementations, so we
// implement xoshiro256** (Blackman & Vigna) rather than rely on std::mt19937
// distributions whose results are unspecified across vendors.
#pragma once

#include <array>
#include <cstdint>

namespace primacy {

/// xoshiro256** 1.0 generator with splitmix64 seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniformly random bits.
  std::uint64_t NextU64();
  result_type operator()() { return NextU64(); }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal variate (Marsaglia polar method, deterministic).
  double NextGaussian();

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p = 0.5);

  /// Geometric-ish skewed index in [0, n): probability mass decays by
  /// `decay` per rank. Used to synthesize skewed byte-sequence frequency
  /// distributions.
  std::uint64_t NextSkewed(std::uint64_t n, double decay);

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace primacy
