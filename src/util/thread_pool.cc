#include "util/thread_pool.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <exception>
#include <map>

#include "telemetry/metrics.h"
#include "util/error.h"
#include "util/timer.h"

namespace primacy {
namespace internal {

/// Per-pool-name metrics, resolved once per name. Utilization = busy_ns /
/// (workers * wall); wait = enqueue-to-start latency (scheduling delay +
/// queueing). Series carry a `pool="<name>"` label so concurrent pools
/// (shared + nested in-situ) never collapse into one series.
struct PoolMetrics {
  telemetry::Gauge& workers;
  telemetry::Gauge& queue_depth;
  telemetry::Counter& tasks;
  telemetry::Counter& busy_ns;
  telemetry::Histogram& wait_us;
  telemetry::Histogram& run_us;

  static PoolMetrics* ForName(const std::string& name) {
    static constexpr std::array<double, 7> kLatencyBoundsUs = {
        10.0, 100.0, 1000.0, 10000.0, 100000.0, 1e6, 1e7};
    // One instance per distinct pool name, never destroyed: the registry
    // references must outlive every pool, including the leaked shared one.
    static std::mutex mutex;
    static std::map<std::string, PoolMetrics*>* instances =
        new std::map<std::string, PoolMetrics*>();
    std::lock_guard<std::mutex> lock(mutex);
    auto it = instances->find(name);
    if (it != instances->end()) return it->second;
    const std::string labels = "pool=\"" + name + "\"";
    auto& registry = telemetry::MetricsRegistry::Global();
    auto* metrics = new PoolMetrics{
        registry.GetGauge("primacy_pool_workers", labels),
        registry.GetGauge("primacy_pool_queue_depth", labels),
        registry.GetCounter("primacy_pool_tasks_total", labels),
        registry.GetCounter("primacy_pool_busy_ns_total", labels),
        registry.GetHistogram("primacy_pool_task_wait_us", kLatencyBoundsUs,
                              labels),
        registry.GetHistogram("primacy_pool_task_run_us", kLatencyBoundsUs,
                              labels),
    };
    instances->emplace(name, metrics);
    return metrics;
  }
};

}  // namespace internal

namespace {

bool ValidPoolName(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, std::string_view name)
    : name_(name) {
  if (!ValidPoolName(name_)) {
    throw InvalidArgumentError(
        "ThreadPool: pool name must match [A-Za-z0-9_.-]+ (it becomes a "
        "Prometheus label value)");
  }
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if constexpr (telemetry::kEnabled) {
    metrics_ = internal::PoolMetrics::ForName(name_);
    metrics_->workers.Add(static_cast<std::int64_t>(num_threads));
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    primacy::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) worker.join();
  if constexpr (telemetry::kEnabled) {
    metrics_->workers.Add(-static_cast<std::int64_t>(workers_.size()));
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  if constexpr (telemetry::kEnabled) {
    internal::PoolMetrics* metrics = metrics_;
    metrics->queue_depth.Add(1);
    metrics->tasks.Increment();
    WallTimer enqueue_timer;
    task = [inner = std::move(task), enqueue_timer, metrics] {
      metrics->queue_depth.Add(-1);
      metrics->wait_us.Observe(static_cast<double>(enqueue_timer.ElapsedNs()) /
                               1e3);
      WallTimer run_timer;
      inner();
      const std::uint64_t run_ns = run_timer.ElapsedNs();
      metrics->busy_ns.Increment(run_ns);
      metrics->run_us.Observe(static_cast<double>(run_ns) / 1e3);
    };
  }
  {
    primacy::MutexLock lock(mutex_);
    tasks_.emplace(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      primacy::MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) cv_.Wait(mutex_);
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  // Drain EVERY future before letting an exception escape: queued tasks
  // reference `fn`, which lives in the caller's frame — returning early
  // would leave workers calling through a dangling reference.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    primacy::MutexLock lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  return true;
}

void ThreadPool::ParallelForSlots(
    std::size_t count, std::size_t max_slots,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  // Slot 0 is the calling thread; each pool worker can host one more.
  std::size_t slots = max_slots == 0 ? num_threads() + 1 : max_slots;
  slots = std::min(slots, count);

  std::atomic<std::size_t> next{0};
  const auto run_slot = [&](std::size_t slot) {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(slot, i);
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(slots > 0 ? slots - 1 : 0);
  for (std::size_t s = 1; s < slots; ++s) {
    futures.push_back(Submit([&run_slot, s] { run_slot(s); }));
  }

  std::exception_ptr first_error;
  try {
    run_slot(0);
  } catch (...) {
    first_error = std::current_exception();
  }
  // Wait for the remaining slots, helping with queued work meanwhile: a
  // slot task may sit behind unrelated tasks (nested sections submit to the
  // same shared pool), and every worker may itself be blocked right here —
  // draining the queue from the waiting thread guarantees global progress.
  for (auto& future : futures) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!RunOneTask()) {
        future.wait_for(std::chrono::milliseconds(1));
      }
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& SharedThreadPool() {
  // Deliberately leaked: joining workers from a static destructor can race
  // the teardown of other globals the queued tasks still reference.
  static ThreadPool* pool = new ThreadPool(0, "shared");
  return *pool;
}

}  // namespace primacy
