#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace primacy {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  // Drain EVERY future before letting an exception escape: queued tasks
  // reference `fn`, which lives in the caller's frame — returning early
  // would leave workers calling through a dangling reference.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace primacy
