// 64-bit stream checksums (XXH64).
//
// Stream format v3 protects every chunk record and the surrounding framing
// with 64-bit checksums so a restart never consumes silently corrupted
// checkpoint data. We implement XXH64 (Collet's xxHash, a public-domain
// specification) in-tree rather than depend on an external library: it is
// ~40 lines of arithmetic, runs at memory bandwidth on the 3 MB chunks the
// paper settles on, and its published test vectors pin our implementation
// cross-platform.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace primacy {

/// One-shot XXH64 of `data`.
std::uint64_t Xxh64(ByteSpan data, std::uint64_t seed = 0);

/// Incremental XXH64, for checksums spanning non-contiguous byte ranges
/// (e.g. a stream's header and tail block with the chunk records between
/// them) and for writers that never hold the whole stream.
///
///   Xxh64State state;
///   state.Update(header);
///   state.Update(tail);
///   const std::uint64_t checksum = state.Digest();
///
/// Digest() is non-destructive: more Update calls may follow.
class Xxh64State {
 public:
  explicit Xxh64State(std::uint64_t seed = 0);

  void Update(ByteSpan data);
  std::uint64_t Digest() const;

  /// Total bytes consumed so far.
  std::uint64_t total_bytes() const { return total_; }

 private:
  std::uint64_t acc_[4];
  std::byte buffer_[32];
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace primacy
