// Pipeline stage taxonomy shared by the chunk encoder/decoder, the metrics
// registry, and the model-validation bench.
//
// The stages are the measurable units of the paper's performance model
// (Section III): split + frequency + id_map + serialize make up the
// preconditioner (T_prec, Eqs. 7-8), solver + isobar the solver passes
// (T_comp, Eqs. 9-10); on the read path solver + isobar are T_decomp and
// frequency (index restore) + id_map + merge the inverse preconditioner.
// checksum is the v3 integrity pass, outside the paper's model.
//
// StageBreakdown is plain data and exists in every build; StageClock is the
// collection primitive and compiles to a no-op when PRIMACY_TELEMETRY=OFF,
// leaving every breakdown zero at zero cost.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

#ifndef PRIMACY_TELEMETRY_ENABLED
#define PRIMACY_TELEMETRY_ENABLED 1
#endif

namespace primacy::telemetry {

/// True when telemetry collection is compiled in (PRIMACY_TELEMETRY=ON).
inline constexpr bool kEnabled = PRIMACY_TELEMETRY_ENABLED != 0;

enum class Stage : std::uint8_t {
  kSplit = 0,   // big-endian rows + high/low byte split (encode only)
  kFrequency,   // pair-frequency analysis + index build/extend/deserialize
  kIdMap,       // MapToIds / MapFromIds, including linearization
  kSolver,      // solver codec over the ID bytes
  kIsobar,      // ISOBAR partition compress/decompress of the mantissa
  kChecksum,    // XXH64 verification (v3 decode paths)
  kMerge,       // decode-side fused high/low merge to native layout
  kSerialize,   // record framing: varints, blocks, index serialization
};
inline constexpr std::size_t kStageCount = 8;

constexpr std::string_view StageName(Stage stage) {
  constexpr std::array<std::string_view, kStageCount> kNames = {
      "split",  "frequency", "id_map", "solver",
      "isobar", "checksum",  "merge",  "serialize"};
  return kNames[static_cast<std::size_t>(stage)];
}

/// Per-stage elapsed nanoseconds, accumulated across chunks (and, for
/// parallel runs, across workers — so totals are CPU seconds, not wall).
struct StageBreakdown {
  std::array<std::uint64_t, kStageCount> ns{};

  std::uint64_t& operator[](Stage stage) {
    return ns[static_cast<std::size_t>(stage)];
  }
  std::uint64_t operator[](Stage stage) const {
    return ns[static_cast<std::size_t>(stage)];
  }

  double Seconds(Stage stage) const {
    return static_cast<double>((*this)[stage]) * 1e-9;
  }

  std::uint64_t TotalNs() const {
    std::uint64_t total = 0;
    for (const std::uint64_t v : ns) total += v;
    return total;
  }
  double TotalSeconds() const { return static_cast<double>(TotalNs()) * 1e-9; }

  void Accumulate(const StageBreakdown& other) {
    for (std::size_t i = 0; i < kStageCount; ++i) ns[i] += other.ns[i];
  }
};

/// Lap timer for sequential stage attribution: each Lap() charges the time
/// since the previous Lap()/construction to one stage. One clock read per
/// stage boundary; a no-op (and no clock reads) when telemetry is off.
class StageClock {
 public:
#if PRIMACY_TELEMETRY_ENABLED
  StageClock() : last_(std::chrono::steady_clock::now()) {}

  /// Forgets any time since the last lap (e.g. across untimed sections).
  void Restart() { last_ = std::chrono::steady_clock::now(); }

  void Lap(StageBreakdown& breakdown, Stage stage) {
    const auto now = std::chrono::steady_clock::now();
    const auto delta = now - last_;
    if (delta.count() > 0) {
      breakdown[stage] += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
    }
    last_ = now;
  }

 private:
  std::chrono::steady_clock::time_point last_;
#else
  StageClock() = default;
  void Restart() {}
  void Lap(StageBreakdown&, Stage) {}
#endif
};

}  // namespace primacy::telemetry
