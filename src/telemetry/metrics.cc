#include "telemetry/metrics.h"

#if PRIMACY_TELEMETRY_ENABLED

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace primacy::telemetry {
namespace {

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// %g with enough digits for counters; integral values render without a
/// decimal point, which keeps the output friendly to strict parsers.
std::string FormatNumber(double value) {
  char buffer[64];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value < 1e15 && value > -1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  }
  return buffer;
}

void AppendSeries(std::string& out, const std::string& name,
                  const std::string& labels, double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += FormatNumber(value);
  out += '\n';
}

/// Label body with one extra pair appended (histogram `le`).
std::string WithLabel(const std::string& labels, const std::string& extra) {
  return labels.empty() ? extra : labels + "," + extra;
}

}  // namespace

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(new std::atomic<std::uint64_t>[bounds.size() + 1]) {
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (!(bounds_[i] < bounds_[i + 1])) {
      bounds_.clear();  // degenerate spec: fall back to a single +Inf bucket
      break;
    }
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

std::uint64_t Histogram::CumulativeCount(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b <= bounds_.size(); ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.cumulative.resize(bounds_.size() + 1);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    snapshot.cumulative[i] = running;
  }
  // The +Inf cumulative IS the count by construction; read the atomics in
  // that order so count never exceeds the buckets' total.
  snapshot.count = snapshot.cumulative.back();
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  struct Entry {
    std::string name;
    std::string labels;
    MetricKind kind = MetricKind::kCounter;
    // Stable addresses: entries are never erased, values never move.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Registry lock. Leaf in every lock order: Get*/Render never call out
  /// while holding it, so it can safely be taken under the hub's mutex.
  mutable primacy::Mutex mutex;
  // Keyed by name + '\xff' + labels; \xff cannot appear in a metric name.
  std::map<std::string, Entry> entries PRIMACY_GUARDED_BY(mutex);

  Entry& Resolve(std::string_view name, std::string_view labels,
                 MetricKind kind) PRIMACY_REQUIRES(mutex) {
    std::string key;
    key.reserve(name.size() + labels.size() + 1);
    key.append(name);
    key.push_back('\xff');
    key.append(labels);
    const auto it = entries.find(key);
    if (it != entries.end()) return it->second;
    Entry& entry = entries[key];
    entry.name.assign(name);
    entry.labels.assign(labels);
    entry.kind = kind;
    return entry;
  }
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // Leaked deliberately: instrument sites cache metric pointers and may
  // outlive any static-destruction order we could arrange.
  static Impl* impl = new Impl();
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels) {
  Impl& state = impl();
  primacy::MutexLock lock(state.mutex);
  Impl::Entry& entry = state.Resolve(name, labels, MetricKind::kCounter);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels) {
  Impl& state = impl();
  primacy::MutexLock lock(state.mutex);
  Impl::Entry& entry = state.Resolve(name, labels, MetricKind::kGauge);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds,
                                         std::string_view labels) {
  Impl& state = impl();
  primacy::MutexLock lock(state.mutex);
  Impl::Entry& entry = state.Resolve(name, labels, MetricKind::kHistogram);
  if (!entry.histogram) entry.histogram = std::make_unique<Histogram>(bounds);
  return *entry.histogram;
}

std::string MetricsRegistry::RenderPrometheus() const {
  Impl& state = impl();
  primacy::MutexLock lock(state.mutex);
  std::string out;
  // The map iterates in key order, i.e. grouped by name then labels; emit
  // one # TYPE line per family.
  std::string last_family;
  for (const auto& [key, entry] : state.entries) {
    if (entry.name != last_family) {
      out += "# TYPE " + entry.name + " " + KindName(entry.kind) + "\n";
      last_family = entry.name;
    }
    if (entry.counter) {
      AppendSeries(out, entry.name, entry.labels,
                   static_cast<double>(entry.counter->Value()));
    } else if (entry.gauge) {
      AppendSeries(out, entry.name, entry.labels,
                   static_cast<double>(entry.gauge->Value()));
    } else if (entry.histogram) {
      const Histogram& h = *entry.histogram;
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        AppendSeries(out, entry.name + "_bucket",
                     WithLabel(entry.labels,
                               "le=\"" + FormatNumber(h.bounds()[i]) + "\""),
                     static_cast<double>(h.CumulativeCount(i)));
      }
      AppendSeries(out, entry.name + "_bucket",
                   WithLabel(entry.labels, "le=\"+Inf\""),
                   static_cast<double>(h.Count()));
      AppendSeries(out, entry.name + "_sum", entry.labels, h.Sum());
      AppendSeries(out, entry.name + "_count", entry.labels,
                   static_cast<double>(h.Count()));
    }
  }
  return out;
}

void MetricsRegistry::ResetAllForTest() {
  Impl& state = impl();
  primacy::MutexLock lock(state.mutex);
  for (auto& [key, entry] : state.entries) {
    if (entry.counter) entry.counter->Reset();
    if (entry.gauge) entry.gauge->Reset();
    if (entry.histogram) entry.histogram->Reset();
  }
}

}  // namespace primacy::telemetry

#endif  // PRIMACY_TELEMETRY_ENABLED
