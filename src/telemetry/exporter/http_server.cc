#include "telemetry/exporter/http_server.h"

#if PRIMACY_TELEMETRY_ENABLED

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>

#include "service/clock.h"
#include "transport/socket_io.h"
#include "util/bytes.h"

namespace primacy::telemetry {
namespace {

// Per-connection I/O budgets. A scrape is a handful of header lines and a
// metrics page; a peer that cannot finish either side in 5 seconds is
// wedged, and a wedged scraper must not pin the accept loop forever.
constexpr std::uint64_t kReadDeadlineNs = 5'000'000'000ull;
constexpr std::uint64_t kWriteDeadlineNs = 5'000'000'000ull;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

/// Request target from "GET /path HTTP/1.x"; empty on malformed input.
std::string ParseRequestPath(const std::string& request) {
  const std::size_t first = request.find(' ');
  if (first == std::string::npos) return {};
  const std::size_t second = request.find(' ', first + 1);
  if (second == std::string::npos || second == first + 1) return {};
  std::string path = request.substr(first + 1, second - first - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

}  // namespace

struct HttpServer::Impl {
  transport::UniqueFd listen_fd;
  // Self-pipe: Stop() wakes it, the accept loop polls the read end
  // alongside the listen socket and exits — no timed polling.
  transport::WakePipe wake;
  int port = -1;
  HttpHandler handler;
  std::thread thread;
  std::atomic<bool> stopping{false};

  void AcceptLoop();
  void ServeConnection(int fd) const;
};

void HttpServer::Impl::AcceptLoop() {
  for (;;) {
    int conn = -1;
    const transport::IoStatus status =
        transport::AcceptWithWake(listen_fd.get(), wake.read_fd(), &conn);
    if (status != transport::IoStatus::kOk ||
        stopping.load(std::memory_order_relaxed)) {
      if (conn >= 0) transport::UniqueFd closer(conn);
      return;
    }
    transport::UniqueFd conn_fd(conn);
    ServeConnection(conn_fd.get());
  }
}

void HttpServer::Impl::ServeConnection(int fd) const {
  auto& clock = service::SystemServiceClock::Instance();
  // Scrape requests are a handful of header lines; cap the head read so a
  // garbage client cannot grow the buffer unboundedly. RecvSome retries
  // EINTR and polls under the read deadline, so a stalled peer times out
  // instead of wedging the accept loop.
  const transport::IoDeadline read_deadline =
      transport::IoDeadline::After(clock, kReadDeadlineNs);
  std::string request;
  std::byte buffer[1024];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    std::size_t received = 0;
    const transport::IoStatus status = transport::RecvSome(
        fd, MutableByteSpan(buffer), &received, read_deadline);
    if (status != transport::IoStatus::kOk) break;
    request.append(StringFromBytes(ByteSpan(buffer, received)));
  }
  const std::string path = ParseRequestPath(request);
  HttpResponse response;
  if (path.empty()) {
    response.status = 400;
    response.body = "bad request\n";
  } else {
    response = handler(path);
  }
  char head[192];
  std::snprintf(head, sizeof head,
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                response.status, StatusText(response.status),
                response.content_type.c_str(), response.body.size());
  std::string out = head;
  out += response.body;
  // SendAll retries EINTR-interrupted and short writes and applies the
  // per-connection write deadline — a /metrics page is many kilobytes, and
  // the old single-pass loop could silently truncate it on a slow reader.
  transport::SendAll(fd, AsBytes(std::span<const char>(out.data(), out.size())),
                     transport::IoDeadline::After(clock, kWriteDeadlineNs));
}

HttpServer::HttpServer() : impl_(new Impl()) {}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(int port, HttpHandler handler) {
  Impl& state = *impl_;
  if (state.listen_fd.valid() || port < 0 || port > 65535) return false;
  if (!state.wake.Open(nullptr)) return false;
  int bound_port = -1;
  const int fd = transport::ListenTcpLoopback(port, &bound_port, nullptr);
  if (fd < 0) {
    state.wake.Close();
    return false;
  }
  state.listen_fd.Reset(fd);
  state.port = bound_port;
  state.handler = std::move(handler);
  state.stopping.store(false, std::memory_order_relaxed);
  // Dedicated accept thread, not a pool task: it blocks in poll() for the
  // server's whole lifetime, which would starve the shared pool (see the
  // pool-containment allowlist note in tools/primacy_lint).
  state.thread = std::thread([&state] { state.AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  Impl& state = *impl_;
  if (!state.listen_fd.valid()) return;
  state.stopping.store(true, std::memory_order_relaxed);
  state.wake.Wake();
  if (state.thread.joinable()) state.thread.join();
  state.listen_fd.Reset();
  state.wake.Close();
  state.port = -1;
  state.handler = nullptr;
}

int HttpServer::Port() const { return impl_->port; }

}  // namespace primacy::telemetry

#endif  // PRIMACY_TELEMETRY_ENABLED
