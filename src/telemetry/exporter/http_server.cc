#include "telemetry/exporter/http_server.h"

#if PRIMACY_TELEMETRY_ENABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

namespace primacy::telemetry {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

/// Request target from "GET /path HTTP/1.x"; empty on malformed input.
std::string ParseRequestPath(const std::string& request) {
  const std::size_t first = request.find(' ');
  if (first == std::string::npos) return {};
  const std::size_t second = request.find(' ', first + 1);
  if (second == std::string::npos || second == first + 1) return {};
  std::string path = request.substr(first + 1, second - first - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

void CloseIfOpen(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

struct HttpServer::Impl {
  int listen_fd = -1;
  // Self-pipe: Stop() writes one byte, the accept loop polls the read end
  // alongside the listen socket and exits — no timed polling.
  int wake_read_fd = -1;
  int wake_write_fd = -1;
  int port = -1;
  HttpHandler handler;
  std::thread thread;
  std::atomic<bool> stopping{false};

  void AcceptLoop();
  void ServeConnection(int fd) const;
};

void HttpServer::Impl::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_read_fd;
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (stopping.load(std::memory_order_relaxed) ||
        (fds[1].revents & POLLIN) != 0) {
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    ServeConnection(conn);
    ::close(conn);
  }
}

void HttpServer::Impl::ServeConnection(int fd) const {
  // Scrape requests are a handful of header lines; cap the head read so a
  // garbage client cannot grow the buffer unboundedly.
  std::string request;
  char buffer[1024];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<std::size_t>(n));
  }
  const std::string path = ParseRequestPath(request);
  HttpResponse response;
  if (path.empty()) {
    response.status = 400;
    response.body = "bad request\n";
  } else {
    response = handler(path);
  }
  char head[192];
  std::snprintf(head, sizeof head,
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                response.status, StatusText(response.status),
                response.content_type.c_str(), response.body.size());
  std::string out = head;
  out += response.body;
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

HttpServer::HttpServer() : impl_(new Impl()) {}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(int port, HttpHandler handler) {
  Impl& state = *impl_;
  if (state.listen_fd >= 0 || port < 0 || port > 65535) return false;
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  socklen_t addr_len = sizeof addr;
  if (::bind(fd, (const sockaddr*)&addr, sizeof addr) != 0 ||
      ::listen(fd, 16) != 0 ||
      ::getsockname(fd, (sockaddr*)&addr, &addr_len) != 0) {
    ::close(fd);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return false;
  }
  state.listen_fd = fd;
  state.wake_read_fd = pipe_fds[0];
  state.wake_write_fd = pipe_fds[1];
  state.port = static_cast<int>(ntohs(addr.sin_port));
  state.handler = std::move(handler);
  state.stopping.store(false, std::memory_order_relaxed);
  // Dedicated accept thread, not a pool task: it blocks in poll() for the
  // server's whole lifetime, which would starve the shared pool (see the
  // pool-containment allowlist note in tools/primacy_lint).
  state.thread = std::thread([&state] { state.AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  Impl& state = *impl_;
  if (state.listen_fd < 0) return;
  state.stopping.store(true, std::memory_order_relaxed);
  const ssize_t wrote = ::write(state.wake_write_fd, "x", 1);
  (void)wrote;  // failure means the loop is already gone; join handles it
  if (state.thread.joinable()) state.thread.join();
  CloseIfOpen(state.listen_fd);
  CloseIfOpen(state.wake_read_fd);
  CloseIfOpen(state.wake_write_fd);
  state.port = -1;
  state.handler = nullptr;
}

int HttpServer::Port() const { return impl_->port; }

}  // namespace primacy::telemetry

#endif  // PRIMACY_TELEMETRY_ENABLED
