// Dependency-free embedded HTTP/1.0 server for the observability endpoints.
//
// Scope is deliberately tiny: loopback-only (binds 127.0.0.1), GET-shaped
// requests, one response per connection, Connection: close. That is exactly
// what a Prometheus scrape or a curl from CI needs, and nothing the service
// traffic path could ever be confused with — this is not a transport.
//
// The accept loop runs on one dedicated thread and multiplexes the listen
// socket against a self-pipe with poll(), so Stop() interrupts a blocked
// accept immediately without timed waits. Request handling happens inline
// on that thread; endpoint bodies are rendered by the caller's handler
// (ObservabilityHub::HandleRequest), which is also callable directly in
// tests without any socket.
//
// Lock discipline: this class holds no mutex at all. The only shared state
// is an atomic stopping flag plus the self-pipe; Start()/Stop() order with
// the accept thread through thread creation/join. Nothing here appears in
// the thread-safety-annotation layer (util/thread_annotations.h) because
// there is no capability to annotate.
//
// Compiles to an inline no-op under PRIMACY_TELEMETRY=OFF: Start() reports
// failure and no socket ever opens, so the endpoint is simply absent.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "telemetry/stage.h"

namespace primacy::telemetry {

/// One rendered response. Plain data, exists in every build.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Maps a request path ("/metrics") to a response; query strings are
/// stripped before dispatch.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

#if PRIMACY_TELEMETRY_ENABLED

class HttpServer {
 public:
  HttpServer();
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, read back
  /// with Port()) and starts the accept thread. Returns false — with no
  /// thread started and no socket left open — if the bind fails.
  bool Start(int port, HttpHandler handler);

  /// Stops accepting, joins the accept thread, closes the socket.
  /// Idempotent.
  void Stop();

  /// Bound port after a successful Start(); -1 otherwise.
  int Port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

#else  // !PRIMACY_TELEMETRY_ENABLED — inline no-op stubs.

class HttpServer {
 public:
  bool Start(int, HttpHandler) { return false; }
  void Stop() {}
  int Port() const { return -1; }
};

#endif  // PRIMACY_TELEMETRY_ENABLED

}  // namespace primacy::telemetry
