#include "telemetry/exporter/observability_hub.h"

#if PRIMACY_TELEMETRY_ENABLED

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/stage_stack.h"
#include "telemetry/trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace primacy::telemetry {
namespace {

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteFileAtomicEnough(const std::string& path, const std::string& body) {
  // Plain overwrite: segments are rewritten in full on every flush, so the
  // worst a concurrent reader sees is a truncated JSON file for one flush
  // period — acceptable for a diagnostics artifact, not worth fsync+rename.
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::size_t wrote = std::fwrite(body.data(), 1, body.size(), file);
  const bool ok = std::fclose(file) == 0 && wrote == body.size();
  return ok;
}

}  // namespace

struct ObservabilityHub::Impl {
  explicit Impl(ObservabilityHubOptions opts)
      : options(std::move(opts)),
        clock(options.clock != nullptr ? options.clock
                                       : &service::SystemServiceClock::Instance()) {}

  const ObservabilityHubOptions options;
  service::ServiceClock* const clock;

  // One lock for all hub state: the exporter thread, Start/Stop, and the
  // HTTP handlers all contend on it briefly; the hot scrape path (/metrics)
  // never takes it. Lock order: mu before the metrics-registry and
  // trace-registry internal locks (FlushTraceLocked / SamplePassLocked call
  // into them under mu); never the reverse.
  primacy::Mutex mu;
  // Paired with mu. Registered with the clock; only the exporter thread
  // waits on it.
  primacy::CondVar cv;
  // Paired with mu. Progress/shutdown announcements to API callers
  // (WaitForTicks, WaitForShutdownRequest); never used with clock->WaitUntil.
  primacy::CondVar state_cv;

  bool started PRIMACY_GUARDED_BY(mu) = false;
  bool stop PRIMACY_GUARDED_BY(mu) = false;
  bool shutdown_requested PRIMACY_GUARDED_BY(mu) = false;
  bool tracing_was_enabled PRIMACY_GUARDED_BY(mu) = false;
  bool sampling_was_enabled PRIMACY_GUARDED_BY(mu) = false;

  std::function<bool()> ready_check PRIMACY_GUARDED_BY(mu);
  std::vector<std::pair<std::string, StatusSource>> status_sources
      PRIMACY_GUARDED_BY(mu);

  ObservabilityHubStats stats PRIMACY_GUARDED_BY(mu);

  // Open trace segment: everything flushed into it so far (the file is
  // rewritten whole on each flush so it is always complete JSON).
  std::vector<TraceEvent> segment_events PRIMACY_GUARDED_BY(mu);
  std::size_t segment_index PRIMACY_GUARDED_BY(mu) = 0;
  bool segment_open PRIMACY_GUARDED_BY(mu) = false;
  // On-disk segment files, oldest first.
  std::deque<std::string> segment_paths PRIMACY_GUARDED_BY(mu);

  // "split;solver" -> samples
  std::map<std::string, std::uint64_t> collapsed PRIMACY_GUARDED_BY(mu);
  std::array<Counter*, kStageCount> profile_counters PRIMACY_GUARDED_BY(mu) =
      {};

  std::uint64_t next_flush_ns PRIMACY_GUARDED_BY(mu) = service::kNoDeadlineNs;
  std::uint64_t next_sample_ns PRIMACY_GUARDED_BY(mu) = service::kNoDeadlineNs;

  std::thread thread;
  HttpServer http;

  bool FlushConfigured() const {
    return !options.trace_dir.empty() && options.trace_flush_interval_ns != 0;
  }

  std::string SegmentPath(std::size_t index) const {
    return options.trace_dir + "/" + options.trace_basename + "." +
           std::to_string(index) + ".json";
  }

  void Run() PRIMACY_EXCLUDES(mu);
  void FlushTraceLocked() PRIMACY_REQUIRES(mu);
  void SamplePassLocked() PRIMACY_REQUIRES(mu);
  std::string RenderStatusz() PRIMACY_EXCLUDES(mu);
  std::string RenderCollapsedLocked() const PRIMACY_REQUIRES(mu);
};

void ObservabilityHub::Impl::Run() {
  primacy::MutexLock lock(mu);
  while (!stop) {
    const std::uint64_t now = clock->NowNs();
    bool worked = false;
    if (FlushConfigured() && now >= next_flush_ns) {
      FlushTraceLocked();
      next_flush_ns = now + options.trace_flush_interval_ns;
      worked = true;
    }
    if (options.profile_interval_ns != 0 && now >= next_sample_ns) {
      SamplePassLocked();
      next_sample_ns = now + options.profile_interval_ns;
      worked = true;
    }
    if (worked) {
      ++stats.ticks;
      state_cv.NotifyAll();
    }
    std::uint64_t deadline = service::kNoDeadlineNs;
    if (FlushConfigured()) deadline = std::min(deadline, next_flush_ns);
    if (options.profile_interval_ns != 0) {
      deadline = std::min(deadline, next_sample_ns);
    }
    if (stop) break;
    clock->WaitUntil(mu, cv, deadline);
  }
}

void ObservabilityHub::Impl::FlushTraceLocked() {
  std::vector<TraceEvent> fresh = DrainTraceEvents();
  ++stats.trace_flushes;
  if (fresh.empty()) return;  // nothing new: leave the segment file alone
  stats.trace_events_written += fresh.size();
  segment_events.insert(segment_events.end(), fresh.begin(), fresh.end());

  const std::string json = RenderChromeTraceEvents(segment_events);
  const std::string path = SegmentPath(segment_index);
  if (!segment_open) {
    segment_open = true;
    ++stats.trace_segments_opened;
    segment_paths.push_back(path);
    while (options.trace_max_segments != 0 &&
           segment_paths.size() > options.trace_max_segments) {
      std::remove(segment_paths.front().c_str());
      segment_paths.pop_front();
    }
  }
  WriteFileAtomicEnough(path, json);

  if (json.size() >= options.trace_segment_bytes) {
    segment_events.clear();
    ++segment_index;
    segment_open = false;
  }
}

void ObservabilityHub::Impl::SamplePassLocked() {
  const std::vector<StageStackSample> samples = SampleStageStacks();
  ++stats.profile_passes;
  for (const StageStackSample& sample : samples) {
    if (sample.depth == 0) continue;
    ++stats.profile_samples;
    Counter* counter = profile_counters[static_cast<std::size_t>(sample.Top())];
    if (counter != nullptr) counter->Increment();
    std::string key;
    for (std::size_t i = 0; i < sample.depth; ++i) {
      if (i != 0) key += ';';
      key += StageName(sample.frames[i]);
    }
    ++collapsed[key];
  }
}

std::string ObservabilityHub::Impl::RenderCollapsedLocked() const {
  std::string out;
  for (const auto& [stack, count] : collapsed) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string ObservabilityHub::Impl::RenderStatusz() {
  ObservabilityHubStats snapshot;
  std::vector<std::string> segments;
  std::vector<std::pair<std::string, StatusSource>> sources;
  {
    primacy::MutexLock lock(mu);
    snapshot = stats;
    segments.assign(segment_paths.begin(), segment_paths.end());
    sources = status_sources;
  }
  std::string out = "{\n  \"hub\": {";
  out += "\"ticks\": " + std::to_string(snapshot.ticks);
  out += ", \"trace_flushes\": " + std::to_string(snapshot.trace_flushes);
  out += ", \"trace_events_written\": " +
         std::to_string(snapshot.trace_events_written);
  out += ", \"trace_segments_opened\": " +
         std::to_string(snapshot.trace_segments_opened);
  out += ", \"trace_dropped_spans\": " + std::to_string(TraceDroppedSpans());
  out += ", \"profile_passes\": " + std::to_string(snapshot.profile_passes);
  out += ", \"profile_samples\": " + std::to_string(snapshot.profile_samples);
  out += "},\n  \"trace_segments\": [";
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += EscapeJson(segments[i]);
    out += '"';
  }
  out += "],\n  \"sources\": {";
  // Sources run outside the hub lock: a source may itself take service
  // locks, and nothing here depends on hub state.
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += EscapeJson(sources[i].first);
    out += "\": ";
    const std::string fragment = sources[i].second ? sources[i].second() : "";
    out += fragment.empty() ? "null" : fragment;
  }
  out += "}\n}\n";
  return out;
}

ObservabilityHub::ObservabilityHub(ObservabilityHubOptions options)
    : impl_(new Impl(std::move(options))) {}

ObservabilityHub::~ObservabilityHub() { Stop(); }

void ObservabilityHub::Start() {
  Impl& state = *impl_;
  {
    primacy::MutexLock lock(state.mu);
    if (state.started) return;
    state.started = true;
    state.stop = false;
    state.shutdown_requested = false;
    if (state.FlushConfigured()) {
      ::mkdir(state.options.trace_dir.c_str(), 0755);  // EEXIST is fine
      state.tracing_was_enabled = TracingEnabled();
      SetTracingEnabled(true);
    }
    if (state.options.profile_interval_ns != 0) {
      state.sampling_was_enabled = StageSamplingEnabled();
      SetStageSamplingEnabled(true);
      for (std::size_t i = 0; i < kStageCount; ++i) {
        const std::string labels =
            "stage=\"" + std::string(StageName(static_cast<Stage>(i))) + "\"";
        state.profile_counters[i] = &MetricsRegistry::Global().GetCounter(
            "primacy_profile_samples_total", labels);
      }
    }
    const std::uint64_t now = state.clock->NowNs();
    state.next_flush_ns = now + state.options.trace_flush_interval_ns;
    state.next_sample_ns = now + state.options.profile_interval_ns;
  }
  // Register before the thread exists so its very first WaitUntil is
  // already wakeable by a VirtualClock::Advance.
  state.clock->RegisterWaiter(&state.mu, &state.cv);
  // Dedicated thread, not a pool task: it lives as long as the hub and
  // mostly blocks in WaitUntil, which would pin a shared pool worker (see
  // the pool-containment allowlist note in tools/primacy_lint).
  state.thread = std::thread([&state] { state.Run(); });
  if (state.options.http_port >= 0) {
    state.http.Start(state.options.http_port,
                     [this](const std::string& path) {
                       return HandleRequest(path);
                     });
  }
}

void ObservabilityHub::Stop() {
  Impl& state = *impl_;
  {
    primacy::MutexLock lock(state.mu);
    if (!state.started) return;
    state.stop = true;
    state.cv.NotifyAll();
    state.state_cv.NotifyAll();
  }
  if (state.thread.joinable()) state.thread.join();
  state.http.Stop();
  state.clock->UnregisterWaiter(&state.cv);
  {
    primacy::MutexLock lock(state.mu);
    // Stop collecting before the final flush so the drain below is complete.
    if (state.options.profile_interval_ns != 0) {
      SetStageSamplingEnabled(state.sampling_was_enabled);
    }
    if (state.FlushConfigured()) {
      SetTracingEnabled(state.tracing_was_enabled);
      state.FlushTraceLocked();
    }
    state.started = false;
    state.state_cv.NotifyAll();
  }
}

int ObservabilityHub::HttpPort() const { return impl_->http.Port(); }

void ObservabilityHub::AddStatusSource(std::string name, StatusSource source) {
  primacy::MutexLock lock(impl_->mu);
  impl_->status_sources.emplace_back(std::move(name), std::move(source));
}

void ObservabilityHub::SetReadyCheck(std::function<bool()> check) {
  primacy::MutexLock lock(impl_->mu);
  impl_->ready_check = std::move(check);
}

HttpResponse ObservabilityHub::HandleRequest(const std::string& path) {
  Impl& state = *impl_;
  HttpResponse response;
  if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = MetricsRegistry::Global().RenderPrometheus();
  } else if (path == "/healthz") {
    response.body = "ok\n";
  } else if (path == "/readyz") {
    std::function<bool()> check;
    {
      primacy::MutexLock lock(state.mu);
      check = state.ready_check;
    }
    if (!check || check()) {
      response.body = "ready\n";
    } else {
      response.status = 503;
      response.body = "not ready\n";
    }
  } else if (path == "/statusz") {
    response.content_type = "application/json";
    response.body = state.RenderStatusz();
  } else if (path == "/profilez") {
    response.body = RenderCollapsedStacks();
  } else if (path == "/quitquitquit" && state.options.enable_quit_endpoint) {
    {
      primacy::MutexLock lock(state.mu);
      state.shutdown_requested = true;
      state.state_cv.NotifyAll();
    }
    response.body = "shutting down\n";
  } else {
    response.status = 404;
    response.body = "not found\n";
  }
  return response;
}

ObservabilityHubStats ObservabilityHub::GetStats() const {
  primacy::MutexLock lock(impl_->mu);
  return impl_->stats;
}

void ObservabilityHub::WaitForTicks(std::uint64_t ticks) {
  Impl& state = *impl_;
  primacy::MutexLock lock(state.mu);
  while (!(state.stop || !state.started || state.stats.ticks >= ticks)) {
    state.state_cv.Wait(state.mu);
  }
}

std::string ObservabilityHub::RenderCollapsedStacks() const {
  primacy::MutexLock lock(impl_->mu);
  return impl_->RenderCollapsedLocked();
}

bool ObservabilityHub::ShutdownRequested() const {
  primacy::MutexLock lock(impl_->mu);
  return impl_->shutdown_requested;
}

void ObservabilityHub::WaitForShutdownRequest() {
  Impl& state = *impl_;
  primacy::MutexLock lock(state.mu);
  while (!(state.stop || !state.started || state.shutdown_requested)) {
    state.state_cv.Wait(state.mu);
  }
}

ObservabilityHub* MaybeStartHubFromEnv() {
  const char* const port = std::getenv("PRIMACY_METRICS_PORT");
  const char* const dir = std::getenv("PRIMACY_TRACE_DIR");
  const char* const hz = std::getenv("PRIMACY_PROFILE_HZ");
  if (port == nullptr && dir == nullptr && hz == nullptr) return nullptr;
  // One process-wide hub, leaked deliberately: benches and tools call this
  // from several entry points and none owns process shutdown.
  static ObservabilityHub* const hub = [port, dir, hz] {
    ObservabilityHubOptions options;
    options.enable_quit_endpoint = true;
    if (port != nullptr) options.http_port = std::atoi(port);
    if (dir != nullptr) options.trace_dir = dir;
    if (hz != nullptr) {
      const double rate = std::atof(hz);
      if (rate > 0.0) {
        options.profile_interval_ns =
            static_cast<std::uint64_t>(1e9 / rate);
      }
    }
    auto* started = new ObservabilityHub(std::move(options));
    started->Start();
    if (started->HttpPort() >= 0) {
      std::fprintf(stderr,
                   "[primacy] observability hub serving on 127.0.0.1:%d\n",
                   started->HttpPort());
    }
    return started;
  }();
  return hub;
}

}  // namespace primacy::telemetry

#endif  // PRIMACY_TELEMETRY_ENABLED
