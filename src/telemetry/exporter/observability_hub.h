// Continuous observability pipeline: one background exporter thread that
// (a) serves /metrics, /healthz, /readyz, /statusz (+ /profilez and an
// opt-in /quitquitquit) over the embedded HTTP server, (b) periodically
// drains the per-thread trace rings into size-capped rotating
// chrome://tracing segment files, and (c) runs the sampling profiler over
// the live stage stacks (stage_stack.h), exporting a
// primacy_profile_samples_total{stage=...} counter family and a
// flamegraph-ready collapsed-stack dump.
//
// The exporter thread blocks through the service layer's ServiceClock seam
// (service/clock.h): under the SystemServiceClock it is an ordinary timed
// wait, and under a test's VirtualClock every flush/sample tick fires the
// instant the test Advances time — the whole exporter suite runs with zero
// wall-clock sleeps. The HTTP accept thread is the only wall-time blocking
// part, and it blocks in poll(), not on the clock.
//
// Under PRIMACY_TELEMETRY=OFF the hub compiles to an inline no-op: no
// threads, no socket, HandleRequest answers 404 — the endpoint is absent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "service/clock.h"
#include "telemetry/exporter/http_server.h"
#include "telemetry/stage.h"

namespace primacy::telemetry {

/// Hub configuration. Plain data, exists in every build.
struct ObservabilityHubOptions {
  /// HTTP endpoint port on 127.0.0.1: -1 disables the endpoint entirely,
  /// 0 binds a kernel-assigned ephemeral port (read back with HttpPort()).
  int http_port = -1;
  /// When true, GET /quitquitquit latches ShutdownRequested() — for CI
  /// drivers that stop a serving process over HTTP. Off by default so a
  /// stray scrape can never shut a production process down.
  bool enable_quit_endpoint = false;
  /// Directory for rotating trace segment files; empty = no trace flushing.
  /// Created (one level) if absent. Tracing is force-enabled while the hub
  /// runs when this is set.
  std::string trace_dir;
  /// Segment files are <trace_dir>/<trace_basename>.<N>.json.
  std::string trace_basename = "primacy_trace";
  /// Rotate the open segment once its rendered JSON reaches this size.
  std::size_t trace_segment_bytes = std::size_t{4} << 20;
  /// Total segments kept on disk (open one included); oldest are deleted.
  std::size_t trace_max_segments = 8;
  /// Trace drain period.
  std::uint64_t trace_flush_interval_ns = 1'000'000'000;
  /// Stage-stack sampling period; 0 disables the profiler. Sampling is
  /// force-enabled while the hub runs when nonzero.
  std::uint64_t profile_interval_ns = 0;
  /// Time source for the exporter thread; null = the process-wide
  /// SystemServiceClock. Not owned; must outlive the hub.
  service::ServiceClock* clock = nullptr;
};

/// Exporter-side progress counters (hub mutex; exact). Plain data.
struct ObservabilityHubStats {
  /// Periodic passes that did work (a flush and a sample due on the same
  /// deadline count once).
  std::uint64_t ticks = 0;
  std::uint64_t trace_flushes = 0;
  std::uint64_t trace_events_written = 0;
  std::uint64_t trace_segments_opened = 0;
  std::uint64_t profile_passes = 0;
  std::uint64_t profile_samples = 0;
};

#if PRIMACY_TELEMETRY_ENABLED

class ObservabilityHub {
 public:
  explicit ObservabilityHub(ObservabilityHubOptions options = {});
  ~ObservabilityHub();

  ObservabilityHub(const ObservabilityHub&) = delete;
  ObservabilityHub& operator=(const ObservabilityHub&) = delete;

  /// Starts the exporter thread (and the HTTP server when http_port >= 0).
  /// Idempotent while running.
  void Start();

  /// Final trace flush, joins the exporter thread, stops the HTTP server,
  /// restores the tracing/sampling enable flags. Idempotent.
  void Stop();

  /// Bound HTTP port while running (useful with http_port = 0); -1 when
  /// the endpoint is disabled or the hub is stopped.
  int HttpPort() const;

  /// Produces a raw JSON fragment rendered under "sources" in /statusz.
  using StatusSource = std::function<std::string()>;

  /// Registers a named /statusz section (e.g. the CompressionService's
  /// StatusJson). Sources are called without the hub lock held.
  void AddStatusSource(std::string name, StatusSource source);

  /// /readyz gate; default is ready-once-started.
  void SetReadyCheck(std::function<bool()> check);

  /// Endpoint dispatch. This is the handler the HTTP thread calls, exposed
  /// so tests (and the OFF-build stub contract) exercise endpoints without
  /// a socket.
  HttpResponse HandleRequest(const std::string& path);

  ObservabilityHubStats GetStats() const;

  /// Blocks until the exporter thread has completed at least `ticks`
  /// periodic passes (or the hub stops). With a VirtualClock: Advance, then
  /// wait here — no sleeps on either side.
  void WaitForTicks(std::uint64_t ticks);

  /// Flamegraph collapsed-stack dump: one "stage;stage;stage count" line
  /// per distinct sampled stack (also served at /profilez).
  std::string RenderCollapsedStacks() const;

  /// True once /quitquitquit was hit (enable_quit_endpoint only).
  bool ShutdownRequested() const;

  /// Blocks until ShutdownRequested() (serving tools' main loop) or Stop().
  void WaitForShutdownRequest();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Starts one process-wide hub if the environment asks for one —
/// PRIMACY_METRICS_PORT (HTTP port), PRIMACY_TRACE_DIR (rotating segments),
/// PRIMACY_PROFILE_HZ (sampling rate) — and returns it; null when none of
/// the variables are set. Called from the bench reporters and serving
/// tools so any run can be made scrapeable without code changes.
ObservabilityHub* MaybeStartHubFromEnv();

#else  // !PRIMACY_TELEMETRY_ENABLED — inline no-op stubs.

class ObservabilityHub {
 public:
  explicit ObservabilityHub(ObservabilityHubOptions = {}) {}
  void Start() {}
  void Stop() {}
  int HttpPort() const { return -1; }
  using StatusSource = std::function<std::string()>;
  void AddStatusSource(std::string, StatusSource) {}
  void SetReadyCheck(std::function<bool()>) {}
  HttpResponse HandleRequest(const std::string&) {
    return HttpResponse{404, "text/plain; charset=utf-8",
                        "telemetry disabled\n"};
  }
  ObservabilityHubStats GetStats() const { return {}; }
  void WaitForTicks(std::uint64_t) {}
  std::string RenderCollapsedStacks() const { return {}; }
  bool ShutdownRequested() const { return false; }
  void WaitForShutdownRequest() {}
};

inline ObservabilityHub* MaybeStartHubFromEnv() { return nullptr; }

#endif  // PRIMACY_TELEMETRY_ENABLED

}  // namespace primacy::telemetry
