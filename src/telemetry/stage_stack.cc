#include "telemetry/stage_stack.h"

#if PRIMACY_TELEMETRY_ENABLED

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace primacy::telemetry {
namespace {

struct ThreadStageStack {
  // The owner thread is the only writer; the sampler reads concurrently.
  // Every field is a relaxed atomic so concurrent access is defined; the
  // depth store is release so a sampler that observes depth == d also
  // observes the frame stores that preceded it on the owner thread.
  std::array<std::atomic<std::uint8_t>, kStageStackDepth> frames{};
  std::atomic<std::uint32_t> depth{0};
  std::uint32_t tid = 0;
};

struct StackRegistry {
  /// Guards the stack list and tid assignment only — the per-thread stacks
  /// themselves are sampled lock-free via their atomics. Leaf lock: nothing
  /// else is acquired while it is held.
  primacy::Mutex mutex;
  std::vector<std::shared_ptr<ThreadStageStack>> stacks
      PRIMACY_GUARDED_BY(mutex);
  std::uint32_t next_tid PRIMACY_GUARDED_BY(mutex) = 1;
};

StackRegistry& Registry() {
  // Leaked deliberately: worker thread_locals may outlive static dtors.
  static StackRegistry* registry = new StackRegistry();
  return *registry;
}

ThreadStageStack& LocalStack() {
  // The shared_ptr in the registry keeps the stack alive after the thread
  // exits; a dead thread's stack has depth 0 and is skipped by the sampler.
  thread_local std::shared_ptr<ThreadStageStack> stack = [] {
    auto fresh = std::make_shared<ThreadStageStack>();
    StackRegistry& registry = Registry();
    primacy::MutexLock lock(registry.mutex);
    fresh->tid = registry.next_tid++;
    registry.stacks.push_back(fresh);
    return fresh;
  }();
  return *stack;
}

std::atomic<bool>& SamplingFlag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

}  // namespace

bool StageSamplingEnabled() {
  return SamplingFlag().load(std::memory_order_relaxed);
}

void SetStageSamplingEnabled(bool enabled) {
  SamplingFlag().store(enabled, std::memory_order_relaxed);
}

StageScope::StageScope(Stage stage) : active_(StageSamplingEnabled()) {
  if (!active_) return;
  ThreadStageStack& stack = LocalStack();
  const std::uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  if (depth < kStageStackDepth) {
    stack.frames[depth].store(static_cast<std::uint8_t>(stage),
                              std::memory_order_relaxed);
  }
  stack.depth.store(depth + 1, std::memory_order_release);
}

StageScope::~StageScope() {
  if (!active_) return;
  ThreadStageStack& stack = LocalStack();
  const std::uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  if (depth != 0) {
    stack.depth.store(depth - 1, std::memory_order_release);
  }
}

void StageScope::Switch(Stage stage) {
  if (!active_) return;
  ThreadStageStack& stack = LocalStack();
  const std::uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  if (depth != 0 && depth <= kStageStackDepth) {
    stack.frames[depth - 1].store(static_cast<std::uint8_t>(stage),
                                  std::memory_order_relaxed);
  }
}

std::vector<StageStackSample> SampleStageStacks() {
  StackRegistry& registry = Registry();
  primacy::MutexLock lock(registry.mutex);
  std::vector<StageStackSample> samples;
  for (const auto& stack : registry.stacks) {
    const std::uint32_t depth = stack->depth.load(std::memory_order_acquire);
    if (depth == 0) continue;
    StageStackSample sample;
    sample.tid = stack->tid;
    sample.depth = std::min<std::size_t>(depth, kStageStackDepth);
    for (std::size_t i = 0; i < sample.depth; ++i) {
      // Clamp: a torn read during a concurrent push can only yield a valid
      // (if momentarily stale) stage, never an out-of-range enum.
      const std::uint8_t raw = std::min<std::uint8_t>(
          stack->frames[i].load(std::memory_order_relaxed),
          static_cast<std::uint8_t>(kStageCount - 1));
      sample.frames[i] = static_cast<Stage>(raw);
    }
    samples.push_back(sample);
  }
  return samples;
}

}  // namespace primacy::telemetry

#endif  // PRIMACY_TELEMETRY_ENABLED
