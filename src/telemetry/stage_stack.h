// Per-thread live stage stacks for the sampling profiler.
//
// A StageScope marks "this thread is currently inside stage X" for its
// lifetime; scopes nest (a service batch slot can hold an outer scope while
// the chunk pipeline pushes per-stage inner ones), and linear pipelines use
// Switch() to retarget the innermost frame without re-entering a scope per
// section. The exporter's sampling pass (SampleStageStacks) walks every
// registered thread's stack at its own cadence and attributes the sample to
// the innermost frame — a statistical profile with no per-stage clock reads
// on the instrumented path.
//
// Cost discipline: with sampling disabled (the default) a StageScope is one
// relaxed atomic load. Enabled, push/pop/switch are one or two relaxed
// atomic stores into thread-local slots — no locks, no allocation after a
// thread's first scope. Every shared field is an atomic, so a sample taken
// mid push/pop reads a torn-but-valid stack (each frame byte is clamped to
// the stage enum), never undefined behavior.
//
// When the build is configured with PRIMACY_TELEMETRY=OFF everything here
// compiles to an inline no-op, mirroring the rest of src/telemetry.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/stage.h"

namespace primacy::telemetry {

/// Frames retained per thread; deeper nesting keeps counting depth but the
/// overflow frames are not recorded (samples clamp to this many frames).
inline constexpr std::size_t kStageStackDepth = 8;

/// One thread's stack at sampling time. Plain data, exists in every build.
struct StageStackSample {
  std::uint32_t tid = 0;
  /// Live frames (clamped to kStageStackDepth), bottom-first.
  std::size_t depth = 0;
  std::array<Stage, kStageStackDepth> frames{};

  /// Innermost frame; only meaningful when depth > 0.
  Stage Top() const { return frames[depth == 0 ? 0 : depth - 1]; }
};

#if PRIMACY_TELEMETRY_ENABLED

bool StageSamplingEnabled();
void SetStageSamplingEnabled(bool enabled);

class StageScope {
 public:
  explicit StageScope(Stage stage);
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  /// Retargets the innermost frame (the one this scope pushed) to `stage`.
  /// For linear pipelines: one scope per chunk, one Switch per section.
  void Switch(Stage stage);

 private:
  bool active_;
};

/// Snapshot of every registered thread's live stack (threads with empty
/// stacks are omitted). Takes the registry mutex; sampler-side cost only.
std::vector<StageStackSample> SampleStageStacks();

#else  // !PRIMACY_TELEMETRY_ENABLED — inline no-op stubs.

inline bool StageSamplingEnabled() { return false; }
inline void SetStageSamplingEnabled(bool) {}

class StageScope {
 public:
  explicit StageScope(Stage) {}
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;
  void Switch(Stage) {}
};

inline std::vector<StageStackSample> SampleStageStacks() { return {}; }

#endif  // PRIMACY_TELEMETRY_ENABLED

}  // namespace primacy::telemetry
