// Lightweight trace spans with per-thread ring buffers and a
// chrome://tracing (Trace Event Format) JSON exporter.
//
// Usage:
//   telemetry::TraceSpan span("primacy.encode_chunk", "bytes", chunk.size());
//   ... work ...   // the event is recorded when `span` goes out of scope
//
// Recording is gated twice: at compile time (PRIMACY_TELEMETRY=OFF makes
// TraceSpan an empty struct) and at run time (tracing defaults off; enable
// with SetTracingEnabled(true) or the PRIMACY_TRACE=1 environment variable).
// A disabled span costs one relaxed atomic load.
//
// Each thread records into its own fixed-size ring buffer (no locks, no
// allocation after the first span on a thread; the newest kTraceRingCapacity
// events per thread are kept). Span names and arg names must be string
// literals (or otherwise outlive the process) — the buffers store pointers.
//
// Exporting (RenderChromeTrace / WriteChromeTrace) walks every thread's
// buffer; call it at a quiescent point (no spans in flight) for a fully
// consistent snapshot. If PRIMACY_TRACE_OUT=<path> is set in the
// environment, tracing is enabled automatically and the buffers are flushed
// to <path> at process exit — so any tool or bench can be traced without
// code changes:  PRIMACY_TRACE_OUT=trace.json ./fig4_end_to_end --quick
//
// Continuous export (the ObservabilityHub's periodic flush) uses
// DrainTraceEvents instead: it consumes events through a per-buffer cursor
// so each span is exported once, and it is safe to call while writer
// threads are recording — ring slots are individually atomic, and a slot
// the writer overwrote mid-read is detected and discarded. A span whose
// slot is overwritten before any drain consumed it is counted in the
// primacy_trace_dropped_spans_total counter (TraceDroppedSpans()) instead
// of vanishing silently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/stage.h"

namespace primacy::telemetry {

/// One completed span. Timestamps are nanoseconds on the steady clock,
/// rebased so time zero is roughly process start.
struct TraceEvent {
  const char* name = nullptr;      // static string
  const char* arg_name = nullptr;  // nullptr = no argument
  std::uint64_t arg_value = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
};

/// Events retained per thread (newest win once the ring wraps).
inline constexpr std::size_t kTraceRingCapacity = 8192;

#if PRIMACY_TELEMETRY_ENABLED

bool TracingEnabled();
void SetTracingEnabled(bool enabled);

class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : TraceSpan(name, nullptr, 0) {}
  TraceSpan(const char* name, const char* arg_name, std::uint64_t arg_value);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* arg_name_;
  std::uint64_t arg_value_;
  std::uint64_t start_ns_;
  bool active_;
};

/// All buffered events across threads, oldest-first per thread. Exporter
/// and test hook; snapshot at quiescence for exact results.
std::vector<TraceEvent> SnapshotTraceEvents();

/// Consumes every event recorded since the previous drain (per-buffer
/// cursors advance), oldest-first per thread. Safe to call concurrently
/// with recording threads; serialized against other exporters by the
/// registry mutex.
std::vector<TraceEvent> DrainTraceEvents();

/// Spans overwritten by ring wrap before any drain consumed them (the same
/// total as primacy_trace_dropped_spans_total).
std::uint64_t TraceDroppedSpans();

/// chrome://tracing JSON ({"traceEvents": [...]}); load in chrome's
/// about:tracing or https://ui.perfetto.dev.
std::string RenderChromeTrace();

/// The same JSON for a caller-supplied event list (the hub's rotating
/// segment writer renders drained batches with this).
std::string RenderChromeTraceEvents(const std::vector<TraceEvent>& events);

/// Writes RenderChromeTrace() to `path`; returns false on I/O failure.
bool WriteChromeTrace(const std::string& path);

/// Drops all buffered events and resets drain cursors and drop counts
/// (test isolation; call at quiescence).
void ClearTraceBuffers();

#else  // !PRIMACY_TELEMETRY_ENABLED — inline no-op stubs.

inline bool TracingEnabled() { return false; }
inline void SetTracingEnabled(bool) {}

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const char*, const char*, std::uint64_t) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

inline std::vector<TraceEvent> SnapshotTraceEvents() { return {}; }
inline std::vector<TraceEvent> DrainTraceEvents() { return {}; }
inline std::uint64_t TraceDroppedSpans() { return 0; }
inline std::string RenderChromeTrace() {
  return std::string("{\"traceEvents\": []}\n");
}
inline std::string RenderChromeTraceEvents(const std::vector<TraceEvent>&) {
  return std::string("{\"traceEvents\": []}\n");
}
inline bool WriteChromeTrace(const std::string&) { return false; }
inline void ClearTraceBuffers() {}

#endif  // PRIMACY_TELEMETRY_ENABLED

}  // namespace primacy::telemetry
