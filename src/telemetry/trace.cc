#include "telemetry/trace.h"

#if PRIMACY_TELEMETRY_ENABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace primacy::telemetry {
namespace {

std::uint64_t NowNs() {
  // Rebased so exported timestamps are small and stable within a run.
  static const auto base = std::chrono::steady_clock::now();
  const auto delta = std::chrono::steady_clock::now() - base;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
}

struct ThreadTraceBuffer {
  std::array<TraceEvent, kTraceRingCapacity> events;
  // Total events ever pushed; slot = pushed % capacity. The owner thread is
  // the only writer; the exporter reads under the registry mutex after an
  // acquire load, which orders it after every slot write it observes.
  std::atomic<std::uint64_t> pushed{0};
  std::uint32_t tid = 0;
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

ThreadTraceBuffer& LocalBuffer() {
  // The shared_ptr in the registry keeps the buffer alive after the thread
  // exits, so the exporter can still read short-lived workers' events.
  thread_local std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadTraceBuffer>();
    BufferRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    fresh->tid = registry.next_tid++;
    registry.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* trace = std::getenv("PRIMACY_TRACE");
    const char* out = std::getenv("PRIMACY_TRACE_OUT");
    return (trace != nullptr && trace[0] != '\0' && trace[0] != '0') ||
           (out != nullptr && out[0] != '\0');
  }();
  return enabled;
}

/// Registers the PRIMACY_TRACE_OUT exit hook the first time a span fires.
void EnsureExitFlushRegistered() {
  static const bool registered = [] {
    if (const char* path = std::getenv("PRIMACY_TRACE_OUT");
        path != nullptr && path[0] != '\0') {
      static std::string out_path = path;
      std::atexit([] { WriteChromeTrace(out_path); });
    }
    return true;
  }();
  (void)registered;
}

}  // namespace

bool TracingEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name, const char* arg_name,
                     std::uint64_t arg_value)
    : name_(name),
      arg_name_(arg_name),
      arg_value_(arg_value),
      start_ns_(0),
      active_(TracingEnabled()) {
  if (active_) {
    EnsureExitFlushRegistered();
    start_ns_ = NowNs();
  }
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const std::uint64_t end_ns = NowNs();
  ThreadTraceBuffer& buffer = LocalBuffer();
  const std::uint64_t n = buffer.pushed.load(std::memory_order_relaxed);
  TraceEvent& slot = buffer.events[n % kTraceRingCapacity];
  slot.name = name_;
  slot.arg_name = arg_name_;
  slot.arg_value = arg_value_;
  slot.start_ns = start_ns_;
  slot.dur_ns = end_ns - start_ns_;
  slot.tid = buffer.tid;
  buffer.pushed.store(n + 1, std::memory_order_release);
}

std::vector<TraceEvent> SnapshotTraceEvents() {
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<TraceEvent> events;
  for (const auto& buffer : registry.buffers) {
    const std::uint64_t pushed =
        buffer->pushed.load(std::memory_order_acquire);
    const std::uint64_t kept =
        std::min<std::uint64_t>(pushed, kTraceRingCapacity);
    for (std::uint64_t i = pushed - kept; i < pushed; ++i) {
      events.push_back(buffer->events[i % kTraceRingCapacity]);
    }
  }
  return events;
}

std::string RenderChromeTrace() {
  const std::vector<TraceEvent> events = SnapshotTraceEvents();
  std::string out = "{\"traceEvents\": [\n";
  char line[256];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const double ts_us = static_cast<double>(e.start_ns) / 1e3;
    const double dur_us = static_cast<double>(e.dur_ns) / 1e3;
    if (e.arg_name != nullptr) {
      std::snprintf(line, sizeof(line),
                    "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                    "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
                    "\"args\": {\"%s\": %llu}}",
                    e.name, e.tid, ts_us, dur_us, e.arg_name,
                    static_cast<unsigned long long>(e.arg_value));
    } else {
      std::snprintf(line, sizeof(line),
                    "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                    "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
                    e.name, e.tid, ts_us, dur_us);
    }
    out += line;
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = RenderChromeTrace();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  return std::fclose(file) == 0 && ok;
}

void ClearTraceBuffers() {
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    buffer->pushed.store(0, std::memory_order_release);
  }
}

}  // namespace primacy::telemetry

#endif  // PRIMACY_TELEMETRY_ENABLED
