#include "telemetry/trace.h"

#if PRIMACY_TELEMETRY_ENABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "telemetry/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace primacy::telemetry {
namespace {

std::uint64_t NowNs() {
  // Rebased so exported timestamps are small and stable within a run.
  static const auto base = std::chrono::steady_clock::now();
  const auto delta = std::chrono::steady_clock::now() - base;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
}

/// Ring slot with individually atomic fields: the owner thread overwrites
/// slots while an exporter may be copying them, so every access must be a
/// defined (relaxed) atomic op. A concurrently overwritten slot can yield a
/// copy mixing two events' fields — each field is still an individually
/// valid value (names are static strings), and the readers below discard
/// any slot whose index the writer invalidated while they copied.
struct AtomicTraceEvent {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> arg_name{nullptr};
  std::atomic<std::uint64_t> arg_value{0};
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
};

struct ThreadTraceBuffer {
  std::array<AtomicTraceEvent, kTraceRingCapacity> events;
  // Total events ever pushed; slot = pushed % capacity. The owner thread is
  // the only writer; exporters read after an acquire load, which orders
  // them after every slot write they observe.
  std::atomic<std::uint64_t> pushed{0};
  // Events consumed (by DrainTraceEvents) or invalidated (by the writer
  // wrapping over an unconsumed slot). Raised-only; the writer raises it
  // *before* reusing a slot so exporters can detect mid-copy overwrites.
  std::atomic<std::uint64_t> drained{0};
  // Events the writer invalidated before any drain consumed them.
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t tid = 0;
};

struct BufferRegistry {
  /// Guards the buffer list and tid assignment only — never the ring
  /// contents, which stay lock-free (the hot path must not take a lock).
  /// Leaf lock: nothing else is acquired while it is held.
  primacy::Mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers
      PRIMACY_GUARDED_BY(mutex);
  std::uint32_t next_tid PRIMACY_GUARDED_BY(mutex) = 1;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

ThreadTraceBuffer& LocalBuffer() {
  // The shared_ptr in the registry keeps the buffer alive after the thread
  // exits, so the exporter can still read short-lived workers' events.
  thread_local std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadTraceBuffer>();
    BufferRegistry& registry = Registry();
    primacy::MutexLock lock(registry.mutex);
    fresh->tid = registry.next_tid++;
    registry.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* trace = std::getenv("PRIMACY_TRACE");
    const char* out = std::getenv("PRIMACY_TRACE_OUT");
    return (trace != nullptr && trace[0] != '\0' && trace[0] != '0') ||
           (out != nullptr && out[0] != '\0');
  }();
  return enabled;
}

Counter& DroppedCounter() {
  static Counter* counter = &MetricsRegistry::Global().GetCounter(
      "primacy_trace_dropped_spans_total");
  return *counter;
}

/// Registers the PRIMACY_TRACE_OUT exit hook the first time a span fires.
void EnsureExitFlushRegistered() {
  static const bool registered = [] {
    if (const char* path = std::getenv("PRIMACY_TRACE_OUT");
        path != nullptr && path[0] != '\0') {
      static std::string out_path = path;
      std::atexit([] { WriteChromeTrace(out_path); });
    }
    return true;
  }();
  (void)registered;
}

/// Copies this buffer's retained events (indices >= `begin`) into `out`,
/// discarding any entry the writer invalidated while we copied. Returns the
/// `pushed` value the copy covered. Holding the registry mutex keeps the
/// buffer list stable while we walk a buffer it owns.
std::uint64_t CopyBufferEvents(BufferRegistry& registry,
                               ThreadTraceBuffer& buffer, std::uint64_t begin,
                               std::vector<TraceEvent>& out)
    PRIMACY_REQUIRES(registry.mutex) {
  const std::uint64_t pushed = buffer.pushed.load(std::memory_order_acquire);
  const std::uint64_t oldest =
      pushed > kTraceRingCapacity ? pushed - kTraceRingCapacity : 0;
  const std::size_t first = out.size();
  std::vector<std::uint64_t> indices;
  for (std::uint64_t i = std::max(begin, oldest); i < pushed; ++i) {
    const AtomicTraceEvent& slot = buffer.events[i % kTraceRingCapacity];
    TraceEvent event;
    event.name = slot.name.load(std::memory_order_relaxed);
    event.arg_name = slot.arg_name.load(std::memory_order_relaxed);
    event.arg_value = slot.arg_value.load(std::memory_order_relaxed);
    event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    event.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    event.tid = buffer.tid;
    if (event.name == nullptr) continue;
    out.push_back(event);
    indices.push_back(i);
  }
  // Any slot the writer wrapped onto while we copied had its index pushed
  // below `drained` first (and below pushed-now - capacity); drop those
  // possibly-torn copies.
  const std::uint64_t pushed_now =
      buffer.pushed.load(std::memory_order_acquire);
  const std::uint64_t safe_floor =
      std::max(buffer.drained.load(std::memory_order_acquire),
               pushed_now > kTraceRingCapacity
                   ? pushed_now - kTraceRingCapacity
                   : 0);
  std::size_t kept = first;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] < safe_floor) continue;
    out[kept++] = out[first + i];
  }
  out.resize(kept);
  return pushed;
}

/// Raises `counter` to at least `floor` (CAS loop; concurrent raisers may
/// interleave). Returns how much this call raised it by.
std::uint64_t RaiseTo(std::atomic<std::uint64_t>& counter,
                      std::uint64_t floor) {
  std::uint64_t current = counter.load(std::memory_order_relaxed);
  while (current < floor) {
    if (counter.compare_exchange_weak(current, floor,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
      return floor - current;
    }
  }
  return 0;
}

}  // namespace

bool TracingEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name, const char* arg_name,
                     std::uint64_t arg_value)
    : name_(name),
      arg_name_(arg_name),
      arg_value_(arg_value),
      start_ns_(0),
      active_(TracingEnabled()) {
  if (active_) {
    EnsureExitFlushRegistered();
    start_ns_ = NowNs();
  }
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const std::uint64_t end_ns = NowNs();
  ThreadTraceBuffer& buffer = LocalBuffer();
  const std::uint64_t n = buffer.pushed.load(std::memory_order_relaxed);
  if (n >= kTraceRingCapacity) {
    // Wrapping onto slot n % capacity destroys event n - capacity. Raise
    // the drain cursor past it *before* touching the slot, so a concurrent
    // exporter discards its possibly-torn copy; whatever the cursor jumped
    // over was never consumed — count it as dropped.
    const std::uint64_t lost =
        RaiseTo(buffer.drained, n + 1 - kTraceRingCapacity);
    if (lost != 0) {
      buffer.dropped.fetch_add(lost, std::memory_order_relaxed);
      DroppedCounter().Increment(lost);
    }
  }
  AtomicTraceEvent& slot = buffer.events[n % kTraceRingCapacity];
  slot.name.store(name_, std::memory_order_relaxed);
  slot.arg_name.store(arg_name_, std::memory_order_relaxed);
  slot.arg_value.store(arg_value_, std::memory_order_relaxed);
  slot.start_ns.store(start_ns_, std::memory_order_relaxed);
  slot.dur_ns.store(end_ns - start_ns_, std::memory_order_relaxed);
  buffer.pushed.store(n + 1, std::memory_order_release);
}

std::vector<TraceEvent> SnapshotTraceEvents() {
  BufferRegistry& registry = Registry();
  primacy::MutexLock lock(registry.mutex);
  std::vector<TraceEvent> events;
  for (const auto& buffer : registry.buffers) {
    CopyBufferEvents(registry, *buffer, 0, events);
  }
  return events;
}

std::vector<TraceEvent> DrainTraceEvents() {
  BufferRegistry& registry = Registry();
  primacy::MutexLock lock(registry.mutex);
  std::vector<TraceEvent> events;
  for (const auto& buffer : registry.buffers) {
    const std::uint64_t begin =
        buffer->drained.load(std::memory_order_relaxed);
    const std::uint64_t covered = CopyBufferEvents(registry, *buffer, begin, events);
    // Consume: later drains start past everything this one covered. The
    // writer may race this upward too (overflow), which is fine — RaiseTo
    // only ever moves the cursor forward.
    RaiseTo(buffer->drained, covered);
  }
  return events;
}

std::uint64_t TraceDroppedSpans() {
  BufferRegistry& registry = Registry();
  primacy::MutexLock lock(registry.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : registry.buffers) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::string RenderChromeTraceEvents(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\": [\n";
  char line[256];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const double ts_us = static_cast<double>(e.start_ns) / 1e3;
    const double dur_us = static_cast<double>(e.dur_ns) / 1e3;
    if (e.arg_name != nullptr) {
      std::snprintf(line, sizeof(line),
                    "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                    "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
                    "\"args\": {\"%s\": %llu}}",
                    e.name, e.tid, ts_us, dur_us, e.arg_name,
                    static_cast<unsigned long long>(e.arg_value));
    } else {
      std::snprintf(line, sizeof(line),
                    "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                    "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
                    e.name, e.tid, ts_us, dur_us);
    }
    out += line;
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

std::string RenderChromeTrace() {
  return RenderChromeTraceEvents(SnapshotTraceEvents());
}

bool WriteChromeTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = RenderChromeTrace();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  return std::fclose(file) == 0 && ok;
}

void ClearTraceBuffers() {
  BufferRegistry& registry = Registry();
  primacy::MutexLock lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    buffer->pushed.store(0, std::memory_order_release);
    buffer->drained.store(0, std::memory_order_release);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

}  // namespace primacy::telemetry

#endif  // PRIMACY_TELEMETRY_ENABLED
