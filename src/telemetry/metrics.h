// Process-wide metrics registry: monotonic counters, gauges, and
// fixed-bucket histograms, exported as Prometheus text.
//
// Hot-path discipline: instrument sites resolve their metric once (a mutex
// is taken only at registration) and then update through relaxed atomics —
// no locks, no allocation. Metric objects are never destroyed or moved, so
// cached pointers stay valid for the life of the process.
//
// When the build is configured with PRIMACY_TELEMETRY=OFF every operation
// here compiles to an inline no-op (the stub half of this header), so
// instrumented code needs no #ifdefs of its own.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "telemetry/stage.h"

#if PRIMACY_TELEMETRY_ENABLED
#include <atomic>
#include <memory>
#include <vector>
#endif

namespace primacy::telemetry {

#if PRIMACY_TELEMETRY_ENABLED

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (queue depth, worker count, ...).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram (cumulative, Prometheus-style: bucket i counts
/// observations <= bounds[i], plus an implicit +Inf bucket).
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void Observe(double value);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  /// Cumulative count of observations <= bounds()[i]; i == bounds().size()
  /// is the +Inf bucket (== Count()).
  std::uint64_t CumulativeCount(std::size_t i) const;
  std::span<const double> bounds() const { return bounds_; }
  void Reset();

 private:
  std::vector<double> bounds_;                       // ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Owns every metric; resolve with Get*(), render with RenderPrometheus().
/// `labels` is a pre-rendered Prometheus label body without braces, e.g.
/// `stage="split"` — metrics with the same name but different labels are
/// distinct series under one family.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, std::string_view labels = {});
  Gauge& GetGauge(std::string_view name, std::string_view labels = {});
  Histogram& GetHistogram(std::string_view name,
                          std::span<const double> bounds,
                          std::string_view labels = {});

  /// Prometheus text exposition format, series sorted by (name, labels).
  std::string RenderPrometheus() const;

  /// Zeroes every registered metric (registrations — and therefore cached
  /// pointers — survive). Test isolation only.
  void ResetAllForTest();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

#else  // !PRIMACY_TELEMETRY_ENABLED — inline no-op stubs.

class Counter {
 public:
  void Increment(std::uint64_t = 1) {}
  std::uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(std::int64_t) {}
  void Add(std::int64_t) {}
  std::int64_t Value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  void Observe(double) {}
  std::uint64_t Count() const { return 0; }
  double Sum() const { return 0.0; }
  std::uint64_t CumulativeCount(std::size_t) const { return 0; }
  std::span<const double> bounds() const { return {}; }
  void Reset() {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter& GetCounter(std::string_view, std::string_view = {}) {
    static Counter stub;
    return stub;
  }
  Gauge& GetGauge(std::string_view, std::string_view = {}) {
    static Gauge stub;
    return stub;
  }
  Histogram& GetHistogram(std::string_view, std::span<const double>,
                          std::string_view = {}) {
    static Histogram stub;
    return stub;
  }
  std::string RenderPrometheus() const { return std::string(); }
  void ResetAllForTest() {}
};

#endif  // PRIMACY_TELEMETRY_ENABLED

}  // namespace primacy::telemetry
