// Process-wide metrics registry: monotonic counters, gauges, and
// fixed-bucket histograms, exported as Prometheus text.
//
// Hot-path discipline: instrument sites resolve their metric once (a mutex
// is taken only at registration) and then update through relaxed atomics —
// no locks, no allocation. Metric objects are never destroyed or moved, so
// cached pointers stay valid for the life of the process.
//
// When the build is configured with PRIMACY_TELEMETRY=OFF every operation
// here compiles to an inline no-op (the stub half of this header), so
// instrumented code needs no #ifdefs of its own.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/stage.h"

#if PRIMACY_TELEMETRY_ENABLED
#include <atomic>
#include <memory>
#endif

namespace primacy::telemetry {

/// Point-in-time copy of a Histogram's state. Plain data, exists in every
/// build (an OFF-build snapshot is empty), so benches and the exporter can
/// compute per-window percentiles without touching live atomics twice.
struct HistogramSnapshot {
  std::vector<double> bounds;  // ascending finite upper bounds
  /// Cumulative counts; bounds.size() + 1 entries, the last is the +Inf
  /// bucket and equals `count`.
  std::vector<std::uint64_t> cumulative;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Bucket-interpolated quantile (same estimate as PromQL's
  /// histogram_quantile): q in [0, 1]; observations beyond the last finite
  /// bound clamp to it; 0 when the snapshot is empty.
  double Quantile(double q) const {
    if (count == 0 || cumulative.empty()) return 0.0;
    const double rank =
        std::min(std::max(q, 0.0), 1.0) * static_cast<double>(count);
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      const std::uint64_t cum = cumulative[i];
      if (static_cast<double>(cum) >= rank) {
        const double lower = i == 0 ? 0.0 : bounds[i - 1];
        const double in_bucket = static_cast<double>(cum - below);
        if (in_bucket <= 0.0) return bounds[i];
        const double fraction = (rank - static_cast<double>(below)) / in_bucket;
        return lower + (bounds[i] - lower) * fraction;
      }
      below = cum;
    }
    return bounds.empty() ? 0.0 : bounds.back();
  }

  /// This snapshot minus an `earlier` one of the same histogram: the
  /// distribution of observations made between the two (per-mode and
  /// per-scrape-window percentiles).
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const {
    HistogramSnapshot delta = *this;
    if (earlier.cumulative.size() == cumulative.size()) {
      for (std::size_t i = 0; i < cumulative.size(); ++i) {
        delta.cumulative[i] -= earlier.cumulative[i];
      }
      delta.count -= earlier.count;
      delta.sum -= earlier.sum;
    }
    return delta;
  }
};

#if PRIMACY_TELEMETRY_ENABLED

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (queue depth, worker count, ...).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram (cumulative, Prometheus-style: bucket i counts
/// observations <= bounds[i], plus an implicit +Inf bucket).
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void Observe(double value);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  /// Cumulative count of observations <= bounds()[i]; i == bounds().size()
  /// is the +Inf bucket (== Count()).
  std::uint64_t CumulativeCount(std::size_t i) const;
  /// Consistent-enough copy for percentile math (bucket reads are relaxed;
  /// a snapshot taken mid-Observe may be off by the in-flight observation).
  HistogramSnapshot Snapshot() const;
  std::span<const double> bounds() const { return bounds_; }
  void Reset();

 private:
  std::vector<double> bounds_;                       // ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Owns every metric; resolve with Get*(), render with RenderPrometheus().
/// `labels` is a pre-rendered Prometheus label body without braces, e.g.
/// `stage="split"` — metrics with the same name but different labels are
/// distinct series under one family.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, std::string_view labels = {});
  Gauge& GetGauge(std::string_view name, std::string_view labels = {});
  Histogram& GetHistogram(std::string_view name,
                          std::span<const double> bounds,
                          std::string_view labels = {});

  /// Prometheus text exposition format, series sorted by (name, labels).
  std::string RenderPrometheus() const;

  /// Zeroes every registered metric (registrations — and therefore cached
  /// pointers — survive). Test isolation only.
  void ResetAllForTest();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

#else  // !PRIMACY_TELEMETRY_ENABLED — inline no-op stubs.

class Counter {
 public:
  void Increment(std::uint64_t = 1) {}
  std::uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(std::int64_t) {}
  void Add(std::int64_t) {}
  std::int64_t Value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  void Observe(double) {}
  std::uint64_t Count() const { return 0; }
  double Sum() const { return 0.0; }
  std::uint64_t CumulativeCount(std::size_t) const { return 0; }
  HistogramSnapshot Snapshot() const { return {}; }
  std::span<const double> bounds() const { return {}; }
  void Reset() {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter& GetCounter(std::string_view, std::string_view = {}) {
    static Counter stub;
    return stub;
  }
  Gauge& GetGauge(std::string_view, std::string_view = {}) {
    static Gauge stub;
    return stub;
  }
  Histogram& GetHistogram(std::string_view, std::span<const double>,
                          std::string_view = {}) {
    static Histogram stub;
    return stub;
  }
  std::string RenderPrometheus() const { return std::string(); }
  void ResetAllForTest() {}
};

#endif  // PRIMACY_TELEMETRY_ENABLED

}  // namespace primacy::telemetry
