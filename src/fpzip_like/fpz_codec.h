// Fpz: the library's fpzip-class comparator (Lindstrom & Isenburg, TVCG
// 2006). Doubles are mapped to order-preserving 64-bit integers, predicted
// with an n-dimensional Lorenzo predictor (1-D: previous value; 2-D/3-D:
// inclusion–exclusion over the already-seen corner of the unit cube), and
// the zigzag-coded residuals are stored with leading-zero-byte elision.
//
// Like the original, prediction quality — and therefore compression — hinges
// on dimensional correlation, which is exactly the weakness the paper's
// Section V probes with reorganized (permuted) data.
//
// Container format:
//   varint original_size, u8 dims (1..3), varint nx [, ny [, nz]],
//   varint value_count, packed 4-bit headers, residual bytes, raw tail.
#pragma once

#include <array>
#include <cstdint>

#include "compress/codec.h"

namespace primacy {

class FpzCodec final : public Codec {
 public:
  /// 1-D stream codec (grid inferred as a flat array).
  FpzCodec() : FpzCodec(std::array<std::size_t, 3>{0, 1, 1}, 1) {}

  /// Grid-aware variants: extents of the fastest-varying dimensions. nx == 0
  /// means "use the whole stream length".
  static FpzCodec Grid1D() { return FpzCodec(); }
  static FpzCodec Grid2D(std::size_t nx) {
    return FpzCodec({nx, 0, 1}, 2);
  }
  static FpzCodec Grid3D(std::size_t nx, std::size_t ny) {
    return FpzCodec({nx, ny, 0}, 3);
  }

  std::string_view name() const override { return "fpz"; }
  Bytes Compress(ByteSpan data) const override;
  Bytes Decompress(ByteSpan data) const override;

 private:
  FpzCodec(std::array<std::size_t, 3> extents, unsigned dims)
      : extents_(extents), dims_(dims) {}

  std::array<std::size_t, 3> extents_;
  unsigned dims_;
};

}  // namespace primacy
