#include "fpzip_like/fpz_codec.h"

#include <bit>
#include <cstring>
#include <vector>

#include "bitstream/bit_io.h"
#include "bitstream/byte_io.h"
#include "huffman/huffman.h"
#include "util/error.h"

namespace primacy {
namespace {

/// Order-preserving bijection from IEEE-754 bit patterns to unsigned
/// integers: negative doubles (sign bit set) are complemented, positive ones
/// get the sign bit flipped. Monotone in the numeric value, so smooth fields
/// map to smooth integer sequences.
std::uint64_t MapOrdered(std::uint64_t bits) {
  return (bits & 0x8000000000000000ULL) ? ~bits
                                        : (bits ^ 0x8000000000000000ULL);
}

std::uint64_t UnmapOrdered(std::uint64_t mapped) {
  return (mapped & 0x8000000000000000ULL) ? (mapped ^ 0x8000000000000000ULL)
                                          : ~mapped;
}

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

unsigned SignificantBytes(std::uint64_t v) {
  if (v == 0) return 0;
  return 8 - static_cast<unsigned>(std::countl_zero(v)) / 8;
}

/// Entropy stage standing in for fpzip's range coder: a canonical Huffman
/// pass over a byte stream (empty input yields an empty block).
Bytes EntropyEncode(ByteSpan data) {
  Bytes out;
  PutVarint(out, data.size());
  if (data.empty()) return out;
  std::vector<std::uint64_t> freq(256, 0);
  for (const std::byte b : data) ++freq[static_cast<std::size_t>(b)];
  const auto lengths = BuildCodeLengths(freq);
  const HuffmanEncoder encoder(lengths);
  BitWriter writer;
  for (const std::byte b : data) {
    encoder.Encode(writer, static_cast<std::size_t>(b));
  }
  PutBlock(out, SerializeCodeLengths(lengths));
  PutBlock(out, writer.Finish());
  return out;
}

Bytes EntropyDecode(ByteReader& reader) {
  const std::uint64_t size = reader.GetVarint();
  if (size == 0) return {};
  const auto lengths = DeserializeCodeLengths(reader.GetBlock(), 256);
  const HuffmanDecoder decoder(lengths);
  const ByteSpan payload = reader.GetBlock();
  if (size > 8 * payload.size()) {
    throw CorruptStreamError("fpz: symbol count exceeds payload bits");
  }
  BitReader bits(payload);
  Bytes out;
  out.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    out.push_back(static_cast<std::byte>(decoder.Decode(bits)));
  }
  return out;
}

/// Lorenzo predictor over the already-decoded prefix of an (nx, ny, nz)
/// grid, in unsigned wraparound arithmetic (the decoder mirrors it exactly).
class LorenzoPredictor {
 public:
  LorenzoPredictor(std::size_t nx, std::size_t ny, unsigned dims)
      : nx_(nx), ny_(ny), dims_(dims) {}

  std::uint64_t Predict(const std::vector<std::uint64_t>& values,
                        std::size_t index) const {
    const std::size_t x = index % nx_;
    const std::size_t y = (index / nx_) % ny_;

    const auto at = [&](std::size_t dx, std::size_t dy,
                        std::size_t dz) -> std::uint64_t {
      // Offsets are 0/1 steps backwards; caller guarantees in-bounds.
      return values[index - dx - dy * nx_ - dz * nx_ * ny_];
    };

    if (dims_ == 1 || (y == 0 && index / (nx_ * ny_) == 0)) {
      // 1-D Lorenzo: previous sample along x (0 at the very start / row
      // starts fall through below).
      if (x == 0) {
        if (dims_ >= 2 && index >= nx_) return at(0, 1, 0);  // north
        return 0;
      }
      return at(1, 0, 0);
    }
    const std::size_t z = index / (nx_ * ny_);
    if (dims_ == 2 || z == 0) {
      if (x == 0) return at(0, 1, 0);
      if (y == 0) return at(1, 0, 0);
      // pred = W + N - NW
      return at(1, 0, 0) + at(0, 1, 0) - at(1, 1, 0);
    }
    // 3-D interior (fall back to faces on borders).
    if (x == 0 && y == 0) return at(0, 0, 1);
    if (x == 0) return at(0, 1, 0) + at(0, 0, 1) - at(0, 1, 1);
    if (y == 0) return at(1, 0, 0) + at(0, 0, 1) - at(1, 0, 1);
    return at(1, 0, 0) + at(0, 1, 0) + at(0, 0, 1) - at(1, 1, 0) -
           at(1, 0, 1) - at(0, 1, 1) + at(1, 1, 1);
  }

 private:
  std::size_t nx_;
  std::size_t ny_;
  unsigned dims_;
};

}  // namespace

Bytes FpzCodec::Compress(ByteSpan data) const {
  const std::size_t value_count = data.size() / 8;
  const std::size_t tail = data.size() % 8;

  // Resolve grid extents against the actual stream length.
  std::size_t nx = extents_[0] == 0 ? std::max<std::size_t>(value_count, 1)
                                    : extents_[0];
  std::size_t ny = extents_[1] == 0
                       ? std::max<std::size_t>((value_count + nx - 1) / nx, 1)
                       : extents_[1];

  Bytes out;
  PutVarint(out, data.size());
  PutU8(out, static_cast<std::uint8_t>(dims_));
  PutVarint(out, nx);
  PutVarint(out, ny);
  PutVarint(out, value_count);

  std::vector<std::uint64_t> values(value_count);
  for (std::size_t i = 0; i < value_count; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, data.data() + i * 8, 8);
    values[i] = MapOrdered(bits);
  }

  const LorenzoPredictor predictor(nx, ny, dims_);
  Bytes headers((value_count + 1) / 2, std::byte{0});
  Bytes residuals;
  residuals.reserve(data.size() / 2);
  for (std::size_t i = 0; i < value_count; ++i) {
    const std::uint64_t prediction = predictor.Predict(values, i);
    const auto residual = ZigZag(
        static_cast<std::int64_t>(values[i] - prediction));
    const unsigned kept = SignificantBytes(residual);
    if (i % 2 == 0) {
      headers[i / 2] = static_cast<std::byte>(kept);
    } else {
      headers[i / 2] = static_cast<std::byte>(
          static_cast<std::uint8_t>(headers[i / 2]) | (kept << 4));
    }
    for (unsigned b = 0; b < kept; ++b) {
      residuals.push_back(
          static_cast<std::byte>((residual >> (8 * b)) & 0xff));
    }
  }

  PutBlock(out, EntropyEncode(headers));
  PutBlock(out, EntropyEncode(residuals));
  AppendBytes(out, data.subspan(value_count * 8, tail));

  if (out.size() > data.size() + 16) {
    Bytes stored;
    PutVarint(stored, data.size());
    PutU8(stored, 0);  // dims 0 marks the stored fallback
    AppendBytes(stored, data);
    return stored;
  }
  return out;
}

Bytes FpzCodec::Decompress(ByteSpan data) const {
  ByteReader reader(data);
  const std::uint64_t original_size = reader.GetVarint();
  const std::uint8_t dims = reader.GetU8();
  if (dims == 0) {
    const ByteSpan raw = reader.GetRaw(original_size);
    return ToBytes(raw);
  }
  if (dims > 3) throw CorruptStreamError("fpz: bad dimensionality");
  const std::uint64_t nx = reader.GetVarint();
  const std::uint64_t ny = reader.GetVarint();
  if (nx == 0 || ny == 0) throw CorruptStreamError("fpz: zero extent");
  const std::uint64_t value_count = reader.GetVarint();
  if (value_count != original_size / 8) {
    throw CorruptStreamError("fpz: value count mismatch");
  }

  ByteReader headers_reader(reader.GetBlock());
  const Bytes headers = EntropyDecode(headers_reader);
  if (headers.size() != (value_count + 1) / 2) {
    throw CorruptStreamError("fpz: header stream size mismatch");
  }
  ByteReader residuals_reader(reader.GetBlock());
  const Bytes residuals = EntropyDecode(residuals_reader);
  std::size_t residual_pos = 0;
  std::vector<std::uint64_t> values(value_count);
  const LorenzoPredictor predictor(nx, ny, dims);
  for (std::uint64_t i = 0; i < value_count; ++i) {
    const auto packed = static_cast<std::uint8_t>(headers[i / 2]);
    const unsigned kept = (i % 2 == 0) ? (packed & 0x0f) : (packed >> 4);
    if (kept > 8) throw CorruptStreamError("fpz: bad residual length");
    if (residual_pos + kept > residuals.size()) {
      throw CorruptStreamError("fpz: residual stream exhausted");
    }
    std::uint64_t residual = 0;
    for (unsigned b = 0; b < kept; ++b) {
      residual |= static_cast<std::uint64_t>(residuals[residual_pos + b])
                  << (8 * b);
    }
    residual_pos += kept;
    const std::uint64_t prediction = predictor.Predict(values, i);
    values[i] = prediction + static_cast<std::uint64_t>(UnZigZag(residual));
  }
  if (residual_pos != residuals.size()) {
    throw CorruptStreamError("fpz: residual stream not fully consumed");
  }

  Bytes out;
  out.reserve(original_size);
  for (const std::uint64_t mapped : values) {
    const std::uint64_t bits = UnmapOrdered(mapped);
    for (unsigned b = 0; b < 8; ++b) {
      out.push_back(static_cast<std::byte>((bits >> (8 * b)) & 0xff));
    }
  }
  const ByteSpan tail_bytes = reader.GetRaw(original_size % 8);
  AppendBytes(out, tail_bytes);
  if (!reader.AtEnd()) throw CorruptStreamError("fpz: trailing bytes");
  if (out.size() != original_size) {
    throw CorruptStreamError("fpz: size mismatch");
  }
  return out;
}

}  // namespace primacy
