// Sharded decoded-chunk cache for the PRIMACY read path.
//
// The read path re-pays full chunk decode (ID-unmap + solver + ISOBAR merge)
// on every call; serving-style workloads are dominated by repeated
// overlapping range reads over the same hot variables, where that work is
// pure waste. DecodedBlockCache keeps recently decoded chunk bytes keyed by
// (stream identity, chunk index) so a second read of the same chunk is a
// memcpy instead of a decompression.
//
// Concurrency model: the key space is split across N shards, each guarded
// by its own mutex — concurrent readers on different shards never contend.
// Within a shard, entries form an LRU list under a byte budget
// (capacity_bytes / shard_count). A Lookup pins its entry (refcount under
// the shard lock) and returns an RAII Handle; eviction skips pinned
// entries, so a reader's view can never be freed underneath it. If every
// entry in a shard is pinned the shard temporarily overshoots its budget
// rather than blocking — eviction is deferred, never forced.
//
// All mutation goes through Lookup/Insert/Clear; the shard internals are
// private to this module (enforced by the `cache-containment` lint rule).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/bytes.h"

namespace primacy {

namespace internal {
struct CacheShard;  // mutex + map + LRU list (block_cache.cc)
struct CacheEntry;  // one decoded chunk + pin count (block_cache.cc)
}  // namespace internal

/// Read-path cache knobs, threaded through PrimacyOptions (and from there
/// CheckpointReader / InSituOptions). Off by default: the cache trades
/// memory for decode work, which only pays when reads repeat.
struct CacheOptions {
  /// Master switch; when false no cache is constructed and every decode is
  /// byte-identical to the uncached path.
  bool enabled = false;
  /// Total decoded-byte budget across all shards. 0 behaves like a
  /// passthrough cache: every Lookup misses, every Insert is rejected.
  std::size_t capacity_bytes = 256 * 1024 * 1024;
  /// Number of independently locked shards (clamped to >= 1). More shards
  /// = less contention, slightly worse LRU fidelity (eviction is per-shard).
  std::size_t shard_count = 8;
  /// After a range read, decode up to this many adjacent chunks past the
  /// range on the shared pool (best effort, full-index chunks only) so a
  /// sequential scan finds them warm. 0 disables prefetch.
  std::size_t prefetch_chunks = 0;
};

/// Counters snapshot from DecodedBlockCache::Stats. Maintained internally
/// under the shard locks, so the snapshot is exact even when the build has
/// telemetry compiled out.
struct CacheStatsSnapshot {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Inserts rejected because the entry alone exceeds a shard's budget (or
  /// the budget is zero).
  std::uint64_t rejected = 0;
  std::size_t bytes = 0;    // decoded bytes currently resident
  std::size_t entries = 0;  // chunks currently resident

  double HitRatio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class DecodedBlockCache {
 public:
  /// RAII pin over one cached chunk. The entry cannot be evicted while a
  /// Handle references it; data() stays valid for the handle's lifetime.
  /// Handles are short-lived (the span of one memcpy) and must not outlive
  /// the cache they came from.
  class Handle {
   public:
    Handle() = default;
    ~Handle() { Release(); }
    Handle(Handle&& other) noexcept
        : shard_(other.shard_), entry_(other.entry_) {
      other.shard_ = nullptr;
      other.entry_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        Release();
        shard_ = other.shard_;
        entry_ = other.entry_;
        other.shard_ = nullptr;
        other.entry_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    /// True for a hit (the handle references a pinned entry).
    explicit operator bool() const { return entry_ != nullptr; }

    /// The cached decoded chunk bytes; valid only while the handle lives.
    ByteSpan data() const;

   private:
    friend class DecodedBlockCache;
    Handle(internal::CacheShard* shard, internal::CacheEntry* entry)
        : shard_(shard), entry_(entry) {}
    void Release();

    internal::CacheShard* shard_ = nullptr;
    internal::CacheEntry* entry_ = nullptr;
  };

  explicit DecodedBlockCache(CacheOptions options);
  ~DecodedBlockCache();

  DecodedBlockCache(const DecodedBlockCache&) = delete;
  DecodedBlockCache& operator=(const DecodedBlockCache&) = delete;

  /// Pins and returns the entry for (stream_id, chunk_index), bumping it to
  /// most-recently-used; an empty Handle on miss.
  Handle Lookup(std::uint64_t stream_id, std::uint64_t chunk_index);

  /// Caches `data` as the decoded bytes of (stream_id, chunk_index),
  /// evicting LRU unpinned entries from the target shard until it fits.
  /// Returns false when rejected: the key is already resident (first write
  /// wins — the bytes are identical by construction) or the entry alone
  /// exceeds the shard budget.
  bool Insert(std::uint64_t stream_id, std::uint64_t chunk_index, Bytes data);

  /// True when the key is resident, without pinning or touching LRU order
  /// (prefetch uses this to skip chunks already cached).
  bool Contains(std::uint64_t stream_id, std::uint64_t chunk_index) const;

  /// Drops every unpinned entry (pinned entries survive).
  void Clear();

  CacheStatsSnapshot Stats() const;

  const CacheOptions& options() const { return options_; }

 private:
  internal::CacheShard& ShardFor(std::uint64_t stream_id,
                                 std::uint64_t chunk_index) const;

  CacheOptions options_;
  std::size_t shard_budget_ = 0;  // capacity_bytes / shard count
  std::vector<std::unique_ptr<internal::CacheShard>> shards_;
};

/// Builds a shared cache from `options`, or nullptr when the options
/// disable caching (not enabled, zero capacity, or zero shards) — callers
/// treat a null cache as "decode everything".
std::shared_ptr<DecodedBlockCache> MakeBlockCache(const CacheOptions& options);

}  // namespace primacy
